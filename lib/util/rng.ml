type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64 finalizer: xor-shift-multiply avalanche of the counter. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  assert (bound > 0);
  (* Rejection sampling: [bits mod bound] alone is biased whenever [bound]
     does not divide 2^62 (low residues appear once more often than high
     ones). Draws land in [0, 2^62) = [0, max_int], so the largest unbiased
     prefix is the largest multiple of [bound] <= 2^62; redraw on the
     (tiny) tail above it. 2^62 mod bound computed as max_int + 1 without
     overflowing the 63-bit native int. *)
  let tail = ((max_int mod bound) + 1) mod bound in
  let accept_max = max_int - tail in
  let rec go () =
    (* keep only 62 positive bits: Int64.to_int of a 63-bit quantity would
       wrap to negative values *)
    let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    if bits <= accept_max then bits mod bound else go ()
  in
  go ()

let float t bound =
  let bits53 = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (bits53 /. 9007199254740992.0)

let float_range t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (int64 t) 1L = 1L

let gaussian t =
  let u1 = Float.max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = mix (int64 t) }
