type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let push t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    (* doubling growth: amortized O(1) pushes, O(log n) reallocations *)
    let ncap = if cap = 0 then 8 else cap * 2 in
    let nd = Array.make ncap x in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let capacity t = Array.length t.data

(* Dropping the backing array is the only type-safe way to make the old
   elements collectable: resetting [len] alone leaves every element
   reachable in spare capacity, pinning arbitrarily large worksets across
   runs. Capacity is rebuilt by the next pushes (still O(log n)
   reallocations). *)
let clear t =
  t.data <- [||];
  t.len <- 0

let to_array t = Array.sub t.data 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc
