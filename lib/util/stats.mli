(** Small numeric summaries used across benches and reports. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean; ignores non-positive entries; 0 if none remain. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val median : float list -> float
(** Median ([quantile 0.5]: one shared array-based sort, not repeated
    [List.nth]). Non-finite values (NaN, infinities) are dropped before
    ranking; 0 when no finite value remains. *)

val minimum : float list -> float
val maximum : float list -> float
(** Extremes over the {e finite} values of the sample — the same
    non-finite filtering as {!quantile}, so one NaN (or infinity) latency
    sample cannot poison the reported min/max while the quantiles look
    healthy. 0 when no finite value remains. *)

val percent : part:float -> whole:float -> float
(** [percent ~part ~whole] is [100 * part / whole]; 0 when [whole = 0]. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b]; 0 when [b = 0]. *)

val quantile : float -> float list -> float
(** [quantile q xs] is the [q]-th quantile of [xs] by linear interpolation
    between closest ranks (the R/NumPy "type 7" default). Sorting uses
    [Float.compare] after dropping non-finite values — a stray NaN in a
    sample (e.g. a latency list) can no longer scramble the ranking. [q]
    is clamped to [\[0,1\]]; 0 when no finite value remains. [quantile
    0.5] agrees with {!median}. *)

val histogram : buckets:int -> float list -> float * float * int array
(** [histogram ~buckets xs] is [(lo, hi, counts)]: an equal-width histogram
    of the {e finite} samples of [xs] over [\[lo, hi\]] with [max 1 buckets]
    buckets, where [lo]/[hi] are the finite min/max. Non-finite samples are
    dropped (they would otherwise poison the range); every finite sample
    lands in exactly one bucket, so the counts sum to the number of finite
    samples. [(0., 0., all-zero)] when none remain. *)
