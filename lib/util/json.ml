type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing (same canonical conventions as infs_trace) ---- *)

let fmt_float f =
  (* JSON has no lexeme for NaN or the infinities; printing them as [null]
     keeps [to_string] total and its output parseable by any JSON reader
     (the value round-trips as [Null], not as [Num]). *)
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Num f -> Buffer.add_string b (fmt_float f)
    | Str s -> Buffer.add_string b (escape s)
    | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          go x)
        xs;
      Buffer.add_char b ']'
    | Obj fs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (escape k);
          Buffer.add_char b ':';
          go x)
        fs;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ---- parsing ---- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if !pos + 4 >= n then fail "truncated \\u escape";
            let hex = String.sub s (!pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
            in
            (* BMP only; encode as UTF-8 *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        incr pos
      done
    in
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      digits ()
    | _ -> ());
    if !pos = start then fail "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (items [])
      end
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            fields (kv :: acc)
          | Some '}' ->
            incr pos;
            List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
    Error (Printf.sprintf "json: %s at offset %d" msg at)

(* ---- accessors ---- *)

let member k = function Obj fs -> List.assoc_opt k fs | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_num = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
