(** Growable flat array with doubling growth.

    The allocation-free accumulator for simulator hot paths: [push] is
    amortized O(1) and reallocates only O(log n) times (capacity doubles
    when full, it never grows by one). Not thread-safe; each domain or
    lowering context owns its own vector. *)

type 'a t

val create : unit -> 'a t
(** Empty vector; the backing array is allocated lazily on first push. *)

val length : 'a t -> int

val push : 'a t -> 'a -> unit
(** Append one element, doubling the backing array when full. *)

val get : 'a t -> int -> 'a
(** [Invalid_argument] outside [0, length). *)

val capacity : 'a t -> int
(** Current backing-array size (for allocation regression tests). *)

val clear : 'a t -> unit
(** Reset to empty {e and release the backing array}, so cleared elements
    become unreachable (a length-only reset would pin them in spare
    capacity across runs). Subsequent pushes regrow from scratch. *)

val to_array : 'a t -> 'a array
(** Fresh array of exactly [length] elements. *)

val iter : ('a -> unit) -> 'a t -> unit
val fold_left : ('a -> 'b -> 'a) -> 'a -> 'b t -> 'a
