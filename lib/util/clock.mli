(** Monotonic process clock for durations and deadlines.

    Every duration in the stack (pool busy time, serve latency, profiler
    spans, client pacing) used to read [Unix.gettimeofday] directly; an
    NTP step mid-run then yields negative latencies and spans, and
    deadlines that fire early or never. This module is the single shared
    time source for durations: reads are clamped to be {e non-decreasing
    process-wide}, so a backwards wall-clock step can at worst freeze the
    clock until real time catches up — a span measured across the step is
    too short, never negative, and a timeout fires late, never early.

    The clamp is an atomic max over all domains and threads, so the
    monotonicity guarantee holds across the pool's worker domains and the
    serve tier's systhreads, not just within one thread.

    Values are seconds (or nanoseconds) on the wall-clock epoch — only
    {e differences} are meaningful under the clamp; do not parse these as
    calendar timestamps. *)

val now : unit -> float
(** Non-decreasing time in seconds. Successive calls from any thread or
    domain never go backwards. *)

val now_ns : unit -> float
(** [now () *. 1e9], computed from the same clamped reading. *)

val set_raw_source : (unit -> float) option -> unit
(** Test hook: replace the raw reading (seconds) the clamp is applied to;
    [None] restores [Unix.gettimeofday]. Switching the source resets the
    clamp state so a test can inject small synthetic timelines. Not for
    production use — callers in other threads observe the switch
    immediately. *)
