(** Minimal JSON: a value type, a strict recursive-descent parser and a
    deterministic printer. Third-party JSON libraries are deliberately not
    a dependency; this covers the simulator's needs (JSON-lines job specs
    and report lines for [infs_run batch]).

    Printing is canonical: object fields keep their construction order,
    floats use {!fmt_float} (shortest form that round-trips, integral
    values without a fraction — the same convention as [infs_trace]), so
    equal values print byte-identically. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON document. Trailing whitespace is allowed; anything else
    after the value is an error. Errors carry a character offset. *)

val to_string : t -> string

val fmt_float : float -> string
(** ["1310719.375"], ["3"], ["0.1"]. Printing is total: JSON has no
    literal for [nan] or the infinities, so non-finite floats print as
    ["null"] — the document stays valid JSON and the value round-trips
    as {!Null}. *)

(** {1 Accessors} — total functions returning [option]. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_str : t -> string option
val to_num : t -> float option
val to_int : t -> int option
val to_bool : t -> bool option
val to_list : t -> t list option

val escape : string -> string
(** The JSON string literal for [s], including the surrounding quotes. *)
