let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  let xs = List.filter (fun x -> x > 0.0) xs in
  match xs with
  | [] -> 0.0
  | _ ->
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (log_sum /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
    sqrt var

let median xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let nth i = List.nth sorted i in
    if n mod 2 = 1 then nth (n / 2) else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.0

let minimum = function [] -> 0.0 | x :: xs -> List.fold_left Float.min x xs
let maximum = function [] -> 0.0 | x :: xs -> List.fold_left Float.max x xs

let percent ~part ~whole = if whole = 0.0 then 0.0 else 100.0 *. part /. whole
let ratio a b = if b = 0.0 then 0.0 else a /. b

let quantile q xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let a = Array.of_list sorted in
    let n = Array.length a in
    let q = Float.min 1.0 (Float.max 0.0 q) in
    (* Linear interpolation between closest ranks (type-7 estimator, the
       R/NumPy default): h = q * (n - 1). *)
    let h = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = if lo + 1 < n then lo + 1 else lo in
    let frac = h -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let histogram ~buckets xs =
  let buckets = max 1 buckets in
  match xs with
  | [] -> (0.0, 0.0, Array.make buckets 0)
  | _ ->
    let lo = minimum xs and hi = maximum xs in
    let counts = Array.make buckets 0 in
    let width = (hi -. lo) /. float_of_int buckets in
    List.iter
      (fun x ->
        let i =
          if width <= 0.0 then 0
          else min (buckets - 1) (int_of_float ((x -. lo) /. width))
        in
        (* Guard against fp rounding pushing a value one bucket out. *)
        let i = max 0 (min (buckets - 1) i) in
        counts.(i) <- counts.(i) + 1)
      xs;
    (lo, hi, counts)
