let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  let xs = List.filter (fun x -> x > 0.0) xs in
  match xs with
  | [] -> 0.0
  | _ ->
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (log_sum /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
    sqrt var

(* Order statistics must not sort with polymorphic [compare]: its NaN
   ordering is unspecified, so one NaN in a latency sample silently
   corrupts every rank. All rank-based summaries share this one path:
   drop non-finite values, sort an array once with [Float.compare]. *)
let sorted_finite xs =
  let a = Array.of_list (List.filter Float.is_finite xs) in
  Array.sort Float.compare a;
  a

(* Linear interpolation between closest ranks (type-7 estimator, the
   R/NumPy default) on an already-sorted non-empty array: h = q * (n-1). *)
let quantile_sorted a q =
  let n = Array.length a in
  let q = Float.min 1.0 (Float.max 0.0 q) in
  let h = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor h) in
  let hi = if lo + 1 < n then lo + 1 else lo in
  let frac = h -. float_of_int lo in
  a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let quantile q xs =
  match sorted_finite xs with [||] -> 0.0 | a -> quantile_sorted a q

let median xs = quantile 0.5 xs

(* The extremes share [sorted_finite]'s semantics: drop non-finite values
   before folding. [Float.min]/[Float.max] propagate NaN, so without the
   filter one NaN latency sample poisons the reported max while the
   (already-filtering) quantiles look healthy. *)
let minimum xs =
  match List.filter Float.is_finite xs with
  | [] -> 0.0
  | x :: r -> List.fold_left Float.min x r

let maximum xs =
  match List.filter Float.is_finite xs with
  | [] -> 0.0
  | x :: r -> List.fold_left Float.max x r

let percent ~part ~whole = if whole = 0.0 then 0.0 else 100.0 *. part /. whole
let ratio a b = if b = 0.0 then 0.0 else a /. b

let histogram ~buckets xs =
  let buckets = max 1 buckets in
  match List.filter Float.is_finite xs with
  | [] -> (0.0, 0.0, Array.make buckets 0)
  | xs ->
    let lo = minimum xs and hi = maximum xs in
    let counts = Array.make buckets 0 in
    let width = (hi -. lo) /. float_of_int buckets in
    List.iter
      (fun x ->
        let i =
          if width <= 0.0 then 0
          else min (buckets - 1) (int_of_float ((x -. lo) /. width))
        in
        (* Guard against fp rounding pushing a value one bucket out. *)
        let i = max 0 (min (buckets - 1) i) in
        counts.(i) <- counts.(i) + 1)
      xs;
    (lo, hi, counts)
