(** Deterministic pseudo-random number generation (splitmix64).

    All stochastic parts of the library (workload data generation, property
    tests' fixtures, k-means initialization, PointNet++ point clouds) draw
    from this generator so that every run is reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive.
    Exactly uniform (rejection sampling over the 62-bit draw, not a biased
    [mod]); a draw in the rejected tail advances the stream by one extra
    {!int64}. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** A new generator whose stream is independent of the parent's future. *)
