(* Monotonic clamp over the wall clock.

   The raw reading is converted to integer nanoseconds and folded through
   an atomic max: a reader either publishes a newer time or inherits the
   newest already published. Integer nanoseconds keep the CAS on an
   immediate (unboxed) value; the epoch in ns fits a 63-bit int until the
   year ~2262. *)

let default_source = Unix.gettimeofday
let source = Atomic.make default_source

(* newest time ever observed, in integer nanoseconds *)
let last_ns = Atomic.make 0

let rec clamp ns =
  let prev = Atomic.get last_ns in
  if ns <= prev then prev
  else if Atomic.compare_and_set last_ns prev ns then ns
  else clamp ns

let read_ns () = clamp (int_of_float ((Atomic.get source) () *. 1e9))
let now () = float_of_int (read_ns ()) *. 1e-9
let now_ns () = float_of_int (read_ns ())

let set_raw_source f =
  (* publish the source first, then reset the clamp: a racing reader can
     transiently inherit the old clamp but never a negative step within
     the new timeline *)
  Atomic.set source (match f with Some f -> f | None -> default_source);
  Atomic.set last_ns 0
