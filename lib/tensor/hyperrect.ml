type t = { lo : int array; hi : int array }

let make ~lo ~hi =
  if Array.length lo <> Array.length hi then
    invalid_arg "Hyperrect.make: dimension mismatch";
  Array.iteri
    (fun i l -> if l > hi.(i) then invalid_arg "Hyperrect.make: lo > hi")
    lo;
  { lo = Array.copy lo; hi = Array.copy hi }

let unsafe_make ~lo ~hi = { lo; hi }

let of_ranges ranges =
  let lo = Array.of_list (List.map fst ranges) in
  let hi = Array.of_list (List.map snd ranges) in
  make ~lo ~hi

let of_shape s = make ~lo:(Array.map (fun _ -> 0) s) ~hi:s

let scalar = { lo = [||]; hi = [||] }

let dims t = Array.length t.lo
let lo t i = t.lo.(i)
let hi t i = t.hi.(i)
let extent t i = t.hi.(i) - t.lo.(i)
let shape t = Array.init (dims t) (fun i -> extent t i)

let volume t =
  let v = ref 1 in
  for i = 0 to dims t - 1 do
    v := !v * extent t i
  done;
  !v

let is_empty t =
  let rec loop i = i < dims t && (extent t i = 0 || loop (i + 1)) in
  loop 0

let equal a b = a.lo = b.lo && a.hi = b.hi

let compare a b =
  match Stdlib.compare a.lo b.lo with 0 -> Stdlib.compare a.hi b.hi | c -> c

let hash t = Hashtbl.hash (t.lo, t.hi)

let mem t point =
  assert (Array.length point = dims t);
  let rec loop i =
    i >= dims t || (point.(i) >= t.lo.(i) && point.(i) < t.hi.(i) && loop (i + 1))
  in
  loop 0

let intersect a b =
  if dims a <> dims b then invalid_arg "Hyperrect.intersect: dimension mismatch";
  let lo = Array.init (dims a) (fun i -> max a.lo.(i) b.lo.(i)) in
  let hi = Array.init (dims a) (fun i -> min a.hi.(i) b.hi.(i)) in
  let rec empty i = i < dims a && (lo.(i) >= hi.(i) || empty (i + 1)) in
  if empty 0 then None else Some { lo; hi }

let bounding a b =
  if dims a <> dims b then invalid_arg "Hyperrect.bounding: dimension mismatch";
  {
    lo = Array.init (dims a) (fun i -> min a.lo.(i) b.lo.(i));
    hi = Array.init (dims a) (fun i -> max a.hi.(i) b.hi.(i));
  }

let contains ~outer ~inner =
  let rec loop i =
    i >= dims outer
    || (inner.lo.(i) >= outer.lo.(i) && inner.hi.(i) <= outer.hi.(i) && loop (i + 1))
  in
  dims outer = dims inner && loop 0

let shift t ~dim ~dist =
  let lo = Array.copy t.lo and hi = Array.copy t.hi in
  lo.(dim) <- lo.(dim) + dist;
  hi.(dim) <- hi.(dim) + dist;
  { lo; hi }

let clip t ~within = intersect t within

let with_range t ~dim ~lo:l ~hi:h =
  if l > h then invalid_arg "Hyperrect.with_range: lo > hi";
  let lo = Array.copy t.lo and hi = Array.copy t.hi in
  lo.(dim) <- l;
  hi.(dim) <- h;
  { lo; hi }

let broadcast_extent = with_range

let fold_points t ~init ~f =
  if is_empty t then init
  else begin
    let n = dims t in
    if n = 0 then f init [||]
    else begin
      let point = Array.copy t.lo in
      let acc = ref init in
      let continue = ref true in
      while !continue do
        acc := f !acc point;
        (* advance odometer, innermost dimension last *)
        let rec bump i =
          if i < 0 then continue := false
          else begin
            point.(i) <- point.(i) + 1;
            if point.(i) >= t.hi.(i) then begin
              point.(i) <- t.lo.(i);
              bump (i - 1)
            end
          end
        in
        bump (n - 1)
      done;
      !acc
    end
  end

let iter_points t ~f = fold_points t ~init:() ~f:(fun () p -> f p)

let linear_index t point =
  let n = dims t in
  let idx = ref 0 in
  for i = 0 to n - 1 do
    idx := (!idx * extent t i) + (point.(i) - t.lo.(i))
  done;
  !idx

let point_of_linear t idx =
  let n = dims t in
  let point = Array.make n 0 in
  let rem = ref idx in
  for i = n - 1 downto 0 do
    let e = extent t i in
    point.(i) <- t.lo.(i) + (!rem mod e);
    rem := !rem / e
  done;
  point

(* Renders into a caller-supplied buffer so hot paths (JIT memo-key
   signatures) avoid the intermediate strings; the byte format is pinned
   by golden traces and must not change. *)
let buf_add buf t =
  let n = dims t in
  if n = 0 then Buffer.add_string buf "[scalar]"
  else
    for i = 0 to n - 1 do
      if i > 0 then Buffer.add_char buf 'x';
      Buffer.add_char buf '[';
      Buffer.add_string buf (string_of_int t.lo.(i));
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int t.hi.(i));
      Buffer.add_char buf ')'
    done

let to_string t =
  let buf = Buffer.create 32 in
  buf_add buf t;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

let fdiv x y = if x >= 0 then x / y else -(((-x) + y - 1) / y)

(* Paper Algorithm 1, cross product of the per-dimension splits. Each
   dimension yields at most three segments: [a;b] bracket p down/up to the
   tile boundary and [c] brackets q down; aligned middle runs are kept
   whole (possibly spanning several full tiles, cf. Fig 9), while
   unaligned head and tail intervals are split off. Pieces are emitted in
   row-major order (dimension 0 slowest) via an odometer, so the hot
   caller (JIT lowering) allocates nothing beyond the piece boxes
   themselves. *)
let decompose_iter t ~tile ~f =
  if Array.length tile <> dims t then
    invalid_arg "Hyperrect.decompose: tile dimension mismatch";
  Array.iter (fun ts -> if ts < 1 then invalid_arg "Hyperrect.decompose: tile < 1") tile;
  if not (is_empty t) then begin
    let n = dims t in
    if n = 0 then f { lo = [||]; hi = [||] }
    else begin
      (* per-dimension segments, at most 3 each, in a flat buffer *)
      let seg_lo = Array.make (n * 3) 0 and seg_hi = Array.make (n * 3) 0 in
      let counts = Array.make n 0 in
      for i = 0 to n - 1 do
        let p = t.lo.(i) and q = t.hi.(i) and tl = tile.(i) in
        let a = fdiv p tl * tl in
        let b = fdiv (p + tl - 1) tl * tl in
        let c = fdiv q tl * tl in
        let base = i * 3 in
        let k = ref 0 in
        let add lo hi =
          seg_lo.(base + !k) <- lo;
          seg_hi.(base + !k) <- hi;
          incr k
        in
        if b <= c then begin
          if a < p then begin
            add p b;
            if b < c then add b c
          end
          else if a < c then add a c;
          if c < q then add c q
        end
        else add p q;
        counts.(i) <- !k (* >= 1: empty dims were excluded above *)
      done;
      let idx = Array.make n 0 in
      let continue = ref true in
      while !continue do
        let lo = Array.make n 0 and hi = Array.make n 0 in
        for i = 0 to n - 1 do
          let s = (i * 3) + idx.(i) in
          lo.(i) <- seg_lo.(s);
          hi.(i) <- seg_hi.(s)
        done;
        f { lo; hi };
        let rec bump i =
          if i < 0 then continue := false
          else begin
            idx.(i) <- idx.(i) + 1;
            if idx.(i) >= counts.(i) then begin
              idx.(i) <- 0;
              bump (i - 1)
            end
          end
        in
        bump (n - 1)
      done
    end
  end

let decompose t ~tile =
  let out = ref [] in
  decompose_iter t ~tile ~f:(fun p -> out := p :: !out);
  List.rev !out

let tile_origin point ~tile =
  Array.init (Array.length point) (fun i ->
      let p = point.(i) and ts = tile.(i) in
      let d = if p >= 0 then p / ts else -(((-p) + ts - 1) / ts) in
      d * ts)

let tile_index _t ~point ~tile =
  Array.init (Array.length point) (fun i ->
      let p = point.(i) and ts = tile.(i) in
      if p >= 0 then p / ts else -(((-p) + ts - 1) / ts))
