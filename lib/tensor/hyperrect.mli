(** Hyperrectangles in the tDFG's global lattice space (paper §3.2).

    A tensor's domain is a half-open box [\[p0,q0) x ... x \[pN-1,qN-1)].
    Every tDFG tensor, tile, and shift mask is one of these. The type is
    immutable; all operations return fresh values. *)

type t

val make : lo:int array -> hi:int array -> t
(** [make ~lo ~hi] with [lo.(i) <= hi.(i)] required ([Invalid_argument]
    otherwise). Arrays are copied. *)

val unsafe_make : lo:int array -> hi:int array -> t
(** [make] without validation or copying: the caller transfers ownership
    of both arrays and guarantees equal lengths and [lo.(i) <= hi.(i)].
    For allocation-sensitive paths (e.g. [Symrect.resolve]) that have
    already validated the bounds. *)

val of_ranges : (int * int) list -> t
(** [of_ranges [(p0,q0); ...]] builds the box from per-dimension ranges. *)

val of_shape : int array -> t
(** [of_shape s] is the box anchored at the origin: [\[0,s0) x ...]. *)

val scalar : t
(** The zero-dimensional box holding exactly one point. *)

val dims : t -> int
val lo : t -> int -> int
val hi : t -> int -> int
val extent : t -> int -> int
(** [extent t i = hi t i - lo t i]. *)

val shape : t -> int array
(** Extents of every dimension. *)

val volume : t -> int
(** Number of lattice cells; 0 iff [is_empty]. *)

val is_empty : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val mem : t -> int array -> bool
(** Point membership; the point must have [dims t] coordinates. *)

val intersect : t -> t -> t option
(** Intersection box, [None] when empty. Dimensions must agree. *)

val bounding : t -> t -> t
(** Smallest box containing both arguments. *)

val contains : outer:t -> inner:t -> bool
(** [contains ~outer ~inner] whether [inner] is a subset of [outer]. *)

val shift : t -> dim:int -> dist:int -> t
(** Translate along one dimension ([mv] node semantics). *)

val clip : t -> within:t -> t option
(** Shift-aware clipping: intersection with a bounding box, used to discard
    data moved outside the global bounding hyperrectangle. *)

val broadcast_extent : t -> dim:int -> lo:int -> hi:int -> t
(** Replace the range of [dim] with [\[lo,hi)] ([bc] node target domain). *)

val with_range : t -> dim:int -> lo:int -> hi:int -> t
(** Same as [broadcast_extent]; the general form used by shrink nodes. *)

val fold_points : t -> init:'a -> f:('a -> int array -> 'a) -> 'a
(** Row-major fold over every lattice point. The coordinate array is reused
    between calls; copy it if retained. *)

val iter_points : t -> f:(int array -> unit) -> unit

val linear_index : t -> int array -> int
(** Row-major index of a point relative to the box origin (innermost
    dimension is the last one, matching C array layout). *)

val point_of_linear : t -> int -> int array
(** Inverse of [linear_index]. *)

val to_string : t -> string
(** E.g. ["[0,4)x[2,3)"]. *)

val buf_add : Buffer.t -> t -> unit
(** Append exactly the [to_string] rendering to a buffer (hot-path variant
    that skips the intermediate string). *)

val pp : Format.formatter -> t -> unit

val decompose_iter : t -> tile:int array -> f:(t -> unit) -> unit
(** Apply [f] to each piece of {!decompose} in the same row-major order
    without materializing the list (the JIT lowering hot path). *)

val decompose : t -> tile:int array -> t list
(** Paper Algorithm 1: split the box along tile boundaries so each returned
    sub-box lies within a single tile row per dimension: aligned middle runs
    are kept whole, unaligned head/tail intervals are split off. The result
    is a partition of the input (disjoint, covering). [tile.(i) >= 1]. *)

val tile_origin : int array -> tile:int array -> int array
(** Coordinates of the tile-aligned origin containing a point. *)

val tile_index : t -> point:int array -> tile:int array -> int array
(** Which tile (per-dimension tile counters, relative to the box at the
    origin) contains [point]. *)
