(** Structured tracing & metrics for the simulator ([infs_trace]).

    A trace context [t] is threaded through the simulator, the JIT runtime
    and the engine. Components emit {e typed events} (NoC packet
    send/deliver, SRAM bank command issue/retire, DRAM bursts, TTU
    transposition, JIT lowering spans, memo hits/misses, Eq. 2 offload
    decisions, sync barriers, per-category cycle charges); a context also
    owns a {e metrics registry} of counters derived from the event stream,
    whose per-category totals reconcile exactly — same floats, same
    accumulation order — with the engine's {e Report}/{e Breakdown}.

    Traces are fully deterministic given the workload, paradigm and machine
    configuration: the simulator is a deterministic cost model and events
    carry simulated quantities (cycles, bytes), never wall-clock time. Two
    runs of the same configuration produce byte-identical JSONL — which is
    what makes traces testable golden artifacts.

    Sinks:
    - {!null} — the default; [emit] is a no-op behind a single branch, so
      instrumented code pays near-zero overhead when tracing is off. Call
      sites must guard event {e construction} with {!enabled}.
    - {!ring} — keeps the most recent events in memory (flight recorder).
    - JSON-Lines ({!to_buffer} / {!to_channel} with {!Jsonl}) — one JSON
      object per event, fixed field order, canonical float formatting
      (shortest representation that round-trips exactly); {!close} appends
      a [summary] line with every counter, sorted by name.
    - Chrome [trace_event] ({!Chrome}) — a [{"traceEvents": [...]}] JSON
      document loadable in [chrome://tracing] / Perfetto. Durations are
      simulated cycles rendered on a sequential per-family timeline (the
      viewer's microsecond unit reads as cycles). *)

type noc_dir = Send | Deliver
type cmd_phase = Issue | Retire
type span_dir = Enter | Exit

type event =
  | Noc_packet of {
      dir : noc_dir;
      category : string;  (** control | data | offload | inter-tile *)
      bytes : float;
      hops : float;
      packets : float;
    }  (** a NoC transfer; [Deliver] marks barrier-deferred completion *)
  | Local_move of { channel : string; bytes : float }
      (** intra-tile / H-tree movement that never enters the NoC *)
  | Sram_cmd of {
      phase : cmd_phase;
      kind : string;
      label : string;
      tiles : int;
      lanes : int;
      cycles : float;  (** charged cycles; 0 on [Issue] *)
    }  (** one bit-serial command at the SRAM banks *)
  | Dram_burst of { bytes : float; cycles : float }
  | Ttu_transpose of { bytes : float; cycles : float }
      (** tensor-transpose-unit layout conversion *)
  | Jit_span of {
      dir : span_dir;
      region : string;
      commands : int;
      cycles : float;  (** lowering cost; 0 on [Enter] *)
    }
  | Memo of { key : string; hit : bool }  (** JIT memo-table lookup *)
  | Offload_decision of {
      kernel : string;
      target : string;  (** in-memory | near-memory *)
      core_cycles : float;
      imc_cycles : float;
      reason : string;
    }  (** the Eq. 2 runtime verdict *)
  | Sync_barrier of { cycles : float }
  | Region_exec of { kernel : string; where : string; cycles : float }
      (** one kernel invocation completed on [where] *)
  | Fault of { site : string; action : string; detail : string; cycles : float }
      (** an injected hardware fault ([action = "inject"]) or the runtime's
          mitigation step ([action = "retry" | "fallback"]); [cycles] is the
          simulated time lost to this event (stall penalty, wasted attempt) *)
  | Counter of { name : string; value : float }
      (** a metrics charge, e.g. [cycles.core] — the reconciliation spine *)
  | Request_span of { request : string; stage : string; us : float }
      (** one lifecycle stage of a served request
          ([stage = "queue_wait" | "run" | "write_back"]), attributed to
          the request's echoed id. Unlike every other event, [us] is {e
          host} microseconds — serving latency is a wall-clock quantity —
          so serve traces are not golden-testable byte-for-byte; their
          event {e counts} still are. Derived counters:
          [serve.spans.<stage>] and [serve.span_us.<stage>]. *)

type format = Jsonl | Chrome

type t

val null : t
(** The shared disabled context. [enabled null = false]; emitting on it is
    a no-op and accumulates nothing. *)

val ring : ?capacity:int -> unit -> t
(** In-memory flight recorder keeping the last [capacity] (default 4096)
    events. *)

val to_buffer : format -> Buffer.t -> t
val to_channel : format -> out_channel -> t

val enabled : t -> bool
(** Guard event construction with this at hot call sites. *)

val emit : t -> event -> unit
(** Record one event: updates the derived metrics, then writes the event to
    the sink. No-op on {!null}. *)

val add_cycles : t -> string -> float -> unit
(** [add_cycles t cat v] emits [Counter {name = "cycles." ^ cat; value = v}].
    The engine calls this wherever it charges a [Breakdown] category, with
    the identical float, so per-category sums reconcile exactly. *)

val counter : t -> string -> float
(** Current value of one counter (0 if never written). *)

val counters : t -> (string * float) list
(** All counters, sorted by name. *)

val events_seen : t -> int
(** Events emitted so far (including on the ring after wrap-around). *)

val ring_events : t -> event list
(** Retained events, oldest first. Empty for non-ring sinks. *)

val close : t -> unit
(** Finalize the sink: JSONL appends the [summary] counters line, Chrome
    writes the closing bracket. Flushes, but does not close the channel.
    Idempotent. *)

(** {1 Serialization} (exposed for tests) *)

val event_to_json : seq:int -> event -> string
(** The exact JSONL line (without newline) for [event] at sequence [seq]. *)

val json_float : float -> string
(** Canonical float formatting: shortest of ["%.12g"]/["%.17g"] that
    round-trips exactly; integral values print without a fraction. *)
