type noc_dir = Send | Deliver
type cmd_phase = Issue | Retire
type span_dir = Enter | Exit

type event =
  | Noc_packet of {
      dir : noc_dir;
      category : string;
      bytes : float;
      hops : float;
      packets : float;
    }
  | Local_move of { channel : string; bytes : float }
  | Sram_cmd of {
      phase : cmd_phase;
      kind : string;
      label : string;
      tiles : int;
      lanes : int;
      cycles : float;
    }
  | Dram_burst of { bytes : float; cycles : float }
  | Ttu_transpose of { bytes : float; cycles : float }
  | Jit_span of { dir : span_dir; region : string; commands : int; cycles : float }
  | Memo of { key : string; hit : bool }
  | Offload_decision of {
      kernel : string;
      target : string;
      core_cycles : float;
      imc_cycles : float;
      reason : string;
    }
  | Sync_barrier of { cycles : float }
  | Region_exec of { kernel : string; where : string; cycles : float }
  | Fault of { site : string; action : string; detail : string; cycles : float }
  | Counter of { name : string; value : float }
  | Request_span of { request : string; stage : string; us : float }

type format = Jsonl | Chrome

(* ----- JSON fragments (stdlib only; fixed field order, canonical floats,
   so equal event streams serialize to equal bytes) ----- *)

let json_float f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.0f" f
  else if not (Float.is_finite f) then
    if Float.is_nan f then "\"nan\""
    else if f > 0.0 then "\"inf\""
    else "\"-inf\""
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let noc_dir_name = function Send -> "send" | Deliver -> "deliver"
let cmd_phase_name = function Issue -> "issue" | Retire -> "retire"
let span_dir_name = function Enter -> "enter" | Exit -> "exit"

let event_to_json ~seq ev =
  let b = Buffer.create 96 in
  Printf.bprintf b "{\"seq\":%d," seq;
  (match ev with
  | Noc_packet { dir; category; bytes; hops; packets } ->
    Printf.bprintf b
      "\"ev\":\"noc\",\"dir\":\"%s\",\"cat\":%s,\"bytes\":%s,\"hops\":%s,\"packets\":%s"
      (noc_dir_name dir) (json_string category) (json_float bytes)
      (json_float hops) (json_float packets)
  | Local_move { channel; bytes } ->
    Printf.bprintf b "\"ev\":\"local\",\"channel\":%s,\"bytes\":%s"
      (json_string channel) (json_float bytes)
  | Sram_cmd { phase; kind; label; tiles; lanes; cycles } ->
    Printf.bprintf b
      "\"ev\":\"sram\",\"phase\":\"%s\",\"kind\":%s,\"label\":%s,\"tiles\":%d,\"lanes\":%d,\"cycles\":%s"
      (cmd_phase_name phase) (json_string kind) (json_string label) tiles lanes
      (json_float cycles)
  | Dram_burst { bytes; cycles } ->
    Printf.bprintf b "\"ev\":\"dram\",\"bytes\":%s,\"cycles\":%s"
      (json_float bytes) (json_float cycles)
  | Ttu_transpose { bytes; cycles } ->
    Printf.bprintf b "\"ev\":\"ttu\",\"bytes\":%s,\"cycles\":%s"
      (json_float bytes) (json_float cycles)
  | Jit_span { dir; region; commands; cycles } ->
    Printf.bprintf b
      "\"ev\":\"jit\",\"dir\":\"%s\",\"region\":%s,\"commands\":%d,\"cycles\":%s"
      (span_dir_name dir) (json_string region) commands (json_float cycles)
  | Memo { key; hit } ->
    Printf.bprintf b "\"ev\":\"memo\",\"key\":%s,\"hit\":%b" (json_string key) hit
  | Offload_decision { kernel; target; core_cycles; imc_cycles; reason } ->
    Printf.bprintf b
      "\"ev\":\"decision\",\"kernel\":%s,\"target\":%s,\"core_cycles\":%s,\"imc_cycles\":%s,\"reason\":%s"
      (json_string kernel) (json_string target) (json_float core_cycles)
      (json_float imc_cycles) (json_string reason)
  | Sync_barrier { cycles } ->
    Printf.bprintf b "\"ev\":\"sync\",\"cycles\":%s" (json_float cycles)
  | Region_exec { kernel; where; cycles } ->
    Printf.bprintf b "\"ev\":\"region\",\"kernel\":%s,\"where\":%s,\"cycles\":%s"
      (json_string kernel) (json_string where) (json_float cycles)
  | Fault { site; action; detail; cycles } ->
    Printf.bprintf b
      "\"ev\":\"fault\",\"site\":%s,\"action\":%s,\"detail\":%s,\"cycles\":%s"
      (json_string site) (json_string action) (json_string detail)
      (json_float cycles)
  | Counter { name; value } ->
    Printf.bprintf b "\"ev\":\"ctr\",\"k\":%s,\"v\":%s" (json_string name)
      (json_float value)
  | Request_span { request; stage; us } ->
    Printf.bprintf b "\"ev\":\"req\",\"request\":%s,\"stage\":%s,\"us\":%s"
      (json_string request) (json_string stage) (json_float us));
  Buffer.add_char b '}';
  Buffer.contents b

(* ----- metrics registry ----- *)

module Metrics = struct
  type t = (string, float ref) Hashtbl.t

  let create () : t = Hashtbl.create 32

  let add (t : t) name v =
    match Hashtbl.find_opt t name with
    | Some r -> r := !r +. v
    | None -> Hashtbl.add t name (ref v)

  let get (t : t) name =
    match Hashtbl.find_opt t name with Some r -> !r | None -> 0.0

  let to_alist (t : t) =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end

(* ----- sinks ----- *)

type writer = { write : string -> unit; flush : unit -> unit }

type chrome_state = { w : writer; mutable first : bool; mutable now : float }

type sink =
  | Null
  | Ring of { capacity : int; buf : event option array; mutable head : int }
  | Jsonl_sink of writer
  | Chrome_sink of chrome_state

type t = {
  enabled : bool;
  metrics : Metrics.t;
  mutable seq : int;
  mutable closed : bool;
  sink : sink;
}

let null = { enabled = false; metrics = Metrics.create (); seq = 0; closed = true; sink = Null }

let make sink = { enabled = true; metrics = Metrics.create (); seq = 0; closed = false; sink }

let ring ?(capacity = 4096) () =
  make (Ring { capacity = max 1 capacity; buf = Array.make (max 1 capacity) None; head = 0 })

let buffer_writer b = { write = Buffer.add_string b; flush = (fun () -> ()) }

let channel_writer oc =
  { write = output_string oc; flush = (fun () -> flush oc) }

let of_writer fmt w =
  match fmt with
  | Jsonl -> make (Jsonl_sink w)
  | Chrome ->
    w.write "{\"traceEvents\":[";
    make (Chrome_sink { w; first = true; now = 0.0 })

let to_buffer fmt b = of_writer fmt (buffer_writer b)
let to_channel fmt oc = of_writer fmt (channel_writer oc)

let enabled t = t.enabled

(* Derived metrics: every event updates the registry so aggregate totals can
   be cross-checked against Report / Breakdown / Traffic. Only [Send]
   updates NoC byte counters ([Deliver] marks completion of bytes already
   counted). The accumulation expressions mirror Traffic exactly so that
   float results are bit-identical. *)
let record_metrics m = function
  | Noc_packet { dir = Send; category; bytes; hops; packets } ->
    Metrics.add m ("noc.bytes." ^ category) bytes;
    Metrics.add m ("noc.byte_hops." ^ category) (bytes *. hops);
    Metrics.add m ("noc.packets." ^ category) packets
  | Noc_packet { dir = Deliver; _ } -> ()
  | Local_move { channel; bytes } -> Metrics.add m ("local.bytes." ^ channel) bytes
  | Sram_cmd { phase = Retire; cycles; _ } ->
    Metrics.add m "sram.commands" 1.0;
    Metrics.add m "sram.cmd_cycles" cycles
  | Sram_cmd { phase = Issue; _ } -> ()
  | Dram_burst { bytes; _ } -> Metrics.add m "dram.bytes" bytes
  | Ttu_transpose { bytes; _ } -> Metrics.add m "ttu.bytes" bytes
  | Jit_span { dir = Exit; commands; _ } ->
    Metrics.add m "jit.lowerings" 1.0;
    Metrics.add m "jit.commands" (float_of_int commands)
  | Jit_span { dir = Enter; _ } -> ()
  | Memo { hit; _ } ->
    Metrics.add m (if hit then "jit.memo_hits" else "jit.memo_misses") 1.0
  | Offload_decision { target; _ } -> Metrics.add m ("decision." ^ target) 1.0
  | Sync_barrier _ -> Metrics.add m "sync.barriers" 1.0
  | Region_exec { where; _ } -> Metrics.add m ("regions." ^ where) 1.0
  | Fault { site; action; cycles; _ } ->
    Metrics.add m (Printf.sprintf "fault.%s.%s" site action) 1.0;
    if cycles > 0.0 then Metrics.add m ("fault.cycles." ^ site) cycles
  | Counter { name; value } -> Metrics.add m name value
  | Request_span { stage; us; _ } ->
    Metrics.add m ("serve.spans." ^ stage) 1.0;
    Metrics.add m ("serve.span_us." ^ stage) us

(* Chrome trace_event rendering: cycle-bearing events become complete ("X")
   slices on a per-family track, advancing a sequential clock; the rest are
   instants ("i"). The viewer's "us" unit reads as simulated cycles. *)
let chrome_row = function
  | Sram_cmd _ | Sync_barrier _ -> ("sram", 0)
  | Dram_burst _ | Ttu_transpose _ -> ("dram", 1)
  | Noc_packet _ | Local_move _ -> ("noc", 2)
  | Jit_span _ | Memo _ -> ("jit", 3)
  | Offload_decision _ | Region_exec _ | Fault _ | Counter _ -> ("engine", 4)
  | Request_span _ -> ("serve", 5)

let chrome_event (c : chrome_state) ev =
  let name, detail, dur =
    match ev with
    | Noc_packet { dir; category; bytes; _ } ->
      ( Printf.sprintf "noc:%s:%s" (noc_dir_name dir) category,
        Printf.sprintf "\"bytes\":%s" (json_float bytes),
        0.0 )
    | Local_move { channel; bytes } ->
      ( "local:" ^ channel, Printf.sprintf "\"bytes\":%s" (json_float bytes), 0.0 )
    | Sram_cmd { phase = Issue; _ } -> ("", "", 0.0)
    | Sram_cmd { phase = Retire; kind; label; cycles; _ } ->
      ( Printf.sprintf "%s(%s)" kind label, "", cycles )
    | Dram_burst { bytes; cycles } ->
      ("dram-burst", Printf.sprintf "\"bytes\":%s" (json_float bytes), cycles)
    | Ttu_transpose { bytes; cycles } ->
      ("ttu-transpose", Printf.sprintf "\"bytes\":%s" (json_float bytes), cycles)
    | Jit_span { dir = Enter; _ } -> ("", "", 0.0)
    | Jit_span { dir = Exit; region; commands; cycles } ->
      ( "jit:" ^ region, Printf.sprintf "\"commands\":%d" commands, cycles )
    | Memo { hit; _ } -> ((if hit then "memo-hit" else "memo-miss"), "", 0.0)
    | Offload_decision { kernel; target; _ } ->
      (Printf.sprintf "eq2:%s->%s" kernel target, "", 0.0)
    | Sync_barrier { cycles } -> ("sync-barrier", "", cycles)
    | Region_exec { kernel; where; cycles } ->
      ( Printf.sprintf "region:%s@%s" kernel where,
        Printf.sprintf "\"cycles\":%s" (json_float cycles),
        0.0 )
    | Fault { site; action; cycles; _ } ->
      ( Printf.sprintf "fault:%s:%s" site action,
        Printf.sprintf "\"cycles\":%s" (json_float cycles),
        0.0 )
    | Counter _ -> ("", "", 0.0)
    | Request_span { request; stage; us } ->
      (* host-time span: render as an instant (the Chrome clock on this
         timeline counts simulated cycles, not microseconds) *)
      ( Printf.sprintf "req:%s:%s" request stage,
        Printf.sprintf "\"us\":%s" (json_float us),
        0.0 )
  in
  (match ev with
  | Counter _ -> None (* rendered by [emit], which sees the cumulative value *)
  | _ when name = "" -> None
  | _ ->
    let _, tid = chrome_row ev in
    let args = if detail = "" then "" else Printf.sprintf ",\"args\":{%s}" detail in
    if dur > 0.0 then begin
      let ts = c.now in
      c.now <- c.now +. dur;
      Some
        (Printf.sprintf
           "{\"name\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":0,\"tid\":%d%s}"
           (json_string name) (json_float ts) (json_float dur) tid args)
    end
    else
      Some
        (Printf.sprintf
           "{\"name\":%s,\"ph\":\"i\",\"ts\":%s,\"pid\":0,\"tid\":%d,\"s\":\"t\"%s}"
           (json_string name) (json_float c.now) tid args))

let emit t ev =
  if t.enabled && not t.closed then begin
    record_metrics t.metrics ev;
    t.seq <- t.seq + 1;
    match t.sink with
    | Null -> ()
    | Ring r ->
      r.buf.(r.head) <- Some ev;
      r.head <- (r.head + 1) mod r.capacity
    | Jsonl_sink w ->
      w.write (event_to_json ~seq:t.seq ev);
      w.write "\n"
    | Chrome_sink c -> (
      let line =
        match ev with
        | Counter { name; _ } ->
          (* render the cumulative value, not the increment *)
          Some
            (Printf.sprintf
               "{\"name\":%s,\"ph\":\"C\",\"ts\":%s,\"pid\":0,\"args\":{%s:%s}}"
               (json_string name) (json_float c.now) (json_string name)
               (json_float (Metrics.get t.metrics name)))
        | _ -> chrome_event c ev
      in
      match line with
      | None -> ()
      | Some line ->
        if c.first then c.first <- false else c.w.write ",";
        c.w.write "\n";
        c.w.write line)
  end

let add_cycles t cat v =
  if t.enabled then emit t (Counter { name = "cycles." ^ cat; value = v })

let counter t name = Metrics.get t.metrics name
let counters t = Metrics.to_alist t.metrics
let events_seen t = t.seq

let ring_events t =
  match t.sink with
  | Ring r ->
    let out = ref [] in
    for i = 0 to r.capacity - 1 do
      match r.buf.((r.head + r.capacity - 1 - i) mod r.capacity) with
      | Some ev -> out := ev :: !out
      | None -> ()
    done;
    !out
  | _ -> []

let close t =
  if t.enabled && not t.closed then begin
    t.closed <- true;
    match t.sink with
    | Null | Ring _ -> ()
    | Jsonl_sink w ->
      let b = Buffer.create 256 in
      Buffer.add_string b "{\"ev\":\"summary\",\"counters\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (json_string k);
          Buffer.add_char b ':';
          Buffer.add_string b (json_float v))
        (counters t);
      Buffer.add_string b "}}\n";
      w.write (Buffer.contents b);
      w.flush ()
    | Chrome_sink c ->
      c.w.write "\n]}\n";
      c.w.flush ()
  end
