(** Seeded hardware-fault models for the simulator.

    A {!spec} describes [what] can go wrong and how often; an {!injector}
    is a per-run instance that draws faults from deterministic, per-site
    RNG streams.  Determinism contract: the injector is seeded from
    [spec.seed] combined with a caller-supplied scope string (workload
    name + paradigm), so identical specs produce identical fault
    sequences regardless of pool scheduling or [--jobs] count, and one
    site's draw count never perturbs another site's stream.

    Four fault sites are modeled:
    - [Sram]: transient bit flips in the bit-serial SRAM arrays while a
      shift/compute command toggles bitlines (probability scales with
      the command's array occupancy).
    - [Noc]: link degradation — a degraded bulk transfer takes
      [jitter]x its nominal cycles.
    - [Dram]: channel stalls adding a fixed penalty to a burst.
    - [Watchdog]: near-memory stream-engine hangs detected by a
      watchdog; the attempt's cycles are wasted and it must be retried
      or re-targeted. *)

type site = Sram | Noc | Dram | Watchdog

val site_name : site -> string
(** ["sram" | "noc" | "dram" | "watchdog"]. *)

val all_sites : site list
(** Fixed order: [Sram; Noc; Dram; Watchdog]. *)

type spec = {
  seed : int;  (** base seed for all fault streams *)
  sram_flip : float;  (** per-array-cycle bit-flip probability *)
  noc_degrade : float;  (** per-bulk-transfer degradation probability *)
  noc_jitter : float;  (** latency multiplier of a degraded transfer (>= 1) *)
  dram_stall : float;  (** per-burst stall probability *)
  dram_stall_cycles : float;  (** stall penalty in cycles *)
  watchdog : float;  (** per-offload stream-engine timeout probability *)
  max_retries : int;  (** bounded retries before paradigm fallback *)
}

val none : spec
(** All rates zero, seed 0 — the default.  An engine run with [none]
    installs no injector and behaves byte-identically to a build
    without fault support. *)

val is_none : spec -> bool
(** Structural equality with {!none}.  Note a spec like ["seed=42"]
    (all rates zero but non-default seed) is [not (is_none spec)]:
    hooks are armed and counted, yet nothing is ever injected. *)

val parse : string -> (spec, string) result
(** Parse a comma-separated [key=value] spec, e.g.
    ["seed=42,sram=2e-4,noc=0.05,jitter=2.0,dram=0.01,stall=4096,watchdog=0.05,retries=2"].
    Keys: [seed], [sram], [noc], [jitter], [dram], [stall], [watchdog],
    [retries]; omitted keys keep their {!none} defaults (jitter 2.0,
    stall 2048, retries 2).  Probabilities must lie in [0, 1], [jitter]
    must be >= 1, and [retries]/[stall] must be non-negative. *)

val to_string : spec -> string
(** Canonical round-trippable rendering (all keys, fixed order). *)

(** {1 Injector} *)

type injector

val create : spec -> scope:string -> injector
(** [create spec ~scope] builds per-site splitmix64 streams seeded from
    [spec.seed] and [scope].  Use a scope that identifies the run
    deterministically (e.g. ["stencil1d|inf-s"]). *)

val spec_of : injector -> spec
val max_retries : injector -> int

val sram_flip : injector -> exposure:int -> bool
(** One draw per SRAM command; [exposure] is the command's array-cycle
    occupancy, so longer bit-serial operations are proportionally more
    likely to take a flip: p = 1 - (1 - sram_flip)^exposure. *)

val noc_factor : injector -> float
(** One draw per bulk NoC transfer: [1.0] when healthy, [noc_jitter]
    when the link is degraded. *)

val dram_stall_cycles : injector -> float
(** One draw per DRAM burst: [0.0] when healthy, [dram_stall_cycles]
    when the channel stalls. *)

val watchdog_timeout : injector -> bool
(** One draw per near-memory offload attempt. *)

val injected : injector -> site -> int
(** Number of faults actually injected at [site] so far. *)

val total_injected : injector -> int
val draws : injector -> int
(** Total RNG draws across all sites — i.e. the number of fault-check
    sites the run passed through; used by the bench overhead gate. *)
