type site = Sram | Noc | Dram | Watchdog

let site_name = function
  | Sram -> "sram"
  | Noc -> "noc"
  | Dram -> "dram"
  | Watchdog -> "watchdog"

let all_sites = [ Sram; Noc; Dram; Watchdog ]
let site_index = function Sram -> 0 | Noc -> 1 | Dram -> 2 | Watchdog -> 3

type spec = {
  seed : int;
  sram_flip : float;
  noc_degrade : float;
  noc_jitter : float;
  dram_stall : float;
  dram_stall_cycles : float;
  watchdog : float;
  max_retries : int;
}

let none =
  {
    seed = 0;
    sram_flip = 0.0;
    noc_degrade = 0.0;
    noc_jitter = 2.0;
    dram_stall = 0.0;
    dram_stall_cycles = 2048.0;
    watchdog = 0.0;
    max_retries = 2;
  }

let is_none s = s = none

let to_string s =
  Printf.sprintf
    "seed=%d,sram=%g,noc=%g,jitter=%g,dram=%g,stall=%g,watchdog=%g,retries=%d"
    s.seed s.sram_flip s.noc_degrade s.noc_jitter s.dram_stall
    s.dram_stall_cycles s.watchdog s.max_retries

let parse str =
  let ( let* ) = Result.bind in
  let prob key v =
    match float_of_string_opt v with
    | Some f when f >= 0.0 && f <= 1.0 -> Ok f
    | _ -> Error (Printf.sprintf "faults: %s must be a probability in [0,1], got %S" key v)
  in
  let nonneg key v =
    match float_of_string_opt v with
    | Some f when f >= 0.0 -> Ok f
    | _ -> Error (Printf.sprintf "faults: %s must be a non-negative number, got %S" key v)
  in
  let fields =
    String.split_on_char ',' str
    |> List.filter (fun f -> String.trim f <> "")
  in
  let step acc field =
    let* acc = acc in
    match String.index_opt field '=' with
    | None -> Error (Printf.sprintf "faults: expected key=value, got %S" field)
    | Some i ->
        let key = String.trim (String.sub field 0 i) in
        let v = String.trim (String.sub field (i + 1) (String.length field - i - 1)) in
        (match key with
        | "seed" -> (
            match int_of_string_opt v with
            | Some n -> Ok { acc with seed = n }
            | None -> Error (Printf.sprintf "faults: seed must be an integer, got %S" v))
        | "sram" ->
            let* f = prob key v in
            Ok { acc with sram_flip = f }
        | "noc" ->
            let* f = prob key v in
            Ok { acc with noc_degrade = f }
        | "jitter" -> (
            match float_of_string_opt v with
            | Some f when f >= 1.0 -> Ok { acc with noc_jitter = f }
            | _ -> Error (Printf.sprintf "faults: jitter must be >= 1, got %S" v))
        | "dram" ->
            let* f = prob key v in
            Ok { acc with dram_stall = f }
        | "stall" ->
            let* f = nonneg key v in
            Ok { acc with dram_stall_cycles = f }
        | "watchdog" ->
            let* f = prob key v in
            Ok { acc with watchdog = f }
        | "retries" -> (
            match int_of_string_opt v with
            | Some n when n >= 0 -> Ok { acc with max_retries = n }
            | _ -> Error (Printf.sprintf "faults: retries must be a non-negative integer, got %S" v))
        | _ -> Error (Printf.sprintf "faults: unknown key %S" key))
  in
  List.fold_left step (Ok none) fields

type injector = {
  spec : spec;
  streams : Rng.t array;  (* one per site, indexed by site_index *)
  counts : int array;  (* injections per site *)
  mutable n_draws : int;
}

(* Per-site streams are seeded independently so the number of draws at
   one site never shifts another site's sequence; the scope string
   decouples streams from pool scheduling (same workload+paradigm =>
   same faults at any --jobs count). *)
let create spec ~scope =
  let stream site =
    let h = Hashtbl.hash (scope, site_name site) in
    Rng.create (spec.seed lxor (h * 2654435761))
  in
  {
    spec;
    streams = Array.of_list (List.map stream all_sites);
    counts = Array.make (List.length all_sites) 0;
    n_draws = 0;
  }

let spec_of inj = inj.spec
let max_retries inj = inj.spec.max_retries

let draw inj site p =
  inj.n_draws <- inj.n_draws + 1;
  let hit = p > 0.0 && Rng.float inj.streams.(site_index site) 1.0 < p in
  if hit then begin
    let i = site_index site in
    inj.counts.(i) <- inj.counts.(i) + 1
  end;
  hit

let sram_flip inj ~exposure =
  let p =
    if inj.spec.sram_flip <= 0.0 || exposure <= 0 then 0.0
    else 1.0 -. ((1.0 -. inj.spec.sram_flip) ** float_of_int exposure)
  in
  draw inj Sram p

let noc_factor inj =
  if draw inj Noc inj.spec.noc_degrade then inj.spec.noc_jitter else 1.0

let dram_stall_cycles inj =
  if draw inj Dram inj.spec.dram_stall then inj.spec.dram_stall_cycles else 0.0

let watchdog_timeout inj = draw inj Watchdog inj.spec.watchdog
let injected inj site = inj.counts.(site_index site)
let total_injected inj = Array.fold_left ( + ) 0 inj.counts
let draws inj = inj.n_draws
