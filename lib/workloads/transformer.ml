module W = Infinity_stream.Workload

(* exp(x) is approximated by the repeated-squaring identity
     pexp(x) = max(0, 1 + x/2^s)^(2^s)     with s = 8 squarings,
   staged through an array because mini-C expressions cannot share
   subexpressions: one seeding kernel writes the clamped base, then
   [squarings] in-place squaring kernels raise it to the 256th power.
   The max(0, .) clamp makes the approximation exact-zero (instead of
   oscillating) once x <= -256, which is what keeps the softmax finite
   for arbitrarily large logit gaps (see the .mli). *)
let squarings = 8
let pexp_scale = 1.0 /. 256.0

let square_kernels ~prefix ~arr ~loops ~indices =
  List.init squarings (fun s ->
      Ast.Kernel
        (Ast.kernel
           (Printf.sprintf "%s%d" prefix (Stdlib.( + ) s 1))
           loops
           [ Ast.store arr indices Ast.(load arr indices * load arr indices) ]))

(* ---- scaled-dot-product attention ---- *)

let attention ?(logit_scale = 1.0) ~batch ~seq ~dh () =
  let sc = logit_scale /. sqrt (float_of_int dh) in
  let prog =
    let open Ast in
    let b = Symaff.var "B" and t = Symaff.var "T" and d = Symaff.var "Dh" in
    let row2 = [ loop "r" (c 0) t; loop "cc" (c 0) t ] in
    let p_rc = [ i "r"; i "cc" ] in
    program ~name:"attention" ~params:[ "B"; "T"; "Dh" ]
      ~arrays:
        [
          array "Q" Dtype.Fp32 [ b; t; d ];
          array "K" Dtype.Fp32 [ b; t; d ];
          array "V" Dtype.Fp32 [ b; t; d ];
          array "S" Dtype.Fp32 [ t; t ];
          array "M" Dtype.Fp32 [ t ];
          array "P" Dtype.Fp32 [ t; t ];
          array "Z" Dtype.Fp32 [ t ];
          array "AV" Dtype.Fp32 [ t; d ];
          array "O" Dtype.Fp32 [ b; t; d ];
        ]
      [
        Host_loop
          ( loop "bb" (c 0) b,
            [
              (* S = Q K^T for this batch (scratch: re-zeroed per head) *)
              Kernel (kernel "at_szero" row2 [ store "S" p_rc (fconst 0.0) ]);
              Kernel
                (kernel "at_qk"
                   (row2 @ [ loop "kk" (c 0) d ])
                   [
                     accum Op.Add "S" p_rc
                       (load "Q" [ i "bb"; i "r"; i "kk" ]
                       * load "K" [ i "bb"; i "cc"; i "kk" ]);
                   ]);
              (* row max for the max-subtraction softmax *)
              Kernel
                (kernel "at_minit"
                   [ loop "r" (c 0) t ]
                   [ store "M" [ i "r" ] (fconst (-1e30)) ]);
              Kernel
                (kernel "at_rowmax" row2
                   [ accum Op.Max "M" [ i "r" ] (load "S" p_rc) ]);
              (* P = pexp(scale * (S - rowmax)); argument <= 0, so the
                 base stays in [0,1] and the row max contributes exactly 1 *)
              Kernel
                (kernel "at_pinit" row2
                   [
                     store "P" p_rc
                       (max_ (fconst 0.0)
                          (fconst 1.0
                          + (load "S" p_rc - load "M" [ i "r" ])
                            * fconst (sc *. pexp_scale)));
                   ]);
            ]
            @ square_kernels ~prefix:"at_psq" ~arr:"P" ~loops:row2
                ~indices:[ i "r"; i "cc" ]
            @ [
                (* row normalization: Z >= 1 because the max element is 1 *)
                Kernel
                  (kernel "at_zzero"
                     [ loop "r" (c 0) t ]
                     [ store "Z" [ i "r" ] (fconst 0.0) ]);
                Kernel
                  (kernel "at_rowsum" row2
                     [ accum Op.Add "Z" [ i "r" ] (load "P" p_rc) ]);
                Kernel
                  (kernel "at_pnorm" row2
                     [ store "P" p_rc (load "P" p_rc / load "Z" [ i "r" ]) ]);
                (* AV = P V, then scatter into this batch's output slab
                   (the one-iteration loop keeps the batch index
                   loop-carried, cf. kmeans' km_scatter) *)
                Kernel
                  (kernel "at_avzero"
                     [ loop "r" (c 0) t; loop "nn" (c 0) d ]
                     [ store "AV" [ i "r"; i "nn" ] (fconst 0.0) ]);
                Kernel
                  (kernel "at_av"
                     [ loop "r" (c 0) t; loop "nn" (c 0) d; loop "cc" (c 0) t ]
                     [
                       accum Op.Add "AV" [ i "r"; i "nn" ]
                         (load "P" [ i "r"; i "cc" ]
                         * load "V" [ i "bb"; i "cc"; i "nn" ]);
                     ]);
                Kernel
                  (kernel "at_out"
                     [
                       loop "ob" (i "bb") (i "bb" +% 1);
                       loop "r" (c 0) t;
                       loop "nn" (c 0) d;
                     ]
                     [
                       store "O" [ i "ob"; i "r"; i "nn" ]
                         (load "AV" [ i "r"; i "nn" ]);
                     ]);
              ] );
      ]
  in
  W.make ~check_arrays:[ "O" ]
    ~name:(Printf.sprintf "attention/b%dxt%dxd%d" batch seq dh)
    ~params:[ ("B", batch); ("T", seq); ("Dh", dh) ]
    ~inputs:
      (lazy
        [
          ("Q", Data.uniform_range ~seed:101 ~lo:(-1.0) ~hi:1.0 (batch * seq * dh));
          ("K", Data.uniform_range ~seed:103 ~lo:(-1.0) ~hi:1.0 (batch * seq * dh));
          ("V", Data.uniform_range ~seed:107 ~lo:(-1.0) ~hi:1.0 (batch * seq * dh));
        ])
    prog

(* ---- layer normalization ---- *)

let layernorm ~rows ~dim =
  let inv_d = 1.0 /. float_of_int dim in
  let prog =
    let open Ast in
    let r = Symaff.var "R" and d = Symaff.var "D" in
    let row2 = [ loop "r" (c 0) r; loop "dd" (c 0) d ] in
    let x = load "X" [ i "r"; i "dd" ] in
    let mu = load "MU" [ i "r" ] in
    program ~name:"layernorm" ~params:[ "R"; "D" ]
      ~arrays:
        [
          array "X" Dtype.Fp32 [ r; d ];
          array "G" Dtype.Fp32 [ d ];
          array "Bt" Dtype.Fp32 [ d ];
          array "MU" Dtype.Fp32 [ r ];
          array "VAR" Dtype.Fp32 [ r ];
          array "SD" Dtype.Fp32 [ r ];
          array "Y" Dtype.Fp32 [ r; d ];
        ]
      [
        Kernel
          (kernel "ln_mean" row2
             [ accum Op.Add "MU" [ i "r" ] (x * fconst inv_d) ]);
        Kernel
          (kernel "ln_var" row2
             [ accum Op.Add "VAR" [ i "r" ] ((x - mu) * (x - mu) * fconst inv_d) ]);
        Kernel
          (kernel "ln_sd"
             [ loop "r" (c 0) r ]
             [
               store "SD" [ i "r" ]
                 (sqrt_ (load "VAR" [ i "r" ] + fconst 1e-5));
             ]);
        (* normalize and the gain/bias affine map are separate kernels:
           fused they need more than the 8 wordline registers and the
           schedule would spill *)
        Kernel
          (kernel "ln_norm" row2
             [
               store "Y" [ i "r"; i "dd" ] ((x - mu) / load "SD" [ i "r" ]);
             ]);
        Kernel
          (kernel "ln_affine" row2
             [
               store "Y" [ i "r"; i "dd" ]
                 ((load "Y" [ i "r"; i "dd" ] * load "G" [ i "dd" ])
                 + load "Bt" [ i "dd" ]);
             ]);
      ]
  in
  W.make ~check_arrays:[ "Y" ]
    ~name:(Printf.sprintf "layernorm/%dx%d" rows dim)
    ~params:[ ("R", rows); ("D", dim) ]
    ~inputs:
      (lazy
        [
          ("X", Data.uniform_range ~seed:109 ~lo:(-2.0) ~hi:2.0 (rows * dim));
          ("G", Data.uniform_range ~seed:113 ~lo:(0.5) ~hi:1.5 dim);
          ("Bt", Data.uniform_range ~seed:127 ~lo:(-0.5) ~hi:0.5 dim);
        ])
    prog

(* ---- transformer MLP block: X W1 + b1 -> GELU -> A W2 + b2 ---- *)

let mlp ~rows ~dim ~hidden =
  let prog =
    let open Ast in
    let r = Symaff.var "R" and d = Symaff.var "D" and h = Symaff.var "H" in
    let rowh = [ loop "r" (c 0) r; loop "hh" (c 0) h ] in
    let p_rh = [ i "r"; i "hh" ] in
    program ~name:"mlp" ~params:[ "R"; "D"; "H" ]
      ~arrays:
        [
          array "X" Dtype.Fp32 [ r; d ];
          array "W1" Dtype.Fp32 [ d; h ];
          array "B1" Dtype.Fp32 [ h ];
          array "Hh" Dtype.Fp32 [ r; h ];
          array "Gm" Dtype.Fp32 [ r; h ];
          array "Act" Dtype.Fp32 [ r; h ];
          array "W2" Dtype.Fp32 [ h; d ];
          array "B2" Dtype.Fp32 [ d ];
          array "Y" Dtype.Fp32 [ r; d ];
        ]
      ([
         Kernel
           (kernel "mlp_mm1"
              (rowh @ [ loop "kk" (c 0) d ])
              [
                accum Op.Add "Hh" p_rh
                  (load "X" [ i "r"; i "kk" ] * load "W1" [ i "kk"; i "hh" ]);
              ]);
         Kernel
           (kernel "mlp_bias1" rowh
              [ store "Hh" p_rh (load "Hh" p_rh + load "B1" [ i "hh" ]) ]);
         (* GELU(u) ~ u * sigmoid(1.702 u); sigmoid(z) = p/(1+p) with
            p = pexp(clamp(z, -100, 100)) — the clamp keeps the squaring
            chain inside fp32 range for any pre-activation *)
         Kernel
           (kernel "mlp_gexp" rowh
              [
                store "Gm" p_rh
                  (max_ (fconst 0.0)
                     (fconst 1.0
                     + min_ (fconst 100.0)
                         (max_ (fconst (-100.0)) (fconst 1.702 * load "Hh" p_rh))
                       * fconst pexp_scale));
              ]);
       ]
      @ square_kernels ~prefix:"mlp_gsq" ~arr:"Gm" ~loops:rowh
          ~indices:[ i "r"; i "hh" ]
      @ [
          Kernel
            (kernel "mlp_gelu" rowh
               [
                 store "Act" p_rh
                   (load "Hh" p_rh
                   * (load "Gm" p_rh / (fconst 1.0 + load "Gm" p_rh)));
               ]);
          Kernel
            (kernel "mlp_mm2"
               [ loop "r" (c 0) r; loop "nn" (c 0) d; loop "kk" (c 0) h ]
               [
                 accum Op.Add "Y"
                   [ i "r"; i "nn" ]
                   (load "Act" [ i "r"; i "kk" ] * load "W2" [ i "kk"; i "nn" ]);
               ]);
          Kernel
            (kernel "mlp_bias2"
               [ loop "r" (c 0) r; loop "nn" (c 0) d ]
               [
                 store "Y" [ i "r"; i "nn" ]
                   (load "Y" [ i "r"; i "nn" ] + load "B2" [ i "nn" ]);
               ]);
        ])
  in
  W.make ~check_arrays:[ "Y" ]
    ~name:(Printf.sprintf "mlp/%dx%dx%d" rows dim hidden)
    ~params:[ ("R", rows); ("D", dim); ("H", hidden) ]
    ~inputs:
      (lazy
        [
          ("X", Data.uniform_range ~seed:131 ~lo:(-1.0) ~hi:1.0 (rows * dim));
          ("W1", Data.uniform_range ~seed:137 ~lo:(-0.2) ~hi:0.2 (dim * hidden));
          ("B1", Data.uniform_range ~seed:139 ~lo:(-0.1) ~hi:0.1 hidden);
          ("W2", Data.uniform_range ~seed:149 ~lo:(-0.2) ~hi:0.2 (hidden * dim));
          ("B2", Data.uniform_range ~seed:151 ~lo:(-0.1) ~hi:0.1 dim);
        ])
    prog
