(** The benchmark suite registry (paper Table 3 + microbenchmarks +
    PointNet++), at paper scale and at reduced test scale. *)

type entry = {
  label : string;  (** Table 3 name, e.g. ["mm"] *)
  variants : (string * Infinity_stream.Workload.t) list;
      (** dataflow variants (["in"] / ["out"]) or a single [""] variant *)
}

val table3 : unit -> entry list
(** The 10 Table 3 workloads plus the transformer-block trio
    (attention / layernorm / mlp, see {!Transformer}) at paper scale.
    For multi-dataflow entries the harness picks the best variant per
    paradigm, like the paper. *)

val test_scale : unit -> entry list
(** The same suite at sizes small enough for functional checking. *)

val all_variants : entry list -> (string * Infinity_stream.Workload.t) list
(** Flattened [(label/variant, workload)] pairs. *)
