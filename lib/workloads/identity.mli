(** Byte-identity rendering of the test-scale catalog: the golden surface
    that pins the simulator's observable output (report JSON, metrics
    snapshot, normalized profile) across the hot-path rewrite. *)

val render : Catalog.entry -> string
(** Deterministic JSON document for one catalog entry: every
    (variant, paradigm) combination run with functional checking,
    metrics, and the profiler enabled. Ends in a newline. *)

val write_dir : string -> string list
(** Render every test-scale entry into [dir]/<label>.json (the layout
    [test/golden/identity] is committed under); returns the paths. *)
