(** Transformer-block workloads (attention, layernorm, MLP), expressed in
    the affine mini-C AST so the whole stack — interpreter oracle,
    paradigm engine, fault injection, serving — runs them unchanged.

    The ISA has no transcendental ops, so [exp] is the repeated-squaring
    approximation [pexp x = max 0. (1. +. x /. 256.) ** 256.], staged
    through an array as one seeding kernel plus {!squarings} in-place
    squaring kernels. All differential tests compare executions of the
    {e same} program, so the approximation never weakens the oracle.

    {b Numerical stability of the softmax.} The attention softmax
    {e requires} max-subtraction: the row max M is computed first (an
    [Op.Max] reduction seeded at -1e30) and the staged exponential is
    applied to [scale *. (s -. m)], which is always [<= 0]. Hence the
    seeded base [max 0. (1. +. x /. 256.)] lies in [\[0, 1\]], the row
    maximum contributes exactly 1.0, the row sum Z is [>= 1], and the
    final division is safe — no overflow, no [nan]/[inf] — for
    arbitrarily large logits (the [max 0.] clamp floors bases past
    [x <= -256] at exact zero rather than letting the squaring chain
    oscillate). Without the subtraction, a logit of only [x >= 89]
    would already overflow the true [exp] in fp32; the stability test
    in [test/test_transformer.ml] drives [|logit| >= 80] through both
    the kernels and the interpreter and asserts finiteness and
    bit-exact agreement. *)

val squarings : int
(** Squaring-kernel count of the staged exponential (8, i.e. 2^8 = 256). *)

val attention :
  ?logit_scale:float ->
  batch:int -> seq:int -> dh:int -> unit -> Infinity_stream.Workload.t
(** Scaled-dot-product attention over [batch] independent heads:
    [S = Q K^T / sqrt dh] (staged as zero + accumulate kernels),
    row-softmax with max-subtraction (row-max, seed, {!squarings}
    squarings, row-sum, normalize), then [O = P V]. Arrays Q/K/V/O are
    [batch * seq * dh]; the host loop walks batches and kernels stay
    within the compiler's 3-loop limit. [?logit_scale] (default 1.0)
    multiplies the logits {e before} the softmax — large values push
    [|logit|] past the fp32 [exp] overflow point and exercise the
    max-subtraction path (used by the stability test). Checked array:
    [O]. *)

val layernorm : rows:int -> dim:int -> Infinity_stream.Workload.t
(** Row-wise layer normalization with gain/bias:
    [y = (x - mean) / sqrt (var + 1e-5) * g + b]. Mean and variance are
    row reductions (each summand pre-scaled by [1/dim]); the reciprocal
    standard deviation uses the ISA's [Op.Sqrt]. Checked array: [Y]. *)

val mlp : rows:int -> dim:int -> hidden:int -> Infinity_stream.Workload.t
(** Transformer MLP block: [X W1 + b1 -> GELU -> A W2 + b2] with the
    sigmoid-form GELU approximation [u * sigmoid (1.702 *. u)], the
    sigmoid built from the staged exponential ([p/(1+p)], argument
    clamped to [\[-100, 100\]] so the squaring chain stays in fp32
    range). Checked array: [Y]. *)
