(* Byte-identity surface for the simulator speed program (DESIGN.md §16).

   One catalog entry renders to one JSON document covering every
   (variant, paradigm) combination: the full [Report.to_json], the
   metrics snapshot, and the normalized profiler report. The rendering
   is pure text — no timestamps, no host times (prof is normalized), no
   scheduling-dependent series — so a golden file pins the complete
   observable output of the simulator for that entry. The hot-path
   rewrite must leave every byte unchanged; `infs_run identity-golden`
   regenerates the files when a *cost-model* change is intentional. *)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report

(* Functional checking on: the scalar-interpreter comparison lands in the
   report ("correctness"), so the golden also pins bit-exact numerics.
   Cold data (no [warm_data]): the DRAM / residency / transpose paths are
   part of the pinned surface. No compile sharing: hermetic per run. *)
let run_combo paradigm w =
  let metrics = Metrics.create () in
  let prof = Prof.create () in
  let options = { E.default_options with E.functional = true; metrics; prof } in
  let r = E.run_exn ~options paradigm w in
  Json.Obj
    [
      ("report", R.to_json r);
      ("metrics", Metrics.to_json (Metrics.snapshot metrics));
      ("prof", Prof.to_json ~normalize:true prof);
    ]

let entry_doc (e : Catalog.entry) =
  Json.Obj
    (List.concat_map
       (fun (vlabel, w) ->
         List.map
           (fun p ->
             (vlabel ^ "|" ^ E.paradigm_to_string p, run_combo p w))
           E.all_paradigms)
       e.variants)

let render e = Json.to_string (entry_doc e) ^ "\n"

let write_dir dir =
  List.map
    (fun (e : Catalog.entry) ->
      let path = Filename.concat dir (e.label ^ ".json") in
      let oc = open_out_bin path in
      output_string oc (render e);
      close_out oc;
      path)
    (Catalog.test_scale ())
