type entry = {
  label : string;
  variants : (string * Infinity_stream.Workload.t) list;
}

let single label w = { label; variants = [ ("", w) ] }

let table3 () =
  [
    single "stencil1d" (Stencil.stencil1d ~iters:10 ~n:4_194_304);
    single "stencil2d" (Stencil.stencil2d ~iters:10 ~n:2048);
    single "stencil3d" (Stencil.stencil3d ~iters:10 ~nx:512 ~ny:512 ~nz:16);
    single "dwt2d" (Dwt2d.dwt2d ~n:2048);
    single "gauss_elim" (Gauss.gauss_elim ~n:2048);
    single "conv2d" (Conv.conv2d ~n:2048);
    single "conv3d" (Conv.conv3d ~hw:256 ~channels:64);
    {
      label = "mm";
      variants =
        [ ("in", Mm.mm_inner ~n:2048); ("out", Mm.mm_outer ~n:2048) ];
    };
    {
      label = "kmeans";
      variants =
        [
          ("in", Kmeans.kmeans_inner ~points:32768 ~dim:128 ~centers:128);
          ("out", Kmeans.kmeans_outer ~points:32768 ~dim:128 ~centers:128);
        ];
    };
    {
      label = "gather_mlp";
      variants =
        [
          ("in", Gather_mlp.gather_mlp_inner ~rows:32768 ~feat:128 ~vocab:65536);
          ("out", Gather_mlp.gather_mlp_outer ~rows:32768 ~feat:128 ~vocab:65536);
        ];
    };
    single "attention" (Transformer.attention ~batch:8 ~seq:512 ~dh:64 ());
    single "layernorm" (Transformer.layernorm ~rows:4096 ~dim:1024);
    single "mlp" (Transformer.mlp ~rows:2048 ~dim:1024 ~hidden:4096);
  ]

let test_scale () =
  [
    single "stencil1d" (Stencil.stencil1d ~iters:3 ~n:512);
    single "stencil2d" (Stencil.stencil2d ~iters:2 ~n:48);
    single "stencil3d" (Stencil.stencil3d ~iters:2 ~nx:12 ~ny:12 ~nz:8);
    single "dwt2d" (Dwt2d.dwt2d ~n:32);
    single "gauss_elim" (Gauss.gauss_elim ~n:24);
    single "conv2d" (Conv.conv2d ~n:32);
    single "conv3d" (Conv.conv3d ~hw:12 ~channels:4);
    {
      label = "mm";
      variants = [ ("in", Mm.mm_inner ~n:16); ("out", Mm.mm_outer ~n:16) ];
    };
    {
      label = "kmeans";
      variants =
        [
          ("in", Kmeans.kmeans_inner ~points:64 ~dim:8 ~centers:4);
          ("out", Kmeans.kmeans_outer ~points:64 ~dim:8 ~centers:4);
        ];
    };
    {
      label = "gather_mlp";
      variants =
        [
          ("in", Gather_mlp.gather_mlp_inner ~rows:32 ~feat:8 ~vocab:64);
          ("out", Gather_mlp.gather_mlp_outer ~rows:32 ~feat:8 ~vocab:64);
        ];
    };
    single "attention" (Transformer.attention ~batch:2 ~seq:8 ~dh:4 ());
    single "layernorm" (Transformer.layernorm ~rows:12 ~dim:8);
    single "mlp" (Transformer.mlp ~rows:8 ~dim:8 ~hidden:16);
  ]

let all_variants entries =
  List.concat_map
    (fun e ->
      List.map
        (fun (v, w) ->
          ((if v = "" then e.label else e.label ^ "/" ^ v), w))
        e.variants)
    entries
