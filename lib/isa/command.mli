(** In-memory commands produced by JIT lowering and executed by the tensor
    controllers (paper §4.2, Fig. 9).

    A command applies to a box of tiles in tile-coordinate space (the paper
    encodes the same information as linearized [start:stride:count] tile
    patterns; the box form generalizes to N dimensions) and, within each
    touched tile, to [lanes_per_tile] active bitlines. The simulator charges
    SRAM occupancy, H-tree and NoC traffic from these fields; functional
    values are computed by the tDFG evaluator, so commands carry performance
    -relevant structure only. *)

type kind =
  | Compute of { op : Op.t; const_operands : int }
      (** Element-wise bit-serial op on aligned wordline slots. Constant
          operands are broadcast to bitlines first (charged by the sim). *)
  | Intra_shift of { dim : int; distance : int }
      (** Move active lanes [distance] bitlines within their own tile. *)
  | Inter_shift of { dim : int; tile_dist : int; intra_dist : int }
      (** Move active lanes across [tile_dist] tiles along [dim], landing
          [intra_dist] bitlines into the destination tile (Alg. 2's
          inter-tile command; crosses the H-tree, and the NoC when source
          and destination tiles live in different L3 banks). *)
  | Broadcast of { dim : int; copies : int }
      (** Replicate each source tile to [copies] destination tiles along
          [dim] (bc node lowering; uses NoC multicast). *)
  | Reduce of { op : Op.t; width : int }
      (** Full intra-tile tree reduction along a dimension of [width] lanes:
          ceil(log2 width) rounds of interleaved shift + compute. *)
  | Sync
      (** Global barrier: all packets of preceding inter-tile shifts must
          have arrived (paper §4.2 "Synchronization"). *)

type t = {
  kind : kind;
  dtype : Dtype.t;
  tile_box : Hyperrect.t;  (** touched tiles, tile coordinates *)
  lanes_per_tile : int;  (** active bitlines in each touched tile *)
  bitline_pat : Pattern.t option;  (** lane pattern along the operated dim *)
  label : string;
}

val make :
  ?bitline_pat:Pattern.t ->
  ?label:string ->
  kind ->
  dtype:Dtype.t ->
  tile_box:Hyperrect.t ->
  lanes_per_tile:int ->
  t

val sync : t
(** A bare synchronization barrier (applies to no tiles). *)

val kind_equal : kind -> kind -> bool
(** Structural equality on [kind] (same result as polymorphic [=], without
    the generic-compare cost; hot in the simulator's dedup check). *)

val tiles_touched : t -> int
val elements_touched : t -> int
(** [tiles_touched * lanes_per_tile]. *)

val is_sync : t -> bool
val moves_data : t -> bool
(** True for shifts and broadcasts (the "Move" cycle category). *)

val array_cycles : t -> int
(** SRAM-array occupancy for executing this command on one tile (bit-serial
    latency model; excludes NoC transfer for inter-tile shifts, which the
    simulator adds from the layout). *)

val fault_exposure : t -> int
(** Array cycles during which the command actively toggles bitlines — the
    window a transient SRAM bit flip can corrupt. [array_cycles] for every
    data-touching kind, 0 for [Sync]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
