
type kind =
  | Compute of { op : Op.t; const_operands : int }
  | Intra_shift of { dim : int; distance : int }
  | Inter_shift of { dim : int; tile_dist : int; intra_dist : int }
  | Broadcast of { dim : int; copies : int }
  | Reduce of { op : Op.t; width : int }
  | Sync

type t = {
  kind : kind;
  dtype : Dtype.t;
  tile_box : Hyperrect.t;
  lanes_per_tile : int;
  bitline_pat : Pattern.t option;
  label : string;
}

let make ?bitline_pat ?(label = "") kind ~dtype ~tile_box ~lanes_per_tile =
  if lanes_per_tile < 0 then invalid_arg "Command.make: negative lanes";
  { kind; dtype; tile_box; lanes_per_tile; bitline_pat; label }

let sync =
  {
    kind = Sync;
    dtype = Dtype.Int32;
    tile_box = Hyperrect.scalar;
    lanes_per_tile = 0;
    bitline_pat = None;
    label = "sync";
  }

(* Structural equality without polymorphic compare: the simulator runs
   this once per command in its dedup check, and [Op.t] constructors are
   immediates, so field-wise [=] on ints suffices. *)
let kind_equal a b =
  match (a, b) with
  | ( Compute { op = o1; const_operands = c1 },
      Compute { op = o2; const_operands = c2 } ) ->
    o1 == o2 && c1 = c2
  | ( Intra_shift { dim = d1; distance = x1 },
      Intra_shift { dim = d2; distance = x2 } ) ->
    d1 = d2 && x1 = x2
  | ( Inter_shift { dim = d1; tile_dist = t1; intra_dist = i1 },
      Inter_shift { dim = d2; tile_dist = t2; intra_dist = i2 } ) ->
    d1 = d2 && t1 = t2 && i1 = i2
  | Broadcast { dim = d1; copies = c1 }, Broadcast { dim = d2; copies = c2 } ->
    d1 = d2 && c1 = c2
  | Reduce { op = o1; width = w1 }, Reduce { op = o2; width = w2 } ->
    o1 == o2 && w1 = w2
  | Sync, Sync -> true
  | _ -> false

let tiles_touched t = Hyperrect.volume t.tile_box
let elements_touched t = tiles_touched t * t.lanes_per_tile

let is_sync t = match t.kind with Sync -> true | _ -> false

let moves_data t =
  match t.kind with
  | Intra_shift _ | Inter_shift _ | Broadcast _ -> true
  | Compute _ | Reduce _ | Sync -> false

let array_cycles t =
  match t.kind with
  | Compute { op; const_operands } ->
    let broadcast_const = const_operands * Bitserial.copy_cycles t.dtype in
    broadcast_const + Bitserial.op_cycles op t.dtype
  | Intra_shift { distance; _ } -> Bitserial.intra_shift_cycles t.dtype ~distance
  | Inter_shift { intra_dist; _ } ->
    (* Read active lanes out to the H-tree plus settling the residual
       intra-tile distance on arrival; inter-bank transfer is added by the
       NoC model. *)
    (2 * Dtype.bits t.dtype) + Bitserial.intra_shift_cycles t.dtype ~distance:intra_dist
  | Broadcast _ ->
    (* Source read once; writes at destinations are pipelined behind the
       H-tree / NoC multicast. *)
    2 * Dtype.bits t.dtype
  | Reduce { op; width } ->
    let rounds = Bitserial.reduction_rounds ~width in
    let cost = ref 0 in
    let dist = ref 1 in
    for _ = 1 to rounds do
      cost :=
        !cost
        + Bitserial.intra_shift_cycles t.dtype ~distance:!dist
        + Bitserial.op_cycles op t.dtype;
      dist := !dist * 2
    done;
    !cost
  | Sync -> 0

(* Bit-serial cycles during which this command actively toggles SRAM
   bitlines on some array — the window a transient bit flip can land in.
   Barriers move no data, so they carry no exposure. *)
let fault_exposure t = match t.kind with Sync -> 0 | _ -> array_cycles t

let kind_string = function
  | Compute { op; const_operands } ->
    Printf.sprintf "cmp(%s%s)" (Op.to_string op)
      (if const_operands > 0 then Printf.sprintf ",%dconst" const_operands else "")
  | Intra_shift { dim; distance } -> Printf.sprintf "sh.intra(d%d,%+d)" dim distance
  | Inter_shift { dim; tile_dist; intra_dist } ->
    Printf.sprintf "sh.inter(d%d,%+dT%+d)" dim tile_dist intra_dist
  | Broadcast { dim; copies } -> Printf.sprintf "bc(d%d,x%d)" dim copies
  | Reduce { op; width } -> Printf.sprintf "red(%s,w%d)" (Op.to_string op) width
  | Sync -> "sync"

let to_string t =
  if is_sync t then "sync"
  else
    Printf.sprintf "%s %s tiles=%s lanes=%d%s"
      (kind_string t.kind)
      (Dtype.to_string t.dtype)
      (Hyperrect.to_string t.tile_box)
      t.lanes_per_tile
      (match t.bitline_pat with
      | Some p -> Printf.sprintf " pat=%s" (Pattern.to_string p)
      | None -> "")

let pp ppf t = Format.pp_print_string ppf (to_string t)
