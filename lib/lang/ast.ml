type index =
  | Aff of Symaff.t
  | Indirect of { array : string; indices : Symaff.t list }

type expr =
  | Load of { array : string; indices : index list }
  | Float_const of float
  | Scalar of string
  | Binop of Op.t * expr * expr
  | Unop of Op.t * expr

type loop = { ivar : string; lo : Symaff.t; hi : Symaff.t }

type kernel_stmt = {
  target : string;
  target_indices : index list;
  rhs : expr;
  accum : Op.t option;
}

type kernel = { kname : string; loops : loop list; body : kernel_stmt list }

type host_stmt =
  | Host_loop of loop * host_stmt list
  | Let_scalar of string * expr
  | Kernel of kernel

type array_decl = { aname : string; dtype : Dtype.t; dims : Symaff.t list }

type program = {
  name : string;
  params : string list;
  arrays : array_decl list;
  body : host_stmt list;
}

(* Construction helpers *)

let i = Symaff.var
let c = Symaff.const
let ( +! ) = Symaff.add
let ( -! ) = Symaff.sub
let ( +% ) = Symaff.add_const

let load array indices = Load { array; indices = List.map (fun a -> Aff a) indices }
let load_ix array indices = Load { array; indices }
let fconst f = Float_const f
let scalar s = Scalar s
let ( + ) a b = Binop (Op.Add, a, b)
let ( - ) a b = Binop (Op.Sub, a, b)
let ( * ) a b = Binop (Op.Mul, a, b)
let ( / ) a b = Binop (Op.Div, a, b)
let min_ a b = Binop (Op.Min, a, b)
let max_ a b = Binop (Op.Max, a, b)
let relu a = Unop (Op.Relu, a)
let sqrt_ a = Unop (Op.Sqrt, a)

let loop ivar lo hi = { ivar; lo; hi }

let store target indices rhs =
  { target; target_indices = List.map (fun a -> Aff a) indices; rhs; accum = None }

let store_ix target target_indices rhs = { target; target_indices; rhs; accum = None }

let accum op target indices rhs =
  { target; target_indices = List.map (fun a -> Aff a) indices; rhs; accum = Some op }

let accum_ix op target target_indices rhs = { target; target_indices; rhs; accum = Some op }

let kernel kname loops body = { kname; loops; body }

let array aname dtype dims = { aname; dtype; dims }

let program ~name ~params ~arrays body = { name; params; arrays; body }

(* Queries *)

let rec stmt_kernels = function
  | Host_loop (_, body) -> List.concat_map stmt_kernels body
  | Let_scalar _ -> []
  | Kernel k -> [ k ]

let kernels p = List.concat_map stmt_kernels p.body

let rec expr_loads = function
  | Load { array; indices } -> [ (array, indices) ]
  | Float_const _ | Scalar _ -> []
  | Binop (_, a, b) -> expr_loads a @ expr_loads b
  | Unop (_, a) -> expr_loads a

let rec expr_scalars = function
  | Scalar s -> [ s ]
  | Load _ | Float_const _ -> []
  | Binop (_, a, b) -> expr_scalars a @ expr_scalars b
  | Unop (_, a) -> expr_scalars a

let rec expr_ops = function
  | Load _ | Float_const _ | Scalar _ -> []
  | Binop (op, a, b) -> expr_ops a @ expr_ops b @ [ op ]
  | Unop (op, a) -> expr_ops a @ [ op ]

let kernel_flops_per_iter (k : kernel) =
  List.fold_left
    (fun acc st ->
      let rhs_ops = List.length (expr_ops st.rhs) in
      let accum_ops = match st.accum with Some _ -> 1 | None -> 0 in
      Stdlib.( + ) acc (Stdlib.( + ) rhs_ops accum_ops))
    0 k.body

let index_has_indirect = function Aff _ -> false | Indirect _ -> true

let kernel_has_indirect (k : kernel) =
  List.exists
    (fun st ->
      List.exists index_has_indirect st.target_indices
      || List.exists
           (fun (_, ixs) -> List.exists index_has_indirect ixs)
           (expr_loads st.rhs))
    k.body

(* Validation *)

module Sset = Set.Make (String)

let validate p =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let arrays = List.map (fun a -> (a.aname, List.length a.dims)) p.arrays in
  let param_set = Sset.of_list p.params in
  let find_array name = List.assoc_opt name arrays in
  let check_saff ~ivars a =
    let bad =
      List.filter
        (fun v -> (not (Sset.mem v param_set)) && not (Sset.mem v ivars))
        (Symaff.vars a)
    in
    match bad with
    | [] -> Ok ()
    | v :: _ -> err "unbound variable %s in affine expression %s" v (Symaff.to_string a)
  in
  let check_index ~ivars = function
    | Aff a -> check_saff ~ivars a
    | Indirect { array; indices } -> (
      match find_array array with
      | None -> err "indirect through undeclared array %s" array
      | Some rank when rank <> List.length indices ->
        err "indirect array %s rank mismatch" array
      | Some _ ->
        List.fold_left
          (fun acc a -> let* () = acc in check_saff ~ivars a)
          (Ok ()) indices)
  in
  let check_access ~ivars array indices =
    match find_array array with
    | None -> err "access to undeclared array %s" array
    | Some rank when rank <> List.length indices ->
      err "array %s accessed with %d indices, declared rank %d" array
        (List.length indices) rank
    | Some _ ->
      List.fold_left
        (fun acc ix -> let* () = acc in check_index ~ivars ix)
        (Ok ()) indices
  in
  let rec check_expr ~ivars ~scalars = function
    | Load { array; indices } -> check_access ~ivars array indices
    | Float_const _ -> Ok ()
    | Scalar s ->
      if Sset.mem s scalars then Ok () else err "unbound scalar %s" s
    | Binop (_, a, b) ->
      let* () = check_expr ~ivars ~scalars a in
      check_expr ~ivars ~scalars b
    | Unop (_, a) -> check_expr ~ivars ~scalars a
  in
  let check_kernel ~ivars ~scalars k =
    let names = List.map (fun l -> l.ivar) k.loops in
    let distinct = List.length (List.sort_uniq String.compare names) = List.length names in
    if not distinct then err "kernel %s: duplicate loop variables" k.kname
    else begin
      let* () =
        List.fold_left
          (fun acc l ->
            let* () = acc in
            let* () = check_saff ~ivars l.lo in
            check_saff ~ivars l.hi)
          (Ok ()) k.loops
        (* bounds of loop i may reference outer kernel ivars too; allow all *)
      in
      let ivars = List.fold_left (fun s n -> Sset.add n s) ivars names in
      List.fold_left
        (fun acc st ->
          let* () = acc in
          let* () = check_access ~ivars st.target st.target_indices in
          check_expr ~ivars ~scalars st.rhs)
        (Ok ()) k.body
    end
  in
  let rec check_stmt ~ivars ~scalars = function
    | [] -> Ok ()
    | Host_loop (l, body) :: rest ->
      let* () = check_saff ~ivars l.lo in
      let* () = check_saff ~ivars l.hi in
      let* () = check_stmt ~ivars:(Sset.add l.ivar ivars) ~scalars body in
      check_stmt ~ivars ~scalars rest
    | Let_scalar (name, e) :: rest ->
      let* () = check_expr ~ivars ~scalars e in
      check_stmt ~ivars ~scalars:(Sset.add name scalars) rest
    | Kernel k :: rest ->
      let* () = check_kernel ~ivars ~scalars k in
      check_stmt ~ivars ~scalars rest
  in
  let* () =
    List.fold_left
      (fun acc (a : array_decl) ->
        let* () = acc in
        List.fold_left
          (fun acc d -> let* () = acc in check_saff ~ivars:Sset.empty d)
          (Ok ()) a.dims)
      (Ok ()) p.arrays
  in
  check_stmt ~ivars:Sset.empty ~scalars:Sset.empty p.body

(* Pretty-printing *)

let pp_index ppf = function
  | Aff a -> Format.fprintf ppf "[%s]" (Symaff.to_string a)
  | Indirect { array; indices } ->
    Format.fprintf ppf "[%s%s]" array
      (String.concat ""
         (List.map (fun a -> Printf.sprintf "[%s]" (Symaff.to_string a)) indices))

let rec pp_expr ppf = function
  | Load { array; indices } ->
    Format.fprintf ppf "%s%a" array
      (fun ppf -> List.iter (pp_index ppf))
      indices
  | Float_const f -> Format.fprintf ppf "%g" f
  | Scalar s -> Format.pp_print_string ppf s
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (Op.to_string op) pp_expr b
  | Unop (op, a) -> Format.fprintf ppf "%s(%a)" (Op.to_string op) pp_expr a

let pp_kernel_stmt ppf st =
  Format.fprintf ppf "%s%a %s %a;" st.target
    (fun ppf -> List.iter (pp_index ppf))
    st.target_indices
    (match st.accum with Some op -> Op.to_string op ^ "=" | None -> "=")
    pp_expr st.rhs

let pp_loop ppf (l : loop) =
  Format.fprintf ppf "for %s in [%s, %s)" l.ivar (Symaff.to_string l.lo)
    (Symaff.to_string l.hi)

let rec pp_host ppf = function
  | Host_loop (l, body) ->
    Format.fprintf ppf "@[<v 2>%a {@,%a@]@,}" pp_loop l
      (Format.pp_print_list pp_host) body
  | Let_scalar (name, e) -> Format.fprintf ppf "let %s = %a;" name pp_expr e
  | Kernel k ->
    Format.fprintf ppf "@[<v 2>kernel %s %a {@,%a@]@,}" k.kname
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_loop)
      k.loops
      (Format.pp_print_list pp_kernel_stmt)
      k.body

let pp_program ppf p =
  Format.fprintf ppf "@[<v>program %s(%s)@," p.name (String.concat ", " p.params);
  List.iter
    (fun (a : array_decl) ->
      Format.fprintf ppf "%s %s%s;@," (Dtype.to_string a.dtype) a.aname
        (String.concat ""
           (List.map (fun d -> Printf.sprintf "[%s]" (Symaff.to_string d)) a.dims)))
    p.arrays;
  Format.pp_print_list pp_host ppf p.body;
  Format.fprintf ppf "@]"
