(** Mini-C frontend: the "plain C" programs the paper compiles from.

    A program is a sequence of host statements: sequential host loops,
    scalar computations, and {e kernels} — perfect affine loop nests whose
    statements read/write arrays with affine (or one-level indirect)
    indices. Kernels are the offloadable regions (the paper's
    [inf_cfg]/[inf_end] regions, Fig. 7); everything else runs on the host
    core. All Table 3 workloads and PointNet++ stages are expressed in this
    AST (see [Infs_workloads]). *)

type index =
  | Aff of Symaff.t  (** affine in induction variables and parameters *)
  | Indirect of { array : string; indices : Symaff.t list }
      (** one-level indirect access [A\[B\[i\]\]] (paper §3.3); only legal
          inside kernels that stay partly near-memory *)

type expr =
  | Load of { array : string; indices : index list }
  | Float_const of float
  | Scalar of string  (** runtime float scalar (e.g. [akk] in Fig. 7) *)
  | Binop of Op.t * expr * expr
  | Unop of Op.t * expr

type loop = { ivar : string; lo : Symaff.t; hi : Symaff.t }

type kernel_stmt = {
  target : string;
  target_indices : index list;
  rhs : expr;
  accum : Op.t option;  (** [Some op] means [target op= rhs] (reduction) *)
}

type kernel = {
  kname : string;
  loops : loop list;  (** outermost first; iteration domain of the region *)
  body : kernel_stmt list;
}

type host_stmt =
  | Host_loop of loop * host_stmt list
  | Let_scalar of string * expr  (** host-evaluated scalar definition *)
  | Kernel of kernel

type array_decl = { aname : string; dtype : Dtype.t; dims : Symaff.t list }

type program = {
  name : string;
  params : string list;  (** runtime integer size parameters *)
  arrays : array_decl list;
  body : host_stmt list;
}

(** {1 Construction helpers} *)

val i : string -> Symaff.t
(** Alias of {!Symaff.var}. *)

val c : int -> Symaff.t
val ( +! ) : Symaff.t -> Symaff.t -> Symaff.t
val ( -! ) : Symaff.t -> Symaff.t -> Symaff.t
val ( +% ) : Symaff.t -> int -> Symaff.t
(** [aff +% k] adds a constant. *)

val load : string -> Symaff.t list -> expr
val load_ix : string -> index list -> expr
val fconst : float -> expr
val scalar : string -> expr
val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val min_ : expr -> expr -> expr
val max_ : expr -> expr -> expr
val relu : expr -> expr
val sqrt_ : expr -> expr

val loop : string -> Symaff.t -> Symaff.t -> loop
val store : string -> Symaff.t list -> expr -> kernel_stmt
val store_ix : string -> index list -> expr -> kernel_stmt
val accum : Op.t -> string -> Symaff.t list -> expr -> kernel_stmt
val accum_ix : Op.t -> string -> index list -> expr -> kernel_stmt
val kernel : string -> loop list -> kernel_stmt list -> kernel

val array : string -> Dtype.t -> Symaff.t list -> array_decl

val program :
  name:string ->
  params:string list ->
  arrays:array_decl list ->
  host_stmt list ->
  program

(** {1 Queries} *)

val kernels : program -> kernel list
(** All kernels, in syntactic order (host loops unrolled structurally, not
    dynamically). *)

val expr_loads : expr -> (string * index list) list
(** Every array access in an expression, leftmost first. *)

val expr_scalars : expr -> string list
val expr_ops : expr -> Op.t list
(** All operator applications in evaluation order (for op counting). *)

val kernel_flops_per_iter : kernel -> int
(** Arithmetic operations one iteration of the kernel body performs. *)

val kernel_has_indirect : kernel -> bool

val validate : program -> (unit, string) result
(** Check that every array/scalar/parameter reference is declared, index
    arities match array ranks, and kernel loop variables are distinct. *)

val pp_program : Format.formatter -> program -> unit
(** Readable C-like rendering (for docs and debugging). *)
