let fp32 = Dense.fp32

(* [data] is allocated lazily on first access: performance-only runs
   (functional = false) never read or write array contents, and zeroing
   every declared array dominates [create] for large workloads. Arrays
   observable through any accessor start zeroed exactly as before. *)
type array_store = { dims : int list; size : int; mutable data : float array }

type env = {
  prog : Ast.program;
  params : (string, int) Hashtbl.t;
  arrays : (string, array_store) Hashtbl.t;
  scalars : (string, float) Hashtbl.t;
  ivars : (string, int) Hashtbl.t;
  mutable ops : int;
  kernel_iters : (string, int) Hashtbl.t;
}

(* Exception-based lookups avoid the [Some v] allocation of [find_opt];
   this is the innermost call of every symbolic-bound resolution. *)
let lookup_int env name =
  match Hashtbl.find env.ivars name with
  | v -> v
  | exception Not_found -> (
    match Hashtbl.find env.params name with
    | v -> v
    | exception Not_found ->
      failwith (Printf.sprintf "Interp: unbound integer %s" name))

let eval_saff env a = Symaff.eval a (lookup_int env)

let create prog ~params =
  match Ast.validate prog with
  | Error e -> Error (Printf.sprintf "program %s: %s" prog.Ast.name e)
  | Ok () ->
    let missing =
      List.filter (fun p -> not (List.mem_assoc p params)) prog.Ast.params
    in
    if missing <> [] then
      Error ("missing parameters: " ^ String.concat ", " missing)
    else begin
      let env =
        {
          prog;
          params = Hashtbl.create 8;
          arrays = Hashtbl.create 8;
          scalars = Hashtbl.create 8;
          ivars = Hashtbl.create 8;
          ops = 0;
          kernel_iters = Hashtbl.create 8;
        }
      in
      List.iter (fun (k, v) -> Hashtbl.replace env.params k v) params;
      let bad = ref None in
      List.iter
        (fun (a : Ast.array_decl) ->
          let dims = List.map (eval_saff env) a.dims in
          if List.exists (fun d -> d < 0) dims then
            bad := Some (Printf.sprintf "array %s has a negative extent" a.aname)
          else
            let size = List.fold_left ( * ) 1 dims in
            Hashtbl.replace env.arrays a.aname { dims; size; data = [||] })
        prog.Ast.arrays;
      match !bad with Some e -> Error e | None -> Ok env
    end

let data_of (a : array_store) =
  if Array.length a.data = 0 && a.size > 0 then a.data <- Array.make a.size 0.0;
  a.data

let find_array env name =
  match Hashtbl.find_opt env.arrays name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Interp: unknown array %s" name)

let set_array env name data =
  let a = find_array env name in
  if Array.length data <> a.size then
    invalid_arg
      (Printf.sprintf "Interp.set_array %s: length %d, expected %d" name
         (Array.length data) a.size);
  Array.blit (Array.map fp32 data) 0 (data_of a) 0 (Array.length data)

let get_array env name = Array.copy (data_of (find_array env name))
let array_dims env name = (find_array env name).dims

let flat_index ~aname dims idxs =
  let rec go acc dims idxs =
    match (dims, idxs) with
    | [], [] -> acc
    | d :: dims, i :: idxs ->
      if i < 0 || i >= d then
        failwith
          (Printf.sprintf "Interp: %s index %d out of range [0,%d)" aname i d)
      else go ((acc * d) + i) dims idxs
    | _ -> failwith (Printf.sprintf "Interp: %s rank mismatch" aname)
  in
  go 0 dims idxs

let rec eval_index env = function
  | Ast.Aff a -> eval_saff env a
  | Ast.Indirect { array; indices } ->
    let st = find_array env array in
    let idxs = List.map (eval_saff env) indices in
    let v = (data_of st).(flat_index ~aname:array st.dims idxs) in
    int_of_float v

and eval_expr env = function
  | Ast.Load { array; indices } ->
    let st = find_array env array in
    let idxs = List.map (eval_index env) indices in
    (data_of st).(flat_index ~aname:array st.dims idxs)
  | Ast.Float_const f -> fp32 f
  | Ast.Scalar s -> (
    match Hashtbl.find_opt env.scalars s with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Interp: unbound scalar %s" s))
  | Ast.Binop (op, a, b) ->
    let va = eval_expr env a in
    let vb = eval_expr env b in
    env.ops <- env.ops + 1;
    fp32 (Op.eval op [ va; vb ])
  | Ast.Unop (op, a) ->
    let va = eval_expr env a in
    env.ops <- env.ops + 1;
    fp32 (Op.eval op [ va ])

let exec_kernel_stmt env (st : Ast.kernel_stmt) =
  let v = eval_expr env st.rhs in
  let arr = find_array env st.target in
  let idxs = List.map (eval_index env) st.target_indices in
  let flat = flat_index ~aname:st.target arr.dims idxs in
  let data = data_of arr in
  match st.accum with
  | None -> data.(flat) <- v
  | Some op ->
    env.ops <- env.ops + 1;
    data.(flat) <- fp32 (Op.eval op [ data.(flat); v ])

let with_ivar env name v f =
  let old = Hashtbl.find_opt env.ivars name in
  Hashtbl.replace env.ivars name v;
  f ();
  match old with
  | Some o -> Hashtbl.replace env.ivars name o
  | None -> Hashtbl.remove env.ivars name

let exec_kernel env (k : Ast.kernel) =
  let iters = ref 0 in
  let rec nest = function
    | [] ->
      incr iters;
      List.iter (exec_kernel_stmt env) k.body
    | (l : Ast.loop) :: rest ->
      let lo = eval_saff env l.lo and hi = eval_saff env l.hi in
      for v = lo to hi - 1 do
        with_ivar env l.ivar v (fun () -> nest rest)
      done
  in
  nest k.loops;
  let prev = Option.value ~default:0 (Hashtbl.find_opt env.kernel_iters k.kname) in
  Hashtbl.replace env.kernel_iters k.kname (prev + !iters)

let rec exec_stmt ~on_kernel env = function
  | Ast.Host_loop (l, body) ->
    let lo = eval_saff env l.lo and hi = eval_saff env l.hi in
    for v = lo to hi - 1 do
      with_ivar env l.ivar v (fun () -> List.iter (exec_stmt ~on_kernel env) body)
    done
  | Ast.Let_scalar (name, e) -> Hashtbl.replace env.scalars name (eval_expr env e)
  | Ast.Kernel k -> on_kernel env k

let run ?on_kernel env =
  let on_kernel = Option.value ~default:exec_kernel on_kernel in
  env.ops <- 0;
  Hashtbl.reset env.kernel_iters;
  List.iter (exec_stmt ~on_kernel env) env.prog.Ast.body

let lookup_int = lookup_int

let get_scalar env s =
  match Hashtbl.find_opt env.scalars s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Interp: unbound scalar %s" s)

let read_cell env name idxs =
  let a = find_array env name in
  (data_of a).(flat_index ~aname:name a.dims idxs)

let write_cell env name idxs v =
  let a = find_array env name in
  (data_of a).(flat_index ~aname:name a.dims idxs) <- fp32 v

let op_count env = env.ops

let kernel_iterations env =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.kernel_iters []
  |> List.sort compare

let run_program prog ~params ~inputs =
  match create prog ~params with
  | Error e -> Error e
  | Ok env ->
    List.iter (fun (name, data) -> set_array env name data) inputs;
    (try
       run env;
       Ok
         (List.map
            (fun (a : Ast.array_decl) -> (a.aname, get_array env a.aname))
            prog.Ast.arrays)
     with Failure e -> Error e)
