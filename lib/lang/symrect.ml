type t = (Symaff.t * Symaff.t) array

let make ranges = Array.of_list ranges

let of_hyperrect h =
  Array.init (Hyperrect.dims h) (fun i ->
      (Symaff.const (Hyperrect.lo h i), Symaff.const (Hyperrect.hi h i)))

let dims t = Array.length t
let lo t i = fst t.(i)
let hi t i = snd t.(i)
let ranges t = Array.to_list t

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun (la, ha) (lb, hb) -> Symaff.equal la lb && Symaff.equal ha hb)
       a b

let compare a b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else begin
    let result = ref 0 in
    (try
       Array.iteri
         (fun i (la, ha) ->
           let lb, hb = b.(i) in
           let c = Symaff.compare la lb in
           if c <> 0 then begin
             result := c;
             raise Exit
           end;
           let c = Symaff.compare ha hb in
           if c <> 0 then begin
             result := c;
             raise Exit
           end)
         a
     with Exit -> ());
    !result
  end

let hash t = Hashtbl.hash (Array.map (fun (l, h) -> (Symaff.hash l, Symaff.hash h)) t)

let shift t ~dim ~dist =
  Array.mapi
    (fun i (l, h) ->
      if i = dim then (Symaff.add_const l dist, Symaff.add_const h dist) else (l, h))
    t

let with_range t ~dim ~lo ~hi =
  Array.mapi (fun i r -> if i = dim then (lo, hi) else r) t

let collapse t ~dim =
  Array.mapi
    (fun i ((l, _) as r) -> if i = dim then (l, Symaff.add_const l 1) else r)
    t

let subst t x e = Array.map (fun (l, h) -> (Symaff.subst l x e, Symaff.subst h x e)) t

let max_aff ?min_var a b =
  if Symaff.leq ?min_var a b then Some b
  else if Symaff.leq ?min_var b a then Some a
  else None

let min_aff ?min_var a b =
  if Symaff.leq ?min_var a b then Some a
  else if Symaff.leq ?min_var b a then Some b
  else None

let intersect ?min_var a b =
  if Array.length a <> Array.length b then None
  else begin
    let out = Array.make (Array.length a) (Symaff.zero, Symaff.zero) in
    let ok = ref true in
    Array.iteri
      (fun i (la, ha) ->
        let lb, hb = b.(i) in
        (* identical ranges need no comparability proof (the common case:
           the compiler aligned the tensors before intersecting) *)
        if Symaff.equal la lb && Symaff.equal ha hb then out.(i) <- (la, ha)
        else
          match (max_aff ?min_var la lb, min_aff ?min_var ha hb) with
          | Some l, Some h when Symaff.leq ?min_var l h -> out.(i) <- (l, h)
          | _ -> ok := false)
      a;
    if !ok then Some out else None
  end

let contains ?min_var outer inner =
  Array.length outer = Array.length inner
  && Array.for_all2
       (fun (lo_o, hi_o) (lo_i, hi_i) ->
         Symaff.leq ?min_var lo_o lo_i && Symaff.leq ?min_var hi_i hi_o)
       outer inner

let is_empty ?min_var t =
  Array.exists (fun (l, h) -> Symaff.leq ?min_var h l) t

let resolve t env =
  (* Manual loops (rather than Array.map with closures) keep this hot path
     allocation-free apart from the two result arrays themselves. Bounds
     are evaluated lo-sweep then hi-sweep then validated, matching the
     original map/map/check ordering for exception behaviour. *)
  let n = Array.length t in
  let lo = Array.make n 0 in
  for i = 0 to n - 1 do
    lo.(i) <- Symaff.eval (fst (Array.unsafe_get t i)) env
  done;
  let hi = Array.make n 0 in
  for i = 0 to n - 1 do
    hi.(i) <- Symaff.eval (snd (Array.unsafe_get t i)) env
  done;
  for i = 0 to n - 1 do
    if lo.(i) > hi.(i) then
      invalid_arg
        (Printf.sprintf "Symrect.resolve: reversed bounds [%d,%d) in dim %d"
           lo.(i) hi.(i) i)
  done;
  (* bounds just validated; the fresh arrays are handed over un-copied *)
  Hyperrect.unsafe_make ~lo ~hi

let to_string t =
  if Array.length t = 0 then "[scalar]"
  else
    String.concat "x"
      (Array.to_list
         (Array.map
            (fun (l, h) ->
              Printf.sprintf "[%s,%s)" (Symaff.to_string l) (Symaff.to_string h))
            t))

let pp ppf t = Format.pp_print_string ppf (to_string t)
