(* Normal form: constant plus an assoc list of (variable, coefficient),
   sorted by variable name with all coefficients non-zero. The
   representation is canonical, so structural equality, polymorphic compare
   and Hashtbl.hash are all sound on [t] — the tDFG and the e-graph rely on
   this for hash-consing nodes that embed affine bounds. *)
type t = { consts : int; terms : (string * int) list }

let const c = { consts = c; terms = [] }
let var x = { consts = 0; terms = [ (x, 1) ] }
let term c x = if c = 0 then const 0 else { consts = 0; terms = [ (x, c) ] }

let zero = const 0
let one = const 1

let rec merge_terms a b =
  match (a, b) with
  | [], t | t, [] -> t
  | (xa, ca) :: ra, (xb, cb) :: rb ->
    let cmp = String.compare xa xb in
    if cmp < 0 then (xa, ca) :: merge_terms ra b
    else if cmp > 0 then (xb, cb) :: merge_terms a rb
    else
      let c = ca + cb in
      if c = 0 then merge_terms ra rb else (xa, c) :: merge_terms ra rb

let add a b = { consts = a.consts + b.consts; terms = merge_terms a.terms b.terms }

let scale k t =
  if k = 0 then zero
  else { consts = k * t.consts; terms = List.map (fun (x, c) -> (x, k * c)) t.terms }

let neg t = scale (-1) t
let sub a b = add a (neg b)
let add_const t c = { t with consts = t.consts + c }

let is_const t = if t.terms = [] then Some t.consts else None
let vars t = List.map fst t.terms
let coeff t x = match List.assoc_opt x t.terms with Some c -> c | None -> 0
let const_part t = t.consts

let subst t x e =
  let c = coeff t x in
  if c = 0 then t
  else add { t with terms = List.remove_assoc x t.terms } (scale c e)

(* Top-level recursion instead of a fold so evaluation allocates nothing:
   a closure over [env] per call adds up — the JIT resolves every live
   node's bounds through here on each kernel invocation. *)
let rec eval_terms env acc terms =
  match terms with
  | [] -> acc
  | (x, c) :: tl -> eval_terms env (acc + (c * env x)) tl

let eval t env = eval_terms env t.consts t.terms

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let leq ?(min_var = 1) a b =
  let d = sub b a in
  List.for_all (fun (_, c) -> c >= 0) d.terms
  && d.consts + (min_var * List.fold_left (fun acc (_, c) -> acc + c) 0 d.terms) >= 0

let to_string t =
  let buf = Buffer.create 16 in
  let first = ref true in
  List.iter
    (fun (x, c) ->
      if c > 0 && not !first then Buffer.add_char buf '+';
      if c = 1 then Buffer.add_string buf x
      else if c = -1 then (
        Buffer.add_char buf '-';
        Buffer.add_string buf x)
      else Buffer.add_string buf (Printf.sprintf "%d%s" c x);
      first := false)
    t.terms;
  if t.consts <> 0 || !first then begin
    if t.consts >= 0 && not !first then Buffer.add_char buf '+';
    Buffer.add_string buf (string_of_int t.consts)
  end;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)
let hash (t : t) = Hashtbl.hash t
