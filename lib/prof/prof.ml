(* Host-time span profiler.

   Mirrors the Trace/Metrics observability pattern: [null] is a permanently
   disabled registry, every hot call site guards on [enabled] (one bool
   test), and a disabled registry performs no clock read, allocation or
   hashing — the bench asserts the disabled-guard overhead stays under 2%
   of a smoke run, the same bar as metrics.

   Spans nest: [enter]/[leave] maintain an explicit stack, and a span is
   keyed by its full path (stack names joined with ';'). Per path the
   registry accumulates a call count plus total (inclusive) and self
   (exclusive of children) host nanoseconds. Counts are deterministic —
   they mirror simulator events, so they reconcile with trace/metrics
   counters and are invariant across --jobs; times are wall-clock and vary
   run to run, which is why report renderers can normalize them out.

   A registry belongs to one domain (batch jobs each create their own and
   the caller merges them); [record_path] is the only entry point intended
   for use under an external lock (serve's systhreads, pool shutdown). *)

type row = {
  mutable count : int;
  mutable total_ns : float;
  mutable self_ns : float;
}

type frame = {
  f_path : string; (* full path including this span's name *)
  f_start_ns : float;
  mutable f_child_ns : float;
}

type t = {
  enabled : bool;
  rows : (string, row) Hashtbl.t;
  mutable stack : frame list;
  mutable calls : int;
}

let null =
  { enabled = false; rows = Hashtbl.create 1; stack = []; calls = 0 }

let create () =
  { enabled = true; rows = Hashtbl.create 64; stack = []; calls = 0 }

let enabled t = t.enabled
let calls t = t.calls

(* clamped monotonic source: a wall-clock step backwards must not produce
   a negative span (the per-span [Float.max 0.0] guards then never fire
   in practice, they remain as defense in depth) *)
let now_ns () = Clock.now_ns ()

let row_of t path =
  match Hashtbl.find_opt t.rows path with
  | Some r -> r
  | None ->
    let r = { count = 0; total_ns = 0.0; self_ns = 0.0 } in
    Hashtbl.add t.rows path r;
    r

let path_under t name =
  match t.stack with
  | [] -> name
  | f :: _ -> f.f_path ^ ";" ^ name

let enter t name =
  if t.enabled then begin
    t.calls <- t.calls + 1;
    t.stack <-
      { f_path = path_under t name; f_start_ns = now_ns (); f_child_ns = 0.0 }
      :: t.stack
  end

let leave t =
  if t.enabled then begin
    t.calls <- t.calls + 1;
    match t.stack with
    | [] -> () (* unbalanced leave: drop it rather than corrupt the table *)
    | f :: rest ->
      t.stack <- rest;
      let elapsed = Float.max 0.0 (now_ns () -. f.f_start_ns) in
      let self = Float.max 0.0 (elapsed -. f.f_child_ns) in
      (match rest with
      | parent :: _ -> parent.f_child_ns <- parent.f_child_ns +. elapsed
      | [] -> ());
      let r = row_of t f.f_path in
      r.count <- r.count + 1;
      r.total_ns <- r.total_ns +. elapsed;
      r.self_ns <- r.self_ns +. self
  end

(* Exception-safe nesting: an exception unwinding through [f] (e.g. the
   engine turning a [Failure] into an [Error]) must still pop the frame,
   or every later span of the run would be misattributed under it. *)
let span t name f =
  if not t.enabled then f ()
  else begin
    enter t name;
    Fun.protect ~finally:(fun () -> leave t) f
  end

let record t name ~ns =
  if t.enabled then begin
    t.calls <- t.calls + 1;
    let ns = Float.max 0.0 ns in
    (match t.stack with
    | parent :: _ -> parent.f_child_ns <- parent.f_child_ns +. ns
    | [] -> ());
    let r = row_of t (path_under t name) in
    r.count <- r.count + 1;
    r.total_ns <- r.total_ns +. ns;
    r.self_ns <- r.self_ns +. ns
  end

let record_path t path ?(count = 1) ~ns () =
  if t.enabled then begin
    t.calls <- t.calls + 1;
    let r = row_of t path in
    r.count <- r.count + count;
    r.total_ns <- r.total_ns +. Float.max 0.0 ns;
    r.self_ns <- r.self_ns +. Float.max 0.0 ns
  end

let merge_into ~dst src =
  if dst.enabled then begin
    Hashtbl.iter
      (fun path (r : row) ->
        let d = row_of dst path in
        d.count <- d.count + r.count;
        d.total_ns <- d.total_ns +. r.total_ns;
        d.self_ns <- d.self_ns +. r.self_ns)
      src.rows;
    dst.calls <- dst.calls + src.calls
  end

(* ---- reports ---- *)

type entry = { path : string; count : int; total_ns : float; self_ns : float }

let rows t =
  Hashtbl.fold
    (fun path (r : row) acc ->
      { path; count = r.count; total_ns = r.total_ns; self_ns = r.self_ns }
      :: acc)
    t.rows []
  |> List.sort (fun a b -> String.compare a.path b.path)

let leaf_of path =
  match String.rindex_opt path ';' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let count_leaf t name =
  Hashtbl.fold
    (fun path (r : row) acc ->
      if leaf_of path = name then acc + r.count else acc)
    t.rows 0

(* Text table sorted by path. [normalize] replaces the wall-time columns
   with "-" so the output is byte-deterministic (counts are; times are
   not) — the golden-profile test pins exactly this rendering. *)
let report ?(normalize = false) t =
  let rs = rows t in
  let b = Buffer.create 1024 in
  Printf.bprintf b "profile: %d span paths, %d instrumentation calls\n"
    (List.length rs) t.calls;
  let pw =
    List.fold_left (fun acc r -> max acc (String.length r.path)) 4 rs
  in
  Printf.bprintf b "%-*s  %8s  %12s  %12s\n" pw "path" "calls" "total(ms)"
    "self(ms)";
  List.iter
    (fun r ->
      if normalize then
        Printf.bprintf b "%-*s  %8d  %12s  %12s\n" pw r.path r.count "-" "-"
      else
        Printf.bprintf b "%-*s  %8d  %12.3f  %12.3f\n" pw r.path r.count
          (r.total_ns /. 1e6) (r.self_ns /. 1e6))
    rs;
  Buffer.contents b

let to_json ?(normalize = false) t =
  Json.Obj
    [
      ("schema", Json.Str "infs-prof-1");
      ( "spans",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("path", Json.Str r.path);
                   ("calls", Json.Num (float_of_int r.count));
                   ("total_ns", Json.Num (if normalize then 0.0 else r.total_ns));
                   ("self_ns", Json.Num (if normalize then 0.0 else r.self_ns));
                 ])
             (rows t)) );
    ]

(* flamegraph.pl folded-stack format: one "path;to;span <value>" line per
   path, value = integral self nanoseconds. *)
let to_folded t =
  let b = Buffer.create 512 in
  List.iter
    (fun r ->
      Printf.bprintf b "%s %.0f\n" r.path (Float.max 0.0 r.self_ns))
    (rows t);
  Buffer.contents b

let write_file t path =
  if t.enabled then begin
    let body =
      if Filename.check_suffix path ".json" then
        Json.to_string (to_json t) ^ "\n"
      else if Filename.check_suffix path ".folded" then to_folded t
      else report t
    in
    let oc = open_out path in
    output_string oc body;
    close_out oc
  end
