(** Parsing of [infs-bench-1] benchmark snapshots (the [bench --json]
    output and the input of [bench-diff] / [trend] / [bench-bisect]).

    The format is one JSON object:
    [{"schema":"infs-bench-1","suite":...,"results":[...]}], each result
    carrying [workload], [paradigm], [tag] and simulated [cycles], plus —
    since the provenance satellite — an optional [meta] object of string
    fields (e.g. [commit], [timestamp]) that older files simply lack. *)

type entry = {
  workload : string;
  paradigm : string;
  tag : string;  (** "" for untagged results *)
  cycles : float;
}

type t = {
  suite : string;
  meta : (string * string) list;  (** [] when the file carries no [meta] *)
  results : entry list;  (** file order (the writer sorts by key) *)
}

val key : entry -> string
(** The comparison key ["<workload> [<paradigm>]"], with [" #<tag>"]
    appended for tagged entries — the same key [bench-diff] has always
    used. *)

val commit : t -> string option
(** [meta.commit], if present. *)

val timestamp : t -> string option
(** [meta.timestamp], if present. Written by [--meta-time]; never sourced
    from the clock in tests. *)

val of_json : Json.t -> (t, string) result
val of_string : string -> (t, string) result

val to_alist : t -> (string * float) list
(** [(key, cycles)] per result, in file order. *)
