type row = {
  key : string;
  workload : string;
  series : float option array;  (* one slot per snapshot; None = absent *)
  spark : string;
  last : float;
  delta_pct : float option;  (* last vs previous present value *)
}

type t = {
  labels : string array;
  suite : string;
  threshold : float;
  rows : row list;  (* key-ascending *)
}

let spark_levels = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

let sparkline series =
  let present = Array.to_list series |> List.filter_map Fun.id in
  let lo = List.fold_left Float.min infinity present
  and hi = List.fold_left Float.max neg_infinity present in
  let b = Buffer.create 32 in
  Array.iter
    (fun v ->
      match v with
      | None -> Buffer.add_string b "·"
      | Some v ->
        let level =
          if hi <= lo then 3
          else
            let f = (v -. lo) /. (hi -. lo) *. 7.0 in
            max 0 (min 7 (int_of_float (f +. 0.5)))
        in
        Buffer.add_string b spark_levels.(level))
    series;
  Buffer.contents b

let build ?(threshold = 5.0) snapshots =
  let n = List.length snapshots in
  let labels = Array.of_list (List.map fst snapshots) in
  let suite =
    match snapshots with (_, (s : Bench_file.t)) :: _ -> s.suite | [] -> ""
  in
  let keys = Hashtbl.create 64 in
  List.iteri
    (fun i (_, (snap : Bench_file.t)) ->
      List.iter
        (fun (e : Bench_file.entry) ->
          let key = Bench_file.key e in
          let series =
            match Hashtbl.find_opt keys key with
            | Some (_, s) -> s
            | None ->
              let s = Array.make n None in
              Hashtbl.add keys key (e.workload, s);
              s
          in
          series.(i) <- Some e.cycles)
        snap.results)
    snapshots;
  let rows =
    Hashtbl.fold
      (fun key (workload, series) acc ->
        let present =
          Array.to_list series
          |> List.filter_map Fun.id
        in
        match List.rev present with
        | [] -> acc
        | last :: older ->
          let delta_pct =
            match older with
            | prev :: _ -> Some (100.0 *. (last -. prev) /. Float.max 1e-9 prev)
            | [] -> None
          in
          { key; workload; series; spark = sparkline series; last; delta_pct }
          :: acc)
      keys []
    |> List.sort (fun a b -> String.compare a.key b.key)
  in
  { labels; suite; threshold; rows }

let flag t r =
  match r.delta_pct with
  | Some d when d > t.threshold -> "REGRESSION"
  | Some d when d < -.t.threshold -> "improved"
  | _ -> ""

let regressions t =
  List.filter_map
    (fun r ->
      match r.delta_pct with
      | Some d when d > t.threshold -> Some (r.key, d)
      | _ -> None)
    t.rows

let workloads t =
  List.sort_uniq String.compare (List.map (fun r -> r.workload) t.rows)

let delta_str = function
  | None -> "–"
  | Some d -> Printf.sprintf "%+.2f%%" d

(* e-notation keeps columns narrow and is what bench-diff already prints *)
let cycles_str c = Printf.sprintf "%.4e" c

let to_markdown t =
  let b = Buffer.create 4096 in
  Printf.bprintf b "# bench trend\n\n";
  Printf.bprintf b "%d snapshots" (Array.length t.labels);
  if Array.length t.labels > 0 then
    Printf.bprintf b " (%s → %s)" t.labels.(0)
      t.labels.(Array.length t.labels - 1);
  if t.suite <> "" then Printf.bprintf b ", suite `%s`" t.suite;
  Printf.bprintf b ", regression threshold %g%% (last vs previous)\n" t.threshold;
  let regs = regressions t in
  if regs <> [] then begin
    Printf.bprintf b "\n**%d regression(s):**\n\n" (List.length regs);
    List.iter
      (fun (key, d) -> Printf.bprintf b "- `%s` %+.2f%%\n" key d)
      regs
  end;
  List.iter
    (fun w ->
      Printf.bprintf b "\n## %s\n\n" w;
      Printf.bprintf b "| paradigm | trend | last (cycles) | Δ | flag |\n";
      Printf.bprintf b "|---|---|---:|---:|---|\n";
      List.iter
        (fun r ->
          if r.workload = w then
            Printf.bprintf b "| `%s` | `%s` | %s | %s | %s |\n" r.key r.spark
              (cycles_str r.last) (delta_str r.delta_pct) (flag t r))
        t.rows)
    (workloads t);
  Buffer.contents b

let html_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_html t =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
     <title>bench trend</title>\n<style>\n\
     body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; }\n\
     table { border-collapse: collapse; margin: 0.5rem 0 1.5rem; }\n\
     th, td { border: 1px solid #ccc; padding: 0.25rem 0.6rem; }\n\
     td.num { text-align: right; font-variant-numeric: tabular-nums; }\n\
     td.spark { font-size: 18px; letter-spacing: 1px; }\n\
     .regression { background: #fdd; font-weight: bold; }\n\
     .improved { background: #dfd; }\n\
     code { background: #f4f4f4; padding: 0 0.2em; }\n\
     </style>\n</head>\n<body>\n<h1>bench trend</h1>\n";
  Printf.bprintf b "<p>%d snapshots" (Array.length t.labels);
  if Array.length t.labels > 0 then
    Printf.bprintf b " (%s &rarr; %s)"
      (html_escape t.labels.(0))
      (html_escape t.labels.(Array.length t.labels - 1));
  if t.suite <> "" then
    Printf.bprintf b ", suite <code>%s</code>" (html_escape t.suite);
  Printf.bprintf b ", regression threshold %g%% (last vs previous)</p>\n"
    t.threshold;
  let regs = regressions t in
  if regs <> [] then begin
    Printf.bprintf b "<p class=\"regression\">%d regression(s):</p>\n<ul>\n"
      (List.length regs);
    List.iter
      (fun (key, d) ->
        Printf.bprintf b "<li><code>%s</code> %+.2f%%</li>\n" (html_escape key) d)
      regs;
    Buffer.add_string b "</ul>\n"
  end;
  List.iter
    (fun w ->
      Printf.bprintf b "<h2>%s</h2>\n<table>\n" (html_escape w);
      Buffer.add_string b
        "<tr><th>paradigm</th><th>trend</th><th>last (cycles)</th>\
         <th>&Delta;</th><th>flag</th></tr>\n";
      List.iter
        (fun r ->
          if r.workload = w then begin
            let cls =
              match flag t r with
              | "REGRESSION" -> " class=\"regression\""
              | "improved" -> " class=\"improved\""
              | _ -> ""
            in
            Printf.bprintf b
              "<tr%s><td><code>%s</code></td><td class=\"spark\" \
               title=\"%s\">%s</td><td class=\"num\">%s</td><td \
               class=\"num\">%s</td><td>%s</td></tr>\n"
              cls (html_escape r.key)
              (html_escape
                 (String.concat " "
                    (Array.to_list
                       (Array.map
                          (function None -> "-" | Some v -> cycles_str v)
                          r.series))))
              r.spark (cycles_str r.last) (delta_str r.delta_pct) (flag t r)
          end)
        t.rows;
      Buffer.add_string b "</table>\n")
    (workloads t);
  Buffer.add_string b "</body>\n</html>\n";
  Buffer.contents b
