(** Host-time instrumenting profiler: explicit span push/pop accumulating
    per-path call counts and self/total nanoseconds.

    Mirrors {!Trace.t}/{!Metrics.t}: {!null} is a permanently disabled
    registry, hot call sites guard on {!enabled} (one bool test), and a
    disabled registry reads no clock and allocates nothing — the bench
    asserts the disabled-guard overhead stays under 2% of a smoke run.

    A span is keyed by its full path: the names of the active span stack
    joined with [';'] (e.g. ["engine;imc;jit"]). Reports are sorted by
    path. Determinism contract: {b counts} mirror simulator events, so
    they are exact, reconcile with trace/metrics counters, and are
    invariant across [--jobs]; {b times} are host wall-clock and vary run
    to run — renderers accept [?normalize] to strip them for golden
    comparison.

    A registry belongs to one domain. Batch jobs each create their own and
    the coordinator folds them with {!merge_into}; {!record_path} is the
    one entry point safe to call under an external lock from systhreads
    (the serve front end) or after workers joined (pool shutdown). *)

type t

val null : t
(** Disabled registry: every operation is a no-op. *)

val create : unit -> t

val enabled : t -> bool

val calls : t -> int
(** Instrumentation calls applied ({!enter}, {!leave}, {!record} and
    {!record_path} each count once). Used by the bench to bound the
    disabled-guard overhead. *)

val now_ns : unit -> float
(** Host clock in nanoseconds (microsecond resolution). *)

(** {1 Spans} — all no-ops on {!null}. *)

val enter : t -> string -> unit
(** Push a span. Single-domain only (uses the registry's span stack). *)

val leave : t -> unit
(** Pop the current span and accumulate its elapsed time into the row for
    its path (self time excludes nested spans and {!record}s). An
    unbalanced [leave] is dropped. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f]: {!enter}/{!leave} around [f ()], exception-safe. *)

val record : t -> string -> ns:float -> unit
(** Point record of a completed leaf span under the current stack: one
    call, [ns] self and total time; the enclosing span's self time
    excludes it. *)

val record_path : t -> string -> ?count:int -> ns:float -> unit -> unit
(** Accumulate directly into an absolute path, bypassing the span stack —
    for aggregation sites that are not on the owning domain's call path
    (per-worker pool totals at shutdown, per-request serve stages under
    the server lock). *)

val merge_into : dst:t -> t -> unit
(** Fold [src]'s rows (and call count) into [dst]. Row insertion order is
    irrelevant: reports sort by path, and counts are sums. *)

(** {1 Reports} *)

type entry = { path : string; count : int; total_ns : float; self_ns : float }

val rows : t -> entry list
(** All rows sorted by path; [] on {!null}. *)

val count_leaf : t -> string -> int
(** Summed call count of every path whose last segment equals [name] —
    the reconciliation hook (e.g. [count_leaf t "jit"] equals the
    report's JIT invocations wherever the span was reached from). *)

val report : ?normalize:bool -> t -> string
(** Text table sorted by path. [normalize] replaces the time columns with
    ["-"] so the rendering is byte-deterministic (golden tests). *)

val to_json : ?normalize:bool -> t -> Json.t
(** [{"schema":"infs-prof-1","spans":[{path,calls,total_ns,self_ns}]}],
    sorted by path. [normalize] zeroes the time fields. *)

val to_folded : t -> string
(** Folded-stack lines ["a;b;c <self_ns>"] for flamegraph tools. *)

val write_file : t -> string -> unit
(** Write a report to [path]; format chosen by extension ([.json] → JSON,
    [.folded] → folded stacks, anything else → text). No-op on {!null}. *)
