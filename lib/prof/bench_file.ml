type entry = { workload : string; paradigm : string; tag : string; cycles : float }

type t = { suite : string; meta : (string * string) list; results : entry list }

let key e =
  e.workload ^ " [" ^ e.paradigm ^ "]" ^ if e.tag = "" then "" else " #" ^ e.tag

let commit t = List.assoc_opt "commit" t.meta
let timestamp t = List.assoc_opt "timestamp" t.meta

let of_json j =
  match Option.bind (Json.member "schema" j) Json.to_str with
  | Some "infs-bench-1" -> (
    let suite =
      Option.value ~default:""
        (Option.bind (Json.member "suite" j) Json.to_str)
    in
    let meta =
      match Json.member "meta" j with
      | Some (Json.Obj kvs) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
          kvs
      | _ -> []
    in
    match Option.bind (Json.member "results" j) Json.to_list with
    | None -> Error "missing \"results\" array"
    | Some rs ->
      let entry e =
        match
          ( Option.bind (Json.member "workload" e) Json.to_str,
            Option.bind (Json.member "paradigm" e) Json.to_str,
            Option.bind (Json.member "cycles" e) Json.to_num )
        with
        | Some workload, Some paradigm, Some cycles ->
          let tag =
            Option.value ~default:""
              (Option.bind (Json.member "tag" e) Json.to_str)
          in
          Ok { workload; paradigm; tag; cycles }
        | _ -> Error "malformed result entry"
      in
      List.fold_left
        (fun acc e -> Result.bind acc (fun l -> Result.map (fun x -> x :: l) (entry e)))
        (Ok []) rs
      |> Result.map (fun l -> { suite; meta; results = List.rev l }))
  | Some other -> Error ("unknown schema " ^ other)
  | None -> Error "missing \"schema\" field"

let of_string s = Result.bind (Json.parse s) of_json

let to_alist t = List.map (fun e -> (key e, e.cycles)) t.results
