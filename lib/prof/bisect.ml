type cell = {
  workload : string;
  paradigm : string;
  tag : string;
  key : string;
  old_cycles : float;
  new_cycles : float;
  delta_pct : float;
}

type group = { label : string; cells : cell list; impact : float; worst : cell }

let delta_pct ~old_c ~new_c = 100.0 *. (new_c -. old_c) /. Float.max 1e-9 old_c

(* Pair up every key present in both snapshots, in new-file order. *)
let cells_of ~(old_ : Bench_file.t) ~(new_ : Bench_file.t) =
  let old_alist = Bench_file.to_alist old_ in
  List.filter_map
    (fun (e : Bench_file.entry) ->
      let key = Bench_file.key e in
      match List.assoc_opt key old_alist with
      | None -> None
      | Some old_c ->
        Some
          {
            workload = e.workload;
            paradigm = e.paradigm;
            tag = e.tag;
            key;
            old_cycles = old_c;
            new_cycles = e.cycles;
            delta_pct = delta_pct ~old_c ~new_c:e.cycles;
          })
    new_.results

let impact_of cells =
  List.fold_left (fun a c -> a +. Float.abs (c.new_cycles -. c.old_cycles)) 0.0 cells

let worst_of cells =
  match cells with
  | [] -> invalid_arg "Bisect.worst_of: empty group"
  | c :: rest ->
    List.fold_left
      (fun w c -> if Float.abs c.delta_pct > Float.abs w.delta_pct then c else w)
      c rest

let group label cells = { label; cells; impact = impact_of cells; worst = worst_of cells }

let distinct f cells =
  List.sort_uniq String.compare (List.map f cells)

let minimize ?(threshold = 2.0) ~old_ ~new_ () =
  let cells = cells_of ~old_ ~new_ in
  let moved = List.filter (fun c -> Float.abs c.delta_pct > threshold) cells in
  let groups =
    if moved = [] then []
    else if List.length moved = List.length cells && List.length cells > 1 then
      (* everything moved: a global shift (machine-config change, cost-model
         edit), not a per-cell regression — minimize to one root entry *)
      [ group "* [*]" moved ]
    else begin
      let covered = Hashtbl.create 16 in
      let is_covered c = Hashtbl.mem covered c.key in
      let cover c = Hashtbl.replace covered c.key () in
      (* a complete dimension group absorbs its cells only when the whole
         slice moved — a partial slice stays cell-by-cell, which is the
         point of minimizing: name the smallest complete cause *)
      let wgroups =
        List.filter_map
          (fun w ->
            let slice = List.filter (fun c -> c.workload = w) cells in
            let slice_moved = List.filter (fun c -> Float.abs c.delta_pct > threshold) slice in
            if List.length slice > 1 && List.length slice_moved = List.length slice
            then begin
              List.iter cover slice;
              Some (group (w ^ " [*]") slice)
            end
            else None)
          (distinct (fun c -> c.workload) moved)
      in
      let pgroups =
        List.filter_map
          (fun p ->
            let slice =
              List.filter (fun c -> c.paradigm = p && not (is_covered c)) cells
            in
            let slice_moved = List.filter (fun c -> Float.abs c.delta_pct > threshold) slice in
            if List.length slice > 1 && List.length slice_moved = List.length slice
            then begin
              List.iter cover slice;
              Some (group ("* [" ^ p ^ "]") slice)
            end
            else None)
          (distinct (fun c -> c.paradigm)
             (List.filter (fun c -> not (is_covered c)) moved))
      in
      let singles =
        List.filter_map
          (fun c -> if is_covered c then None else Some (group c.key [ c ]))
          moved
      in
      wgroups @ pgroups @ singles
    end
  in
  (* impact-descending; label-ascending on ties: a total order *)
  ( List.sort
      (fun a b ->
        match compare b.impact a.impact with
        | 0 -> String.compare a.label b.label
        | c -> c)
      groups,
    List.length cells,
    List.length moved )

let to_json ?(threshold = 2.0) (groups, compared, moved) =
  Json.Obj
    [
      ("schema", Json.Str "infs-bisect-1");
      ("threshold_pct", Json.Num threshold);
      ("compared", Json.Num (float_of_int compared));
      ("moved", Json.Num (float_of_int moved));
      ( "groups",
        Json.Arr
          (List.map
             (fun g ->
               Json.Obj
                 [
                   ("label", Json.Str g.label);
                   ("cells", Json.Num (float_of_int (List.length g.cells)));
                   ("impact_cycles", Json.Num g.impact);
                   ("worst_key", Json.Str g.worst.key);
                   ("worst_pct", Json.Num g.worst.delta_pct);
                 ])
             groups) );
    ]

let to_text ?(threshold = 2.0) (groups, compared, moved) =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "bench-bisect: %d cells compared, %d moved beyond %g%%, %d groups\n"
    compared moved threshold (List.length groups);
  List.iter
    (fun g ->
      Printf.bprintf b "  %-44s %3d cells  impact %12.4e cycles  worst %+.2f%% (%s)\n"
        g.label (List.length g.cells) g.impact g.worst.delta_pct g.worst.key)
    groups;
  Buffer.contents b
