(** Performance trend page over a sequence of [infs-bench-1] snapshots
    ([infs_run trend]).

    Given per-commit benchmark snapshots in chronological order (the CLI
    orders a directory by [meta.timestamp] when every file carries one,
    else by filename), build per-(workload, paradigm, tag) cycle series
    and render them as unicode-sparkline tables — one table per workload —
    in markdown and as a standalone HTML page. A key whose last snapshot
    moved beyond the threshold against the previous one is flagged
    ([REGRESSION] when slower, [improved] when faster).

    Output is deterministic for a given snapshot list: keys sort
    ascending, sparklines scale per key over its own min/max, and no
    wall-clock value is ever read — timestamps come from the snapshots'
    [meta], written by the bench runner's [--meta-*] flags. *)

type row = {
  key : string;  (** {!Bench_file.key} *)
  workload : string;
  series : float option array;
      (** cycles per snapshot, [None] where the key is absent *)
  spark : string;  (** one glyph per snapshot; [·] for absent *)
  last : float;  (** most recent present value *)
  delta_pct : float option;
      (** last vs previous present value; [None] with fewer than two *)
}

type t = {
  labels : string array;  (** one per snapshot, caller-provided *)
  suite : string;  (** from the first snapshot *)
  threshold : float;
  rows : row list;  (** key-ascending *)
}

val build : ?threshold:float -> (string * Bench_file.t) list -> t
(** Snapshots oldest-first with display labels (commit hash or filename).
    [threshold] (percent, default 5.0) controls regression flagging. *)

val regressions : t -> (string * float) list
(** Flagged keys with their last-vs-previous delta, key-ascending. *)

val to_markdown : t -> string

val to_html : t -> string
(** Standalone page, no scripts — sparklines are text. *)
