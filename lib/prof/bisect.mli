(** Regression minimization between two [infs-bench-1] snapshots
    ([infs_run bench-bisect]).

    Given a baseline and a candidate, find the cells — (workload,
    paradigm, tag) keys present in both — whose cycle count moved beyond a
    threshold, then {e minimize} the answer: when a whole slice moved
    together, name the slice, not its cells.

    - every common cell moved → one root group ["* [*]"] (a global shift:
      cost-model or machine-config change);
    - every cell of one workload moved → ["<workload> [*]"];
    - every remaining cell of one paradigm moved → ["* [<paradigm>]"];
    - anything else is reported cell-by-cell.

    Groups are ranked by {e impact} — summed [|new - old|] cycles — so
    the first entry is where the cycles went, regardless of sign (both
    regressions and improvements move cycles). Deterministic: ties break
    by label. *)

type cell = {
  workload : string;
  paradigm : string;
  tag : string;
  key : string;  (** {!Bench_file.key} of the entry *)
  old_cycles : float;
  new_cycles : float;
  delta_pct : float;  (** signed; [+] = slower (regression) *)
}

type group = {
  label : string;  (** key, ["<w> [*]"], ["* [<p>]"] or ["* [*]"] *)
  cells : cell list;  (** the common cells the group absorbs *)
  impact : float;  (** summed [|new - old|] cycles over [cells] *)
  worst : cell;  (** largest [|delta_pct|] in the group *)
}

val minimize :
  ?threshold:float ->
  old_:Bench_file.t ->
  new_:Bench_file.t ->
  unit ->
  group list * int * int
(** [(groups, compared, moved)]: ranked groups, common-cell count, and how
    many of them moved beyond [threshold] percent (default 2.0). [groups]
    is empty iff nothing moved. *)

val to_json : ?threshold:float -> group list * int * int -> Json.t
(** Machine-readable summary, schema [infs-bisect-1]. *)

val to_text : ?threshold:float -> group list * int * int -> string
(** Human-readable table, impact-descending. *)
