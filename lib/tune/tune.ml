module E = Infinity_stream.Engine
module Report = Infinity_stream.Report
module Workload = Infinity_stream.Workload

(* ---- candidate configurations ---- *)

type config = {
  paradigm : E.paradigm;
  tile : int array option;
  eq2 : Decision.override;
  per_kernel : (string * Decision.override) list;
      (* sorted by kernel name; only populated by the refinement pass *)
}

type scored = { config : config; cycles : float }

type result = {
  workload : string;
  key : string;
  budget : int;
  candidates : int;  (* enumerated uniform candidates, pre-truncation *)
  explored : scored list;  (* in exploration order; [] on a cache hit *)
  winner : scored;
  baseline : scored;  (* candidate 0: Inf-S under the Eq. 2 heuristic *)
  gap : float;  (* baseline cycles / winner cycles; >= 1.0 *)
  from_cache : bool;
}

let policy_of c =
  match (c.eq2, c.per_kernel) with
  | Decision.Auto, [] -> Decision.Heuristic
  | default, per_kernel -> Decision.Tuned { default; per_kernel }

let baseline_config =
  { paradigm = E.Inf_s; tile = None; eq2 = Decision.Auto; per_kernel = [] }

(* The searched paradigms. [Base_1] is a measurement baseline (one thread,
   never faster than [Base]) and [Inf_s_nojit] an accounting variant of
   [Inf_s], so neither is a deployable choice. *)
let search_paradigms = [ E.Inf_s; E.In_l3; E.Near_l3; E.Base ]

(* Eq. 2 overrides worth trying per paradigm: under In-L3 the default path
   already always offloads, so [Force_imc] is indistinguishable from
   [Auto]. *)
let overrides_for = function
  | E.In_l3 -> [ Decision.Auto; Decision.Force_core ]
  | E.Inf_s | E.Inf_s_nojit ->
    [ Decision.Auto; Decision.Force_imc; Decision.Force_core ]
  | E.Base_1 | E.Base | E.Near_l3 -> [ Decision.Auto ]

let has_offload_boundary = function
  | E.In_l3 | E.Inf_s | E.Inf_s_nojit -> true
  | E.Base_1 | E.Base | E.Near_l3 -> false

(* Tile menu: every distinct (rank, dtype) among the workload's mappable
   regions contributes the full power-of-two candidate set for a generic
   rank-sized lattice. The engine applies a tile override only to regions
   of matching rank and falls back when the tile is invalid for the
   concrete shape, so an over-approximated menu is safe — a useless tile
   simply scores as the fallback path. *)
let tile_menu cfg (fb : Fat_binary.t) =
  let shapes =
    List.filter_map
      (fun (r : Fat_binary.region) ->
        match r.fallback with
        | Some _ -> None
        | None ->
          let rank = Tdfg.lattice_dims r.optimized in
          let epl =
            cfg.Machine_config.line_bytes / Dtype.bytes (Tdfg.dtype r.optimized)
          in
          if rank > 0 && epl > 0 then Some (rank, epl) else None)
      fb.Fat_binary.regions
  in
  let shapes = List.sort_uniq compare shapes in
  let tiles =
    List.concat_map
      (fun (rank, epl) ->
        let shape = Array.make rank cfg.Machine_config.sram_bitlines in
        List.map
          (fun (l : Layout.t) -> l.Layout.tile)
          (Layout.candidates cfg ~shape ~elems_per_line:epl))
      shapes
  in
  List.sort_uniq compare tiles

(* Ordered so that a small budget still covers the macro space: first every
   paradigm x Eq. 2-override combination under the default layout
   heuristic, then the tile sweeps. Candidate 0 is always the baseline. *)
let enumerate cfg fb =
  let tiles = List.map Option.some (tile_menu cfg fb) in
  let combos =
    List.concat_map
      (fun paradigm ->
        List.map (fun eq2 -> (paradigm, eq2)) (overrides_for paradigm))
      search_paradigms
  in
  let macro =
    List.map
      (fun (paradigm, eq2) -> { paradigm; tile = None; eq2; per_kernel = [] })
      combos
  in
  let sweeps =
    List.concat_map
      (fun (paradigm, eq2) ->
        if has_offload_boundary paradigm then
          List.map (fun tile -> { paradigm; tile; eq2; per_kernel = [] }) tiles
        else [])
      combos
  in
  baseline_config
  :: List.filter (fun c -> c <> baseline_config) (macro @ sweeps)

(* ---- scoring ---- *)

(* One fast sim run: no functional evaluation, no trace/metrics/faults, and
   the process-wide compile cache shared across the fan-out (every
   candidate compiles the same program). *)
let score_options (base : E.options) c =
  {
    base with
    E.functional = false;
    trace = Trace.null;
    metrics = Metrics.null;
    faults = Fault.none;
    share_compile = true;
    tile_override = c.tile;
    decision_policy = policy_of c;
  }

(* A kernel is overridable when its decision-table row carries real Eq. 2
   latencies; rows noted for scalar fallbacks / missing schedules /
   unmappable layouts have both latencies zeroed and no override can move
   them. *)
let overridable_kernels (r : Report.t) =
  List.filter_map
    (fun (d : Report.decision_entry) ->
      if d.Report.core_cycles = 0.0 && d.Report.imc_cycles = 0.0 then None
      else Some d.Report.kernel)
    r.Report.decisions

let score base resolve c =
  match E.run ~options:(score_options base c) c.paradigm (resolve ()) with
  | Ok r -> (c, Some (r.Report.cycles, overridable_kernels r))
  | Error _ -> (c, None)

let score_batch ~jobs base resolve cands =
  let outcomes =
    Pool.run_list ~jobs (List.map (fun c () -> score base resolve c) cands)
  in
  List.concat_map
    (function
      | Ok (c, Some (cycles, kernels)) -> [ (c, cycles, kernels) ]
      | Ok (_, None) | Error _ -> [])
    outcomes

(* ---- memoization ---- *)

let default_budget = 32

(* The tuning decision depends on everything a score run depends on: the
   program text AND its concrete parameters (unlike the engine's compile
   key — compilation is symbolic in the sizes, scoring is not), the
   machine, the cost-model option knobs, and the search budget. *)
let memo_key (base : E.options) ~budget (w : Workload.t) =
  let params =
    List.sort compare w.Workload.params
    |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
    |> String.concat ","
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            Format.asprintf "%a" Ast.pp_program w.Workload.prog;
            params;
            Marshal.to_string base.E.cfg [];
            string_of_bool base.E.optimize;
            string_of_bool base.E.charge_jit;
            string_of_bool base.E.warm_data;
            string_of_bool base.E.pre_transposed;
            string_of_int budget;
          ]))

let memo : result Ccache.t = Ccache.create ()

let cache_stats () = (Ccache.hits memo, Ccache.misses memo, Ccache.length memo)
let cache_clear () = Ccache.reset memo

(* ---- the search ---- *)

let set_override per_kernel kernel ov =
  List.sort compare ((kernel, ov) :: List.remove_assoc kernel per_kernel)

let tune ?(options = E.default_options) ?(budget = default_budget) ?(jobs = 1)
    resolve =
  let budget = max 1 budget in
  let w = resolve () in
  let key = memo_key options ~budget w in
  match Ccache.find_opt memo key with
  | Some r -> Ok { r with from_cache = true; explored = [] }
  | None -> (
    match Fat_binary.compile ~optimize:options.E.optimize w.Workload.prog with
    | Error e -> Error ("tune: compile failed: " ^ e)
    | Ok fb ->
      let all_cands = enumerate options.E.cfg fb in
      let cands =
        List.filteri (fun i _ -> i < budget) all_cands
      in
      let phase1 = score_batch ~jobs options resolve cands in
      (match phase1 with
      | (c0, base_cycles, _) :: _ when c0 = baseline_config ->
        let baseline = { config = c0; cycles = base_cycles } in
        let explored =
          List.map (fun (c, cy, _) -> { config = c; cycles = cy }) phase1
        in
        let best_of =
          List.fold_left (fun best s ->
              if s.cycles < best.cycles then s else best)
        in
        let winner0 = best_of baseline explored in
        let kernels_of cfg' =
          List.concat_map
            (fun (c, _, ks) -> if c = cfg' then ks else [])
            phase1
        in
        (* Greedy per-kernel refinement: from the uniform winner, score
           every single-kernel override flip in parallel, accept the best
           strictly-improving flip, repeat until dry or the budget is
           spent. Only paradigms with an offload boundary have anything to
           flip. *)
        let rec refine winner kernels explored used =
          if used >= budget || not (has_offload_boundary winner.config.paradigm)
          then (winner, explored)
          else
            let flips =
              List.concat_map
                (fun k ->
                  let current =
                    Decision.resolve (policy_of winner.config) ~kernel:k
                  in
                  List.filter_map
                    (fun ov ->
                      if ov = current then None
                      else
                        Some
                          {
                            winner.config with
                            per_kernel =
                              set_override winner.config.per_kernel k ov;
                          })
                    (overrides_for winner.config.paradigm))
                kernels
            in
            let flips = List.filteri (fun i _ -> used + i < budget) flips in
            if flips = [] then (winner, explored)
            else
              let scored3 = score_batch ~jobs options resolve flips in
              let scored =
                List.map (fun (c, cy, _) -> { config = c; cycles = cy }) scored3
              in
              let explored = explored @ scored in
              let used = used + List.length flips in
              let best = best_of winner scored in
              if best.cycles < winner.cycles then
                refine best kernels explored used
              else (winner, explored)
        in
        let winner, explored =
          refine winner0 (kernels_of winner0.config) explored
            (List.length cands)
        in
        let r =
          {
            workload = w.Workload.wname;
            key;
            budget;
            candidates = List.length all_cands;
            explored;
            winner;
            baseline;
            gap =
              (if winner.cycles <= 0.0 then 1.0
               else baseline.cycles /. winner.cycles);
            from_cache = false;
          }
        in
        Ccache.insert memo ~key r;
        Ok r
      | _ ->
        Error
          (Printf.sprintf "tune: baseline run failed for %s" w.Workload.wname)))

(* ---- consuming a tuned decision ---- *)

let apply r (base : E.options) =
  ( r.winner.config.paradigm,
    {
      base with
      E.tile_override = r.winner.config.tile;
      decision_policy = policy_of r.winner.config;
    } )

(* ---- deterministic JSON ---- *)

let paradigm_of_string s =
  match
    List.find_opt (fun p -> E.paradigm_to_string p = s) E.all_paradigms
  with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "unknown paradigm %s" s)

let config_to_json c =
  Json.Obj
    [
      ("paradigm", Json.Str (E.paradigm_to_string c.paradigm));
      ( "tile",
        match c.tile with
        | None -> Json.Null
        | Some t ->
          Json.Arr
            (Array.to_list (Array.map (fun d -> Json.Num (float_of_int d)) t))
      );
      ("eq2", Json.Str (Decision.override_name c.eq2));
      ( "per_kernel",
        Json.Obj
          (List.map
             (fun (k, ov) -> (k, Json.Str (Decision.override_name ov)))
             c.per_kernel) );
    ]

let scored_to_json s =
  Json.Obj [ ("config", config_to_json s.config); ("cycles", Json.Num s.cycles) ]

let result_to_json r =
  Json.Obj
    [
      ("schema", Json.Str "infs-tune-1");
      ("workload", Json.Str r.workload);
      ("key", Json.Str r.key);
      ("budget", Json.Num (float_of_int r.budget));
      ("candidates", Json.Num (float_of_int r.candidates));
      ("explored", Json.Arr (List.map scored_to_json r.explored));
      ("winner", scored_to_json r.winner);
      ("baseline", scored_to_json r.baseline);
      ("gap", Json.Num r.gap);
      ("from_cache", Json.Bool r.from_cache);
    ]

(* ---- parsing (disk-cache round trip) ---- *)

let ( let* ) = Result.bind

let req name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "tune json: missing or invalid field %s" name)

let config_of_json j =
  let* pname = req "paradigm" Json.to_str j in
  let* paradigm = paradigm_of_string pname in
  let* tile =
    match Json.member "tile" j with
    | Some Json.Null | None -> Ok None
    | Some t -> (
      match Option.map (List.map Json.to_int) (Json.to_list t) with
      | Some ds when List.for_all Option.is_some ds ->
        Ok (Some (Array.of_list (List.map Option.get ds)))
      | _ -> Error "tune json: invalid tile")
  in
  let* eq2_s = req "eq2" Json.to_str j in
  let* eq2 = Decision.override_of_string eq2_s in
  let* per_kernel =
    match Json.member "per_kernel" j with
    | None -> Ok []
    | Some (Json.Obj kvs) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match Option.map Decision.override_of_string (Json.to_str v) with
          | Some (Ok ov) -> Ok ((k, ov) :: acc)
          | _ -> Error "tune json: invalid per_kernel override")
        (Ok []) kvs
      |> Result.map (List.sort compare)
    | Some _ -> Error "tune json: invalid per_kernel"
  in
  Ok { paradigm; tile; eq2; per_kernel }

let scored_of_json j =
  let* cj = req "config" Option.some j in
  let* config = config_of_json cj in
  let* cycles = req "cycles" Json.to_num j in
  Ok { config; cycles }

let result_of_json j =
  let* workload = req "workload" Json.to_str j in
  let* key = req "key" Json.to_str j in
  let* budget = req "budget" Json.to_int j in
  let* candidates = req "candidates" Json.to_int j in
  let* explored_js = req "explored" Json.to_list j in
  let* explored =
    List.fold_left
      (fun acc ej ->
        let* acc = acc in
        let* s = scored_of_json ej in
        Ok (s :: acc))
      (Ok []) explored_js
    |> Result.map List.rev
  in
  let* wj = req "winner" Option.some j in
  let* winner = scored_of_json wj in
  let* bj = req "baseline" Option.some j in
  let* baseline = scored_of_json bj in
  let* gap = req "gap" Json.to_num j in
  let* from_cache = req "from_cache" Json.to_bool j in
  Ok
    {
      workload;
      key;
      budget;
      candidates;
      explored;
      winner;
      baseline;
      gap;
      from_cache;
    }

(* ---- disk cache (cross-process memoization) ---- *)

let cache_schema = "infs-tune-cache-1"

let save_cache path =
  let entries =
    Ccache.fold
      (fun key r acc ->
        Json.Obj [ ("key", Json.Str key); ("result", result_to_json r) ] :: acc)
      memo []
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str cache_schema);
        ("entries", Json.Arr (List.rev entries));
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string doc);
      output_char oc '\n')

let load_cache path =
  let* text =
    try
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error e -> Error e
  in
  let* j = Json.parse text in
  let* schema = req "schema" Json.to_str j in
  if schema <> cache_schema then
    Error (Printf.sprintf "tune cache: unknown schema %s" schema)
  else
    let* entries = req "entries" Json.to_list j in
    List.fold_left
      (fun acc ej ->
        let* n = acc in
        let* key = req "key" Json.to_str ej in
        let* rj = req "result" Option.some ej in
        let* r = result_of_json rj in
        Ccache.insert memo ~key { r with from_cache = false };
        Ok (n + 1))
      (Ok 0) entries
