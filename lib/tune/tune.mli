(** Autotuning decision search ([infs_tune], DESIGN.md §14).

    The JIT runtime commits to a layout (§4.1 heuristic) and an offload
    target (§4.3, Eq. 2) with one-shot closed-form picks. This subsystem
    searches that decision space instead: it enumerates candidate
    configurations — paradigm × tile override (from {!Layout.candidates})
    × Eq. 2 override — scores each with a fast simulation run fanned out
    on the domain pool, greedily refines per-kernel overrides from the
    uniform winner, and memoizes the winning decision vector in a
    content-addressed cache keyed by
    (program ⊕ params ⊕ machine ⊕ option knobs ⊕ budget).

    Candidate 0 is always the Inf-S / Eq. 2-heuristic baseline, so the
    winner is never worse than the heuristic. Scoring runs are
    deterministic and results are assembled in submission order, so a
    tuning run is byte-identical at any [jobs] count. *)

type config = {
  paradigm : Infinity_stream.Engine.paradigm;
  tile : int array option;
      (** forwarded to [Engine.options.tile_override]; [None] keeps the
          §4.1 layout heuristic *)
  eq2 : Decision.override;  (** workload-wide Eq. 2 default *)
  per_kernel : (string * Decision.override) list;
      (** per-kernel flips found by the refinement pass, sorted by kernel
          name *)
}

type scored = { config : config; cycles : float }

type result = {
  workload : string;
  key : string;  (** content-addressed memo key *)
  budget : int;  (** max scoring runs (clamped to >= 1) *)
  candidates : int;  (** enumerated uniform candidates, pre-truncation *)
  explored : scored list;
      (** every scored candidate in exploration order; [[]] when the
          result came from the memo cache (0 new candidates explored) *)
  winner : scored;
  baseline : scored;  (** Inf-S under the unmodified Eq. 2 heuristic *)
  gap : float;  (** baseline cycles / winner cycles; 1.0 = no gain *)
  from_cache : bool;
}

val default_budget : int

val tune :
  ?options:Infinity_stream.Engine.options ->
  ?budget:int ->
  ?jobs:int ->
  (unit -> Infinity_stream.Workload.t) ->
  (result, string) Stdlib.result
(** [tune resolve] searches the decision space for the workload [resolve]
    returns. [options] carries the machine configuration and cost-model
    knobs (functional checking, tracing, metrics and fault injection are
    forced off for scoring runs; [share_compile] is forced on). The
    workload is re-resolved per scoring job. Results are memoized
    process-wide: a repeat call with the same key returns the cached
    result with [from_cache = true] and [explored = []]. *)

val apply :
  result ->
  Infinity_stream.Engine.options ->
  Infinity_stream.Engine.paradigm * Infinity_stream.Engine.options
(** The winning paradigm plus [options] with the winner's tile override
    and decision policy installed — how [run]/[batch]/[serve]/[bench]
    consume a tuned decision. *)

val result_to_json : result -> Json.t
(** Deterministic (schema [infs-tune-1]): fixed field order, canonical
    floats, simulated quantities only — byte-identical across [jobs]. *)

val result_of_json : Json.t -> (result, string) Stdlib.result
val config_to_json : config -> Json.t
val config_of_json : Json.t -> (config, string) Stdlib.result

val cache_stats : unit -> int * int * int
(** [(hits, misses, entries)] of the process-wide tuning memo. *)

val cache_clear : unit -> unit

val save_cache : string -> unit
(** Persist every memoized tuning result as one JSON document (schema
    [infs-tune-cache-1]) with entries in ascending key order —
    deterministic bytes for artifact diffing. *)

val load_cache : string -> (int, string) Stdlib.result
(** Seed the process-wide memo from a file written by {!save_cache};
    returns the number of entries loaded. Existing entries win. *)
