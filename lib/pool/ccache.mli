(** Domain-safe content-addressed memo cache.

    A ['v t] maps content-hash keys (any string; callers typically use
    [Digest.to_hex]) to computed values across a sharded set of
    mutex-guarded hash tables, with process-lifetime hit/miss counters.
    It backs the engine's compile cache: batch jobs running on separate
    domains share compiled fat binaries instead of recompiling the same
    workload program per (paradigm, options) combination.

    [find_or_compute] computes {e outside} the shard lock, so two domains
    racing on the same fresh key may both compute; the first store wins and
    both callers observe the winning value. Values must therefore be
    safe to share (treated as immutable after construction). *)

type 'v t

val create : ?shards:int -> unit -> 'v t
(** [shards] defaults to 16 and is clamped to at least 1. *)

val find_or_compute : 'v t -> key:string -> (unit -> 'v) -> 'v * bool
(** [find_or_compute c ~key f] returns [(v, hit)] where [hit] reports
    whether [key] was already present. Exceptions from [f] propagate and
    cache nothing. *)

val find_opt : 'v t -> string -> 'v option
(** Pure lookup; counts as a hit or a miss. *)

val insert : 'v t -> key:string -> 'v -> unit
(** Seed an entry without touching the hit/miss counters (loading a
    persisted cache). An existing entry for [key] is kept — first store
    wins, matching [find_or_compute]'s race rule. *)

val fold : (string -> 'v -> 'acc -> 'acc) -> 'v t -> 'acc -> 'acc
(** Fold over a snapshot of every entry in ascending key order —
    deterministic regardless of shard layout or insertion order, so
    callers can persist cache contents with stable bytes. The snapshot is
    taken shard-by-shard under the shard locks; entries added concurrently
    may or may not be observed. *)

val length : 'v t -> int
val hits : 'v t -> int
val misses : 'v t -> int

val reset : 'v t -> unit
(** Drop every entry and zero the counters (tests). *)
