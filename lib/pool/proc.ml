(* Child-process lifecycle: fork+exec via Unix.create_process (a bare
   fork in a parent running domains and systhreads would duplicate only
   the calling thread and leave every lock in an arbitrary state), plus
   memoized reaping so poll/wait/terminate can be called in any order. *)

type t = { cp_pid : int; mutable reaped : Unix.process_status option }

let spawn argv =
  if Array.length argv = 0 then invalid_arg "Proc.spawn: empty argv";
  let pid =
    Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr
  in
  { cp_pid = pid; reaped = None }

let pid t = t.cp_pid

let poll t =
  match t.reaped with
  | Some _ as s -> s
  | None -> (
    match Unix.waitpid [ Unix.WNOHANG ] t.cp_pid with
    | 0, _ -> None
    | _, status ->
      t.reaped <- Some status;
      t.reaped
    | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
      (* reaped elsewhere (e.g. a global SIGCHLD handler): the status is
         unrecoverable; report a clean exit rather than wedging *)
      t.reaped <- Some (Unix.WEXITED 0);
      t.reaped)

let alive t = poll t = None

let signal t s =
  if t.reaped = None then
    try Unix.kill t.cp_pid s with Unix.Unix_error (Unix.ESRCH, _, _) -> ()

let wait t =
  match t.reaped with
  | Some s -> s
  | None -> (
    match Unix.waitpid [] t.cp_pid with
    | _, status ->
      t.reaped <- Some status;
      status
    | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
      let s = Unix.WEXITED 0 in
      t.reaped <- Some s;
      s)

let terminate ?(grace_s = 5.0) t =
  signal t Sys.sigterm;
  let deadline = Clock.now () +. Float.max 0.0 grace_s in
  let rec loop () =
    match poll t with
    | Some s -> s
    | None ->
      if Clock.now () >= deadline then begin
        signal t Sys.sigkill;
        wait t
      end
      else begin
        Unix.sleepf 0.02;
        loop ()
      end
  in
  loop ()

let kill t =
  signal t Sys.sigkill;
  wait t
