(** Child-process lifecycle for shard workers ([infs_pool]).

    A thin, deliberately boring wrapper over [fork]+[exec]
    ([Unix.create_process] — never a bare [fork], which is unsafe in a
    parent running OCaml 5 domains and systhreads) with non-blocking
    reaping. The sharded serving front tier uses it to spawn, watch,
    signal and respawn its shard server processes.

    A handle is owned by {e one} supervising thread: [poll]/[wait] both
    reap via [waitpid] and concurrent calls on the same handle would
    race the kernel for the exit status. *)

type t
(** One spawned child. *)

val spawn : string array -> t
(** [spawn argv] starts [argv.(0)] (resolved via [PATH] when not an
    absolute path) with arguments [argv], inheriting stdin/stdout/stderr.
    Raises [Invalid_argument] on an empty [argv] and [Unix.Unix_error]
    when the executable cannot be started. *)

val pid : t -> int

val poll : t -> Unix.process_status option
(** Non-blocking: [Some status] once the child has exited (memoized —
    later calls keep returning it), [None] while it is still running. *)

val alive : t -> bool
(** [poll t = None]. *)

val signal : t -> int -> unit
(** Send a signal (e.g. [Sys.sigterm]). A child that already exited or
    was already reaped is a no-op, not an error. *)

val wait : t -> Unix.process_status
(** Block until the child exits and return (and memoize) its status. *)

val terminate : ?grace_s:float -> t -> Unix.process_status
(** Graceful stop: [SIGTERM], then poll for up to [grace_s] seconds
    (default 5.0) for the child to drain and exit, escalating to
    [SIGKILL] if it does not. Always returns the reaped status. *)

val kill : t -> Unix.process_status
(** Hard stop: [SIGKILL] and reap. The crash-injection path — in-flight
    work in the child is lost by design. *)
