(** Fixed-size multicore batch-execution pool ([infs_pool]).

    A pool owns a fixed set of OCaml 5 domains draining a {e sharded} work
    queue (one shard per worker, plain [Mutex]/[Condition], no external
    scheduler dependency). Idle workers steal from sibling shards, so a
    long-running job on one worker never strands jobs queued behind it.

    Guarantees:

    - {b Crash isolation} — an exception raised by a job is captured as
      [Error (Failed _)] in that job's outcome; the worker domain and the
      pool survive.
    - {b Per-job wall-clock timeouts} — a job that runs past its deadline
      has its outcome forced to [Error Timed_out] and waiters are released;
      the job's domain keeps running to completion in the background (OCaml
      domains cannot be preempted) but its late result is discarded.
    - {b Cancellation} — [cancel] removes a not-yet-started job from the
      queue ([Error Cancelled]); jobs already running are not interrupted.
    - {b Deterministic result ordering} — [run_list] / [map_stream] emit
      results in submission order regardless of completion order, so
      parallel output is byte-identical to a sequential run.

    The simulator itself stays single-threaded per job; parallelism is
    across independent (workload, paradigm, options) engine runs, which PR
    1's golden traces pinned as deterministic. *)

type error =
  | Failed of string  (** the job raised; carries [Printexc.to_string] *)
  | Timed_out  (** exceeded its wall-clock budget while running *)
  | Cancelled  (** cancelled before a worker picked it up *)
  | Degraded of string
      (** the job raised {!Degradation}: a structured, deterministic "the
          result is degraded" outcome rather than a crash. Never retried. *)

exception Degradation of string
(** Raised by a job to report a {e structured} degraded outcome — e.g. a
    fault-injected run that exhausted its mitigation budget. The pool maps
    it to [Error (Degraded msg)] instead of [Failed], and the per-job retry
    loop does {e not} retry it (the signal is deterministic: retrying would
    re-derive the same degradation). *)

val error_to_string : error -> string

type 'a outcome = ('a, error) result

type t
(** A pool handle. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count], clamped to at least 1 — the default
    for every [--jobs] flag. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs] worker domains (default
    {!recommended_jobs}). [jobs] is clamped to at least 1. *)

val jobs : t -> int
(** Number of worker domains. *)

val shutdown : t -> unit
(** Drain nothing: wake every worker, wait for jobs already {e running} to
    finish, and join the domains. Queued jobs that never started are
    completed as [Error Cancelled]. Idempotent. Submitting to a shut-down
    pool raises [Invalid_argument]. *)

type stats = {
  wall_s : float;  (** seconds since the pool was created *)
  workers : (int * float) array;
      (** per worker: (jobs run, busy seconds inside jobs) *)
}

val stats : t -> stats
(** Worker utilization counters. Exact once the pool is {!shutdown} (the
    join publishes the workers' writes); on a live pool the values are
    advisory. Busy-fraction per worker is [busy_s /. wall_s]. *)

val profile_into : t -> Prof.t -> unit
(** Record per-worker utilization into a profiler registry: for each
    worker [i], paths [pool;worker<i>;busy] (time inside jobs) and
    [pool;worker<i>;queue_wait] (summed submission→start wait of the jobs
    that worker ran), both with the worker's job count. Call {e after}
    {!shutdown} — the join publishes the workers' plain-field counters and
    leaves a single domain touching the (unsynchronized) registry. No-op
    on a disabled registry. *)

val ticker_ticks : t -> int
(** Iterations the timeout-ticker domain has run {e with at least one
    armed timeout}. The ticker parks on a condition variable whenever no
    submitted job has a timeout pending, so on an idle pool this counter
    stops advancing — exposed so tests (and diagnostics) can assert a
    resident server is not spinning a domain. *)

type 'a ticket
(** A handle for one submitted job. *)

val default_backoff_cap_s : float
(** Default [backoff_cap_s] for {!submit}: 30 s. *)

val backoff_delay : backoff_s:float -> cap_s:float -> attempt:int -> Rng.t -> float
(** The retry schedule: a {e full-jitter} capped exponential — a uniform
    draw from [\[0, min cap_s (backoff_s *. 2.{^attempt}))], 0 when
    [backoff_s <= 0]. Exposed for tests and for other layers (shard
    reconnect) that need the same stampede-safe schedule: the raw
    exponential wakes every retrier in lockstep and, uncapped, grows
    without bound. *)

val submit :
  t ->
  ?retries:int ->
  ?backoff_s:float ->
  ?backoff_cap_s:float ->
  ?timeout_s:float ->
  (unit -> 'a) ->
  'a ticket
(** Enqueue a job on the least-loaded shard. [timeout_s] is the wall-clock
    budget measured from the moment a worker starts the job.

    [retries] (default 0) re-runs the job inside the {e same} worker slot
    when it raises an ordinary exception, up to [retries] extra attempts,
    sleeping a {!backoff_delay} draw between attempts — a uniform-jitter
    exponential capped at [backoff_cap_s] (default
    {!default_backoff_cap_s}), so concurrent retriers of a common
    transient failure do not wake in lockstep and re-stampede. The jitter
    stream is seeded by submission index, so a job's schedule is
    reproducible and independent of pool scheduling. [backoff_s = 0.0]
    (the default) retries immediately. {!Degradation} is never retried —
    it is a deterministic structured outcome, not a transient crash. The
    whole retry sequence shares one [timeout_s] budget. *)

val cancel : 'a ticket -> bool
(** [cancel tk] is [true] iff the job had not started and is now marked
    [Cancelled] (the worker will skip it). Running or finished jobs return
    [false]. *)

val await : 'a ticket -> 'a outcome
(** Block until the job's outcome is known (completion, timeout firing, or
    cancellation). Safe to call from any domain; repeated calls return the
    same outcome. *)

val run_list :
  ?jobs:int ->
  ?retries:int ->
  ?backoff_s:float ->
  ?backoff_cap_s:float ->
  ?timeout_s:float ->
  (unit -> 'a) list ->
  'a outcome list
(** [run_list fs] runs every thunk on a fresh pool and returns outcomes in
    submission order. The pool is shut down before returning. With
    [~jobs:1] this is sequential execution with the same API.
    [retries]/[backoff_s] apply per job as in {!submit}. *)

val map_stream :
  ?jobs:int ->
  ?retries:int ->
  ?backoff_s:float ->
  ?backoff_cap_s:float ->
  ?timeout_s:float ->
  f:('a -> 'b) ->
  emit:(int -> 'b outcome -> unit) ->
  'a list ->
  unit
(** [map_stream ~f ~emit items] applies [f] to every item on a fresh pool
    and calls [emit i outcome] {e in submission order} (0, 1, 2, …) from
    the calling domain, as soon as each prefix of results is ready — the
    streaming surface for the JSON-lines job server. *)
