type 'v shard = { m : Mutex.t; tbl : (string, 'v) Hashtbl.t }

type 'v t = {
  shards : 'v shard array;
  hit_count : int Atomic.t;
  miss_count : int Atomic.t;
}

let create ?(shards = 16) () =
  {
    shards =
      Array.init (max 1 shards) (fun _ ->
          { m = Mutex.create (); tbl = Hashtbl.create 16 });
    hit_count = Atomic.make 0;
    miss_count = Atomic.make 0;
  }

let shard_of t key = t.shards.(Hashtbl.hash key mod Array.length t.shards)

let find_opt t key =
  let s = shard_of t key in
  let r = Mutex.protect s.m (fun () -> Hashtbl.find_opt s.tbl key) in
  Atomic.incr (if r = None then t.miss_count else t.hit_count);
  r

let find_or_compute t ~key f =
  let s = shard_of t key in
  match Mutex.protect s.m (fun () -> Hashtbl.find_opt s.tbl key) with
  | Some v ->
    Atomic.incr t.hit_count;
    (v, true)
  | None ->
    Atomic.incr t.miss_count;
    (* compute outside the lock: a long compile must not serialize the
       shard; on a same-key race the first store wins *)
    let v = f () in
    let v =
      Mutex.protect s.m (fun () ->
          match Hashtbl.find_opt s.tbl key with
          | Some winner -> winner
          | None ->
            Hashtbl.replace s.tbl key v;
            v)
    in
    (v, false)

(* Deterministic iteration: snapshot every shard under its lock, then fold
   in sorted-key order — callers persist cache contents and need stable
   bytes regardless of shard layout or insertion order. *)
let fold f t init =
  let entries =
    Array.fold_left
      (fun acc s ->
        Mutex.protect s.m (fun () ->
            Hashtbl.fold (fun k v l -> (k, v) :: l) s.tbl acc))
      [] t.shards
  in
  let entries =
    List.sort (fun (a, _) (b, _) -> String.compare a b) entries
  in
  List.fold_left (fun acc (k, v) -> f k v acc) init entries

let insert t ~key v =
  let s = shard_of t key in
  Mutex.protect s.m (fun () ->
      if not (Hashtbl.mem s.tbl key) then Hashtbl.replace s.tbl key v)

let length t =
  Array.fold_left
    (fun acc s -> acc + Mutex.protect s.m (fun () -> Hashtbl.length s.tbl))
    0 t.shards

let hits t = Atomic.get t.hit_count
let misses t = Atomic.get t.miss_count

let reset t =
  Array.iter (fun s -> Mutex.protect s.m (fun () -> Hashtbl.reset s.tbl)) t.shards;
  Atomic.set t.hit_count 0;
  Atomic.set t.miss_count 0
