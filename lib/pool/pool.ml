(* Domain-based worker pool with a sharded Mutex/Condition work queue.

   One shard per worker keeps dequeue contention local; idle workers steal
   from sibling shards. Wakeups use a generation counter: every submit
   bumps [gen] before publishing the job, and a worker that found every
   shard empty re-checks [gen] under its own shard lock before blocking —
   if a job arrived anywhere in between, it rescans instead of sleeping, so
   no wakeup can be lost.

   Timeouts are enforced by a lazily spawned ticker domain that pokes armed
   jobs every couple of milliseconds: a running job past its deadline has
   its outcome forced to [Timed_out] and its waiters broadcast. The worker
   computing it keeps going (domains cannot be preempted) but its late
   result is discarded under the cell lock. While no armed timeout exists
   the ticker parks on [wcv] instead of sleeping in a loop, so a resident
   process (e.g. the serve front end) does not spin a domain at 500 Hz
   forever after its first deadline-bearing job. *)

type error = Failed of string | Timed_out | Cancelled | Degraded of string

exception Degradation of string

let error_to_string = function
  | Failed msg -> "failed: " ^ msg
  | Timed_out -> "timed out"
  | Cancelled -> "cancelled"
  | Degraded msg -> "degraded: " ^ msg

type 'a outcome = ('a, error) result

(* Shared between the submitter, one worker, the ticker and any awaiters.
   [result]/[started_at] are guarded by [m]; [cv] signals result arrival. *)
type 'a cell = {
  m : Mutex.t;
  cv : Condition.t;
  mutable result : 'a outcome option;
  mutable started_at : float option;
  timeout_s : float option;
}

type 'a ticket = 'a cell

(* [submitted_at] feeds the per-worker queue-wait accounting: the gap
   between submission and a worker starting the job. *)
type job = Job : 'a cell * (unit -> 'a) * float -> job

type shard = {
  sm : Mutex.t;
  scv : Condition.t;
  queue : job Queue.t; (* guarded by [sm] *)
}

(* Written only by the owning worker domain; reading after [shutdown] is
   race-free (Domain.join gives the happens-before edge), reads from a live
   pool are advisory. *)
type worker_stats = {
  mutable jobs_run : int;
  mutable busy_s : float;
  mutable wait_s : float; (* summed queue wait of the jobs this worker ran *)
}

type stats = { wall_s : float; workers : (int * float) array }

type t = {
  shards : shard array;
  mutable domains : unit Domain.t list; (* guarded by [glock] *)
  mutable ticker : unit Domain.t option; (* guarded by [glock] *)
  glock : Mutex.t;
  stopped : bool Atomic.t;
  gen : int Atomic.t; (* bumped on every submit: lost-wakeup guard *)
  rr : int Atomic.t; (* round-robin submission cursor *)
  wm : Mutex.t;
  wcv : Condition.t; (* signalled when a watcher is added or at shutdown *)
  mutable watchers : (unit -> bool) list; (* true = expired, drop it *)
  ticks : int Atomic.t; (* ticker iterations with >= 1 armed timeout *)
  subs : int Atomic.t; (* submissions so far: per-job retry-jitter seeds *)
  wstats : worker_stats array; (* one slot per worker, worker-owned *)
  created_at : float;
}

(* all pool durations (busy time, queue wait, timeout deadlines) read the
   clamped monotonic clock: an NTP step must not fire deadlines early or
   record negative busy time *)
let now () = Clock.now ()

let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

let jobs t = Array.length t.shards

(* ---- worker side ---- *)

let exec (Job (cell, f, _)) =
  let skip =
    Mutex.protect cell.m (fun () ->
        match cell.result with
        | Some _ -> true (* cancelled before start *)
        | None ->
          cell.started_at <- Some (now ());
          false)
  in
  if not skip then begin
    let r =
      try Ok (f ())
      with
      | Degradation msg -> Error (Degraded msg)
      | e -> Error (Failed (Printexc.to_string e))
    in
    Mutex.protect cell.m (fun () ->
        match cell.result with
        | Some _ -> () (* timed out while running: discard the late result *)
        | None ->
          cell.result <- Some r;
          Condition.broadcast cell.cv)
  end

let try_pop (sh : shard) =
  Mutex.protect sh.sm (fun () -> Queue.take_opt sh.queue)

(* own shard first, then siblings left-to-right from our index *)
let steal t k =
  let n = Array.length t.shards in
  let rec go i =
    if i >= n then None
    else
      match try_pop t.shards.((k + i) mod n) with
      | Some j -> Some j
      | None -> go (i + 1)
  in
  go 0

let rec worker t k =
  match steal t k with
  | Some (Job (_, _, submitted_at) as job) ->
    let t0 = now () in
    exec job;
    let ws = t.wstats.(k) in
    ws.busy_s <- ws.busy_s +. (now () -. t0);
    ws.wait_s <- ws.wait_s +. Float.max 0.0 (t0 -. submitted_at);
    ws.jobs_run <- ws.jobs_run + 1;
    worker t k
  | None ->
    if not (Atomic.get t.stopped) then begin
      let sh = t.shards.(k) in
      let gen0 = Atomic.get t.gen in
      Mutex.lock sh.sm;
      (* block only if no submit landed since our (empty) scan began *)
      if
        (not (Atomic.get t.stopped))
        && Atomic.get t.gen = gen0
        && Queue.is_empty sh.queue
      then Condition.wait sh.scv sh.sm;
      Mutex.unlock sh.sm;
      worker t k
    end

(* ---- ticker (timeout enforcement) ---- *)

let poke_cell cell () =
  Mutex.protect cell.m (fun () ->
      match (cell.result, cell.started_at, cell.timeout_s) with
      | Some _, _, _ -> true
      | None, Some t0, Some lim when now () -. t0 >= lim ->
        cell.result <- Some (Error Timed_out);
        Condition.broadcast cell.cv;
        true
      | _ -> false)

let rec ticker_loop t =
  if not (Atomic.get t.stopped) then begin
    let armed =
      Mutex.protect t.wm (fun () ->
          t.watchers <- List.filter (fun poke -> not (poke ())) t.watchers;
          t.watchers <> [])
    in
    if armed then begin
      Atomic.incr t.ticks;
      Unix.sleepf 0.002
    end
    else begin
      (* park until the next timeout-armed submit (or shutdown) — an idle
         resident pool must not busy-wake this domain *)
      Mutex.lock t.wm;
      while t.watchers = [] && not (Atomic.get t.stopped) do
        Condition.wait t.wcv t.wm
      done;
      Mutex.unlock t.wm
    end;
    ticker_loop t
  end

let ensure_ticker t =
  Mutex.protect t.glock (fun () ->
      match t.ticker with
      | Some _ -> ()
      | None ->
        if not (Atomic.get t.stopped) then
          t.ticker <- Some (Domain.spawn (fun () -> ticker_loop t)))

(* ---- pool lifecycle ---- *)

let create ?jobs () =
  let n =
    max 1 (match jobs with Some j -> j | None -> recommended_jobs ())
  in
  let t =
    {
      shards =
        Array.init n (fun _ ->
            { sm = Mutex.create (); scv = Condition.create (); queue = Queue.create () });
      domains = [];
      ticker = None;
      glock = Mutex.create ();
      stopped = Atomic.make false;
      gen = Atomic.make 0;
      rr = Atomic.make 0;
      wm = Mutex.create ();
      wcv = Condition.create ();
      watchers = [];
      ticks = Atomic.make 0;
      subs = Atomic.make 0;
      wstats =
        Array.init n (fun _ -> { jobs_run = 0; busy_s = 0.0; wait_s = 0.0 });
      created_at = now ();
    }
  in
  t.domains <- List.init n (fun k -> Domain.spawn (fun () -> worker t k));
  t

let drain_cancelled (sh : shard) =
  let pending = Mutex.protect sh.sm (fun () ->
      let js = List.of_seq (Queue.to_seq sh.queue) in
      Queue.clear sh.queue;
      js)
  in
  List.iter
    (fun (Job (cell, _, _)) ->
      Mutex.protect cell.m (fun () ->
          if cell.result = None then begin
            cell.result <- Some (Error Cancelled);
            Condition.broadcast cell.cv
          end))
    pending

let shutdown t =
  let first = not (Atomic.exchange t.stopped true) in
  if first then begin
    (* wake a parked ticker so it can observe [stopped] and exit *)
    Mutex.protect t.wm (fun () -> Condition.broadcast t.wcv);
    Array.iter drain_cancelled t.shards;
    Array.iter
      (fun sh -> Mutex.protect sh.sm (fun () -> Condition.broadcast sh.scv))
      t.shards;
    let ds, tick =
      Mutex.protect t.glock (fun () ->
          let r = (t.domains, t.ticker) in
          t.domains <- [];
          t.ticker <- None;
          r)
    in
    List.iter Domain.join ds;
    Option.iter Domain.join tick
  end

let stats t =
  {
    wall_s = now () -. t.created_at;
    workers = Array.map (fun ws -> (ws.jobs_run, ws.busy_s)) t.wstats;
  }

let ticker_ticks t = Atomic.get t.ticks

(* Per-worker queue-wait vs busy time as profiler rows. Worker stats are
   worker-owned plain fields, so this must only run once the domains have
   joined ([shutdown] gives the happens-before edge); at that point the
   registry is touched from one domain only and [record_path] is safe. *)
let profile_into t prof =
  if Prof.enabled prof then
    Array.iteri
      (fun i ws ->
        let p name = Printf.sprintf "pool;worker%d;%s" i name in
        Prof.record_path prof (p "busy") ~count:ws.jobs_run
          ~ns:(ws.busy_s *. 1e9) ();
        Prof.record_path prof (p "queue_wait") ~count:ws.jobs_run
          ~ns:(ws.wait_s *. 1e9) ())
      t.wstats

(* ---- submission / results ---- *)

(* Retry-with-backoff runs inside the worker, so the whole retry sequence
   counts against one job slot (and one timeout budget). [Degradation] is a
   deterministic structured signal — the job itself decided the result is
   degraded — so it is never retried; ordinary exceptions (transient
   crashes) are, with capped full-jitter exponential backoff between
   attempts. *)

let default_backoff_cap_s = 30.0

(* Full jitter: attempt [k] sleeps a uniform draw from
   [0, min cap (backoff * 2^k)). The raw exponential alone is a stampede
   amplifier — N workers (or shards) hitting one transient failure all
   recompute the same schedule and wake in lockstep, re-arriving together
   at every attempt; uncapped, the lockstep sleeps also grow without
   bound. Jitter decorrelates the wakeups, the cap bounds the worst-case
   stall. The draw comes from a caller-seeded stream, so a given job's
   retry schedule is reproducible and independent of scheduling. *)
let backoff_delay ~backoff_s ~cap_s ~attempt rng =
  if backoff_s <= 0.0 then 0.0
  else
    let cap = Float.max 0.0 cap_s in
    Rng.float rng (Float.min cap (backoff_s *. (2.0 ** float_of_int attempt)))

let with_retries ~retries ~backoff_s ~cap_s ~seed f () =
  let rng = Rng.create seed in
  let rec go attempt =
    try f ()
    with
    | Degradation _ as e -> raise e
    | _ when attempt < retries ->
      let d = backoff_delay ~backoff_s ~cap_s ~attempt rng in
      if d > 0.0 then Unix.sleepf d;
      go (attempt + 1)
  in
  go 0

let submit t ?(retries = 0) ?(backoff_s = 0.0)
    ?(backoff_cap_s = default_backoff_cap_s) ?timeout_s f =
  if Atomic.get t.stopped then invalid_arg "Pool.submit: pool is shut down";
  let f =
    if retries > 0 then
      (* jitter seed = submission index: deterministic for a caller
         submitting in a fixed order, distinct across concurrent jobs *)
      let seed = Atomic.fetch_and_add t.subs 1 in
      with_retries ~retries ~backoff_s ~cap_s:backoff_cap_s ~seed f
    else f
  in
  let cell =
    {
      m = Mutex.create ();
      cv = Condition.create ();
      result = None;
      started_at = None;
      timeout_s;
    }
  in
  if timeout_s <> None then begin
    Mutex.protect t.wm (fun () ->
        t.watchers <- poke_cell cell :: t.watchers;
        Condition.signal t.wcv);
    ensure_ticker t
  end;
  let n = Array.length t.shards in
  let k = Atomic.fetch_and_add t.rr 1 mod n in
  Atomic.incr t.gen; (* publish intent before the job becomes visible *)
  let sh = t.shards.(k) in
  Mutex.protect sh.sm (fun () -> Queue.push (Job (cell, f, now ())) sh.queue);
  (* a shutdown that raced us may already have drained the queues *)
  if Atomic.get t.stopped then drain_cancelled sh;
  (* wake the home worker, and every sibling that might be idle-stealing *)
  Array.iter
    (fun sh -> Mutex.protect sh.sm (fun () -> Condition.signal sh.scv))
    t.shards;
  cell

let cancel (cell : _ ticket) =
  Mutex.protect cell.m (fun () ->
      match (cell.result, cell.started_at) with
      | None, None ->
        cell.result <- Some (Error Cancelled);
        Condition.broadcast cell.cv;
        true
      | _ -> false)

let await (cell : _ ticket) =
  Mutex.lock cell.m;
  let rec loop () =
    match cell.result with
    | Some r -> r
    | None ->
      Condition.wait cell.cv cell.m;
      loop ()
  in
  let r = loop () in
  Mutex.unlock cell.m;
  r

let map_stream ?jobs ?retries ?backoff_s ?backoff_cap_s ?timeout_s ~f ~emit
    items =
  let t = create ?jobs () in
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () ->
      let tickets =
        List.map
          (fun x ->
            submit t ?retries ?backoff_s ?backoff_cap_s ?timeout_s (fun () ->
                f x))
          items
      in
      List.iteri (fun i tk -> emit i (await tk)) tickets)

let run_list ?jobs ?retries ?backoff_s ?backoff_cap_s ?timeout_s fs =
  let out = Array.make (List.length fs) None in
  map_stream ?jobs ?retries ?backoff_s ?backoff_cap_s ?timeout_s
    ~f:(fun f -> f ())
    ~emit:(fun i r -> out.(i) <- Some r)
    fs;
  Array.to_list (Array.map Option.get out)
