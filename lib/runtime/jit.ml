type stats = {
  commands : int;
  jit_cycles : float;
  final_reduce_elems : float;
  stream_load_elems : float;
  stream_store_elems : float;
  spill_elems : float;
  writeback_elems : float;
  compute_elems : float;
  memoized : bool;
}

let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

(* Tile box covered by a (decomposed or not) region. *)
let tile_box_of layout rect =
  let tile = layout.Layout.tile in
  let n = Hyperrect.dims rect in
  let lo = Array.init n (fun d -> fdiv (Hyperrect.lo rect d) tile.(d)) in
  let hi = Array.init n (fun d -> fdiv (Hyperrect.hi rect d - 1) tile.(d) + 1) in
  Hyperrect.make ~lo ~hi

(* Active bitlines per touched tile of a decomposed piece: full tile extent
   in dimensions where the piece spans multiple tiles (it is then aligned),
   the piece extent otherwise. *)
let lanes_of layout piece =
  let tile = layout.Layout.tile in
  let box = tile_box_of layout piece in
  let lanes = ref 1 in
  for d = 0 to Hyperrect.dims piece - 1 do
    let span = Hyperrect.extent box d in
    let e = if span > 1 then tile.(d) else Hyperrect.extent piece d in
    lanes := !lanes * e
  done;
  !lanes

(* In-tile position range of a piece along one dimension. *)
let in_tile_range layout piece d =
  let t = layout.Layout.tile.(d) in
  let box = tile_box_of layout piece in
  if Hyperrect.extent box d > 1 then (0, t)
  else begin
    let lo = Hyperrect.lo piece d and hi = Hyperrect.hi piece d in
    let base = fdiv lo t * t in
    (lo - base, hi - base)
  end

type lower_ctx = {
  cfg : Machine_config.t;
  g : Tdfg.t;
  schedule : Schedule.t;
  layout : Layout.t;
  env : string -> int;
  mutable out : Command.t list; (* reversed *)
  mutable dirty : bool; (* pending inter-tile movement since last sync *)
  mutable final_reduce : float;
  mutable s_load : float;
  mutable s_store : float;
  mutable spill : float;
  mutable writeback : float;
  mutable computed : float;
}

let emit ctx c = ctx.out <- c :: ctx.out

let barrier_if_dirty ctx =
  if ctx.dirty then begin
    emit ctx Command.sync;
    ctx.dirty <- false
  end

let resolve_dom ctx id =
  match Tdfg.domain ctx.g id with
  | Tdfg.Infinite -> None
  | Tdfg.Finite r -> Some (Symrect.resolve r ctx.env)

let dtype ctx = Tdfg.dtype ctx.g

let decomp ctx rect = Hyperrect.decompose rect ~tile:ctx.layout.Layout.tile

let lower_cmp ctx id op inputs =
  barrier_if_dirty ctx;
  let const_operands =
    List.length
      (List.filter
         (fun i -> match Tdfg.kind ctx.g i with Tdfg.Const _ -> true | _ -> false)
         inputs)
  in
  match resolve_dom ctx id with
  | None -> () (* constant folding: nothing to execute *)
  | Some dom ->
    List.iter
      (fun piece ->
        let lanes = lanes_of ctx.layout piece in
        ctx.computed <- ctx.computed +. float_of_int (Hyperrect.volume piece);
        emit ctx
          (Command.make
             (Command.Compute { op; const_operands })
             ~dtype:(dtype ctx)
             ~tile_box:(tile_box_of ctx.layout piece)
             ~lanes_per_tile:lanes
             ~label:(Printf.sprintf "cmp:%d" id)))
      (decomp ctx dom)

(* Algorithm 2: lower one mv into shift commands over a decomposed piece. *)
let lower_mv_piece ctx ~node ~dim ~dist piece =
  let t = ctx.layout.Layout.tile.(dim) in
  let d_inter = abs dist / t in
  let d_intra = abs dist mod t in
  let d_intra_c = t - d_intra in
  (* (mask_lo, mask_hi, inter, intra) per Alg 2 *)
  let shifts =
    if dist > 0 then
      (0, d_intra_c, d_inter, d_intra)
      :: (if d_intra > 0 then [ (d_intra_c, t, d_inter + 1, -d_intra_c) ] else [])
    else if dist < 0 then
      (if d_intra > 0 then [ (0, d_intra, -(d_inter + 1), d_intra_c) ] else [])
      @ [ (d_intra, t, -d_inter, -d_intra) ]
    else []
  in
  let p_lo, p_hi = in_tile_range ctx.layout piece dim in
  let other_lanes = lanes_of ctx.layout piece / max 1 (min t (p_hi - p_lo)) in
  List.iter
    (fun (m_lo, m_hi, inter, intra) ->
      let o_lo = max m_lo p_lo and o_hi = min m_hi p_hi in
      if o_hi > o_lo then begin
        (* the piece has bitlines under this mask *)
        let lanes = other_lanes * (o_hi - o_lo) in
        let pat = Pattern.range ~lo:o_lo ~hi:o_hi in
        let kind =
          if inter = 0 then Command.Intra_shift { dim; distance = intra }
          else Command.Inter_shift { dim; tile_dist = inter; intra_dist = intra }
        in
        if inter <> 0 then ctx.dirty <- true;
        emit ctx
          (Command.make kind ~bitline_pat:pat ~dtype:(dtype ctx)
             ~tile_box:(tile_box_of ctx.layout piece)
             ~lanes_per_tile:lanes
             ~label:(Printf.sprintf "mv:%d" node))
      end)
    shifts

let lower_mv ctx node input ~dim ~dist =
  if dist <> 0 then begin
    match resolve_dom ctx input with
    | None -> ()
    | Some src -> List.iter (lower_mv_piece ctx ~node ~dim ~dist) (decomp ctx src)
  end

let lower_bc ctx id input ~dim =
  match (resolve_dom ctx id, resolve_dom ctx input) with
  | Some dest, Some _src ->
    List.iter
      (fun piece ->
        let box = tile_box_of ctx.layout piece in
        let copies = Hyperrect.extent box dim in
        if copies > 1 then ctx.dirty <- true;
        emit ctx
          (Command.make
             (Command.Broadcast { dim; copies })
             ~dtype:(dtype ctx) ~tile_box:box
             ~lanes_per_tile:(lanes_of ctx.layout piece)
             ~label:(Printf.sprintf "bc:%d" id)))
      (decomp ctx dest)
  | _ -> () (* broadcasting a constant is folded into compute commands *)

let lower_reduce ctx op input ~dim =
  barrier_if_dirty ctx;
  match resolve_dom ctx input with
  | None -> ()
  | Some src ->
    let extent = Hyperrect.extent src dim in
    let t = ctx.layout.Layout.tile.(dim) in
    let width = min t extent in
    List.iter
      (fun piece ->
        ctx.computed <- ctx.computed +. float_of_int (Hyperrect.volume piece);
        emit ctx
          (Command.make
             (Command.Reduce { op; width })
             ~dtype:(dtype ctx)
             ~tile_box:(tile_box_of ctx.layout piece)
             ~lanes_per_tile:(lanes_of ctx.layout piece)
             ~label:(Printf.sprintf "reduce:%d" input)))
      (decomp ctx src);
    (* Partials left across tiles along [dim] are collected by a
       near-memory stream (the Final Reduce phase). *)
    let tiles_along = (extent + t - 1) / t in
    if tiles_along > 1 then begin
      let out_elems = Hyperrect.volume src / max 1 extent in
      ctx.final_reduce <-
        ctx.final_reduce +. float_of_int (out_elems * tiles_along)
    end

(* A spilled node's value leaves the arrays through a spill store stream
   and its consumers pull it back in — both charged as stream elements
   moving at bank bandwidth (paper §6: "a stream writing back and loading
   from the DRAM"). *)
let charge_spill ctx id =
  if Schedule.is_spilled ctx.schedule id then
    match resolve_dom ctx id with
    | Some dom ->
      ctx.spill <- ctx.spill +. float_of_int (Hyperrect.volume dom)
    | None -> ()

let lower_node ctx (instr : Schedule.instr) =
  charge_spill ctx instr.node;
  List.iter (charge_spill ctx) (Tdfg.inputs_of (Tdfg.kind ctx.g instr.node));
  match Tdfg.kind ctx.g instr.node with
  | Tdfg.Tensor _ | Tdfg.Const _ | Tdfg.Shrink _ -> ()
  | Tdfg.Stream_load _ -> begin
    match resolve_dom ctx instr.node with
    | Some dom -> ctx.s_load <- ctx.s_load +. float_of_int (Hyperrect.volume dom)
    | None -> ()
  end
  | Tdfg.Cmp { op; inputs } -> lower_cmp ctx instr.node op inputs
  | Tdfg.Mv { input; dim; dist } -> lower_mv ctx instr.node input ~dim ~dist
  | Tdfg.Bc { input; dim; _ } -> lower_bc ctx instr.node input ~dim
  | Tdfg.Reduce { op; input; dim } -> lower_reduce ctx op input ~dim

let lower_output ctx schedule o =
  match o with
  | Tdfg.Out_tensor { src; array; _ } -> begin
    barrier_if_dirty ctx;
    match resolve_dom ctx src with
    | None -> ()
    | Some dom ->
      ctx.writeback <- ctx.writeback +. float_of_int (Hyperrect.volume dom);
      let src_slot = Schedule.slot_of schedule src in
      let arr_slot = List.assoc_opt array schedule.Schedule.array_slots in
      if src_slot <> arr_slot then
        (* copy the result wordlines into the array's persistent slot *)
        List.iter
          (fun piece ->
            emit ctx
              (Command.make
                 (Command.Compute { op = Op.Copy; const_operands = 0 })
                 ~dtype:(dtype ctx)
                 ~tile_box:(tile_box_of ctx.layout piece)
                 ~lanes_per_tile:(lanes_of ctx.layout piece)
                 ~label:("writeback:" ^ array)))
          (decomp ctx dom)
  end
  | Tdfg.Out_stream { src; _ } -> begin
    barrier_if_dirty ctx;
    match resolve_dom ctx src with
    | Some dom -> ctx.s_store <- ctx.s_store +. float_of_int (Hyperrect.volume dom)
    | None -> ()
  end

let lower cfg g ~schedule ~layout ~env =
  let ctx =
    {
      cfg;
      g;
      schedule;
      layout;
      env;
      out = [];
      dirty = false;
      final_reduce = 0.0;
      s_load = 0.0;
      s_store = 0.0;
      spill = 0.0;
      writeback = 0.0;
      computed = 0.0;
    }
  in
  List.iter (lower_node ctx) schedule.Schedule.order;
  List.iter (lower_output ctx schedule) (Tdfg.outputs g);
  if ctx.dirty then emit ctx Command.sync;
  let cmds = List.rev ctx.out in
  let n = List.length cmds in
  let jit_cycles =
    float_of_int cfg.Machine_config.jit_base_cycles
    +. (float_of_int n *. float_of_int cfg.Machine_config.jit_cycles_per_command)
  in
  ( cmds,
    {
      commands = n;
      jit_cycles;
      final_reduce_elems = ctx.final_reduce;
      stream_load_elems = ctx.s_load +. ctx.spill;
      stream_store_elems = ctx.s_store +. ctx.spill;
      spill_elems = ctx.spill;
      writeback_elems = ctx.writeback;
      compute_elems = ctx.computed;
      memoized = false;
    } )

(* Memoization *)

type memo = {
  table : (string, Command.t list * stats) Hashtbl.t;
  warm_regions : (string, unit) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let memo_create () =
  { table = Hashtbl.create 64; warm_regions = Hashtbl.create 8; hits = 0; misses = 0 }

let memo_lookup_cycles = 200.0

(* The per-region entry cost (template instantiation, array-dimension
   specialization, §4.2) is paid once; re-lowering the same region with new
   parameters only maps the pre-scheduled tDFG onto the layout. *)
let region_of_key key =
  match String.index_opt key '|' with
  | Some i -> String.sub key 0 i
  | None -> key

let lower_memo ?(trace = Trace.null) memo ~key cfg g ~schedule ~layout ~env =
  match Hashtbl.find_opt memo.table key with
  | Some (cmds, st) ->
    memo.hits <- memo.hits + 1;
    if Trace.enabled trace then Trace.emit trace (Trace.Memo { key; hit = true });
    (cmds, { st with jit_cycles = memo_lookup_cycles; memoized = true })
  | None ->
    memo.misses <- memo.misses + 1;
    let region = region_of_key key in
    if Trace.enabled trace then begin
      Trace.emit trace (Trace.Memo { key; hit = false });
      Trace.emit trace
        (Trace.Jit_span { dir = Trace.Enter; region; commands = 0; cycles = 0.0 })
    end;
    let cmds, st = lower cfg g ~schedule ~layout ~env in
    let st =
      if Hashtbl.mem memo.warm_regions region then
        {
          st with
          jit_cycles =
            st.jit_cycles -. float_of_int cfg.Machine_config.jit_base_cycles
            +. memo_lookup_cycles;
        }
      else begin
        Hashtbl.replace memo.warm_regions region ();
        st
      end
    in
    if Trace.enabled trace then
      Trace.emit trace
        (Trace.Jit_span
           {
             dir = Trace.Exit;
             region;
             commands = st.commands;
             cycles = st.jit_cycles;
           });
    Hashtbl.replace memo.table key (cmds, st);
    (cmds, st)

let memo_hits m = m.hits
let memo_misses m = m.misses
