type stats = {
  commands : int;
  jit_cycles : float;
  final_reduce_elems : float;
  stream_load_elems : float;
  stream_store_elems : float;
  spill_elems : float;
  writeback_elems : float;
  compute_elems : float;
  memoized : bool;
}

let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

(* Tile box covered by a (decomposed or not) region. *)
let tile_box_of layout rect =
  let tile = layout.Layout.tile in
  let n = Hyperrect.dims rect in
  let lo = Array.make n 0 and hi = Array.make n 0 in
  for d = 0 to n - 1 do
    lo.(d) <- fdiv (Hyperrect.lo rect d) tile.(d);
    hi.(d) <- fdiv (Hyperrect.hi rect d - 1) tile.(d) + 1
  done;
  Hyperrect.unsafe_make ~lo ~hi

(* Active bitlines per touched tile of a decomposed piece: full tile extent
   in dimensions where the piece spans multiple tiles (it is then aligned),
   the piece extent otherwise. [box] is the piece's [tile_box_of], computed
   once by the caller and shared with the emitted command. *)
let lanes_of_box layout piece box =
  let tile = layout.Layout.tile in
  let lanes = ref 1 in
  for d = 0 to Hyperrect.dims piece - 1 do
    let span = Hyperrect.extent box d in
    let e = if span > 1 then tile.(d) else Hyperrect.extent piece d in
    lanes := !lanes * e
  done;
  !lanes

(* In-tile position range of a piece along one dimension. *)
let in_tile_range_box layout piece box d =
  let t = layout.Layout.tile.(d) in
  if Hyperrect.extent box d > 1 then (0, t)
  else begin
    let lo = Hyperrect.lo piece d and hi = Hyperrect.hi piece d in
    let base = fdiv lo t * t in
    (lo - base, hi - base)
  end

(* All-float so OCaml lays the record out flat: updating a mutable float
   field in a mixed record boxes the new value on every store, and these
   six accumulators are bumped from the innermost per-piece loops. *)
type lower_acc = {
  mutable final_reduce : float;
  mutable s_load : float;
  mutable s_store : float;
  mutable spill : float;
  mutable writeback : float;
  mutable computed : float;
}

type lower_ctx = {
  cfg : Machine_config.t;
  g : Tdfg.t;
  schedule : Schedule.t;
  layout : Layout.t;
  dom : Tdfg.id -> Hyperrect.t option;
  out : Command.t Vec.t;
  mutable dirty : bool; (* pending inter-tile movement since last sync *)
  acc : lower_acc;
}

let emit ctx c = Vec.push ctx.out c

let barrier_if_dirty ctx =
  if ctx.dirty then begin
    emit ctx Command.sync;
    ctx.dirty <- false
  end

let resolve_dom ctx id = ctx.dom id

let dtype ctx = Tdfg.dtype ctx.g

let decomp_iter ctx rect f =
  Hyperrect.decompose_iter rect ~tile:ctx.layout.Layout.tile ~f

let lower_cmp ctx id op inputs =
  barrier_if_dirty ctx;
  let const_operands =
    List.length
      (List.filter
         (fun i -> match Tdfg.kind ctx.g i with Tdfg.Const _ -> true | _ -> false)
         inputs)
  in
  match resolve_dom ctx id with
  | None -> () (* constant folding: nothing to execute *)
  | Some dom ->
    (* one label (and one dtype read) per node, shared by all its pieces *)
    let label = "cmp:" ^ string_of_int id in
    let dtype = dtype ctx in
    let kind = Command.Compute { op; const_operands } in
    decomp_iter ctx dom (fun piece ->
        let box = tile_box_of ctx.layout piece in
        let lanes = lanes_of_box ctx.layout piece box in
        ctx.acc.computed <- ctx.acc.computed +. float_of_int (Hyperrect.volume piece);
        emit ctx
          (Command.make kind ~dtype ~tile_box:box ~lanes_per_tile:lanes ~label))

(* Algorithm 2: lower one mv into shift commands over a decomposed piece. *)
let lower_mv_piece ctx ~label ~dim ~dist piece =
  let t = ctx.layout.Layout.tile.(dim) in
  let d_inter = abs dist / t in
  let d_intra = abs dist mod t in
  let d_intra_c = t - d_intra in
  (* (mask_lo, mask_hi, inter, intra) per Alg 2 *)
  let shifts =
    if dist > 0 then
      (0, d_intra_c, d_inter, d_intra)
      :: (if d_intra > 0 then [ (d_intra_c, t, d_inter + 1, -d_intra_c) ] else [])
    else if dist < 0 then
      (if d_intra > 0 then [ (0, d_intra, -(d_inter + 1), d_intra_c) ] else [])
      @ [ (d_intra, t, -d_inter, -d_intra) ]
    else []
  in
  let box = tile_box_of ctx.layout piece in
  let p_lo, p_hi = in_tile_range_box ctx.layout piece box dim in
  let other_lanes =
    lanes_of_box ctx.layout piece box / max 1 (min t (p_hi - p_lo))
  in
  List.iter
    (fun (m_lo, m_hi, inter, intra) ->
      let o_lo = max m_lo p_lo and o_hi = min m_hi p_hi in
      if o_hi > o_lo then begin
        (* the piece has bitlines under this mask *)
        let lanes = other_lanes * (o_hi - o_lo) in
        let pat = Pattern.range ~lo:o_lo ~hi:o_hi in
        let kind =
          if inter = 0 then Command.Intra_shift { dim; distance = intra }
          else Command.Inter_shift { dim; tile_dist = inter; intra_dist = intra }
        in
        if inter <> 0 then ctx.dirty <- true;
        emit ctx
          (Command.make kind ~bitline_pat:pat ~dtype:(dtype ctx) ~tile_box:box
             ~lanes_per_tile:lanes ~label)
      end)
    shifts

let lower_mv ctx node input ~dim ~dist =
  if dist <> 0 then begin
    match resolve_dom ctx input with
    | None -> ()
    | Some src ->
      let label = "mv:" ^ string_of_int node in
      decomp_iter ctx src (lower_mv_piece ctx ~label ~dim ~dist)
  end

let lower_bc ctx id input ~dim =
  match (resolve_dom ctx id, resolve_dom ctx input) with
  | Some dest, Some _src ->
    let label = "bc:" ^ string_of_int id in
    let dtype = dtype ctx in
    decomp_iter ctx dest (fun piece ->
        let box = tile_box_of ctx.layout piece in
        let copies = Hyperrect.extent box dim in
        if copies > 1 then ctx.dirty <- true;
        emit ctx
          (Command.make
             (Command.Broadcast { dim; copies })
             ~dtype ~tile_box:box
             ~lanes_per_tile:(lanes_of_box ctx.layout piece box)
             ~label))
  | _ -> () (* broadcasting a constant is folded into compute commands *)

let lower_reduce ctx op input ~dim =
  barrier_if_dirty ctx;
  match resolve_dom ctx input with
  | None -> ()
  | Some src ->
    let extent = Hyperrect.extent src dim in
    let t = ctx.layout.Layout.tile.(dim) in
    let width = min t extent in
    let label = "reduce:" ^ string_of_int input in
    let dtype = dtype ctx in
    let kind = Command.Reduce { op; width } in
    decomp_iter ctx src (fun piece ->
        let box = tile_box_of ctx.layout piece in
        ctx.acc.computed <- ctx.acc.computed +. float_of_int (Hyperrect.volume piece);
        emit ctx
          (Command.make kind ~dtype ~tile_box:box
             ~lanes_per_tile:(lanes_of_box ctx.layout piece box)
             ~label));
    (* Partials left across tiles along [dim] are collected by a
       near-memory stream (the Final Reduce phase). *)
    let tiles_along = (extent + t - 1) / t in
    if tiles_along > 1 then begin
      let out_elems = Hyperrect.volume src / max 1 extent in
      ctx.acc.final_reduce <-
        ctx.acc.final_reduce +. float_of_int (out_elems * tiles_along)
    end

(* A spilled node's value leaves the arrays through a spill store stream
   and its consumers pull it back in — both charged as stream elements
   moving at bank bandwidth (paper §6: "a stream writing back and loading
   from the DRAM"). *)
let charge_spill ctx id =
  if Schedule.is_spilled ctx.schedule id then
    match resolve_dom ctx id with
    | Some dom ->
      ctx.acc.spill <- ctx.acc.spill +. float_of_int (Hyperrect.volume dom)
    | None -> ()

let lower_node ctx (instr : Schedule.instr) =
  charge_spill ctx instr.node;
  List.iter (charge_spill ctx) (Tdfg.inputs_of (Tdfg.kind ctx.g instr.node));
  match Tdfg.kind ctx.g instr.node with
  | Tdfg.Tensor _ | Tdfg.Const _ | Tdfg.Shrink _ -> ()
  | Tdfg.Stream_load _ -> begin
    match resolve_dom ctx instr.node with
    | Some dom -> ctx.acc.s_load <- ctx.acc.s_load +. float_of_int (Hyperrect.volume dom)
    | None -> ()
  end
  | Tdfg.Cmp { op; inputs } -> lower_cmp ctx instr.node op inputs
  | Tdfg.Mv { input; dim; dist } -> lower_mv ctx instr.node input ~dim ~dist
  | Tdfg.Bc { input; dim; _ } -> lower_bc ctx instr.node input ~dim
  | Tdfg.Reduce { op; input; dim } -> lower_reduce ctx op input ~dim

let lower_output ctx schedule o =
  match o with
  | Tdfg.Out_tensor { src; array; _ } -> begin
    barrier_if_dirty ctx;
    match resolve_dom ctx src with
    | None -> ()
    | Some dom ->
      ctx.acc.writeback <- ctx.acc.writeback +. float_of_int (Hyperrect.volume dom);
      let src_slot = Schedule.slot_of schedule src in
      let arr_slot = List.assoc_opt array schedule.Schedule.array_slots in
      if src_slot <> arr_slot then begin
        (* copy the result wordlines into the array's persistent slot *)
        let label = "writeback:" ^ array in
        let dtype = dtype ctx in
        let kind = Command.Compute { op = Op.Copy; const_operands = 0 } in
        decomp_iter ctx dom (fun piece ->
            let box = tile_box_of ctx.layout piece in
            emit ctx
              (Command.make kind ~dtype ~tile_box:box
                 ~lanes_per_tile:(lanes_of_box ctx.layout piece box)
                 ~label))
      end
  end
  | Tdfg.Out_stream { src; _ } -> begin
    barrier_if_dirty ctx;
    match resolve_dom ctx src with
    | Some dom -> ctx.acc.s_store <- ctx.acc.s_store +. float_of_int (Hyperrect.volume dom)
    | None -> ()
  end

let lower ?doms cfg g ~schedule ~layout ~env =
  (* [doms]: resolved domains indexed by node id, precomputed by the engine
     (which needs them for the memo-key signature anyway). Without it,
     domains are resolved on demand through [env] — same values, since
     resolution is a pure function of the graph and the environment. *)
  let dom =
    match doms with
    | Some d -> fun id -> Array.unsafe_get d id
    | None -> (
      fun id ->
        match Tdfg.domain g id with
        | Tdfg.Infinite -> None
        | Tdfg.Finite r -> Some (Symrect.resolve r env))
  in
  let ctx =
    {
      cfg;
      g;
      schedule;
      layout;
      dom;
      out = Vec.create ();
      dirty = false;
      acc =
        {
          final_reduce = 0.0;
          s_load = 0.0;
          s_store = 0.0;
          spill = 0.0;
          writeback = 0.0;
          computed = 0.0;
        };
    }
  in
  List.iter (lower_node ctx) schedule.Schedule.order;
  List.iter (lower_output ctx schedule) (Tdfg.outputs g);
  if ctx.dirty then emit ctx Command.sync;
  let cmds = Vec.to_array ctx.out in
  let n = Array.length cmds in
  let jit_cycles =
    float_of_int cfg.Machine_config.jit_base_cycles
    +. (float_of_int n *. float_of_int cfg.Machine_config.jit_cycles_per_command)
  in
  ( cmds,
    {
      commands = n;
      jit_cycles;
      final_reduce_elems = ctx.acc.final_reduce;
      stream_load_elems = ctx.acc.s_load +. ctx.acc.spill;
      stream_store_elems = ctx.acc.s_store +. ctx.acc.spill;
      spill_elems = ctx.acc.spill;
      writeback_elems = ctx.acc.writeback;
      compute_elems = ctx.acc.computed;
      memoized = false;
    } )

(* Memoization *)

type memo = {
  table : (string, Command.t array * stats) Hashtbl.t;
  warm_regions : (string, unit) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let memo_create () =
  { table = Hashtbl.create 64; warm_regions = Hashtbl.create 8; hits = 0; misses = 0 }

let memo_lookup_cycles = 200.0

(* The per-region entry cost (template instantiation, array-dimension
   specialization, §4.2) is paid once; re-lowering the same region with new
   parameters only maps the pre-scheduled tDFG onto the layout. *)
let region_of_key key =
  match String.index_opt key '|' with
  | Some i -> String.sub key 0 i
  | None -> key

(* Cross-run cache of the raw lowering result. [lower] is a pure function
   of the machine config, the scheduled graph and the resolved domains +
   layout — which the memo [key] already encodes relative to a fixed
   (g, cfg) pair, so the cache key adds physical identity of both. The
   per-run memo above still decides hit/miss *charging* (first lookup in a
   run pays full [jit_cycles], later ones [memo_lookup_cycles]) and emits
   the same trace events, so simulated cycles and traces are unchanged:
   only the host-side re-lowering work is skipped when bench loops re-run
   identical combos. Per-domain (DLS) to stay race-free under the batch
   pool; bounded by reset. *)
type global_entry = {
  ge_g : Tdfg.t;
  ge_cfg : Machine_config.t;
  ge_cmds : Command.t array;
  ge_stats : stats;
}

let global_cache : (string, global_entry list) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let global_cache_max = 4096

let lower_cached ?doms ~key cfg g ~schedule ~layout ~env =
  let tbl = Domain.DLS.get global_cache in
  let entries =
    match Hashtbl.find tbl key with l -> l | exception Not_found -> []
  in
  let rec find = function
    | e :: _ when e.ge_g == g && e.ge_cfg == cfg -> Some (e.ge_cmds, e.ge_stats)
    | _ :: tl -> find tl
    | [] -> None
  in
  match find entries with
  | Some r -> r
  | None ->
    let cmds, st = lower ?doms cfg g ~schedule ~layout ~env in
    if Hashtbl.length tbl >= global_cache_max then Hashtbl.reset tbl;
    let entries =
      match Hashtbl.find tbl key with l -> l | exception Not_found -> []
    in
    Hashtbl.replace tbl key
      ({ ge_g = g; ge_cfg = cfg; ge_cmds = cmds; ge_stats = st } :: entries);
    (cmds, st)

let lower_memo ?(trace = Trace.null) ?doms memo ~key cfg g ~schedule ~layout ~env =
  match Hashtbl.find_opt memo.table key with
  | Some (cmds, st) ->
    memo.hits <- memo.hits + 1;
    if Trace.enabled trace then Trace.emit trace (Trace.Memo { key; hit = true });
    (cmds, { st with jit_cycles = memo_lookup_cycles; memoized = true })
  | None ->
    memo.misses <- memo.misses + 1;
    let region = region_of_key key in
    if Trace.enabled trace then begin
      Trace.emit trace (Trace.Memo { key; hit = false });
      Trace.emit trace
        (Trace.Jit_span { dir = Trace.Enter; region; commands = 0; cycles = 0.0 })
    end;
    let cmds, st = lower_cached ?doms ~key cfg g ~schedule ~layout ~env in
    let st =
      if Hashtbl.mem memo.warm_regions region then
        {
          st with
          jit_cycles =
            st.jit_cycles -. float_of_int cfg.Machine_config.jit_base_cycles
            +. memo_lookup_cycles;
        }
      else begin
        Hashtbl.replace memo.warm_regions region ();
        st
      end
    in
    if Trace.enabled trace then
      Trace.emit trace
        (Trace.Jit_span
           {
             dir = Trace.Exit;
             region;
             commands = st.commands;
             cycles = st.jit_cycles;
           });
    Hashtbl.replace memo.table key (cmds, st);
    (cmds, st)

let memo_hits m = m.hits
let memo_misses m = m.misses
