(** Runtime in-/near-memory offload decision (paper §4.3, Eq. 2).

    Offload to in-memory computing when the core's best-case latency at
    peak throughput exceeds the in-memory latency (bit-serial op latencies
    are element-count independent — the computation is fully parallel) plus
    the JIT lowering cost. The compiler ships aggregate hints (op counts per
    kind) so the decision never walks the tDFG at runtime. The heuristic is
    deliberately conservative: it assumes peak core performance. *)

type target = In_memory | Near_memory

type verdict = {
  target : target;
  core_cycles : float;  (** LHS of Eq. 2 *)
  imc_cycles : float;  (** RHS: op latencies + JIT term *)
  reason : string;
}

val target_name : target -> string
(** ["in-memory"] / ["near-memory"] — the names used in trace events. *)

val fault_fallback :
  ?trace:Trace.t -> ?kernel:string -> site:string -> target:string -> unit -> unit
(** Emit an [Offload_decision] trace event recording that the runtime
    re-lowered [kernel] to [target] because faults at [site] exhausted the
    retry budget — fault mitigation rides the same §4.3 machinery as
    ordinary offload verdicts, so it is visible in the same trace stream.
    The faulted target's latency is recorded as infinite. *)

val decide :
  ?trace:Trace.t ->
  ?kernel:string ->
  Machine_config.t ->
  ops:(Op.t * int) list ->
  node_count:int ->
  dtype:Dtype.t ->
  elems:float ->
  flops:float ->
  data_bytes:float ->
  fits:bool ->
  jit_known:bool ->
  verdict
(** [elems] is the data-parallel element count of the region, [flops] the
    total arithmetic work a core-based execution would perform,
    [data_bytes] the working set it would stream through the NoC (the core
    is bounded by whichever is slower at peak), [fits] whether a valid
    transposed layout exists, [jit_known] whether lowered commands are
    already memoized (drops the JIT term). *)
