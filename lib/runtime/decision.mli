(** Runtime in-/near-memory offload decision (paper §4.3, Eq. 2).

    Offload to in-memory computing when the core's best-case latency at
    peak throughput exceeds the in-memory latency (bit-serial op latencies
    are element-count independent — the computation is fully parallel) plus
    the JIT lowering cost. The compiler ships aggregate hints (op counts per
    kind) so the decision never walks the tDFG at runtime. The heuristic is
    deliberately conservative: it assumes peak core performance. *)

type target = In_memory | Near_memory

type verdict = {
  target : target;
  core_cycles : float;  (** LHS of Eq. 2 *)
  imc_cycles : float;  (** RHS: op latencies + JIT term *)
  reason : string;
}

val target_name : target -> string
(** ["in-memory"] / ["near-memory"] — the names used in trace events. *)

type override = Auto | Force_imc | Force_core
(** Per-kernel Eq. 2 override. [Auto] applies the heuristic unchanged.
    [Force_imc] pins the kernel to the in-memory side, [Force_core] to the
    other side of the offload boundary — the core for In-L3, the
    near-memory stream engines for Inf-S (the same side an [Auto]
    [Near_memory] verdict lands on). Overrides only apply when a valid
    transposed layout exists ([fits]); an unmappable region always stays
    near-memory. *)

type policy =
  | Heuristic  (** Eq. 2 as-is for every kernel — the default. *)
  | Tuned of { default : override; per_kernel : (string * override) list }
      (** Tuned-table lookup: [per_kernel] maps kernel names to overrides,
          anything absent falls back to [default]. *)

val override_name : override -> string
(** ["auto"] / ["force-imc"] / ["force-core"]. *)

val override_of_string : string -> (override, string) result
(** Inverse of [override_name]; also accepts ["heuristic"], ["imc"] and
    ["core"] as aliases. *)

val resolve : policy -> kernel:string -> override
(** The override a policy assigns to [kernel]. *)

val fault_fallback :
  ?trace:Trace.t -> ?kernel:string -> site:string -> target:string -> unit -> unit
(** Emit an [Offload_decision] trace event recording that the runtime
    re-lowered [kernel] to [target] because faults at [site] exhausted the
    retry budget — fault mitigation rides the same §4.3 machinery as
    ordinary offload verdicts, so it is visible in the same trace stream.
    The faulted target's latency is recorded as infinite. *)

val decide :
  ?trace:Trace.t ->
  ?kernel:string ->
  ?override:override ->
  Machine_config.t ->
  ops:(Op.t * int) list ->
  node_count:int ->
  dtype:Dtype.t ->
  elems:float ->
  flops:float ->
  data_bytes:float ->
  fits:bool ->
  jit_known:bool ->
  verdict
(** [elems] is the data-parallel element count of the region, [flops] the
    total arithmetic work a core-based execution would perform,
    [data_bytes] the working set it would stream through the NoC (the core
    is bounded by whichever is slower at peak), [fits] whether a valid
    transposed layout exists, [jit_known] whether lowered commands are
    already memoized (drops the JIT term).

    Tie-break: Eq. 2's inequality is strict — when the core latency exactly
    equals the in-memory latency, offloading buys nothing yet still
    occupies compute arrays and a LOT entry, so ties resolve to
    [Near_memory] (with an explicit tie reason in the verdict).

    [override] (default [Auto]) pins the target regardless of the Eq. 2
    comparison; the verdict's [core_cycles]/[imc_cycles] still report the
    computed latencies and the reason records what Eq. 2 would have
    picked. *)
