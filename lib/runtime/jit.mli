(** JIT lowering of a scheduled tDFG into in-memory commands
    (paper §4.2, Algorithms 1–2).

    For each node, the resolved (concrete) domain is decomposed along tile
    boundaries (Algorithm 1, {!Hyperrect.decompose}); [mv] nodes lower into
    intra-/inter-tile shift commands with bitline masks (Algorithm 2),
    compute nodes into per-tile bit-serial ops, [bc] into multicast
    broadcasts and [reduce] into in-tile reduction rounds plus — when the
    tile does not cover the reduced extent — a near-memory final-reduce
    obligation. A [sync] barrier is inserted between any inter-tile data
    movement and its first consumer. Shift commands whose mask does not
    intersect the tensor are filtered out. *)

type stats = {
  commands : int;
  jit_cycles : float;  (** host-side lowering cost (0 when memoized) *)
  final_reduce_elems : float;
      (** cross-tile partials to be reduced by a near-memory stream *)
  stream_load_elems : float;  (** embedded load-stream elements *)
  stream_store_elems : float;  (** embedded store-stream elements *)
  spill_elems : float;
      (** elements moved by register-spill streams (included in the two
          stream counters as a store + reload pair) *)
  writeback_elems : float;
  compute_elems : float;  (** total element-ops executed in-memory *)
  memoized : bool;
}

val lower :
  ?doms:Hyperrect.t option array ->
  Machine_config.t ->
  Tdfg.t ->
  schedule:Schedule.t ->
  layout:Layout.t ->
  env:(string -> int) ->
  Command.t array * stats
(** Lower one region instance. [env] resolves parameters and enclosing
    host-loop variables. [doms], when given, supplies the already-resolved
    domain of every live node indexed by id (the engine computes them once
    per invocation for the memo-key signature); [env] is then unused. *)

(** {1 Memoization (paper §4.2 "Reducing JIT Overheads")} *)

type memo

val memo_create : unit -> memo

val lower_memo :
  ?trace:Trace.t ->
  ?doms:Hyperrect.t option array ->
  memo ->
  key:string ->
  Machine_config.t ->
  Tdfg.t ->
  schedule:Schedule.t ->
  layout:Layout.t ->
  env:(string -> int) ->
  Command.t array * stats
(** Like {!lower} but reuses the command array when the same [key] (region
    name + resolved parameters + layout) was lowered before; memoized hits
    charge only a small lookup cost and set [memoized]. When [trace] is
    enabled, emits a [Memo] event per lookup and an [Enter]/[Exit]
    [Jit_span] pair around each actual lowering. *)

val memo_hits : memo -> int
val memo_misses : memo -> int
