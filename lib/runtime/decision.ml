type target = In_memory | Near_memory

type verdict = {
  target : target;
  core_cycles : float;
  imc_cycles : float;
  reason : string;
}

let target_name = function In_memory -> "in-memory" | Near_memory -> "near-memory"

type override = Auto | Force_imc | Force_core

type policy =
  | Heuristic
  | Tuned of { default : override; per_kernel : (string * override) list }

let override_name = function
  | Auto -> "auto"
  | Force_imc -> "force-imc"
  | Force_core -> "force-core"

let override_of_string = function
  | "auto" | "heuristic" -> Ok Auto
  | "force-imc" | "imc" -> Ok Force_imc
  | "force-core" | "core" -> Ok Force_core
  | s ->
    Error
      (Printf.sprintf "unknown eq2 override %s (auto|force-imc|force-core)" s)

let resolve policy ~kernel =
  match policy with
  | Heuristic -> Auto
  | Tuned { default; per_kernel } -> (
    match List.assoc_opt kernel per_kernel with
    | Some ov -> ov
    | None -> default)

(* Mitigation re-targeting rides the same decision machinery as Eq. 2 so a
   trace shows fault fallbacks next to ordinary offload verdicts. The
   faulted target's latency is recorded as infinite — that is what the
   fault made it. *)
let fault_fallback ?(trace = Trace.null) ?(kernel = "") ~site ~target () =
  if Trace.enabled trace then
    Trace.emit trace
      (Trace.Offload_decision
         {
           kernel;
           target;
           core_cycles = 0.0;
           imc_cycles = infinity;
           reason = Printf.sprintf "fault fallback: %s fault exhausted retries" site;
         })

let decide ?(trace = Trace.null) ?(kernel = "") ?(override = Auto) cfg ~ops
    ~node_count ~dtype ~elems ~flops ~data_bytes ~fits ~jit_known =
  let traced v =
    if Trace.enabled trace then
      Trace.emit trace
        (Trace.Offload_decision
           {
             kernel;
             target = target_name v.target;
             core_cycles = v.core_cycles;
             imc_cycles = v.imc_cycles;
             reason = v.reason;
           });
    v
  in
  if not fits then
    traced
      {
        target = Near_memory;
        core_cycles = 0.0;
        imc_cycles = infinity;
        reason = "no valid transposed layout";
      }
  else begin
    (* LHS: N_elem * N_op / TP_core, with the caller folding N_elem into
       [flops]; a core execution is also bounded by streaming the working
       set through the NoC at bisection bandwidth. *)
    let core =
      Float.max
        (flops /. Machine_config.peak_simd_flops_per_cycle cfg)
        (data_bytes /. (2.0 *. Machine_config.bisection_bytes_per_cycle cfg))
    in
    (* RHS: sum of bit-serial op latencies (waves when the data exceeds the
       bitline capacity) plus the JIT term. *)
    let waves =
      Float.max 1.0 (elems /. float_of_int (Machine_config.total_bitlines cfg))
    in
    let op_lat =
      List.fold_left
        (fun acc (op, n) ->
          acc +. (float_of_int (n * Bitserial.op_cycles op dtype) *. waves))
        0.0 ops
    in
    let jit =
      if jit_known then 0.0
      else
        float_of_int cfg.Machine_config.jit_base_cycles
        +. float_of_int (node_count * cfg.Machine_config.jit_cycles_per_command)
    in
    let imc = op_lat +. jit in
    (* Tie-break: at [core = imc] exactly, offloading buys nothing and
       still occupies compute arrays and a LOT entry, so ties stay
       near-memory — Eq. 2's inequality is strict. *)
    let eq2_target = if core > imc then In_memory else Near_memory in
    match override with
    | Force_imc ->
      traced
        {
          target = In_memory;
          core_cycles = core;
          imc_cycles = imc;
          reason =
            Printf.sprintf "tuned override: force-imc (Eq. 2 picks %s)"
              (target_name eq2_target);
        }
    | Force_core ->
      traced
        {
          target = Near_memory;
          core_cycles = core;
          imc_cycles = imc;
          reason =
            Printf.sprintf "tuned override: force-core (Eq. 2 picks %s)"
              (target_name eq2_target);
        }
    | Auto ->
      if core > imc then
        traced
          {
            target = In_memory;
            core_cycles = core;
            imc_cycles = imc;
            reason = "core latency exceeds in-memory latency (Eq. 2)";
          }
      else if core = imc then
        traced
          {
            target = Near_memory;
            core_cycles = core;
            imc_cycles = imc;
            reason = "tie: core latency equals in-memory latency (ties stay near-memory)";
          }
      else
        traced
          {
            target = Near_memory;
            core_cycles = core;
            imc_cycles = imc;
            reason = "insufficient parallelism to amortize bit-serial latency";
          }
  end
