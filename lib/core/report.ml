type where = On_core | Near_mem | In_mem

type timeline_entry = { kernel : string; where : where; cycles : float }

type jit_summary = {
  invocations : int;
  memo_hits : int;
  total_commands : int;
  total_jit_cycles : float;
  avg_us : float;
}

type fault_summary = {
  spec : string;  (** canonical [Fault.to_string] of the active spec *)
  injected : (string * int) list;  (** per-site injection counts *)
  draws : int;  (** fault-check sites passed (RNG draws) *)
  retries : int;  (** failed attempts retried on the same target *)
  fallbacks : int;  (** regions re-targeted to a slower paradigm *)
  wasted_cycles : float;  (** cycles charged to failed attempts *)
  degraded : bool;  (** at least one fault was injected *)
}

type decision_entry = {
  kernel : string;
  target : string;
  core_cycles : float;
  imc_cycles : float;
  reason : string;
  verdicts : (string * int) list;
}

type t = {
  workload : string;
  paradigm : string;
  cycles : float;
  breakdown : Breakdown.t;
  noc_bytes : (string * float) list;
  noc_byte_hops : (string * float) list;
  local_bytes : (string * float) list;
  noc_utilization : float;
  energy : float;
  energy_breakdown : (string * float) list;
  jit : jit_summary;
  timeline : timeline_entry list;
  in_mem_op_fraction : float;
  correctness : [ `Checked of float | `Skipped ];
  decisions : decision_entry list;
  faults : fault_summary option;
      (** [None] when fault injection is disabled (the default); the
          report then serializes byte-identically to a faultless build *)
}

let speedup ~baseline t = if t.cycles <= 0.0 then 0.0 else baseline.cycles /. t.cycles

let energy_efficiency ~baseline t =
  if t.energy <= 0.0 then 0.0 else baseline.energy /. t.energy

let where_to_string = function
  | On_core -> "in-core"
  | Near_mem -> "near-L3"
  | In_mem -> "in-L3"

(* One self-contained JSON object per report — the `infs_run batch` output
   line. Field order is fixed and every quantity is simulated (cycles,
   bytes, energy), never wall-clock, so lines are byte-identical across
   sequential and parallel batch runs. *)
let to_json ?(meta = []) t =
  let num_assoc kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) kvs) in
  Json.Obj
    ([
      ("workload", Json.Str t.workload);
      ("paradigm", Json.Str t.paradigm);
      ("cycles", Json.Num t.cycles);
      ("breakdown", num_assoc (Breakdown.to_assoc t.breakdown));
      ("noc_bytes", num_assoc t.noc_bytes);
      ("noc_byte_hops", num_assoc t.noc_byte_hops);
      ("local_bytes", num_assoc t.local_bytes);
      ("noc_utilization", Json.Num t.noc_utilization);
      ("energy", Json.Num t.energy);
      ("energy_breakdown", num_assoc t.energy_breakdown);
      ( "jit",
        Json.Obj
          [
            ("invocations", Json.Num (float_of_int t.jit.invocations));
            ("memo_hits", Json.Num (float_of_int t.jit.memo_hits));
            ("total_commands", Json.Num (float_of_int t.jit.total_commands));
            ("total_jit_cycles", Json.Num t.jit.total_jit_cycles);
            ("avg_us", Json.Num t.jit.avg_us);
          ] );
      ( "timeline",
        Json.Arr
          (List.map
             (fun (e : timeline_entry) ->
               Json.Obj
                 [
                   ("kernel", Json.Str e.kernel);
                   ("where", Json.Str (where_to_string e.where));
                   ("cycles", Json.Num e.cycles);
                 ])
             t.timeline) );
      ("in_mem_op_fraction", Json.Num t.in_mem_op_fraction);
      ( "max_err",
        match t.correctness with
        | `Checked err -> Json.Num err
        | `Skipped -> Json.Null );
    ]
    @
    (* appended only when the decision machinery ran, so paradigms that
       never consult Eq. 2 keep their exact pre-existing byte layout *)
    (match t.decisions with
    | [] -> []
    | ds ->
      [
        ( "decisions",
          Json.Arr
            (List.map
               (fun (d : decision_entry) ->
                 Json.Obj
                   [
                     ("kernel", Json.Str d.kernel);
                     ("target", Json.Str d.target);
                     ("core_cycles", Json.Num d.core_cycles);
                     ("imc_cycles", Json.Num d.imc_cycles);
                     ("reason", Json.Str d.reason);
                     ( "verdicts",
                       Json.Obj
                         (List.map
                            (fun (tgt, n) -> (tgt, Json.Num (float_of_int n)))
                            d.verdicts) );
                   ])
               ds) );
      ])
    @
    (* appended only when fault injection was armed, so default reports
       keep their exact pre-fault byte layout *)
    (match t.faults with
    | None -> []
    | Some f ->
      [
        ( "faults",
          Json.Obj
            [
              ("spec", Json.Str f.spec);
              ( "injected",
                Json.Obj
                  (List.map
                     (fun (site, n) -> (site, Json.Num (float_of_int n)))
                     f.injected) );
              ("draws", Json.Num (float_of_int f.draws));
              ("retries", Json.Num (float_of_int f.retries));
              ("fallbacks", Json.Num (float_of_int f.fallbacks));
              ("wasted_cycles", Json.Num f.wasted_cycles);
              ("degraded", Json.Bool f.degraded);
            ] );
      ])
    @
    (* appended only when the caller supplies provenance (e.g. a commit
       hash), so default reports keep their exact byte layout *)
    match meta with
    | [] -> []
    | kvs ->
      [ ("meta", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) kvs)) ])

let pp ppf t =
  Format.fprintf ppf "@[<v>%s [%s]: %.3e cycles, %.3e energy@," t.workload
    t.paradigm t.cycles t.energy;
  Format.fprintf ppf "  %a@," Breakdown.pp t.breakdown;
  Format.fprintf ppf "  noc-util=%.4f in-mem-ops=%.1f%%@," t.noc_utilization
    (100.0 *. t.in_mem_op_fraction);
  (match t.correctness with
  | `Checked err -> Format.fprintf ppf "  checked: max-err=%.2e@," err
  | `Skipped -> ());
  (match t.faults with
  | None -> ()
  | Some f ->
    Format.fprintf ppf
      "  faults[%s]: injected=%s retries=%d fallbacks=%d wasted=%.3e%s@,"
      f.spec
      (String.concat ","
         (List.map (fun (s, n) -> Printf.sprintf "%s:%d" s n) f.injected))
      f.retries f.fallbacks f.wasted_cycles
      (if f.degraded then " DEGRADED" else ""));
  Format.fprintf ppf "@]"

(* The [--explain-decisions] table: one row per kernel with the Eq. 2
   latencies, chosen target and reason — everything a [--trace]
   round-trip through [Offload_decision] events would show, inline. *)
let pp_decisions ppf t =
  match t.decisions with
  | [] ->
    Format.fprintf ppf
      "no offload decisions: paradigm %s never consults Eq. 2@." t.paradigm
  | ds ->
    let kw =
      List.fold_left (fun acc d -> max acc (String.length d.kernel)) 6 ds
    in
    let tw =
      List.fold_left (fun acc d -> max acc (String.length d.target)) 6 ds
    in
    Format.fprintf ppf "%-*s  %12s  %12s  %-*s  %s@." kw "kernel" "core-cyc"
      "imc-cyc" tw "target" "reason";
    List.iter
      (fun d ->
        let calls =
          match d.verdicts with
          | [ (_, 1) ] -> ""
          | vs ->
            Printf.sprintf " [%s]"
              (String.concat ","
                 (List.map (fun (tgt, n) -> Printf.sprintf "%s:%d" tgt n) vs))
        in
        Format.fprintf ppf "%-*s  %12.4e  %12.4e  %-*s  %s%s@." kw d.kernel
          d.core_cycles d.imc_cycles tw d.target d.reason calls)
      ds
