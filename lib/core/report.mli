(** Result of simulating one workload under one paradigm. *)

type where = On_core | Near_mem | In_mem

type timeline_entry = {
  kernel : string;
  where : where;
  cycles : float;
}

type jit_summary = {
  invocations : int;
  memo_hits : int;
  total_commands : int;
  total_jit_cycles : float;
  avg_us : float;  (** mean JIT time per non-memoized lowering *)
}

type fault_summary = {
  spec : string;  (** canonical spec string of the active fault model *)
  injected : (string * int) list;  (** per-site injection counts, fixed order *)
  draws : int;  (** fault-check sites passed through (RNG draws) *)
  retries : int;  (** failed attempts retried on the same target *)
  fallbacks : int;  (** regions re-targeted to a slower paradigm *)
  wasted_cycles : float;  (** cycles charged to failed attempts *)
  degraded : bool;  (** at least one fault was injected; the run still
                        completed with a correct functional result via
                        retry / paradigm fallback *)
}

type decision_entry = {
  kernel : string;
  target : string;  (** chosen target of the first invocation *)
  core_cycles : float;  (** Eq. 2 LHS of the first invocation *)
  imc_cycles : float;  (** Eq. 2 RHS of the first invocation *)
  reason : string;
  verdicts : (string * int) list;
      (** per-target invocation counts, sorted by target name — a kernel
          re-invoked under fault fallback can land on several targets *)
}

type t = {
  workload : string;
  paradigm : string;
  cycles : float;
  breakdown : Breakdown.t;
  noc_bytes : (string * float) list;  (** per category *)
  noc_byte_hops : (string * float) list;
  local_bytes : (string * float) list;  (** intra-tile / htree *)
  noc_utilization : float;
  energy : float;
  energy_breakdown : (string * float) list;
  jit : jit_summary;
  timeline : timeline_entry list;  (** per-kernel, aggregated, in order *)
  in_mem_op_fraction : float;  (** Fig. 14's dots *)
  correctness : [ `Checked of float | `Skipped ];
      (** max abs error vs the golden model when run functionally *)
  decisions : decision_entry list;
      (** per-kernel §4.3 verdicts in first-seen order; empty for
          paradigms that never consult the decision machinery, and
          omitted from [to_json] when empty so pre-existing report
          bytes are unchanged *)
  faults : fault_summary option;
      (** [None] unless fault injection was armed; [to_json]/[pp] output
          is byte-identical to the pre-fault format when [None] *)
}

val speedup : baseline:t -> t -> float

val to_json : ?meta:(string * string) list -> t -> Json.t
(** The report as one self-contained JSON object (the [infs_run batch]
    report line). Deterministic: fixed field order, canonical float
    formatting, simulated quantities only — no wall-clock values — so
    parallel batch output is byte-identical to sequential.

    [meta] (default empty) appends a trailing provenance object of string
    fields, e.g. [("commit", "abc123")] from [--meta-commit]. It is the
    caller's — never the library's — job to source these values, and the
    CLI never reads the clock for them in tests; with [meta = []] the
    output is byte-identical to before the parameter existed. *)

val energy_efficiency : baseline:t -> t -> float
val where_to_string : where -> string
val pp : Format.formatter -> t -> unit

val pp_decisions : Format.formatter -> t -> unit
(** Compact per-kernel Eq. 2 verdict table (the [--explain-decisions]
    output): kernel, core cycles, in-memory cycles, chosen target,
    reason. Prints a placeholder line when [decisions] is empty. *)
