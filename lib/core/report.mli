(** Result of simulating one workload under one paradigm. *)

type where = On_core | Near_mem | In_mem

type timeline_entry = {
  kernel : string;
  where : where;
  cycles : float;
}

type jit_summary = {
  invocations : int;
  memo_hits : int;
  total_commands : int;
  total_jit_cycles : float;
  avg_us : float;  (** mean JIT time per non-memoized lowering *)
}

type t = {
  workload : string;
  paradigm : string;
  cycles : float;
  breakdown : Breakdown.t;
  noc_bytes : (string * float) list;  (** per category *)
  noc_byte_hops : (string * float) list;
  local_bytes : (string * float) list;  (** intra-tile / htree *)
  noc_utilization : float;
  energy : float;
  energy_breakdown : (string * float) list;
  jit : jit_summary;
  timeline : timeline_entry list;  (** per-kernel, aggregated, in order *)
  in_mem_op_fraction : float;  (** Fig. 14's dots *)
  correctness : [ `Checked of float | `Skipped ];
      (** max abs error vs the golden model when run functionally *)
}

val speedup : baseline:t -> t -> float

val to_json : t -> Json.t
(** The report as one self-contained JSON object (the [infs_run batch]
    report line). Deterministic: fixed field order, canonical float
    formatting, simulated quantities only — no wall-clock values — so
    parallel batch output is byte-identical to sequential. *)

val energy_efficiency : baseline:t -> t -> float
val where_to_string : where -> string
val pp : Format.formatter -> t -> unit
