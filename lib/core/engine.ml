type paradigm = Base_1 | Base | Near_l3 | In_l3 | Inf_s | Inf_s_nojit

let paradigm_to_string = function
  | Base_1 -> "Base-Thread-1"
  | Base -> "Base"
  | Near_l3 -> "Near-L3"
  | In_l3 -> "In-L3"
  | Inf_s -> "Inf-S"
  | Inf_s_nojit -> "Inf-S-noJIT"

let all_paradigms = [ Base_1; Base; Near_l3; In_l3; Inf_s; Inf_s_nojit ]

type options = {
  cfg : Machine_config.t;
  functional : bool;
  optimize : bool;
  tile_override : int array option;
  charge_jit : bool;
  warm_data : bool;
  pre_transposed : bool;
  trace : Trace.t;
  metrics : Metrics.t;
  prof : Prof.t;
  share_compile : bool;
  faults : Fault.spec;
  decision_policy : Decision.policy;
}

let default_options =
  {
    cfg = Machine_config.default;
    functional = false;
    optimize = true;
    tile_override = None;
    charge_jit = true;
    warm_data = false;
    pre_transposed = false;
    trace = Trace.null;
    metrics = Metrics.null;
    prof = Prof.null;
    share_compile = false;
    faults = Fault.none;
    decision_policy = Decision.Heuristic;
  }

(* ---- process-wide compile cache (batch / bench paths) ----

   Compilation (frontend extraction, e-graph optimization, scheduling) is a
   pure function of the program text and the optimizer flag, so its result
   can be shared across jobs and across domains. The cache is
   content-addressed: the key digests the printed program, the machine
   configuration and the optimizer flag. Cached fat binaries are treated as
   immutable after construction — the engine only reads them — which is
   what makes cross-domain sharing safe. Off by default ([share_compile]):
   single runs and golden traces behave exactly as before. *)

let compile_cache : (Fat_binary.t, string) result Ccache.t = Ccache.create ()

(* The digest is a pure function of the printed program, the machine config
   and the optimizer flag, but pretty-printing a large AST costs tens of
   microseconds — comparable to the whole per-run dispatch floor. Bench
   loops re-run the same [Workload.t] values, so a small per-domain cache
   keyed on physical identity of (prog, cfg) recovers the digest without
   reprinting. Same inputs produce the same hex, so behaviour is
   unchanged. *)
let compile_key_cache :
    (Ast.program * Machine_config.t * bool * string) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let compile_key_uncached (options : options) (w : Workload.t) =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            Format.asprintf "%a" Ast.pp_program w.prog;
            Marshal.to_string options.cfg [];
            string_of_bool options.optimize;
          ]))

let compile_key (options : options) (w : Workload.t) =
  let cache = Domain.DLS.get compile_key_cache in
  let rec find = function
    | (p, c, o, d) :: _
      when p == w.prog && c == options.cfg && o = options.optimize ->
      Some d
    | _ :: tl -> find tl
    | [] -> None
  in
  match find !cache with
  | Some d -> d
  | None ->
    let d = compile_key_uncached options w in
    let prev = !cache in
    let prev = if List.length prev >= 64 then List.filteri (fun i _ -> i < 63) prev else prev in
    cache := (w.prog, options.cfg, options.optimize, d) :: prev;
    d

let compile (options : options) (w : Workload.t) =
  if not options.share_compile then
    Fat_binary.compile ~optimize:options.optimize w.prog
  else begin
    let key = compile_key options w in
    let fb, hit =
      Ccache.find_or_compute compile_cache ~key (fun () ->
          Fat_binary.compile ~optimize:options.optimize w.prog)
    in
    if Trace.enabled options.trace then
      Trace.emit options.trace
        (Trace.Counter
           {
             name = (if hit then "compile_cache.hits" else "compile_cache.misses");
             value = 1.0;
           });
    if Metrics.enabled options.metrics then
      Metrics.incr options.metrics
        (if hit then "compile_cache.hits" else "compile_cache.misses")
        1.0;
    fb
  end

let compile_cache_stats () =
  (Ccache.hits compile_cache, Ccache.misses compile_cache, Ccache.length compile_cache)

let compile_cache_clear () = Ccache.reset compile_cache

(* Forcing a [Lazy.t] concurrently from two domains is a race in OCaml 5
   (the loser can observe [Lazy.Undefined]); workload inputs are shared
   lazies, so all forcing funnels through one mutex. Reads of an
   already-forced lazy are safe without it. *)
let inputs_lock = Mutex.create ()

let force_inputs (w : Workload.t) =
  Mutex.protect inputs_lock (fun () -> Lazy.force w.inputs)

(* L3 residency tracking across program regions: which arrays currently
   live in the shared cache, and in which layout. Implements the "delayed
   release of transposed data" policy at region granularity (§5.2). *)
module Residency = struct
  type form = Normal | Transposed

  type t = {
    cfg : Machine_config.t;
    tbl : (string, form * float) Hashtbl.t; (* name -> form, bytes *)
    mutable order : string list; (* FIFO for eviction *)
    mutable resident_bytes : float;
    (* count of Transposed entries, maintained incrementally: every
       in-memory touch consults it, and folding the table per touch showed
       up in the dispatch profile *)
    mutable transposed : int;
  }

  let create cfg =
    {
      cfg;
      tbl = Hashtbl.create 8;
      order = [];
      resident_bytes = 0.0;
      transposed = 0;
    }

  let capacity t =
    float_of_int
      (t.cfg.Machine_config.l3_banks * t.cfg.l3_ways * t.cfg.arrays_per_way
      * t.cfg.sram_wordlines * t.cfg.sram_bitlines / 8)

  (* The layout override table holds a fixed number of transposed regions
     (16 in Table 2); exceeding it releases the oldest transposed array
     back to normal layout (§5.2's delayed release / LOT capacity). *)
  let evict_transposed_if_full t =
    while t.transposed >= t.cfg.Machine_config.lot_regions do
      let victim =
        List.find_opt
          (fun name ->
            match Hashtbl.find_opt t.tbl name with
            | Some (Transposed, _) -> true
            | _ -> false)
          t.order
      in
      match victim with
      | Some name ->
        let _, b = Hashtbl.find t.tbl name in
        Hashtbl.replace t.tbl name (Normal, b);
        t.transposed <- t.transposed - 1
      | None -> raise Exit
    done

  let evict_transposed_if_full t =
    try evict_transposed_if_full t with Exit -> ()

  let evict_until t needed =
    while
      t.resident_bytes +. needed > capacity t
      &&
      match t.order with
      | [] -> false
      | victim :: rest ->
        (match Hashtbl.find_opt t.tbl victim with
        | Some (f, b) ->
          Hashtbl.remove t.tbl victim;
          t.resident_bytes <- t.resident_bytes -. b;
          if f = Transposed then t.transposed <- t.transposed - 1
        | None -> ());
        t.order <- rest;
        true
    do
      ()
    done

  (* Returns the DRAM bytes that must be fetched and whether an on-chip
     layout conversion (transpose) is needed. *)
  let touch t name ~bytes ~form =
    (if form = Transposed then
       match Hashtbl.find_opt t.tbl name with
       | Some (Transposed, _) -> () (* re-touch: no new LOT entry *)
       | _ -> evict_transposed_if_full t);
    match Hashtbl.find_opt t.tbl name with
    | Some (f, _) when f = form -> (0.0, false)
    | Some (_, _) ->
      (* resident but in the other layout: convert in place *)
      Hashtbl.replace t.tbl name (form, bytes);
      t.transposed <-
        (t.transposed + if form = Transposed then 1 else -1);
      (0.0, true)
    | None ->
      evict_until t bytes;
      Hashtbl.replace t.tbl name (form, bytes);
      t.order <- t.order @ [ name ];
      t.resident_bytes <- t.resident_bytes +. bytes;
      if form = Transposed then t.transposed <- t.transposed + 1;
      (bytes, form = Transposed)

  (* Core and near-memory accesses work on resident data in either layout:
     the coherence integration lets streams read/write transposed lines
     directly (paper §5.3), so no conversion is charged. *)
  let touch_any t name ~bytes =
    match Hashtbl.find_opt t.tbl name with
    | Some _ -> 0.0
    | None -> fst (touch t name ~bytes ~form:Normal)
end

(* Per-kernel §4.3 verdict aggregation for the report's [decisions] table:
   the first invocation's latencies/reason plus per-target invocation
   counts (a kernel can land on different sides across host-loop
   iterations or fault retries). *)
type decision_acc = {
  d_target : string;
  d_core : float;
  d_imc : float;
  d_reason : string;
  mutable d_counts : (string * int) list;
}

type state = {
  opts : options;
  paradigm : paradigm;
  fb : Fat_binary.t;
  env : Interp.env;
  traffic : Traffic.t;
  faults : Fault.injector option;
  mutable fault_retries : int;
  mutable fault_fallbacks : int;
  mutable fault_wasted : float;
  bd : Breakdown.t;
  events : Energy.events;
  memo : Jit.memo;
  layouts : (string, (Layout.t, string) result) Hashtbl.t;
  (* dispatch fast-path caches, all keyed by kernel name: the region's
     live-node ids (the graph is frozen after compile) and the rendered
     layout half of the JIT memo key *)
  lives : (string, Tdfg.id array) Hashtbl.t;
  layout_strs : (string, string) Hashtbl.t;
  residency : Residency.t;
  timeline : (string, (Report.where * float) list) Hashtbl.t;
  mutable timeline_order : string list;
  mutable in_mem_elems : float;
  mutable other_elems : float;
  mutable jit_invocations : int;
  mutable jit_cycles_total : float;
  mutable jit_commands : int;
  mutable jit_nonmemo : int;
  seen_kernels : (string, unit) Hashtbl.t;
  decisions : (string, decision_acc) Hashtbl.t;
  mutable decisions_order : string list;
}

let cfgv st = st.opts.cfg
let tracev st = st.opts.trace
let metricsv st = st.opts.metrics
let profv st = st.opts.prof

(* Every Breakdown charge goes through here so the trace's per-category
   cycle counters and the metric registry's [cycles{cat}] histograms
   accumulate the identical floats in the identical order — that is what
   lets the trace and metrics tests reconcile against the Report with 0.0
   tolerance. *)
let charge st cat v =
  let bd = st.bd in
  let name =
    match cat with
    | `Dram ->
      bd.Breakdown.dram <- bd.Breakdown.dram +. v;
      "dram"
    | `Jit ->
      bd.Breakdown.jit <- bd.Breakdown.jit +. v;
      "jit"
    | `Move ->
      bd.Breakdown.move <- bd.Breakdown.move +. v;
      "move"
    | `Compute ->
      bd.Breakdown.compute <- bd.Breakdown.compute +. v;
      "compute"
    | `Final_reduce ->
      bd.Breakdown.final_reduce <- bd.Breakdown.final_reduce +. v;
      "final_reduce"
    | `Mix ->
      bd.Breakdown.mix <- bd.Breakdown.mix +. v;
      "mix"
    | `Near_mem ->
      bd.Breakdown.near_mem <- bd.Breakdown.near_mem +. v;
      "near_mem"
    | `Core ->
      bd.Breakdown.core <- bd.Breakdown.core +. v;
      "core"
  in
  Trace.add_cycles (tracev st) name v;
  if Metrics.enabled (metricsv st) then
    Metrics.Sim.cycles (metricsv st) ~cat:name v

(* Per kernel, cycles are accumulated per execution target; the report
   shows the dominant target (a region can change sides across host-loop
   iterations, e.g. gauss's shrinking trailing matrix). *)
let note_timeline st kname where cycles =
  if Trace.enabled (tracev st) then
    Trace.emit (tracev st)
      (Trace.Region_exec
         { kernel = kname; where = Report.where_to_string where; cycles });
  if Metrics.enabled (metricsv st) then
    Metrics.Sim.region_exec (metricsv st) ~kernel:kname
      ~where:(Report.where_to_string where) ~cycles;
  if not (Hashtbl.mem st.timeline kname) then
    st.timeline_order <- st.timeline_order @ [ kname ];
  let prev = Option.value ~default:[] (Hashtbl.find_opt st.timeline kname) in
  let prev =
    if List.mem_assoc where prev then
      List.map
        (fun (w, c) -> if w = where then (w, c +. cycles) else (w, c))
        prev
    else (where, cycles) :: prev
  in
  Hashtbl.replace st.timeline kname prev

let note_decision_raw st kname ~target ~core_cycles ~imc_cycles ~reason =
  match Hashtbl.find_opt st.decisions kname with
  | Some acc ->
    acc.d_counts <-
      (if List.mem_assoc target acc.d_counts then
         List.map
           (fun (t, n) -> if t = target then (t, n + 1) else (t, n))
           acc.d_counts
       else
         List.sort
           (fun (a, _) (b, _) -> compare a b)
           ((target, 1) :: acc.d_counts))
  | None ->
    st.decisions_order <- st.decisions_order @ [ kname ];
    Hashtbl.replace st.decisions kname
      {
        d_target = target;
        d_core = core_cycles;
        d_imc = imc_cycles;
        d_reason = reason;
        d_counts = [ (target, 1) ];
      }

let note_decision st kname (v : Decision.verdict) =
  note_decision_raw st kname
    ~target:(Decision.target_name v.Decision.target)
    ~core_cycles:v.Decision.core_cycles ~imc_cycles:v.Decision.imc_cycles
    ~reason:v.Decision.reason

let concrete_arrays st =
  List.map
    (fun (a : Ast.array_decl) ->
      (a.aname, Interp.array_dims st.env a.aname))
    st.fb.Fat_binary.prog.Ast.arrays

let array_bytes st name =
  let dims = Interp.array_dims st.env name in
  float_of_int (List.fold_left ( * ) 1 dims * 4)

(* ---- cross-run invocation cache ----

   The concrete workset of an invocation, the resolved live-node domains,
   and the domain part of the JIT memo key are pure functions of (region,
   values of the integer variables they read). Bench loops re-execute
   identical invocations thousands of times, and host loops (e.g. gauss's
   64 eliminations) revisit the same variable values run after run — so
   each region carries a table keyed on the evaluated variable vector, and
   a repeat dispatch reduces to evaluating a handful of integers plus one
   lookup. The variable sets are derived from the same symbolic bounds the
   direct path would evaluate, so a hit returns exactly what recomputation
   would. Per-domain (DLS) for race freedom under the batch pool; bounded
   by reset. *)

module Svars = Set.Make (String)

type inv_entry = {
  ie_region : Fat_binary.region; (* physical identity is the cache key *)
  mutable ie_ws_vars : string array option;
  ie_ws : (int array, Workset.t) Hashtbl.t;
  mutable ie_dom_vars : string array option;
  ie_doms : (int array, Hyperrect.t option array * string) Hashtbl.t;
  ie_lays : (int array, (Layout.t, string) result) Hashtbl.t;
}

let inv_cache : inv_entry list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let inv_cache_max_regions = 256
let inv_cache_max_entries = 4096

let inv_entry_of (region : Fat_binary.region) =
  let slot = Domain.DLS.get inv_cache in
  let rec find = function
    | e :: _ when e.ie_region == region -> Some e
    | _ :: tl -> find tl
    | [] -> None
  in
  match find !slot with
  | Some e -> e
  | None ->
    let e =
      {
        ie_region = region;
        ie_ws_vars = None;
        ie_ws = Hashtbl.create 32;
        ie_dom_vars = None;
        ie_doms = Hashtbl.create 32;
        ie_lays = Hashtbl.create 8;
      }
    in
    let prev = if List.length !slot >= inv_cache_max_regions then [] else !slot in
    slot := e :: prev;
    e

let add_aff_vars acc a =
  List.fold_left (fun acc v -> Svars.add v acc) acc (Symaff.vars a)

(* Variables the workset resolution reads: host-loop bounds, symbolic
   distinct extents, and — for streams whose footprint falls back to the
   whole array — the array declaration's dimension expressions. *)
let ws_vars_of st (region : Fat_binary.region) =
  let info = region.info in
  let acc =
    List.fold_left
      (fun acc (lo, hi) -> add_aff_vars (add_aff_vars acc lo) hi)
      Svars.empty info.Kernel_info.loops
  in
  let acc =
    List.fold_left
      (fun acc (s : Kernel_info.stream) ->
        match s.distinct with
        | Some extents -> List.fold_left add_aff_vars acc extents
        | None -> (
          match
            List.find_opt
              (fun (a : Ast.array_decl) -> a.aname = s.array)
              st.fb.Fat_binary.prog.Ast.arrays
          with
          | Some decl -> List.fold_left add_aff_vars acc decl.dims
          | None -> acc))
      acc info.Kernel_info.streams
  in
  Array.of_list (Svars.elements acc)

let eval_vars st (vars : string array) =
  Array.map (fun v -> Interp.lookup_int st.env v) vars

let workset_of st (region : Fat_binary.region) =
  let e = inv_entry_of region in
  let vars =
    match e.ie_ws_vars with
    | Some v -> v
    | None ->
      let v = ws_vars_of st region in
      e.ie_ws_vars <- Some v;
      v
  in
  let vals = eval_vars st vars in
  match Hashtbl.find_opt e.ie_ws vals with
  | Some w -> w
  | None ->
    let w =
      Workset.resolve region.info ~env:(Interp.lookup_int st.env)
        ~arrays:(concrete_arrays st)
    in
    if Hashtbl.length e.ie_ws >= inv_cache_max_entries then Hashtbl.reset e.ie_ws;
    Hashtbl.replace e.ie_ws vals w;
    w

(* ----- core / near-memory execution of one kernel invocation ----- *)

(* The three execution paths each wrap their body in a profiler span
   ("core" / "near" / "imc"). Every invocation calls [note_timeline]
   exactly once, so each span's call count equals the trace's
   [Region_exec] event count (and the metrics [regions.<where>] counter)
   for its target — the reconciliation the profiler tests pin. *)

(* [w] is the invocation's resolved workset, computed once per [on_kernel]
   dispatch and shared by every execution path (the resolution is a pure
   function of the region and the parameter environment, which does not
   change within an invocation). *)
let run_core_body st ~threads ~(w : Workset.t) (region : Fat_binary.region) =
  let cold =
    Array.fold_left
      (fun acc (s : Workset.stream) ->
        let bytes = Float.min s.distinct_bytes (array_bytes st s.array) in
        acc +. Residency.touch_any st.residency s.array ~bytes)
      0.0 w.streams
  in
  let first_invocation =
    not (Hashtbl.mem st.seen_kernels region.kernel.Ast.kname)
  in
  Hashtbl.replace st.seen_kernels region.kernel.Ast.kname ();
  let r =
    Corem.run (cfgv st) st.traffic w ~threads ~cold_bytes:cold ~first_invocation
  in
  if cold > 0.0 && Trace.enabled (tracev st) then
    Trace.emit (tracev st)
      (Trace.Dram_burst { bytes = cold; cycles = r.Corem.dram_cycles });
  if cold > 0.0 && Metrics.enabled (metricsv st) then
    Metrics.Sim.dram_burst (metricsv st)
      ~channels:(cfgv st).Machine_config.mem_ctrls ~bytes:cold
      ~cycles:r.Corem.dram_cycles;
  charge st `Core (r.Corem.cycles -. r.dram_cycles);
  charge st `Dram r.dram_cycles;
  st.events.Energy.core_flops <- st.events.Energy.core_flops +. w.flops;
  st.events.Energy.dram_bytes <- st.events.Energy.dram_bytes +. cold;
  st.events.Energy.l3_bytes <- st.events.Energy.l3_bytes +. Workset.touched_bytes w;
  st.other_elems <- st.other_elems +. w.flops;
  note_timeline st region.kernel.Ast.kname Report.On_core r.Corem.cycles;
  if st.opts.functional then Interp.exec_kernel st.env region.kernel

let run_core st ~threads ~w region =
  Prof.span (profv st) "core" (fun () -> run_core_body st ~threads ~w region)

(* Returns [false] when the watchdog detected a hung stream engine: the
   attempt's cycles were charged (and are wasted), and the kernel's
   functional effect has NOT been applied — the caller must retry or fall
   back so it is applied exactly once. *)
let run_near_body st ~(w : Workset.t) (region : Fat_binary.region) =
  let cold =
    Array.fold_left
      (fun acc (s : Workset.stream) ->
        let bytes = Float.min s.distinct_bytes (array_bytes st s.array) in
        acc +. Residency.touch_any st.residency s.array ~bytes)
      0.0 w.streams
  in
  let r = Near.run (cfgv st) st.traffic w ~cold_bytes:cold in
  charge st `Near_mem (r.Near.cycles -. r.dram_cycles);
  charge st `Dram r.dram_cycles;
  st.events.Energy.sel3_flops <- st.events.Energy.sel3_flops +. w.flops;
  st.events.Energy.dram_bytes <- st.events.Energy.dram_bytes +. cold;
  st.events.Energy.l3_bytes <- st.events.Energy.l3_bytes +. Workset.touched_bytes w;
  st.other_elems <- st.other_elems +. w.flops;
  note_timeline st region.kernel.Ast.kname Report.Near_mem r.Near.cycles;
  if r.Near.watchdog then false
  else begin
    if st.opts.functional then Interp.exec_kernel st.env region.kernel;
    true
  end

let run_near st ~w region =
  Prof.span (profv st) "near" (fun () -> run_near_body st ~w region)

(* ----- in-memory execution ----- *)

(* Lattice shape the layout must tile. Arrays are anchored at the origin;
   the compute region's extent per dimension is the larger of the output
   arrays' extents (via their axis maps) and the bounding box of the
   computed (non-source-view) node domains. Source tensor views are
   excluded: a fixed-coordinate view (e.g. a weight row at a large
   flattened index) is broadcast into the compute region and its own
   lattice position is immaterial. Oversized regions execute in waves. *)
let region_shape st (region : Fat_binary.region) =
  let g = region.optimized in
  let n = Tdfg.lattice_dims g in
  let shape = Array.make n 1 in
  let consider_axes array axes =
    let dims = Interp.array_dims st.env array in
    List.iteri
      (fun j d -> shape.(d) <- max shape.(d) (List.nth dims j))
      axes
  in
  List.iter
    (fun id ->
      match Tdfg.kind g id with
      | Tdfg.Tensor _ | Tdfg.Const _ -> ()
      | Tdfg.Stream_load _ | Tdfg.Cmp _ | Tdfg.Mv _ | Tdfg.Bc _ | Tdfg.Shrink _
      | Tdfg.Reduce _ -> begin
        match Tdfg.domain g id with
        | Tdfg.Finite r ->
          let rect = Symrect.resolve r (Interp.lookup_int st.env) in
          for d = 0 to n - 1 do
            shape.(d) <- max shape.(d) (Hyperrect.hi rect d)
          done
        | Tdfg.Infinite -> ()
      end)
    (Tdfg.live_nodes g);
  List.iter
    (function
      | Tdfg.Out_tensor { array; axes; _ } -> consider_axes array axes
      | Tdfg.Out_stream _ -> ())
    (Tdfg.outputs g);
  shape

(* Live-node ids of a region, computed once per kernel per run (the
   optimized graph never changes after compile). *)
let lives_of st (region : Fat_binary.region) =
  let k = region.kernel.Ast.kname in
  match Hashtbl.find_opt st.lives k with
  | Some a -> a
  | None ->
    let a = Array.of_list (Tdfg.live_nodes region.optimized) in
    Hashtbl.replace st.lives k a;
    a

(* Variables a live finite-node domain reads — the inputs of both the
   domain-resolution sweep ([doms_of]) and the lattice shape the layout
   tiles ([region_shape] resolves a subset of the same domains). *)
let dom_vars_of (region : Fat_binary.region) (live : Tdfg.id array) =
  let g = region.optimized in
  let acc =
    Array.fold_left
      (fun acc id ->
        match Tdfg.domain g id with
        | Tdfg.Finite r ->
          List.fold_left
            (fun acc (lo, hi) -> add_aff_vars (add_aff_vars acc lo) hi)
            acc (Symrect.ranges r)
        | Tdfg.Infinite -> acc)
      Svars.empty live
  in
  Array.of_list (Svars.elements acc)

let dom_vars_cached (region : Fat_binary.region) (live : Tdfg.id array) e =
  match e.ie_dom_vars with
  | Some v -> v
  | None ->
    let v = dom_vars_of region live in
    e.ie_dom_vars <- Some v;
    v

(* The concrete inputs of [region_shape] + [Layout.choose] for a given
   region: values of the variables its domains read, the resolved
   out-tensor dims, and the tile override. cfg, hints, and dtype are
   fixed per region (the compile cache keys fat binaries on the config),
   so equal keys imply an identical layout choice. *)
let lay_key st (region : Fat_binary.region) (live : Tdfg.id array) e =
  let vals = eval_vars st (dom_vars_cached region live e) in
  let dims =
    List.concat_map
      (function
        | Tdfg.Out_tensor { array; _ } -> Interp.array_dims st.env array
        | Tdfg.Out_stream _ -> [])
      (Tdfg.outputs region.optimized)
  in
  let tile = match st.opts.tile_override with Some t -> t | None -> [||] in
  Array.concat
    [ vals; [| Array.length tile |]; tile; Array.of_list dims ]

let layout_for st (region : Fat_binary.region) ~live =
  let key = region.kernel.Ast.kname in
  match Hashtbl.find_opt st.layouts key with
  | Some l -> l
  | None ->
    let e = inv_entry_of region in
    let k = lay_key st region live e in
    let l =
      match Hashtbl.find_opt e.ie_lays k with
      | Some l -> l
      | None ->
        let shape = region_shape st region in
        let elems_per_line =
          (cfgv st).Machine_config.line_bytes
          / Dtype.bytes (Tdfg.dtype region.optimized)
        in
        let l =
          match st.opts.tile_override with
          | Some tile when Array.length tile = Array.length shape ->
            Layout.of_tile (cfgv st) ~shape ~tile
          | Some _ | None ->
            (* overrides only apply to regions of the same rank (sweeps) *)
            Layout.choose (cfgv st) ~hints:region.hints ~shape ~elems_per_line
        in
        if Hashtbl.length e.ie_lays >= inv_cache_max_entries then
          Hashtbl.reset e.ie_lays;
        Hashtbl.replace e.ie_lays k l;
        l
    in
    Hashtbl.replace st.layouts key l;
    l

(* Resolved domain of every live node, indexed by node id — one resolution
   sweep per invocation, shared by the Eq. 2 [elems] estimate, the JIT
   memo-key signature, and the lowering itself (which previously each
   re-resolved the whole graph). Returns the doms array plus the memo-key
   domain signature (the concatenated per-node [Hyperrect.buf_add] bytes),
   both cached across runs in the invocation cache keyed on the values of
   the variables the domains read. *)
let doms_of st (region : Fat_binary.region) (live : Tdfg.id array) =
  let e = inv_entry_of region in
  let vals = eval_vars st (dom_vars_cached region live e) in
  match Hashtbl.find_opt e.ie_doms vals with
  | Some r -> r
  | None ->
    let g = region.optimized in
    let doms = Array.make (Tdfg.node_count g) None in
    let env = Interp.lookup_int st.env in
    Array.iter
      (fun id ->
        match Tdfg.domain g id with
        | Tdfg.Finite r -> doms.(id) <- Some (Symrect.resolve r env)
        | Tdfg.Infinite -> ())
      live;
    let buf = Buffer.create 96 in
    Array.iter
      (fun id ->
        match doms.(id) with
        | Some rect -> Hyperrect.buf_add buf rect
        | None -> ())
      live;
    let r = (doms, Buffer.contents buf) in
    if Hashtbl.length e.ie_doms >= inv_cache_max_entries then
      Hashtbl.reset e.ie_doms;
    Hashtbl.replace e.ie_doms vals r;
    r

let layout_str st (region : Fat_binary.region) layout =
  let k = region.kernel.Ast.kname in
  match Hashtbl.find_opt st.layout_strs k with
  | Some s -> s
  | None ->
    let s = Layout.to_string layout in
    Hashtbl.replace st.layout_strs k s;
    s

(* The JIT memo key: kernel name + resolved lattice domains + layout,
   '|'-separated — byte-identical to the former
   [Printf.sprintf "%s|%s|%s"] over a per-node [Hyperrect.to_string]
   signature (resolved bounds of runtime scalars are irrelevant to
   lowering; the key covers exactly the inputs lowering depends on). *)
let memo_key st (region : Fat_binary.region) layout ~dsig =
  let buf = Buffer.create 96 in
  Buffer.add_string buf region.kernel.Ast.kname;
  Buffer.add_char buf '|';
  Buffer.add_string buf dsig;
  Buffer.add_char buf '|';
  Buffer.add_string buf (layout_str st region layout);
  Buffer.contents buf

(* Near-memory (or core) cost of the embedded streams and final reduce of
   an in-memory region. *)
let hybrid_cost st ~stream_elems ~final_reduce_elems =
  let cfg = cfgv st in
  let banks = float_of_int cfg.Machine_config.l3_banks in
  let avg_hops = Machine_config.avg_hops cfg in
  match st.paradigm with
  | In_l3 ->
    (* no near-memory support: cores pull the stream data and partials
       through the NoC *)
    let elems = stream_elems +. final_reduce_elems in
    let bytes = elems *. 4.0 in
    if bytes > 0.0 then begin
      Traffic.add st.traffic Traffic.Data ~bytes ~hops:avg_hops;
      Traffic.add st.traffic Traffic.Control ~bytes:(bytes /. 4.0) ~hops:avg_hops
    end;
    let cycles =
      Traffic.bulk_cycles_in st.traffic ~detail:"hybrid-core" ~bytes ~avg_hops
      +. (elems /. Machine_config.peak_simd_flops_per_cycle cfg)
    in
    st.events.Energy.core_flops <- st.events.Energy.core_flops +. elems;
    `Core cycles
  | _ ->
    (* SEL3 streams handle them near the banks *)
    let stream_cycles =
      stream_elems /. (banks *. cfg.Machine_config.sel3_flops_per_cycle)
    in
    let fr_cycles =
      final_reduce_elems /. (banks *. cfg.Machine_config.sel3_flops_per_cycle)
    in
    if final_reduce_elems > 0.0 then
      Traffic.add st.traffic Traffic.Offload
        ~bytes:(final_reduce_elems *. 4.0 /. 8.0)
        ~hops:avg_hops;
    st.events.Energy.sel3_flops <-
      st.events.Energy.sel3_flops +. stream_elems +. final_reduce_elems;
    `Near (stream_cycles, fr_cycles)

let run_in_memory_body st ~w ~doms ~dsig (region : Fat_binary.region)
    (layout : Layout.t) (schedule : Schedule.t) =
  let cfg = cfgv st in
  let g = region.optimized in
  (* 1. prepare transposed data (only the touched region of each array) *)
  let touched_of a =
    match
      Array.find_opt (fun (s : Workset.stream) -> s.array = a) w.Workset.streams
    with
    | Some s -> Float.min s.distinct_bytes (array_bytes st a)
    | None -> array_bytes st a
  in
  let arrays = region.hints.Fat_binary.aligned_arrays in
  let write_only a =
    Array.exists
      (fun (s : Workset.stream) -> s.array = a && s.direction = Kernel_info.Write)
      w.Workset.streams
  in
  let dram_bytes = ref 0.0 and transpose_bytes = ref 0.0 in
  List.iter
    (fun a ->
      let bytes = touched_of a in
      let dram, transposed =
        Residency.touch st.residency a ~bytes ~form:Residency.Transposed
      in
      (* a fully overwritten array is laid out transposed without a fetch *)
      if not (write_only a) then dram_bytes := !dram_bytes +. dram;
      if transposed && not (write_only a) then
        transpose_bytes := !transpose_bytes +. bytes)
    arrays;
  let prep =
    Float.max
      (Dram.load_traced ~metrics:(metricsv st) ~prof:(profv st)
         ?faults:st.faults (tracev st) cfg ~bytes:!dram_bytes)
      (Dram.transpose_traced ~metrics:(metricsv st) ~prof:(profv st)
         ?faults:st.faults (tracev st) cfg ~bytes:!transpose_bytes)
  in
  charge st `Dram prep;
  st.events.Energy.dram_bytes <- st.events.Energy.dram_bytes +. !dram_bytes;
  st.events.Energy.l3_bytes <- st.events.Energy.l3_bytes +. !transpose_bytes;
  (* 2. JIT lower (memoized) *)
  let key = memo_key st region layout ~dsig in
  let cmds, jst =
    (* span count == [jit_invocations] (memo hits included — the memoized
       lookup is itself JIT-phase work) *)
    Prof.span (profv st) "jit" (fun () ->
        Jit.lower_memo ~trace:(tracev st) ~doms st.memo ~key cfg g ~schedule
          ~layout
          ~env:(Interp.lookup_int st.env))
  in
  st.jit_invocations <- st.jit_invocations + 1;
  if not jst.Jit.memoized then begin
    st.jit_nonmemo <- st.jit_nonmemo + 1;
    st.jit_commands <- st.jit_commands + jst.Jit.commands
  end;
  (* mirrors the Memo / Jit_span Exit events [Jit.lower_memo] emits *)
  if Metrics.enabled (metricsv st) then begin
    Metrics.Sim.memo (metricsv st) ~hit:jst.Jit.memoized;
    if not jst.Jit.memoized then
      Metrics.Sim.jit_exit (metricsv st) ~commands:jst.Jit.commands
        ~cycles:jst.Jit.jit_cycles
  end;
  let jit_cycles =
    if st.opts.charge_jit && st.paradigm <> Inf_s_nojit then jst.Jit.jit_cycles
    else 0.0
  in
  st.jit_cycles_total <- st.jit_cycles_total +. jit_cycles;
  charge st `Jit jit_cycles;
  (* 3. execute commands *)
  let r = Imc.execute cfg st.traffic ~layout:(Layout.imc_view layout) cmds in
  charge st `Move (r.Imc.move_cycles +. r.sync_cycles);
  charge st `Compute r.Imc.compute_cycles;
  st.events.Energy.sram_array_cycles <-
    st.events.Energy.sram_array_cycles +. r.Imc.sram_array_cycles;
  st.in_mem_elems <- st.in_mem_elems +. jst.Jit.compute_elems;
  if r.Imc.faulted then begin
    (* an SRAM bit flip aborted the region mid-execution: the prep / JIT /
       partial command cycles above stay charged (they were really spent);
       the functional effect is NOT applied — the caller retries or
       re-targets so it is applied exactly once *)
    note_timeline st region.kernel.Ast.kname Report.In_mem
      (prep +. jit_cycles +. r.Imc.move_cycles +. r.sync_cycles
     +. r.Imc.compute_cycles);
    false
  end
  else begin
    (* 4. embedded streams + final reduce *)
    let stream_elems = jst.Jit.stream_load_elems +. jst.Jit.stream_store_elems in
    let hybrid_cycles =
      match hybrid_cost st ~stream_elems ~final_reduce_elems:jst.Jit.final_reduce_elems with
      | `Core c ->
        charge st `Core c;
        c
      | `Near (sc, fc) ->
        charge st `Mix sc;
        charge st `Final_reduce fc;
        sc +. fc
    in
    st.other_elems <- st.other_elems +. stream_elems +. jst.Jit.final_reduce_elems;
    let total =
      prep +. jit_cycles +. r.Imc.move_cycles +. r.sync_cycles
      +. r.Imc.compute_cycles +. hybrid_cycles
    in
    note_timeline st region.kernel.Ast.kname Report.In_mem total;
    (* 5. functional evaluation through the tDFG *)
    if st.opts.functional then Tdfg_eval.eval g st.env;
    true
  end

let run_in_memory st ~w ~doms ~dsig region layout schedule =
  Prof.span (profv st) "imc" (fun () ->
      run_in_memory_body st ~w ~doms ~dsig region layout schedule)

(* ----- fault mitigation ----- *)

let fault_note st ~site ~action ~detail ~cycles =
  if Trace.enabled (tracev st) then
    Trace.emit (tracev st) (Trace.Fault { site; action; detail; cycles });
  if Metrics.enabled (metricsv st) then
    Metrics.Sim.fault (metricsv st) ~site ~action ~cycles

(* Bounded retry loop around one kernel attempt. [f ()] returns success;
   a failed attempt's Breakdown delta is wasted time — accounted, traced,
   and retried up to the spec's bound before [fallback] re-targets the
   region (§4.3 machinery in reverse: the runtime re-lowers to the next
   paradigm down, which for core execution never faults, so every kernel
   terminates). *)
let with_retries st fi ~site ~kname f ~fallback =
  let rec go attempt =
    let before = Breakdown.total st.bd in
    if f () then ()
    else begin
      let wasted = Breakdown.total st.bd -. before in
      st.fault_wasted <- st.fault_wasted +. wasted;
      if attempt < Fault.max_retries fi then begin
        st.fault_retries <- st.fault_retries + 1;
        fault_note st ~site ~action:"retry" ~detail:kname ~cycles:wasted;
        go (attempt + 1)
      end
      else begin
        st.fault_fallbacks <- st.fault_fallbacks + 1;
        fault_note st ~site ~action:"fallback" ~detail:kname ~cycles:wasted;
        fallback ()
      end
    end
  in
  go 0

(* Near-memory with watchdog mitigation: retry the offload, then fall back
   to core execution (cores use the reliable demand-paging path and never
   fault — the termination guarantee). *)
let exec_near st ~w (region : Fat_binary.region) =
  match st.faults with
  | None -> ignore (run_near st ~w region : bool)
  | Some fi ->
    let kname = region.Fat_binary.kernel.Ast.kname in
    with_retries st fi ~site:"watchdog" ~kname
      (fun () -> run_near st ~w region)
      ~fallback:(fun () ->
        Decision.fault_fallback ~trace:(tracev st) ~kernel:kname ~site:"watchdog"
          ~target:"core" ();
        if Metrics.enabled (metricsv st) then
          Metrics.Sim.decision (metricsv st) ~target:"core";
        run_core st ~threads:(cfgv st).Machine_config.cores ~w region)

(* In-memory with SRAM-flip mitigation: retry (residency and the JIT memo
   make retries much cheaper than first attempts), then re-lower the region
   to the paradigm's fallback target — near-memory for Inf-S, core for
   In-L3 — via the same §4.3 decision machinery, visibly in the trace. *)
let exec_in_memory st ~w ~doms ~dsig (region : Fat_binary.region) layout
    schedule =
  match st.faults with
  | None -> ignore (run_in_memory st ~w ~doms ~dsig region layout schedule : bool)
  | Some fi ->
    let kname = region.Fat_binary.kernel.Ast.kname in
    with_retries st fi ~site:"sram" ~kname
      (fun () -> run_in_memory st ~w ~doms ~dsig region layout schedule)
      ~fallback:(fun () ->
        let target = if st.paradigm = In_l3 then "core" else "near-memory" in
        Decision.fault_fallback ~trace:(tracev st) ~kernel:kname ~site:"sram"
          ~target ();
        if Metrics.enabled (metricsv st) then
          Metrics.Sim.decision (metricsv st) ~target;
        if st.paradigm = In_l3 then
          run_core st ~threads:(cfgv st).Machine_config.cores ~w region
        else exec_near st ~w region)

(* ----- per-kernel dispatch ----- *)

let on_kernel st _env (k : Ast.kernel) =
  let region =
    match Fat_binary.region_of st.fb k.Ast.kname with
    | Some r -> r
    | None -> failwith ("unknown kernel region " ^ k.Ast.kname)
  in
  let w = workset_of st region in
  match st.paradigm with
  | Base_1 -> run_core st ~threads:1 ~w region
  | Base -> run_core st ~threads:(cfgv st).Machine_config.cores ~w region
  | Near_l3 -> exec_near st ~w region
  | In_l3 | Inf_s | Inf_s_nojit -> begin
    let fallback () =
      if st.paradigm = In_l3 then
        run_core st ~threads:(cfgv st).Machine_config.cores ~w region
      else exec_near st ~w region
    in
    (* regions that never reach Eq. 2 still get a row in the report's
       decision table; no trace event is emitted (the decision machinery
       did not run), so golden traces are unchanged *)
    let fallback_noted reason =
      note_decision_raw st k.Ast.kname
        ~target:(if st.paradigm = In_l3 then "core" else "near-memory")
        ~core_cycles:0.0 ~imc_cycles:0.0 ~reason;
      fallback ()
    in
    match region.fallback with
    | Some _ ->
      fallback_noted "scalar fallback: region not expressible as a tDFG"
    | None -> begin
      match List.assoc_opt (cfgv st).Machine_config.sram_wordlines region.schedules with
      | None -> fallback_noted "no schedule for the configured SRAM wordlines"
      | Some schedule -> begin
        let live = lives_of st region in
        match layout_for st region ~live with
        | Error e -> fallback_noted ("no valid transposed layout: " ^ e)
        | Ok layout ->
          let g = region.optimized in
          let doms, dsig = doms_of st region live in
          let decide ov =
            let elems =
              (* data parallelism: the largest finite node domain. Computed
                 here (not at dispatch) so the In-L3 default path, which
                 never consults Eq. 2, skips the volume sweep entirely. *)
              Array.fold_left
                (fun acc id ->
                  match doms.(id) with
                  | Some rect ->
                    Float.max acc (float_of_int (Hyperrect.volume rect))
                  | None -> acc)
                1.0 live
            in
            (* span count == [Offload_decision] trace events: this is the
               only caller of [Decision.decide] in the engine *)
            Prof.span (profv st) "decide" (fun () ->
                Decision.decide ~trace:(tracev st) ~kernel:k.Ast.kname
                  ~override:ov (cfgv st)
                  ~ops:(Tdfg.op_multiset g)
                  ~node_count:(Tdfg.node_count g) ~dtype:(Tdfg.dtype g) ~elems
                  ~flops:w.Workset.flops
                  ~data_bytes:(Workset.touched_bytes w) ~fits:true
                  ~jit_known:
                    (st.paradigm = Inf_s_nojit || not st.opts.charge_jit))
          in
          let override =
            Decision.resolve st.opts.decision_policy ~kernel:k.Ast.kname
          in
          if st.paradigm = In_l3 then begin
            (* In-L3 has no near-memory support and always offloads
               expressible regions to the SRAMs; only a tuned force-core
               override diverts a region back to the cores (Force_imc is
               the default behavior). The default path never consults
               Eq. 2, keeping traces and reports byte-identical. *)
            match override with
            | Decision.Auto | Decision.Force_imc ->
              exec_in_memory st ~w ~doms ~dsig region layout schedule
            | Decision.Force_core ->
              let verdict = decide Decision.Force_core in
              note_decision st k.Ast.kname verdict;
              if Metrics.enabled (metricsv st) then
                Metrics.Sim.decision (metricsv st)
                  ~target:(Decision.target_name verdict.Decision.target);
              fallback ()
          end
          else begin
            let verdict = decide override in
            note_decision st k.Ast.kname verdict;
            Logs.debug (fun m ->
                m "eq2 %s: core=%.3e imc=%.3e -> %s" k.Ast.kname
                  verdict.Decision.core_cycles verdict.imc_cycles
                  (match verdict.target with
                  | Decision.In_memory -> "in-mem"
                  | Decision.Near_memory -> "near"));
            if Metrics.enabled (metricsv st) then
              Metrics.Sim.decision (metricsv st)
                ~target:(Decision.target_name verdict.Decision.target);
            match verdict.Decision.target with
            | Decision.In_memory -> exec_in_memory st ~w ~doms ~dsig region layout schedule
            | Decision.Near_memory -> fallback ()
          end
      end
    end
  end

(* ----- correctness check ----- *)

let golden_arrays (w : Workload.t) =
  match
    Interp.run_program w.prog ~params:w.params ~inputs:(force_inputs w)
  with
  | Ok arrays -> arrays
  | Error e -> failwith ("golden run failed: " ^ e)

let max_err st (w : Workload.t) =
  let golden = golden_arrays w in
  List.fold_left
    (fun acc name ->
      let got = Interp.get_array st.env name in
      let want = List.assoc name golden in
      let err = ref 0.0 in
      Array.iteri
        (fun i v ->
          let d = Float.abs (v -. want.(i)) in
          let scale = Float.max 1.0 (Float.abs want.(i)) in
          err := Float.max !err (d /. scale))
        got;
      Float.max acc !err)
    0.0 w.check_arrays

(* ----- entry point ----- *)

let run_with options paradigm (w : Workload.t) =
  match Prof.span options.prof "compile" (fun () -> compile options w) with
  | Error e -> Error e
  | Ok fb -> begin
    match Interp.create w.prog ~params:w.params with
    | Error e -> Error e
    | Ok env ->
      if options.functional then
        List.iter (fun (n, d) -> Interp.set_array env n d) (force_inputs w);
      (* The injector's streams are seeded from the spec and a scope that
         depends only on the workload and paradigm — never on scheduling —
         so identical seeds yield byte-identical reports at any --jobs
         count. [Fault.none] (the default) installs no injector at all:
         zero draws, zero overhead beyond one option match per hook. *)
      let faults =
        if Fault.is_none options.faults then None
        else
          Some
            (Fault.create options.faults
               ~scope:(w.wname ^ "|" ^ paradigm_to_string paradigm))
      in
      let st =
        {
          opts = options;
          paradigm;
          fb;
          env;
          traffic =
            Traffic.create ~trace:options.trace ~metrics:options.metrics
              ~prof:options.prof ?faults options.cfg;
          faults;
          fault_retries = 0;
          fault_fallbacks = 0;
          fault_wasted = 0.0;
          bd = Breakdown.zero ();
          events = Energy.fresh ();
          memo = Jit.memo_create ();
          layouts = Hashtbl.create 8;
          lives = Hashtbl.create 8;
          layout_strs = Hashtbl.create 8;
          residency = Residency.create options.cfg;
          timeline = Hashtbl.create 8;
          timeline_order = [];
          in_mem_elems = 0.0;
          other_elems = 0.0;
          jit_invocations = 0;
          jit_cycles_total = 0.0;
          jit_commands = 0;
          jit_nonmemo = 0;
          seen_kernels = Hashtbl.create 16;
          decisions = Hashtbl.create 8;
          decisions_order = [];
        }
      in
      if options.warm_data then begin
        (* data resident in L3 ("already tiled to fit", §6); in-memory
           paradigms still pay the transposition unless [pre_transposed]
           (Fig. 2's assumption) *)
        let form =
          match paradigm with
          | (In_l3 | Inf_s | Inf_s_nojit) when options.pre_transposed ->
            Residency.Transposed
          | _ -> Residency.Normal
        in
        List.iter
          (fun (a : Ast.array_decl) ->
            ignore
              (Residency.touch st.residency a.aname
                 ~bytes:(array_bytes st a.aname) ~form))
          w.prog.Ast.arrays
      end;
      (try
         Prof.span options.prof "run" (fun () ->
             Interp.run ~on_kernel:(on_kernel st) env);
         Energy.of_traffic st.events st.traffic;
         let cycles = Breakdown.total st.bd in
         let correctness =
           if options.functional then `Checked (max_err st w) else `Skipped
         in
         let cats =
           [
             ("control", Traffic.Control);
             ("data", Traffic.Data);
             ("offload", Traffic.Offload);
             ("inter-tile", Traffic.Inter_tile);
           ]
         in
         let jit : Report.jit_summary =
           {
             invocations = st.jit_invocations;
             memo_hits = Jit.memo_hits st.memo;
             total_commands = st.jit_commands;
             total_jit_cycles = st.jit_cycles_total;
             avg_us =
               (if st.jit_nonmemo = 0 then 0.0
                else
                  Machine_config.cycles_to_us options.cfg
                    (st.jit_cycles_total /. float_of_int st.jit_nonmemo));
           }
         in
         Ok
           {
             Report.workload = w.wname;
             paradigm = paradigm_to_string paradigm;
             cycles;
             breakdown = st.bd;
             noc_bytes =
               List.map (fun (n, c) -> (n, Traffic.bytes st.traffic c)) cats;
             noc_byte_hops =
               List.map (fun (n, c) -> (n, Traffic.byte_hops st.traffic c)) cats;
             local_bytes =
               [
                 ("intra-tile", Traffic.local_bytes st.traffic `Intra_tile);
                 ("htree", Traffic.local_bytes st.traffic `Htree);
               ];
             noc_utilization = Traffic.utilization st.traffic ~cycles;
             energy = Energy.total st.events;
             energy_breakdown = Energy.breakdown st.events;
             jit;
             timeline =
               List.map
                 (fun k ->
                   let parts = Hashtbl.find st.timeline k in
                   let where, _ =
                     List.fold_left
                       (fun (bw, bc) (w, c) -> if c > bc then (w, c) else (bw, bc))
                       (fst (List.hd parts), -1.0)
                       parts
                   in
                   let cyc = List.fold_left (fun a (_, c) -> a +. c) 0.0 parts in
                   { Report.kernel = k; where; cycles = cyc })
                 st.timeline_order;
             in_mem_op_fraction =
               (let total = st.in_mem_elems +. st.other_elems in
                if total <= 0.0 then 0.0 else st.in_mem_elems /. total);
             correctness;
             decisions =
               List.map
                 (fun kname ->
                   let acc = Hashtbl.find st.decisions kname in
                   {
                     Report.kernel = kname;
                     target = acc.d_target;
                     core_cycles = acc.d_core;
                     imc_cycles = acc.d_imc;
                     reason = acc.d_reason;
                     verdicts = acc.d_counts;
                   })
                 st.decisions_order;
             faults =
               (match st.faults with
               | None -> None
               | Some fi ->
                 Some
                   {
                     Report.spec = Fault.to_string (Fault.spec_of fi);
                     injected =
                       List.map
                         (fun s -> (Fault.site_name s, Fault.injected fi s))
                         Fault.all_sites;
                     draws = Fault.draws fi;
                     retries = st.fault_retries;
                     fallbacks = st.fault_fallbacks;
                     wasted_cycles = st.fault_wasted;
                     degraded = Fault.total_injected fi > 0;
                   });
           }
       with Failure e -> Error e)
  end

(* Root span "engine": profile paths read
   engine;compile / engine;run;{core,near,imc,decide} /
   engine;run;imc;{jit,imc.execute,dram.*} and so on. *)
let run ?(options = default_options) paradigm (w : Workload.t) =
  Prof.span options.prof "engine" (fun () -> run_with options paradigm w)

let run_exn ?options paradigm w =
  match run ?options paradigm w with
  | Ok r -> r
  | Error e -> failwith (Printf.sprintf "Engine.run %s: %s" w.Workload.wname e)
