(** The paradigm engine: compiles a workload and simulates it under one of
    the paper's five configurations (§7 "Parameters and Configurations").

    - [Base_1] / [Base]: in-core execution with AVX-512 SIMD, 1 or all
      threads.
    - [Near_l3]: near-stream computing — every kernel offloads its streams
      and computation to the L3 stream engines.
    - [In_l3]: in-memory computing via the JIT runtime, but without
      near-memory support: embedded streams and final reductions execute on
      the cores, and non-tensorizable kernels fall back to the cores.
    - [Inf_s]: the full fused design — Eq. 2 decides per region between
      in-memory and near-memory; embedded streams and final reductions run
      at the L3 stream engines.
    - [Inf_s_nojit]: [Inf_s] with precompiled commands (no JIT charge).

    In functional mode the engine additionally computes every kernel's
    values (through the tDFG evaluator for in-memory executions, through
    the interpreter otherwise) and compares the designated output arrays
    against a golden run of the program. *)

type paradigm = Base_1 | Base | Near_l3 | In_l3 | Inf_s | Inf_s_nojit

val paradigm_to_string : paradigm -> string
val all_paradigms : paradigm list

type options = {
  cfg : Machine_config.t;
  functional : bool;  (** compute & check values (use small sizes!) *)
  optimize : bool;  (** run the e-graph optimizer *)
  tile_override : int array option;  (** force a tile size (Fig. 16/17) *)
  charge_jit : bool;
      (** charge JIT lowering cycles (Fig. 2 assumes resident, precompiled
          data and disables this for In-L3) *)
  warm_data : bool;
      (** start with every array resident in the L3 in normal layout — the
          paper's "input data already tiled to fit in the L3" assumption
          (§6); in-memory paradigms still pay transposition *)
  pre_transposed : bool;
      (** with [warm_data], in-memory paradigms additionally skip the
          transposition — Fig. 2's "already transposed" assumption *)
  trace : Trace.t;
      (** structured-event trace context (default {!Trace.null}, a no-op).
          With an enabled context the engine and every instrumented
          component emit typed events, and the per-category cycle counters
          ([cycles.dram], [cycles.core], …) reconcile exactly — identical
          floats, identical accumulation order — with [Report.breakdown];
          [noc.bytes.*] / [local.bytes.*] likewise match the traffic
          totals. Traces are deterministic given (workload, paradigm,
          options). *)
  metrics : Metrics.t;
      (** metric registry (default [Metrics.null], a no-op). With an
          enabled registry the engine and every instrumented component
          record labeled counters/gauges/histograms: per-category and
          per-link NoC load, per-bank SRAM occupancy and command-latency
          histograms, DRAM burst/channel series, near-memory stall
          breakdown, JIT lowering/memo series and the [cycles{cat}]
          histograms whose sums reconcile exactly with
          [Report.breakdown]. Registries are single-domain: batch jobs
          each create their own. *)
  prof : Prof.t;
      (** host-time span profiler (default [Prof.null], a no-op). With an
          enabled registry the engine wraps its phases in spans — root
          ["engine"], then ["compile"] and ["run"], with per-region
          ["core"]/["near"]/["imc"] spans, the Eq. 2 ["decide"] span and
          the ["jit"] span nested under [run] — and the instrumented sim
          components ([Imc], [Near], [Corem], [Dram], [Traffic]) add
          their own leaves below. Span {b counts} are deterministic and
          reconcile with trace/metrics counters ([core]/[near]/[imc]
          counts equal the [Region_exec] per-target event counts, [jit]
          equals the report's JIT invocations, [decide] equals the
          [Offload_decision] event count); span {b times} are host
          wall-clock and vary run to run. Registries are single-domain:
          batch jobs each create their own and merge. *)
  share_compile : bool;
      (** look up / publish the compiled fat binary in the process-wide
          content-addressed compile cache (keyed by a digest of the program
          text, the machine configuration and the optimizer flag) instead
          of compiling privately. Used by the batch/bench paths, where many
          jobs share programs; single runs default to [false] so their
          behavior (and golden traces) is byte-identical to before. When
          the trace is enabled, each lookup bumps a [compile_cache.hits] /
          [compile_cache.misses] trace counter. *)
  faults : Fault.spec;
      (** seeded hardware-fault model (default {!Fault.none}: no injector
          is installed and the run is byte-identical to a faultless
          build). With a non-default spec the engine arms deterministic
          per-site fault streams — SRAM bit flips abort in-memory regions,
          NoC degradation stretches bulk transfers, DRAM channels stall,
          near-memory stream engines hang — and mitigates: bounded retries
          (wasted cycles charged and accounted), then paradigm fallback
          (in-memory regions re-lower to near-memory or core; near-memory
          falls back to core, which never faults, so every run
          terminates). Functional results remain correct under mitigation;
          the report gains a [faults] summary. Streams are scoped to
          (workload, paradigm), so identical specs give byte-identical
          reports at any [--jobs] count. *)
  decision_policy : Decision.policy;
      (** how per-region offload targets are chosen (default
          {!Decision.Heuristic}: Eq. 2 as-is, byte-identical to before
          this field existed). A [Decision.Tuned] table pins kernels to a
          side of the offload boundary: [Force_imc] sends a mappable
          region to the SRAM arrays, [Force_core] keeps it off them — on
          the cores for [In_l3], the near-memory stream engines for
          [Inf_s] (the decision layer names that side "near-memory" in
          either case). Overrides only affect mappable regions; scalar
          fallbacks, missing schedules and unmappable layouts take the
          usual fallback path regardless. [Base_1]/[Base]/[Near_l3] have
          no offload boundary and ignore the policy. *)
}

val default_options : options

val compile_cache_stats : unit -> int * int * int
(** [(hits, misses, entries)] of the process-wide compile cache, counting
    every run with [share_compile = true] since start (or
    {!compile_cache_clear}). Domain-safe: batch jobs on separate domains
    share one cache. *)

val compile_cache_clear : unit -> unit

val run : ?options:options -> paradigm -> Workload.t -> (Report.t, string) result

val run_exn : ?options:options -> paradigm -> Workload.t -> Report.t
