(** NoC traffic accounting (paper Figs. 12–13).

    Traffic is tracked per category in bytes, byte-hops (bytes weighted by
    mesh distance — the quantity Fig. 12/13 plot) and packets. Categories
    follow the paper: coherence control, data movement, offload management
    (stream configs, flow control, in-memory synchronization), and the
    inter-tile shift traffic that crosses the NoC. Intra-tile and in-bank
    H-tree movement is recorded separately for Fig. 13. *)

type category =
  | Control  (** coherence / request control messages *)
  | Data  (** cache-line data between cores and L3 / memory *)
  | Offload  (** stream configs, flow control, sync for offloaded work *)
  | Inter_tile  (** in-memory shifts crossing the NoC *)

val category_name : category -> string
(** The names used in reports and trace events: ["control"], ["data"],
    ["offload"], ["inter-tile"]. *)

type t

val create :
  ?trace:Trace.t ->
  ?metrics:Metrics.t ->
  ?prof:Prof.t ->
  ?faults:Fault.injector ->
  Machine_config.t ->
  t
(** [create ?trace ?metrics ?prof ?faults cfg]: every [add] / [add_local]
    additionally emits a typed trace event on [trace] (default
    {!Trace.null}, a no-op) and updates [metrics] (default
    [Metrics.null]) — per-category NoC counters that mirror the buckets
    bit-exactly plus per-link load gauges. [prof] (default [Prof.null])
    rides along to the downstream models ([Imc], [Near], [Corem]) for
    host-time span accounting; {!bulk_cycles_in} records a ["noc.bulk"]
    leaf on it. When [faults] is given, the injector rides along for
    downstream models ([Imc], [Near], [Dram] call sites) and
    {!bulk_cycles_in} draws NoC-degradation faults. *)

val trace_of : t -> Trace.t
(** The trace context this accounting was created with — downstream models
    ([Imc], [Near]) emit their own events on it. *)

val metrics_of : t -> Metrics.t
(** The metric registry this accounting was created with — downstream
    models record their own series on it. *)

val prof_of : t -> Prof.t
(** The span profiler this accounting was created with — downstream
    models wrap their entry points in spans on it. *)

val faults_of : t -> Fault.injector option
(** The fault injector this accounting was created with, if any. *)

val reset : t -> unit

val add : t -> category -> bytes:float -> hops:float -> unit
(** Record a transfer; packet count is derived from the link width. *)

val add_local : t -> [ `Intra_tile | `Htree ] -> bytes:float -> unit
(** In-SRAM / in-bank movement that never enters the NoC. *)

val bytes : t -> category -> float
val byte_hops : t -> category -> float
val packets : t -> category -> float
val local_bytes : t -> [ `Intra_tile | `Htree ] -> float

val total_bytes : t -> float
(** NoC categories only. *)

val total_byte_hops : t -> float

val utilization : t -> cycles:float -> float
(** Fraction of aggregate link capacity used over [cycles]. *)

val bulk_cycles : Machine_config.t -> bytes:float -> avg_hops:float -> float
(** Time for a bulk, well-spread transfer: the maximum of endpoint
    serialization and bisection-bandwidth limits, plus pipeline latency.
    Pure estimate — never draws faults; use for planning/decision code. *)

val bulk_cycles_in : t -> detail:string -> bytes:float -> avg_hops:float -> float
(** {!bulk_cycles} for a transfer that actually happens on this traffic
    context: when a fault injector is attached and [bytes > 0], draws one
    link-degradation fault — a degraded transfer costs [noc_jitter]x the
    nominal cycles, and the excess is emitted as a [fault] trace/metrics
    event tagged with [detail]. Identical to {!bulk_cycles} otherwise. *)

val merge_into : dst:t -> t -> unit

val pp : Format.formatter -> t -> unit
