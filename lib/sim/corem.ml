type result = { cycles : float; dram_cycles : float }

let omp_fork_cycles = 6000.0
let omp_barrier_cycles = 500.0

let run_sim cfg traffic (w : Workset.t) ~threads ~cold_bytes ~first_invocation =
  let avg_hops = Machine_config.avg_hops cfg in
  let lanes = float_of_int cfg.Machine_config.simd_fp32_lanes in
  let peak_flops = float_of_int threads *. lanes in
  let compute = w.flops /. peak_flops in
  (* L2-filtered NoC traffic: a stream whose distinct region fits in the
     aggregated private L2 capacity is fetched once; otherwise every access
     goes to L3. *)
  let l2_bytes = float_of_int (threads * cfg.Machine_config.l2_kb * 1024) in
  let noc_bytes =
    Array.fold_left
      (fun acc (s : Workset.stream) ->
        let once = s.distinct_bytes in
        let every = s.accesses *. s.elem_bytes in
        if s.distinct_bytes <= l2_bytes then acc +. once else acc +. every)
      0.0 w.streams
  in
  let line = float_of_int cfg.Machine_config.line_bytes in
  Traffic.add traffic Traffic.Data ~bytes:noc_bytes ~hops:avg_hops;
  Traffic.add traffic Traffic.Control
    ~bytes:(noc_bytes /. line *. 16.0)
    ~hops:avg_hops;
  let noc_time =
    if threads = 1 then
      (* single core: limited by one core's L1 fill bandwidth *)
      noc_bytes /. float_of_int cfg.Machine_config.noc_link_bytes
    else Traffic.bulk_cycles cfg ~bytes:noc_bytes ~avg_hops
  in
  let dram = Dram.load_cycles cfg ~bytes:cold_bytes in
  let omp =
    if threads <= 1 then 0.0
    else if first_invocation then omp_fork_cycles
    else omp_barrier_cycles
  in
  let busy = Float.max compute noc_time in
  { cycles = busy +. omp +. dram; dram_cycles = dram }

let run cfg traffic (w : Workset.t) ~threads ~cold_bytes ~first_invocation =
  Prof.span (Traffic.prof_of traffic) "corem.run" (fun () ->
      run_sim cfg traffic w ~threads ~cold_bytes ~first_invocation)
