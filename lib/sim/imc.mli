(** In-memory command execution model (paper §5.2).

    Executes a lowered command list against a tiled layout. Tiles are
    statically mapped to SRAM arrays (tile linear index interleaved across
    L3 banks), so every touched tile computes concurrently; a command's
    latency is its bit-serial array occupancy plus TCL3 dispatch. Inter-tile
    shifts whose destination tile lives in another bank inject NoC packets
    (category [Inter_tile]); same-bank transfers ride the buffered H-tree.
    Commands are synchronous per bank except inter-tile shifts, which
    complete at the next [Sync] barrier — the model therefore charges the
    NoC transfer time when the barrier is crossed, overlapping it with
    nothing (conservative, like the paper's synchronous L3-bank
    semantics). *)

type layout_view = {
  grid : int array;  (** tiles per lattice dimension *)
  tile : int array;  (** elements per tile per dimension *)
}

type result = {
  move_cycles : float;
  compute_cycles : float;
  sync_cycles : float;
  sram_array_cycles : float;
      (** Σ over commands of touched-tiles x occupancy — the energy proxy *)
  commands : int;  (** commands actually executed (all, unless [faulted]) *)
  elements_computed : float;
  faulted : bool;
      (** a seeded SRAM bit flip corrupted a command: execution aborted
          early and the partial cycles above are wasted — the caller must
          retry or re-target the region *)
}

val tile_bank : Machine_config.t -> layout_view -> int array -> int
(** Home L3 bank of a tile (linear index modulo bank count). *)

val execute :
  Machine_config.t -> Traffic.t -> layout:layout_view -> Command.t array -> result
