(* Memoized per-command bit-serial array occupancy (DESIGN.md §16).

   [Command.array_cycles] is a pure function of the command's opcode,
   operand widths (dtype + shift distance / reduce width / constant
   operand count) — never of its tile box, lanes, or label — so the sim
   hot loop looks the cost up in a flat int-keyed table instead of
   re-walking the bit-serial cost model (the [Reduce] case loops over
   reduction rounds) two or three times per command.

   The key packs (kind tag, opcode, dtype, width parameter) injectively
   into one int, so lookups allocate nothing. Tables are per-domain
   (Domain.DLS): the batch pool runs engines on several domains and a
   shared table would race. Hit/miss counters are process-global atomics
   surfaced by `bench --smoke` as `sim.costmemo.{hit,miss}` — they are
   deliberately NOT trace events or metric series, which are both pinned
   byte-for-byte by golden tests. *)

let hits_a = Atomic.make 0
let misses_a = Atomic.make 0

let hits () = Atomic.get hits_a
let misses () = Atomic.get misses_a

let hit_rate () =
  let h = float_of_int (hits ()) and m = float_of_int (misses ()) in
  if h +. m <= 0.0 then 0.0 else h /. (h +. m)

let reset () =
  Atomic.set hits_a 0;
  Atomic.set misses_a 0

let dtype_code = function
  | Dtype.Int8 -> 0
  | Dtype.Int16 -> 1
  | Dtype.Int32 -> 2
  | Dtype.Fp32 -> 3

let op_code = function
  | Op.Add -> 0
  | Op.Sub -> 1
  | Op.Mul -> 2
  | Op.Div -> 3
  | Op.Min -> 4
  | Op.Max -> 5
  | Op.Lt -> 6
  | Op.Select -> 7
  | Op.Relu -> 8
  | Op.Abs -> 9
  | Op.Neg -> 10
  | Op.Copy -> 11
  | Op.Sqrt -> 12

(* dtype: 2 bits, op: 4 bits, kind tag: 3 bits, parameter: the rest.
   The parameter (shift distance) may be negative; [lsl] keeps the
   packing injective over the full int range that can ever occur. *)
let pack ~tag ~op ~dtype ~param =
  dtype_code dtype lor (op lsl 2) lor (tag lsl 6) lor (param lsl 9)

let key_of (c : Command.t) =
  match c.Command.kind with
  | Command.Compute { op; const_operands } ->
    pack ~tag:0 ~op:(op_code op) ~dtype:c.dtype ~param:const_operands
  | Command.Intra_shift { distance; _ } ->
    pack ~tag:1 ~op:0 ~dtype:c.dtype ~param:distance
  | Command.Inter_shift { intra_dist; _ } ->
    pack ~tag:2 ~op:0 ~dtype:c.dtype ~param:intra_dist
  | Command.Broadcast _ -> pack ~tag:3 ~op:0 ~dtype:c.dtype ~param:0
  | Command.Reduce { op; width } ->
    pack ~tag:4 ~op:(op_code op) ~dtype:c.dtype ~param:width
  | Command.Sync -> 0 (* never reaches the table *)

let table_key : (int, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 512)

let array_cycles (c : Command.t) =
  match c.Command.kind with
  | Command.Sync -> 0 (* barriers have no array occupancy and skip the table *)
  | _ -> begin
    let tbl = Domain.DLS.get table_key in
    let k = key_of c in
    match Hashtbl.find tbl k with
    | v ->
      Atomic.incr hits_a;
      v
    | exception Not_found ->
      Atomic.incr misses_a;
      let v = Command.array_cycles c in
      Hashtbl.replace tbl k v;
      v
  end

(* Batched interface for the command loop: one DLS fetch per region and
   one atomic add per counter at the end instead of per command. The
   counter totals observable after [flush] are identical to the per-call
   path — only the update granularity changes, and nothing reads the
   counters mid-region. *)
type local = {
  tbl : (int, int) Hashtbl.t;
  mutable lhits : int;
  mutable lmisses : int;
  (* one-entry fast path over the table: consecutive commands usually
     share a cost key. [last_key]/[last_val] mirror a binding that is in
     [tbl] (bindings are never removed or changed), so a fast-path return
     is a table hit. min_int never collides with a packed key. *)
  mutable last_key : int;
  mutable last_val : int;
}

let local () =
  {
    tbl = Domain.DLS.get table_key;
    lhits = 0;
    lmisses = 0;
    last_key = min_int;
    last_val = 0;
  }

let array_cycles_local l (c : Command.t) =
  match c.Command.kind with
  | Command.Sync -> 0
  | _ -> begin
    let k = key_of c in
    if k = l.last_key then begin
      l.lhits <- l.lhits + 1;
      l.last_val
    end
    else begin
      match Hashtbl.find l.tbl k with
      | v ->
        l.lhits <- l.lhits + 1;
        l.last_key <- k;
        l.last_val <- v;
        v
      | exception Not_found ->
        l.lmisses <- l.lmisses + 1;
        let v = Command.array_cycles c in
        Hashtbl.replace l.tbl k v;
        l.last_key <- k;
        l.last_val <- v;
        v
    end
  end

let flush l =
  if l.lhits > 0 then begin
    ignore (Atomic.fetch_and_add hits_a l.lhits);
    l.lhits <- 0
  end;
  if l.lmisses > 0 then begin
    ignore (Atomic.fetch_and_add misses_a l.lmisses);
    l.lmisses <- 0
  end
