(** Near-memory (near-stream, NSC-style) execution model (paper §2.1, §5.1).

    Streams and their computation execute at the L3 banks where the data
    resides. Sequential affine streams are read once at full bank bandwidth
    with {e no} core-L3 NoC data traffic; what Near-L3 cannot do is exploit
    reuse — re-referenced data (broadcast-style streams) is re-fetched, and
    a remote fraction of those fetches crosses the NoC (this is why Near-L3
    loses on kmeans in the paper, Fig. 12). Offload management (stream
    configs, coarse flow control every few lines) is charged as [Offload]
    traffic. *)

type result = {
  cycles : float;
  dram_cycles : float;  (** cold-miss portion, reported separately *)
  watchdog : bool;
      (** a seeded stream-engine hang was detected by the watchdog: the
          attempt's cycles are wasted and the caller must retry or fall
          back to core execution *)
}

val run :
  Machine_config.t ->
  Traffic.t ->
  Workset.t ->
  cold_bytes:float ->
  result
(** Execute one kernel invocation near-memory. [cold_bytes] is the portion
    of the working set that must be fetched from DRAM first (residency is
    tracked by the caller across regions). *)

val stream_setup_cycles : Machine_config.t -> streams:int -> float
(** One-time SEcore-to-SEL3 configuration cost for a region. *)
