type layout_view = { grid : int array; tile : int array }

type result = {
  move_cycles : float;
  compute_cycles : float;
  sync_cycles : float;
  sram_array_cycles : float;
  commands : int;
  elements_computed : float;
  faulted : bool;
}

let grid_stride layout dim =
  let n = Array.length layout.grid in
  let s = ref 1 in
  for d = dim + 1 to n - 1 do
    s := !s * layout.grid.(d)
  done;
  !s

let tile_linear layout coords =
  let n = Array.length layout.grid in
  let idx = ref 0 in
  for d = 0 to n - 1 do
    idx := (!idx * layout.grid.(d)) + coords.(d)
  done;
  !idx

let tile_bank cfg layout coords =
  tile_linear layout coords mod cfg.Machine_config.l3_banks

(* Mean hop distance for a uniform bank shift of [delta] (mod banks). *)
let shift_hops cfg delta =
  let banks = cfg.Machine_config.l3_banks in
  let total = ref 0 in
  for b = 0 to banks - 1 do
    total := !total + Machine_config.hops cfg b ((b + delta) mod banks)
  done;
  float_of_int !total /. float_of_int banks

let kind_name = function
  | Command.Sync -> "sync"
  | Command.Compute _ -> "compute"
  | Command.Reduce _ -> "reduce"
  | Command.Intra_shift _ -> "intra-shift"
  | Command.Inter_shift _ -> "inter-shift"
  | Command.Broadcast _ -> "broadcast"

let execute_sim cfg traffic ~layout cmds =
  let trace = Traffic.trace_of traffic in
  let metrics = Traffic.metrics_of traffic in
  let move = ref 0.0
  and comp = ref 0.0
  and sync = ref 0.0
  and sram = ref 0.0
  and elems = ref 0.0 in
  let dispatch = float_of_int cfg.Machine_config.cmd_dispatch_cycles in
  let total_arrays = Machine_config.total_compute_arrays cfg in
  (* Regions larger than the physical compute arrays execute in waves over
     the tile space; each command's occupancy repeats per wave. *)
  let waves_of (c : Command.t) =
    float_of_int ((Command.tiles_touched c + total_arrays - 1) / max 1 total_arrays)
  in
  let diameter =
    float_of_int
      ((cfg.Machine_config.mesh_x + cfg.mesh_y - 2) * cfg.noc_router_cycles)
  in
  (* Inter-tile NoC bytes accumulated since the last sync barrier; their
     transfer time is charged at the barrier. *)
  let pending_noc_bytes = ref 0.0 and pending_hops = ref 0.0 in
  (* Decomposed pieces of one tDFG node touch disjoint tiles and execute
     concurrently on their own SRAM arrays: consecutive commands with the
     same label and kind charge their occupancy once (dispatch still paid
     per command). *)
  let last : (string * Command.kind) option ref = ref None in
  let occupancy_of (c : Command.t) =
    let key = (c.Command.label, c.kind) in
    if !last = Some key then 0.0
    else begin
      last := Some key;
      float_of_int (Command.array_cycles c)
      *. cfg.Machine_config.imc_cycle_multiplier *. waves_of c
    end
  in
  let flush_pending () =
    if !pending_noc_bytes > 0.0 then begin
      let avg_hops =
        if !pending_noc_bytes > 0.0 then !pending_hops /. !pending_noc_bytes
        else 1.0
      in
      move :=
        !move
        +. Traffic.bulk_cycles_in traffic ~detail:"imc-barrier"
             ~bytes:!pending_noc_bytes ~avg_hops;
      if Trace.enabled trace then
        Trace.emit trace
          (Trace.Noc_packet
             {
               dir = Trace.Deliver;
               category = Traffic.category_name Traffic.Inter_tile;
               bytes = !pending_noc_bytes;
               hops = avg_hops;
               packets = 0.0;
             });
      pending_noc_bytes := 0.0;
      pending_hops := 0.0
    end
  in
  let faults = Traffic.faults_of traffic in
  let faulted = ref false in
  let executed = ref 0 in
  let do_cmd (c : Command.t) =
      incr executed;
      let tiles = float_of_int (Command.tiles_touched c) in
      let lanes = float_of_int c.lanes_per_tile in
      let bytes_per_tile = lanes *. float_of_int (Dtype.bytes c.dtype) in
      let full_occupancy = float_of_int (Command.array_cycles c) in
      let occupancy = occupancy_of c in
      if Trace.enabled trace then
        Trace.emit trace
          (Trace.Sram_cmd
             {
               phase = Trace.Issue;
               kind = kind_name c.kind;
               label = c.Command.label;
               tiles = Command.tiles_touched c;
               lanes = c.lanes_per_tile;
               cycles = 0.0;
             });
      let move0 = !move and comp0 = !comp and sync0 = !sync in
      (match c.kind with
      | Command.Sync ->
        flush_pending ();
        (* barrier: two rounds of control messages across the mesh *)
        sync := !sync +. (2.0 *. diameter) +. dispatch;
        if Trace.enabled trace then
          Trace.emit trace
            (Trace.Sync_barrier { cycles = (2.0 *. diameter) +. dispatch });
        if Metrics.enabled metrics then
          Metrics.Sim.sync_barrier metrics ~cycles:((2.0 *. diameter) +. dispatch);
        let banks = float_of_int cfg.Machine_config.l3_banks in
        Traffic.add traffic Traffic.Offload
          ~bytes:(banks *. 16.0)
          ~hops:(Machine_config.avg_hops cfg)
      | Command.Compute { const_operands; _ } ->
        comp := !comp +. occupancy +. dispatch;
        sram := !sram +. (tiles *. full_occupancy);
        elems := !elems +. (tiles *. lanes);
        if const_operands > 0 then
          Traffic.add_local traffic `Htree
            ~bytes:(float_of_int const_operands *. tiles *. bytes_per_tile)
      | Command.Reduce _ ->
        comp := !comp +. occupancy +. dispatch;
        sram := !sram +. (tiles *. full_occupancy);
        elems := !elems +. (tiles *. lanes);
        Traffic.add_local traffic `Intra_tile ~bytes:(tiles *. bytes_per_tile)
      | Command.Intra_shift _ ->
        move := !move +. occupancy +. dispatch;
        sram := !sram +. (tiles *. full_occupancy);
        Traffic.add_local traffic `Intra_tile ~bytes:(tiles *. bytes_per_tile)
      | Command.Inter_shift { dim; tile_dist; _ } ->
        move := !move +. occupancy +. dispatch;
        sram := !sram +. (tiles *. full_occupancy);
        let delta_linear = tile_dist * grid_stride layout dim in
        let banks = cfg.Machine_config.l3_banks in
        let delta_bank = ((delta_linear mod banks) + banks) mod banks in
        let bytes = tiles *. bytes_per_tile in
        if delta_bank = 0 then begin
          (* stays within each bank: buffered H-tree *)
          Traffic.add_local traffic `Htree ~bytes;
          let per_bank = bytes /. float_of_int banks in
          move :=
            !move +. (per_bank /. float_of_int cfg.htree_bytes_per_cycle)
        end
        else begin
          let hops = shift_hops cfg delta_bank in
          Traffic.add traffic Traffic.Inter_tile ~bytes ~hops;
          pending_noc_bytes := !pending_noc_bytes +. bytes;
          pending_hops := !pending_hops +. (bytes *. hops)
        end
      | Command.Broadcast { dim; copies } ->
        move := !move +. occupancy +. dispatch;
        let dest_tiles = tiles in
        let src_tiles = Float.max 1.0 (tiles /. float_of_int (max 1 copies)) in
        sram := !sram +. (src_tiles *. full_occupancy);
        let src_bytes = src_tiles *. bytes_per_tile in
        let dest_bytes = dest_tiles *. bytes_per_tile in
        (* Which banks receive copies? Walk the bank shift pattern of the
           broadcast dimension: multicast injects each source packet once
           and the tree replicates it. *)
        let stride = grid_stride layout dim in
        let banks = cfg.Machine_config.l3_banks in
        let dest_banks =
          let distinct = Hashtbl.create 16 in
          let copies = max 1 copies in
          for k = 0 to min (copies - 1) (banks - 1) do
            Hashtbl.replace distinct (k * stride mod banks) ()
          done;
          float_of_int (Hashtbl.length distinct)
        in
        (* multicast: the NoC carries each source packet once (replicated
           at the routers); banks then fan the data out to their tiles over
           the buffered H-tree *)
        Traffic.add traffic Traffic.Inter_tile ~bytes:src_bytes ~hops:dest_banks;
        Traffic.add_local traffic `Htree ~bytes:dest_bytes;
        let eject =
          src_bytes /. float_of_int (banks * cfg.Machine_config.noc_link_bytes)
        in
        let htree =
          dest_bytes /. float_of_int banks
          /. float_of_int cfg.htree_bytes_per_cycle
        in
        move := !move +. Float.max eject htree);
      if Trace.enabled trace then
        Trace.emit trace
          (Trace.Sram_cmd
             {
               phase = Trace.Retire;
               kind = kind_name c.kind;
               label = c.Command.label;
               tiles = Command.tiles_touched c;
               lanes = c.lanes_per_tile;
               cycles =
                 !move -. move0 +. (!comp -. comp0) +. (!sync -. sync0);
             });
      if Metrics.enabled metrics then
        Metrics.Sim.sram_cmd metrics ~banks:cfg.Machine_config.l3_banks
          ~kind:(kind_name c.kind) ~label:c.Command.label
          ~tiles:(Command.tiles_touched c)
          ~cycles:(!move -. move0 +. (!comp -. comp0) +. (!sync -. sync0))
  in
  (* One flip draw per command, scaled by its bit-serial exposure. A flip
     corrupts the command's result: the tensor controllers detect it (the
     accumulated parity check fails at the next barrier) and abort the
     region — remaining commands never issue; the cycles already spent are
     wasted and accounted by the caller. *)
  let rec go = function
    | [] -> ()
    | c :: rest ->
      do_cmd c;
      (match faults with
      | Some fi when Fault.sram_flip fi ~exposure:(Command.fault_exposure c) ->
        faulted := true;
        if Trace.enabled trace then
          Trace.emit trace
            (Trace.Fault
               {
                 site = "sram";
                 action = "inject";
                 detail = kind_name c.kind ^ ":" ^ c.Command.label;
                 cycles = 0.0;
               });
        if Metrics.enabled metrics then
          Metrics.Sim.fault metrics ~site:"sram" ~action:"inject" ~cycles:0.0
      | _ -> ());
      if not !faulted then go rest
  in
  go cmds;
  flush_pending ();
  {
    move_cycles = !move;
    compute_cycles = !comp;
    sync_cycles = !sync;
    sram_array_cycles = !sram;
    commands = !executed;
    elements_computed = !elems;
    faulted = !faulted;
  }

(* Span at region granularity, not per command: the command loop is the
   hot path the profiler exists to measure, so instrumenting inside it
   would distort exactly what we are trying to observe. *)
let execute cfg traffic ~layout cmds =
  Prof.span (Traffic.prof_of traffic) "imc.execute" (fun () ->
      execute_sim cfg traffic ~layout cmds)
