type layout_view = { grid : int array; tile : int array }

type result = {
  move_cycles : float;
  compute_cycles : float;
  sync_cycles : float;
  sram_array_cycles : float;
  commands : int;
  elements_computed : float;
  faulted : bool;
}

let grid_stride layout dim =
  let n = Array.length layout.grid in
  let s = ref 1 in
  for d = dim + 1 to n - 1 do
    s := !s * layout.grid.(d)
  done;
  !s

let tile_linear layout coords =
  let n = Array.length layout.grid in
  let idx = ref 0 in
  for d = 0 to n - 1 do
    idx := (!idx * layout.grid.(d)) + coords.(d)
  done;
  !idx

let tile_bank cfg layout coords =
  tile_linear layout coords mod cfg.Machine_config.l3_banks

(* Mean hop distance for a uniform bank shift of [delta] (mod banks). *)
let shift_hops cfg delta =
  let banks = cfg.Machine_config.l3_banks in
  let total = ref 0 in
  for b = 0 to banks - 1 do
    total := !total + Machine_config.hops cfg b ((b + delta) mod banks)
  done;
  float_of_int !total /. float_of_int banks

let kind_name = function
  | Command.Sync -> "sync"
  | Command.Compute _ -> "compute"
  | Command.Reduce _ -> "reduce"
  | Command.Intra_shift _ -> "intra-shift"
  | Command.Inter_shift _ -> "inter-shift"
  | Command.Broadcast _ -> "broadcast"

(* Per-domain cache of config-derived movement costs: the mean hop count
   of a uniform bank shift is O(banks) to derive and the destination-bank
   count of a broadcast walks the multicast pattern — both are pure in
   (cfg, delta) / (cfg, stride, copies), so they are computed once per
   machine config and reused across every region execution on the domain.
   The cache keys on physical equality of the config record (one engine
   run always threads one record; a new/perturbed config rebuilds). *)
type cfg_cache = {
  cc_cfg : Machine_config.t;
  cc_shift_hops : float array; (* delta in [0,banks) -> mean hops; nan unset *)
  cc_bc_banks : (int, float) Hashtbl.t; (* (stride, copies) -> distinct banks *)
  cc_scratch : bool array; (* banks-sized mark buffer, cleared after use *)
}

let cache_key : cfg_cache option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let cfg_cache cfg =
  let slot = Domain.DLS.get cache_key in
  match !slot with
  | Some c when c.cc_cfg == cfg -> c
  | _ ->
    let banks = cfg.Machine_config.l3_banks in
    let c =
      {
        cc_cfg = cfg;
        cc_shift_hops = Array.make banks Float.nan;
        cc_bc_banks = Hashtbl.create 32;
        cc_scratch = Array.make banks false;
      }
    in
    slot := Some c;
    c

let shift_hops_cached cache delta =
  let h = cache.cc_shift_hops.(delta) in
  if Float.is_nan h then begin
    let v = shift_hops cache.cc_cfg delta in
    cache.cc_shift_hops.(delta) <- v;
    v
  end
  else h

(* Which banks receive copies of a broadcast? Walk the bank shift pattern
   of the broadcast dimension: multicast injects each source packet once
   and the tree replicates it. *)
let dest_banks_compute cache ~stride ~copies =
  let banks = cache.cc_cfg.Machine_config.l3_banks in
  let scratch = cache.cc_scratch in
  let count = ref 0 in
  let last = min (copies - 1) (banks - 1) in
  for k = 0 to last do
    let b = k * stride mod banks in
    if not scratch.(b) then begin
      scratch.(b) <- true;
      incr count
    end
  done;
  for k = 0 to last do
    scratch.(k * stride mod banks) <- false
  done;
  float_of_int !count

let dest_banks_cached cache ~stride ~copies =
  let copies = max 1 copies in
  if copies < 0x100000 then begin
    let key = (stride lsl 20) lor copies in
    match Hashtbl.find_opt cache.cc_bc_banks key with
    | Some v -> v
    | None ->
      let v = dest_banks_compute cache ~stride ~copies in
      Hashtbl.replace cache.cc_bc_banks key v;
      v
  end
  else dest_banks_compute cache ~stride ~copies

(* Cycle accumulators as one mutable all-float record: the fields stay
   unboxed under mutation, where a bank of [float ref]s would box every
   update on the inner loop. *)
type acc = {
  mutable move : float;
  mutable comp : float;
  mutable sync : float;
  mutable sram : float;
  mutable elems : float;
  (* Inter-tile NoC bytes accumulated since the last sync barrier; their
     transfer time is charged at the barrier. *)
  mutable pending_noc_bytes : float;
  mutable pending_hops : float;
}

let execute_sim cfg traffic ~layout (cmds : Command.t array) =
  let trace = Traffic.trace_of traffic in
  let metrics = Traffic.metrics_of traffic in
  (* instrumentation guards hoisted out of the command loop: one bool each,
     read once per region *)
  let trace_on = Trace.enabled trace in
  let metrics_on = Metrics.enabled metrics in
  let cache = cfg_cache cfg in
  let a =
    {
      move = 0.0;
      comp = 0.0;
      sync = 0.0;
      sram = 0.0;
      elems = 0.0;
      pending_noc_bytes = 0.0;
      pending_hops = 0.0;
    }
  in
  let dispatch = float_of_int cfg.Machine_config.cmd_dispatch_cycles in
  let total_arrays = Machine_config.total_compute_arrays cfg in
  let diameter =
    float_of_int
      ((cfg.Machine_config.mesh_x + cfg.mesh_y - 2) * cfg.noc_router_cycles)
  in
  (* Decomposed pieces of one tDFG node touch disjoint tiles and execute
     concurrently on their own SRAM arrays: consecutive commands with the
     same label and kind charge their occupancy once (dispatch still paid
     per command). Tracked in two flat refs — no tuple/option per command. *)
  let last_valid = ref false in
  let last_label = ref "" in
  let last_kind = ref Command.Sync in
  let flush_pending () =
    if a.pending_noc_bytes > 0.0 then begin
      let avg_hops =
        if a.pending_noc_bytes > 0.0 then a.pending_hops /. a.pending_noc_bytes
        else 1.0
      in
      a.move <-
        a.move
        +. Traffic.bulk_cycles_in traffic ~detail:"imc-barrier"
             ~bytes:a.pending_noc_bytes ~avg_hops;
      if trace_on then
        Trace.emit trace
          (Trace.Noc_packet
             {
               dir = Trace.Deliver;
               category = Traffic.category_name Traffic.Inter_tile;
               bytes = a.pending_noc_bytes;
               hops = avg_hops;
               packets = 0.0;
             });
      a.pending_noc_bytes <- 0.0;
      a.pending_hops <- 0.0
    end
  in
  let faults = Traffic.faults_of traffic in
  let faulted = ref false in
  let executed = ref 0 in
  let do_cmd (c : Command.t) ~array_cycles:ac =
    incr executed;
    let tiles_i = Command.tiles_touched c in
    (* Regions larger than the physical compute arrays execute in waves
       over the tile space; each command's occupancy repeats per wave. *)
    let waves =
      float_of_int ((tiles_i + total_arrays - 1) / max 1 total_arrays)
    in
    let tiles = float_of_int tiles_i in
    let lanes = float_of_int c.Command.lanes_per_tile in
    let bytes_per_tile = lanes *. float_of_int (Dtype.bytes c.dtype) in
    let full_occupancy = float_of_int ac in
    let occupancy =
      if
        !last_valid
        && (c.Command.label == !last_label
           || String.equal c.Command.label !last_label)
        && Command.kind_equal c.Command.kind !last_kind
      then 0.0
      else begin
        last_valid := true;
        last_label := c.Command.label;
        last_kind := c.Command.kind;
        full_occupancy *. cfg.Machine_config.imc_cycle_multiplier *. waves
      end
    in
    if trace_on then
      Trace.emit trace
        (Trace.Sram_cmd
           {
             phase = Trace.Issue;
             kind = kind_name c.kind;
             label = c.Command.label;
             tiles = tiles_i;
             lanes = c.lanes_per_tile;
             cycles = 0.0;
           });
    let move0 = a.move and comp0 = a.comp and sync0 = a.sync in
    (match c.kind with
    | Command.Sync ->
      flush_pending ();
      (* barrier: two rounds of control messages across the mesh *)
      a.sync <- a.sync +. (2.0 *. diameter) +. dispatch;
      if trace_on then
        Trace.emit trace
          (Trace.Sync_barrier { cycles = (2.0 *. diameter) +. dispatch });
      if metrics_on then
        Metrics.Sim.sync_barrier metrics ~cycles:((2.0 *. diameter) +. dispatch);
      let banks = float_of_int cfg.Machine_config.l3_banks in
      Traffic.add traffic Traffic.Offload
        ~bytes:(banks *. 16.0)
        ~hops:(Machine_config.avg_hops cfg)
    | Command.Compute { const_operands; _ } ->
      a.comp <- a.comp +. occupancy +. dispatch;
      a.sram <- a.sram +. (tiles *. full_occupancy);
      a.elems <- a.elems +. (tiles *. lanes);
      if const_operands > 0 then
        Traffic.add_local traffic `Htree
          ~bytes:(float_of_int const_operands *. tiles *. bytes_per_tile)
    | Command.Reduce _ ->
      a.comp <- a.comp +. occupancy +. dispatch;
      a.sram <- a.sram +. (tiles *. full_occupancy);
      a.elems <- a.elems +. (tiles *. lanes);
      Traffic.add_local traffic `Intra_tile ~bytes:(tiles *. bytes_per_tile)
    | Command.Intra_shift _ ->
      a.move <- a.move +. occupancy +. dispatch;
      a.sram <- a.sram +. (tiles *. full_occupancy);
      Traffic.add_local traffic `Intra_tile ~bytes:(tiles *. bytes_per_tile)
    | Command.Inter_shift { dim; tile_dist; _ } ->
      a.move <- a.move +. occupancy +. dispatch;
      a.sram <- a.sram +. (tiles *. full_occupancy);
      let delta_linear = tile_dist * grid_stride layout dim in
      let banks = cfg.Machine_config.l3_banks in
      let delta_bank = ((delta_linear mod banks) + banks) mod banks in
      let bytes = tiles *. bytes_per_tile in
      if delta_bank = 0 then begin
        (* stays within each bank: buffered H-tree *)
        Traffic.add_local traffic `Htree ~bytes;
        let per_bank = bytes /. float_of_int banks in
        a.move <- a.move +. (per_bank /. float_of_int cfg.htree_bytes_per_cycle)
      end
      else begin
        let hops = shift_hops_cached cache delta_bank in
        Traffic.add traffic Traffic.Inter_tile ~bytes ~hops;
        a.pending_noc_bytes <- a.pending_noc_bytes +. bytes;
        a.pending_hops <- a.pending_hops +. (bytes *. hops)
      end
    | Command.Broadcast { dim; copies } ->
      a.move <- a.move +. occupancy +. dispatch;
      let dest_tiles = tiles in
      let src_tiles = Float.max 1.0 (tiles /. float_of_int (max 1 copies)) in
      a.sram <- a.sram +. (src_tiles *. full_occupancy);
      let src_bytes = src_tiles *. bytes_per_tile in
      let dest_bytes = dest_tiles *. bytes_per_tile in
      let stride = grid_stride layout dim in
      let banks = cfg.Machine_config.l3_banks in
      let dest_banks = dest_banks_cached cache ~stride ~copies in
      (* multicast: the NoC carries each source packet once (replicated
         at the routers); banks then fan the data out to their tiles over
         the buffered H-tree *)
      Traffic.add traffic Traffic.Inter_tile ~bytes:src_bytes ~hops:dest_banks;
      Traffic.add_local traffic `Htree ~bytes:dest_bytes;
      let eject =
        src_bytes /. float_of_int (banks * cfg.Machine_config.noc_link_bytes)
      in
      let htree =
        dest_bytes /. float_of_int banks
        /. float_of_int cfg.htree_bytes_per_cycle
      in
      a.move <- a.move +. Float.max eject htree);
    if trace_on then
      Trace.emit trace
        (Trace.Sram_cmd
           {
             phase = Trace.Retire;
             kind = kind_name c.kind;
             label = c.Command.label;
             tiles = tiles_i;
             lanes = c.lanes_per_tile;
             cycles = a.move -. move0 +. (a.comp -. comp0) +. (a.sync -. sync0);
           });
    if metrics_on then
      Metrics.Sim.sram_cmd metrics ~banks:cfg.Machine_config.l3_banks
        ~kind:(kind_name c.kind) ~label:c.Command.label ~tiles:tiles_i
        ~cycles:(a.move -. move0 +. (a.comp -. comp0) +. (a.sync -. sync0))
  in
  (* One flip draw per command, scaled by its bit-serial exposure. A flip
     corrupts the command's result: the tensor controllers detect it (the
     accumulated parity check fails at the next barrier) and abort the
     region — remaining commands never issue; the cycles already spent are
     wasted and accounted by the caller. *)
  let n = Array.length cmds in
  let memo = Costmemo.local () in
  let i = ref 0 in
  while !i < n && not !faulted do
    let c = Array.unsafe_get cmds !i in
    let ac = Costmemo.array_cycles_local memo c in
    do_cmd c ~array_cycles:ac;
    (match faults with
    | Some fi when Fault.sram_flip fi ~exposure:ac ->
      faulted := true;
      if trace_on then
        Trace.emit trace
          (Trace.Fault
             {
               site = "sram";
               action = "inject";
               detail = kind_name c.kind ^ ":" ^ c.Command.label;
               cycles = 0.0;
             });
      if metrics_on then
        Metrics.Sim.fault metrics ~site:"sram" ~action:"inject" ~cycles:0.0
    | _ -> ());
    incr i
  done;
  Costmemo.flush memo;
  flush_pending ();
  {
    move_cycles = a.move;
    compute_cycles = a.comp;
    sync_cycles = a.sync;
    sram_array_cycles = a.sram;
    commands = !executed;
    elements_computed = a.elems;
    faulted = !faulted;
  }

(* Span at region granularity, not per command: the command loop is the
   hot path the profiler exists to measure, so instrumenting inside it
   would distort exactly what we are trying to observe. *)
let execute cfg traffic ~layout cmds =
  Prof.span (Traffic.prof_of traffic) "imc.execute" (fun () ->
      execute_sim cfg traffic ~layout cmds)
