(** Concrete (resolved) working-set summary of one kernel invocation.

    Bridges the compiler's symbolic {!Kernel_info} analysis and the
    performance engines: iteration counts, per-stream access and distinct
    byte counts under the current parameter environment. *)

type stream = {
  array : string;
  direction : Kernel_info.direction;
  indirect : bool;
  elem_bytes : float;
  accesses : float;  (** total element accesses over the whole invocation *)
  distinct_bytes : float;  (** size of the region actually touched *)
}

type t = {
  name : string;
  iters : float;
  flops_per_iter : float;  (** arithmetic ops per iteration *)
  flops : float;
  streams : stream array;
  has_indirect : bool;
}

val resolve :
  Kernel_info.t -> env:(string -> int) -> arrays:(string * int list) list -> t

val read_bytes : t -> float
(** Distinct bytes of all read / read-write streams. *)

val write_bytes : t -> float
val touched_bytes : t -> float

val reuse_factor : stream -> float
(** accesses x elem_bytes / distinct_bytes (>= 1 for non-degenerate). *)
