(** DRAM channel and tensor-transpose-unit (TTU) timing. *)

val load_cycles : Machine_config.t -> bytes:float -> float
(** Bandwidth-limited bulk transfer over all memory controllers. *)

val transpose_cycles : Machine_config.t -> bytes:float -> float
(** TTU occupancy to convert [bytes] between normal and transposed layout;
    all banks transpose their resident lines in parallel, pipelined with the
    fill (callers take [max] with the DRAM time, paper §5.2). *)

val load_traced :
  ?metrics:Metrics.t ->
  ?prof:Prof.t ->
  ?faults:Fault.injector ->
  Trace.t ->
  Machine_config.t ->
  bytes:float ->
  float
(** {!load_cycles}, additionally emitting a [Dram_burst] trace event when
    [bytes > 0] and the context is enabled, and recording burst/channel
    metrics on [metrics] (default disabled). [prof] records a
    ["dram.load"] span leaf under the same [bytes > 0] guard as the trace
    event, so span counts reconcile with burst counts. With [faults],
    each burst draws a channel-stall fault adding [dram_stall_cycles]
    (emitted as a [fault] event). *)

val transpose_traced :
  ?metrics:Metrics.t ->
  ?prof:Prof.t ->
  ?faults:Fault.injector ->
  Trace.t ->
  Machine_config.t ->
  bytes:float ->
  float
(** {!transpose_cycles} with a [Ttu_transpose] trace event, TTU metrics
    and a ["dram.transpose"] span leaf; stall faults as in
    {!load_traced}. *)

val fill_transposed_cycles : Machine_config.t -> bytes:float -> resident:bool -> float
(** Cycles to prepare [bytes] of data in transposed layout: a DRAM fetch
    (unless already [resident] in L3) overlapped with TTU transposition. *)
