type stream = {
  array : string;
  direction : Kernel_info.direction;
  indirect : bool;
  elem_bytes : float;
  accesses : float;
  distinct_bytes : float;
}

type t = {
  name : string;
  iters : float;
  flops_per_iter : float;
  flops : float;
  streams : stream array;
  has_indirect : bool;
}

let resolve (info : Kernel_info.t) ~env ~arrays =
  let iters = float_of_int (Kernel_info.iterations info env) in
  (* Built through a doubling push (Vec) rather than list-map-then-convert:
     the engine resolves one workset per kernel invocation, so the builder
     is on the dispatch hot path. *)
  let sv = Vec.create () in
  List.iter
    (fun (s : Kernel_info.stream) ->
      let distinct =
        float_of_int (Kernel_info.stream_distinct_elems s env ~arrays)
        *. float_of_int s.elem_bytes
      in
      Vec.push sv
        {
          array = s.array;
          direction = s.direction;
          indirect = s.indirect;
          elem_bytes = float_of_int s.elem_bytes;
          accesses = iters *. float_of_int s.accesses_per_iter;
          distinct_bytes = distinct;
        })
    info.streams;
  {
    name = info.kname;
    iters;
    flops_per_iter = float_of_int info.flops_per_iter;
    flops = iters *. float_of_int info.flops_per_iter;
    streams = Vec.to_array sv;
    has_indirect = info.has_indirect;
  }

let read_bytes t =
  Array.fold_left
    (fun acc s ->
      match s.direction with
      | Kernel_info.Read | Kernel_info.Read_write -> acc +. s.distinct_bytes
      | Kernel_info.Write -> acc)
    0.0 t.streams

let write_bytes t =
  Array.fold_left
    (fun acc s ->
      match s.direction with
      | Kernel_info.Write | Kernel_info.Read_write -> acc +. s.distinct_bytes
      | Kernel_info.Read -> acc)
    0.0 t.streams

let touched_bytes t =
  Array.fold_left (fun acc s -> acc +. s.distinct_bytes) 0.0 t.streams

let reuse_factor s =
  if s.distinct_bytes <= 0.0 then 1.0
  else Float.max 1.0 (s.accesses *. s.elem_bytes /. s.distinct_bytes)
