type result = { cycles : float; dram_cycles : float; watchdog : bool }

let stream_setup_cycles cfg ~streams =
  float_of_int
    (cfg.Machine_config.sel3_init_cycles * streams * cfg.Machine_config.l3_banks
    / max 1 (cfg.Machine_config.l3_banks / 4))

let run_sim cfg traffic (w : Workset.t) ~cold_bytes =
  let banks = float_of_int cfg.Machine_config.l3_banks in
  let avg_hops = Machine_config.avg_hops cfg in
  (* Near-memory compute throughput: SEL3-coordinated SIMD at each bank. *)
  let compute =
    w.flops /. (banks *. cfg.Machine_config.sel3_flops_per_cycle)
  in
  (* Operand delivery is coupled to the bank's SRAM bandwidth: every access
     reads/writes the bank (the SEL3 buffers hold stream FIFOs, not a
     cache), so high-reuse dataflows such as the inner product are starved
     here even though their distinct footprint is small — the paper's
     Fig. 15 Near-L3 behaviour. *)
  let accessed_bytes =
    Array.fold_left
      (fun acc (s : Workset.stream) -> acc +. (s.accesses *. s.elem_bytes))
      0.0 w.streams
  in
  let local_mem =
    accessed_bytes
    /. (banks *. float_of_int cfg.Machine_config.l3_bank_bytes_per_cycle)
  in
  (* Reuse that near-memory cannot capture: when a small region (a row, a
     weight table, a centroid set) is re-referenced from every bank,
     near-memory re-fetches it across the NoC each time — this is why
     Near-L3 loses on kmeans in the paper. Window-style reuse over a large
     region (stencil neighbours) stays bank-local and is already covered by
     [local_mem]. Indirect accesses are remote with high probability. *)
  let remote_frac = (banks -. 1.0) /. banks in
  (* A reused operand small enough for the 64kB SEL3 buffer is held there
     (how NSC "partially recognizes the broadcast pattern" for the outer
     product, §8); a broadcast table too big for the buffer but far smaller
     than the distributed working set is re-fetched across the NoC (the
     kmeans centroids); window or matrix-sized reuse re-streams from the
     local bank, already covered by [local_mem]. *)
  let buffer_bytes = float_of_int (cfg.Machine_config.sel3_buffer_kb * 1024) in
  let broadcast_threshold = 4.0e6 in
  let reuse_noc_bytes =
    Array.fold_left
      (fun acc (s : Workset.stream) ->
        let total = s.accesses *. s.elem_bytes in
        let extra = Float.max 0.0 (total -. s.distinct_bytes) in
        if s.indirect then acc +. (total *. remote_frac)
        else if
          Workset.reuse_factor s > 4.0
          && s.distinct_bytes > buffer_bytes
          && s.distinct_bytes < broadcast_threshold
        then acc +. (extra *. remote_frac)
        else acc)
      0.0 w.streams
  in
  if reuse_noc_bytes > 0.0 then
    Traffic.add traffic Traffic.Data ~bytes:reuse_noc_bytes ~hops:avg_hops;
  let reuse_noc =
    Traffic.bulk_cycles_in traffic ~detail:"near-reuse" ~bytes:reuse_noc_bytes
      ~avg_hops
  in
  (* Offload management: stream configuration plus flow-control messages
     every 16 cache lines between SEcore and SEL3. *)
  let setup = stream_setup_cycles cfg ~streams:(Array.length w.streams) in
  let lines = Workset.touched_bytes w /. float_of_int cfg.Machine_config.line_bytes in
  let flow_msgs = lines /. 16.0 in
  Traffic.add traffic Traffic.Offload
    ~bytes:((flow_msgs *. 8.0) +. (float_of_int (Array.length w.streams) *. 64.0))
    ~hops:avg_hops;
  let metrics = Traffic.metrics_of traffic in
  let faults = Traffic.faults_of traffic in
  let dram =
    Dram.load_traced ~metrics ~prof:(Traffic.prof_of traffic) ?faults
      (Traffic.trace_of traffic) cfg ~bytes:cold_bytes
  in
  let busy = Float.max compute (Float.max local_mem reuse_noc) in
  (* Stall breakdown: which resource bounds the stream engines. These are
     live-only gauges (no corresponding trace event — the event stream is
     byte-pinned by golden tests), so trace replay intentionally omits
     them. *)
  if Metrics.enabled metrics then begin
    List.iter
      (fun (part, v) ->
        Metrics.gauge_add metrics ~labels:[ ("part", part) ] "near.cycles" v)
      [
        ("compute", compute);
        ("bank-bw", local_mem);
        ("noc-reuse", reuse_noc);
        ("setup", setup);
        ("dram", dram);
      ];
    let cause =
      if compute >= local_mem && compute >= reuse_noc then "compute"
      else if local_mem >= reuse_noc then "bank-bw"
      else "noc-reuse"
    in
    Metrics.incr metrics ~labels:[ ("cause", cause) ] "near.bound" 1.0
  end;
  (* Watchdog: one draw per offload attempt. A hung stream engine is
     detected after the attempt's full window — the caller wastes these
     cycles and retries (or falls back to core execution, which never
     faults, guaranteeing termination). *)
  let watchdog =
    match faults with
    | None -> false
    | Some fi ->
      let hung = Fault.watchdog_timeout fi in
      if hung then begin
        let trace = Traffic.trace_of traffic in
        if Trace.enabled trace then
          Trace.emit trace
            (Trace.Fault
               { site = "watchdog"; action = "inject"; detail = "near-stream";
                 cycles = 0.0 });
        if Metrics.enabled metrics then
          Metrics.Sim.fault metrics ~site:"watchdog" ~action:"inject"
            ~cycles:0.0
      end;
      hung
  in
  { cycles = busy +. setup +. dram; dram_cycles = dram; watchdog }

let run cfg traffic (w : Workset.t) ~cold_bytes =
  Prof.span (Traffic.prof_of traffic) "near.run" (fun () ->
      run_sim cfg traffic w ~cold_bytes)
