let load_cycles cfg ~bytes =
  if bytes <= 0.0 then 0.0
  else bytes /. Machine_config.dram_bytes_per_cycle cfg

let transpose_cycles cfg ~bytes =
  if bytes <= 0.0 then 0.0
  else begin
    let lines = bytes /. float_of_int cfg.Machine_config.line_bytes in
    let per_bank = lines /. float_of_int cfg.l3_banks in
    per_bank *. float_of_int Bitserial.transpose_cycles_per_line
  end

(* A seeded channel-stall fault adds a fixed penalty to one burst; the
   penalty is emitted as a fault event so analyze can attribute it. *)
let stall_penalty ?faults trace metrics ~bytes =
  match faults with
  | None -> 0.0
  | Some fi ->
    if bytes <= 0.0 then 0.0
    else begin
      let stall = Fault.dram_stall_cycles fi in
      if stall > 0.0 then begin
        if Trace.enabled trace then
          Trace.emit trace
            (Trace.Fault
               { site = "dram"; action = "inject"; detail = "channel-stall";
                 cycles = stall });
        if Metrics.enabled metrics then
          Metrics.Sim.fault metrics ~site:"dram" ~action:"inject" ~cycles:stall
      end;
      stall
    end

let load_traced ?(metrics = Metrics.null) ?(prof = Prof.null) ?faults trace
    cfg ~bytes =
  let t0 = if Prof.enabled prof then Prof.now_ns () else 0.0 in
  let cycles = load_cycles cfg ~bytes in
  if bytes > 0.0 && Trace.enabled trace then
    Trace.emit trace (Trace.Dram_burst { bytes; cycles });
  if bytes > 0.0 && Metrics.enabled metrics then
    Metrics.Sim.dram_burst metrics ~channels:cfg.Machine_config.mem_ctrls ~bytes
      ~cycles;
  let r = cycles +. stall_penalty ?faults trace metrics ~bytes in
  (* recorded under the same [bytes > 0] guard as the [Dram_burst] event,
     so the span count reconciles with the trace's burst count *)
  if bytes > 0.0 && Prof.enabled prof then
    Prof.record prof "dram.load" ~ns:(Prof.now_ns () -. t0);
  r

let transpose_traced ?(metrics = Metrics.null) ?(prof = Prof.null) ?faults
    trace cfg ~bytes =
  let t0 = if Prof.enabled prof then Prof.now_ns () else 0.0 in
  let cycles = transpose_cycles cfg ~bytes in
  if bytes > 0.0 && Trace.enabled trace then
    Trace.emit trace (Trace.Ttu_transpose { bytes; cycles });
  if bytes > 0.0 && Metrics.enabled metrics then
    Metrics.Sim.ttu metrics ~bytes ~cycles;
  let r = cycles +. stall_penalty ?faults trace metrics ~bytes in
  if bytes > 0.0 && Prof.enabled prof then
    Prof.record prof "dram.transpose" ~ns:(Prof.now_ns () -. t0);
  r

let fill_transposed_cycles cfg ~bytes ~resident =
  let fetch = if resident then 0.0 else load_cycles cfg ~bytes in
  (* L3-internal move of resident lines to the compute ways *)
  let internal =
    bytes
    /. float_of_int (cfg.Machine_config.l3_banks * cfg.htree_bytes_per_cycle)
  in
  Float.max (Float.max fetch internal) (transpose_cycles cfg ~bytes)
