type category = Control | Data | Offload | Inter_tile

let category_name = function
  | Control -> "control"
  | Data -> "data"
  | Offload -> "offload"
  | Inter_tile -> "inter-tile"

type bucket = { mutable bytes : float; mutable byte_hops : float; mutable packets : float }

type t = {
  cfg : Machine_config.t;
  trace : Trace.t;
  metrics : Metrics.t;
  prof : Prof.t;
  faults : Fault.injector option;
  control : bucket;
  data : bucket;
  offload : bucket;
  inter_tile : bucket;
  mutable intra_tile_bytes : float;
  mutable htree_bytes : float;
}

let fresh_bucket () = { bytes = 0.0; byte_hops = 0.0; packets = 0.0 }

let create ?(trace = Trace.null) ?(metrics = Metrics.null)
    ?(prof = Prof.null) ?faults cfg =
  {
    cfg;
    trace;
    metrics;
    prof;
    faults;
    control = fresh_bucket ();
    data = fresh_bucket ();
    offload = fresh_bucket ();
    inter_tile = fresh_bucket ();
    intra_tile_bytes = 0.0;
    htree_bytes = 0.0;
  }

let trace_of t = t.trace
let metrics_of t = t.metrics
let prof_of t = t.prof
let faults_of t = t.faults

let reset t =
  List.iter
    (fun b ->
      b.bytes <- 0.0;
      b.byte_hops <- 0.0;
      b.packets <- 0.0)
    [ t.control; t.data; t.offload; t.inter_tile ];
  t.intra_tile_bytes <- 0.0;
  t.htree_bytes <- 0.0

let bucket t = function
  | Control -> t.control
  | Data -> t.data
  | Offload -> t.offload
  | Inter_tile -> t.inter_tile

let add t cat ~bytes ~hops =
  let b = bucket t cat in
  let packets = Float.max 1.0 (bytes /. float_of_int t.cfg.noc_link_bytes) in
  b.bytes <- b.bytes +. bytes;
  b.byte_hops <- b.byte_hops +. (bytes *. hops);
  b.packets <- b.packets +. packets;
  if Trace.enabled t.trace then
    Trace.emit t.trace
      (Trace.Noc_packet
         { dir = Trace.Send; category = category_name cat; bytes; hops; packets });
  if Metrics.enabled t.metrics then
    Metrics.Sim.noc_packet t.metrics ~mx:t.cfg.Machine_config.mesh_x
      ~my:t.cfg.mesh_y ~cat:(category_name cat) ~bytes ~hops ~packets

let add_local t which ~bytes =
  (match which with
  | `Intra_tile -> t.intra_tile_bytes <- t.intra_tile_bytes +. bytes
  | `Htree -> t.htree_bytes <- t.htree_bytes +. bytes);
  if Trace.enabled t.trace then
    Trace.emit t.trace
      (Trace.Local_move
         {
           channel = (match which with `Intra_tile -> "intra-tile" | `Htree -> "htree");
           bytes;
         });
  if Metrics.enabled t.metrics then
    Metrics.Sim.local_move t.metrics
      ~channel:(match which with `Intra_tile -> "intra-tile" | `Htree -> "htree")
      ~bytes

let bytes t cat = (bucket t cat).bytes
let byte_hops t cat = (bucket t cat).byte_hops
let packets t cat = (bucket t cat).packets

let local_bytes t = function
  | `Intra_tile -> t.intra_tile_bytes
  | `Htree -> t.htree_bytes

let total_bytes t =
  t.control.bytes +. t.data.bytes +. t.offload.bytes +. t.inter_tile.bytes

let total_byte_hops t =
  t.control.byte_hops +. t.data.byte_hops +. t.offload.byte_hops
  +. t.inter_tile.byte_hops

let utilization t ~cycles =
  if cycles <= 0.0 then 0.0
  else
    let capacity =
      float_of_int (Machine_config.noc_links t.cfg)
      *. float_of_int t.cfg.noc_link_bytes *. cycles
    in
    total_byte_hops t /. capacity

let bulk_cycles cfg ~bytes ~avg_hops =
  if bytes <= 0.0 then 0.0
  else begin
    (* endpoint serialization: traffic spread over all banks, each bank
       injecting/ejecting one link's width per cycle *)
    let endpoint =
      bytes /. float_of_int (cfg.Machine_config.l3_banks * cfg.noc_link_bytes)
    in
    (* bisection: every byte crosses ~avg_hops/diameter of the bisection *)
    let cross_fraction =
      Float.min 1.0
        (avg_hops /. float_of_int (cfg.Machine_config.mesh_x + cfg.mesh_y))
    in
    let bisection =
      bytes *. cross_fraction /. Machine_config.bisection_bytes_per_cycle cfg
    in
    let latency = avg_hops *. float_of_int cfg.noc_router_cycles in
    Float.max endpoint bisection +. latency
  end

(* Instance variant of [bulk_cycles]: when an injector is attached, each
   bulk transfer draws a link-degradation fault. A degraded transfer takes
   [jitter]x its nominal cycles; the extra latency is emitted as a fault
   event so analyze can attribute it. The [detail] string names the call
   site (deterministic, scheduling-independent). *)
let bulk_cycles_in t ~detail ~bytes ~avg_hops =
  let t0 = if Prof.enabled t.prof then Prof.now_ns () else 0.0 in
  let base = bulk_cycles t.cfg ~bytes ~avg_hops in
  let cycles =
    match t.faults with
    | None -> base
    | Some fi ->
      if bytes <= 0.0 then base
      else begin
        let factor = Fault.noc_factor fi in
        if factor > 1.0 then begin
          let extra = base *. (factor -. 1.0) in
          if Trace.enabled t.trace then
            Trace.emit t.trace
              (Trace.Fault
                 { site = "noc"; action = "inject"; detail; cycles = extra });
          if Metrics.enabled t.metrics then
            Metrics.Sim.fault t.metrics ~site:"noc" ~action:"inject"
              ~cycles:extra;
          base +. extra
        end
        else base
      end
  in
  if Prof.enabled t.prof then
    Prof.record t.prof "noc.bulk" ~ns:(Prof.now_ns () -. t0);
  cycles

let merge_into ~dst src =
  List.iter2
    (fun d s ->
      d.bytes <- d.bytes +. s.bytes;
      d.byte_hops <- d.byte_hops +. s.byte_hops;
      d.packets <- d.packets +. s.packets)
    [ dst.control; dst.data; dst.offload; dst.inter_tile ]
    [ src.control; src.data; src.offload; src.inter_tile ];
  dst.intra_tile_bytes <- dst.intra_tile_bytes +. src.intra_tile_bytes;
  dst.htree_bytes <- dst.htree_bytes +. src.htree_bytes

let pp ppf t =
  Format.fprintf ppf
    "@[<v>traffic (byte-hops): control=%.3e data=%.3e offload=%.3e inter-tile=%.3e; local: intra=%.3e htree=%.3e@]"
    t.control.byte_hops t.data.byte_hops t.offload.byte_hops
    t.inter_tile.byte_hops t.intra_tile_bytes t.htree_bytes
