(** Memoized {!Command.array_cycles} for the sim hot loop.

    The bit-serial occupancy of a command depends only on (kind tag,
    opcode, dtype, width parameter) — the memo packs that tuple into one
    int key and caches the cost in a per-domain table, so the inner
    command loop stops re-deriving reduce-round costs per command. The
    returned value is exactly [Command.array_cycles c]; the reference
    implementation stays the oracle in differential tests.

    Process-global hit/miss counters (atomic, summed over all domains)
    feed the `sim.costmemo.{hit,miss}` line and the >90% hit-rate
    assertion in `bench --smoke`. They are intentionally not trace events
    or metric series: both of those surfaces are pinned byte-for-byte by
    golden tests that predate the memo. *)

val array_cycles : Command.t -> int
(** Memoized [Command.array_cycles]; [Sync] returns 0 without touching
    the table or the counters. *)

val hits : unit -> int
val misses : unit -> int

val hit_rate : unit -> float
(** hits / (hits + misses), 0.0 before any lookup. *)

val reset : unit -> unit
(** Zero both counters (the memo tables themselves stay warm). *)

(** {1 Batched lookups}

    The command loop fetches the per-domain table once per region and
    accumulates hit/miss counts locally; {!flush} folds them into the
    global atomics. Totals after a flush equal what the per-call
    {!array_cycles} path would have produced. *)

type local

val local : unit -> local
(** Bind the current domain's table. Do not share across domains. *)

val array_cycles_local : local -> Command.t -> int
val flush : local -> unit
