(** Labeled metrics: counters, gauges and log2-bucketed histograms.

    Zero third-party dependencies (stdlib + [infs_util] only). Mirrors the
    design of {!Trace.t}: {!null} is a permanently disabled registry, every
    hot call site guards on {!enabled} (one bool test), and a disabled
    registry performs no allocation or hashing — the bench asserts the
    overhead of the disabled guards stays under 2% of a smoke run.

    Series are keyed by (metric name, sorted label set). Updates are not
    thread-safe: a registry belongs to one domain (batch jobs each create
    their own, like trace sinks).

    Determinism: {!snapshot} is sorted by (name, labels); float
    accumulations happen in call order, so a metric that mirrors a
    simulator accumulator (e.g. [noc.byte_hops{cat}] vs. [Traffic]) is
    bit-identical to it, and replaying a JSONL trace through {!Sim}
    reproduces the live registry exactly. *)

type t

val null : t
(** Disabled registry: every operation is a no-op. *)

val create : unit -> t

val enabled : t -> bool

val calls : t -> int
(** Number of instrumentation calls applied ([incr]/[gauge_add]/[observe]/
    [Sim.*] each count once, whatever fan-out they perform internally).
    Used by the bench to bound the disabled-guard overhead. *)

(** {1 Updates} — all no-ops on {!null}. [labels] default to []. *)

val incr : t -> ?labels:(string * string) list -> string -> float -> unit
(** Add to a (monotone) counter. *)

val gauge_add : t -> ?labels:(string * string) list -> string -> float -> unit
(** Add to a gauge (a non-monotone accumulator, e.g. per-link load). *)

val observe : t -> ?labels:(string * string) list -> string -> float -> unit
(** Record a sample into a histogram with power-of-two bucket boundaries:
    a sample [v > 0] lands in the bucket [(2^(e-1), 2^e]] with the smallest
    such [e]; [v <= 0] lands in a dedicated zero bucket. The running [sum]
    accumulates samples in call order (exact reconciliation). *)

val value : t -> ?labels:(string * string) list -> string -> float
(** Current value of a counter/gauge series; 0 if absent or disabled. *)

(** {1 Snapshots} *)

type kind = Counter | Gauge | Histogram

type hist = {
  count : int;  (** total observations, zero bucket included *)
  sum : float;
  buckets : (float * int) list;
      (** (inclusive upper bound, non-cumulative count), ascending; a
          leading [(0.0, n)] entry is the zero bucket *)
}

type sample = Value of float | Dist of hist

type series = {
  name : string;
  labels : (string * string) list;  (** sorted by label key *)
  kind : kind;
  sample : sample;
}

val snapshot : t -> series list
(** All series sorted by (name, labels); [] on {!null}. *)

val hist_quantile : hist -> float -> float
(** [hist_quantile h q]: the [q]-quantile estimated by linear interpolation
    inside the covering bucket; 0 on an empty histogram. *)

val to_json : series list -> Json.t
(** [{"schema":"infs-metrics-1","series":[...]}] — counters/gauges carry
    ["value"], histograms ["count"]/["sum"]/["buckets"] (pairs of
    [[upper_bound, count]]). *)

val to_prom : series list -> string
(** Prometheus text exposition: names are prefixed [infs_] and sanitized,
    counters get a [_total] suffix, histograms render cumulative [le]
    buckets plus [+Inf], [_sum] and [_count]. *)

val write_file : t -> string -> unit
(** Write a snapshot to [path]; format chosen by extension ([.prom] →
    Prometheus text, anything else → JSON). No-op on {!null}. *)

(** {1 Event-shaped instrumentation}

    One function per trace-event shape, shared verbatim between the live
    simulator call sites and the offline trace replayer ({!Trace_replay})
    so both produce identical registries. Mesh/bank geometry is passed as
    plain ints to keep this library independent of [infs_sim]. *)
module Sim : sig
  val noc_packet :
    t ->
    mx:int ->
    my:int ->
    cat:string ->
    bytes:float ->
    hops:float ->
    packets:float ->
    unit
  (** Per-category [noc.bytes]/[noc.byte_hops]/[noc.packets] counters
      (mirroring [Traffic] buckets exactly), a [noc.packet_bytes{cat}]
      size histogram, and per-link [noc.link.byte_hops{link}] gauges: the
      packet's byte-hops are spread over the [mx]×[my] mesh links in
      proportion to static XY-routing traversal weights (uniform
      bank-to-bank pairs), labeling links ["sx,sy>dx,dy"]. *)

  val local_move : t -> channel:string -> bytes:float -> unit

  val sram_cmd :
    t ->
    banks:int ->
    kind:string ->
    label:string ->
    tiles:int ->
    cycles:float ->
    unit
  (** Retired bit-serial command: [sram.commands{kind}] counter,
      [imc.cmd_cycles{kind}] latency histogram, and per-bank
      [imc.bank.busy_cycles{bank}] occupancy over [min tiles banks]
      banks starting at a deterministic label-derived offset. *)

  val sync_barrier : t -> cycles:float -> unit
  val dram_burst : t -> channels:int -> bytes:float -> cycles:float -> unit
  val ttu : t -> bytes:float -> cycles:float -> unit
  val jit_exit : t -> commands:int -> cycles:float -> unit
  val memo : t -> hit:bool -> unit
  val decision : t -> target:string -> unit
  val region_exec : t -> kernel:string -> where:string -> cycles:float -> unit

  val fault : t -> site:string -> action:string -> cycles:float -> unit
  (** One fault event: [fault{site,action}] counter plus, when
      [cycles > 0], a [fault.cycles{site}] counter attributing simulated
      cycles lost to the fault (stall penalties, wasted attempts). *)

  val cycles : t -> cat:string -> float -> unit
  (** One breakdown charge: observed into the [cycles{cat}] histogram whose
      per-category sums reconcile with [Report.breakdown] at 0.0
      tolerance. *)

  val counter : t -> name:string -> value:float -> unit
  (** A raw trace counter event: [cycles.<cat>] routes to {!cycles}, any
      other name increments a plain counter of that name. *)
end
