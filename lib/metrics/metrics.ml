type kind = Counter | Gauge | Histogram

(* One series. Scalar kinds use [v]; histograms use [count]/[sum]/[zero]
   and the exponent-indexed bucket table. *)
type cell = {
  c_name : string;
  c_labels : (string * string) list; (* sorted by key *)
  c_kind : kind;
  mutable v : float;
  mutable count : int;
  mutable sum : float;
  mutable zero : int;
  bkts : (int, int ref) Hashtbl.t; (* exponent e -> samples in (2^(e-1), 2^e] *)
}

(* Static XY-routing link profile of an mx*my mesh, with the per-link gauge
   cells pre-resolved so the per-packet fan-out is a float add per link. *)
type mesh = {
  m_mx : int;
  m_my : int;
  weights : float array;
  wtotal : float;
  link_cells : cell array;
}

type reg = {
  cells : (string, cell) Hashtbl.t;
  mutable ncalls : int;
  mutable mesh : mesh option;
  mutable bank_cells : cell array; (* [||] until first sram_cmd *)
}

type t = reg option

let null = None
let create () =
  Some { cells = Hashtbl.create 64; ncalls = 0; mesh = None; bank_cells = [||] }

let enabled = function None -> false | Some _ -> true
let calls = function None -> 0 | Some r -> r.ncalls

(* ----- series lookup ----- *)

let sort_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let key name labels =
  match labels with
  | [] -> name
  | _ ->
    let b = Buffer.create 48 in
    Buffer.add_string b name;
    List.iter
      (fun (k, v) ->
        Buffer.add_char b '\x00';
        Buffer.add_string b k;
        Buffer.add_char b '\x01';
        Buffer.add_string b v)
      labels;
    Buffer.contents b

let get_cell r kind name labels =
  let labels = sort_labels labels in
  let k = key name labels in
  match Hashtbl.find_opt r.cells k with
  | Some c -> c
  | None ->
    let c =
      {
        c_name = name;
        c_labels = labels;
        c_kind = kind;
        v = 0.0;
        count = 0;
        sum = 0.0;
        zero = 0;
        bkts = (match kind with Histogram -> Hashtbl.create 8 | _ -> Hashtbl.create 1);
      }
    in
    Hashtbl.add r.cells k c;
    c

let cell_add c x = c.v <- c.v +. x

(* Smallest e with v <= 2^e (so v lands in (2^(e-1), 2^e]), clamped to keep
   the series bounded. *)
let bucket_exp v =
  let m, e = Float.frexp v in
  let e = if m = 0.5 then e - 1 else e in
  if e < -64 then -64 else if e > 128 then 128 else e

let cell_observe c x =
  c.count <- c.count + 1;
  c.sum <- c.sum +. x;
  if x <= 0.0 then c.zero <- c.zero + 1
  else begin
    let e = bucket_exp x in
    match Hashtbl.find_opt c.bkts e with
    | Some n -> incr n
    | None -> Hashtbl.add c.bkts e (ref 1)
  end

(* ----- public updates ----- *)

let incr t ?(labels = []) name x =
  match t with
  | None -> ()
  | Some r ->
    r.ncalls <- r.ncalls + 1;
    cell_add (get_cell r Counter name labels) x

let gauge_add t ?(labels = []) name x =
  match t with
  | None -> ()
  | Some r ->
    r.ncalls <- r.ncalls + 1;
    cell_add (get_cell r Gauge name labels) x

let observe t ?(labels = []) name x =
  match t with
  | None -> ()
  | Some r ->
    r.ncalls <- r.ncalls + 1;
    cell_observe (get_cell r Histogram name labels) x

let value t ?(labels = []) name =
  match t with
  | None -> 0.0
  | Some r -> (
    match Hashtbl.find_opt r.cells (key name (sort_labels labels)) with
    | Some c -> c.v
    | None -> 0.0)

(* ----- snapshots ----- *)

type hist = { count : int; sum : float; buckets : (float * int) list }
type sample = Value of float | Dist of hist

type series = {
  name : string;
  labels : (string * string) list;
  kind : kind;
  sample : sample;
}

let snapshot t =
  match t with
  | None -> []
  | Some r ->
    Hashtbl.fold
      (fun _ c acc ->
        let sample =
          match c.c_kind with
          | Counter | Gauge -> Value c.v
          | Histogram ->
            let exps =
              Hashtbl.fold (fun e n acc -> (e, !n) :: acc) c.bkts []
              |> List.sort (fun (a, _) (b, _) -> compare a b)
            in
            let buckets =
              (if c.zero > 0 then [ (0.0, c.zero) ] else [])
              @ List.map (fun (e, n) -> (Float.ldexp 1.0 e, n)) exps
            in
            Dist { count = c.count; sum = c.sum; buckets }
        in
        { name = c.c_name; labels = c.c_labels; kind = c.c_kind; sample } :: acc)
      r.cells []
    |> List.sort (fun a b ->
           match String.compare a.name b.name with
           | 0 -> compare a.labels b.labels
           | c -> c)

let hist_quantile h q =
  if h.count = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let target = q *. float_of_int h.count in
    let rec go lo cum = function
      | [] -> lo
      | (ub, n) :: rest ->
        let cum' = cum +. float_of_int n in
        if n > 0 && cum' >= target then
          lo +. ((ub -. lo) *. ((target -. cum) /. float_of_int n))
        else go ub cum' rest
    in
    go 0.0 0.0 h.buckets
  end

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let to_json series =
  Json.Obj
    [
      ("schema", Json.Str "infs-metrics-1");
      ( "series",
        Json.Arr
          (List.map
             (fun s ->
               let base =
                 [
                   ("name", Json.Str s.name);
                   ( "labels",
                     Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.labels)
                   );
                   ("kind", Json.Str (kind_name s.kind));
                 ]
               in
               let rest =
                 match s.sample with
                 | Value v -> [ ("value", Json.Num v) ]
                 | Dist h ->
                   [
                     ("count", Json.Num (float_of_int h.count));
                     ("sum", Json.Num h.sum);
                     ( "buckets",
                       Json.Arr
                         (List.map
                            (fun (ub, n) ->
                              Json.Arr [ Json.Num ub; Json.Num (float_of_int n) ])
                            h.buckets) );
                   ]
               in
               Json.Obj (base @ rest))
             series) );
    ]

(* ----- Prometheus text exposition ----- *)

let prom_name s =
  let b = Buffer.create (String.length s + 5) in
  Buffer.add_string b "infs_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    s;
  Buffer.contents b

let prom_label_value s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels ?extra labels =
  let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_label_value v))
           labels)
    ^ "}"

let to_prom series =
  let b = Buffer.create 1024 in
  let last_typed = ref "" in
  List.iter
    (fun s ->
      let pname = prom_name s.name in
      if !last_typed <> pname then begin
        last_typed := pname;
        Printf.bprintf b "# TYPE %s %s\n" pname (kind_name s.kind)
      end;
      match s.sample with
      | Value v ->
        let suffix = match s.kind with Counter -> "_total" | _ -> "" in
        Printf.bprintf b "%s%s%s %s\n" pname suffix (prom_labels s.labels)
          (Json.fmt_float v)
      | Dist h ->
        let cum = ref 0 in
        List.iter
          (fun (ub, n) ->
            cum := !cum + n;
            Printf.bprintf b "%s_bucket%s %d\n" pname
              (prom_labels ~extra:("le", Json.fmt_float ub) s.labels)
              !cum)
          h.buckets;
        Printf.bprintf b "%s_bucket%s %d\n" pname
          (prom_labels ~extra:("le", "+Inf") s.labels)
          h.count;
        Printf.bprintf b "%s_sum%s %s\n" pname (prom_labels s.labels)
          (Json.fmt_float h.sum);
        Printf.bprintf b "%s_count%s %d\n" pname (prom_labels s.labels) h.count)
    series;
  Buffer.contents b

let write_file t path =
  match t with
  | None -> ()
  | Some _ ->
    let snap = snapshot t in
    let body =
      if Filename.check_suffix path ".prom" then to_prom snap
      else Json.to_string (to_json snap) ^ "\n"
    in
    let oc = open_out path in
    output_string oc body;
    close_out oc

(* ----- mesh link profile ----- *)

(* Directed links of an mx*my mesh, enumerated deterministically; per-link
   traversal counts of XY routing summed over all ordered (src, dst) router
   pairs. Byte-hops of a packet are spread proportional to these weights
   (the simulator models bulk transfers between uniformly spread banks, so
   the static profile is the exact expected distribution). *)
let build_mesh r ~mx ~my =
  let idx : (int * int * int * int, int) Hashtbl.t = Hashtbl.create 512 in
  let names = ref [] in
  let n_links = ref 0 in
  let add_link sx sy dx dy =
    if not (Hashtbl.mem idx (sx, sy, dx, dy)) then begin
      Hashtbl.add idx (sx, sy, dx, dy) !n_links;
      names := Printf.sprintf "%d,%d>%d,%d" sx sy dx dy :: !names;
      n_links := !n_links + 1
    end
  in
  for y = 0 to my - 1 do
    for x = 0 to mx - 1 do
      if x + 1 < mx then begin
        add_link x y (x + 1) y;
        add_link (x + 1) y x y
      end;
      if y + 1 < my then begin
        add_link x y x (y + 1);
        add_link x (y + 1) x y
      end
    done
  done;
  let counts = Array.make (max 1 !n_links) 0 in
  let bump sx sy dx dy =
    let i = Hashtbl.find idx (sx, sy, dx, dy) in
    counts.(i) <- counts.(i) + 1
  in
  let routers = mx * my in
  for s = 0 to routers - 1 do
    for d = 0 to routers - 1 do
      if s <> d then begin
        let sx = s mod mx and sy = s / mx in
        let dx = d mod mx and dy = d / mx in
        let x = ref sx in
        while !x <> dx do
          let nx = if dx > !x then !x + 1 else !x - 1 in
          bump !x sy nx sy;
          x := nx
        done;
        let y = ref sy in
        while !y <> dy do
          let ny = if dy > !y then !y + 1 else !y - 1 in
          bump dx !y dx ny;
          y := ny
        done
      end
    done
  done;
  let names = Array.of_list (List.rev !names) in
  let weights = Array.map float_of_int (Array.sub counts 0 (max 0 !n_links)) in
  let wtotal = Array.fold_left ( +. ) 0.0 weights in
  let link_cells =
    Array.map
      (fun name -> get_cell r Gauge "noc.link.byte_hops" [ ("link", name) ])
      names
  in
  { m_mx = mx; m_my = my; weights; wtotal; link_cells }

let mesh_of r ~mx ~my =
  match r.mesh with
  | Some m when m.m_mx = mx && m.m_my = my -> m
  | _ ->
    let m = build_mesh r ~mx ~my in
    r.mesh <- Some m;
    m

let bank_cells_of r ~banks =
  if Array.length r.bank_cells = banks then r.bank_cells
  else begin
    let cells =
      Array.init banks (fun i ->
          get_cell r Gauge "imc.bank.busy_cycles"
            [ ("bank", Printf.sprintf "%02d" i) ])
    in
    r.bank_cells <- cells;
    cells
  end

let label_offset label =
  String.fold_left (fun acc c -> acc + Char.code c) 0 label

(* ----- event-shaped instrumentation ----- *)

module Sim = struct
  let noc_packet t ~mx ~my ~cat ~bytes ~hops ~packets =
    match t with
    | None -> ()
    | Some r ->
      r.ncalls <- r.ncalls + 1;
      let labels = [ ("cat", cat) ] in
      (* identical accumulation expressions, in identical order, to the
         Traffic buckets — byte/byte-hop totals are bit-equal to Report *)
      cell_add (get_cell r Counter "noc.bytes" labels) bytes;
      cell_add (get_cell r Counter "noc.byte_hops" labels) (bytes *. hops);
      cell_add (get_cell r Counter "noc.packets" labels) packets;
      cell_observe (get_cell r Histogram "noc.packet_bytes" labels) bytes;
      let m = mesh_of r ~mx ~my in
      if m.wtotal > 0.0 then begin
        let bh = bytes *. hops in
        Array.iteri
          (fun i c -> cell_add c (bh *. m.weights.(i) /. m.wtotal))
          m.link_cells
      end

  let local_move t ~channel ~bytes =
    match t with
    | None -> ()
    | Some r ->
      r.ncalls <- r.ncalls + 1;
      cell_add (get_cell r Counter "local.bytes" [ ("channel", channel) ]) bytes

  let sram_cmd t ~banks ~kind ~label ~tiles ~cycles =
    match t with
    | None -> ()
    | Some r ->
      r.ncalls <- r.ncalls + 1;
      let labels = [ ("kind", kind) ] in
      cell_add (get_cell r Counter "sram.commands" labels) 1.0;
      cell_observe (get_cell r Histogram "imc.cmd_cycles" labels) cycles;
      if banks > 0 then begin
        let cells = bank_cells_of r ~banks in
        let n = max 1 (min tiles banks) in
        let start = label_offset label mod banks in
        for i = 0 to n - 1 do
          cell_add cells.((start + i) mod banks) cycles
        done
      end

  let sync_barrier t ~cycles =
    match t with
    | None -> ()
    | Some r ->
      r.ncalls <- r.ncalls + 1;
      cell_add (get_cell r Counter "sync.barriers" []) 1.0;
      cell_add (get_cell r Counter "sync.cycles" []) cycles

  let dram_burst t ~channels ~bytes ~cycles =
    match t with
    | None -> ()
    | Some r ->
      r.ncalls <- r.ncalls + 1;
      let bursts = get_cell r Counter "dram.bursts" [] in
      let seq = int_of_float bursts.v in
      cell_add bursts 1.0;
      cell_add (get_cell r Counter "dram.bytes" []) bytes;
      cell_add (get_cell r Counter "dram.busy_cycles" []) cycles;
      cell_observe (get_cell r Histogram "dram.burst_bytes" []) bytes;
      if channels > 0 then
        (* round-robin channel interleave in burst order — deterministic
           and reproducible from the event stream alone *)
        cell_add
          (get_cell r Gauge "dram.channel.bytes"
             [ ("ch", Printf.sprintf "%02d" (seq mod channels)) ])
          bytes

  let ttu t ~bytes ~cycles =
    match t with
    | None -> ()
    | Some r ->
      r.ncalls <- r.ncalls + 1;
      cell_add (get_cell r Counter "ttu.bytes" []) bytes;
      cell_add (get_cell r Counter "ttu.cycles" []) cycles;
      cell_observe (get_cell r Histogram "ttu.transpose_bytes" []) bytes

  let jit_exit t ~commands ~cycles =
    match t with
    | None -> ()
    | Some r ->
      r.ncalls <- r.ncalls + 1;
      cell_add (get_cell r Counter "jit.lowerings" []) 1.0;
      cell_add (get_cell r Counter "jit.commands" []) (float_of_int commands);
      cell_observe (get_cell r Histogram "jit.lower_cycles" []) cycles

  let memo t ~hit =
    match t with
    | None -> ()
    | Some r ->
      r.ncalls <- r.ncalls + 1;
      cell_add
        (get_cell r Counter (if hit then "jit.memo_hits" else "jit.memo_misses") [])
        1.0

  let decision t ~target =
    match t with
    | None -> ()
    | Some r ->
      r.ncalls <- r.ncalls + 1;
      cell_add (get_cell r Counter "decision" [ ("target", target) ]) 1.0

  let fault t ~site ~action ~cycles =
    match t with
    | None -> ()
    | Some r ->
      r.ncalls <- r.ncalls + 1;
      cell_add
        (get_cell r Counter "fault" [ ("site", site); ("action", action) ])
        1.0;
      if cycles > 0.0 then
        cell_add (get_cell r Counter "fault.cycles" [ ("site", site) ]) cycles

  let region_exec t ~kernel ~where ~cycles =
    match t with
    | None -> ()
    | Some r ->
      r.ncalls <- r.ncalls + 1;
      cell_add (get_cell r Counter "regions" [ ("where", where) ]) 1.0;
      cell_add
        (get_cell r Gauge "region.cycles"
           [ ("kernel", kernel); ("where", where) ])
        cycles

  let cycles t ~cat x =
    match t with
    | None -> ()
    | Some r ->
      r.ncalls <- r.ncalls + 1;
      cell_observe (get_cell r Histogram "cycles" [ ("cat", cat) ]) x

  let counter t ~name ~value =
    match t with
    | None -> ()
    | Some r ->
      if String.length name > 7 && String.sub name 0 7 = "cycles." then
        cycles t ~cat:(String.sub name 7 (String.length name - 7)) value
      else begin
        r.ncalls <- r.ncalls + 1;
        cell_add (get_cell r Counter name []) value
      end
end
