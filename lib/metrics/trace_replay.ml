type region_rec = {
  mutable execs : int;
  mutable cycles : float;
  mutable cats : (string * float ref) list; (* first-charge order *)
}

(* per-request lifecycle stages from a serving-session trace, host us *)
type req_rec = { mutable qw : float; mutable run : float; mutable wb : float }

type t = {
  mx : int;
  my : int;
  banks : int;
  channels : int;
  m : Metrics.t;
  mutable n_events : int;
  mutable pending : (string * float ref) list; (* charges since last region *)
  regions : (string * string, region_rec) Hashtbl.t;
  mutable region_order : (string * string) list; (* reversed *)
  requests : (string, req_rec) Hashtbl.t;
  mutable request_order : string list; (* first-seen, reversed *)
}

let create ?(mesh_x = 8) ?(mesh_y = 8) ?(banks = 64) ?(channels = 16) () =
  {
    mx = mesh_x;
    my = mesh_y;
    banks;
    channels;
    m = Metrics.create ();
    n_events = 0;
    pending = [];
    regions = Hashtbl.create 16;
    region_order = [];
    requests = Hashtbl.create 16;
    request_order = [];
  }

let metrics t = t.m
let events t = t.n_events

(* ----- event parsing ----- *)

let str j k = Option.bind (Json.member k j) Json.to_str

(* The trace's own float printer predates Json's total printing and renders
   non-finite floats as quoted strings; accept both spellings. *)
let num j k =
  match Json.member k j with
  | Some (Json.Num f) -> f
  | Some (Json.Str "inf") -> infinity
  | Some (Json.Str "-inf") -> neg_infinity
  | Some (Json.Str "nan") -> nan
  | _ -> 0.0

let int_field j k = int_of_float (num j k)

let bool_field j k =
  match Option.bind (Json.member k j) Json.to_bool with
  | Some b -> b
  | None -> false

let pending_add t cat v =
  match List.assoc_opt cat t.pending with
  | Some r -> r := !r +. v
  | None -> t.pending <- t.pending @ [ (cat, ref v) ]

let fold_pending t ~kernel ~where ~cycles =
  let key = (kernel, where) in
  let reg =
    match Hashtbl.find_opt t.regions key with
    | Some r -> r
    | None ->
      let r = { execs = 0; cycles = 0.0; cats = [] } in
      Hashtbl.add t.regions key r;
      t.region_order <- key :: t.region_order;
      r
  in
  reg.execs <- reg.execs + 1;
  reg.cycles <- reg.cycles +. cycles;
  List.iter
    (fun (cat, v) ->
      match List.assoc_opt cat reg.cats with
      | Some r -> r := !r +. !v
      | None -> reg.cats <- reg.cats @ [ (cat, ref !v) ])
    t.pending;
  t.pending <- []

let apply t j =
  let ev = match str j "ev" with Some e -> e | None -> "" in
  match ev with
  | "summary" -> ()
  | "noc" ->
    t.n_events <- t.n_events + 1;
    if str j "dir" = Some "send" then
      Metrics.Sim.noc_packet t.m ~mx:t.mx ~my:t.my
        ~cat:(Option.value ~default:"" (str j "cat"))
        ~bytes:(num j "bytes") ~hops:(num j "hops") ~packets:(num j "packets")
  | "local" ->
    t.n_events <- t.n_events + 1;
    Metrics.Sim.local_move t.m
      ~channel:(Option.value ~default:"" (str j "channel"))
      ~bytes:(num j "bytes")
  | "sram" ->
    t.n_events <- t.n_events + 1;
    if str j "phase" = Some "retire" then
      Metrics.Sim.sram_cmd t.m ~banks:t.banks
        ~kind:(Option.value ~default:"" (str j "kind"))
        ~label:(Option.value ~default:"" (str j "label"))
        ~tiles:(int_field j "tiles") ~cycles:(num j "cycles")
  | "dram" ->
    t.n_events <- t.n_events + 1;
    Metrics.Sim.dram_burst t.m ~channels:t.channels ~bytes:(num j "bytes")
      ~cycles:(num j "cycles")
  | "ttu" ->
    t.n_events <- t.n_events + 1;
    Metrics.Sim.ttu t.m ~bytes:(num j "bytes") ~cycles:(num j "cycles")
  | "jit" ->
    t.n_events <- t.n_events + 1;
    if str j "dir" = Some "exit" then
      Metrics.Sim.jit_exit t.m ~commands:(int_field j "commands")
        ~cycles:(num j "cycles")
  | "memo" ->
    t.n_events <- t.n_events + 1;
    Metrics.Sim.memo t.m ~hit:(bool_field j "hit")
  | "decision" ->
    t.n_events <- t.n_events + 1;
    Metrics.Sim.decision t.m ~target:(Option.value ~default:"" (str j "target"))
  | "sync" ->
    t.n_events <- t.n_events + 1;
    Metrics.Sim.sync_barrier t.m ~cycles:(num j "cycles")
  | "region" ->
    t.n_events <- t.n_events + 1;
    let kernel = Option.value ~default:"" (str j "kernel") in
    let where = Option.value ~default:"" (str j "where") in
    let cycles = num j "cycles" in
    Metrics.Sim.region_exec t.m ~kernel ~where ~cycles;
    fold_pending t ~kernel ~where ~cycles
  | "fault" ->
    t.n_events <- t.n_events + 1;
    Metrics.Sim.fault t.m
      ~site:(Option.value ~default:"" (str j "site"))
      ~action:(Option.value ~default:"" (str j "action"))
      ~cycles:(num j "cycles")
  | "ctr" ->
    t.n_events <- t.n_events + 1;
    let name = Option.value ~default:"" (str j "k") in
    let value = num j "v" in
    Metrics.Sim.counter t.m ~name ~value;
    if String.length name > 7 && String.sub name 0 7 = "cycles." then
      pending_add t (String.sub name 7 (String.length name - 7)) value
  | "req" ->
    t.n_events <- t.n_events + 1;
    let request = Option.value ~default:"" (str j "request") in
    let stage = Option.value ~default:"" (str j "stage") in
    let us = num j "us" in
    (* mirror [Trace.record_metrics] so a replayed serving trace lands on
       the same derived counters as the live sink *)
    Metrics.Sim.counter t.m ~name:("serve.spans." ^ stage) ~value:1.0;
    Metrics.Sim.counter t.m ~name:("serve.span_us." ^ stage) ~value:us;
    let r =
      match Hashtbl.find_opt t.requests request with
      | Some r -> r
      | None ->
        let r = { qw = 0.0; run = 0.0; wb = 0.0 } in
        Hashtbl.add t.requests request r;
        t.request_order <- request :: t.request_order;
        r
    in
    (match stage with
    | "queue_wait" -> r.qw <- r.qw +. us
    | "run" -> r.run <- r.run +. us
    | "write_back" -> r.wb <- r.wb +. us
    | _ -> ())
  | _ -> () (* unknown event kind: skip (forward compatibility) *)

let feed_line t line =
  let line = String.trim line in
  if line = "" then Ok ()
  else
    match Json.parse line with
    | Error e -> Error e
    | Ok j ->
      apply t j;
      Ok ()

let feed_channel t ic =
  let lineno = ref 0 in
  let rec go () =
    match input_line ic with
    | exception End_of_file -> Ok t.n_events
    | line -> (
      incr lineno;
      match feed_line t line with
      | Ok () -> go ()
      | Error e -> Error (Printf.sprintf "line %d: %s" !lineno e))
  in
  go ()

(* ----- bottleneck report ----- *)

let fmt = Json.fmt_float
let pct part whole = Printf.sprintf "%.1f%%" (Stats.percent ~part ~whole)

(* value-descending, key-ascending on ties: a total order on the rows *)
let rank rows =
  List.sort
    (fun (ka, va) (kb, vb) ->
      match compare vb va with 0 -> String.compare ka kb | c -> c)
    rows

let scalar_rows snap name label_key =
  List.filter_map
    (fun (s : Metrics.series) ->
      if s.name <> name then None
      else
        match (s.sample, List.assoc_opt label_key s.labels) with
        | Metrics.Value v, Some l -> Some (l, v)
        | _ -> None)
    snap

let scalar0 snap name =
  match
    List.find_opt
      (fun (s : Metrics.series) -> s.name = name && s.labels = [])
      snap
  with
  | Some { sample = Metrics.Value v; _ } -> v
  | _ -> 0.0

let hist0 snap name labels =
  match
    List.find_opt
      (fun (s : Metrics.series) -> s.name = name && s.labels = labels)
      snap
  with
  | Some { sample = Metrics.Dist h; _ } -> Some h
  | _ -> None

let report ?(top = 8) t =
  let b = Buffer.create 4096 in
  let snap = Metrics.snapshot t.m in
  Printf.bprintf b "trace analysis: %d events\n" t.n_events;

  (* cycle breakdown *)
  let cats =
    List.filter_map
      (fun (s : Metrics.series) ->
        if s.name <> "cycles" then None
        else
          match (s.sample, List.assoc_opt "cat" s.labels) with
          | Metrics.Dist h, Some cat -> Some (cat, h)
          | _ -> None)
      snap
  in
  let total = List.fold_left (fun acc (_, h) -> acc +. h.Metrics.sum) 0.0 cats in
  Buffer.add_string b "\ncycle breakdown\n";
  List.iter
    (fun (cat, _) ->
      let h = List.assoc cat cats in
      Printf.bprintf b "  %-14s %14s  %6s  (%d charges)\n" cat
        (fmt h.Metrics.sum) (pct h.Metrics.sum total) h.Metrics.count)
    (rank (List.map (fun (c, h) -> (c, h.Metrics.sum)) cats));
  Printf.bprintf b "  %-14s %14s\n" "total" (fmt total);

  (* NoC: per-category + hottest links + heatmap *)
  let noc = scalar_rows snap "noc.byte_hops" "cat" in
  let noc_total = List.fold_left (fun a (_, v) -> a +. v) 0.0 noc in
  Buffer.add_string b "\nnoc byte-hops by category\n";
  List.iter
    (fun (cat, v) ->
      Printf.bprintf b "  %-14s %14s  %6s\n" cat (fmt v) (pct v noc_total))
    (rank noc);
  let links = scalar_rows snap "noc.link.byte_hops" "link" in
  let nonzero = List.length (List.filter (fun (_, v) -> v > 0.0) links) in
  Printf.bprintf b "\nhottest noc links (top %d of %d active)\n" top nonzero;
  List.iteri
    (fun i (l, v) ->
      if i < top && v > 0.0 then
        Printf.bprintf b "  %2d. %-12s %14s  %6s\n" (i + 1) l (fmt v)
          (pct v noc_total))
    (rank links);
  if links <> [] then begin
    (* router egress load: sum of byte-hops over links leaving each router *)
    let egress = Array.make_matrix t.my t.mx 0.0 in
    List.iter
      (fun (l, v) ->
        try
          Scanf.sscanf l "%d,%d>%d,%d" (fun sx sy _ _ ->
              if sx >= 0 && sx < t.mx && sy >= 0 && sy < t.my then
                egress.(sy).(sx) <- egress.(sy).(sx) +. v)
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> ())
      links;
    let peak = Array.fold_left (Array.fold_left Float.max) 0.0 egress in
    let shades = " .:-=+*#%@" in
    Printf.bprintf b "\nmesh heatmap (router egress, peak=%s byte-hops)\n"
      (fmt peak);
    for y = 0 to t.my - 1 do
      Buffer.add_string b "  ";
      for x = 0 to t.mx - 1 do
        let v = egress.(y).(x) in
        let level =
          if peak <= 0.0 then 0
          else max 0 (min 9 (int_of_float (v /. peak *. 9.0 +. 0.5)))
        in
        Buffer.add_char b shades.[level]
      done;
      Buffer.add_char b '\n'
    done
  end;

  (* SRAM banks *)
  let banks = scalar_rows snap "imc.bank.busy_cycles" "bank" in
  if banks <> [] then begin
    let btotal = List.fold_left (fun a (_, v) -> a +. v) 0.0 banks in
    Printf.bprintf b "\nbusiest sram banks (top %d of %d, busy cycles)\n" top
      (List.length banks);
    List.iteri
      (fun i (l, v) ->
        if i < top && v > 0.0 then
          Printf.bprintf b "  %2d. bank %-4s %14s  %6s\n" (i + 1) l (fmt v)
            (pct v btotal))
      (rank banks)
  end;
  (match hist0 snap "imc.cmd_cycles" [ ("kind", "compute") ] with
  | Some h ->
    Printf.bprintf b "  compute cmd latency: p50=%s p90=%s (%d cmds)\n"
      (fmt (Metrics.hist_quantile h 0.5))
      (fmt (Metrics.hist_quantile h 0.9))
      h.Metrics.count
  | None -> ());

  (* DRAM *)
  let dram_bytes = scalar0 snap "dram.bytes" in
  if dram_bytes > 0.0 then begin
    Printf.bprintf b "\ndram: %s bytes in %s bursts, %s busy cycles\n"
      (fmt dram_bytes)
      (fmt (scalar0 snap "dram.bursts"))
      (fmt (scalar0 snap "dram.busy_cycles"));
    (match hist0 snap "dram.burst_bytes" [] with
    | Some h ->
      Printf.bprintf b "  burst bytes: p50=%s p90=%s\n"
        (fmt (Metrics.hist_quantile h 0.5))
        (fmt (Metrics.hist_quantile h 0.9))
    | None -> ());
    let chans = scalar_rows snap "dram.channel.bytes" "ch" in
    match rank chans with
    | (hot, hv) :: _ ->
      Printf.bprintf b "  channels: %d active, hottest ch%s=%s (%s)\n"
        (List.length (List.filter (fun (_, v) -> v > 0.0) chans))
        hot (fmt hv) (pct hv dram_bytes)
    | [] -> ()
  end;

  (* JIT *)
  let lowerings = scalar0 snap "jit.lowerings" in
  let hits = scalar0 snap "jit.memo_hits" in
  let misses = scalar0 snap "jit.memo_misses" in
  if lowerings > 0.0 || hits > 0.0 || misses > 0.0 then begin
    Printf.bprintf b
      "\njit: %s lowerings, memo %s hits / %s misses (hit rate %s)\n"
      (fmt lowerings) (fmt hits) (fmt misses)
      (pct hits (hits +. misses));
    match hist0 snap "jit.lower_cycles" [] with
    | Some h ->
      Printf.bprintf b "  lowering cycles: p50=%s max<=%s\n"
        (fmt (Metrics.hist_quantile h 0.5))
        (fmt (Metrics.hist_quantile h 1.0))
    | None -> ()
  end;

  (* faults: only present when a run injected faults, so pre-existing
     traces keep their reports byte-identical *)
  let faults =
    List.filter_map
      (fun (s : Metrics.series) ->
        if s.name <> "fault" then None
        else
          match
            ( s.sample,
              List.assoc_opt "site" s.labels,
              List.assoc_opt "action" s.labels )
          with
          | Metrics.Value v, Some site, Some action ->
            Some (site ^ "/" ^ action, v)
          | _ -> None)
      snap
  in
  if faults <> [] then begin
    let fcycles = scalar_rows snap "fault.cycles" "site" in
    let lost = List.fold_left (fun a (_, v) -> a +. v) 0.0 fcycles in
    Printf.bprintf b "\nfaults (cycles lost to faults: %s, %s of total)\n"
      (fmt lost) (pct lost total);
    List.iter
      (fun (k, v) -> Printf.bprintf b "  %-22s %10s\n" k (fmt v))
      (rank faults);
    List.iter
      (fun (site, v) ->
        Printf.bprintf b "  cycles lost @ %-8s %14s  %6s\n" site (fmt v)
          (pct v total))
      (rank fcycles)
  end;

  (* per-region critical category *)
  let order = List.rev t.region_order in
  if order <> [] || t.pending <> [] then begin
    Buffer.add_string b "\nregions (critical category)\n";
    List.iter
      (fun key ->
        let kernel, where = key in
        let r = Hashtbl.find t.regions key in
        let crit =
          List.fold_left
            (fun acc (cat, v) ->
              match acc with
              | Some (_, bv) when bv >= !v -> acc
              | _ -> Some (cat, !v))
            None r.cats
        in
        let ctotal = List.fold_left (fun a (_, v) -> a +. !v) 0.0 r.cats in
        match crit with
        | Some (cat, v) ->
          Printf.bprintf b "  %-24s x%-3d %14s  critical: %s (%s)\n"
            (kernel ^ "@" ^ where) r.execs (fmt r.cycles) cat (pct v ctotal)
        | None ->
          Printf.bprintf b "  %-24s x%-3d %14s\n" (kernel ^ "@" ^ where)
            r.execs (fmt r.cycles))
      order;
    if t.pending <> [] then begin
      let ptotal = List.fold_left (fun a (_, v) -> a +. !v) 0.0 t.pending in
      let crit =
        List.fold_left
          (fun acc (cat, v) ->
            match acc with
            | Some (_, bv) when bv >= !v -> acc
            | _ -> Some (cat, !v))
          None t.pending
      in
      match crit with
      | Some (cat, v) ->
        Printf.bprintf b "  %-24s %18s  critical: %s (%s)\n" "(outside regions)"
          (fmt ptotal) cat (pct v ptotal)
      | None -> ()
    end
  end;

  (* serve requests: only present in serving-session traces, so
     simulator-run reports stay byte-identical *)
  if t.request_order <> [] then begin
    let reqs =
      List.rev_map
        (fun id ->
          let r = Hashtbl.find t.requests id in
          (id, r, r.qw +. r.run +. r.wb))
        t.request_order
    in
    let n = List.length reqs in
    let sum f = List.fold_left (fun a (_, r, _) -> a +. f r) 0.0 reqs in
    let qw = sum (fun r -> r.qw)
    and rn = sum (fun r -> r.run)
    and wb = sum (fun r -> r.wb) in
    let all = qw +. rn +. wb in
    Printf.bprintf b "\nserve requests (%d, queueing vs execution)\n" n;
    List.iter
      (fun (stage, v) ->
        Printf.bprintf b "  %-12s %14.1f us  %6s  (mean %.1f us)\n" stage v
          (pct v all)
          (v /. float_of_int (max 1 n)))
      [ ("queue_wait", qw); ("run", rn); ("write_back", wb) ];
    (* slowest requests, total-descending (id-ascending on ties) *)
    let ranked =
      List.sort
        (fun (ia, _, ta) (ib, _, tb) ->
          match compare tb ta with 0 -> String.compare ia ib | c -> c)
        reqs
    in
    Printf.bprintf b "  slowest requests (top %d)\n" (min top n);
    List.iteri
      (fun i (id, r, tot) ->
        if i < top then
          Printf.bprintf b "  %2d. id=%-12s %10.1f us  queue %s / run %s\n"
            (i + 1) id tot (pct r.qw tot) (pct r.run tot))
      ranked
  end;
  Buffer.contents b
