(** Offline replay of a JSONL trace (the [infs_trace] format) into a
    {!Metrics} registry, plus a deterministic bottleneck report.

    Replay applies the same event-shaped {!Metrics.Sim} functions the live
    simulator calls, in event order, so the resulting registry is
    bit-identical to the one a live run with metrics enabled would have
    produced (for every metric derivable from the event stream).

    Additionally attributes per-category cycle charges to the enclosing
    program region: [ctr cycles.<cat>] events accumulate into a pending
    set that each [region] event folds into its kernel (the engine charges
    before it emits the region event); charges after the last region land
    in an "(outside regions)" row. *)

type t

val create :
  ?mesh_x:int ->
  ?mesh_y:int ->
  ?banks:int ->
  ?channels:int ->
  unit ->
  t
(** Geometry used for per-link / per-bank / per-channel attribution;
    defaults (8, 8, 64, 16) match the paper's machine. *)

val metrics : t -> Metrics.t
(** The live registry being filled; enabled, owned by this replay. *)

val events : t -> int
(** Events applied so far (trace summary lines excluded). *)

val feed_line : t -> string -> (unit, string) result
(** Replay one JSONL line. Blank lines and the trailing summary line are
    ignored; unknown event kinds are skipped (forward compatibility);
    malformed JSON is an error. *)

val feed_channel : t -> in_channel -> (int, string) result
(** Replay a whole channel; [Ok n] is the number of events applied, errors
    are prefixed with the 1-based line number. *)

val report : ?top:int -> t -> string
(** Deterministic plain-text bottleneck attribution: cycle breakdown by
    category, top-[top] hottest NoC links with an ASCII mesh heatmap of
    router egress load, busiest SRAM banks, DRAM/JIT summaries and the
    per-region critical-category table. Byte-stable for a given trace
    (golden-tested).

    A serving-session trace (one carrying [Request_span] events)
    additionally gets a "serve requests" section attributing latency to
    queueing vs execution: per-stage totals over
    [queue_wait]/[run]/[write_back] and the top-[top] slowest requests by
    id with their queue/run split. Simulator-run traces have no such
    events, so their reports are unchanged. *)
