(** Sharded serving front tier ([infs_serve]).

    A front load-balances client connections over [N] shard processes,
    each a full {!Serve} instance with its own domain pool and warm
    compile cache, and exposes the same JSON-lines protocol on a
    Unix-domain socket and (optionally) a loopback TCP port.

    {2 Cache-affine routing}

    Requests are routed by a {e consistent hash} of their compile-cache
    key — the canonical JSON of the spec minus the envelope fields
    [id], [timeout_s], [tenant], [priority] and [ping] — over a ring
    with 64 virtual points per shard. Repeat submissions of the same
    program therefore land on the shard whose compile cache already
    holds its binary ([shard.route_hot]); a dead shard only moves its
    own arc of the keyspace ([shard.route_moved]), the rest of the ring
    is untouched.

    {2 Admission}

    On top of the per-shard queue-depth shedding, the front enforces its
    own bound of [queue_depth] in-flight requests, a per-tenant quota
    ([tenant_quota] concurrent requests per distinct ["tenant"] field),
    and a priority class: requests carrying ["priority":"low"] are shed
    once in-flight load crosses [low_watermark] of the queue depth,
    keeping headroom for normal-priority traffic. All sheds answer the
    structured [overloaded] response.

    {2 Crash resilience}

    A shard connection EOF (process crash) or a missed heartbeat (no
    pong for 3 heartbeat periods forces the connection shut) parks the
    shard's in-flight requests and {e re-dispatches} each to a healthy
    shard, at most [redispatch_max] times per request — exhaustion (or
    no healthy shard within [connect_timeout_s]) answers a structured
    [error] response, so no admitted request is ever silently dropped.
    The shard backend is respawned with capped full-jitter reconnect
    backoff ({!Pool.backoff_delay}). A re-dispatched request may execute
    twice; engine runs are pure, so the duplicate is wasted work, not a
    correctness hazard.

    {2 Byte identity}

    The front never reparses or reprints a shard response: responses are
    matched to requests purely by per-shard-connection FIFO order (valid
    because {!Serve} answers in request order per connection) and the
    raw line is forwarded verbatim, so reports served through the front
    are byte-identical to reports from a direct {!Serve} run.

    {2 Observability}

    Counters mirror the {!Serve} pattern — [shard.received],
    [shard.admitted], [shard.shed], [shard.shed_quota],
    [shard.shed_priority], [shard.bad_requests], [shard.pings],
    [shard.answered], [shard.route_hot], [shard.route_cold],
    [shard.route_moved], [shard.redispatched], [shard.lost],
    [shard.crashes], [shard.respawns], [shard.hb_sent], [shard.hb_pong],
    [shard.drained], [shard.connections], the [shard.inflight] gauge and
    the [shard.latency_us] histogram — each also emitted as a
    same-named {!Trace} [Counter] event, so a live trace replays into
    identical counters, and each answered request records a
    [shard;request;proxy] {!Prof} row. *)

type backend =
  | Proc of (int -> string -> string array)
      (** [argv_of shard_index socket_path]: the front spawns one child
          process per shard via {!Proc.spawn} (fork+exec — safe under
          OCaml 5 domains/threads) and respawns crashed ones with the
          same closure. The child must serve the JSON-lines protocol on
          [socket_path] (i.e. [infs_run serve --socket socket_path]). *)
  | Inproc of (Json.t -> (Json.t, string) result)
      (** each shard is an in-process {!Serve} instance over this
          handler — the unit-test backend (no child processes). *)

type config = {
  socket_path : string;  (** front Unix-domain socket *)
  tcp_port : int option;  (** also listen on loopback TCP *)
  shards : int;  (** shard count (clamped to >= 1) *)
  shard_socket : int -> string;
      (** per-shard Unix-socket path (default [socket_path ^ ".shard<i>"]) *)
  backend : backend;
  queue_depth : int;  (** front-level in-flight admission bound *)
  tenant_quota : int option;
      (** max concurrent in-flight requests per distinct ["tenant"]
          field; [None] = unlimited *)
  low_watermark : float;
      (** fraction of [queue_depth] above which ["priority":"low"]
          requests are shed (clamped to [0..1], default 0.5) *)
  redispatch_max : int;  (** re-dispatch budget per request *)
  heartbeat_s : float option;
      (** ping period per shard; a shard missing pongs for 3 periods is
          declared dead. [None] disables heartbeats (EOF detection still
          catches hard crashes). *)
  connect_timeout_s : float;
      (** budget for a (re)spawned shard to bind + accept, and for a
          parked request to find a healthy shard *)
  shard_jobs : int;  (** [Inproc] only: worker domains per shard *)
  shard_queue_depth : int;  (** [Inproc] only: per-shard admission bound *)
  default_timeout_s : float option;  (** [Inproc] only: per-request deadline *)
  metrics_path : string option;  (** drain-time metrics snapshot side file *)
  trace : Trace.t;  (** counter-event sink (closed by the caller) *)
  prof : Prof.t;
  prof_path : string option;
}

val default_config : socket_path:string -> shards:int -> backend:backend -> config
(** [queue_depth = 128], no TCP, no tenant quota, [low_watermark = 0.5],
    [redispatch_max = 2], no heartbeat, [connect_timeout_s = 10.0], one
    job and queue depth 64 per in-process shard, no side files. *)

type stats = {
  connections : int;  (** client connections accepted (UDS + TCP) *)
  received : int;  (** request lines read *)
  admitted : int;  (** entered the front's bounded queue *)
  shed : int;  (** queue-depth (or drain) sheds *)
  shed_quota : int;  (** tenant-quota sheds *)
  shed_priority : int;  (** low-priority watermark sheds *)
  bad : int;  (** malformed request lines *)
  pings : int;  (** probes answered by the front itself *)
  answered : int;  (** shard responses forwarded to clients *)
  route_hot : int;  (** routed to the shard that ran the key last *)
  route_cold : int;  (** first sighting of a key *)
  route_moved : int;  (** a key's owner changed (crash / ring walk) *)
  redispatched : int;  (** parked requests re-sent to a healthy shard *)
  lost : int;
      (** answered with a front-generated [error] after exhausting the
          re-dispatch budget — never silently dropped *)
  crashes : int;  (** shard connections lost outside orderly shutdown *)
  respawns : int;  (** successful shard backend respawns *)
  hb_sent : int;
  hb_pong : int;
  drained : int;  (** responses forwarded after the drain began *)
}

val shed_total : stats -> int
(** [shed + shed_quota + shed_priority]. *)

type t

val start : config -> (t, string) result
(** Bring every shard up (spawn + connect; an unreachable shard fails
    the start and tears the rest down), bind the front listeners, start
    the heartbeat. [SIGPIPE] is ignored process-wide. *)

val request_stop : t -> unit
(** Begin a graceful drain. Only sets a flag — signal-handler safe,
    idempotent. The drain answers everything already admitted (the
    shards stay up exactly that long), then stops the shard backends
    gracefully and flushes the side files. *)

val wait : t -> stats
(** Join the drain and return the final statistics. [answered = admitted]
    on a clean drain: every admitted request got a response ([lost]
    counts the subset answered via the front-generated error path). *)

val stats : t -> stats
(** Live snapshot (exact: reads under the front lock). *)

val metrics : t -> Metrics.t

(** {2 Introspection and fault-injection hooks (tests, soak harness)} *)

val kill_shard : t -> int -> unit
(** Hard-kill shard [i]'s backend ([SIGKILL] for [Proc]; abrupt
    connection severance for [Inproc]) — in-flight requests on it are
    parked and re-dispatched, and the backend respawns. Raises
    [Invalid_argument] on an out-of-range index. *)

val shard_alive : t -> int -> bool
val shard_pending : t -> int -> int
(** In-flight requests currently awaiting shard [i]'s responses. *)

val shard_pids : t -> int option list
(** Per shard: the backend's pid ([Proc] only; [None] for [Inproc] or a
    shard currently down). *)
