(** Persistent request-serving front end ([infs_serve]).

    A server owns a Unix-domain listening socket and a PR 2 {!Pool} of
    worker domains, and speaks the batch JSON-lines protocol {e
    persistently}: clients connect, write one JSON request object per
    line, and read exactly one JSON response line per request, {e in
    request order per connection}. The process-wide shared compile cache
    stays warm across requests, which is the point: programs compiled
    once are dispatched many times, exactly the JIT runtime's design
    (paper §4).

    {2 Admission, shedding, deadlines}

    Requests are admitted into a bounded queue of at most
    [config.queue_depth] outstanding (admitted but not yet answered)
    requests across all connections. A request arriving beyond the bound
    is {e shed} immediately with a structured
    [{"id":..,"status":"overloaded"}] response instead of queuing
    unboundedly. A request's wall-clock deadline (its ["timeout_s"]
    field, or [config.default_timeout_s]) reuses the pool's timeout
    machinery: past the deadline the response is
    [{"id":..,"status":"timeout"}] and the answer slot is released even
    though the worker domain finishes in the background.

    A malformed request line is answered with
    [{"id":<seq>,"status":"error","error":"parse error: ..."}] and the
    connection stays up.

    {2 Graceful drain}

    {!request_stop} (async-signal-safe: it only sets a flag, so it may be
    called from a [SIGTERM]/[SIGINT] handler) begins a drain: the listen
    socket closes, every connection's read side is shut down, requests
    already admitted run to completion and their responses are flushed,
    then the pool is shut down and — when [config.metrics_path] is set —
    a final metrics snapshot (request counters, queue-depth gauge,
    latency histogram, per-worker pool utilization) is written to the
    side file. {!wait} joins the drain and returns the final {!stats}.

    {2 Observability}

    Server-side counters are threaded through {!Metrics}
    ([serve.received], [serve.admitted], [serve.shed], [serve.ok],
    [serve.failed], [serve.deadline_exceeded], [serve.degraded],
    [serve.bad_requests], [serve.pings], [serve.drained], [serve.connections], the
    [serve.queue_depth] gauge and the [serve.latency_us] histogram), and
    request-lifecycle events through {!Trace} as [Counter] events of the
    same names, so an enabled JSONL trace of a serving session replays
    into the same counters. *)

type config = {
  socket_path : string;  (** Unix-domain socket path to bind *)
  jobs : int;  (** pool worker domains (clamped to >= 1) *)
  queue_depth : int;
      (** admission bound: max admitted-but-unanswered requests across
          all connections (clamped to >= 1) *)
  default_timeout_s : float option;
      (** per-request deadline when the request carries no ["timeout_s"]
          field; [None] = no deadline *)
  metrics_path : string option;
      (** side file the drain flushes the final metrics snapshot to
          ([.prom] → Prometheus exposition, else JSON) *)
  trace : Trace.t;
      (** lifecycle-event sink (default {!Trace.null}); closed by the
          caller, not the server. With an enabled sink every request whose
          handler ran to completion additionally emits three
          [Request_span] events — [queue_wait] (admission to worker
          start), [run] (handler execution) and [write_back] (response
          serialization + flush) — carrying the request's echoed id, so a
          trace of a serving session attributes tail latency to queueing
          vs execution. Timed-out, cancelled and crashed requests emit no
          spans (their split is unknowable), keeping the three stages'
          event counts equal. *)
  prof : Prof.t;
      (** span profiler (default {!Prof.null}). Records the same three
          request stages under [serve;request;<stage>] plus — at drain
          time, via {!Pool.profile_into} — per-worker
          [pool;worker<i>;busy] / [pool;worker<i>;queue_wait] rows. The
          (unsynchronized) registry is only ever touched under the server
          lock, or after the pool has joined. *)
  prof_path : string option;
      (** side file the drain writes the profile to ([.json] →
          [infs-prof-1] JSON, [.folded] → flamegraph folded stacks, else
          text table); [None] keeps the registry in-memory only *)
}

val default_config : socket_path:string -> config
(** [jobs = Pool.recommended_jobs ()], [queue_depth = 64], no default
    deadline, no metrics side file, no trace, no profiler. *)

type stats = {
  connections : int;  (** connections accepted *)
  received : int;  (** request lines read (malformed included) *)
  admitted : int;  (** entered the bounded queue *)
  shed : int;  (** answered [overloaded] (bound exceeded, or drain begun) *)
  bad : int;  (** malformed request lines (answered [error], not admitted) *)
  ok : int;  (** answered [ok] *)
  failed : int;  (** admitted; handler returned [Error] or raised *)
  deadline_exceeded : int;  (** admitted; answered [timeout] *)
  degraded : int;  (** admitted; handler raised {!Pool.Degradation} *)
  cancelled : int;  (** admitted but never run — 0 on a graceful drain *)
  pings : int;
      (** requests carrying a ["ping"] field, answered
          [{"id":..,"status":"pong"}] immediately (in order with real
          responses) without entering admission — the sharded front
          tier's heartbeat probe *)
  drained : int;  (** responses flushed after the drain began *)
}

val answered : stats -> int
(** [ok + failed + deadline_exceeded + degraded + cancelled] — equals
    [admitted] once {!wait} has returned: every admitted request is
    answered. *)

type t

val start :
  config -> handler:(Json.t -> (Json.t, string) result) -> (t, string) result
(** Bind the socket, spawn the pool and the accept thread. [handler] runs
    on a pool worker domain for every admitted request; [Ok payload]
    answers [{"id":..,"status":"ok","report":payload}], [Error e] answers
    [{"id":..,"status":"error","error":e}], raising {!Pool.Degradation}
    answers [{"id":..,"status":"degraded","error":..}], any other
    exception answers [status:"error"]. A stale socket file from a dead
    server is unlinked; a non-socket file at the path is an error.
    [SIGPIPE] is ignored process-wide (a client hanging up mid-response
    must not kill the server). *)

val request_stop : t -> unit
(** Begin a graceful drain. Only sets a flag — safe to call from a signal
    handler, from any thread, and more than once. *)

val wait : t -> stats
(** Block until the drain completes (accept loop exited, every admitted
    request answered, pool shut down, metrics side file flushed) and
    return the final statistics. Does {e not} itself initiate the stop:
    call {!request_stop} (e.g. from a signal handler) to trigger it. *)

val stats : t -> stats
(** Live snapshot of the counters (exact: reads under the server lock). *)

val metrics : t -> Metrics.t
(** The server's metrics registry, e.g. to reconcile a client's counts
    against [serve.*] series after {!wait}. *)
