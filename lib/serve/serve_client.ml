(* Load generator: one sender + one receiver thread per connection.

   The sender paces requests on a fixed schedule (request k of connection
   c is due at t0 + (c + k*C)/rps, i.e. the C connections interleave to a
   combined rps) and half-closes the socket when the duration elapses;
   the receiver matches the k-th response line to the k-th send timestamp
   — valid because the server answers in request order per connection. *)

type result = {
  sent : int;
  ok : int;
  overloaded : int;
  timeout : int;
  error : int;
  degraded : int;
  cancelled : int;
  unanswered : int;
  wall_s : float;
  ok_latency_us : float list;
  all_latency_us : float list;
  ok_reports : (string * string) list;
}

let answered r = r.ok + r.overloaded + r.timeout + r.error + r.degraded + r.cancelled

let empty =
  {
    sent = 0;
    ok = 0;
    overloaded = 0;
    timeout = 0;
    error = 0;
    degraded = 0;
    cancelled = 0;
    unanswered = 0;
    wall_s = 0.0;
    ok_latency_us = [];
    all_latency_us = [];
    ok_reports = [];
  }

let merge a b =
  {
    sent = a.sent + b.sent;
    ok = a.ok + b.ok;
    overloaded = a.overloaded + b.overloaded;
    timeout = a.timeout + b.timeout;
    error = a.error + b.error;
    degraded = a.degraded + b.degraded;
    cancelled = a.cancelled + b.cancelled;
    unanswered = a.unanswered + b.unanswered;
    wall_s = Float.max a.wall_s b.wall_s;
    ok_latency_us = a.ok_latency_us @ b.ok_latency_us;
    all_latency_us = a.all_latency_us @ b.all_latency_us;
    ok_reports =
      (* distinct request bodies only: connections cycling the same spec
         list contribute one exemplar report each *)
      a.ok_reports
      @ List.filter
          (fun (body, _) -> not (List.mem_assoc body a.ok_reports))
          b.ok_reports;
  }

(* monotonic: send-to-response latencies must survive a wall-clock step *)
let now () = Clock.now ()

(* growable float array: send timestamps, indexed by response order *)
type dyn = { mutable a : float array; mutable n : int }

let dyn_make hint = { a = Array.make (max 16 hint) 0.0; n = 0 }

let dyn_add d v =
  if d.n = Array.length d.a then begin
    let a' = Array.make (2 * d.n) 0.0 in
    Array.blit d.a 0 a' 0 d.n;
    d.a <- a'
  end;
  d.a.(d.n) <- v;
  d.n <- d.n + 1

(* "unix:PATH", "tcp:HOST:PORT", or a bare path (= unix) *)
type target = T_unix of string | T_tcp of string * int

let parse_target s =
  let prefixed p = String.length s > String.length p && String.sub s 0 (String.length p) = p in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefixed "unix:" then Ok (T_unix (after "unix:"))
  else if prefixed "tcp:" then begin
    let rest = after "tcp:" in
    match String.rindex_opt rest ':' with
    | None -> Error "serve-client: tcp target must be tcp:HOST:PORT"
    | Some i -> (
      let host = String.sub rest 0 i in
      match int_of_string_opt (String.sub rest (i + 1) (String.length rest - i - 1)) with
      | Some port when port > 0 && port < 65536 -> Ok (T_tcp (host, port))
      | _ -> Error "serve-client: tcp port must be in 1..65535")
  end
  else Ok (T_unix s)

let connect_sock domain addr what =
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "serve-client: cannot connect to %s: %s" what
         (Unix.error_message e))

let connect target =
  match parse_target target with
  | Error _ as e -> e
  | Ok (T_unix path) -> connect_sock Unix.PF_UNIX (Unix.ADDR_UNIX path) path
  | Ok (T_tcp (host, port)) -> (
    match
      Unix.getaddrinfo host (string_of_int port)
        [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
    with
    | [] -> Error (Printf.sprintf "serve-client: cannot resolve %s" host)
    | ai :: _ ->
      connect_sock ai.Unix.ai_family ai.Unix.ai_addr
        (Printf.sprintf "%s:%d" host port))

(* one connection's drive; returns its partial result *)
let drive ~t0 ~rps ~duration_s ~conns ~c ~body ~collect fd =
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  let times = dyn_make (int_of_float (rps *. duration_s /. float_of_int conns) + 16) in
  let sent = ref 0 in
  let sender () =
    let rec go k =
      let due = float_of_int (c + (k * conns)) /. rps in
      if due < duration_s then begin
        let dt = t0 +. due -. now () in
        if dt > 0.0 then Unix.sleepf dt;
        let i = c + (k * conns) in
        dyn_add times (now ());
        match
          output_string oc (body i);
          output_char oc '\n';
          flush oc
        with
        | () ->
          incr sent;
          go (k + 1)
        | exception Sys_error _ -> () (* server went away; stop sending *)
      end
    in
    go 0;
    (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ())
  in
  let st = Thread.create sender () in
  let r = ref empty in
  let rec recv k =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line ->
      let tn = now () in
      let lat_us = (tn -. times.a.(min k (times.n - 1))) *. 1e6 in
      let parsed = Json.parse line in
      let status =
        match parsed with
        | Error _ -> "error"
        | Ok j -> (
          match Option.bind (Json.member "status" j) Json.to_str with
          | Some s -> s
          | None -> "error")
      in
      let a = !r in
      let reports =
        (* re-serialized via Json.to_string, so an exemplar compares
           byte-for-byte against a direct run's canonical report line *)
        if status <> "ok" || collect <= 0 || List.length a.ok_reports >= collect
        then a.ok_reports
        else
          let body_line = body (c + (k * conns)) in
          if List.mem_assoc body_line a.ok_reports then a.ok_reports
          else
            match Result.to_option parsed with
            | None -> a.ok_reports
            | Some j -> (
              match Json.member "report" j with
              | None -> a.ok_reports
              | Some rep -> (body_line, Json.to_string rep) :: a.ok_reports)
      in
      r :=
        {
          a with
          wall_s = tn -. t0;
          all_latency_us = lat_us :: a.all_latency_us;
          ok = (a.ok + if status = "ok" then 1 else 0);
          overloaded = (a.overloaded + if status = "overloaded" then 1 else 0);
          timeout = (a.timeout + if status = "timeout" then 1 else 0);
          degraded = (a.degraded + if status = "degraded" then 1 else 0);
          cancelled = (a.cancelled + if status = "cancelled" then 1 else 0);
          error =
            (a.error
            +
            match status with
            | "ok" | "overloaded" | "timeout" | "degraded" | "cancelled" -> 0
            | _ -> 1);
          ok_latency_us =
            (if status = "ok" then lat_us :: a.ok_latency_us
             else a.ok_latency_us);
          ok_reports = reports;
        };
      recv (k + 1)
  in
  recv 0;
  Thread.join st;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let a = !r in
  { a with sent = !sent; unanswered = !sent - answered a }

let run ~socket ~rps ~duration_s ?(connections = 1) ?(collect_reports = 0) ~body () =
  if rps <= 0.0 then Error "serve-client: rps must be positive"
  else if duration_s <= 0.0 then Error "serve-client: duration must be positive"
  else begin
    let conns = max 1 connections in
    let fds = List.init conns (fun _ -> connect socket) in
    match List.find_opt Result.is_error fds with
    | Some (Error e) ->
      List.iter
        (function
          | Ok fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
          | Error _ -> ())
        fds;
      Error e
    | _ ->
      let fds = List.map Result.get_ok fds in
      let t0 = now () in
      let cells = List.map (fun _ -> ref empty) fds in
      List.combine fds cells
      |> List.mapi (fun c (fd, cell) ->
             Thread.create
               (fun () ->
                 cell :=
                   drive ~t0 ~rps ~duration_s ~conns ~c ~body
                     ~collect:collect_reports fd)
               ())
      |> List.iter Thread.join;
      Ok (List.fold_left (fun acc cell -> merge acc !cell) empty cells)
  end
