(* Load generator: one sender + one receiver thread per connection.

   The sender paces requests on a fixed schedule (request k of connection
   c is due at t0 + (c + k*C)/rps, i.e. the C connections interleave to a
   combined rps) and half-closes the socket when the duration elapses;
   the receiver matches the k-th response line to the k-th send timestamp
   — valid because the server answers in request order per connection. *)

type result = {
  sent : int;
  ok : int;
  overloaded : int;
  timeout : int;
  error : int;
  degraded : int;
  cancelled : int;
  unanswered : int;
  wall_s : float;
  ok_latency_us : float list;
  all_latency_us : float list;
}

let answered r = r.ok + r.overloaded + r.timeout + r.error + r.degraded + r.cancelled

let empty =
  {
    sent = 0;
    ok = 0;
    overloaded = 0;
    timeout = 0;
    error = 0;
    degraded = 0;
    cancelled = 0;
    unanswered = 0;
    wall_s = 0.0;
    ok_latency_us = [];
    all_latency_us = [];
  }

let merge a b =
  {
    sent = a.sent + b.sent;
    ok = a.ok + b.ok;
    overloaded = a.overloaded + b.overloaded;
    timeout = a.timeout + b.timeout;
    error = a.error + b.error;
    degraded = a.degraded + b.degraded;
    cancelled = a.cancelled + b.cancelled;
    unanswered = a.unanswered + b.unanswered;
    wall_s = Float.max a.wall_s b.wall_s;
    ok_latency_us = a.ok_latency_us @ b.ok_latency_us;
    all_latency_us = a.all_latency_us @ b.all_latency_us;
  }

let now () = Unix.gettimeofday ()

(* growable float array: send timestamps, indexed by response order *)
type dyn = { mutable a : float array; mutable n : int }

let dyn_make hint = { a = Array.make (max 16 hint) 0.0; n = 0 }

let dyn_add d v =
  if d.n = Array.length d.a then begin
    let a' = Array.make (2 * d.n) 0.0 in
    Array.blit d.a 0 a' 0 d.n;
    d.a <- a'
  end;
  d.a.(d.n) <- v;
  d.n <- d.n + 1

let connect socket =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "serve-client: cannot connect to %s: %s" socket
         (Unix.error_message e))

(* one connection's drive; returns its partial result *)
let drive ~t0 ~rps ~duration_s ~conns ~c ~body fd =
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  let times = dyn_make (int_of_float (rps *. duration_s /. float_of_int conns) + 16) in
  let sent = ref 0 in
  let sender () =
    let rec go k =
      let due = float_of_int (c + (k * conns)) /. rps in
      if due < duration_s then begin
        let dt = t0 +. due -. now () in
        if dt > 0.0 then Unix.sleepf dt;
        let i = c + (k * conns) in
        dyn_add times (now ());
        match
          output_string oc (body i);
          output_char oc '\n';
          flush oc
        with
        | () ->
          incr sent;
          go (k + 1)
        | exception Sys_error _ -> () (* server went away; stop sending *)
      end
    in
    go 0;
    (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ())
  in
  let st = Thread.create sender () in
  let r = ref empty in
  let rec recv k =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line ->
      let tn = now () in
      let lat_us = (tn -. times.a.(min k (times.n - 1))) *. 1e6 in
      let status =
        match Json.parse line with
        | Error _ -> "error"
        | Ok j -> (
          match Option.bind (Json.member "status" j) Json.to_str with
          | Some s -> s
          | None -> "error")
      in
      let a = !r in
      r :=
        {
          a with
          wall_s = tn -. t0;
          all_latency_us = lat_us :: a.all_latency_us;
          ok = (a.ok + if status = "ok" then 1 else 0);
          overloaded = (a.overloaded + if status = "overloaded" then 1 else 0);
          timeout = (a.timeout + if status = "timeout" then 1 else 0);
          degraded = (a.degraded + if status = "degraded" then 1 else 0);
          cancelled = (a.cancelled + if status = "cancelled" then 1 else 0);
          error =
            (a.error
            +
            match status with
            | "ok" | "overloaded" | "timeout" | "degraded" | "cancelled" -> 0
            | _ -> 1);
          ok_latency_us =
            (if status = "ok" then lat_us :: a.ok_latency_us
             else a.ok_latency_us);
        };
      recv (k + 1)
  in
  recv 0;
  Thread.join st;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let a = !r in
  { a with sent = !sent; unanswered = !sent - answered a }

let run ~socket ~rps ~duration_s ?(connections = 1) ~body () =
  if rps <= 0.0 then Error "serve-client: rps must be positive"
  else if duration_s <= 0.0 then Error "serve-client: duration must be positive"
  else begin
    let conns = max 1 connections in
    let fds = List.init conns (fun _ -> connect socket) in
    match List.find_opt Result.is_error fds with
    | Some (Error e) ->
      List.iter
        (function
          | Ok fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
          | Error _ -> ())
        fds;
      Error e
    | _ ->
      let fds = List.map Result.get_ok fds in
      let t0 = now () in
      let cells = List.map (fun _ -> ref empty) fds in
      List.combine fds cells
      |> List.mapi (fun c (fd, cell) ->
             Thread.create
               (fun () -> cell := drive ~t0 ~rps ~duration_s ~conns ~c ~body fd)
               ())
      |> List.iter Thread.join;
      Ok (List.fold_left (fun acc cell -> merge acc !cell) empty cells)
  end
