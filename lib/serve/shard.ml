(* Sharded serving front tier.

   The front load-balances client connections (Unix-domain socket,
   optionally TCP) over N shard processes, each a full {!Serve} instance
   owning its own domain pool and warm compile cache. Routing is a
   consistent hash of the request's compile-cache key — the canonical
   JSON of the spec minus envelope fields (id, timeout_s, tenant,
   priority, ping) — so repeat submissions of a program land on the
   shard whose cache already holds its compiled binary.

   Thread layout mirrors Serve: accept thread(s) feed per-client-conn
   reader/writer systhread pairs; additionally each shard slot has a
   reader thread draining its response stream. A client reader admits a
   request (front queue depth + per-tenant quota + priority watermark),
   appends a cell to the client connection's in-order queue, and
   dispatches the line to the routed shard; the shard reader resolves
   cells with raw response lines in FIFO order — valid because a shard
   answers in request order per connection — and the client writer
   forwards the raw line verbatim, preserving byte-identity of shard
   output end to end.

   Crash handling: a shard connection EOF (process death, or a heartbeat
   expiry forcing the fd shut) bumps the slot's generation, parks the
   FIFO's in-flight requests, re-dispatches each to a healthy shard
   (bounded by [redispatch_max] per request; exhaustion answers a
   structured error so no admitted request is ever silently lost) and
   respawns the shard backend with capped-jitter reconnect backoff.

   Lock order (never nested in the other direction):
   slot [s_m] -> client cell mutex; front [mm] is leaf-only. *)

type backend =
  | Proc of (int -> string -> string array)
  | Inproc of (Json.t -> (Json.t, string) result)

type config = {
  socket_path : string;
  tcp_port : int option;
  shards : int;
  shard_socket : int -> string;
  backend : backend;
  queue_depth : int;
  tenant_quota : int option;
  low_watermark : float;
  redispatch_max : int;
  heartbeat_s : float option;
  connect_timeout_s : float;
  shard_jobs : int;
  shard_queue_depth : int;
  default_timeout_s : float option;
  metrics_path : string option;
  trace : Trace.t;
  prof : Prof.t;
  prof_path : string option;
}

let default_config ~socket_path ~shards ~backend =
  {
    socket_path;
    tcp_port = None;
    shards = max 1 shards;
    shard_socket = (fun i -> Printf.sprintf "%s.shard%d" socket_path i);
    backend;
    queue_depth = 128;
    tenant_quota = None;
    low_watermark = 0.5;
    redispatch_max = 2;
    heartbeat_s = None;
    connect_timeout_s = 10.0;
    shard_jobs = 1;
    shard_queue_depth = 64;
    default_timeout_s = None;
    metrics_path = None;
    trace = Trace.null;
    prof = Prof.null;
    prof_path = None;
  }

type stats = {
  connections : int;
  received : int;
  admitted : int;
  shed : int;
  shed_quota : int;
  shed_priority : int;
  bad : int;
  pings : int;
  answered : int;
  route_hot : int;
  route_cold : int;
  route_moved : int;
  redispatched : int;
  lost : int;
  crashes : int;
  respawns : int;
  hb_sent : int;
  hb_pong : int;
  drained : int;
}

let zero_stats =
  {
    connections = 0;
    received = 0;
    admitted = 0;
    shed = 0;
    shed_quota = 0;
    shed_priority = 0;
    bad = 0;
    pings = 0;
    answered = 0;
    route_hot = 0;
    route_cold = 0;
    route_moved = 0;
    redispatched = 0;
    lost = 0;
    crashes = 0;
    respawns = 0;
    hb_sent = 0;
    hb_pong = 0;
    drained = 0;
  }

let shed_total s = s.shed + s.shed_quota + s.shed_priority

(* ---- response cells ---- *)

(* one-shot rendezvous between the shard reader (producer of the raw
   response line) and the client writer (consumer); first resolution
   wins — a late duplicate from a double-dispatched request is dropped *)
type cell = {
  cm : Mutex.t;
  ccv : Condition.t;
  mutable resp : string option;
}

let new_cell () = { cm = Mutex.create (); ccv = Condition.create (); resp = None }

let resolve cell line =
  Mutex.protect cell.cm (fun () ->
      if cell.resp = None then cell.resp <- Some line;
      Condition.signal cell.ccv)

let await_cell cell =
  Mutex.lock cell.cm;
  while cell.resp = None do
    Condition.wait cell.ccv cell.cm
  done;
  let v = Option.get cell.resp in
  Mutex.unlock cell.cm;
  v

(* ---- shard slots ---- *)

type sink = Client of cell | Heartbeat

type pending = {
  p_line : string;  (* exact line written to the shard *)
  p_key : string;  (* routing key = compile-cache key *)
  p_id : Json.t;  (* echoed id, for front-generated failure responses *)
  p_sink : sink;
  p_dispatches : int;  (* dispatch attempts so far, >= 1 once sent *)
}

type handle = {
  h_pid : int option;
  h_kill : unit -> unit;  (* hard stop: in-flight work lost by design *)
  h_stop : unit -> unit;  (* graceful stop and wait *)
}

type slot = {
  s_idx : int;
  s_m : Mutex.t;
  mutable s_alive : bool;
  mutable s_gen : int;  (* bumped on every disconnect; dedupes crash events *)
  mutable s_fd : Unix.file_descr option;
  mutable s_oc : out_channel option;
  s_fifo : pending Queue.t;  (* requests awaiting this shard's response *)
  mutable s_handle : handle option;
  mutable s_last_pong : float;
}

(* ---- client connections (front side) ---- *)

type centry = {
  ce_cell : cell;
  ce_t0 : float;
  ce_admitted : bool;
  ce_tenant : string option;
}

type cconn = {
  cc_fd : Unix.file_descr;
  cc_m : Mutex.t;
  cc_cv : Condition.t;
  cc_q : centry option Queue.t;  (* None = reader done, flush and close *)
}

type t = {
  cfg : config;
  slots : slot array;
  ring : (int64 * int) array;  (* (point, shard), sorted by unsigned point *)
  stop : bool Atomic.t;  (* drain requested *)
  closing : bool Atomic.t;  (* shard teardown begun: suppress crash handling *)
  mm : Mutex.t;  (* guards st, inflight, tenants, routes, metrics, trace, prof *)
  metrics : Metrics.t;
  mutable st : stats;
  mutable inflight : int;
  tenants : (string, int) Hashtbl.t;
  routes : (string, int) Hashtbl.t;  (* key -> shard it last ran on *)
  mutable draining : bool;
  mutable conns : (Unix.file_descr * Thread.t * Thread.t) list;
  mutable aux : Thread.t list;  (* shard readers, respawners, heartbeat *)
  mutable lfds : (Unix.file_descr * [ `Unix | `Tcp ]) list;
  mutable driver : Thread.t option;
  mutable final : stats option;
  hb_seq : int Atomic.t;
  id_seq : int Atomic.t;
}

let now () = Clock.now ()

let record t name up =
  Mutex.protect t.mm (fun () ->
      t.st <- up t.st;
      Metrics.incr t.metrics name 1.0;
      if Trace.enabled t.cfg.trace then
        Trace.emit t.cfg.trace (Trace.Counter { name; value = 1.0 }))

let track t th = Mutex.protect t.mm (fun () -> t.aux <- th :: t.aux)

(* ---- consistent hash ring ---- *)

let fnv1a64 s =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let vnodes = 64

let build_ring shards =
  let pts =
    Array.init (shards * vnodes) (fun i ->
        let shard = i / vnodes and v = i mod vnodes in
        (fnv1a64 (Printf.sprintf "%d#%d" shard v), shard))
  in
  Array.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b) pts;
  pts

(* First ring point at or after the key's hash whose shard is alive
   (skipping [avoid]); walking clockwise past dead shards keeps the rest
   of the keyspace stable — only the dead shard's arc moves. *)
let route t ~key ~avoid =
  let n = Array.length t.ring in
  let h = fnv1a64 key in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst t.ring.(mid)) h < 0 then lo := mid + 1
    else hi := mid
  done;
  let start = !lo in
  let rec walk i seen =
    if i >= n then None
    else
      let _, s = t.ring.((start + i) mod n) in
      if List.mem s seen then walk (i + 1) seen
      else if s <> avoid && Mutex.protect t.slots.(s).s_m (fun () -> t.slots.(s).s_alive)
      then Some t.slots.(s)
      else walk (i + 1) (s :: seen)
  in
  walk 0 []

(* hot = key ran on this shard last time (its compile cache is warm);
   moved = the key's owner changed (crash or ring walk); cold = new key.
   The table is advisory routing telemetry, bounded to keep the front's
   memory flat over long soaks. *)
let note_route t ~key shard =
  Mutex.protect t.mm (fun () ->
      if Hashtbl.length t.routes > 65536 then Hashtbl.reset t.routes;
      let name =
        match Hashtbl.find_opt t.routes key with
        | Some s when s = shard -> "shard.route_hot"
        | Some _ -> "shard.route_moved"
        | None -> "shard.route_cold"
      in
      Hashtbl.replace t.routes key shard;
      t.st <-
        (match name with
        | "shard.route_hot" -> { t.st with route_hot = t.st.route_hot + 1 }
        | "shard.route_moved" -> { t.st with route_moved = t.st.route_moved + 1 }
        | _ -> { t.st with route_cold = t.st.route_cold + 1 });
      Metrics.incr t.metrics name 1.0;
      if Trace.enabled t.cfg.trace then
        Trace.emit t.cfg.trace (Trace.Counter { name; value = 1.0 }))

(* ---- dispatch ---- *)

(* FIFO push and socket write are atomic under [s_m], so the FIFO order
   is exactly the order the shard sees (and answers) requests in. A
   failed write leaves the entry parked: the reader's EOF sweeps it into
   the re-dispatch path. Holding [s_m] across the write cannot deadlock:
   the shard's reader never blocks on its send side (admission shedding
   is non-blocking), so shard receive buffers always drain. *)
let try_dispatch slot p =
  Mutex.protect slot.s_m (fun () ->
      if not slot.s_alive then false
      else
        match slot.s_oc with
        | None -> false
        | Some oc ->
          Queue.push p slot.s_fifo;
          (try
             output_string oc p.p_line;
             output_char oc '\n';
             flush oc
           with Sys_error _ -> ());
          true)

let fail_line p reason =
  Json.to_string
    (Json.Obj
       [ ("id", p.p_id); ("status", Json.Str "error"); ("error", Json.Str reason) ])

(* Bounded re-dispatch of a request parked on a dead shard. The request
   may execute twice (the dead shard could have finished it without
   answering); engine runs are pure, so the duplicate work is wasted but
   harmless, and the cell keeps only the first response. *)
let redispatch t ~from p =
  match p.p_sink with
  | Heartbeat -> ()
  | Client cell ->
    if p.p_dispatches > t.cfg.redispatch_max then begin
      record t "shard.lost" (fun s -> { s with lost = s.lost + 1 });
      resolve cell (fail_line p "shard failed; re-dispatch budget exhausted")
    end
    else begin
      record t "shard.redispatched" (fun s ->
          { s with redispatched = s.redispatched + 1 });
      let p = { p with p_dispatches = p.p_dispatches + 1 } in
      (* brief bounded wait for a respawn when no sibling is healthy *)
      let deadline = now () +. t.cfg.connect_timeout_s in
      let rec go () =
        match route t ~key:p.p_key ~avoid:from with
        | Some slot when try_dispatch slot p -> note_route t ~key:p.p_key slot.s_idx
        | _ ->
          if now () > deadline || Atomic.get t.closing then begin
            record t "shard.lost" (fun s -> { s with lost = s.lost + 1 });
            resolve cell (fail_line p "no healthy shard to re-dispatch to")
          end
          else begin
            Unix.sleepf 0.01;
            go ()
          end
      in
      go ()
    end

(* ---- shard crash / respawn ---- *)

let slot_socket t i ~gen =
  let base = t.cfg.shard_socket i in
  match t.cfg.backend with
  | Proc _ -> base (* the respawned child unlinks the stale socket itself *)
  | Inproc _ ->
    (* a gracefully-draining old Serve instance unlinks its own socket
       path asynchronously; a fresh per-generation path avoids the race *)
    if gen = 0 then base else Printf.sprintf "%s.g%d" base gen

let spawn_handle t i socket =
  match t.cfg.backend with
  | Proc argv_of ->
    let child = Proc.spawn (argv_of i socket) in
    {
      h_pid = Some (Proc.pid child);
      h_kill = (fun () -> ignore (Proc.kill child));
      h_stop = (fun () -> ignore (Proc.terminate child));
    }
  | Inproc handler -> (
    let cfg =
      {
        (Serve.default_config ~socket_path:socket) with
        jobs = t.cfg.shard_jobs;
        queue_depth = t.cfg.shard_queue_depth;
        default_timeout_s = t.cfg.default_timeout_s;
      }
    in
    match Serve.start cfg ~handler with
    | Error e -> failwith e
    | Ok sv ->
      {
        h_pid = None;
        h_kill =
          (fun () ->
            (* simulate a crash: stop accepting and reap in the
               background; the front severs its connection separately,
               so the old instance's late answers go nowhere *)
            Serve.request_stop sv;
            ignore (Thread.create (fun () -> ignore (Serve.wait sv)) ()));
        h_stop =
          (fun () ->
            Serve.request_stop sv;
            ignore (Serve.wait sv));
      })

let rec shard_reader t slot gen ic =
  match input_line ic with
  | exception (End_of_file | Sys_error _) -> shard_down t slot ~gen
  | line ->
    let p =
      Mutex.protect slot.s_m (fun () ->
          if slot.s_gen <> gen then None else Queue.take_opt slot.s_fifo)
    in
    (match p with
    | None -> () (* stale generation, or an unsolicited line: drop *)
    | Some p -> (
      match p.p_sink with
      | Heartbeat ->
        Mutex.protect slot.s_m (fun () -> slot.s_last_pong <- now ());
        record t "shard.hb_pong" (fun s -> { s with hb_pong = s.hb_pong + 1 })
      | Client cell -> resolve cell line));
    if Mutex.protect slot.s_m (fun () -> slot.s_gen = gen) then
      shard_reader t slot gen ic

and shard_down t slot ~gen =
  let victims =
    Mutex.protect slot.s_m (fun () ->
        if slot.s_gen <> gen then [] (* another path already handled it *)
        else begin
          slot.s_gen <- gen + 1;
          slot.s_alive <- false;
          (match slot.s_fd with
          | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
          | None -> ());
          slot.s_fd <- None;
          slot.s_oc <- None;
          let vs = List.of_seq (Queue.to_seq slot.s_fifo) in
          Queue.clear slot.s_fifo;
          vs
        end)
  in
  if Atomic.get t.closing then
    (* orderly teardown: writers have already drained every client cell;
       anything left is a heartbeat, but answer defensively regardless *)
    List.iter
      (fun p ->
        match p.p_sink with
        | Heartbeat -> ()
        | Client cell -> resolve cell (fail_line p "front tier shutting down"))
      victims
  else begin
    record t "shard.crashes" (fun s -> { s with crashes = s.crashes + 1 });
    List.iter (redispatch t ~from:slot.s_idx) victims;
    let th = Thread.create (fun () -> respawner t slot) () in
    track t th
  end

and respawner t slot =
  let rec attempts left =
    if (not (Atomic.get t.closing)) && left > 0 then
      match bringup t slot with
      | Ok () -> record t "shard.respawns" (fun s -> { s with respawns = s.respawns + 1 })
      | Error e ->
        Printf.eprintf "shard %d: respawn failed: %s\n%!" slot.s_idx e;
        Unix.sleepf 0.2;
        attempts (left - 1)
  in
  attempts 5

(* Spawn (or respawn) the backend and connect with capped full-jitter
   backoff — the same stampede-safe schedule as pool retries — until the
   child has bound its socket. *)
and bringup t slot =
  let gen = Mutex.protect slot.s_m (fun () -> slot.s_gen) in
  let socket = slot_socket t slot.s_idx ~gen in
  let rng = Rng.create ((slot.s_idx * 7919) + gen) in
  match spawn_handle t slot.s_idx socket with
  | exception e ->
    Error (Printf.sprintf "cannot spawn shard %d: %s" slot.s_idx (Printexc.to_string e))
  | handle -> (
    let deadline = now () +. t.cfg.connect_timeout_s in
    let rec conn attempt =
      if Atomic.get t.closing then Error "front tier shutting down"
      else begin
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match Unix.connect fd (Unix.ADDR_UNIX socket) with
        | () -> Ok fd
        | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          if now () > deadline then
            Error
              (Printf.sprintf "shard %d (%s): connect timed out: %s" slot.s_idx
                 socket (Unix.error_message e))
          else begin
            Unix.sleepf
              (Float.max 0.002
                 (Pool.backoff_delay ~backoff_s:0.005 ~cap_s:0.25 ~attempt rng));
            conn (attempt + 1)
          end
      end
    in
    match conn 0 with
    | Error e ->
      handle.h_kill ();
      Error e
    | Ok fd ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      Mutex.protect slot.s_m (fun () ->
          slot.s_fd <- Some fd;
          slot.s_oc <- Some oc;
          slot.s_handle <- Some handle;
          slot.s_alive <- true;
          slot.s_last_pong <- now ());
      let th = Thread.create (fun () -> shard_reader t slot gen ic) () in
      track t th;
      Ok ())

(* ---- heartbeats ---- *)

let heartbeater t h =
  while not (Atomic.get t.stop) do
    Unix.sleepf h;
    if not (Atomic.get t.stop) then
      Array.iter
        (fun slot ->
          let action =
            Mutex.protect slot.s_m (fun () ->
                if not slot.s_alive then `Skip
                else if now () -. slot.s_last_pong > 3.0 *. h then `Expire slot.s_fd
                else `Ping)
          in
          match action with
          | `Skip | `Expire None -> ()
          | `Expire (Some fd) ->
            (* missed-heartbeat detection: force the reader to EOF; the
               crash path then re-dispatches and respawns *)
            (try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
          | `Ping ->
            let id = Json.Str (Printf.sprintf "hb-%d" (Atomic.fetch_and_add t.hb_seq 1)) in
            let line = Json.to_string (Json.Obj [ ("ping", Json.Num 1.0); ("id", id) ]) in
            let p =
              { p_line = line; p_key = ""; p_id = id; p_sink = Heartbeat; p_dispatches = 1 }
            in
            if try_dispatch slot p then
              record t "shard.hb_sent" (fun s -> { s with hb_sent = s.hb_sent + 1 }))
        t.slots
  done

(* ---- client connections ---- *)

let cpush cconn v =
  Mutex.protect cconn.cc_m (fun () ->
      Queue.push v cconn.cc_q;
      Condition.signal cconn.cc_cv)

let cpop cconn =
  Mutex.lock cconn.cc_m;
  while Queue.is_empty cconn.cc_q do
    Condition.wait cconn.cc_cv cconn.cc_m
  done;
  let v = Queue.pop cconn.cc_q in
  Mutex.unlock cconn.cc_m;
  v

let envelope_fields = [ "id"; "timeout_s"; "tenant"; "priority"; "ping" ]

let route_key j =
  match j with
  | Json.Obj kvs ->
    Json.to_string
      (Json.Obj (List.filter (fun (k, _) -> not (List.mem k envelope_fields)) kvs))
  | _ -> Json.to_string j

let account t ce =
  let lat_us = (now () -. ce.ce_t0) *. 1e6 in
  Mutex.protect t.mm (fun () ->
      if ce.ce_admitted then begin
        t.st <- { t.st with answered = t.st.answered + 1 };
        t.inflight <- t.inflight - 1;
        (match ce.ce_tenant with
        | None -> ()
        | Some tn ->
          let cur = Option.value ~default:1 (Hashtbl.find_opt t.tenants tn) in
          if cur <= 1 then Hashtbl.remove t.tenants tn
          else Hashtbl.replace t.tenants tn (cur - 1));
        Metrics.incr t.metrics "shard.answered" 1.0;
        Metrics.gauge_add t.metrics "shard.inflight" (-1.0);
        Metrics.observe t.metrics "shard.latency_us" lat_us;
        if Trace.enabled t.cfg.trace then
          Trace.emit t.cfg.trace
            (Trace.Counter { name = "shard.answered"; value = 1.0 });
        if Prof.enabled t.cfg.prof then
          Prof.record_path t.cfg.prof "shard;request;proxy" ~ns:(lat_us *. 1e3) ()
      end;
      if t.draining then begin
        t.st <- { t.st with drained = t.st.drained + 1 };
        Metrics.incr t.metrics "shard.drained" 1.0;
        if Trace.enabled t.cfg.trace then
          Trace.emit t.cfg.trace
            (Trace.Counter { name = "shard.drained"; value = 1.0 })
      end)

let cwriter t cconn oc =
  let rec loop () =
    match cpop cconn with
    | None -> ()
    | Some ce ->
      let line = await_cell ce.ce_cell in
      account t ce;
      (try
         output_string oc line;
         output_char oc '\n';
         flush oc
       with Sys_error _ -> ());
      loop ()
  in
  loop ();
  (try flush oc with Sys_error _ -> ());
  (try Unix.close cconn.cc_fd with Unix.Unix_error _ -> ())

(* admission verdict, under [mm] *)
type verdict = Admit | Shed of string (* counter suffix *)

let admit t ~tenant ~low =
  Mutex.protect t.mm (fun () ->
      let verdict =
        if t.draining || t.inflight >= t.cfg.queue_depth then Shed "shard.shed"
        else if
          low
          && t.inflight
             >= int_of_float (t.cfg.low_watermark *. float_of_int t.cfg.queue_depth)
        then Shed "shard.shed_priority"
        else
          match (t.cfg.tenant_quota, tenant) with
          | Some q, Some tn
            when Option.value ~default:0 (Hashtbl.find_opt t.tenants tn) >= q ->
            Shed "shard.shed_quota"
          | _ -> Admit
      in
      (match verdict with
      | Admit ->
        t.inflight <- t.inflight + 1;
        (match tenant with
        | None -> ()
        | Some tn ->
          Hashtbl.replace t.tenants tn
            (1 + Option.value ~default:0 (Hashtbl.find_opt t.tenants tn)));
        t.st <- { t.st with admitted = t.st.admitted + 1 };
        Metrics.incr t.metrics "shard.admitted" 1.0;
        Metrics.gauge_add t.metrics "shard.inflight" 1.0;
        if Trace.enabled t.cfg.trace then
          Trace.emit t.cfg.trace
            (Trace.Counter { name = "shard.admitted"; value = 1.0 })
      | Shed name ->
        t.st <-
          (match name with
          | "shard.shed_quota" -> { t.st with shed_quota = t.st.shed_quota + 1 }
          | "shard.shed_priority" ->
            { t.st with shed_priority = t.st.shed_priority + 1 }
          | _ -> { t.st with shed = t.st.shed + 1 });
        Metrics.incr t.metrics name 1.0;
        if Trace.enabled t.cfg.trace then
          Trace.emit t.cfg.trace (Trace.Counter { name; value = 1.0 }));
      verdict)

let handle_line t cconn seq line =
  let t0 = now () in
  record t "shard.received" (fun s -> { s with received = s.received + 1 });
  let immediate ?(admitted = false) ?tenant resp_line =
    let cell = new_cell () in
    resolve cell resp_line;
    cpush cconn
      (Some { ce_cell = cell; ce_t0 = t0; ce_admitted = admitted; ce_tenant = tenant })
  in
  let seq_id = Json.Num (float_of_int seq) in
  let status_line id fields =
    Json.to_string (Json.Obj (("id", id) :: fields))
  in
  match Json.parse (String.trim line) with
  | Error e ->
    record t "shard.bad_requests" (fun s -> { s with bad = s.bad + 1 });
    immediate
      (status_line seq_id
         [ ("status", Json.Str "error"); ("error", Json.Str ("parse error: " ^ e)) ])
  | Ok j when Json.member "ping" j <> None ->
    (* the front answers probes itself; shard heartbeats are separate *)
    record t "shard.pings" (fun s -> { s with pings = s.pings + 1 });
    let id =
      match Json.member "id" j with
      | Some (Json.Num _ as v) | Some (Json.Str _ as v) -> v
      | _ -> seq_id
    in
    immediate (status_line id [ ("status", Json.Str "pong") ])
  | Ok j -> (
    let id =
      match Json.member "id" j with
      | Some (Json.Num _ as v) | Some (Json.Str _ as v) -> v
      | _ -> Json.Num (float_of_int (Atomic.fetch_and_add t.id_seq 1))
    in
    let tenant = Option.bind (Json.member "tenant" j) Json.to_str in
    let low =
      match Option.bind (Json.member "priority" j) Json.to_str with
      | Some "low" -> true
      | _ -> false
    in
    match admit t ~tenant ~low with
    | Shed _ -> immediate (status_line id [ ("status", Json.Str "overloaded") ])
    | Admit ->
      (* forward with the id pinned (shards must echo the front's id, not
         their per-connection sequence); other fields pass through *)
      let fwd =
        match j with
        | Json.Obj kvs ->
          Json.Obj (("id", id) :: List.filter (fun (k, _) -> k <> "id") kvs)
        | other -> other
      in
      let key = route_key j in
      let cell = new_cell () in
      let p =
        {
          p_line = Json.to_string fwd;
          p_key = key;
          p_id = id;
          p_sink = Client cell;
          p_dispatches = 1;
        }
      in
      cpush cconn
        (Some { ce_cell = cell; ce_t0 = t0; ce_admitted = true; ce_tenant = tenant });
      (match route t ~key ~avoid:(-1) with
      | Some slot when try_dispatch slot p -> note_route t ~key slot.s_idx
      | _ ->
        (* the routed shard died between the route and the write: reuse
           the bounded re-dispatch path (counts as a re-dispatch) *)
        redispatch t ~from:(-1) p))

let creader t cconn ic =
  let seq = ref 0 in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line ->
      if String.trim line <> "" then begin
        handle_line t cconn !seq line;
        incr seq
      end;
      loop ()
  in
  loop ();
  cpush cconn None

let spawn_cconn t fd =
  let cconn =
    { cc_fd = fd; cc_m = Mutex.create (); cc_cv = Condition.create (); cc_q = Queue.create () }
  in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let wt = Thread.create (fun () -> cwriter t cconn oc) () in
  let rt = Thread.create (fun () -> creader t cconn ic) () in
  Mutex.protect t.mm (fun () ->
      t.conns <- (fd, rt, wt) :: t.conns;
      t.st <- { t.st with connections = t.st.connections + 1 };
      Metrics.incr t.metrics "shard.connections" 1.0;
      if Trace.enabled t.cfg.trace then
        Trace.emit t.cfg.trace
          (Trace.Counter { name = "shard.connections"; value = 1.0 }))

(* ---- accept, drain, lifecycle ---- *)

let accept_loop t lfd =
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      (match Unix.select [ lfd ] [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true lfd with
        | exception Unix.Unix_error _ -> ()
        | fd, _ -> spawn_cconn t fd));
      loop ()
    end
  in
  loop ()

let flush_side_files t =
  (match t.cfg.metrics_path with
  | None -> ()
  | Some path ->
    Mutex.protect t.mm (fun () ->
        try Metrics.write_file t.metrics path with Sys_error _ -> ()));
  if Prof.enabled t.cfg.prof then
    match t.cfg.prof_path with
    | None -> ()
    | Some path -> ( try Prof.write_file t.cfg.prof path with Sys_error _ -> ())

let drain t =
  Mutex.protect t.mm (fun () -> t.draining <- true);
  List.iter
    (fun (lfd, kind) ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      if kind = `Unix then
        try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ())
    t.lfds;
  let conns = Mutex.protect t.mm (fun () -> t.conns) in
  (* blocked client readers see EOF; writers then forward every response
     for everything already admitted — shards stay up for exactly that *)
  List.iter
    (fun (fd, _, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    conns;
  List.iter
    (fun (_, rt, wt) ->
      Thread.join rt;
      Thread.join wt)
    conns;
  (* every admitted request is answered; now tear the shards down *)
  Atomic.set t.closing true;
  Array.iter
    (fun slot ->
      let handle, fd =
        Mutex.protect slot.s_m (fun () ->
            let h = slot.s_handle in
            slot.s_handle <- None;
            slot.s_alive <- false;
            (h, slot.s_fd))
      in
      (match handle with Some h -> h.h_stop () | None -> ());
      match fd with
      | Some fd -> (
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      | None -> ())
    t.slots;
  let aux = Mutex.protect t.mm (fun () -> t.aux) in
  List.iter Thread.join aux;
  flush_side_files t;
  Mutex.protect t.mm (fun () -> t.final <- Some t.st)

let request_stop t = Atomic.set t.stop true

let wait t =
  (match t.driver with Some th -> Thread.join th | None -> ());
  match Mutex.protect t.mm (fun () -> t.final) with
  | Some s -> s
  | None -> Mutex.protect t.mm (fun () -> t.st)

let stats t = Mutex.protect t.mm (fun () -> t.st)
let metrics t = t.metrics

(* ---- test hooks ---- *)

let kill_shard t i =
  if i < 0 || i >= Array.length t.slots then invalid_arg "Shard.kill_shard";
  let slot = t.slots.(i) in
  let handle, fd =
    Mutex.protect slot.s_m (fun () ->
        let h = slot.s_handle in
        slot.s_handle <- None;
        (h, slot.s_fd))
  in
  (match handle with Some h -> h.h_kill () | None -> ());
  (* sever the connection so the reader sees EOF even for an in-process
     backend whose graceful drain would otherwise still answer *)
  match fd with
  | Some fd -> ( try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
  | None -> ()

let shard_pending t i =
  if i < 0 || i >= Array.length t.slots then invalid_arg "Shard.shard_pending";
  let slot = t.slots.(i) in
  Mutex.protect slot.s_m (fun () -> Queue.length slot.s_fifo)

let shard_alive t i =
  if i < 0 || i >= Array.length t.slots then invalid_arg "Shard.shard_alive";
  let slot = t.slots.(i) in
  Mutex.protect slot.s_m (fun () -> slot.s_alive)

let shard_pids t =
  Array.to_list
    (Array.map
       (fun slot ->
         Mutex.protect slot.s_m (fun () ->
             Option.bind slot.s_handle (fun h -> h.h_pid)))
       t.slots)

(* ---- start ---- *)

let listen_unix path =
  match
    match Unix.stat path with
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
    | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      try
        Unix.unlink path;
        Ok ()
      with Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "shard: cannot unlink stale socket %s: %s" path
             (Unix.error_message e)))
    | _ -> Error (Printf.sprintf "shard: %s exists and is not a socket" path)
  with
  | Error _ as e -> e
  | Ok () -> (
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64
    with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "shard: cannot bind %s: %s" path (Unix.error_message e)))

let listen_tcp port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 64
  with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "shard: cannot bind tcp port %d: %s" port
         (Unix.error_message e))

let start cfg =
  let cfg =
    {
      cfg with
      shards = max 1 cfg.shards;
      queue_depth = max 1 cfg.queue_depth;
      redispatch_max = max 0 cfg.redispatch_max;
      low_watermark = Float.min 1.0 (Float.max 0.0 cfg.low_watermark);
    }
  in
  let t =
    {
      cfg;
      slots =
        Array.init cfg.shards (fun i ->
            {
              s_idx = i;
              s_m = Mutex.create ();
              s_alive = false;
              s_gen = 0;
              s_fd = None;
              s_oc = None;
              s_fifo = Queue.create ();
              s_handle = None;
              s_last_pong = 0.0;
            });
      ring = build_ring cfg.shards;
      stop = Atomic.make false;
      closing = Atomic.make false;
      mm = Mutex.create ();
      metrics = Metrics.create ();
      st = zero_stats;
      inflight = 0;
      tenants = Hashtbl.create 16;
      routes = Hashtbl.create 1024;
      draining = false;
      conns = [];
      aux = [];
      lfds = [];
      driver = None;
      final = None;
      hb_seq = Atomic.make 0;
      id_seq = Atomic.make 0;
    }
  in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* bring every shard up before accepting any client *)
  let rec bring i =
    if i >= cfg.shards then Ok ()
    else
      match bringup t t.slots.(i) with
      | Ok () -> bring (i + 1)
      | Error e -> Error e
  in
  let teardown () =
    Atomic.set t.closing true;
    Array.iter
      (fun slot ->
        (match Mutex.protect slot.s_m (fun () -> slot.s_handle) with
        | Some h -> h.h_stop ()
        | None -> ());
        match Mutex.protect slot.s_m (fun () -> slot.s_fd) with
        | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
        | None -> ())
      t.slots
  in
  match bring 0 with
  | Error e ->
    teardown ();
    Error e
  | Ok () -> (
    let listeners =
      match listen_unix cfg.socket_path with
      | Error _ as e -> e
      | Ok ufd -> (
        match cfg.tcp_port with
        | None -> Ok [ (ufd, `Unix) ]
        | Some port -> (
          match listen_tcp port with
          | Ok tfd -> Ok [ (ufd, `Unix); (tfd, `Tcp) ]
          | Error e ->
            (try Unix.close ufd with Unix.Unix_error _ -> ());
            Error e))
    in
    match listeners with
    | Error e ->
      teardown ();
      Error e
    | Ok lfds ->
      t.lfds <- lfds;
      (match cfg.heartbeat_s with
      | Some h when h > 0.0 -> track t (Thread.create (fun () -> heartbeater t h) ())
      | _ -> ());
      let accepts =
        List.map (fun (lfd, _) -> Thread.create (fun () -> accept_loop t lfd) ()) lfds
      in
      t.driver <-
        Some
          (Thread.create
             (fun () ->
               List.iter Thread.join accepts;
               drain t)
             ());
      Ok t)
