(** Load generator for the {!Serve} front end (and the sharded {!Shard}
    front tier).

    Opens [connections] connections to a target, paces [rps] requests per
    second (split evenly across connections) for [duration_s] seconds,
    then half-closes the send side and reads every response. Responses
    arrive in request order per connection, so the [k]-th response line
    is matched to the [k]-th send timestamp for latency measurement.

    Targets are ["unix:PATH"], ["tcp:HOST:PORT"], or a bare path
    (treated as a Unix-domain socket path) — the same syntax the
    [infs_run serve --client --target] flag accepts.

    Latency quantiles are the caller's job ({!Stats.quantile} on
    {!result.ok_latency_us}); this module only collects. *)

type result = {
  sent : int;
  ok : int;
  overloaded : int;  (** shed by admission control *)
  timeout : int;  (** deadline exceeded server-side *)
  error : int;  (** [status:"error"] responses + unparseable responses *)
  degraded : int;
  cancelled : int;
  unanswered : int;  (** sent but the connection closed before a response *)
  wall_s : float;  (** first send to last response *)
  ok_latency_us : float list;  (** per-request latency of [ok] responses *)
  all_latency_us : float list;  (** latency of every answered request *)
  ok_reports : (string * string) list;
      (** when [collect_reports > 0]: up to that many
          [(request body, report)] exemplar pairs, one per {e distinct}
          request body, where the report is the response's ["report"]
          member re-serialized canonically ({!Json.to_string}) — so it
          compares byte-for-byte against a direct run of the same spec.
          Empty when collection is off. *)
}

val answered : result -> int
(** [ok + overloaded + timeout + error + degraded + cancelled]. *)

val run :
  socket:string ->
  rps:float ->
  duration_s:float ->
  ?connections:int ->
  ?collect_reports:int ->
  body:(int -> string) ->
  unit ->
  (result, string) Stdlib.result
(** [run ~socket ~rps ~duration_s ~body ()] drives the server. [socket]
    is a target string (["unix:PATH"], ["tcp:HOST:PORT"], or a bare
    Unix-socket path). [body i] is the request line for the [i]-th
    request overall (no trailing newline; must be a single line).
    [connections] defaults to 1 and is clamped to at least 1.
    [collect_reports] (default 0 = off) caps {!result.ok_reports}.
    Fails if any connection cannot be established. *)
