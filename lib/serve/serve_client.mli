(** Load generator for the {!Serve} front end.

    Opens [connections] Unix-socket connections, paces [rps] requests per
    second (split evenly across connections) for [duration_s] seconds,
    then half-closes the send side and reads every response. Responses
    arrive in request order per connection, so the [k]-th response line
    is matched to the [k]-th send timestamp for latency measurement.

    Latency quantiles are the caller's job ({!Stats.quantile} on
    {!result.ok_latency_us}); this module only collects. *)

type result = {
  sent : int;
  ok : int;
  overloaded : int;  (** shed by admission control *)
  timeout : int;  (** deadline exceeded server-side *)
  error : int;  (** [status:"error"] responses + unparseable responses *)
  degraded : int;
  cancelled : int;
  unanswered : int;  (** sent but the connection closed before a response *)
  wall_s : float;  (** first send to last response *)
  ok_latency_us : float list;  (** per-request latency of [ok] responses *)
  all_latency_us : float list;  (** latency of every answered request *)
}

val answered : result -> int
(** [ok + overloaded + timeout + error + degraded + cancelled]. *)

val run :
  socket:string ->
  rps:float ->
  duration_s:float ->
  ?connections:int ->
  body:(int -> string) ->
  unit ->
  (result, string) Stdlib.result
(** [run ~socket ~rps ~duration_s ~body ()] drives the server. [body i]
    is the request line for the [i]-th request overall (no trailing
    newline; must be a single line). [connections] defaults to 1 and is
    clamped to at least 1. Fails if any connection cannot be
    established. *)
