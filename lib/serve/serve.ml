(* Persistent request server over the domain pool.

   Thread/domain layout: the listening socket is drained by one accept
   thread; each connection gets a reader thread (parse + admission +
   pool submission) and a writer thread (await outcomes and emit one
   response line per request, in request order). Threads are systhreads
   — they spend their lives blocked on I/O or on pool condition
   variables — while the actual work runs on the pool's worker domains,
   so request execution is parallel even though connection plumbing is
   not.

   Admission is a single counter under the server lock: a request is
   admitted iff fewer than [queue_depth] admitted requests are still
   unanswered, otherwise it is shed with a structured [overloaded]
   response. The counter is released when the response for the request
   is resolved (not when the job finishes), so the bound also caps the
   per-connection response backlog.

   Drain: [request_stop] sets a flag; the accept thread notices, closes
   the listen socket, shuts down every connection's read side (blocked
   readers see EOF), joins the connection threads — which first answer
   everything already admitted — then shuts the pool down and flushes
   the metrics side file. Queued-but-unstarted pool jobs are never
   cancelled by a drain because writers await every ticket before their
   reader/writer pair exits. *)

type config = {
  socket_path : string;
  jobs : int;
  queue_depth : int;
  default_timeout_s : float option;
  metrics_path : string option;
  trace : Trace.t;
  prof : Prof.t;
  prof_path : string option;
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = Pool.recommended_jobs ();
    queue_depth = 64;
    default_timeout_s = None;
    metrics_path = None;
    trace = Trace.null;
    prof = Prof.null;
    prof_path = None;
  }

type stats = {
  connections : int;
  received : int;
  admitted : int;
  shed : int;
  bad : int;
  ok : int;
  failed : int;
  deadline_exceeded : int;
  degraded : int;
  cancelled : int;
  pings : int;
  drained : int;
}

let answered s = s.ok + s.failed + s.deadline_exceeded + s.degraded + s.cancelled

let zero_stats =
  {
    connections = 0;
    received = 0;
    admitted = 0;
    shed = 0;
    bad = 0;
    ok = 0;
    failed = 0;
    deadline_exceeded = 0;
    degraded = 0;
    cancelled = 0;
    pings = 0;
    drained = 0;
  }

type response =
  | R_ok of Json.t
  | R_error of string
  | R_overloaded
  | R_timeout
  | R_degraded of string
  | R_cancelled
  | R_pong

let response_json id resp =
  Json.Obj
    (("id", id)
    ::
    (match resp with
    | R_ok payload -> [ ("status", Json.Str "ok"); ("report", payload) ]
    | R_error e -> [ ("status", Json.Str "error"); ("error", Json.Str e) ]
    | R_overloaded -> [ ("status", Json.Str "overloaded") ]
    | R_timeout -> [ ("status", Json.Str "timeout") ]
    | R_degraded e -> [ ("status", Json.Str "degraded"); ("error", Json.Str e) ]
    | R_cancelled -> [ ("status", Json.Str "cancelled") ]
    | R_pong -> [ ("status", Json.Str "pong") ]))

(* one request the writer still owes a response line. Ticket jobs return
   (start, stop, result) wall times so the writer can split the request's
   latency into queue-wait (admission -> worker start) and run. *)
type entry = {
  e_id : Json.t;  (* echoed request id (or the per-connection sequence) *)
  e_t0 : float;  (* wall time the request line was read *)
  e_admitted : bool;
  e_outcome :
    [ `Ticket of (float * float * (Json.t, string) result) Pool.ticket
    | `Now of response ];
}

type conn = {
  c_fd : Unix.file_descr;
  c_qm : Mutex.t;
  c_qcv : Condition.t;
  c_q : entry option Queue.t;  (* None = reader done, flush and close *)
}

type t = {
  cfg : config;
  handler : Json.t -> (Json.t, string) result;
  pool : Pool.t;
  lfd : Unix.file_descr;
  stop : bool Atomic.t;
  mm : Mutex.t;  (* guards st, inflight, conns, metrics, trace *)
  metrics : Metrics.t;
  mutable st : stats;
  mutable inflight : int;  (* admitted, response not yet resolved *)
  mutable draining : bool;
  mutable conns : (Unix.file_descr * Thread.t * Thread.t) list;
  mutable accept_thread : Thread.t option;
  mutable final : stats option;  (* set once the drain completed *)
}

(* monotonic: request latencies and queue-wait/run splits must survive a
   wall-clock step without going negative *)
let now () = Clock.now ()

(* Counter bump + same-named metrics counter + same-named trace Counter
   event, all under [mm] so the systhreads never interleave inside the
   (single-domain) registry or sink. *)
let record t name up =
  Mutex.protect t.mm (fun () ->
      t.st <- up t.st;
      Metrics.incr t.metrics name 1.0;
      if Trace.enabled t.cfg.trace then
        Trace.emit t.cfg.trace (Trace.Counter { name; value = 1.0 }))

(* ---- connection: writer side ---- *)

let push conn v =
  Mutex.protect conn.c_qm (fun () ->
      Queue.push v conn.c_q;
      Condition.signal conn.c_qcv)

let pop conn =
  Mutex.lock conn.c_qm;
  while Queue.is_empty conn.c_q do
    Condition.wait conn.c_qcv conn.c_qm
  done;
  let v = Queue.pop conn.c_q in
  Mutex.unlock conn.c_qm;
  v

(* Response plus, when the handler actually ran to completion, the
   request's (queue_wait_us, run_us) split. Timeouts, cancellations and
   crashed handlers have no reliable timing and yield [None]. *)
let resolve_outcome entry =
  match entry.e_outcome with
  | `Now r -> (r, None)
  | `Ticket tk -> (
    match Pool.await tk with
    | Ok (start, stop, r) ->
      let timing =
        Some ((start -. entry.e_t0) *. 1e6, (stop -. start) *. 1e6)
      in
      ((match r with Ok payload -> R_ok payload | Error e -> R_error e), timing)
    | Error (Pool.Failed e) -> (R_error e, None)
    | Error Pool.Timed_out -> (R_timeout, None)
    | Error (Pool.Degraded e) -> (R_degraded e, None)
    | Error Pool.Cancelled -> (R_cancelled, None))

(* One lifecycle-stage span for [entry]: a [Request_span] trace event and
   a [serve;request;<stage>] profiler row, both under [mm] (the prof
   registry, like the trace sink, is unsynchronized — the server lock is
   its synchronization). *)
let request_span t entry stage us =
  if Trace.enabled t.cfg.trace || Prof.enabled t.cfg.prof then
    Mutex.protect t.mm (fun () ->
        if Trace.enabled t.cfg.trace then
          Trace.emit t.cfg.trace
            (Trace.Request_span
               { request = Json.to_string entry.e_id; stage; us });
        if Prof.enabled t.cfg.prof then
          Prof.record_path t.cfg.prof ("serve;request;" ^ stage)
            ~ns:(us *. 1e3) ())

(* Resolve-time accounting. Shed and malformed requests were already
   counted when the reader answered them immediately, so only admitted
   entries bump outcome counters (and the latency histogram) here. *)
let account t entry resp timing =
  (match timing with
  | None -> ()
  | Some (queue_wait_us, run_us) ->
    request_span t entry "queue_wait" queue_wait_us;
    request_span t entry "run" run_us);
  let lat_us = (now () -. entry.e_t0) *. 1e6 in
  Mutex.protect t.mm (fun () ->
      if entry.e_admitted then begin
        let name =
          match resp with
          | R_ok _ -> "serve.ok"
          | R_error _ -> "serve.failed"
          | R_timeout -> "serve.deadline_exceeded"
          | R_degraded _ -> "serve.degraded"
          | R_cancelled -> "serve.cancelled"
          | R_overloaded | R_pong -> "serve.shed" (* unreachable for admitted *)
        in
        t.st <-
          (match resp with
          | R_ok _ -> { t.st with ok = t.st.ok + 1 }
          | R_error _ -> { t.st with failed = t.st.failed + 1 }
          | R_timeout ->
            { t.st with deadline_exceeded = t.st.deadline_exceeded + 1 }
          | R_degraded _ -> { t.st with degraded = t.st.degraded + 1 }
          | R_cancelled -> { t.st with cancelled = t.st.cancelled + 1 }
          | R_overloaded | R_pong -> t.st);
        Metrics.incr t.metrics name 1.0;
        Metrics.gauge_add t.metrics "serve.queue_depth" (-1.0);
        Metrics.observe t.metrics "serve.latency_us" lat_us;
        t.inflight <- t.inflight - 1;
        if Trace.enabled t.cfg.trace then
          Trace.emit t.cfg.trace (Trace.Counter { name; value = 1.0 })
      end;
      if t.draining then begin
        t.st <- { t.st with drained = t.st.drained + 1 };
        Metrics.incr t.metrics "serve.drained" 1.0
      end)

let writer t conn oc =
  let rec loop () =
    match pop conn with
    | None -> ()
    | Some entry ->
      let resp, timing = resolve_outcome entry in
      account t entry resp timing;
      (* a client that hung up must not stop us from awaiting (and
         accounting) the rest of its admitted requests *)
      let w0 = now () in
      (try
         output_string oc (Json.to_string (response_json entry.e_id resp));
         output_char oc '\n';
         flush oc
       with Sys_error _ -> ());
      (* write_back closes the admission->answer span triple; requests
         without timing (timeout/cancel/crash) emit no spans at all, so
         every stage has the same event count *)
      if timing <> None then
        request_span t entry "write_back" ((now () -. w0) *. 1e6);
      loop ()
  in
  loop ();
  (try flush oc with Sys_error _ -> ());
  (try Unix.close conn.c_fd with Unix.Unix_error _ -> ())

(* ---- connection: reader side ---- *)

let request_id parsed seq =
  match parsed with
  | Ok j -> (
    match Json.member "id" j with
    | Some (Json.Num _ as v) | Some (Json.Str _ as v) -> v
    | _ -> Json.Num (float_of_int seq))
  | Error _ -> Json.Num (float_of_int seq)

let request_timeout t j =
  match Json.member "timeout_s" j with
  | None -> Ok t.cfg.default_timeout_s
  | Some v -> (
    match Json.to_num v with
    | Some f when f > 0.0 -> Ok (Some f)
    | _ -> Error "field timeout_s must be a positive number")

let handle_line t conn seq line =
  let t0 = now () in
  let parsed = Json.parse (String.trim line) in
  let id = request_id parsed seq in
  let immediate resp admitted =
    push conn (Some { e_id = id; e_t0 = t0; e_admitted = admitted; e_outcome = `Now resp })
  in
  record t "serve.received" (fun s -> { s with received = s.received + 1 });
  match parsed with
  | Error e ->
    record t "serve.bad_requests" (fun s -> { s with bad = s.bad + 1 });
    immediate (R_error ("parse error: " ^ e)) false
  | Ok j when Json.member "ping" j <> None ->
    (* liveness probe (the sharded front tier's heartbeat): answered
       in-line, in order with real responses, without touching admission *)
    record t "serve.pings" (fun s -> { s with pings = s.pings + 1 });
    immediate R_pong false
  | Ok j -> (
    match request_timeout t j with
    | Error e ->
      record t "serve.bad_requests" (fun s -> { s with bad = s.bad + 1 });
      immediate (R_error e) false
    | Ok timeout_s -> (
      let admitted =
        Mutex.protect t.mm (fun () ->
            if t.draining || t.inflight >= t.cfg.queue_depth then begin
              t.st <- { t.st with shed = t.st.shed + 1 };
              Metrics.incr t.metrics "serve.shed" 1.0;
              if Trace.enabled t.cfg.trace then
                Trace.emit t.cfg.trace
                  (Trace.Counter { name = "serve.shed"; value = 1.0 });
              false
            end
            else begin
              t.inflight <- t.inflight + 1;
              t.st <- { t.st with admitted = t.st.admitted + 1 };
              Metrics.incr t.metrics "serve.admitted" 1.0;
              Metrics.gauge_add t.metrics "serve.queue_depth" 1.0;
              if Trace.enabled t.cfg.trace then
                Trace.emit t.cfg.trace
                  (Trace.Counter { name = "serve.admitted"; value = 1.0 });
              true
            end)
      in
      if not admitted then immediate R_overloaded false
      else
        let tk =
          Pool.submit t.pool ?timeout_s (fun () ->
              let start = now () in
              let r = t.handler j in
              (start, now (), r))
        in
        push conn
          (Some { e_id = id; e_t0 = t0; e_admitted = true; e_outcome = `Ticket tk })))

let reader t conn ic =
  let seq = ref 0 in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line ->
      if String.trim line <> "" then begin
        handle_line t conn !seq line;
        incr seq
      end;
      loop ()
  in
  loop ();
  push conn None

let spawn_conn t fd =
  let conn =
    {
      c_fd = fd;
      c_qm = Mutex.create ();
      c_qcv = Condition.create ();
      c_q = Queue.create ();
    }
  in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let wt = Thread.create (fun () -> writer t conn oc) () in
  let rt = Thread.create (fun () -> reader t conn ic) () in
  Mutex.protect t.mm (fun () ->
      t.conns <- (fd, rt, wt) :: t.conns;
      t.st <- { t.st with connections = t.st.connections + 1 };
      Metrics.incr t.metrics "serve.connections" 1.0;
      if Trace.enabled t.cfg.trace then
        Trace.emit t.cfg.trace
          (Trace.Counter { name = "serve.connections"; value = 1.0 }))

(* ---- accept loop & drain ---- *)

let flush_side_file t =
  match t.cfg.metrics_path with
  | None -> ()
  | Some path ->
    Mutex.protect t.mm (fun () ->
        let ps = Pool.stats t.pool in
        Metrics.gauge_add t.metrics "pool.wall_s" ps.Pool.wall_s;
        Array.iteri
          (fun i (jobs_run, busy_s) ->
            let labels = [ ("worker", string_of_int i) ] in
            Metrics.incr t.metrics ~labels "pool.worker.jobs"
              (float_of_int jobs_run);
            Metrics.gauge_add t.metrics ~labels "pool.worker.busy_s" busy_s;
            Metrics.gauge_add t.metrics ~labels "pool.worker.busy_frac"
              (busy_s /. Float.max 1e-9 ps.Pool.wall_s))
          ps.Pool.workers;
        try Metrics.write_file t.metrics path with Sys_error _ -> ())

(* Only after [Pool.shutdown]: the join makes the worker counters exact
   and leaves this the sole domain touching the registry. *)
let flush_prof_file t =
  if Prof.enabled t.cfg.prof then begin
    Pool.profile_into t.pool t.cfg.prof;
    match t.cfg.prof_path with
    | None -> ()
    | Some path -> ( try Prof.write_file t.cfg.prof path with Sys_error _ -> ())
  end

let drain t =
  Mutex.protect t.mm (fun () -> t.draining <- true);
  (try Unix.close t.lfd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  let conns = Mutex.protect t.mm (fun () -> t.conns) in
  (* blocked readers see EOF; writers then answer everything admitted *)
  List.iter
    (fun (fd, _, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    conns;
  List.iter
    (fun (_, rt, wt) ->
      Thread.join rt;
      Thread.join wt)
    conns;
  Pool.shutdown t.pool;
  flush_side_file t;
  flush_prof_file t;
  Mutex.protect t.mm (fun () -> t.final <- Some t.st)

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      (match Unix.select [ t.lfd ] [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.lfd with
        | exception Unix.Unix_error _ -> ()
        | fd, _ -> spawn_conn t fd));
      loop ()
    end
  in
  loop ();
  drain t

(* ---- lifecycle ---- *)

let bindable path =
  match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    (* a previous server's stale socket: the bind below would fail with
       EADDRINUSE even though nobody is listening *)
    (try
       Unix.unlink path;
       Ok ()
     with Unix.Unix_error (e, _, _) ->
       Error
         (Printf.sprintf "serve: cannot unlink stale socket %s: %s" path
            (Unix.error_message e)))
  | _ -> Error (Printf.sprintf "serve: %s exists and is not a socket" path)

let start cfg ~handler =
  let cfg = { cfg with jobs = max 1 cfg.jobs; queue_depth = max 1 cfg.queue_depth } in
  match bindable cfg.socket_path with
  | Error e -> Error e
  | Ok () -> (
    let lfd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match
      Unix.bind lfd (Unix.ADDR_UNIX cfg.socket_path);
      Unix.listen lfd 64
    with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "serve: cannot bind %s: %s" cfg.socket_path
           (Unix.error_message e))
    | () ->
      (* a client hanging up mid-response must not kill the process *)
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ -> ());
      let t =
        {
          cfg;
          handler;
          pool = Pool.create ~jobs:cfg.jobs ();
          lfd;
          stop = Atomic.make false;
          mm = Mutex.create ();
          metrics = Metrics.create ();
          st = zero_stats;
          inflight = 0;
          draining = false;
          conns = [];
          accept_thread = None;
          final = None;
        }
      in
      t.accept_thread <- Some (Thread.create accept_loop t);
      Ok t)

let request_stop t = Atomic.set t.stop true

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  match Mutex.protect t.mm (fun () -> t.final) with
  | Some s -> s
  | None -> Mutex.protect t.mm (fun () -> t.st)

let stats t = Mutex.protect t.mm (fun () -> t.st)
let metrics t = t.metrics
