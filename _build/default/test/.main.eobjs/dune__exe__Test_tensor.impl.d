test/test_tensor.ml: Alcotest Array Dense Float Fun Hyperrect List Printf QCheck QCheck_alcotest String
