test/test_workloads.ml: Alcotest Array Ast Dtype Extract Float Frontend Fun Infinity_stream Infs_workloads Interp List Option Printf QCheck QCheck_alcotest Stdlib String Symaff Tdfg_eval
