test/test_engine.ml: Alcotest Ast Dtype Infinity_stream Infs_workloads List Machine_config Printf Result Symaff
