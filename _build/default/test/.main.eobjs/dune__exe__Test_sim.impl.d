test/test_sim.ml: Alcotest Area Ast Bitserial Breakdown Command Corem Dram Dtype Energy Float Hyperrect Imc Infinity_stream Infs_workloads Kernel_info List Machine_config Near Op Traffic Workset
