test/test_tdfg.ml: Alcotest Array Ast Dtype Interp List Op Result Symaff Symrect Tdfg Tdfg_eval
