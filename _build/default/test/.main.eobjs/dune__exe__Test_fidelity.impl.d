test/test_fidelity.ml: Alcotest Array Command Dtype Fun Hashtbl Hyperrect Jit Layout List Machine_config Option Pattern QCheck QCheck_alcotest Schedule Symrect Tdfg
