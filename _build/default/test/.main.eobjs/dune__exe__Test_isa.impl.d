test/test_isa.ml: Alcotest Bitserial Command Dtype Float Hyperrect List Machine_config Op Option Pattern QCheck QCheck_alcotest
