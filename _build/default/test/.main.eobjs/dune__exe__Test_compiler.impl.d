test/test_compiler.ml: Alcotest Ast Dtype Fat_binary Frontend Infinity_stream Infs_workloads Jit Kernel_info Layout List Machine_config Op Printf Result Schedule Symaff Tdfg
