test/test_runtime.ml: Alcotest Array Command Decision Dtype Fat_binary Hyperrect Infinity_stream Infs_workloads Jit Layout List Machine_config Op QCheck QCheck_alcotest Result Schedule Symrect Tdfg
