test/test_lang.ml: Alcotest Array Ast Dtype Hashtbl Hyperrect Interp List Op QCheck QCheck_alcotest Result Symaff Symrect
