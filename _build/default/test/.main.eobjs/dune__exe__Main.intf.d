test/main.mli:
