test/test_egraph.ml: Alcotest Array Ast Dtype Egraph Extract Float Frontend Infinity_stream Infs_workloads Interp List Op Printf Rules Symaff Symrect Tdfg Tdfg_eval
