test/main.ml: Alcotest Test_compiler Test_edge Test_egraph Test_engine Test_fidelity Test_isa Test_lang Test_runtime Test_sdfg Test_sim Test_tdfg Test_tensor Test_util Test_workloads
