test/test_sdfg.ml: Alcotest Ast Egraph Infinity_stream Infs_workloads List Op Rules Sdfg String Symaff Symrect Tdfg
