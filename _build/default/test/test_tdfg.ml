(* tDFG IR: construction, hash-consing, domains, validation, evaluation. *)

let n = Symaff.var "N"

let sr ranges = Symrect.make ranges

let mk_graph () = Tdfg.create ~name:"g" ~dims:1 ~dtype:Dtype.Fp32

let test_hashcons () =
  let g = mk_graph () in
  let a1 = Tdfg.tensor g ~array:"A" ~view:(sr [ (Symaff.zero, n) ]) ~axes:[ 0 ] in
  let a2 = Tdfg.tensor g ~array:"A" ~view:(sr [ (Symaff.zero, n) ]) ~axes:[ 0 ] in
  Alcotest.(check int) "identical nodes share id" a1 a2;
  let b = Tdfg.tensor g ~array:"B" ~view:(sr [ (Symaff.zero, n) ]) ~axes:[ 0 ] in
  Alcotest.(check bool) "distinct nodes differ" true (a1 <> b);
  Alcotest.(check int) "count" 2 (Tdfg.node_count g)

let test_domains () =
  let g = mk_graph () in
  let a = Tdfg.tensor g ~array:"A" ~view:(sr [ (Symaff.const 2, n) ]) ~axes:[ 0 ] in
  let m = Tdfg.mv g a ~dim:0 ~dist:(-1) in
  (match Tdfg.domain g m with
  | Tdfg.Finite r -> Alcotest.(check string) "moved" "[1,N-1)" (Symrect.to_string r)
  | Tdfg.Infinite -> Alcotest.fail "finite expected");
  let k = Tdfg.const_lit g 3.0 in
  Alcotest.(check bool) "const infinite" true (Tdfg.domain g k = Tdfg.Infinite);
  let s = Tdfg.cmp g Op.Mul [ m; k ] in
  (match Tdfg.domain g s with
  | Tdfg.Finite r ->
    Alcotest.(check string) "cmp with const keeps finite side" "[1,N-1)"
      (Symrect.to_string r)
  | Tdfg.Infinite -> Alcotest.fail "finite expected");
  let red = Tdfg.reduce g Op.Add s ~dim:0 in
  match Tdfg.domain g red with
  | Tdfg.Finite r -> Alcotest.(check string) "collapsed" "[1,2)" (Symrect.to_string r)
  | Tdfg.Infinite -> Alcotest.fail "finite expected"

let test_cmp_domain_intersection () =
  let g = mk_graph () in
  let a = Tdfg.tensor g ~array:"A" ~view:(sr [ (Symaff.zero, Symaff.add_const n (-1)) ]) ~axes:[ 0 ] in
  let b = Tdfg.tensor g ~array:"A" ~view:(sr [ (Symaff.one, n) ]) ~axes:[ 0 ] in
  let s = Tdfg.cmp g Op.Add [ a; b ] in
  match Tdfg.domain g s with
  | Tdfg.Finite r -> Alcotest.(check string) "intersect" "[1,N-1)" (Symrect.to_string r)
  | Tdfg.Infinite -> Alcotest.fail "finite expected"

let test_validate_bc_extent () =
  let g = Tdfg.create ~name:"g" ~dims:2 ~dtype:Dtype.Fp32 in
  let a =
    Tdfg.tensor g ~array:"A" ~view:(sr [ (Symaff.zero, n); (Symaff.zero, n) ]) ~axes:[ 0; 1 ]
  in
  let bad = Tdfg.bc g a ~dim:1 ~lo:Symaff.zero ~hi:n in
  Tdfg.add_output g (Tdfg.Out_tensor { src = bad; array = "A"; axes = [ 0; 1 ] });
  Alcotest.(check bool) "bc of extent>1 rejected" true
    (Result.is_error (Tdfg.validate g))

let test_validate_arity () =
  let g = mk_graph () in
  let a = Tdfg.tensor g ~array:"A" ~view:(sr [ (Symaff.zero, n) ]) ~axes:[ 0 ] in
  let bad = Tdfg.cmp g Op.Add [ a ] in
  Tdfg.add_output g (Tdfg.Out_tensor { src = bad; array = "A"; axes = [ 0 ] });
  Alcotest.(check bool) "arity" true (Result.is_error (Tdfg.validate g))

let test_live_and_stats () =
  let g = mk_graph () in
  let a = Tdfg.tensor g ~array:"A" ~view:(sr [ (Symaff.zero, n) ]) ~axes:[ 0 ] in
  let _dead = Tdfg.tensor g ~array:"D" ~view:(sr [ (Symaff.zero, n) ]) ~axes:[ 0 ] in
  let s = Tdfg.cmp g Op.Mul [ a; Tdfg.const_lit g 2.0 ] in
  Tdfg.add_output g (Tdfg.Out_tensor { src = s; array = "B"; axes = [ 0 ] });
  Alcotest.(check int) "live excludes dead" 3 (List.length (Tdfg.live_nodes g));
  Alcotest.(check (list string)) "inputs" [ "A" ] (Tdfg.input_arrays g);
  Alcotest.(check (list string)) "outputs" [ "B" ] (Tdfg.output_arrays g);
  Alcotest.(check (list (pair string int)))
    "stats" [ ("cmp", 1); ("const", 1); ("tensor", 1) ] (Tdfg.stats g);
  Alcotest.(check (list (pair string int)))
    "ops"
    [ ("mul", 1) ]
    (List.map (fun (op, c) -> (Op.to_string op, c)) (Tdfg.op_multiset g))

let test_runtime_scalars () =
  let g = mk_graph () in
  let a = Tdfg.tensor g ~array:"A" ~view:(sr [ (Symaff.zero, n) ]) ~axes:[ 0 ] in
  let s = Tdfg.cmp g Op.Div [ a; Tdfg.const_runtime g "akk" ] in
  Tdfg.add_output g (Tdfg.Out_tensor { src = s; array = "A"; axes = [ 0 ] });
  Alcotest.(check (list string)) "scalars" [ "akk" ] (Tdfg.runtime_scalars g)

(* Evaluation against the interpreter store. *)

let feq = Alcotest.float 1e-5

let with_env arrays params f =
  let open Ast in
  let decls = List.map (fun (name, dims) -> array name Dtype.Fp32 dims) arrays in
  let prog = program ~name:"t" ~params ~arrays:decls [] in
  match Interp.create prog ~params:(List.map (fun p -> (p, 8)) params) with
  | Error e -> Alcotest.fail e
  | Ok env -> f env

let test_eval_stencil_semantics () =
  with_env [ ("A", [ n ]); ("B", [ n ]) ] [ "N" ] (fun env ->
      Interp.set_array env "A" (Array.init 8 float_of_int);
      let g = mk_graph () in
      (* B[1..7) = A[i-1] + A[i+1] *)
      let a0 = Tdfg.tensor g ~array:"A" ~view:(sr [ (Symaff.zero, Symaff.add_const n (-2)) ]) ~axes:[ 0 ] in
      let a0m = Tdfg.mv g a0 ~dim:0 ~dist:1 in
      let a2 = Tdfg.tensor g ~array:"A" ~view:(sr [ (Symaff.const 2, n) ]) ~axes:[ 0 ] in
      let a2m = Tdfg.mv g a2 ~dim:0 ~dist:(-1) in
      let s = Tdfg.cmp g Op.Add [ a0m; a2m ] in
      Tdfg.add_output g (Tdfg.Out_tensor { src = s; array = "B"; axes = [ 0 ] });
      Tdfg_eval.eval g env;
      let b = Interp.get_array env "B" in
      Alcotest.check feq "B[1] = A[0]+A[2]" 2.0 b.(1);
      Alcotest.check feq "B[6] = A[5]+A[7]" 12.0 b.(6);
      Alcotest.check feq "B[0] untouched" 0.0 b.(0))

let test_eval_bc_and_reduce () =
  with_env [ ("A", [ n ]); ("S", [ Ast.c 1 ]) ] [ "N" ] (fun env ->
      Interp.set_array env "A" (Array.make 8 2.0);
      let g = mk_graph () in
      let a = Tdfg.tensor g ~array:"A" ~view:(sr [ (Symaff.zero, n) ]) ~axes:[ 0 ] in
      let sq = Tdfg.cmp g Op.Mul [ a; a ] in
      let red = Tdfg.reduce g Op.Add sq ~dim:0 in
      Tdfg.add_output g (Tdfg.Out_tensor { src = red; array = "S"; axes = [ 0 ] });
      Tdfg_eval.eval g env;
      Alcotest.check feq "sum of squares" 32.0 (Interp.get_array env "S").(0))

let test_eval_gather_stream () =
  with_env [ ("A", [ n ]); ("IX", [ n ]); ("G", [ n ]) ] [ "N" ] (fun env ->
      Interp.set_array env "A" (Array.init 8 (fun i -> float_of_int (i * 10)));
      Interp.set_array env "IX" [| 3.; 1.; 0.; 2.; 4.; 5.; 6.; 7. |];
      let g = mk_graph () in
      let sl =
        Tdfg.add g
          (Tdfg.Stream_load
             {
               array = "A";
               view = sr [ (Symaff.zero, n) ];
               coords = [ Tdfg.Cgather { index = "IX"; at = [ Symaff.var "d0" ] } ];
             })
      in
      Tdfg.add_output g (Tdfg.Out_tensor { src = sl; array = "G"; axes = [ 0 ] });
      Tdfg_eval.eval g env;
      let got = Interp.get_array env "G" in
      Alcotest.check feq "g0" 30.0 got.(0);
      Alcotest.check feq "g1" 10.0 got.(1))

let test_eval_scatter_accum () =
  with_env [ ("SRC", [ n ]); ("IX", [ n ]); ("ACC", [ n ]) ] [ "N" ] (fun env ->
      Interp.set_array env "SRC" (Array.make 8 1.0);
      Interp.set_array env "IX" [| 0.; 0.; 1.; 1.; 1.; 2.; 2.; 2. |];
      let g = mk_graph () in
      let s = Tdfg.tensor g ~array:"SRC" ~view:(sr [ (Symaff.zero, n) ]) ~axes:[ 0 ] in
      Tdfg.add_output g
        (Tdfg.Out_stream
           {
             src = s;
             array = "ACC";
             coords = [ Tdfg.Cgather { index = "IX"; at = [ Symaff.var "d0" ] } ];
             accum = Some Op.Add;
           });
      Tdfg_eval.eval g env;
      let acc = Interp.get_array env "ACC" in
      Alcotest.check feq "bucket 0" 2.0 acc.(0);
      Alcotest.check feq "bucket 1" 3.0 acc.(1);
      Alcotest.check feq "bucket 2" 3.0 acc.(2))

let test_eval_shrink_of_const () =
  with_env [ ("O", [ n ]) ] [ "N" ] (fun env ->
      let g = mk_graph () in
      let k = Tdfg.const_lit g 7.0 in
      let s = Tdfg.shrink g k ~rect:(sr [ (Symaff.zero, n) ]) in
      Tdfg.add_output g (Tdfg.Out_tensor { src = s; array = "O"; axes = [ 0 ] });
      Tdfg_eval.eval g env;
      Alcotest.check feq "materialized" 7.0 (Interp.get_array env "O").(5))

let suite =
  [
    ("hashcons", `Quick, test_hashcons);
    ("domains", `Quick, test_domains);
    ("cmp domain intersection", `Quick, test_cmp_domain_intersection);
    ("validate bc extent", `Quick, test_validate_bc_extent);
    ("validate arity", `Quick, test_validate_arity);
    ("live nodes and stats", `Quick, test_live_and_stats);
    ("runtime scalars", `Quick, test_runtime_scalars);
    ("eval: stencil semantics", `Quick, test_eval_stencil_semantics);
    ("eval: bc and reduce", `Quick, test_eval_bc_and_reduce);
    ("eval: gather stream", `Quick, test_eval_gather_stream);
    ("eval: scatter accumulate", `Quick, test_eval_scatter_accum);
    ("eval: shrink of const", `Quick, test_eval_shrink_of_const);
  ]
