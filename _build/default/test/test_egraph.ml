(* E-graph: congruence closure, rewrite soundness, compute-reuse benefits. *)

let n = Symaff.var "N"
let sr ranges = Symrect.make ranges

let test_union_find () =
  let g = Egraph.create ~dims:1 () in
  let a = Egraph.add g (Egraph.E_tensor { array = "A"; view = sr [ (Symaff.zero, n) ]; axes = [ 0 ] }) in
  let b = Egraph.add g (Egraph.E_tensor { array = "B"; view = sr [ (Symaff.zero, n) ]; axes = [ 0 ] }) in
  Alcotest.(check bool) "distinct" true (Egraph.find g a <> Egraph.find g b);
  Alcotest.(check bool) "union merges" true (Egraph.union g a b);
  Egraph.rebuild g;
  Alcotest.(check int) "same class" (Egraph.find g a) (Egraph.find g b);
  Alcotest.(check bool) "re-union is no-op" false (Egraph.union g a b)

let test_congruence () =
  let g = Egraph.create ~dims:1 () in
  let a = Egraph.add g (Egraph.E_tensor { array = "A"; view = sr [ (Symaff.zero, n) ]; axes = [ 0 ] }) in
  let b = Egraph.add g (Egraph.E_tensor { array = "B"; view = sr [ (Symaff.zero, n) ]; axes = [ 0 ] }) in
  let k = Egraph.add g (Egraph.E_const (Tdfg.Lit 2.0)) in
  let fa = Egraph.add g (Egraph.E_cmp (Op.Mul, [ a; k ])) in
  let fb = Egraph.add g (Egraph.E_cmp (Op.Mul, [ b; k ])) in
  Alcotest.(check bool) "f(a) <> f(b)" true (Egraph.find g fa <> Egraph.find g fb);
  ignore (Egraph.union g a b);
  Egraph.rebuild g;
  Alcotest.(check int) "congruence: f(a) = f(b)" (Egraph.find g fa) (Egraph.find g fb)

let test_union_domain_mismatch_rejected () =
  let g = Egraph.create ~dims:1 () in
  let a = Egraph.add g (Egraph.E_tensor { array = "A"; view = sr [ (Symaff.zero, n) ]; axes = [ 0 ] }) in
  let b =
    Egraph.add g
      (Egraph.E_tensor { array = "A"; view = sr [ (Symaff.one, n) ]; axes = [ 0 ] })
  in
  Alcotest.(check bool) "domain mismatch fails" true
    (try
       ignore (Egraph.union g a b);
       false
     with Failure _ -> true)

(* Rewrite soundness: optimizing a program's tDFG must not change its
   evaluation. Exercised on the 1D filter and symmetric conv2d. *)

let eval_with g prog params inputs =
  match Interp.create prog ~params with
  | Error e -> Alcotest.fail e
  | Ok env ->
    List.iter (fun (name, d) -> Interp.set_array env name d) inputs;
    Interp.run ~on_kernel:(fun env _ -> Tdfg_eval.eval g env) env;
    env

let check_optimize_preserves prog params inputs out_array =
  let k = List.hd (Ast.kernels prog) in
  let g =
    match Frontend.extract prog k with
    | Ok g -> g
    | Error e -> Alcotest.fail (Frontend.error_to_string e)
  in
  let opt, stats = Extract.optimize ~arrays:(Frontend.array_extents prog) g in
  let env1 = eval_with g prog params inputs in
  let env2 = eval_with opt prog params inputs in
  let a = Interp.get_array env1 out_array and b = Interp.get_array env2 out_array in
  Array.iteri
    (fun idx v ->
      if Float.abs (v -. b.(idx)) > 1e-4 *. Float.max 1.0 (Float.abs v) then
        Alcotest.failf "mismatch at %d: %f vs %f" idx v b.(idx))
    a;
  stats

let test_optimize_preserves_stencil () =
  let w = Infs_workloads.Stencil.stencil1d ~iters:1 ~n:64 in
  let prog = w.Infinity_stream.Workload.prog in
  let inputs = [ ("A", Infs_workloads.Data.uniform ~seed:5 64) ] in
  ignore (check_optimize_preserves prog [ ("N", 64); ("T", 1) ] inputs "B")

let test_optimize_preserves_conv2d () =
  let w = Infs_workloads.Conv.conv2d ~n:16 in
  let prog = w.Infinity_stream.Workload.prog in
  let inputs = [ ("A", Infs_workloads.Data.uniform ~seed:6 256) ] in
  ignore (check_optimize_preserves prog [ ("N", 16) ] inputs "B")

(* The paper's headline rewrite benefit: the symmetric 3x3 convolution
   shares coefficient products, so the optimized tDFG must be cheaper. *)
let test_conv2d_reuse_lowers_cost () =
  let w = Infs_workloads.Conv.conv2d ~n:256 in
  let prog = w.Infinity_stream.Workload.prog in
  let k = List.hd (Ast.kernels prog) in
  let g =
    match Frontend.extract prog k with
    | Ok g -> g
    | Error e -> Alcotest.fail (Frontend.error_to_string e)
  in
  let _, stats = Extract.optimize ~arrays:(Frontend.array_extents prog) g in
  Alcotest.(check bool)
    (Printf.sprintf "cost decreased (%.3g -> %.3g)" stats.Extract.cost_before
       stats.cost_after)
    true
    (stats.cost_after < stats.cost_before *. 0.95)

(* Fig. 20's pattern: cmp(+, cmp(xV, mv A_l), cmp(xV, mv A_r)) discovers the
   shared product via expand/shrink/commute rewrites. *)
let test_fig20_shared_product () =
  let open Ast in
  let prog =
    program ~name:"fig20" ~params:[ "N" ]
      ~arrays:[ array "A" Dtype.Fp32 [ n ]; array "B" Dtype.Fp32 [ n ] ]
      [
        Kernel
          (kernel "k"
             [ loop "i" (c 1) (n +% -1) ]
             [
               store "B" [ i "i" ]
                 ((fconst 3.0 * load "A" [ i "i" +% -1 ])
                 + (fconst 3.0 * load "A" [ i "i" +% 1 ]));
             ]);
      ]
  in
  let k = List.hd (Ast.kernels prog) in
  let g =
    match Frontend.extract prog k with
    | Ok g -> g
    | Error e -> Alcotest.fail (Frontend.error_to_string e)
  in
  let opt, stats = Extract.optimize ~arrays:(Frontend.array_extents prog) g in
  (* the optimized graph computes (x 3.0) once *)
  let muls =
    List.length
      (List.filter
         (fun id ->
           match Tdfg.kind opt id with
           | Tdfg.Cmp { op = Op.Mul; _ } -> true
           | _ -> false)
         (Tdfg.live_nodes opt))
  in
  Alcotest.(check int) "single shared multiply" 1 muls;
  Alcotest.(check bool) "cost strictly better" true
    (stats.Extract.cost_after < stats.cost_before);
  (* and it still evaluates correctly (up to fp32 reassociation) *)
  let inputs = [ ("A", Infs_workloads.Data.uniform ~seed:7 32) ] in
  let env1 = eval_with g prog [ ("N", 32) ] inputs in
  let env2 = eval_with opt prog [ ("N", 32) ] inputs in
  let a = Interp.get_array env1 "B" and b = Interp.get_array env2 "B" in
  Array.iteri
    (fun idx v ->
      if Float.abs (v -. b.(idx)) > 1e-5 then
        Alcotest.failf "mismatch at %d: %f vs %f" idx v b.(idx))
    a

let test_saturation_terminates () =
  let w = Infs_workloads.Conv.conv2d ~n:64 in
  let prog = w.Infinity_stream.Workload.prog in
  let k = List.hd (Ast.kernels prog) in
  let g =
    match Frontend.extract prog k with
    | Ok g -> g
    | Error e -> Alcotest.fail (Frontend.error_to_string e)
  in
  let eg, _ = Egraph.of_tdfg g in
  let rounds = Rules.saturate ~max_iters:4 ~node_limit:5000 ~arrays:(Frontend.array_extents prog) eg in
  Alcotest.(check bool) "bounded rounds" true (rounds <= 4);
  Alcotest.(check bool) "classes exist" true (Egraph.class_count eg > 0)

let suite =
  [
    ("union-find", `Quick, test_union_find);
    ("congruence closure", `Quick, test_congruence);
    ("union domain mismatch", `Quick, test_union_domain_mismatch_rejected);
    ("optimize preserves stencil", `Quick, test_optimize_preserves_stencil);
    ("optimize preserves conv2d", `Quick, test_optimize_preserves_conv2d);
    ("conv2d reuse lowers cost", `Slow, test_conv2d_reuse_lowers_cost);
    ("Fig 20 shared product", `Quick, test_fig20_shared_product);
    ("saturation terminates", `Quick, test_saturation_terminates);
  ]
