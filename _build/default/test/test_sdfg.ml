(* The sDFG view (§3.1) and individual e-graph rewrite rules. *)

let sdfg_of w kname =
  let prog = (w : Infinity_stream.Workload.t).prog in
  let k = List.find (fun (k : Ast.kernel) -> k.kname = kname) (Ast.kernels prog) in
  Sdfg.of_kernel prog k

let test_sdfg_stencil () =
  let s = sdfg_of (Infs_workloads.Stencil.stencil1d ~iters:1 ~n:64) "stencil1d" in
  Alcotest.(check int) "three loads" 3 (List.length (Sdfg.loads s));
  Alcotest.(check int) "one store" 1 (List.length (Sdfg.stores s));
  let store = List.hd (Sdfg.stores s) in
  Alcotest.(check int) "store depends on all loads" 3
    (List.length store.Sdfg.depends_on);
  Alcotest.(check bool) "regular accesses" true
    (List.for_all (fun st -> not (Sdfg.is_irregular st)) s.Sdfg.streams);
  Alcotest.(check bool) "mentions mul/add ops" true
    (List.mem Op.Add s.Sdfg.ops)

let test_sdfg_indirect () =
  let s =
    sdfg_of
      (Infs_workloads.Gather_mlp.gather_mlp_outer ~rows:32 ~feat:8 ~vocab:64)
      "gml_gather"
  in
  let f = List.find (fun st -> st.Sdfg.array = "F") s.Sdfg.streams in
  Alcotest.(check bool) "gather is irregular" true (Sdfg.is_irregular f);
  (match f.Sdfg.access with
  | Sdfg.Indexed { index; _ } -> Alcotest.(check string) "via IX" "IX" index
  | Sdfg.Affine _ -> Alcotest.fail "expected indexed access")

let test_sdfg_accum_is_reduce_stream () =
  let s = sdfg_of (Infs_workloads.Micro.array_sum ~n:64) "array_sum" in
  let store = List.hd (Sdfg.stores s) in
  Alcotest.(check bool) "reduction stream" true (store.Sdfg.direction = Sdfg.Reduce_s)

let test_sdfg_pp () =
  let s = sdfg_of (Infs_workloads.Micro.vec_add ~n:64) "vec_add" in
  let txt = Sdfg.to_string s in
  Alcotest.(check bool) "prints streams" true
    (String.length txt > 40
    && String.split_on_char '\n' txt
       |> List.exists (fun l -> String.trim l <> ""))

(* ---- individual rewrite rules ---- *)

let n = Symaff.var "N"
let sr r = Symrect.make r
let full = sr [ (Symaff.zero, n) ]

let mk_graph_with f =
  let g = Egraph.create ~dims:1 () in
  let a = Egraph.add g (Egraph.E_tensor { array = "A"; view = full; axes = [ 0 ] }) in
  let root = f g a in
  (g, a, root)

let apply_rule g rule =
  let unions = rule.Rules.apply g in
  List.iter (fun (x, y) -> try ignore (Egraph.union g x y) with Failure _ -> ()) unions;
  Egraph.rebuild g;
  List.length unions

let class_has g cls pred = List.exists pred (Egraph.nodes_of g cls)

let test_rule_comm () =
  let g, a, root =
    mk_graph_with (fun g a ->
        let b = Egraph.add g (Egraph.E_tensor { array = "B"; view = full; axes = [ 0 ] }) in
        Egraph.add g (Egraph.E_cmp (Op.Add, [ a; b ])))
  in
  ignore a;
  let rules = Rules.all_rules ~arrays:[] in
  let comm = List.find (fun r -> r.Rules.rname = "comm") rules in
  ignore (apply_rule g comm);
  Alcotest.(check bool) "swapped operand order present" true
    (class_has g root (function
      | Egraph.E_cmp (Op.Add, [ x; _ ]) ->
        class_has g x (function
          | Egraph.E_tensor { array = "B"; _ } -> true
          | _ -> false)
      | _ -> false))

let test_rule_mv_fuse () =
  let g, _, root =
    mk_graph_with (fun g a ->
        let m1 = Egraph.add g (Egraph.E_mv { input = a; dim = 0; dist = 2 }) in
        Egraph.add g (Egraph.E_mv { input = m1; dim = 0; dist = 3 }))
  in
  let rules = Rules.all_rules ~arrays:[] in
  let r = List.find (fun r -> r.Rules.rname = "mv-simplify") rules in
  ignore (apply_rule g r);
  Alcotest.(check bool) "fused mv(+5)" true
    (class_has g root (function
      | Egraph.E_mv { dist = 5; _ } -> true
      | _ -> false))

let test_rule_mv_zero_identity () =
  let g, a, root =
    mk_graph_with (fun g a -> Egraph.add g (Egraph.E_mv { input = a; dim = 0; dist = 0 }))
  in
  let rules = Rules.all_rules ~arrays:[] in
  let r = List.find (fun r -> r.Rules.rname = "mv-simplify") rules in
  ignore (apply_rule g r);
  Alcotest.(check int) "mv 0 = identity" (Egraph.find g a) (Egraph.find g root)

let test_rule_expand_tensor () =
  let g = Egraph.create ~dims:1 () in
  let view = sr [ (Symaff.one, Symaff.add_const n (-1)) ] in
  let cls = Egraph.add g (Egraph.E_tensor { array = "A"; view; axes = [ 0 ] }) in
  let rules = Rules.all_rules ~arrays:[ ("A", [ n ]) ] in
  let r = List.find (fun r -> r.Rules.rname = "expand-tensor") rules in
  ignore (apply_rule g r);
  Alcotest.(check bool) "shrink-of-full added" true
    (class_has g cls (function
      | Egraph.E_shrink { input; _ } ->
        class_has g input (function
          | Egraph.E_tensor { view = v; _ } -> Symrect.equal v full
          | _ -> false)
      | _ -> false))

let test_rule_hoist_mv () =
  (* cmp(add, mv(A,+1), mv(B,+1)) gains mv(cmp(add, A, B), +1) *)
  let g = Egraph.create ~dims:1 () in
  let a = Egraph.add g (Egraph.E_tensor { array = "A"; view = full; axes = [ 0 ] }) in
  let b = Egraph.add g (Egraph.E_tensor { array = "B"; view = full; axes = [ 0 ] }) in
  let ma = Egraph.add g (Egraph.E_mv { input = a; dim = 0; dist = 1 }) in
  let mb = Egraph.add g (Egraph.E_mv { input = b; dim = 0; dist = 1 }) in
  let root = Egraph.add g (Egraph.E_cmp (Op.Add, [ ma; mb ])) in
  let rules = Rules.all_rules ~arrays:[] in
  let r = List.find (fun r -> r.Rules.rname = "hoist-mv") rules in
  ignore (apply_rule g r);
  Alcotest.(check bool) "hoisted form present" true
    (class_has g root (function
      | Egraph.E_mv { input; dim = 0; dist = 1 } ->
        class_has g input (function Egraph.E_cmp (Op.Add, _) -> true | _ -> false)
      | _ -> false))

let test_rule_factor () =
  (* a*k + b*k => (a+b)*k *)
  let g = Egraph.create ~dims:1 () in
  let a = Egraph.add g (Egraph.E_tensor { array = "A"; view = full; axes = [ 0 ] }) in
  let b = Egraph.add g (Egraph.E_tensor { array = "B"; view = full; axes = [ 0 ] }) in
  let k = Egraph.add g (Egraph.E_const (Tdfg.Lit 3.0)) in
  let ak = Egraph.add g (Egraph.E_cmp (Op.Mul, [ a; k ])) in
  let bk = Egraph.add g (Egraph.E_cmp (Op.Mul, [ b; k ])) in
  let root = Egraph.add g (Egraph.E_cmp (Op.Add, [ ak; bk ])) in
  let rules = Rules.all_rules ~arrays:[] in
  let r = List.find (fun r -> r.Rules.rname = "factor") rules in
  ignore (apply_rule g r);
  Alcotest.(check bool) "factored form present" true
    (class_has g root (function
      | Egraph.E_cmp (Op.Mul, [ s; _ ]) ->
        class_has g s (function Egraph.E_cmp (Op.Add, _) -> true | _ -> false)
      | _ -> false))

let test_rule_shrink_cmp () =
  (* cmp(f, shrink(r, A)) <=> shrink(r, cmp(f, A)) both ways *)
  let g = Egraph.create ~dims:1 () in
  let a = Egraph.add g (Egraph.E_tensor { array = "A"; view = full; axes = [ 0 ] }) in
  let r1 = sr [ (Symaff.one, Symaff.add_const n (-1)) ] in
  let sh = Egraph.add g (Egraph.E_shrink { input = a; rect = r1 }) in
  let k = Egraph.add g (Egraph.E_const (Tdfg.Lit 2.0)) in
  let root = Egraph.add g (Egraph.E_cmp (Op.Mul, [ sh; k ])) in
  let rules = Rules.all_rules ~arrays:[] in
  let r = List.find (fun r -> r.Rules.rname = "shrink-cmp") rules in
  ignore (apply_rule g r);
  Alcotest.(check bool) "shrink hoisted over cmp" true
    (class_has g root (function
      | Egraph.E_shrink { input; _ } ->
        class_has g input (function Egraph.E_cmp (Op.Mul, _) -> true | _ -> false)
      | _ -> false))



let test_rule_hoist_bc () =
  let g = Egraph.create ~dims:2 () in
  let row = sr [ (Symaff.zero, n); (Symaff.zero, Symaff.one) ] in
  let a = Egraph.add g (Egraph.E_tensor { array = "A"; view = row; axes = [ 0; 1 ] }) in
  let b = Egraph.add g (Egraph.E_tensor { array = "B"; view = row; axes = [ 0; 1 ] }) in
  let ba = Egraph.add g (Egraph.E_bc { input = a; dim = 1; lo = Symaff.zero; hi = n }) in
  let bb = Egraph.add g (Egraph.E_bc { input = b; dim = 1; lo = Symaff.zero; hi = n }) in
  let root = Egraph.add g (Egraph.E_cmp (Op.Mul, [ ba; bb ])) in
  let rules = Rules.all_rules ~arrays:[] in
  let r = List.find (fun r -> r.Rules.rname = "hoist-bc") rules in
  ignore (apply_rule g r);
  Alcotest.(check bool) "bc hoisted over cmp" true
    (class_has g root (function
      | Egraph.E_bc { input; dim = 1; _ } ->
        class_has g input (function Egraph.E_cmp (Op.Mul, _) -> true | _ -> false)
      | _ -> false))

let test_rule_shrink_shrink () =
  let g = Egraph.create ~dims:1 () in
  let a = Egraph.add g (Egraph.E_tensor { array = "A"; view = full; axes = [ 0 ] }) in
  let outer = sr [ (Symaff.one, Symaff.add_const n (-1)) ] in
  let inner = sr [ (Symaff.const 2, Symaff.add_const n (-2)) ] in
  let s1 = Egraph.add g (Egraph.E_shrink { input = a; rect = outer }) in
  let root = Egraph.add g (Egraph.E_shrink { input = s1; rect = inner }) in
  let rules = Rules.all_rules ~arrays:[] in
  let r = List.find (fun r -> r.Rules.rname = "shrink-shrink") rules in
  ignore (apply_rule g r);
  Alcotest.(check bool) "collapsed to a single shrink of A" true
    (class_has g root (function
      | Egraph.E_shrink { input; rect } ->
        Symrect.equal rect inner
        && class_has g input (function Egraph.E_tensor _ -> true | _ -> false)
      | _ -> false))

let test_rule_shrink_mv () =
  (* mv(shrink(r, A)) <=> shrink(shift r, mv(A)) (Eq 7b) *)
  let g = Egraph.create ~dims:1 () in
  let a = Egraph.add g (Egraph.E_tensor { array = "A"; view = full; axes = [ 0 ] }) in
  let r1 = sr [ (Symaff.one, Symaff.add_const n (-1)) ] in
  let sh = Egraph.add g (Egraph.E_shrink { input = a; rect = r1 }) in
  let root = Egraph.add g (Egraph.E_mv { input = sh; dim = 0; dist = 2 }) in
  let rules = Rules.all_rules ~arrays:[] in
  let r = List.find (fun r -> r.Rules.rname = "shrink-mv") rules in
  ignore (apply_rule g r);
  let shifted = Symrect.shift r1 ~dim:0 ~dist:2 in
  Alcotest.(check bool) "commuted form present" true
    (class_has g root (function
      | Egraph.E_shrink { input; rect } ->
        Symrect.equal rect shifted
        && class_has g input (function Egraph.E_mv { dist = 2; _ } -> true | _ -> false)
      | _ -> false))

let suite =
  [
    ("sdfg: stencil decoupling", `Quick, test_sdfg_stencil);
    ("sdfg: indirect access", `Quick, test_sdfg_indirect);
    ("sdfg: accumulation is a reduce stream", `Quick, test_sdfg_accum_is_reduce_stream);
    ("sdfg: printing", `Quick, test_sdfg_pp);
    ("rule: commutativity", `Quick, test_rule_comm);
    ("rule: mv fusion", `Quick, test_rule_mv_fuse);
    ("rule: mv-0 identity", `Quick, test_rule_mv_zero_identity);
    ("rule: tensor expansion (Eq 5)", `Quick, test_rule_expand_tensor);
    ("rule: hoist mv (Eq 4a)", `Quick, test_rule_hoist_mv);
    ("rule: factor constant (Eq 3c)", `Quick, test_rule_factor);
    ("rule: shrink/cmp commute (Eq 9)", `Quick, test_rule_shrink_cmp);
    ("rule: hoist bc (Eq 4b)", `Quick, test_rule_hoist_bc);
    ("rule: shrink/shrink (Eq 6b)", `Quick, test_rule_shrink_shrink);
    ("rule: shrink/mv commute (Eq 7)", `Quick, test_rule_shrink_mv);
  ]
