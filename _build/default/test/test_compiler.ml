(* Frontend extraction, stream analysis, scheduling, fat binary. *)

let n = Symaff.var "N"

let extract_one prog =
  match Frontend.extract prog (List.hd (Ast.kernels prog)) with
  | Ok g -> g
  | Error e -> Alcotest.fail (Frontend.error_to_string e)

let count_kind g pred =
  List.length (List.filter (fun id -> pred (Tdfg.kind g id)) (Tdfg.live_nodes g))

let test_stencil_extraction_shape () =
  let w = Infs_workloads.Stencil.stencil1d ~iters:1 ~n:64 in
  let g = extract_one w.Infinity_stream.Workload.prog in
  Alcotest.(check int) "three tensor views" 3
    (count_kind g (function Tdfg.Tensor _ -> true | _ -> false));
  Alcotest.(check int) "two mv alignments" 2
    (count_kind g (function Tdfg.Mv _ -> true | _ -> false));
  Alcotest.(check int) "no streams" 0
    (count_kind g (function Tdfg.Stream_load _ -> true | _ -> false))

let test_mv_direction_matches_paper () =
  (* Fig 4(a): A[i-1] unrolls to A[0,N-2) moved by +1. *)
  let open Ast in
  let prog =
    program ~name:"p" ~params:[ "N" ]
      ~arrays:[ array "A" Dtype.Fp32 [ n ]; array "B" Dtype.Fp32 [ n ] ]
      [
        Kernel
          (kernel "k"
             [ loop "i" (c 1) n ]
             [ store "B" [ i "i" ] (load "A" [ i "i" +% -1 ]) ]);
      ]
  in
  let g = extract_one prog in
  let found =
    List.exists
      (fun id ->
        match Tdfg.kind g id with
        | Tdfg.Mv { dim = 0; dist = 1; _ } -> true
        | _ -> false)
      (Tdfg.live_nodes g)
  in
  Alcotest.(check bool) "mv dist +1" true found

let test_strided_becomes_stream () =
  let w = Infs_workloads.Dwt2d.dwt2d ~n:16 in
  let g = extract_one w.Infinity_stream.Workload.prog in
  Alcotest.(check bool) "stride-2 loads become streams" true
    (count_kind g (function Tdfg.Stream_load _ -> true | _ -> false) > 0)

let test_outer_product_broadcasts () =
  let w = Infs_workloads.Mm.mm_outer ~n:64 in
  let g = extract_one w.Infinity_stream.Workload.prog in
  Alcotest.(check int) "two broadcasts (A column, B row)" 2
    (count_kind g (function Tdfg.Bc _ -> true | _ -> false))

let test_reduction_detected () =
  let w = Infs_workloads.Mm.mm_inner ~n:64 in
  let g = extract_one w.Infinity_stream.Workload.prog in
  Alcotest.(check int) "reduce over k" 1
    (count_kind g (function Tdfg.Reduce _ -> true | _ -> false))

let test_indirect_target_becomes_out_stream () =
  let w = Infs_workloads.Kmeans.kmeans_inner ~points:64 ~dim:8 ~centers:4 in
  let prog = w.Infinity_stream.Workload.prog in
  let update =
    List.find (fun (k : Ast.kernel) -> k.kname = "km_update") (Ast.kernels prog)
  in
  match Frontend.extract prog update with
  | Error e -> Alcotest.fail (Frontend.error_to_string e)
  | Ok g ->
    let has_stream_out =
      List.exists
        (function Tdfg.Out_stream { accum = Some Op.Add; _ } -> true | _ -> false)
        (Tdfg.outputs g)
    in
    Alcotest.(check bool) "scatter accumulate" true has_stream_out

let test_reject_non_hyperrect () =
  let open Ast in
  let prog =
    program ~name:"p" ~params:[ "N" ]
      ~arrays:[ array "A" Dtype.Fp32 [ n; n ] ]
      [
        Kernel
          (kernel "tri"
             [ loop "i" (c 0) n; loop "j" (i "i") n ]
             [ store "A" [ i "i"; i "j" ] (fconst 1.0) ]);
      ]
  in
  match Frontend.extract prog (List.hd (Ast.kernels prog)) with
  | Error (Frontend.Unsupported _) -> ()
  | Error (Frontend.Invalid e) -> Alcotest.failf "wrong error: %s" e
  | Ok _ -> Alcotest.fail "triangular domain must be rejected"

let test_reject_race_store () =
  let open Ast in
  (* storing without accumulation while ignoring a loop is a race *)
  let prog =
    program ~name:"p" ~params:[ "N" ]
      ~arrays:[ array "A" Dtype.Fp32 [ n ]; array "B" Dtype.Fp32 [ n; n ] ]
      [
        Kernel
          (kernel "race"
             [ loop "i" (c 0) n; loop "j" (c 0) n ]
             [ store "A" [ i "i" ] (load "B" [ i "i"; i "j" ]) ]);
      ]
  in
  Alcotest.(check bool) "race rejected" true
    (Result.is_error (Frontend.extract prog (List.hd (Ast.kernels prog))))

let test_kernel_info_reuse () =
  let w = Infs_workloads.Mm.mm_outer ~n:64 in
  let prog = w.Infinity_stream.Workload.prog in
  let info = Kernel_info.analyze prog (List.hd (Ast.kernels prog)) in
  Alcotest.(check int) "three streams" 3 (List.length info.Kernel_info.streams);
  let env = function "N" -> 64 | "k" -> 0 | _ -> Alcotest.fail "unexpected var" in
  Alcotest.(check int) "iterations" 4096 (Kernel_info.iterations info env);
  let a_stream =
    List.find (fun (s : Kernel_info.stream) -> s.array = "A") info.streams
  in
  (* the A column (64 distinct elements) is referenced 4096 times *)
  Alcotest.(check int) "distinct elems" 64
    (Kernel_info.stream_distinct_elems a_stream env ~arrays:[ ("A", [ 64; 64 ]) ])

let test_kernel_info_indirect () =
  let w = Infs_workloads.Gather_mlp.gather_mlp_inner ~rows:32 ~feat:8 ~vocab:64 in
  let prog = w.Infinity_stream.Workload.prog in
  let gather =
    List.find (fun (k : Ast.kernel) -> k.kname = "gml_gather") (Ast.kernels prog)
  in
  let info = Kernel_info.analyze prog gather in
  Alcotest.(check bool) "indirect flagged" true info.Kernel_info.has_indirect;
  let f = List.find (fun (s : Kernel_info.stream) -> s.array = "F") info.streams in
  Alcotest.(check bool) "indirect stream" true f.indirect

let test_schedule_no_spill_suite () =
  (* every Table 3 kernel must fit the 8 fp32 wordline registers *)
  List.iter
    (fun (name, w) ->
      match Fat_binary.compile w.Infinity_stream.Workload.prog with
      | Error e -> Alcotest.failf "%s: %s" name e
      | Ok fb ->
        List.iter
          (fun (r : Fat_binary.region) ->
            if r.fallback = None then
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s has a 256-wordline schedule" name
                   r.kernel.Ast.kname)
                true
                (List.mem_assoc 256 r.schedules))
          fb.regions)
    (Infs_workloads.Catalog.all_variants (Infs_workloads.Catalog.test_scale ()))

let test_schedule_slots_reused () =
  let w = Infs_workloads.Conv.conv3d ~hw:12 ~channels:4 in
  let g = extract_one w.Infinity_stream.Workload.prog in
  match Schedule.compile ~wordlines:256 g with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check bool) "fits capacity" true (s.Schedule.slots_used <= s.capacity);
    Alcotest.(check int) "capacity 8 regs" 8 s.capacity

let test_hints () =
  let w = Infs_workloads.Mm.mm_outer ~n:64 in
  let g = extract_one w.Infinity_stream.Workload.prog in
  let h = Fat_binary.derive_hints g in
  Alcotest.(check (list int)) "bc dims" [ 0; 1 ] h.Fat_binary.bc_dims;
  Alcotest.(check (list int)) "no shifts" [] h.shift_dims;
  Alcotest.(check (option string)) "primary is output" (Some "C") h.primary_array

let test_fat_binary_compiles_catalog () =
  List.iter
    (fun (name, w) ->
      match Fat_binary.compile w.Infinity_stream.Workload.prog with
      | Error e -> Alcotest.failf "%s failed to compile: %s" name e
      | Ok fb ->
        Alcotest.(check bool)
          (name ^ " has regions")
          true
          (List.length fb.Fat_binary.regions > 0))
    (Infs_workloads.Catalog.all_variants (Infs_workloads.Catalog.test_scale ()))

let test_fat_binary_geometries () =
  Alcotest.(check (list int)) "fat binary geometries" [ 256; 512 ]
    Fat_binary.sram_geometries


let test_spill_extension () =
  (* a kernel reading 10 distinct arrays exceeds the 8 fp32 registers; the
     spilling scheduler (the §6 limitation-3 extension) must still produce
     a 256-wordline schedule, marking overflow temporaries as spilled *)
  let open Ast in
  let n = Symaff.var "N" in
  let names = List.init 10 (fun idx -> Printf.sprintf "A%d" idx) in
  let arrays =
    array "OUT" Dtype.Fp32 [ n ]
    :: List.map (fun a -> array a Dtype.Fp32 [ n ]) names
  in
  let rhs =
    (* pairwise products keep many operands live at once *)
    let rec pairs = function
      | a :: b :: rest -> (load a [ i "r" ] * load b [ i "r" ]) :: pairs rest
      | [ a ] -> [ load a [ i "r" ] ]
      | [] -> []
    in
    match pairs names with
    | t :: rest -> List.fold_left ( + ) t rest
    | [] -> assert false
  in
  let prog =
    program ~name:"spilly" ~params:[ "N" ] ~arrays
      [ Kernel (kernel "spilly" [ loop "r" (c 0) n ] [ store "OUT" [ i "r" ] rhs ]) ]
  in
  let g =
    match Frontend.extract prog (List.hd (Ast.kernels prog)) with
    | Ok g -> g
    | Error e -> Alcotest.fail (Frontend.error_to_string e)
  in
  (match Schedule.compile ~wordlines:256 g with
  | Ok _ -> Alcotest.fail "expected a spill without allow_spill"
  | Error _ -> ());
  match Schedule.compile ~allow_spill:true ~wordlines:256 g with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check bool) "within capacity" true (s.Schedule.slots_used <= s.capacity);
    Alcotest.(check bool) "something spilled" true (s.spilled <> []);
    (* lowering charges the spill streams *)
    let layout =
      match Layout.of_tile Machine_config.default ~shape:[| 4096 |] ~tile:[| 256 |] with
      | Ok l -> l
      | Error e -> Alcotest.fail e
    in
    let _, stats =
      Jit.lower Machine_config.default g ~schedule:s ~layout
        ~env:(function "N" -> 4096 | _ -> 0)
    in
    Alcotest.(check bool) "spill elements charged" true (stats.Jit.spill_elems > 0.0)

let test_spill_region_still_runs () =
  (* end-to-end: the fat binary uses a spilling schedule rather than
     falling back to near-memory-only *)
  let open Ast in
  let n = Symaff.var "N" in
  let names = List.init 10 (fun idx -> Printf.sprintf "A%d" idx) in
  let arrays =
    array "OUT" Dtype.Fp32 [ n ]
    :: List.map (fun a -> array a Dtype.Fp32 [ n ]) names
  in
  let rhs =
    let rec pairs = function
      | a :: b :: rest -> (load a [ i "r" ] * load b [ i "r" ]) :: pairs rest
      | [ a ] -> [ load a [ i "r" ] ]
      | [] -> []
    in
    match pairs names with
    | t :: rest -> List.fold_left ( + ) t rest
    | [] -> assert false
  in
  let prog =
    program ~name:"spilly" ~params:[ "N" ] ~arrays
      [ Kernel (kernel "spilly" [ loop "r" (c 0) n ] [ store "OUT" [ i "r" ] rhs ]) ]
  in
  match Fat_binary.compile prog with
  | Error e -> Alcotest.fail e
  | Ok fb ->
    let r = List.hd fb.Fat_binary.regions in
    Alcotest.(check (option string)) "no fallback" None r.fallback;
    let w =
      Infinity_stream.Workload.make ~name:"spilly" ~params:[ ("N", 512) ]
        ~inputs:
          (lazy
            (List.mapi
               (fun idx a -> (a, Infs_workloads.Data.uniform ~seed:idx 512))
               names))
        prog
    in
    let r =
      Infinity_stream.Engine.run_exn
        ~options:{ Infinity_stream.Engine.default_options with functional = true }
        Infinity_stream.Engine.In_l3 w
    in
    match r.Infinity_stream.Report.correctness with
    | `Checked err -> Alcotest.(check bool) "correct with spills" true (err < 1e-4)
    | `Skipped -> Alcotest.fail "expected check"

let suite =
  [
    ("stencil extraction shape", `Quick, test_stencil_extraction_shape);
    ("mv direction matches paper", `Quick, test_mv_direction_matches_paper);
    ("strided becomes stream", `Quick, test_strided_becomes_stream);
    ("outer product broadcasts", `Quick, test_outer_product_broadcasts);
    ("reduction detected", `Quick, test_reduction_detected);
    ("indirect scatter output", `Quick, test_indirect_target_becomes_out_stream);
    ("reject non-hyperrect domain", `Quick, test_reject_non_hyperrect);
    ("reject racy store", `Quick, test_reject_race_store);
    ("kernel info: reuse analysis", `Quick, test_kernel_info_reuse);
    ("kernel info: indirection", `Quick, test_kernel_info_indirect);
    ("schedule: suite never spills", `Quick, test_schedule_no_spill_suite);
    ("schedule: slots within capacity", `Quick, test_schedule_slots_reused);
    ("layout hints", `Quick, test_hints);
    ("fat binary compiles catalog", `Quick, test_fat_binary_compiles_catalog);
    ("fat binary geometries", `Quick, test_fat_binary_geometries);
    ("spill extension (schedule + lowering)", `Quick, test_spill_extension);
    ("spill region runs end-to-end", `Quick, test_spill_region_still_runs);
  ]
