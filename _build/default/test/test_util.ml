(* Unit and property tests for the utility library. *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.int64 a <> Rng.int64 b)

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues" (Rng.int64 a) (Rng.int64 b)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float stays in bounds" ~count:500
    QCheck.(pair small_int (float_range 0.1 100.0))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.float rng bound in
      v >= 0.0 && v < bound)

let feq = Alcotest.float 1e-9

let test_stats () =
  Alcotest.check feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.check feq "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check feq "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.check feq "median even" 1.5 (Stats.median [ 1.0; 2.0 ]);
  Alcotest.check feq "empty mean" 0.0 (Stats.mean []);
  Alcotest.check feq "geomean skips nonpositive" 2.0 (Stats.geomean [ 2.0; -1.0; 0.0 ]);
  Alcotest.check feq "ratio by zero" 0.0 (Stats.ratio 1.0 0.0);
  Alcotest.check feq "percent" 50.0 (Stats.percent ~part:1.0 ~whole:2.0)

let test_stats_stddev () =
  Alcotest.check (Alcotest.float 1e-6) "stddev" 2.0
    (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_table_render () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "x"; "y" ];
  let _ = Table.add_float_row t "row" [ 1.5; 2.0 ] in
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0);
  Alcotest.(check bool) "contains row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "| x   | y   |    |"
                                                          || String.length l > 0))

let test_table_float_fmt () =
  Alcotest.(check string) "integer-valued" "2" (Table.fmt_float 2.0);
  Alcotest.(check string) "zero" "0" (Table.fmt_float 0.0);
  Alcotest.(check string) "small" "1.500e-04" (Table.fmt_float 0.00015);
  Alcotest.(check string) "fraction" "1.250" (Table.fmt_float 1.25)

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seeds differ", `Quick, test_rng_seeds_differ);
    ("rng copy", `Quick, test_rng_copy);
    ("rng shuffle permutes", `Quick, test_rng_shuffle_permutes);
    QCheck_alcotest.to_alcotest prop_rng_int_bounds;
    QCheck_alcotest.to_alcotest prop_rng_float_bounds;
    ("stats basics", `Quick, test_stats);
    ("stats stddev", `Quick, test_stats_stddev);
    ("table render", `Quick, test_table_render);
    ("table float format", `Quick, test_table_float_fmt);
  ]
