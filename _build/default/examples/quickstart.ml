(* Quickstart: write a plain kernel, compile it to a tDFG, and simulate it
   under every paradigm of the paper.

     dune exec examples/quickstart.exe

   The kernel is the paper's Fig. 1 example, C[i] = A[i] + B[i]. We run it
   functionally at a small size (checking every paradigm against the golden
   interpreter) and then at the paper's 4M-element scale for performance. *)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report
module W = Infinity_stream.Workload

(* 1. Write the program in the mini-C AST: one kernel, three arrays. *)
let vec_add_program =
  let open Ast in
  let n = Symaff.var "N" in
  program ~name:"vec_add" ~params:[ "N" ]
    ~arrays:
      [
        array "A" Dtype.Fp32 [ n ];
        array "B" Dtype.Fp32 [ n ];
        array "C" Dtype.Fp32 [ n ];
      ]
    [
      Kernel
        (kernel "vec_add"
           [ loop "i" (c 0) n ]
           [ store "C" [ i "i" ] (load "A" [ i "i" ] + load "B" [ i "i" ]) ]);
    ]

(* 2. Inspect what the static compiler produces: the tensor dataflow graph
   and its wordline schedule (the "fat binary"). *)
let show_compilation () =
  match Fat_binary.compile vec_add_program with
  | Error e -> failwith e
  | Ok fb ->
    let region = List.hd fb.Fat_binary.regions in
    print_endline "--- optimized tDFG ---";
    print_string (Tdfg.to_string region.optimized);
    List.iter
      (fun (wl, (s : Schedule.t)) ->
        Printf.printf "schedule for %d-wordline SRAMs: %d of %d registers\n" wl
          s.slots_used s.capacity)
      region.schedules;
    print_newline ()

(* 3. Run it. *)
let () =
  show_compilation ();
  (* functional check at a small size *)
  let small =
    W.make ~name:"vec_add-small" ~params:[ ("N", 4096) ]
      ~inputs:
        (lazy
          [
            ("A", Infs_workloads.Data.uniform ~seed:1 4096);
            ("B", Infs_workloads.Data.uniform ~seed:2 4096);
          ])
      vec_add_program
  in
  print_endline "functional check (N = 4096):";
  List.iter
    (fun p ->
      let r =
        E.run_exn ~options:{ E.default_options with functional = true } p small
      in
      match r.R.correctness with
      | `Checked err ->
        Printf.printf "  %-14s max error vs golden model: %.2e\n" r.paradigm err
      | `Skipped -> ())
    E.all_paradigms;
  print_newline ();
  (* performance at paper scale *)
  let big =
    W.make ~name:"vec_add-4M"
      ~params:[ ("N", 4_194_304) ]
      ~inputs:(lazy []) vec_add_program
  in
  print_endline "performance (N = 4M, data warm in L3):";
  let options = { E.default_options with warm_data = true; pre_transposed = true; charge_jit = false } in
  let base = E.run_exn ~options E.Base big in
  List.iter
    (fun p ->
      let r = E.run_exn ~options p big in
      Printf.printf "  %-14s %12.3e cycles  (%.1fx vs Base)\n" r.R.paradigm
        r.cycles
        (R.speedup ~baseline:base r))
    E.all_paradigms
