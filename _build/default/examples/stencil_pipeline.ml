(* An iterative 2D stencil at paper scale: demonstrates the parts of the
   system the paper's introduction motivates — transparent transposed-layout
   management, JIT memoization across iterations, and where the cycles and
   traffic actually go under each paradigm.

     dune exec examples/stencil_pipeline.exe *)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report

(* like the paper's evaluation, the working set starts resident in L3;
   in-memory configurations still pay the layout transposition *)
let warm = { E.default_options with warm_data = true }

let () =
  let w = Infs_workloads.Stencil.stencil2d ~iters:10 ~n:2048 in
  Printf.printf "workload: %s (10 iterations, 5-point stencil)\n\n"
    w.Infinity_stream.Workload.wname;
  let base = E.run_exn ~options:warm E.Base w in
  List.iter
    (fun p ->
      let r = E.run_exn ~options:warm p w in
      Printf.printf "%-14s %.3e cycles (%.2fx)\n" r.R.paradigm r.cycles
        (R.speedup ~baseline:base r);
      List.iter
        (fun (k, v) ->
          if v > 0.0 then
            Printf.printf "    %-14s %5.1f%%\n" k (100.0 *. v /. r.cycles))
        (Breakdown.to_assoc r.breakdown);
      (* where did the data movement go? *)
      let noc = List.fold_left (fun a (_, v) -> a +. v) 0.0 r.noc_bytes in
      let intra = List.assoc "intra-tile" r.local_bytes in
      Printf.printf "    NoC %.2e bytes, intra-tile %.2e bytes\n" noc intra;
      if r.jit.invocations > 0 then
        Printf.printf "    JIT: %d lowerings, %d served from the memo\n"
          (r.jit.invocations - r.jit.memo_hits)
          r.jit.memo_hits;
      print_newline ())
    [ E.Base; E.Near_l3; E.In_l3; E.Inf_s ];
  (* the layout the runtime chose, and what the alternatives would cost *)
  print_endline "runtime tile-size choice (cycles, normalized to 16x16):";
  let norm =
    (E.run_exn ~options:{ warm with E.tile_override = Some [| 16; 16 |] } E.Inf_s w)
      .R.cycles
  in
  List.iter
    (fun tile ->
      let r = E.run_exn ~options:{ warm with E.tile_override = Some tile } E.Inf_s w in
      Printf.printf "  %3dx%-3d %.3f\n" tile.(0) tile.(1) (r.R.cycles /. norm))
    [ [| 1; 256 |]; [| 4; 64 |]; [| 16; 16 |]; [| 64; 4 |]; [| 256; 1 |] ]
