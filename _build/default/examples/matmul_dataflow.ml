(* The paper's Fig. 8 / Fig. 15 story: dataflow choice matters per paradigm.
   In-core matmul wants the inner product (accumulate in registers);
   in-memory matmul wants the outer product (element-wise accumulation
   across all bitlines, reduction hoisted to the host loop).

     dune exec examples/matmul_dataflow.exe *)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report

(* working sets resident in L3, as in the paper's evaluation *)
let warm = { E.default_options with warm_data = true }

let () =
  let n = 2048 in
  let mm_in = Infs_workloads.Mm.mm_inner ~n in
  let mm_out = Infs_workloads.Mm.mm_outer ~n in
  let base_in = E.run_exn ~options:warm E.Base mm_in in
  Printf.printf "matmul %dx%dx%d, speedups over Base with inner product:\n\n" n n n;
  Printf.printf "%-14s %10s %10s   preferred\n" "config" "inner" "outer";
  List.iter
    (fun p ->
      let s w = R.speedup ~baseline:base_in (E.run_exn ~options:warm p w) in
      let si = s mm_in and so = s mm_out in
      Printf.printf "%-14s %10.2f %10.2f   %s\n" (E.paradigm_to_string p) si so
        (if so > si then "outer" else "inner"))
    [ E.Base; E.Near_l3; E.In_l3; E.Inf_s; E.Inf_s_nojit ];
  print_newline ();
  (* peek inside: the broadcasts the outer product generates *)
  (match Fat_binary.compile mm_out.Infinity_stream.Workload.prog with
  | Error e -> failwith e
  | Ok fb ->
    let r = List.hd fb.Fat_binary.regions in
    Printf.printf "outer-product region %s hints: broadcast dims = [%s]\n"
      r.kernel.Ast.kname
      (String.concat ";" (List.map string_of_int r.hints.Fat_binary.bc_dims));
    print_string (Tdfg.to_string r.optimized));
  (* the inner product carries an in-memory reduction instead *)
  match Fat_binary.compile mm_in.Infinity_stream.Workload.prog with
  | Error e -> failwith e
  | Ok fb ->
    let r = List.hd fb.Fat_binary.regions in
    Printf.printf "\ninner-product region %s hints: reduce dims = [%s]\n"
      r.kernel.Ast.kname
      (String.concat ";" (List.map string_of_int r.hints.Fat_binary.reduce_dims))
