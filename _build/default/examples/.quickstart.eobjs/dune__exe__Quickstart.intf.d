examples/quickstart.mli:
