examples/matmul_dataflow.ml: Ast Fat_binary Infinity_stream Infs_workloads List Printf String Tdfg
