examples/matmul_dataflow.mli:
