examples/quickstart.ml: Ast Dtype Fat_binary Infinity_stream Infs_workloads List Printf Schedule Symaff Tdfg
