examples/pointnet_classifier.mli:
