examples/stencil_pipeline.ml: Array Breakdown Infinity_stream Infs_workloads List Printf
