examples/custom_kernel.ml: Ast Dtype Infinity_stream Infs_workloads List Op Printf Symaff
