examples/pointnet_classifier.ml: Hashtbl Infinity_stream Infs_workloads List Option Printf
