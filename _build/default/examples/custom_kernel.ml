(* Building your own workload against the public API: a fused
   "normalize rows then rank-1 update" kernel that mixes a near-memory
   division stream with in-memory broadcasts — the same hybrid pattern as
   the paper's Gaussian elimination (Fig. 4c / Fig. 7).

     dune exec examples/custom_kernel.exe *)

module E = Infinity_stream.Engine
module W = Infinity_stream.Workload

let program =
  let open Ast in
  let n = Symaff.var "N" in
  program ~name:"rank1_update" ~params:[ "N" ]
    ~arrays:
      [
        array "A" Dtype.Fp32 [ n; n ];
        array "U" Dtype.Fp32 [ n ];
        array "V" Dtype.Fp32 [ n ];
      ]
    [
      (* the pivot scalar is read on the host and shipped through inf_cfg *)
      Let_scalar ("pivot", load "A" [ c 0; c 0 ]);
      (* a column stream normalizes U (near-memory: column access) *)
      Kernel
        (kernel "normalize"
           [ loop "r" (c 0) n ]
           [ store "U" [ i "r" ] (load "A" [ i "r"; c 0 ] / scalar "pivot") ]);
      (* the rank-1 update broadcasts U down and V across (in-memory) *)
      Kernel
        (kernel "rank1"
           [ loop "r" (c 0) n; loop "j" (c 0) n ]
           [
             accum Op.Sub "A" [ i "r"; i "j" ] (load "U" [ i "r" ] * load "V" [ i "j" ]);
           ]);
    ]

let () =
  (* functional check first *)
  let small =
    W.make ~name:"rank1-small" ~params:[ ("N", 64) ]
      ~inputs:
        (lazy
          [
            ("A", Infs_workloads.Data.diag_dominant ~seed:3 64);
            ("V", Infs_workloads.Data.uniform ~seed:4 64);
          ])
      program
  in
  List.iter
    (fun p ->
      let r =
        E.run_exn ~options:{ E.default_options with functional = true } p small
      in
      match r.Infinity_stream.Report.correctness with
      | `Checked err ->
        Printf.printf "%-14s checked, max error %.2e\n" r.paradigm err
      | `Skipped -> ())
    [ E.Base; E.Near_l3; E.Inf_s ];
  print_newline ();
  (* then at scale: watch the hybrid split in the timeline *)
  let big = W.make ~name:"rank1-2k" ~params:[ ("N", 2048) ] ~inputs:(lazy []) program in
  let r = E.run_exn E.Inf_s big in
  Printf.printf "Inf-S at 2k x 2k: %.3e cycles\n" r.Infinity_stream.Report.cycles;
  List.iter
    (fun (t : Infinity_stream.Report.timeline_entry) ->
      Printf.printf "  %-12s ran %s (%.3e cycles)\n" t.kernel
        (Infinity_stream.Report.where_to_string t.where)
        t.cycles)
    r.timeline
