(* The paper's end-to-end case study (§8): PointNet++ SSG and MSG point
   cloud classifiers, built entirely from mini-C kernels, with the runtime
   deciding per stage between in-core, near-memory and in-memory execution
   (Fig. 19's timeline).

     dune exec examples/pointnet_classifier.exe *)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report

let warm = { E.default_options with E.warm_data = true }

let show (label, w) =
  Printf.printf "=== PointNet++ %s (4k points) ===\n" label;
  let base = E.run_exn ~options:warm E.Base w in
  List.iter
    (fun p ->
      let r = E.run_exn ~options:warm p w in
      Printf.printf "%-14s %.3e cycles (%.2fx over Base)\n" r.R.paradigm r.cycles
        (R.speedup ~baseline:base r);
      (* aggregate the per-kernel timeline into the paper's五 stages *)
      let stages = Hashtbl.create 8 in
      List.iter
        (fun (t : R.timeline_entry) ->
          let s = Infs_workloads.Pointnet.stage_of_kernel t.kernel in
          let c, w0 =
            Option.value ~default:(0.0, t.where) (Hashtbl.find_opt stages s)
          in
          ignore w0;
          Hashtbl.replace stages s (c +. t.cycles, t.where))
        r.timeline;
      List.iter
        (fun s ->
          match Hashtbl.find_opt stages s with
          | Some (c, where) when c > 0.0 ->
            Printf.printf "    %-16s %5.1f%%  (%s)\n" s (100.0 *. c /. r.cycles)
              (R.where_to_string where)
          | _ -> ())
        [ "Furthest Sample"; "Ball Query"; "Gather"; "MLP Layer"; "Aggregate"; "FC" ];
      print_newline ())
    [ E.Base; E.Near_l3; E.In_l3; E.Inf_s ]

let () =
  show ("SSG", Infs_workloads.Pointnet.ssg ());
  show ("MSG", Infs_workloads.Pointnet.msg ())
