type t = { start : int; stride : int; count : int }

let make ~start ~stride ~count =
  if count < 0 then invalid_arg "Pattern.make: negative count";
  if count > 1 && stride < 1 then invalid_arg "Pattern.make: stride < 1";
  { start; stride = max 1 stride; count }

let singleton i = make ~start:i ~stride:1 ~count:1
let range ~lo ~hi = make ~start:lo ~stride:1 ~count:(max 0 (hi - lo))

let indices t = List.init t.count (fun i -> t.start + (i * t.stride))

let mem t i =
  i >= t.start
  && (i - t.start) mod t.stride = 0
  && (i - t.start) / t.stride < t.count

let cardinal t = t.count

let last t = if t.count = 0 then None else Some (t.start + ((t.count - 1) * t.stride))

let intersect_range t ~lo ~hi =
  if t.count = 0 then None
  else begin
    (* first index >= lo *)
    let first_k =
      if t.start >= lo then 0
      else (lo - t.start + t.stride - 1) / t.stride
    in
    let last_k =
      if t.start >= hi then -1
      else
        let k = (hi - 1 - t.start) / t.stride in
        min k (t.count - 1)
    in
    if first_k > last_k then None
    else
      Some
        {
          start = t.start + (first_k * t.stride);
          stride = t.stride;
          count = last_k - first_k + 1;
        }
  end

let to_string t = Printf.sprintf "%d:%d:%d" t.start t.stride t.count

let of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c ] -> (
    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
    | Some start, Some stride, Some count when count >= 0 && (count <= 1 || stride >= 1)
      ->
      Some { start; stride = max 1 stride; count }
    | _ -> None)
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal (a : t) b = a = b
