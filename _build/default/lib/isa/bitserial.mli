(** Bit-serial latency model for compute-SRAM arrays (paper §2.2, §5).

    Latencies are in SRAM-array cycles and apply simultaneously to every
    active bitline of an array (that is the whole point of bit-serial
    in-memory computing: latency O(width), throughput O(bitlines)).

    Integer latencies follow the paper directly: addition is O(n) cycles and
    multiplication is n^2 + 5n cycles for n-bit operands (§5 "Execute
    Commands"). Floating-point costs are estimates in the spirit of Duality
    Cache [17]: an fp32 operation decomposes into exponent handling, mantissa
    alignment (bit-serial variable shifts), the mantissa integer op, and
    renormalization. Absolute constants scale all in-memory results together
    and do not change who wins; the paper's Fig. 2 crossover shape is the
    calibration target (see EXPERIMENTS.md). *)

val op_cycles : Op.t -> Dtype.t -> int
(** Cycles for one element-wise op across all active bitlines of an array. *)

val copy_cycles : Dtype.t -> int
(** Cycles to copy one operand between wordline slots (read+write / bit). *)

val intra_shift_cycles : Dtype.t -> distance:int -> int
(** Move elements [distance] bitlines sideways within an array, all rows of
    the element: one cycle per bit per step through the shift network, cf.
    [15, 17]'s shifting support. *)

val transpose_cycles_per_line : int
(** TTU occupancy per 64B cache line converted between normal and
    transposed layout (paper §5.2). The TTU is a small dedicated unit per
    bank, pipelined with the fill, cf. Neural Cache's transpose unit. *)

val reduction_rounds : width:int -> int
(** Number of halving rounds to reduce [width] lanes to 1 (ceil log2). *)
