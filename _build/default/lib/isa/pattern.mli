(** [start:stride:count] patterns used by shift commands to select bitlines
    and tiles (paper Fig. 9). Hardware expands these into masks; here they
    also let tests check exactly which lanes a lowered command touches. *)

type t = { start : int; stride : int; count : int }

val make : start:int -> stride:int -> count:int -> t
(** [count >= 0]; [stride >= 1] when [count > 1]. *)

val singleton : int -> t
(** One index. *)

val range : lo:int -> hi:int -> t
(** Contiguous [\[lo,hi)] with stride 1. *)

val indices : t -> int list
(** Expanded index list, in increasing order. *)

val mem : t -> int -> bool

val cardinal : t -> int

val last : t -> int option
(** Largest index, [None] when empty. *)

val intersect_range : t -> lo:int -> hi:int -> t option
(** Restrict to indices falling in [\[lo,hi)]; [None] if none do. *)

val to_string : t -> string
(** Paper syntax, e.g. ["1:2:2"]. *)

val of_string : string -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
