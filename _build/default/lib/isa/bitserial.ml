let int_add n = n + 1
let int_mul n = (n * n) + (5 * n)
let int_div n = (2 * n * n) + (10 * n)
let int_cmp n = n + 2

(* fp32: 8-bit exponent, 24-bit significand (incl. hidden bit).
   add: exponent compare (int_cmp 8) + alignment shift (bit-serial variable
   shift, ~2 cycles/significand bit over the worst-case distance) + integer
   add + renormalize (another variable shift + exponent adjust).
   mul: significand integer multiply + exponent add + normalize. *)
let mantissa = 24
let exponent = 8

(* Mantissa alignment and renormalization are variable bit-serial shifts:
   one predicated pass per possible distance, ~m^2/2 cycles each (cf.
   Duality Cache's fp32 add costing ~1000 cycles). *)
let fp_add =
  int_cmp exponent
  + (mantissa * mantissa / 2)
  + int_add mantissa
  + (mantissa * mantissa / 2)
  + int_add exponent
let fp_mul = int_mul mantissa + int_add exponent + mantissa
let fp_div = int_div mantissa + int_add exponent + mantissa
let fp_cmp = int_cmp (exponent + mantissa)

let op_cycles (op : Op.t) (dt : Dtype.t) =
  let n = Dtype.bits dt in
  if Dtype.is_float dt then
    match op with
    | Add | Sub -> fp_add
    | Mul -> fp_mul
    | Div | Sqrt -> fp_div
    | Min | Max | Lt | Relu -> fp_cmp
    | Select -> n + 2
    | Abs | Neg | Copy -> n
  else
    match op with
    | Add | Sub -> int_add n
    | Mul -> int_mul n
    | Div | Sqrt -> int_div n
    | Min | Max | Lt | Relu -> int_cmp n
    | Select -> n + 2
    | Abs | Neg | Copy -> n

let copy_cycles dt = 2 * Dtype.bits dt

let intra_shift_cycles dt ~distance =
  let d = abs distance in
  (* Neighbour shifts move one bitline position per pass (one pass reads
     and rewrites every bit-row of the element); longer moves ride the
     array's 5-level buffered H-tree, which covers power-of-two distances
     in one pass each — cost grows with log2(distance), not distance. *)
  let rec log2c acc x = if x <= 1 then acc else log2c (acc + 1) ((x + 1) / 2) in
  max 1 ((1 + log2c 0 d) * Dtype.bits dt)

let transpose_cycles_per_line = 2

let reduction_rounds ~width =
  let rec go acc w = if w <= 1 then acc else go (acc + 1) ((w + 1) / 2) in
  go 0 width
