lib/isa/dtype.ml: Format
