lib/isa/pattern.ml: Format List Printf String
