lib/isa/bitserial.ml: Dtype Op
