lib/isa/command.ml: Bitserial Dtype Format Hyperrect Op Pattern Printf
