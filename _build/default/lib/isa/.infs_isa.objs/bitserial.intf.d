lib/isa/bitserial.mli: Dtype Op
