lib/isa/command.mli: Dtype Format Hyperrect Op Pattern
