lib/isa/dtype.mli: Format
