lib/isa/op.ml: Float Format List Printf
