lib/isa/pattern.mli: Format
