type t =
  | Add
  | Sub
  | Mul
  | Div
  | Min
  | Max
  | Lt
  | Select
  | Relu
  | Abs
  | Neg
  | Copy
  | Sqrt

let arity = function
  | Add | Sub | Mul | Div | Min | Max | Lt -> 2
  | Select -> 3
  | Relu | Abs | Neg | Copy | Sqrt -> 1

let eval op args =
  match (op, args) with
  | Add, [ a; b ] -> a +. b
  | Sub, [ a; b ] -> a -. b
  | Mul, [ a; b ] -> a *. b
  | Div, [ a; b ] -> a /. b
  | Min, [ a; b ] -> Float.min a b
  | Max, [ a; b ] -> Float.max a b
  | Lt, [ a; b ] -> if a < b then 1.0 else 0.0
  | Select, [ c; a; b ] -> if c <> 0.0 then a else b
  | Relu, [ a ] -> Float.max a 0.0
  | Abs, [ a ] -> Float.abs a
  | Neg, [ a ] -> -.a
  | Copy, [ a ] -> a
  | Sqrt, [ a ] -> Float.sqrt a
  | _ ->
    invalid_arg
      (Printf.sprintf "Op.eval: wrong arity for %s (%d args)"
         (match op with
         | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div"
         | Min -> "min" | Max -> "max" | Lt -> "lt" | Select -> "select"
         | Relu -> "relu" | Abs -> "abs" | Neg -> "neg" | Copy -> "copy"
         | Sqrt -> "sqrt")
         (List.length args))

let is_associative = function
  | Add | Mul | Min | Max -> true
  | Sub | Div | Lt | Select | Relu | Abs | Neg | Copy | Sqrt -> false

let is_commutative = function
  | Add | Mul | Min | Max -> true
  | Sub | Div | Lt | Select | Relu | Abs | Neg | Copy | Sqrt -> false

let identity = function
  | Add -> Some 0.0
  | Mul -> Some 1.0
  | Min -> Some infinity
  | Max -> Some neg_infinity
  | Sub | Div | Lt | Select | Relu | Abs | Neg | Copy | Sqrt -> None

let distributes_over a b =
  match (a, b) with
  | Mul, (Add | Sub) -> true
  | _, _ -> false

let to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Min -> "min"
  | Max -> "max"
  | Lt -> "lt"
  | Select -> "select"
  | Relu -> "relu"
  | Abs -> "abs"
  | Neg -> "neg"
  | Copy -> "copy"
  | Sqrt -> "sqrt"

let of_string = function
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "div" -> Some Div
  | "min" -> Some Min
  | "max" -> Some Max
  | "lt" -> Some Lt
  | "select" -> Some Select
  | "relu" -> Some Relu
  | "abs" -> Some Abs
  | "neg" -> Some Neg
  | "copy" -> Some Copy
  | "sqrt" -> Some Sqrt
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal (a : t) b = a = b

let all =
  [ Add; Sub; Mul; Div; Min; Max; Lt; Select; Relu; Abs; Neg; Copy; Sqrt ]
