(** Element data types supported by the bit-serial substrate. *)

type t = Int8 | Int16 | Int32 | Fp32

val bits : t -> int
(** Width in bits = wordlines occupied by one transposed element. *)

val bytes : t -> int

val is_float : t -> bool

val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val all : t list
