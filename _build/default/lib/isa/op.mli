(** Element-wise operators of tDFG compute nodes.

    The same operator set is shared by the golden interpreter, the e-graph
    rewriter (which consults the algebraic flags), the JIT lowering and the
    bit-serial latency model. *)

type t =
  | Add
  | Sub
  | Mul
  | Div
  | Min
  | Max
  | Lt  (** [a < b] as 0.0 / 1.0 — used by k-means' argmin construction *)
  | Select  (** ternary [cond ? a : b] with cond in {0,1} *)
  | Relu
  | Abs
  | Neg
  | Copy
  | Sqrt

val arity : t -> int

val eval : t -> float list -> float
(** Apply to exactly [arity] operands; [Invalid_argument] otherwise.
    Results follow fp32 semantics once rounded by the caller. *)

val is_associative : t -> bool
(** Valid as a reduction/reassociation operator (Add, Mul, Min, Max). Note
    fp32 addition is not strictly associative; the paper (and we) reassociate
    anyway, and tests compare with a tolerance. *)

val is_commutative : t -> bool

val identity : t -> float option
(** Neutral element when one exists (0 for Add, 1 for Mul, +inf/-inf for
    Min/Max). *)

val distributes_over : t -> t -> bool
(** [distributes_over Mul Add = true]: a*(x+y) = a*x + a*y. *)

val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val all : t list
