type t = Int8 | Int16 | Int32 | Fp32

let bits = function Int8 -> 8 | Int16 -> 16 | Int32 -> 32 | Fp32 -> 32
let bytes t = bits t / 8
let is_float = function Fp32 -> true | Int8 | Int16 | Int32 -> false

let to_string = function
  | Int8 -> "int8"
  | Int16 -> "int16"
  | Int32 -> "int32"
  | Fp32 -> "fp32"

let of_string = function
  | "int8" -> Some Int8
  | "int16" -> Some Int16
  | "int32" -> Some Int32
  | "fp32" -> Some Fp32
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal (a : t) b = a = b
let all = [ Int8; Int16; Int32; Fp32 ]
