module W = Infinity_stream.Workload

let gauss_elim ~n =
  let prog =
    let open Ast in
    let nv = Symaff.var "N" in
    let k1 = i "k" +% 1 in
    program ~name:"gauss_elim" ~params:[ "N" ]
      ~arrays:
        [
          array "A" Dtype.Fp32 [ nv; nv ];
          array "B" Dtype.Fp32 [ nv ];
          array "M" Dtype.Fp32 [ nv ];
        ]
      [
        Host_loop
          ( loop "k" (c 0) (nv +% -1),
            [
              Let_scalar ("akk", load "A" [ i "k"; i "k" ]);
              Let_scalar ("bk", load "B" [ i "k" ]);
              Kernel
                (kernel "gauss_m"
                   [ loop "r" k1 nv ]
                   [ store "M" [ i "r" ] (load "A" [ i "r"; i "k" ] / scalar "akk") ]);
              Kernel
                (kernel "gauss_b"
                   [ loop "r" k1 nv ]
                   [ accum Op.Sub "B" [ i "r" ] (load "M" [ i "r" ] * scalar "bk") ]);
              Kernel
                (kernel "gauss_a"
                   [ loop "r" k1 nv; loop "j" k1 nv ]
                   [
                     accum Op.Sub "A"
                       [ i "r"; i "j" ]
                       (load "A" [ i "k"; i "j" ] * load "M" [ i "r" ]);
                   ]);
            ] );
      ]
  in
  W.make ~check_arrays:[ "A"; "B" ]
    ~name:(Printf.sprintf "gauss_elim/%dx%d" n n)
    ~params:[ ("N", n) ]
    ~inputs:
      (lazy
        [
          ("A", Data.diag_dominant ~seed:41 n);
          ("B", Data.uniform ~seed:43 n);
        ])
    prog
