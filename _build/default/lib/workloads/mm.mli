(** Dense matrix multiply, both dataflows (paper Fig. 8 / Fig. 15).

    [mm_outer] — the paper's preferred in-memory dataflow: the host loop
    walks [k]; each round broadcasts a column of A and a row of B across
    the whole C and accumulates element-wise.

    [mm_inner] — inner-product dataflow: one 3-D (m, n, k) lattice with an
    in-memory reduction over k; far larger than the bitline capacity, so it
    executes in waves over the tile space. *)

val mm_outer : n:int -> Infinity_stream.Workload.t
val mm_inner : n:int -> Infinity_stream.Workload.t
