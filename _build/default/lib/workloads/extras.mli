(** Extension workloads beyond Table 3, from the paper's §9 discussion of
    "broader workloads [that] are prime candidates for in-memory
    computation with infinity stream". *)

val bitscan : n:int -> threshold:float -> Infinity_stream.Workload.t
(** BitWeaving-style database column scan: a predicate mask
    [MASK\[i\] = COL\[i\] < threshold] over an int32 column. Bit-serial
    comparison is O(width), so the scan runs near the Eq. 1 peak. *)

val saxpy : n:int -> a:float -> Infinity_stream.Workload.t
(** The BLAS level-1 kernel [Y = a*X + Y] — streaming with a broadcast
    scalar, a minimal test of runtime-constant handling. *)

val histogram : n:int -> bins:int -> Infinity_stream.Workload.t
(** Indirect scatter-accumulate [H\[B\[i\]\] += 1]: pure near-memory
    irregularity (the in-memory paradigm contributes nothing here, and the
    runtime must know it). *)
