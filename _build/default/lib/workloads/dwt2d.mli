(** One level of a 2D Haar wavelet transform (paper Table 3: dwt2d, 2k x 2k,
    shift + element-wise).

    The strided (stride-2) accesses cannot be unrolled into aligned tensor
    views; they become embedded load streams that deposit the even/odd
    subsequences as dense tensors, after which the averaging/differencing
    is element-wise in-memory — exactly the stream-to-tensor setup of
    paper §3.3. *)

val dwt2d : n:int -> Infinity_stream.Workload.t
