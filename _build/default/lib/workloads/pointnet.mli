(** PointNet++ set-abstraction pipeline (paper §8 case study, Table 4,
    Fig. 19).

    Each set-abstraction (SA) stage chains: furthest-point sampling (an
    iterative, low-parallelism phase — near-memory territory), ball query
    (distance matrix + radius mask in-memory; the sequential first-N
    neighbor selection is substituted by a precomputed synthetic neighbor
    table, see DESIGN.md — the gather over it is still executed), an
    indirect gather of neighbor features, a 3-layer MLP (outer-product
    dataflow), and a max aggregation (in-memory reduction). SSG chains SA
    stages; MSG applies three radii to shared samples and concatenates.

    The input point cloud is 4k uniform points in [0,1)^3 with coordinates
    as initial features, like the paper's randomly generated input. *)

type sa_params = {
  sa_k : int;  (** centroids sampled *)
  sa_n : int;  (** neighbors per centroid *)
  sa_r : float;  (** ball radius (Inf = all) *)
  sa_dims : int list;  (** the 3 MLP layer widths *)
}

val table4 : (string * sa_params) list
(** SA1..SA9 parameters from Table 4. *)

val ssg : ?points:int -> unit -> Infinity_stream.Workload.t
(** SA1 -> SA2 -> SA3 -> FCx3 classifier (default 4096 points). *)

val msg : ?points:int -> unit -> Infinity_stream.Workload.t
(** [SA4,SA5,SA6] -> [SA7,SA8,SA9] -> SA3 -> FCx3. *)

val tiny : unit -> Infinity_stream.Workload.t
(** A drastically scaled-down SSG instance for functional tests. *)

val stage_of_kernel : string -> string
(** Map a kernel name to its Fig. 19 stage label (Furthest Sample / Ball
    Query / Gather / MLP Layer / Aggregate / FC). *)
