module W = Infinity_stream.Workload

(* Each outer iteration applies the stencil A->B and copies the interior
   back B->A, keeping both buffers resident. *)

let stencil1d ~iters ~n =
  let prog =
    let open Ast in
    let nv = Symaff.var "N" in
    let a ix = load "A" [ ix ] in
    program ~name:"stencil1d" ~params:[ "N"; "T" ]
      ~arrays:[ array "A" Dtype.Fp32 [ nv ]; array "B" Dtype.Fp32 [ nv ] ]
      [
        Host_loop
          ( loop "t" (c 0) (Symaff.var "T"),
            [
              Kernel
                (kernel "stencil1d"
                   [ loop "i" (c 1) (nv +% -1) ]
                   [
                     store "B" [ i "i" ]
                       (fconst 0.33
                       * (a (i "i" +% -1) + a (i "i") + a (i "i" +% 1)));
                   ]);
              Kernel
                (kernel "stencil1d_copy"
                   [ loop "i" (c 1) (nv +% -1) ]
                   [ store "A" [ i "i" ] (load "B" [ i "i" ]) ]);
            ] );
      ]
  in
  W.make ~name:(Printf.sprintf "stencil1d/%d" n)
    ~params:[ ("N", n); ("T", iters) ]
    ~inputs:(lazy [ ("A", Data.uniform ~seed:23 n) ])
    prog

let stencil2d ~iters ~n =
  let prog =
    let open Ast in
    let nv = Symaff.var "N" in
    let a di dj = load "A" [ i "i" +% di; i "j" +% dj ] in
    program ~name:"stencil2d" ~params:[ "N"; "T" ]
      ~arrays:
        [ array "A" Dtype.Fp32 [ nv; nv ]; array "B" Dtype.Fp32 [ nv; nv ] ]
      [
        Host_loop
          ( loop "t" (c 0) (Symaff.var "T"),
            [
              Kernel
                (kernel "stencil2d"
                   [ loop "i" (c 1) (nv +% -1); loop "j" (c 1) (nv +% -1) ]
                   [
                     store "B"
                       [ i "i"; i "j" ]
                       (fconst 0.2
                       * (a (-1) 0 + a 1 0 + a 0 (-1) + a 0 1 + a 0 0));
                   ]);
              Kernel
                (kernel "stencil2d_copy"
                   [ loop "i" (c 1) (nv +% -1); loop "j" (c 1) (nv +% -1) ]
                   [ store "A" [ i "i"; i "j" ] (load "B" [ i "i"; i "j" ]) ]);
            ] );
      ]
  in
  W.make ~name:(Printf.sprintf "stencil2d/%dx%d" n n)
    ~params:[ ("N", n); ("T", iters) ]
    ~inputs:(lazy [ ("A", Data.uniform ~seed:29 (n * n)) ])
    prog

let stencil3d ~iters ~nx ~ny ~nz =
  let prog =
    let open Ast in
    let x = Symaff.var "NX" and y = Symaff.var "NY" and z = Symaff.var "NZ" in
    let a di dj dk = load "A" [ i "i" +% di; i "j" +% dj; i "k" +% dk ] in
    program ~name:"stencil3d" ~params:[ "NX"; "NY"; "NZ"; "T" ]
      ~arrays:
        [ array "A" Dtype.Fp32 [ x; y; z ]; array "B" Dtype.Fp32 [ x; y; z ] ]
      [
        Host_loop
          ( loop "t" (c 0) (Symaff.var "T"),
            [
              Kernel
                (kernel "stencil3d"
                   [
                     loop "i" (c 1) (x +% -1);
                     loop "j" (c 1) (y +% -1);
                     loop "k" (c 1) (z +% -1);
                   ]
                   [
                     store "B"
                       [ i "i"; i "j"; i "k" ]
                       (fconst 0.14
                       * (a (-1) 0 0 + a 1 0 0 + a 0 (-1) 0 + a 0 1 0
                         + a 0 0 (-1) + a 0 0 1 + a 0 0 0));
                   ]);
              Kernel
                (kernel "stencil3d_copy"
                   [
                     loop "i" (c 1) (x +% -1);
                     loop "j" (c 1) (y +% -1);
                     loop "k" (c 1) (z +% -1);
                   ]
                   [
                     store "A"
                       [ i "i"; i "j"; i "k" ]
                       (load "B" [ i "i"; i "j"; i "k" ]);
                   ]);
            ] );
      ]
  in
  W.make ~name:(Printf.sprintf "stencil3d/%dx%dx%d" nx ny nz)
    ~params:[ ("NX", nx); ("NY", ny); ("NZ", nz); ("T", iters) ]
    ~inputs:(lazy [ ("A", Data.uniform ~seed:31 (nx * ny * nz)) ])
    prog
