(** Convolutions (paper Table 3).

    [conv2d]: a 3x3 single-channel convolution with a symmetric kernel
    written out as constants — the paper's Fig. 6 example, where the
    e-graph rewrites reuse the shared-coefficient products.

    [conv3d]: multi-channel 2D convolution (paper: H/W=256, K=3x3,
    I/O=64). Channels beyond the 3-D lattice are handled by a host loop
    over input channels with weights broadcast to all output positions
    (Table 3's BC + element-wise pattern); the 4-D weight tensor is
    flattened to 2-D ([co][ci*9+kx*3+ky]) since the lattice has three
    dimensions. *)

val conv2d : n:int -> Infinity_stream.Workload.t
val conv3d : hw:int -> channels:int -> Infinity_stream.Workload.t
