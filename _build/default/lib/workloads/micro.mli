(** Microbenchmarks of paper Fig. 2: element-wise vector addition and a
    full reduction, across input sizes. *)

val vec_add : n:int -> Infinity_stream.Workload.t
(** [C\[i\] = A\[i\] + B\[i\]]. *)

val array_sum : n:int -> Infinity_stream.Workload.t
(** [S\[0\] += A\[i\]] — a reduction to a scalar cell. *)

val vec_add_dtype : dtype:Dtype.t -> n:int -> Infinity_stream.Workload.t
(** [vec_add] over a narrower element type — bit-serial latency is O(width),
    so int8/int16 close the gap to the Eq. 1 peak (dtype ablation). *)

val fig2_sizes : int list
(** 16k .. 4M, the x-axis of Fig. 2. *)
