let uniform ~seed n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Rng.float rng 1.0)

let uniform_range ~seed ~lo ~hi n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Rng.float_range rng lo hi)

let diag_dominant ~seed n =
  let rng = Rng.create seed in
  let m = Array.init (n * n) (fun _ -> Rng.float_range rng (-1.0) 1.0) in
  for i = 0 to n - 1 do
    m.((i * n) + i) <- float_of_int n +. Rng.float rng 1.0
  done;
  m

let indices ~seed ~bound n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> float_of_int (Rng.int rng bound))

let iota n = Array.init n float_of_int
