(** Iterative stencils (paper Table 3: stencil1d/2d/3d, shift + element-wise
    compute). Each iteration ping-pongs between the two buffers, so data
    stays resident and transposed across iterations — the access pattern the
    paper's delayed-release policy is designed for. *)

val stencil1d : iters:int -> n:int -> Infinity_stream.Workload.t
(** 3-point 1D filter, paper size 4M entries, 10 iterations. *)

val stencil2d : iters:int -> n:int -> Infinity_stream.Workload.t
(** 5-point 2D stencil on an [n x n] grid, paper size 2k x 2k. *)

val stencil3d : iters:int -> nx:int -> ny:int -> nz:int -> Infinity_stream.Workload.t
(** 7-point 3D stencil, paper size 512 x 512 x 16. *)
