(** One k-means iteration: assignment + centroid update (paper Table 3,
    32k points, 128 dimensions, 128 centers; Fig. 15's in/out dataflows).

    Assignment computes point-to-center distances and an argmin; the
    centroid update is an indirect scatter-accumulate that only near-memory
    streams can execute (paper §3.3's irregularity example). The argmin is
    built from Lt/Mul/Max tensor ops against an iota input (the mini-C has
    no ternary select), and both the golden model and every paradigm follow
    the same formulation, so results stay comparable.

    [inner]: a 3-D (point, center, dim) lattice with an in-memory reduction
    over the feature dimension, executed in waves over the tile space.
    [outer]: a host loop over centers with element-wise 2-D kernels
    (broadcast + element-wise). *)

val kmeans_inner : points:int -> dim:int -> centers:int -> Infinity_stream.Workload.t
val kmeans_outer : points:int -> dim:int -> centers:int -> Infinity_stream.Workload.t
