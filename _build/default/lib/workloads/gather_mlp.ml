module W = Infinity_stream.Workload

let arrays () =
  let open Ast in
  let m = Symaff.var "M" and d = Symaff.var "D" and v = Symaff.var "V" in
  [
    array "F" Dtype.Fp32 [ v; d ];
    array "IX" Dtype.Fp32 [ m ];
    array "G" Dtype.Fp32 [ m; d ];
    array "Wt" Dtype.Fp32 [ d; d ];
    array "OUT" Dtype.Fp32 [ m; d ];
  ]

let inputs ~rows ~feat ~vocab =
  lazy
    [
      ("F", Data.uniform ~seed:79 (vocab * feat));
      ("IX", Data.indices ~seed:83 ~bound:vocab rows);
      ("Wt", Data.uniform_range ~seed:89 ~lo:(-0.2) ~hi:0.2 (feat * feat));
    ]

let gather_kernel =
  let open Ast in
  let m = Symaff.var "M" and d = Symaff.var "D" in
  Kernel
    (kernel "gml_gather"
       [ loop "r" (c 0) m; loop "dd" (c 0) d ]
       [
         store "G"
           [ i "r"; i "dd" ]
           (load_ix "F"
              [ Indirect { array = "IX"; indices = [ i "r" ] }; Aff (i "dd") ]);
       ])

let relu_kernel =
  let open Ast in
  let m = Symaff.var "M" and d = Symaff.var "D" in
  Kernel
    (kernel "gml_relu"
       [ loop "r" (c 0) m; loop "nn" (c 0) d ]
       [ store "OUT" [ i "r"; i "nn" ] (relu (load "OUT" [ i "r"; i "nn" ])) ])

let gather_mlp_inner ~rows ~feat ~vocab =
  let prog =
    let open Ast in
    let m = Symaff.var "M" and d = Symaff.var "D" in
    program ~name:"gather_mlp_inner" ~params:[ "M"; "D"; "V" ]
      ~arrays:(arrays ())
      [
        gather_kernel;
        Kernel
          (kernel "gml_mm"
             [ loop "r" (c 0) m; loop "nn" (c 0) d; loop "kk" (c 0) d ]
             [
               accum Op.Add "OUT"
                 [ i "r"; i "nn" ]
                 (load "G" [ i "r"; i "kk" ] * load "Wt" [ i "kk"; i "nn" ]);
             ]);
        relu_kernel;
      ]
  in
  W.make ~check_arrays:[ "OUT" ]
    ~name:(Printf.sprintf "gather_mlp/in/%d" rows)
    ~params:[ ("M", rows); ("D", feat); ("V", vocab) ]
    ~inputs:(inputs ~rows ~feat ~vocab)
    prog

let gather_mlp_outer ~rows ~feat ~vocab =
  let prog =
    let open Ast in
    let m = Symaff.var "M" and d = Symaff.var "D" in
    program ~name:"gather_mlp_outer" ~params:[ "M"; "D"; "V" ]
      ~arrays:(arrays ())
      [
        gather_kernel;
        Host_loop
          ( loop "kk" (c 0) d,
            [
              Kernel
                (kernel "gml_mm"
                   [ loop "r" (c 0) m; loop "nn" (c 0) d ]
                   [
                     accum Op.Add "OUT"
                       [ i "r"; i "nn" ]
                       (load "G" [ i "r"; i "kk" ] * load "Wt" [ i "kk"; i "nn" ]);
                   ]);
            ] );
        relu_kernel;
      ]
  in
  W.make ~check_arrays:[ "OUT" ]
    ~name:(Printf.sprintf "gather_mlp/out/%d" rows)
    ~params:[ ("M", rows); ("D", feat); ("V", vocab) ]
    ~inputs:(inputs ~rows ~feat ~vocab)
    prog
