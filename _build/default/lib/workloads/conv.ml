module W = Infinity_stream.Workload

let conv2d ~n =
  let prog =
    let open Ast in
    let nv = Symaff.var "N" in
    let a di dj = load "A" [ i "r" +% di; i "j" +% dj ] in
    (* symmetric 3x3 kernel [c0 c1 c0; c1 c2 c1; c0 c1 c0] (cf. Fig. 6) *)
    let c0 = fconst 0.0625 and c1 = fconst 0.125 and c2 = fconst 0.25 in
    program ~name:"conv2d" ~params:[ "N" ]
      ~arrays:
        [ array "A" Dtype.Fp32 [ nv; nv ]; array "B" Dtype.Fp32 [ nv; nv ] ]
      [
        Kernel
          (kernel "conv2d"
             [ loop "r" (c 0) (nv +% -2); loop "j" (c 0) (nv +% -2) ]
             [
               store "B" [ i "r"; i "j" ]
                 ((c0 * a 0 0) + (c1 * a 0 1) + (c0 * a 0 2)
                 + (c1 * a 1 0) + (c2 * a 1 1) + (c1 * a 1 2)
                 + (c0 * a 2 0) + (c1 * a 2 1) + (c0 * a 2 2));
             ]);
      ]
  in
  W.make ~name:(Printf.sprintf "conv2d/%dx%d" n n) ~params:[ ("N", n) ]
    ~inputs:(lazy [ ("A", Data.uniform ~seed:47 (n * n)) ])
    prog

let conv3d ~hw ~channels =
  let prog =
    let open Ast in
    let h = Symaff.var "HW" in
    let ch = Symaff.var "CH" in
    let inp kx ky = load "In" [ i "ci"; i "x" +% kx; i "y" +% ky ] in
    let wf kx ky =
      (* flattened weight index: ci*9 + kx*3 + ky *)
      load "Wf" [ i "co"; Symaff.scale 9 (i "ci") +% (Stdlib.( + ) (Stdlib.( * ) kx 3) ky) ]
    in
    let taps =
      List.concat_map
        (fun kx -> List.map (fun ky -> wf kx ky * inp kx ky) [ 0; 1; 2 ])
        [ 0; 1; 2 ]
    in
    let rhs =
      match taps with
      | t :: rest -> List.fold_left ( + ) t rest
      | [] -> assert false
    in
    program ~name:"conv3d" ~params:[ "HW"; "CH" ]
      ~arrays:
        [
          array "In" Dtype.Fp32 [ ch; h; h ];
          array "Wf" Dtype.Fp32 [ ch; c 9 +! Symaff.scale 9 (ch +% -1) ];
          array "Out" Dtype.Fp32 [ ch; h +% -2; h +% -2 ];
        ]
      [
        Host_loop
          ( loop "ci" (c 0) ch,
            [
              Kernel
                (kernel "conv3d"
                   [
                     loop "co" (c 0) ch;
                     loop "x" (c 0) (h +% -2);
                     loop "y" (c 0) (h +% -2);
                   ]
                   [ accum Op.Add "Out" [ i "co"; i "x"; i "y" ] rhs ]);
            ] );
      ]
  in
  W.make
    ~name:(Printf.sprintf "conv3d/%dx%dx%d" channels hw hw)
    ~params:[ ("HW", hw); ("CH", channels) ]
    ~inputs:
      (lazy
        [
          ("In", Data.uniform ~seed:53 (channels * hw * hw));
          ("Wf", Data.uniform_range ~seed:59 ~lo:(-0.1) ~hi:0.1 (channels * channels * 9));
        ])
    prog
