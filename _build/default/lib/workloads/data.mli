(** Deterministic input-data generators shared by all workloads. *)

val uniform : seed:int -> int -> float array
(** [uniform ~seed n]: n floats in [\[0,1)]. *)

val uniform_range : seed:int -> lo:float -> hi:float -> int -> float array

val diag_dominant : seed:int -> int -> float array
(** An [n x n] row-major matrix with a dominant diagonal (so Gaussian
    elimination never divides by ~0). *)

val indices : seed:int -> bound:int -> int -> float array
(** Random integer indices in [\[0,bound)], stored as floats (index arrays
    are regular fp32 arrays in the mini-C programs). *)

val iota : int -> float array
(** [0.; 1.; ...] *)
