(** Gaussian elimination (paper Fig. 4c / Fig. 7: broadcast + element-wise,
    with the pivot loop on the host and per-iteration runtime scalars).

    The [m] multiplier column is produced by a near-memory stream (low
    parallelism, column access), then broadcast across the trailing
    submatrix for the in-memory rank-1 update — the paper's flagship hybrid
    example. *)

val gauss_elim : n:int -> Infinity_stream.Workload.t
