module W = Infinity_stream.Workload

let vec_add ~n =
  let prog =
    let open Ast in
    let nv = Symaff.var "N" in
    program ~name:"vec_add" ~params:[ "N" ]
      ~arrays:
        [
          array "A" Dtype.Fp32 [ nv ];
          array "B" Dtype.Fp32 [ nv ];
          array "C" Dtype.Fp32 [ nv ];
        ]
      [
        Kernel
          (kernel "vec_add"
             [ loop "i" (c 0) nv ]
             [ store "C" [ i "i" ] (load "A" [ i "i" ] + load "B" [ i "i" ]) ]);
      ]
  in
  W.make ~name:(Printf.sprintf "vec_add/%d" n) ~params:[ ("N", n) ]
    ~inputs:
      (lazy [ ("A", Data.uniform ~seed:11 n); ("B", Data.uniform ~seed:13 n) ])
    prog

let array_sum ~n =
  let prog =
    let open Ast in
    let nv = Symaff.var "N" in
    program ~name:"array_sum" ~params:[ "N" ]
      ~arrays:[ array "A" Dtype.Fp32 [ nv ]; array "S" Dtype.Fp32 [ c 1 ] ]
      [
        Kernel
          (kernel "array_sum"
             [ loop "i" (c 0) nv ]
             [ accum Op.Add "S" [ c 0 ] (load "A" [ i "i" ]) ]);
      ]
  in
  W.make ~name:(Printf.sprintf "array_sum/%d" n) ~params:[ ("N", n) ]
    ~inputs:(lazy [ ("A", Data.uniform ~seed:17 n) ])
    prog

let vec_add_dtype ~dtype ~n =
  let prog =
    let open Ast in
    let nv = Symaff.var "N" in
    program ~name:"vec_add" ~params:[ "N" ]
      ~arrays:
        [
          array "A" dtype [ nv ];
          array "B" dtype [ nv ];
          array "C" dtype [ nv ];
        ]
      [
        Kernel
          (kernel "vec_add"
             [ loop "i" (c 0) nv ]
             [ store "C" [ i "i" ] (load "A" [ i "i" ] + load "B" [ i "i" ]) ]);
      ]
  in
  W.make
    ~name:(Printf.sprintf "vec_add/%s/%d" (Dtype.to_string dtype) n)
    ~params:[ ("N", n) ]
    ~inputs:
      (lazy [ ("A", Data.uniform ~seed:11 n); ("B", Data.uniform ~seed:13 n) ])
    prog

let fig2_sizes = [ 16_384; 65_536; 262_144; 1_048_576; 4_194_304 ]
