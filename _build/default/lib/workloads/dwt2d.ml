module W = Infinity_stream.Workload

(* Row pass produces L/H (n x n/2); column pass produces the four n/2 x n/2
   subbands from L and H. *)
let dwt2d ~n =
  let prog =
    let open Ast in
    let nv = Symaff.var "N" in
    let h = Symaff.var "H" in
    (* H = N/2, passed explicitly since the AST has no division *)
    let avg a b = fconst 0.5 * (a + b) in
    let diff a b = fconst 0.5 * (a - b) in
    let a2 name r cc = load name [ r; cc ] in
    let col2 j = Symaff.scale 2 (i j) in
    program ~name:"dwt2d" ~params:[ "N"; "H" ]
      ~arrays:
        [
          array "A" Dtype.Fp32 [ nv; nv ];
          array "L" Dtype.Fp32 [ nv; h ];
          array "Hh" Dtype.Fp32 [ nv; h ];
          array "LL" Dtype.Fp32 [ h; h ];
          array "LH" Dtype.Fp32 [ h; h ];
          array "HL" Dtype.Fp32 [ h; h ];
          array "HH" Dtype.Fp32 [ h; h ];
        ]
      [
        Kernel
          (kernel "dwt_rows"
             [ loop "r" (c 0) nv; loop "j" (c 0) h ]
             [
               store "L" [ i "r"; i "j" ]
                 (avg (a2 "A" (i "r") (col2 "j")) (a2 "A" (i "r") (col2 "j" +% 1)));
               store "Hh" [ i "r"; i "j" ]
                 (diff (a2 "A" (i "r") (col2 "j")) (a2 "A" (i "r") (col2 "j" +% 1)));
             ]);
        Kernel
          (kernel "dwt_cols_l"
             [ loop "r" (c 0) h; loop "j" (c 0) h ]
             [
               store "LL" [ i "r"; i "j" ]
                 (avg (a2 "L" (col2 "r") (i "j")) (a2 "L" (col2 "r" +% 1) (i "j")));
               store "LH" [ i "r"; i "j" ]
                 (diff (a2 "L" (col2 "r") (i "j")) (a2 "L" (col2 "r" +% 1) (i "j")));
             ]);
        Kernel
          (kernel "dwt_cols_h"
             [ loop "r" (c 0) h; loop "j" (c 0) h ]
             [
               store "HL" [ i "r"; i "j" ]
                 (avg (a2 "Hh" (col2 "r") (i "j")) (a2 "Hh" (col2 "r" +% 1) (i "j")));
               store "HH" [ i "r"; i "j" ]
                 (diff (a2 "Hh" (col2 "r") (i "j")) (a2 "Hh" (col2 "r" +% 1) (i "j")));
             ]);
      ]
  in
  W.make ~name:(Printf.sprintf "dwt2d/%dx%d" n n)
    ~params:[ ("N", n); ("H", n / 2) ]
    ~inputs:(lazy [ ("A", Data.uniform ~seed:37 (n * n)) ])
    prog
