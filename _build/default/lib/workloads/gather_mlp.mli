(** Gather + MLP layer (paper Table 3: M=32k rows, N=K=128), the paper's
    motivating hybrid: an indirect gather collects feature rows (a
    near-memory stream laying data out in tensor form, §3.3) and a dense
    matrix product with ReLU runs in-memory.

    [inner]: the product reduces over K inside a 3-D lattice.
    [outer]: a host loop over K accumulates rank-1 updates (the paper's
    preferred dataflow). *)

val gather_mlp_inner :
  rows:int -> feat:int -> vocab:int -> Infinity_stream.Workload.t

val gather_mlp_outer : rows:int -> feat:int -> vocab:int -> Infinity_stream.Workload.t
