module W = Infinity_stream.Workload

let inputs_for n =
  lazy
    [
      ("A", Data.uniform_range ~seed:61 ~lo:(-1.0) ~hi:1.0 (n * n));
      ("B", Data.uniform_range ~seed:67 ~lo:(-1.0) ~hi:1.0 (n * n));
    ]

let arrays_mm nv =
  let open Ast in
  [
    array "A" Dtype.Fp32 [ nv; nv ];
    array "B" Dtype.Fp32 [ nv; nv ];
    array "C" Dtype.Fp32 [ nv; nv ];
  ]

let mm_outer ~n =
  let prog =
    let open Ast in
    let nv = Symaff.var "N" in
    program ~name:"mm_outer" ~params:[ "N" ] ~arrays:(arrays_mm nv)
      [
        Host_loop
          ( loop "k" (c 0) nv,
            [
              Kernel
                (kernel "mm_outer"
                   [ loop "m" (c 0) nv; loop "nn" (c 0) nv ]
                   [
                     accum Op.Add "C"
                       [ i "m"; i "nn" ]
                       (load "A" [ i "m"; i "k" ] * load "B" [ i "k"; i "nn" ]);
                   ]);
            ] );
      ]
  in
  W.make ~name:(Printf.sprintf "mm/out/%d" n) ~params:[ ("N", n) ]
    ~inputs:(inputs_for n) prog

let mm_inner ~n =
  let prog =
    let open Ast in
    let nv = Symaff.var "N" in
    program ~name:"mm_inner" ~params:[ "N" ] ~arrays:(arrays_mm nv)
      [
        Kernel
          (kernel "mm_inner"
             [ loop "m" (c 0) nv; loop "nn" (c 0) nv; loop "kc" (c 0) nv ]
             [
               accum Op.Add "C"
                 [ i "m"; i "nn" ]
                 (load "A" [ i "m"; i "kc" ] * load "B" [ i "kc"; i "nn" ]);
             ]);
      ]
  in
  W.make ~name:(Printf.sprintf "mm/in/%d" n)
    ~params:[ ("N", n) ]
    ~inputs:(inputs_for n) prog
