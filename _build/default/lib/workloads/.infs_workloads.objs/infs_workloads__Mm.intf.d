lib/workloads/mm.mli: Infinity_stream
