lib/workloads/catalog.mli: Infinity_stream
