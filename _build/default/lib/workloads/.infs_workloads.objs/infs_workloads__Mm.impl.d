lib/workloads/mm.ml: Ast Data Dtype Infinity_stream Op Printf Symaff
