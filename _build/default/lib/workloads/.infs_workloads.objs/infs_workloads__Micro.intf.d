lib/workloads/micro.mli: Dtype Infinity_stream
