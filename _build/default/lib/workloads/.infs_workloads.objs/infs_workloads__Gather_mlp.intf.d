lib/workloads/gather_mlp.mli: Infinity_stream
