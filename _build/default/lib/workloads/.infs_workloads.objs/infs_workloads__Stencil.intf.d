lib/workloads/stencil.mli: Infinity_stream
