lib/workloads/conv.ml: Ast Data Dtype Infinity_stream List Op Printf Stdlib Symaff
