lib/workloads/dwt2d.ml: Ast Data Dtype Infinity_stream Printf Symaff
