lib/workloads/kmeans.ml: Array Ast Data Dtype Infinity_stream Op Printf Symaff
