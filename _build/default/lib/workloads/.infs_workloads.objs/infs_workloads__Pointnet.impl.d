lib/workloads/pointnet.ml: Array Ast Data Dtype Float Infinity_stream List Op Printf Stdlib String
