lib/workloads/data.mli:
