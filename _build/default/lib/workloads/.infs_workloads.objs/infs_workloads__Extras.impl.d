lib/workloads/extras.ml: Ast Data Dtype Infinity_stream Op Printf Symaff
