lib/workloads/stencil.ml: Ast Data Dtype Infinity_stream Printf Symaff
