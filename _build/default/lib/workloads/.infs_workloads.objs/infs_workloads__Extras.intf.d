lib/workloads/extras.mli: Infinity_stream
