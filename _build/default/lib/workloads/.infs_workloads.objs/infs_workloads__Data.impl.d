lib/workloads/data.ml: Array Rng
