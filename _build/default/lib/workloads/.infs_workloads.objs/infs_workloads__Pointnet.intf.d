lib/workloads/pointnet.mli: Infinity_stream
