lib/workloads/dwt2d.mli: Infinity_stream
