lib/workloads/gauss.ml: Ast Data Dtype Infinity_stream Op Printf Symaff
