lib/workloads/kmeans.mli: Infinity_stream
