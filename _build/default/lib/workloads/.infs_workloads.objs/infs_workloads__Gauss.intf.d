lib/workloads/gauss.mli: Infinity_stream
