lib/workloads/gather_mlp.ml: Ast Data Dtype Infinity_stream Op Printf Symaff
