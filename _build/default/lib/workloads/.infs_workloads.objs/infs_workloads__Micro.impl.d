lib/workloads/micro.ml: Ast Data Dtype Infinity_stream Op Printf Symaff
