lib/workloads/catalog.ml: Conv Dwt2d Gather_mlp Gauss Infinity_stream Kmeans List Mm Stencil
