lib/workloads/conv.mli: Infinity_stream
