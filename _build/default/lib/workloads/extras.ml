module W = Infinity_stream.Workload

let bitscan ~n ~threshold =
  let prog =
    let open Ast in
    let nv = Symaff.var "N" in
    program ~name:"bitscan" ~params:[ "N" ]
      ~arrays:[ array "COL" Dtype.Int32 [ nv ]; array "MASK" Dtype.Int32 [ nv ] ]
      [
        Kernel
          (kernel "bitscan"
             [ loop "i" (c 0) nv ]
             [
               store "MASK" [ i "i" ]
                 (Binop (Op.Lt, load "COL" [ i "i" ], fconst threshold));
             ]);
      ]
  in
  W.make ~name:(Printf.sprintf "bitscan/%d" n) ~params:[ ("N", n) ]
    ~inputs:
      (lazy
        [ ("COL", Data.uniform_range ~seed:101 ~lo:0.0 ~hi:1000.0 n) ])
    prog

let saxpy ~n ~a =
  let prog =
    let open Ast in
    let nv = Symaff.var "N" in
    program ~name:"saxpy" ~params:[ "N" ]
      ~arrays:[ array "X" Dtype.Fp32 [ nv ]; array "Y" Dtype.Fp32 [ nv ] ]
      [
        Kernel
          (kernel "saxpy"
             [ loop "i" (c 0) nv ]
             [
               store "Y" [ i "i" ]
                 ((fconst a * load "X" [ i "i" ]) + load "Y" [ i "i" ]);
             ]);
      ]
  in
  W.make ~name:(Printf.sprintf "saxpy/%d" n) ~params:[ ("N", n) ]
    ~inputs:
      (lazy [ ("X", Data.uniform ~seed:103 n); ("Y", Data.uniform ~seed:107 n) ])
    prog

let histogram ~n ~bins =
  let prog =
    let open Ast in
    let nv = Symaff.var "N" and bv = Symaff.var "B" in
    program ~name:"histogram" ~params:[ "N"; "B" ]
      ~arrays:[ array "IXS" Dtype.Fp32 [ nv ]; array "H" Dtype.Fp32 [ bv ] ]
      [
        Kernel
          (kernel "histogram"
             [ loop "i" (c 0) nv ]
             [
               accum_ix Op.Add "H"
                 [ Indirect { array = "IXS"; indices = [ i "i" ] } ]
                 (fconst 1.0);
             ]);
      ]
  in
  W.make ~check_arrays:[ "H" ]
    ~name:(Printf.sprintf "histogram/%d" n)
    ~params:[ ("N", n); ("B", bins) ]
    ~inputs:(lazy [ ("IXS", Data.indices ~seed:109 ~bound:bins n) ])
    prog
