module W = Infinity_stream.Workload

let common_arrays ~points:_ ~dim:_ ~centers:_ =
  let open Ast in
  let p = Symaff.var "P" and d = Symaff.var "D" and k = Symaff.var "K" in
  [
    array "X" Dtype.Fp32 [ p; d ];
    array "Cc" Dtype.Fp32 [ k; d ];
    array "DIST" Dtype.Fp32 [ p; k ];
    array "BEST" Dtype.Fp32 [ p ];
    array "IDX" Dtype.Fp32 [ p ];
    array "IOTA" Dtype.Fp32 [ k ];
    array "CSUM" Dtype.Fp32 [ k; d ];
    array "CNT" Dtype.Fp32 [ k ];
    array "CNEW" Dtype.Fp32 [ k; d ];
  ]

let inputs ~points ~dim ~centers =
  lazy
    [
      ("X", Data.uniform ~seed:71 (points * dim));
      ("Cc", Data.uniform ~seed:73 (centers * dim));
      ("BEST", Array.make points 1e30);
      ("IOTA", Data.iota centers);
    ]

(* Shared tail: argmin extraction and the indirect centroid update. *)
let update_kernels =
  let open Ast in
  let p = Symaff.var "P" and d = Symaff.var "D" and k = Symaff.var "K" in
  [
    (* idx+1 = max over centers of (dist < best + eps) * (iota+1) *)
    Kernel
      (kernel "km_idx"
         [ loop "pp" (c 0) p; loop "cc" (c 0) k ]
         [
           accum Op.Max "IDX" [ i "pp" ]
             (Binop
                ( Op.Lt,
                  load "DIST" [ i "pp"; i "cc" ],
                  load "BEST" [ i "pp" ] + fconst 1e-6 )
             * (load "IOTA" [ i "cc" ] + fconst 1.0));
         ]);
    Kernel
      (kernel "km_idxfix"
         [ loop "pp" (c 0) p ]
         [ store "IDX" [ i "pp" ] (load "IDX" [ i "pp" ] - fconst 1.0) ]);
    (* indirect scatter-accumulate: near-memory streams *)
    Kernel
      (kernel "km_update"
         [ loop "pp" (c 0) p; loop "dd" (c 0) d ]
         [
           accum_ix Op.Add "CSUM"
             [ Indirect { array = "IDX"; indices = [ i "pp" ] }; Aff (i "dd") ]
             (load "X" [ i "pp"; i "dd" ]);
         ]);
    Kernel
      (kernel "km_count"
         [ loop "pp" (c 0) p ]
         [
           accum_ix Op.Add "CNT"
             [ Indirect { array = "IDX"; indices = [ i "pp" ] } ]
             (fconst 1.0);
         ]);
    Kernel
      (kernel "km_new"
         [ loop "cc" (c 0) k; loop "dd" (c 0) d ]
         [
           store "CNEW"
             [ i "cc"; i "dd" ]
             (load "CSUM" [ i "cc"; i "dd" ]
             / max_ (load "CNT" [ i "cc" ]) (fconst 1.0));
         ]);
  ]

let kmeans_inner ~points ~dim ~centers =
  let prog =
    let open Ast in
    let p = Symaff.var "P" and d = Symaff.var "D" and k = Symaff.var "K" in
    program ~name:"kmeans_inner" ~params:[ "P"; "D"; "K" ]
      ~arrays:(common_arrays ~points ~dim ~centers)
      ([
         Kernel
           (kernel "km_dist"
              [ loop "pp" (c 0) p; loop "cc" (c 0) k; loop "dd" (c 0) d ]
              [
                accum Op.Add "DIST"
                  [ i "pp"; i "cc" ]
                  ((load "X" [ i "pp"; i "dd" ] - load "Cc" [ i "cc"; i "dd" ])
                  * (load "X" [ i "pp"; i "dd" ] - load "Cc" [ i "cc"; i "dd" ]));
              ]);
         Kernel
           (kernel "km_best"
              [ loop "pp" (c 0) p; loop "cc" (c 0) k ]
              [ accum Op.Min "BEST" [ i "pp" ] (load "DIST" [ i "pp"; i "cc" ]) ]);
       ]
      @ update_kernels)
  in
  W.make
    ~check_arrays:[ "IDX"; "CNEW"; "BEST" ]
    ~name:(Printf.sprintf "kmeans/in/%dp" points)
    ~params:[ ("P", points); ("D", dim); ("K", centers) ]
    ~inputs:(inputs ~points ~dim ~centers)
    prog

let kmeans_outer ~points ~dim ~centers =
  let prog =
    let open Ast in
    let p = Symaff.var "P" and d = Symaff.var "D" and k = Symaff.var "K" in
    program ~name:"kmeans_outer" ~params:[ "P"; "D"; "K" ]
      ~arrays:
        (common_arrays ~points ~dim ~centers
        @ [ Ast.array "TMP" Dtype.Fp32 [ p; d ]; Ast.array "DC" Dtype.Fp32 [ p ] ])
      ([
         Host_loop
           ( loop "cc0" (c 0) k,
             [
               (* squared differences against one broadcast center row *)
               Kernel
                 (kernel "km_diff"
                    [ loop "pp" (c 0) p; loop "dd" (c 0) d ]
                    [
                      store "TMP"
                        [ i "pp"; i "dd" ]
                        ((load "X" [ i "pp"; i "dd" ]
                         - load "Cc" [ i "cc0"; i "dd" ])
                        * (load "X" [ i "pp"; i "dd" ]
                          - load "Cc" [ i "cc0"; i "dd" ]));
                    ]);
               Kernel
                 (kernel "km_dsum"
                    [ loop "pp" (c 0) p; loop "dd" (c 0) d ]
                    [ accum Op.Add "DC" [ i "pp" ] (load "TMP" [ i "pp"; i "dd" ]) ]);
               (* write this center's distance column (a one-iteration
                  loop keeps the target index loop-carried) *)
               Kernel
                 (kernel "km_scatter"
                    [ loop "pp" (c 0) p; loop "jj" (i "cc0") (i "cc0" +% 1) ]
                    [ store "DIST" [ i "pp"; i "jj" ] (load "DC" [ i "pp" ]) ]);
               Kernel
                 (kernel "km_minup"
                    [ loop "pp" (c 0) p ]
                    [
                      accum Op.Min "BEST" [ i "pp" ] (load "DC" [ i "pp" ]);
                    ]);
               Kernel
                 (kernel "km_dczero"
                    [ loop "pp" (c 0) p ]
                    [ store "DC" [ i "pp" ] (fconst 0.0) ]);
             ] );
       ]
      @ update_kernels)
  in
  W.make
    ~check_arrays:[ "IDX"; "CNEW"; "BEST" ]
    ~name:(Printf.sprintf "kmeans/out/%dp" points)
    ~params:[ ("P", points); ("D", dim); ("K", centers) ]
    ~inputs:(inputs ~points ~dim ~centers)
    prog
