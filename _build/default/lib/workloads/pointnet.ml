module W = Infinity_stream.Workload
open Ast

(* [open Ast] rebinds the arithmetic operators to expression builders;
   integer arithmetic below uses the $-suffixed aliases. *)
let ( +$ ) = Stdlib.( + )
let ( -$ ) = Stdlib.( - )
let ( *$ ) = Stdlib.( * )

type sa_params = {
  sa_k : int;
  sa_n : int;
  sa_r : float;
  sa_dims : int list;
}

let table4 =
  [
    ("SA1", { sa_k = 512; sa_n = 32; sa_r = 0.2; sa_dims = [ 64; 64; 128 ] });
    ("SA2", { sa_k = 128; sa_n = 64; sa_r = 0.4; sa_dims = [ 128; 128; 256 ] });
    ("SA3", { sa_k = 1; sa_n = 128; sa_r = infinity; sa_dims = [ 256; 512; 1024 ] });
    ("SA4", { sa_k = 512; sa_n = 16; sa_r = 0.1; sa_dims = [ 32; 32; 64 ] });
    ("SA5", { sa_k = 512; sa_n = 32; sa_r = 0.2; sa_dims = [ 64; 64; 128 ] });
    ("SA6", { sa_k = 512; sa_n = 128; sa_r = 0.4; sa_dims = [ 64; 96; 128 ] });
    ("SA7", { sa_k = 128; sa_n = 16; sa_r = 0.2; sa_dims = [ 64; 64; 128 ] });
    ("SA8", { sa_k = 128; sa_n = 32; sa_r = 0.4; sa_dims = [ 128; 128; 256 ] });
    ("SA9", { sa_k = 128; sa_n = 128; sa_r = 0.8; sa_dims = [ 128; 128; 256 ] });
  ]

(* ---- program builder ---- *)

type builder = {
  mutable arrays : array_decl list; (* reversed *)
  mutable stmts : host_stmt list; (* reversed *)
  mutable inputs : (string * (unit -> float array)) list;
  mutable iotas : (int * string) list;
  mutable seed : int;
}

let fresh_builder () = { arrays = []; stmts = []; inputs = []; iotas = []; seed = 1000 }

let next_seed b =
  b.seed <- b.seed +$ 1;
  b.seed

let decl b name dims ?init () =
  b.arrays <- array name Dtype.Fp32 (List.map c dims) :: b.arrays;
  match init with
  | Some f -> b.inputs <- (name, f) :: b.inputs
  | None -> ()

let push b s = b.stmts <- s :: b.stmts

let iota_for b p =
  match List.assoc_opt p b.iotas with
  | Some name -> name
  | None ->
    let name = Printf.sprintf "IOTA%d" p in
    decl b name [ p ] ~init:(fun () -> Data.iota p) ();
    b.iotas <- (p, name) :: b.iotas;
    name

let sq e = e * e

(* A dense layer OUT[.][.][nn] += IN[.][.][kk] * W[kk][nn], outer-product
   dataflow (host loop over kk), followed by ReLU. Lattice (k2, j, nn). *)
let mlp_layer b ~prefix ~layer ~k ~n ~din ~dout ~src =
  let wname = Printf.sprintf "%s_W%d" prefix layer in
  let aname = Printf.sprintf "%s_A%d" prefix layer in
  decl b wname [ din; dout ]
    ~init:(fun () ->
      Data.uniform_range ~seed:(next_seed b) ~lo:(-0.2) ~hi:0.2 (din *$ dout))
    ();
  decl b aname [ k; n; dout ] ();
  push b
    (Host_loop
       ( loop "kk" (c 0) (c din),
         [
           Kernel
             (kernel
                (Printf.sprintf "%s_mlp%d" prefix layer)
                [ loop "k2" (c 0) (c k); loop "j" (c 0) (c n); loop "nn" (c 0) (c dout) ]
                [
                  accum Op.Add aname
                    [ i "k2"; i "j"; i "nn" ]
                    (load src [ i "k2"; i "j"; i "kk" ] * load wname [ i "kk"; i "nn" ]);
                ]);
         ] ));
  push b
    (Kernel
       (kernel
          (Printf.sprintf "%s_relu%d" prefix layer)
          [ loop "k2" (c 0) (c k); loop "j" (c 0) (c n); loop "nn" (c 0) (c dout) ]
          [
            store aname [ i "k2"; i "j"; i "nn" ]
              (relu (load aname [ i "k2"; i "j"; i "nn" ]));
          ]));
  aname

(* Furthest-point sampling over [np] points with coords [cin] (np x 3):
   produces [prefix_SAMP] (k indices). Iterative, scalar-coordinated —
   the near-memory phase of Fig. 19. *)
let furthest_sample b ~prefix ~np ~k ~cin =
  let d2 = prefix ^ "_D2" in
  let last = prefix ^ "_LAST" in
  let mx = prefix ^ "_MX" in
  let samp = prefix ^ "_SAMP" in
  let iota = iota_for b np in
  decl b d2 [ np ] ~init:(fun () -> Array.make np 1e30) ();
  decl b last [ 1 ] ();
  decl b mx [ k ] ();
  decl b samp [ k ] ();
  let coord cc = load_ix cin [ Indirect { array = last; indices = [ c 0 ] }; Aff (c cc) ] in
  push b
    (Host_loop
       ( loop "ss" (c 0) (c k),
         [
           Let_scalar ("lx", coord 0);
           Let_scalar ("ly", coord 1);
           Let_scalar ("lz", coord 2);
           Kernel
             (kernel (prefix ^ "_fps_upd")
                [ loop "p" (c 0) (c np) ]
                [
                  store d2 [ i "p" ]
                    (min_ (load d2 [ i "p" ])
                       (sq (load cin [ i "p"; c 0 ] - scalar "lx")
                       + sq (load cin [ i "p"; c 1 ] - scalar "ly")
                       + sq (load cin [ i "p"; c 2 ] - scalar "lz")));
                ]);
           Kernel
             (kernel (prefix ^ "_fps_max")
                [ loop "j" (i "ss") (i "ss" +% 1); loop "p" (c 0) (c np) ]
                [ accum Op.Max mx [ i "j" ] (load d2 [ i "p" ]) ]);
           Kernel
             (kernel (prefix ^ "_fps_win")
                [ loop "j" (i "ss") (i "ss" +% 1); loop "p" (c 0) (c np) ]
                [
                  accum Op.Max samp [ i "j" ]
                    (Binop
                       ( Op.Lt,
                         load mx [ i "j" ] - fconst 1e-6,
                         load d2 [ i "p" ] )
                    * (load iota [ i "p" ] + fconst 1.0));
                ]);
           Kernel
             (kernel (prefix ^ "_fps_fix")
                [ loop "j" (i "ss") (i "ss" +% 1) ]
                [ store samp [ i "j" ] (load samp [ i "j" ] - fconst 1.0) ]);
           Kernel
             (kernel (prefix ^ "_fps_last")
                [ loop "jz" (c 0) (c 1) ]
                [
                  store last [ i "jz" ]
                    (load samp [ i "jz" +! i "ss" ]);
                ]);
         ] ));
  samp

(* One set-abstraction stage. [fin]: feature array (np x din); [cin]:
   coordinates (np x 3). Returns (out features (k x dout), centroid coords
   (k x 3), dout). [samp]: reuse an existing sample (MSG shares samples). *)
let sa_stage b ~prefix ~(params : sa_params) ~np ~din ~fin ~cin ?samp () =
  let { sa_k = k; sa_n = n; sa_r = r; sa_dims } = params in
  let samp =
    match samp with
    | Some s -> s
    | None -> furthest_sample b ~prefix ~np ~k ~cin
  in
  let cxyz = prefix ^ "_CXYZ" in
  let bqd = prefix ^ "_BQD" in
  let mask = prefix ^ "_MASK" in
  let nb = prefix ^ "_NB" in
  let nbf = prefix ^ "_NBF" in
  let g = prefix ^ "_G" in
  decl b cxyz [ k; 3 ] ();
  decl b bqd [ k; np ] ();
  decl b mask [ k; np ] ();
  decl b nb [ k; n ]
    ~init:
      (let seed = next_seed b in
       fun () -> Data.indices ~seed ~bound:np (k *$ n))
    ();
  decl b nbf [ k; n ] ();
  decl b g [ k; n; din ] ();
  (* centroid coordinates: indirect gather through the sample *)
  push b
    (Kernel
       (kernel (prefix ^ "_bq_cxyz")
          [ loop "k2" (c 0) (c k); loop "cc" (c 0) (c 3) ]
          [
            store_ix cxyz
              [ Aff (i "k2"); Aff (i "cc") ]
              (load_ix cin
                 [ Indirect { array = samp; indices = [ i "k2" ] }; Aff (i "cc") ]);
          ]));
  (* ball query: distance matrix + radius mask (in-memory element-wise) *)
  let dist_term cc =
    sq (load cin [ i "p"; c cc ] - load cxyz [ i "k2"; c cc ])
  in
  push b
    (Kernel
       (kernel (prefix ^ "_bq_dist")
          [ loop "k2" (c 0) (c k); loop "p" (c 0) (c np) ]
          [
            store bqd [ i "k2"; i "p" ] (dist_term 0 + dist_term 1 + dist_term 2);
          ]));
  let r2 = if Float.is_finite r then r *. r else 1e30 in
  push b
    (Kernel
       (kernel (prefix ^ "_bq_mask")
          [ loop "k2" (c 0) (c k); loop "p" (c 0) (c np) ]
          [
            store mask [ i "k2"; i "p" ]
              (Binop (Op.Lt, load bqd [ i "k2"; i "p" ], fconst r2));
          ]));
  (* neighbor list: synthetic table (see DESIGN.md substitution); the
     selection write is the near-memory stream the paper describes *)
  push b
    (Kernel
       (kernel (prefix ^ "_bq_sel")
          [ loop "k2" (c 0) (c k); loop "j" (c 0) (c n) ]
          [ store nbf [ i "k2"; i "j" ] (load nb [ i "k2"; i "j" ]) ]));
  (* gather neighbor features *)
  push b
    (Kernel
       (kernel (prefix ^ "_gather")
          [ loop "k2" (c 0) (c k); loop "j" (c 0) (c n); loop "dd" (c 0) (c din) ]
          [
            store_ix g
              [ Aff (i "k2"); Aff (i "j"); Aff (i "dd") ]
              (load_ix fin
                 [
                   Indirect { array = nbf; indices = [ i "k2"; i "j" ] };
                   Aff (i "dd");
                 ]);
          ]));
  (* 3-layer MLP *)
  let _, last_a =
    List.fold_left
      (fun (layer, src) dout ->
        let din = if layer = 1 then din else List.nth sa_dims (layer -$ 2) in
        let a = mlp_layer b ~prefix ~layer ~k ~n ~din ~dout ~src in
        (layer +$ 1, a))
      (1, g) sa_dims
  in
  let dout = List.nth sa_dims (List.length sa_dims -$ 1) in
  (* aggregate: max over neighbors (in-memory reduction) *)
  let out = prefix ^ "_OUT" in
  decl b out [ k; dout ] ();
  push b
    (Kernel
       (kernel (prefix ^ "_agg")
          [ loop "k2" (c 0) (c k); loop "j" (c 0) (c n); loop "dd" (c 0) (c dout) ]
          [ accum Op.Max out [ i "k2"; i "dd" ] (load last_a [ i "k2"; i "j"; i "dd" ]) ]));
  (out, cxyz, dout)

(* Fully-connected classifier head: OUT[0][nn] += IN[0][kk] * W[kk][nn]. *)
let fc_layer b ~layer ~din ~dout ~src =
  let wname = Printf.sprintf "fc_W%d" layer in
  let aname = Printf.sprintf "fc_A%d" layer in
  decl b wname [ din; dout ]
    ~init:
      (let seed = next_seed b in
       fun () -> Data.uniform_range ~seed ~lo:(-0.2) ~hi:0.2 (din *$ dout))
    ();
  decl b aname [ 1; dout ] ();
  push b
    (Host_loop
       ( loop "kk" (c 0) (c din),
         [
           Kernel
             (kernel
                (Printf.sprintf "fc_mlp%d" layer)
                [ loop "k2" (c 0) (c 1); loop "nn" (c 0) (c dout) ]
                [
                  accum Op.Add aname
                    [ i "k2"; i "nn" ]
                    (load src [ i "k2"; i "kk" ] * load wname [ i "kk"; i "nn" ]);
                ]);
         ] ));
  push b
    (Kernel
       (kernel
          (Printf.sprintf "fc_relu%d" layer)
          [ loop "k2" (c 0) (c 1); loop "nn" (c 0) (c dout) ]
          [ store aname [ i "k2"; i "nn" ] (relu (load aname [ i "k2"; i "nn" ])) ]));
  aname

let finish b ~name ~check =
  let prog =
    program ~name ~params:[] ~arrays:(List.rev b.arrays) (List.rev b.stmts)
  in
  let inputs = List.rev b.inputs in
  W.make ~check_arrays:check ~name
    ~params:[]
    ~inputs:(lazy (List.map (fun (n, f) -> (n, f ())) inputs))
    prog

let base_cloud b ~points =
  decl b "P0XYZ" [ points; 3 ]
    ~init:(fun () -> Data.uniform ~seed:97 (points *$ 3))
    ();
  "P0XYZ"

let sa p = List.assoc p table4

let ssg ?(points = 4096) () =
  let b = fresh_builder () in
  let cin = base_cloud b ~points in
  let f1, c1, d1 = sa_stage b ~prefix:"sa1" ~params:(sa "SA1") ~np:points ~din:3 ~fin:cin ~cin () in
  let f2, c2, d2 = sa_stage b ~prefix:"sa2" ~params:(sa "SA2") ~np:(sa "SA1").sa_k ~din:d1 ~fin:f1 ~cin:c1 () in
  let f3, _c3, d3 = sa_stage b ~prefix:"sa3" ~params:(sa "SA3") ~np:(sa "SA2").sa_k ~din:d2 ~fin:f2 ~cin:c2 () in
  let a1 = fc_layer b ~layer:1 ~din:d3 ~dout:512 ~src:f3 in
  let a2 = fc_layer b ~layer:2 ~din:512 ~dout:256 ~src:a1 in
  let a3 = fc_layer b ~layer:3 ~din:256 ~dout:10 ~src:a2 in
  finish b ~name:"pointnet/ssg" ~check:[ a3 ]

let concat2d b ~name ~parts ~k =
  let total = List.fold_left (fun acc (_, d) -> acc +$ d) 0 parts in
  decl b name [ k; total ] ();
  let _ =
    List.fold_left
      (fun off (src, d) ->
        push b
          (Kernel
             (kernel
                (Printf.sprintf "%s_cat%d" src off)
                [ loop "k2" (c 0) (c k); loop "dd" (c 0) (c d) ]
                [ store name [ i "k2"; i "dd" +% off ] (load src [ i "k2"; i "dd" ]) ]));
        off +$ d)
      0 parts
  in
  (name, total)

let msg ?(points = 4096) () =
  let b = fresh_builder () in
  let cin = base_cloud b ~points in
  (* first MSG level: SA4/5/6 share the sampled centroids *)
  let samp1 = furthest_sample b ~prefix:"msg1" ~np:points ~k:(sa "SA4").sa_k ~cin in
  let stage prefix name =
    sa_stage b ~prefix ~params:(sa name) ~np:points ~din:3 ~fin:cin ~cin
      ~samp:samp1 ()
  in
  let f4, c4, d4 = stage "sa4" "SA4" in
  let f5, _, d5 = stage "sa5" "SA5" in
  let f6, _, d6 = stage "sa6" "SA6" in
  let cat1, dcat1 =
    concat2d b ~name:"msg1_CAT" ~parts:[ (f4, d4); (f5, d5); (f6, d6) ] ~k:(sa "SA4").sa_k
  in
  (* second MSG level on the 512 centroids *)
  let np2 = (sa "SA4").sa_k in
  let samp2 = furthest_sample b ~prefix:"msg2" ~np:np2 ~k:(sa "SA7").sa_k ~cin:c4 in
  let stage2 prefix name =
    sa_stage b ~prefix ~params:(sa name) ~np:np2 ~din:dcat1 ~fin:cat1 ~cin:c4
      ~samp:samp2 ()
  in
  let f7, c7, d7 = stage2 "sa7" "SA7" in
  let f8, _, d8 = stage2 "sa8" "SA8" in
  let f9, _, d9 = stage2 "sa9" "SA9" in
  let cat2, dcat2 =
    concat2d b ~name:"msg2_CAT" ~parts:[ (f7, d7); (f8, d8); (f9, d9) ] ~k:(sa "SA7").sa_k
  in
  let f3, _, d3 =
    sa_stage b ~prefix:"sa3m" ~params:(sa "SA3") ~np:(sa "SA7").sa_k ~din:dcat2
      ~fin:cat2 ~cin:c7 ()
  in
  let a1 = fc_layer b ~layer:1 ~din:d3 ~dout:512 ~src:f3 in
  let a2 = fc_layer b ~layer:2 ~din:512 ~dout:256 ~src:a1 in
  let a3 = fc_layer b ~layer:3 ~din:256 ~dout:10 ~src:a2 in
  finish b ~name:"pointnet/msg" ~check:[ a3 ]

let tiny () =
  let b = fresh_builder () in
  let points = 64 in
  let cin = base_cloud b ~points in
  let p1 = { sa_k = 8; sa_n = 4; sa_r = 0.5; sa_dims = [ 4; 4; 8 ] } in
  let p2 = { sa_k = 1; sa_n = 8; sa_r = infinity; sa_dims = [ 8; 8; 16 ] } in
  let f1, c1, d1 = sa_stage b ~prefix:"sa1" ~params:p1 ~np:points ~din:3 ~fin:cin ~cin () in
  let f2, _, d2 = sa_stage b ~prefix:"sa2" ~params:p2 ~np:p1.sa_k ~din:d1 ~fin:f1 ~cin:c1 () in
  let a1 = fc_layer b ~layer:1 ~din:d2 ~dout:8 ~src:f2 in
  finish b ~name:"pointnet/tiny" ~check:[ a1 ]

let stage_of_kernel name =
  let has sub =
    let ls = String.length sub and ln = String.length name in
    let rec go k = k +$ ls <= ln && (String.sub name k ls = sub || go (k +$ 1)) in
    go 0
  in
  if has "_fps" then "Furthest Sample"
  else if has "_bq" then "Ball Query"
  else if has "_gather" then "Gather"
  else if has "_mlp" || has "_relu" then "MLP Layer"
  else if has "_agg" then "Aggregate"
  else if has "fc_" then "FC"
  else if has "_cat" then "Concat"
  else "Other"
