(** System and microarchitecture parameters (paper Table 2).

    The default configuration reproduces the paper's 64-core, 8x8-mesh,
    144MB-L3 system with 256x256 bit-serial compute SRAM arrays. All
    latencies are in core cycles at [freq_ghz]. *)

type t = {
  freq_ghz : float;
  cores : int;  (** 64 (8x8 tiles, one core + L3 bank per tile) *)
  mesh_x : int;
  mesh_y : int;
  issue_width : int;  (** OOO8 *)
  simd_fp32_lanes : int;  (** 512-bit AVX = 16 fp32 lanes *)
  fp_units : int;  (** FP ALU/SIMD units per core *)
  l1_kb : int;
  l2_kb : int;
  l2_hit_cycles : int;
  l3_hit_cycles : int;
  line_bytes : int;
  l3_banks : int;
  l3_ways : int;  (** 18 ways total *)
  compute_ways : int;  (** 16 reserved for in-memory compute *)
  arrays_per_way : int;  (** 16 8kB arrays *)
  sram_wordlines : int;
  sram_bitlines : int;
  htree_bytes_per_cycle : int;
      (** per bank: 64B per way's buffered H-tree x 16 compute ways *)
  l3_bank_bytes_per_cycle : int;  (** SRAM read/write bandwidth per bank *)
  noc_link_bytes : int;  (** 32B / cycle / link *)
  noc_router_cycles : int;  (** per-hop latency (5-stage router, 1-cy link) *)
  dram_gbps : float;  (** 25.6 GB/s aggregate *)
  mem_ctrls : int;
  sel3_streams : int;
  sel3_buffer_kb : int;  (** per-bank stream buffer (Table 2: 64kB) *)
  sel3_init_cycles : int;
  sel3_flops_per_cycle : float;
      (** near-memory compute throughput per bank: NSC coordinates a spare
          SIMD thread, one 512-bit op per bank per cycle (16 fp32 lanes) *)
  secore_fifo_kb : int;
  lot_regions : int;
  cmd_dispatch_cycles : int;  (** TCL3 per-command decode/broadcast *)
  jit_cycles_per_command : int;
      (** host-side JIT lowering cost per generated command (§4.2, after
          the 1000x software optimizations) *)
  jit_base_cycles : int;  (** fixed per-region JIT entry cost *)
  transpose_release_timer : int;  (** delayed release, 100k cycles *)
  imc_cycle_multiplier : float;
      (** substrate scaling of every bit-serial command's occupancy: 1.0
          for compute SRAM; ~4 for in-DRAM triple-row-activation sequences
          (§9's extension direction) *)
}

val default : t
(** Table 2 values. *)

val in_dram : t
(** An in-DRAM substrate sketch (§9): 16 channels of large, slow subarrays
    with 8x the bitline parallelism; same tDFG/JIT stack. *)

val big_arrays : t
(** A future-generation machine with 512x512 SRAM arrays at the same total
    capacity; exercises the fat binary's second schedule (portability). *)

val small : t
(** A scaled-down machine (4 banks, 4 arrays/bank) for fast unit tests. *)

(** {1 Derived quantities} *)

val compute_arrays_per_bank : t -> int
val total_compute_arrays : t -> int
val total_bitlines : t -> int
val dram_bytes_per_cycle : t -> float
val peak_simd_flops_per_cycle : t -> float
(** All cores together (Fig. 2's 1024 ops/cycle). *)

val peak_imc_ops_per_cycle : t -> dtype:Dtype.t -> op:Op.t -> float
(** Equation 1: banks * arrays * bitlines / op latency. *)

val bank_xy : t -> int -> int * int
(** Mesh coordinates of an L3 bank (row-major). *)

val hops : t -> int -> int -> int
(** Manhattan distance between two banks. *)

val avg_hops : t -> float
(** Mean hop count between uniformly random mesh endpoints. *)

val noc_links : t -> int
(** Directed link count of the mesh. *)

val bisection_bytes_per_cycle : t -> float

val cycles_to_us : t -> float -> float
