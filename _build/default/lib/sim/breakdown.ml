type t = {
  mutable dram : float;
  mutable jit : float;
  mutable move : float;
  mutable compute : float;
  mutable final_reduce : float;
  mutable mix : float;
  mutable near_mem : float;
  mutable core : float;
}

let zero () =
  {
    dram = 0.0;
    jit = 0.0;
    move = 0.0;
    compute = 0.0;
    final_reduce = 0.0;
    mix = 0.0;
    near_mem = 0.0;
    core = 0.0;
  }

let total t =
  t.dram +. t.jit +. t.move +. t.compute +. t.final_reduce +. t.mix
  +. t.near_mem +. t.core

let add a b =
  {
    dram = a.dram +. b.dram;
    jit = a.jit +. b.jit;
    move = a.move +. b.move;
    compute = a.compute +. b.compute;
    final_reduce = a.final_reduce +. b.final_reduce;
    mix = a.mix +. b.mix;
    near_mem = a.near_mem +. b.near_mem;
    core = a.core +. b.core;
  }

let accumulate ~dst b =
  dst.dram <- dst.dram +. b.dram;
  dst.jit <- dst.jit +. b.jit;
  dst.move <- dst.move +. b.move;
  dst.compute <- dst.compute +. b.compute;
  dst.final_reduce <- dst.final_reduce +. b.final_reduce;
  dst.mix <- dst.mix +. b.mix;
  dst.near_mem <- dst.near_mem +. b.near_mem;
  dst.core <- dst.core +. b.core

let scale t k =
  {
    dram = t.dram *. k;
    jit = t.jit *. k;
    move = t.move *. k;
    compute = t.compute *. k;
    final_reduce = t.final_reduce *. k;
    mix = t.mix *. k;
    near_mem = t.near_mem *. k;
    core = t.core *. k;
  }

let to_assoc t =
  [
    ("DRAM", t.dram);
    ("JIT Lower", t.jit);
    ("Move", t.move);
    ("Compute", t.compute);
    ("Final Reduce", t.final_reduce);
    ("Mix", t.mix);
    ("Near-Mem", t.near_mem);
    ("Core", t.core);
  ]

let pp ppf t =
  Format.fprintf ppf "@[<h>";
  List.iter
    (fun (k, v) -> if v > 0.0 then Format.fprintf ppf "%s=%.3e " k v)
    (to_assoc t);
  Format.fprintf ppf "total=%.3e@]" (total t)
