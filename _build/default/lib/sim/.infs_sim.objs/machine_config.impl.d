lib/sim/machine_config.ml: Bitserial
