lib/sim/traffic.mli: Format Machine_config
