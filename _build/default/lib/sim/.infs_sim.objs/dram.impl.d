lib/sim/dram.ml: Bitserial Float Machine_config
