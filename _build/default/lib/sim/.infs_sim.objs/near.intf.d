lib/sim/near.mli: Machine_config Traffic Workset
