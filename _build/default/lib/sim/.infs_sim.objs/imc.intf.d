lib/sim/imc.mli: Command Machine_config Traffic
