lib/sim/workset.ml: Float Kernel_info List
