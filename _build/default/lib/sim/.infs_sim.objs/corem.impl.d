lib/sim/corem.ml: Dram Float List Machine_config Traffic Workset
