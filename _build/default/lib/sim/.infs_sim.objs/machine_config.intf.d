lib/sim/machine_config.mli: Dtype Op
