lib/sim/traffic.ml: Float Format List Machine_config
