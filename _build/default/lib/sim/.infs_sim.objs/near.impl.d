lib/sim/near.ml: Dram Float List Machine_config Traffic Workset
