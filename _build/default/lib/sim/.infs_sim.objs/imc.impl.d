lib/sim/imc.ml: Array Command Dtype Float Hashtbl List Machine_config Traffic
