lib/sim/breakdown.ml: Format List
