lib/sim/workset.mli: Kernel_info
