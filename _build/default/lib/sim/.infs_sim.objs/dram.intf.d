lib/sim/dram.mli: Machine_config
