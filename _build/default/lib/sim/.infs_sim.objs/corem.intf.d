lib/sim/corem.mli: Machine_config Traffic Workset
