(** Cycle breakdown by activity (paper Fig. 14 / Fig. 16).

    Categories: DRAM transfer+transpose, JIT lowering, tensor movement
    (intra-/inter-tile shifts and broadcasts), bit-serial compute, the
    near-memory final reduction of in-memory partials, hybrid in-/near-
    memory phases, pure near-memory stream execution, and in-core
    execution. Phases are modeled as sequential (commands are synchronous
    at L3 banks), so the total is the sum. *)

type t = {
  mutable dram : float;
  mutable jit : float;
  mutable move : float;
  mutable compute : float;
  mutable final_reduce : float;
  mutable mix : float;
  mutable near_mem : float;
  mutable core : float;
}

val zero : unit -> t
val total : t -> float
val add : t -> t -> t
val accumulate : dst:t -> t -> unit
val scale : t -> float -> t

val to_assoc : t -> (string * float) list
(** Label/value pairs in the paper's plotting order. *)

val pp : Format.formatter -> t -> unit
