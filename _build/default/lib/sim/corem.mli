(** In-core (baseline) execution model: OOO cores with AVX-512 SIMD and
    OpenMP-style threading (paper's [Base] configuration).

    Kernels run at the minimum of compute throughput and memory bandwidth.
    Every distinct byte of the working set crosses the NoC between L3 banks
    and cores ([Data] traffic plus per-line [Control] messages); streams
    whose distinct region fits in the private L2s are served from them after
    the first touch. Cold data additionally pays DRAM bandwidth. *)

type result = {
  cycles : float;
  dram_cycles : float;
}

val run :
  Machine_config.t ->
  Traffic.t ->
  Workset.t ->
  threads:int ->
  cold_bytes:float ->
  first_invocation:bool ->
  result
(** [threads] is 1 or the core count (Fig. 2's Base-Thread-1 / -64).
    OpenMP overhead: a full fork/join is charged on a kernel's first
    invocation; host-loop re-executions of the same parallel region only
    pay a barrier (real code keeps the parallel region outside the loop). *)

val omp_fork_cycles : float
(** Fork/join charged on the first launch of a parallel region. *)

val omp_barrier_cycles : float
(** Per-iteration synchronization of a persistent parallel region. *)
