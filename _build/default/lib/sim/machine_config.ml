type t = {
  freq_ghz : float;
  cores : int;
  mesh_x : int;
  mesh_y : int;
  issue_width : int;
  simd_fp32_lanes : int;
  fp_units : int;
  l1_kb : int;
  l2_kb : int;
  l2_hit_cycles : int;
  l3_hit_cycles : int;
  line_bytes : int;
  l3_banks : int;
  l3_ways : int;
  compute_ways : int;
  arrays_per_way : int;
  sram_wordlines : int;
  sram_bitlines : int;
  htree_bytes_per_cycle : int;
  l3_bank_bytes_per_cycle : int;
  noc_link_bytes : int;
  noc_router_cycles : int;
  dram_gbps : float;
  mem_ctrls : int;
  sel3_streams : int;
  sel3_buffer_kb : int;
  sel3_init_cycles : int;
  sel3_flops_per_cycle : float;
  secore_fifo_kb : int;
  lot_regions : int;
  cmd_dispatch_cycles : int;
  jit_cycles_per_command : int;
  jit_base_cycles : int;
  transpose_release_timer : int;
  imc_cycle_multiplier : float;
}

let default =
  {
    freq_ghz = 2.0;
    cores = 64;
    mesh_x = 8;
    mesh_y = 8;
    issue_width = 8;
    simd_fp32_lanes = 16;
    fp_units = 4;
    l1_kb = 32;
    l2_kb = 256;
    l2_hit_cycles = 16;
    l3_hit_cycles = 20;
    line_bytes = 64;
    l3_banks = 64;
    l3_ways = 18;
    compute_ways = 16;
    arrays_per_way = 16;
    sram_wordlines = 256;
    sram_bitlines = 256;
    htree_bytes_per_cycle = 1024;
    l3_bank_bytes_per_cycle = 64;
    noc_link_bytes = 32;
    noc_router_cycles = 3;
    dram_gbps = 25.6;
    mem_ctrls = 16;
    sel3_streams = 768;
    sel3_buffer_kb = 64;
    sel3_init_cycles = 4;
    sel3_flops_per_cycle = 16.0;
    secore_fifo_kb = 2;
    lot_regions = 16;
    cmd_dispatch_cycles = 8;
    jit_cycles_per_command = 60;
    jit_base_cycles = 4000;
    transpose_release_timer = 100_000;
    imc_cycle_multiplier = 1.0;
  }

(* A future-generation machine with 512x512 compute arrays (32kB each):
   the same fat binary runs here through its second pre-scheduled geometry
   (the paper's portability claim). Capacity is kept at 144MB. *)
let big_arrays =
  {
    default with
    arrays_per_way = 4;
    sram_wordlines = 512;
    sram_bitlines = 512;
  }

(* An in-DRAM sketch (paper §9: "the JIT runtime can be extended for
   in-DRAM computing, e.g. triple-row activation"). The tDFG, compiler and
   runtime are unchanged — only the substrate parameters move: 16 channels
   of many large subarrays (8x the bitlines), bit-serial steps built from
   Ambit-style AAP sequences (~4x slower per bit), a narrower on-chip path
   to the subarrays, and no conventional-cache reservation. *)
let in_dram =
  {
    default with
    l3_banks = 16;
    l3_ways = 64;
    compute_ways = 64;
    arrays_per_way = 32;
    sram_bitlines = 1024;
    htree_bytes_per_cycle = 256;
    l3_bank_bytes_per_cycle = 32;
    cmd_dispatch_cycles = 24;
    imc_cycle_multiplier = 4.0;
  }

let small =
  {
    default with
    cores = 4;
    mesh_x = 2;
    mesh_y = 2;
    l3_banks = 4;
    compute_ways = 2;
    arrays_per_way = 2;
    sel3_streams = 48;
  }

let compute_arrays_per_bank t = t.compute_ways * t.arrays_per_way
let total_compute_arrays t = t.l3_banks * compute_arrays_per_bank t
let total_bitlines t = total_compute_arrays t * t.sram_bitlines
let dram_bytes_per_cycle t = t.dram_gbps /. t.freq_ghz
let peak_simd_flops_per_cycle t = float_of_int (t.cores * t.simd_fp32_lanes)

let peak_imc_ops_per_cycle t ~dtype ~op =
  float_of_int (total_bitlines t) /. float_of_int (Bitserial.op_cycles op dtype)

let bank_xy t b = (b mod t.mesh_x, b / t.mesh_x)

let hops t a b =
  let xa, ya = bank_xy t a and xb, yb = bank_xy t b in
  abs (xa - xb) + abs (ya - yb)

let avg_hops t =
  (* mean |Δ| of two uniform draws over n points is (n^2-1)/(3n) *)
  let mean_1d n = float_of_int ((n * n) - 1) /. (3.0 *. float_of_int n) in
  mean_1d t.mesh_x +. mean_1d t.mesh_y

let noc_links t =
  2 * (((t.mesh_x - 1) * t.mesh_y) + (t.mesh_x * (t.mesh_y - 1)))

let bisection_bytes_per_cycle t =
  float_of_int (t.mesh_x * t.noc_link_bytes)

let cycles_to_us t cycles = cycles /. (t.freq_ghz *. 1000.0)
