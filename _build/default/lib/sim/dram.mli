(** DRAM channel and tensor-transpose-unit (TTU) timing. *)

val load_cycles : Machine_config.t -> bytes:float -> float
(** Bandwidth-limited bulk transfer over all memory controllers. *)

val transpose_cycles : Machine_config.t -> bytes:float -> float
(** TTU occupancy to convert [bytes] between normal and transposed layout;
    all banks transpose their resident lines in parallel, pipelined with the
    fill (callers take [max] with the DRAM time, paper §5.2). *)

val fill_transposed_cycles : Machine_config.t -> bytes:float -> resident:bool -> float
(** Cycles to prepare [bytes] of data in transposed layout: a DRAM fetch
    (unless already [resident] in L3) overlapped with TTU transposition. *)
