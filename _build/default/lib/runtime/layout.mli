(** Transposed data layout selection (paper §4.1).

    The runtime tiles the region's lattice across SRAM arrays. A tile is the
    set of lattice cells mapped to one array's bitlines. Constraints:

    + the tile volume equals the array's bitline count;
    + the contiguous (innermost) dimension's per-bank element count aligns
      with the cache line, so a transposed line maps to exactly one L3 bank;
    + the tiles a region instance touches fit in the compute arrays
      (checked per invocation by the engine; otherwise in-memory computing
      is disabled — paper §6 limitation 2).

    Among valid tiles the heuristic prioritizes reduction (large tile along
    the reduced dimension), then shifts (close-to-square tiles), then
    broadcasts (small innermost tile to spread source rows across banks);
    the paper reports this lands within 2% of an oracle. *)

type t = {
  tile : int array;  (** elements per tile, per lattice dimension *)
  grid : int array;  (** tiles per lattice dimension *)
  shape : int array;  (** the lattice shape being tiled *)
  tiles_total : int;
}

val candidates :
  Machine_config.t -> shape:int array -> elems_per_line:int -> t list
(** All power-of-two tilings meeting the constraints, in deterministic
    order. Empty when the region cannot be transposed. *)

val choose :
  Machine_config.t ->
  hints:Fat_binary.hints ->
  shape:int array ->
  elems_per_line:int ->
  (t, string) result
(** Heuristic pick among {!candidates}. *)

val score : Machine_config.t -> hints:Fat_binary.hints -> t -> float
(** The heuristic's scoring function (exposed for the oracle sweep in the
    Fig. 16/17 benches; higher is better). *)

val of_tile :
  Machine_config.t -> shape:int array -> tile:int array -> (t, string) result
(** Build a layout from an explicit tile size (bench sweeps), checking the
    constraints. *)

val imc_view : t -> Imc.layout_view

val to_string : t -> string
