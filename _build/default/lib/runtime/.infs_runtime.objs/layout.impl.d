lib/runtime/layout.ml: Array Fat_binary Float Fun Imc List Machine_config Printf String
