lib/runtime/decision.mli: Dtype Machine_config Op
