lib/runtime/decision.ml: Bitserial Float List Machine_config
