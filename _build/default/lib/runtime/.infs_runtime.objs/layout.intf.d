lib/runtime/layout.mli: Fat_binary Imc Machine_config
