lib/runtime/jit.ml: Array Command Hashtbl Hyperrect Layout List Machine_config Op Pattern Printf Schedule String Symrect Tdfg
