lib/runtime/jit.mli: Command Layout Machine_config Schedule Tdfg
