type t = {
  tile : int array;
  grid : int array;
  shape : int array;
  tiles_total : int;
}

let ceil_div a b = (a + b - 1) / b

let build cfg ~shape ~tile =
  let n = Array.length shape in
  if Array.length tile <> n then Error "tile rank mismatch"
  else begin
    let bitlines = cfg.Machine_config.sram_bitlines in
    let vol = Array.fold_left ( * ) 1 tile in
    if vol <> bitlines then
      Error (Printf.sprintf "tile volume %d != %d bitlines" vol bitlines)
    else begin
      let grid = Array.init n (fun d -> max 1 (ceil_div shape.(d) tile.(d))) in
      let tiles_total = Array.fold_left ( * ) 1 grid in
      (* The grid may exceed the physical array count: only the tiles a
         region instance actually touches must be resident (the engine
         checks that per invocation, paper §6 limitation 2). *)
      Ok { tile; grid; shape; tiles_total }
    end
  end

(* Constraint 2: contiguous-dimension elements per bank align with the
   cache line. The innermost lattice dimension is the contiguous one. *)
let line_constraint cfg ~tile ~elems_per_line =
  let n = Array.length tile in
  if n = 0 then true
  else begin
    let t_contig = tile.(n - 1) in
    let w = Machine_config.compute_arrays_per_bank cfg in
    t_contig * w mod elems_per_line = 0
  end

let pow2_factorizations total n =
  (* all n-tuples of powers of two whose product is [total] *)
  let rec go n total =
    if n = 1 then [ [ total ] ]
    else begin
      let rec firsts f acc = if f > total then acc else firsts (f * 2) (f :: acc) in
      let fs = firsts 1 [] in
      List.concat_map
        (fun f -> if total mod f = 0 then List.map (fun r -> f :: r) (go (n - 1) (total / f)) else [])
        fs
    end
  in
  List.map Array.of_list (go n total)

let candidates cfg ~shape ~elems_per_line =
  let n = Array.length shape in
  if n = 0 then []
  else
    pow2_factorizations cfg.Machine_config.sram_bitlines n
    |> List.filter (fun tile -> line_constraint cfg ~tile ~elems_per_line)
    |> List.filter_map (fun tile ->
           match build cfg ~shape ~tile with Ok l -> Some l | Error _ -> None)
    |> List.sort (fun a b -> compare a.tile b.tile)

let log2f x = log (Float.max 1.0 x) /. log 2.0

let score _cfg ~(hints : Fat_binary.hints) l =
  let n = Array.length l.tile in
  let tile_f d = float_of_int l.tile.(d) in
  let eff d = Float.min (tile_f d) (float_of_int (max 1 l.shape.(d))) in
  let s = ref 0.0 in
  (* Reduction: the larger the tile along the reduced dimension, the more
     rounds complete in-memory (highest priority). *)
  List.iter
    (fun d -> if d < n then s := !s +. (4.0 *. log2f (eff d)))
    hints.reduce_dims;
  (* Shifts: prefer balanced tiles — penalize aspect-ratio skew across the
     shifted dimensions (and overall). *)
  if hints.shift_dims <> [] then begin
    let dims = List.filter (fun d -> d < n) hints.shift_dims in
    let dims = if List.length dims >= 2 then dims else List.init n Fun.id in
    let mx = List.fold_left (fun acc d -> Float.max acc (tile_f d)) 1.0 dims in
    let mn = List.fold_left (fun acc d -> Float.min acc (tile_f d)) mx dims in
    s := !s -. (2.0 *. log2f (mx /. mn))
  end;
  (* Broadcast: a smaller innermost tile spreads a source row over more
     L3 banks, avoiding the hotspot — but a 1-wide tile wastes the H-tree,
     so the sweet spot sits around 8 elements. *)
  if hints.bc_dims <> [] && n > 0 then
    s := !s -. Float.abs (log2f (tile_f (n - 1)) -. 3.0);
  (* Mild preference against degenerate single-element dimensions. *)
  Array.iter (fun td -> if td = 1 then s := !s -. 0.25) l.tile;
  !s

let choose cfg ~hints ~shape ~elems_per_line =
  match candidates cfg ~shape ~elems_per_line with
  | [] -> Error "no valid tile size: in-memory computing disabled"
  | cands ->
    let best =
      List.fold_left
        (fun (bl, bs) l ->
          let sc = score cfg ~hints l in
          if sc > bs then (l, sc) else (bl, bs))
        (List.hd cands, score cfg ~hints (List.hd cands))
        (List.tl cands)
    in
    Ok (fst best)

let of_tile cfg ~shape ~tile = build cfg ~shape ~tile

let imc_view l = { Imc.grid = l.grid; tile = l.tile }

let to_string l =
  Printf.sprintf "tile=%s grid=%s (%d tiles)"
    (String.concat "x" (Array.to_list (Array.map string_of_int l.tile)))
    (String.concat "x" (Array.to_list (Array.map string_of_int l.grid)))
    l.tiles_total
