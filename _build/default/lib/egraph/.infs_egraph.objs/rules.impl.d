lib/egraph/rules.ml: Egraph List Op Option Symaff Symrect Tdfg
