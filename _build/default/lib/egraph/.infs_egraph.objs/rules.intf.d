lib/egraph/rules.mli: Egraph Symaff
