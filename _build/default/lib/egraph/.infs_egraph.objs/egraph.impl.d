lib/egraph/egraph.ml: Array Hashtbl List Op Printf Symaff Symrect Tdfg
