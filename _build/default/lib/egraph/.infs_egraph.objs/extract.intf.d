lib/egraph/extract.mli: Dtype Egraph Symaff Tdfg
