lib/egraph/egraph.mli: Op Symaff Symrect Tdfg
