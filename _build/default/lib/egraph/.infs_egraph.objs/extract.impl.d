lib/egraph/extract.ml: Bitserial Dtype Egraph Float Hashtbl List Rules Symaff Symrect Tdfg
