open Egraph

type rule = { rname : string; apply : Egraph.t -> (eid * eid) list }

(* Snapshot of (class, node) pairs; rules match against this and return
   unions, so growing the graph mid-rule cannot invalidate iteration. *)
let snapshot g =
  List.concat_map (fun c -> List.map (fun n -> (c, n)) (nodes_of g c)) (classes g)

let is_infinite g id =
  match domain_of g id with Tdfg.Infinite -> true | Tdfg.Finite _ -> false

let finite_dom g id =
  match domain_of g id with Tdfg.Infinite -> None | Tdfg.Finite r -> Some r

(* Guarded add: rewrites can produce nodes whose domain analysis fails
   (incomparable symbolic intersections); those candidates are dropped. *)
let try_add g n = try Some (add g n) with Failure _ -> None

let mvs_of g cls =
  List.filter_map
    (function E_mv { input; dim; dist } -> Some (input, dim, dist) | _ -> None)
    (nodes_of g cls)

let bcs_of g cls =
  List.filter_map
    (function E_bc { input; dim; lo; hi } -> Some (input, dim, lo, hi) | _ -> None)
    (nodes_of g cls)

let shrinks_of g cls =
  List.filter_map
    (function E_shrink { input; rect } -> Some (input, rect) | _ -> None)
    (nodes_of g cls)

(* Eq. 3b: commutativity. *)
let rule_comm =
  {
    rname = "comm";
    apply =
      (fun g ->
        List.filter_map
          (function
            | cls, E_cmp (op, [ a; b ]) when Op.is_commutative op ->
              Option.map (fun n -> (cls, n)) (try_add g (E_cmp (op, [ b; a ])))
            | _ -> None)
          (snapshot g));
  }

(* Eq. 3a: associativity. *)
let rule_assoc =
  {
    rname = "assoc";
    apply =
      (fun g ->
        List.concat_map
          (function
            | cls, E_cmp (op, [ ab; c ]) when Op.is_associative op ->
              List.filter_map
                (function
                  | E_cmp (op', [ a; b ]) when Op.equal op op' -> (
                    match try_add g (E_cmp (op, [ b; c ])) with
                    | None -> None
                    | Some bc ->
                      Option.map (fun n -> (cls, n)) (try_add g (E_cmp (op, [ a; bc ]))))
                  | _ -> None)
                (nodes_of g ab)
            | _ -> [])
          (snapshot g));
  }

(* Eq. 3c: factor a common constant multiplier: a*k + b*k => (a+b)*k. *)
let rule_factor =
  {
    rname = "factor";
    apply =
      (fun g ->
        let const_muls cls =
          List.filter_map
            (function
              | E_cmp (m, [ x; k ]) when Op.equal m Op.Mul && is_infinite g k ->
                Some (x, k)
              | _ -> None)
            (nodes_of g cls)
        in
        List.concat_map
          (function
            | cls, E_cmp (f, [ x; y ]) when Op.equal f Op.Add || Op.equal f Op.Sub ->
              List.concat_map
                (fun (a, ka) ->
                  List.filter_map
                    (fun (b, kb) ->
                      if find g ka <> find g kb then None
                      else
                        match try_add g (E_cmp (f, [ a; b ])) with
                        | None -> None
                        | Some sum ->
                          Option.map
                            (fun n -> (cls, n))
                            (try_add g (E_cmp (Op.Mul, [ sum; ka ]))))
                    (const_muls y))
                (const_muls x)
            | _ -> [])
          (snapshot g));
  }

(* mv identities: distance 0; mv/bc of an infinite-domain constant; chained
   mvs on the same dimension fuse. *)
let rule_mv_simplify =
  {
    rname = "mv-simplify";
    apply =
      (fun g ->
        List.concat_map
          (function
            | cls, E_mv { input; dist = 0; _ } -> [ (cls, input) ]
            | cls, E_mv { input; dim; dist } ->
              if is_infinite g input then [ (cls, input) ]
              else
                List.filter_map
                  (fun (inner, dim2, dist2) ->
                    if dim = dim2 then
                      Option.map
                        (fun n -> (cls, n))
                        (try_add g (E_mv { input = inner; dim; dist = dist + dist2 }))
                    else None)
                  (mvs_of g input)
            | cls, E_bc { input; _ } when is_infinite g input -> [ (cls, input) ]
            | _ -> [])
          (snapshot g));
  }

(* Eq. 4a: hoist a common mv out of a compute node — every finite operand is
   moved by the same (dim, dist); constants pass through unchanged. *)
let rule_hoist_mv =
  {
    rname = "hoist-mv";
    apply =
      (fun g ->
        List.filter_map
          (function
            | cls, E_cmp (op, inputs) -> begin
              let finite = List.filter (fun i -> not (is_infinite g i)) inputs in
              match finite with
              | [] -> None
              | f0 :: _ -> (
                match mvs_of g f0 with
                | [] -> None
                | (_, dim, dist) :: _ when dist <> 0 -> begin
                  (* each finite input must contain a mv by (dim, dist) *)
                  let unmoved =
                    List.map
                      (fun i ->
                        if is_infinite g i then Some i
                        else
                          List.find_map
                            (fun (src, d2, ds2) ->
                              if d2 = dim && ds2 = dist then Some src else None)
                            (mvs_of g i))
                      inputs
                  in
                  if List.exists Option.is_none unmoved then None
                  else
                    let unmoved = List.map Option.get unmoved in
                    match try_add g (E_cmp (op, unmoved)) with
                    | None -> None
                    | Some inner ->
                      Option.map
                        (fun n -> (cls, n))
                        (try_add g (E_mv { input = inner; dim; dist }))
                end
                | _ -> None)
            end
            | _ -> None)
          (snapshot g));
  }

(* Eq. 4a reversed: sink a mv below a compute node. *)
let rule_sink_mv =
  {
    rname = "sink-mv";
    apply =
      (fun g ->
        List.concat_map
          (function
            | cls, E_mv { input; dim; dist } ->
              List.filter_map
                (function
                  | E_cmp (op, inputs) ->
                    let moved =
                      List.map
                        (fun i ->
                          if is_infinite g i then Some i
                          else try_add g (E_mv { input = i; dim; dist }))
                        inputs
                    in
                    if List.exists Option.is_none moved then None
                    else
                      Option.map
                        (fun n -> (cls, n))
                        (try_add g (E_cmp (op, List.map Option.get moved)))
                  | _ -> None)
                (nodes_of g input)
            | _ -> [])
          (snapshot g));
  }

(* Eq. 4b: hoist a common bc out of a compute node. *)
let rule_hoist_bc =
  {
    rname = "hoist-bc";
    apply =
      (fun g ->
        List.filter_map
          (function
            | cls, E_cmp (op, inputs) -> begin
              let finite = List.filter (fun i -> not (is_infinite g i)) inputs in
              match finite with
              | [] -> None
              | f0 :: _ -> (
                match bcs_of g f0 with
                | [] -> None
                | (_, dim, lo, hi) :: _ -> begin
                  let unbc =
                    List.map
                      (fun i ->
                        if is_infinite g i then Some i
                        else
                          List.find_map
                            (fun (src, d2, lo2, hi2) ->
                              if d2 = dim && Symaff.equal lo lo2 && Symaff.equal hi hi2
                              then Some src
                              else None)
                            (bcs_of g i))
                      inputs
                  in
                  if List.exists Option.is_none unbc then None
                  else
                    let unbc = List.map Option.get unbc in
                    match try_add g (E_cmp (op, unbc)) with
                    | None -> None
                    | Some inner ->
                      Option.map
                        (fun n -> (cls, n))
                        (try_add g (E_bc { input = inner; dim; lo; hi }))
                end)
            end
            | _ -> None)
          (snapshot g));
  }

(* Eq. 5: expand a tensor view to the whole array behind a shrink. *)
let rule_expand_tensor ~arrays =
  {
    rname = "expand-tensor";
    apply =
      (fun g ->
        List.filter_map
          (function
            | cls, E_tensor { array; view; axes } -> begin
              match List.assoc_opt array arrays with
              | None -> None
              | Some extents ->
                let full =
                  List.fold_left
                    (fun acc (j, ext) ->
                      let dim = List.nth axes j in
                      Symrect.with_range acc ~dim ~lo:Symaff.zero ~hi:ext)
                    view
                    (List.mapi (fun j e -> (j, e)) extents)
                in
                if Symrect.equal full view then None
                else begin
                  match try_add g (E_tensor { array; view = full; axes }) with
                  | None -> None
                  | Some big ->
                    Option.map
                      (fun n -> (cls, n))
                      (try_add g (E_shrink { input = big; rect = view }))
                end
            end
            | _ -> None)
          (snapshot g));
  }

(* Eq. 6b: nested shrinks collapse (inner domain already contains outer). *)
let rule_shrink_shrink =
  {
    rname = "shrink-shrink";
    apply =
      (fun g ->
        List.concat_map
          (function
            | cls, E_shrink { input; rect } ->
              List.filter_map
                (fun (inner, rect2) ->
                  if Symrect.contains rect2 rect then
                    Option.map
                      (fun n -> (cls, n))
                      (try_add g (E_shrink { input = inner; rect }))
                  else None)
                (shrinks_of g input)
            | _ -> [])
          (snapshot g));
  }

let rule_shrink_identity =
  {
    rname = "shrink-identity";
    apply =
      (fun g ->
        List.filter_map
          (function
            | cls, E_shrink { input; rect } -> (
              match finite_dom g input with
              | Some d when Symrect.equal d rect -> Some (cls, input)
              | _ -> None)
            | _ -> None)
          (snapshot g));
  }

(* Eq. 7a/7b: commute shrink with mv (shrink window shifts along). *)
let rule_shrink_mv =
  {
    rname = "shrink-mv";
    apply =
      (fun g ->
        List.concat_map
          (function
            | cls, E_mv { input; dim; dist } ->
              (* mv(shrink(r, A)) => shrink(shift r, mv(A)) *)
              List.filter_map
                (fun (src, r) ->
                  match try_add g (E_mv { input = src; dim; dist }) with
                  | None -> None
                  | Some moved ->
                    Option.map
                      (fun n -> (cls, n))
                      (try_add g
                         (E_shrink { input = moved; rect = Symrect.shift r ~dim ~dist })))
                (shrinks_of g input)
            | cls, E_shrink { input; rect } ->
              (* shrink(r, mv(A)) => mv(shrink(shift^-1 r, A)) *)
              List.filter_map
                (fun (src, dim, dist) ->
                  match finite_dom g src with
                  | Some d
                    when Symrect.contains d (Symrect.shift rect ~dim ~dist:(-dist)) -> begin
                    match
                      try_add g
                        (E_shrink
                           { input = src; rect = Symrect.shift rect ~dim ~dist:(-dist) })
                    with
                    | None -> None
                    | Some shrunk ->
                      Option.map
                        (fun n -> (cls, n))
                        (try_add g (E_mv { input = shrunk; dim; dist }))
                  end
                  | _ -> None)
                (mvs_of g input)
            | _ -> [])
          (snapshot g));
  }

(* Eq. 8b: shrink directly after a bc on the same dimension re-targets the
   broadcast. *)
let rule_shrink_bc =
  {
    rname = "shrink-bc";
    apply =
      (fun g ->
        List.concat_map
          (function
            | cls, E_shrink { input; rect } ->
              List.filter_map
                (fun (src, dim, _lo, _hi) ->
                  match finite_dom g input with
                  | Some bc_dom
                    when Symrect.equal
                           (Symrect.with_range bc_dom ~dim ~lo:(Symrect.lo rect dim)
                              ~hi:(Symrect.hi rect dim))
                           rect ->
                    (* rect only restricts the broadcast dimension *)
                    Option.map
                      (fun n -> (cls, n))
                      (try_add g
                         (E_bc
                            {
                              input = src;
                              dim;
                              lo = Symrect.lo rect dim;
                              hi = Symrect.hi rect dim;
                            }))
                  | _ -> None)
                (bcs_of g input)
            | _ -> [])
          (snapshot g));
  }

(* Eq. 9: commute shrink with compute (both directions). *)
let rule_shrink_cmp =
  {
    rname = "shrink-cmp";
    apply =
      (fun g ->
        List.concat_map
          (function
            | cls, E_shrink { input; rect } ->
              (* shrink(r, cmp(f, xs)) => cmp(f, shrink(r, xs)) *)
              List.filter_map
                (function
                  | E_cmp (op, inputs) ->
                    let shrunk =
                      List.map
                        (fun i ->
                          if is_infinite g i then Some i
                          else try_add g (E_shrink { input = i; rect }))
                        inputs
                    in
                    if List.exists Option.is_none shrunk then None
                    else
                      Option.map
                        (fun n -> (cls, n))
                        (try_add g (E_cmp (op, List.map Option.get shrunk)))
                  | _ -> None)
                (nodes_of g input)
            | cls, E_cmp (op, inputs) -> begin
              (* cmp(f, shrink(r, xs)) => shrink(r, cmp(f, xs)) *)
              let finite = List.filter (fun i -> not (is_infinite g i)) inputs in
              match finite with
              | [] -> []
              | f0 :: _ ->
                List.filter_map
                  (fun (_, rect) ->
                    let unshrunk =
                      List.map
                        (fun i ->
                          if is_infinite g i then Some i
                          else
                            List.find_map
                              (fun (src, r2) ->
                                if Symrect.equal rect r2 then Some src else None)
                              (shrinks_of g i))
                        inputs
                    in
                    if List.exists Option.is_none unshrunk then None
                    else
                      match try_add g (E_cmp (op, List.map Option.get unshrunk)) with
                      | None -> None
                      | Some inner ->
                        Option.map
                          (fun n -> (cls, n))
                          (try_add g (E_shrink { input = inner; rect })))
                  (shrinks_of g f0)
            end
            | _ -> [])
          (snapshot g));
  }

let all_rules ~arrays =
  [
    rule_comm;
    rule_assoc;
    rule_factor;
    rule_mv_simplify;
    rule_hoist_mv;
    rule_sink_mv;
    rule_hoist_bc;
    rule_expand_tensor ~arrays;
    rule_shrink_shrink;
    rule_shrink_identity;
    rule_shrink_mv;
    rule_shrink_bc;
    rule_shrink_cmp;
  ]

let saturate ?(max_iters = 8) ?(node_limit = 20_000) ~arrays g =
  let rules = all_rules ~arrays in
  let rec go iter =
    if iter >= max_iters || node_count g > node_limit then iter
    else begin
      let changed = ref false in
      List.iter
        (fun r ->
          if node_count g <= node_limit then begin
            let unions = r.apply g in
            List.iter
              (fun (a, b) ->
                try if union g a b then changed := true
                with Failure _ -> ())
              unions;
            rebuild g
          end)
        rules;
      if !changed then go (iter + 1) else iter + 1
    end
  in
  go 0
