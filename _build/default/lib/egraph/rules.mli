(** tDFG rewrite rules (paper appendix, Eq. 3a–9) and the equality
    saturation driver.

    Each rule scans a snapshot of the e-graph and proposes unions; a
    saturation round applies every rule then rebuilds congruence. Rules
    preserve both value and lattice domain (enforced by {!Egraph.union}). *)

type rule = { rname : string; apply : Egraph.t -> (Egraph.eid * Egraph.eid) list }

val all_rules : arrays:(string * Symaff.t list) list -> rule list
(** The full rule set. [arrays] gives each array's symbolic extents, used by
    the tensor-expansion rule (Eq. 5) to widen views to the whole array. *)

val saturate :
  ?max_iters:int ->
  ?node_limit:int ->
  arrays:(string * Symaff.t list) list ->
  Egraph.t ->
  int
(** Run saturation rounds until a fixpoint, the iteration cap (default 8) or
    the node limit (default 20_000). Returns the number of rounds run. *)
