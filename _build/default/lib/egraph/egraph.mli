(** Equality graph for tDFG optimization (paper §3.2 "Optimizing tDFG" and
    the appendix).

    The e-graph compactly represents every discovered rewrite of a tDFG:
    equivalent nodes (same values {e and} same lattice domain) share an
    e-class. Rewrite rules grow the graph non-destructively; extraction then
    picks the cheapest representative (see {!Extract}).

    This is a from-scratch implementation of the hashcons + union-find +
    rebuild design of egg \[67\], specialized to tDFG operators. *)

type eid = int
(** E-class id (canonical after {!rebuild}). *)

type enode =
  | E_tensor of { array : string; view : Symrect.t; axes : int list }
  | E_const of Tdfg.const_value
  | E_cmp of Op.t * eid list
  | E_mv of { input : eid; dim : int; dist : int }
  | E_bc of { input : eid; dim : int; lo : Symaff.t; hi : Symaff.t }
  | E_shrink of { input : eid; rect : Symrect.t }
  | E_reduce of { op : Op.t; input : eid; dim : int }
  | E_stream of { array : string; view : Symrect.t; coords : Tdfg.coord list }

type t

val create : ?min_var:int -> dims:int -> unit -> t
(** [dims] is the lattice dimensionality (for domain analysis). *)

val add : t -> enode -> eid
(** Hashcons an e-node (children canonicalized); returns its e-class. *)

val find : t -> eid -> eid
(** Canonical representative. *)

val union : t -> eid -> eid -> bool
(** Merge two e-classes; true if they were distinct. Their domain analyses
    must agree ([Failure] otherwise — a rewrite that changes the domain is a
    bug). *)

val rebuild : t -> unit
(** Restore congruence closure after a batch of unions. *)

val classes : t -> eid list
(** Canonical class ids. *)

val nodes_of : t -> eid -> enode list
(** E-nodes of one class (children canonicalized). *)

val domain_of : t -> eid -> Tdfg.dom
(** Domain analysis value carried by the class. *)

val class_count : t -> int
val node_count : t -> int

val children : enode -> eid list

val map_children : (eid -> eid) -> enode -> enode

(** {1 Conversion from tDFG} *)

val of_tdfg : ?min_var:int -> Tdfg.t -> t * (Tdfg.id * eid) list
(** Load a tDFG; returns the graph and each tDFG node's e-class (outputs'
    sources are the roots to extract). *)
