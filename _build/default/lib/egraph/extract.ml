open Egraph

type opt_stats = { rounds : int; cost_before : float; cost_after : float }

let vol_estimate ~nominal dom =
  match dom with
  | Tdfg.Infinite -> 1.0
  | Tdfg.Finite r ->
    let env _ = nominal in
    let v = ref 1.0 in
    List.iter
      (fun (lo, hi) ->
        let e = Symaff.eval hi env - Symaff.eval lo env in
        v := !v *. float_of_int (max 1 e))
      (Symrect.ranges r);
    !v

(* Cost of an e-node, excluding children: bit-serial latency of the
   operation times the (estimated) number of elements it touches. The
   constants come straight from the Bitserial model so that mv is cheap
   relative to multiply, making compute-reuse rewrites profitable exactly
   when they save expensive ops. *)
let node_cost ~dtype ~nominal g n =
  let dom_vol id = vol_estimate ~nominal (domain_of g id) in
  match n with
  | E_tensor _ | E_const _ | E_stream _ -> 0.0
  | E_cmp (op, inputs) ->
    let out_vol =
      List.fold_left
        (fun acc i ->
          if acc > 0.0 then Float.min acc (dom_vol i)
          else dom_vol i)
        0.0
        (List.filter (fun i -> domain_of g i <> Tdfg.Infinite) inputs)
    in
    let out_vol = if out_vol = 0.0 then 1.0 else out_vol in
    float_of_int (Bitserial.op_cycles op dtype) *. out_vol
  | E_mv { input; dist; _ } ->
    float_of_int (Bitserial.intra_shift_cycles dtype ~distance:dist) *. dom_vol input
  | E_bc { input; dim = _; lo; hi } ->
    let env _ = nominal in
    let copies = max 1 (Symaff.eval hi env - Symaff.eval lo env) in
    2.0 *. float_of_int (Dtype.bits dtype) *. dom_vol input *. log (float_of_int copies +. 1.0)
  | E_shrink _ -> 0.0
  | E_reduce { op; input; _ } ->
    let rounds = 8.0 (* log2 of a typical tile extent *) in
    (float_of_int (Bitserial.op_cycles op dtype) +. float_of_int (Dtype.bits dtype))
    *. rounds
    *. sqrt (dom_vol input)

let infinity_cost = Float.max_float /. 4.0

(* Seed: per-class best representative by tree cost (fixpoint, cycle-safe). *)
let tree_seed ~dtype ~nominal g =
  let cls = classes g in
  let best : (eid, enode * float) Hashtbl.t = Hashtbl.create 64 in
  let cost_of_class c =
    match Hashtbl.find_opt best (find g c) with
    | Some (_, c) -> c
    | None -> infinity_cost
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun c ->
        List.iter
          (fun n ->
            let child_cost =
              List.fold_left (fun acc i -> acc +. cost_of_class i) 0.0 (children n)
            in
            if child_cost < infinity_cost then begin
              let total = node_cost ~dtype ~nominal g n +. child_cost in
              match Hashtbl.find_opt best c with
              | Some (_, old) when old <= total -> ()
              | _ ->
                Hashtbl.replace best c (n, total);
                changed := true
            end)
          (nodes_of g c))
      cls
  done;
  best

(* DAG cost of a choice function from the roots: each class counted once.
   Returns infinity on a cyclic choice. *)
let dag_cost_of_choice ~dtype ~nominal g choice roots =
  let visited : (eid, unit) Hashtbl.t = Hashtbl.create 64 in
  let in_progress : (eid, unit) Hashtbl.t = Hashtbl.create 64 in
  let total = ref 0.0 in
  let exception Cyclic in
  let rec go id =
    let id = find g id in
    if Hashtbl.mem visited id then ()
    else if Hashtbl.mem in_progress id then raise Cyclic
    else begin
      Hashtbl.replace in_progress id ();
      let n = choice id in
      List.iter go (children n);
      Hashtbl.remove in_progress id;
      Hashtbl.replace visited id ();
      total := !total +. node_cost ~dtype ~nominal g n
    end
  in
  try
    List.iter go roots;
    Some (!total, visited)
  with Cyclic -> None

let extract ?(nominal = 1024) ~dtype g ~roots =
  let roots = List.map (find g) roots in
  let best = tree_seed ~dtype ~nominal g in
  let choice_tbl : (eid, enode) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter (fun c (n, _) -> Hashtbl.replace choice_tbl c n) best;
  let choice id =
    match Hashtbl.find_opt choice_tbl (find g id) with
    | Some n -> n
    | None -> failwith "Extract: class without a representative"
  in
  let current_cost () =
    match dag_cost_of_choice ~dtype ~nominal g choice roots with
    | Some (c, _) -> c
    | None -> infinity_cost
  in
  (* Local search: switch one class's representative when it lowers the
     total shared-DAG cost. *)
  let improved = ref true in
  let passes = ref 0 in
  let base = ref (current_cost ()) in
  while !improved && !passes < 6 do
    improved := false;
    incr passes;
    (match dag_cost_of_choice ~dtype ~nominal g choice roots with
    | None -> ()
    | Some (_, visited) ->
      Hashtbl.iter
        (fun cls () ->
          let original = Hashtbl.find_opt choice_tbl cls in
          List.iter
            (fun cand ->
              match original with
              | Some o when o = cand -> ()
              | _ ->
                Hashtbl.replace choice_tbl cls cand;
                let c = current_cost () in
                if c +. 1e-9 < !base then begin
                  base := c;
                  improved := true
                end
                else
                  match original with
                  | Some o -> Hashtbl.replace choice_tbl cls o
                  | None -> Hashtbl.remove choice_tbl cls)
            (nodes_of g cls))
        visited);
    (* refresh `original` semantics between passes *)
    ()
  done;
  (choice, !base)

(* Rebuild a Tdfg from the extraction. *)
let rebuild g ~(source : Tdfg.t) ~choice ~mapping =
  let out = Tdfg.create ~name:(Tdfg.name source) ~dims:(Tdfg.lattice_dims source) ~dtype:(Tdfg.dtype source) in
  let built : (eid, Tdfg.id) Hashtbl.t = Hashtbl.create 64 in
  let rec emit id =
    let id = find g id in
    match Hashtbl.find_opt built id with
    | Some x -> x
    | None ->
      let n = choice id in
      let x =
        match n with
        | E_tensor { array; view; axes } -> Tdfg.tensor out ~array ~view ~axes
        | E_const c -> Tdfg.add out (Tdfg.Const c)
        | E_cmp (op, inputs) ->
          (* left-to-right to preserve low register pressure in the
             rebuilt schedule order *)
          let inputs = List.fold_left (fun acc i -> emit i :: acc) [] inputs in
          Tdfg.cmp out op (List.rev inputs)
        | E_mv { input; dim; dist } -> Tdfg.mv out (emit input) ~dim ~dist
        | E_bc { input; dim; lo; hi } -> Tdfg.bc out (emit input) ~dim ~lo ~hi
        | E_shrink { input; rect } -> Tdfg.shrink out (emit input) ~rect
        | E_reduce { op; input; dim } -> Tdfg.reduce out op (emit input) ~dim
        | E_stream { array; view; coords } ->
          Tdfg.add out (Tdfg.Stream_load { array; view; coords })
      in
      Hashtbl.replace built id x;
      x
  in
  let map_src src =
    match List.assoc_opt src mapping with
    | Some e -> emit e
    | None -> failwith "Extract.rebuild: output source not in mapping"
  in
  List.iter
    (fun o ->
      match o with
      | Tdfg.Out_tensor { src; array; axes } ->
        Tdfg.add_output out (Tdfg.Out_tensor { src = map_src src; array; axes })
      | Tdfg.Out_stream { src; array; coords; accum } ->
        Tdfg.add_output out (Tdfg.Out_stream { src = map_src src; array; coords; accum }))
    (Tdfg.outputs source);
  out

let optimize ?(nominal = 1024) ?max_iters ?node_limit ~arrays source =
  let dtype = Tdfg.dtype source in
  let g, mapping = of_tdfg source in
  let roots =
    List.map
      (fun o ->
        let src =
          match o with
          | Tdfg.Out_tensor { src; _ } | Tdfg.Out_stream { src; _ } -> src
        in
        List.assoc src mapping)
      (Tdfg.outputs source)
  in
  let _, cost_before = extract ~nominal ~dtype g ~roots in
  let rounds = Rules.saturate ?max_iters ?node_limit ~arrays g in
  let choice, cost_after = extract ~nominal ~dtype g ~roots in
  let optimized = rebuild g ~source ~choice ~mapping in
  (optimized, { rounds; cost_before; cost_after })

let dag_cost ?(nominal = 1024) g =
  let dtype = Tdfg.dtype g in
  let eg, mapping = of_tdfg g in
  let roots =
    List.map
      (fun o ->
        let src =
          match o with
          | Tdfg.Out_tensor { src; _ } | Tdfg.Out_stream { src; _ } -> src
        in
        List.assoc src mapping)
      (Tdfg.outputs g)
  in
  let choice, cost = extract ~nominal ~dtype eg ~roots in
  ignore choice;
  cost
