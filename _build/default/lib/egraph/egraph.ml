type eid = int

type enode =
  | E_tensor of { array : string; view : Symrect.t; axes : int list }
  | E_const of Tdfg.const_value
  | E_cmp of Op.t * eid list
  | E_mv of { input : eid; dim : int; dist : int }
  | E_bc of { input : eid; dim : int; lo : Symaff.t; hi : Symaff.t }
  | E_shrink of { input : eid; rect : Symrect.t }
  | E_reduce of { op : Op.t; input : eid; dim : int }
  | E_stream of { array : string; view : Symrect.t; coords : Tdfg.coord list }

type eclass = {
  mutable cnodes : enode list;
  mutable parents : (enode * eid) list;
  mutable dom : Tdfg.dom;
}

type t = {
  min_var : int;
  dims : int;
  mutable parent : int array; (* union-find *)
  mutable n : int;
  memo : (enode, eid) Hashtbl.t;
  data : (eid, eclass) Hashtbl.t;
  mutable worklist : eid list;
}

let create ?(min_var = 4) ~dims () =
  {
    min_var;
    dims;
    parent = Array.make 64 0;
    n = 0;
    memo = Hashtbl.create 128;
    data = Hashtbl.create 128;
    worklist = [];
  }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let children = function
  | E_tensor _ | E_const _ | E_stream _ -> []
  | E_cmp (_, inputs) -> inputs
  | E_mv { input; _ } | E_bc { input; _ } | E_shrink { input; _ }
  | E_reduce { input; _ } ->
    [ input ]

let map_children f = function
  | (E_tensor _ | E_const _ | E_stream _) as n -> n
  | E_cmp (op, inputs) -> E_cmp (op, List.map f inputs)
  | E_mv r -> E_mv { r with input = f r.input }
  | E_bc r -> E_bc { r with input = f r.input }
  | E_shrink r -> E_shrink { r with input = f r.input }
  | E_reduce r -> E_reduce { r with input = f r.input }

let canonicalize t n = map_children (find t) n

let dom_of_class t i = (Hashtbl.find t.data (find t i)).dom

(* Domain analysis mirroring Tdfg.domain, but over e-classes. *)
let node_dom t n =
  let min_var = t.min_var in
  match n with
  | E_tensor { view; _ } | E_stream { view; _ } -> Tdfg.Finite view
  | E_const _ -> Tdfg.Infinite
  | E_cmp (_, inputs) ->
    List.fold_left
      (fun acc i ->
        match (acc, dom_of_class t i) with
        | Tdfg.Infinite, d | d, Tdfg.Infinite -> d
        | Tdfg.Finite a, Tdfg.Finite b -> (
          match Symrect.intersect ~min_var a b with
          | Some r -> Tdfg.Finite r
          | None ->
            failwith
              (Printf.sprintf "Egraph: incomparable intersection %s vs %s"
                 (Symrect.to_string a) (Symrect.to_string b))))
      Tdfg.Infinite inputs
  | E_mv { input; dim; dist } -> (
    match dom_of_class t input with
    | Tdfg.Infinite -> Tdfg.Infinite
    | Tdfg.Finite r -> Tdfg.Finite (Symrect.shift r ~dim ~dist))
  | E_bc { input; dim; lo; hi } -> (
    match dom_of_class t input with
    | Tdfg.Infinite -> Tdfg.Infinite
    | Tdfg.Finite r -> Tdfg.Finite (Symrect.with_range r ~dim ~lo ~hi))
  | E_shrink { rect; _ } -> Tdfg.Finite rect
  | E_reduce { input; dim; _ } -> (
    match dom_of_class t input with
    | Tdfg.Infinite -> failwith "Egraph: reduce over infinite domain"
    | Tdfg.Finite r -> Tdfg.Finite (Symrect.collapse r ~dim))

let grow t =
  if t.n >= Array.length t.parent then begin
    let bigger = Array.make (2 * Array.length t.parent) 0 in
    Array.blit t.parent 0 bigger 0 t.n;
    t.parent <- bigger
  end

let add t n =
  let n = canonicalize t n in
  match Hashtbl.find_opt t.memo n with
  | Some id -> find t id
  | None ->
    let dom = node_dom t n in
    grow t;
    let id = t.n in
    t.n <- id + 1;
    t.parent.(id) <- id;
    Hashtbl.replace t.data id { cnodes = [ n ]; parents = []; dom };
    Hashtbl.replace t.memo n id;
    List.iter
      (fun child ->
        let c = Hashtbl.find t.data (find t child) in
        c.parents <- (n, id) :: c.parents)
      (children n);
    id

let dom_equal a b =
  match (a, b) with
  | Tdfg.Infinite, Tdfg.Infinite -> true
  | Tdfg.Finite x, Tdfg.Finite y -> Symrect.equal x y
  | Tdfg.Infinite, Tdfg.Finite _ | Tdfg.Finite _, Tdfg.Infinite -> false

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let ca = Hashtbl.find t.data ra and cb = Hashtbl.find t.data rb in
    if not (dom_equal ca.dom cb.dom) then
      failwith
        (Printf.sprintf "Egraph.union: domain mismatch (%s vs %s)"
           (match ca.dom with
           | Tdfg.Infinite -> "inf"
           | Tdfg.Finite r -> Symrect.to_string r)
           (match cb.dom with
           | Tdfg.Infinite -> "inf"
           | Tdfg.Finite r -> Symrect.to_string r));
    (* merge smaller into larger *)
    let keep, drop, ck, cd =
      if List.length ca.parents >= List.length cb.parents then (ra, rb, ca, cb)
      else (rb, ra, cb, ca)
    in
    t.parent.(drop) <- keep;
    ck.cnodes <- cd.cnodes @ ck.cnodes;
    ck.parents <- cd.parents @ ck.parents;
    Hashtbl.remove t.data drop;
    t.worklist <- keep :: t.worklist;
    true
  end

let rebuild t =
  let rec loop () =
    match t.worklist with
    | [] -> ()
    | _ ->
      let todo = List.sort_uniq compare (List.map (find t) t.worklist) in
      t.worklist <- [];
      List.iter
        (fun cls ->
          match Hashtbl.find_opt t.data (find t cls) with
          | None -> ()
          | Some c ->
            let parents = c.parents in
            c.parents <- [];
            let seen = Hashtbl.create 16 in
            List.iter
              (fun (pnode, pid) ->
                let canon = canonicalize t pnode in
                Hashtbl.remove t.memo pnode;
                (match Hashtbl.find_opt seen canon with
                 | Some other -> ignore (union t pid other)
                 | None -> Hashtbl.replace seen canon (find t pid));
                (match Hashtbl.find_opt t.memo canon with
                 | Some existing when find t existing <> find t pid ->
                   ignore (union t existing pid)
                 | _ -> ());
                Hashtbl.replace t.memo canon (find t pid))
              parents;
            (* store canonicalized parent list back on the root *)
            let root = Hashtbl.find t.data (find t cls) in
            Hashtbl.iter (fun pn pid -> root.parents <- (pn, pid) :: root.parents) seen;
            (* canonicalize the class's own nodes *)
            root.cnodes <-
              List.sort_uniq compare (List.map (canonicalize t) root.cnodes))
        todo;
      loop ()
  in
  loop ()

let classes t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.data [] |> List.sort compare

let nodes_of t id =
  let c = Hashtbl.find t.data (find t id) in
  List.sort_uniq compare (List.map (canonicalize t) c.cnodes)

let domain_of t id = (Hashtbl.find t.data (find t id)).dom

let class_count t = Hashtbl.length t.data

let node_count t =
  Hashtbl.fold (fun _ c acc -> acc + List.length c.cnodes) t.data 0

let of_tdfg ?min_var g =
  let t = create ?min_var ~dims:(Tdfg.lattice_dims g) () in
  let mapping = Hashtbl.create 32 in
  let map_id i = Hashtbl.find mapping i in
  List.iter
    (fun id ->
      let en =
        match Tdfg.kind g id with
        | Tdfg.Tensor { array; view; axes } -> E_tensor { array; view; axes }
        | Tdfg.Const c -> E_const c
        | Tdfg.Cmp { op; inputs } -> E_cmp (op, List.map map_id inputs)
        | Tdfg.Mv { input; dim; dist } -> E_mv { input = map_id input; dim; dist }
        | Tdfg.Bc { input; dim; lo; hi } -> E_bc { input = map_id input; dim; lo; hi }
        | Tdfg.Shrink { input; rect } -> E_shrink { input = map_id input; rect }
        | Tdfg.Reduce { op; input; dim } -> E_reduce { op; input = map_id input; dim }
        | Tdfg.Stream_load { array; view; coords } -> E_stream { array; view; coords }
      in
      Hashtbl.replace mapping id (add t en))
    (Tdfg.live_nodes g);
  (t, Hashtbl.fold (fun k v acc -> (k, v) :: acc) mapping [] |> List.sort compare)
