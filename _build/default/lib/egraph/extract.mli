(** Cost-based extraction of the optimal tDFG from a saturated e-graph.

    The cost model is architecture-informed (paper appendix: "estimated
    latency of move vs. compute node, the amount of moved/broadcast data,
    as well as the number of computations"): per-node cost is the bit-serial
    latency of the operation scaled by the node's domain volume, estimated
    by substituting a nominal value for every symbolic parameter.

    Extraction is DAG-aware: shared subgraphs are counted once (that is
    exactly what makes the compute-reuse rewrites profitable). A greedy
    tree-cost extraction seeds a local search that switches individual
    class representatives while the total DAG cost improves. *)

val node_cost : dtype:Dtype.t -> nominal:int -> Egraph.t -> Egraph.enode -> float
(** Cost of one e-node excluding its children. *)

val extract :
  ?nominal:int ->
  dtype:Dtype.t ->
  Egraph.t ->
  roots:Egraph.eid list ->
  (Egraph.eid -> Egraph.enode) * float
(** Choose a representative per live class; returns the choice function and
    the total DAG cost of the extraction reachable from [roots]. *)

type opt_stats = { rounds : int; cost_before : float; cost_after : float }

val optimize :
  ?nominal:int ->
  ?max_iters:int ->
  ?node_limit:int ->
  arrays:(string * Symaff.t list) list ->
  Tdfg.t ->
  Tdfg.t * opt_stats
(** Full driver: load the tDFG into an e-graph, saturate with
    {!Rules.all_rules}, extract, and rebuild an equivalent tDFG (same
    outputs). *)

val dag_cost : ?nominal:int -> Tdfg.t -> float
(** Cost of a concrete tDFG under the same model (for tests/benches). *)
