(** Symbolic hyperrectangles: tensor domains in the tDFG whose bounds are
    affine in runtime parameters (and enclosing host-loop variables).

    The compiled tDFG keeps domains symbolic for portability; the JIT
    resolves them to concrete {!Hyperrect.t} boxes against the runtime
    parameter environment. Comparisons between symbolic bounds are decided
    conservatively via {!Symaff.leq} under the assumption that every
    parameter is at least [min_var] (the paper embeds such "Hints: N > f(…)"
    in the configuration, Fig. 7). *)

type t

val make : (Symaff.t * Symaff.t) list -> t
(** Per-dimension [(lo, hi)] bounds, outermost dimension first. *)

val of_hyperrect : Hyperrect.t -> t

val dims : t -> int
val lo : t -> int -> Symaff.t
val hi : t -> int -> Symaff.t
val ranges : t -> (Symaff.t * Symaff.t) list

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val shift : t -> dim:int -> dist:int -> t
val with_range : t -> dim:int -> lo:Symaff.t -> hi:Symaff.t -> t
val collapse : t -> dim:int -> t
(** Reduce dimension [dim] to extent 1 anchored at its low bound. *)

val subst : t -> string -> Symaff.t -> t
(** Substitute a variable in every bound. *)

val intersect : ?min_var:int -> t -> t -> t option
(** Symbolic intersection. For each dimension the bounds must be
    {e comparable} under {!Symaff.leq}; returns [None] when incomparable or
    provably empty. The compiler only builds graphs whose intersections are
    comparable (tensors are explicitly aligned first). *)

val contains : ?min_var:int -> t -> t -> bool
(** [contains outer inner]: conservative, true only when provable. *)

val is_empty : ?min_var:int -> t -> bool
(** Provably empty in some dimension ([hi <= lo]). *)

val resolve : t -> (string -> int) -> Hyperrect.t
(** Concretize against an environment; [Invalid_argument] if a resolved
    bound pair is reversed. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
