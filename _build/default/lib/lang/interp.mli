(** Reference (golden-model) interpreter for mini-C programs.

    Executes a program sequentially with concrete parameter values and input
    arrays, with fp32 rounding after every arithmetic operation. Every
    simulated paradigm's functional result is checked against this. *)

type env

val create :
  Ast.program -> params:(string * int) list -> (env, string) result
(** Validates the program, resolves array extents, and zero-initializes all
    arrays. Fails when a parameter is missing or an extent is negative. *)

val set_array : env -> string -> float array -> unit
(** Provide input data (row-major). [Invalid_argument] on unknown array or
    length mismatch. Values are rounded to fp32. *)

val get_array : env -> string -> float array
(** Snapshot of the current contents. *)

val array_dims : env -> string -> int list

val lookup_int : env -> string -> int
(** Current value of a parameter or live induction variable; [Failure] when
    unbound. *)

val get_scalar : env -> string -> float
val read_cell : env -> string -> int list -> float
val write_cell : env -> string -> int list -> float -> unit

val run : ?on_kernel:(env -> Ast.kernel -> unit) -> env -> unit
(** Execute the whole program body. When [on_kernel] is given it replaces
    direct interpretation of each kernel region — this is how the paradigm
    engines intercept offloadable regions while host statements still run
    here. [Failure] on runtime errors (e.g. an indirect index out of
    range). *)

val exec_kernel : env -> Ast.kernel -> unit
(** Directly interpret one kernel in the current environment (the default
    behaviour of [run] without [on_kernel]). *)

val op_count : env -> int
(** Arithmetic ops executed by the last [run] (kernel and host combined);
    used to cross-check the simulator's operation accounting. *)

val kernel_iterations : env -> (string * int) list
(** Dynamic iteration counts per kernel name, accumulated across host-loop
    invocations. *)

val run_program :
  Ast.program ->
  params:(string * int) list ->
  inputs:(string * float array) list ->
  ((string * float array) list, string) result
(** One-shot convenience: create, set inputs, run, return all arrays. *)
