lib/lang/symrect.ml: Array Format Hashtbl Hyperrect Int Printf String Symaff
