lib/lang/ast.ml: Dtype Format List Op Printf Result Set Stdlib String Symaff
