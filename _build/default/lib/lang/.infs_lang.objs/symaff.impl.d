lib/lang/symaff.ml: Buffer Format Hashtbl List Printf Stdlib String
