lib/lang/symaff.mli: Format
