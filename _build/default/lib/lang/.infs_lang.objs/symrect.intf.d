lib/lang/symrect.mli: Format Hyperrect Symaff
