lib/lang/interp.ml: Array Ast Dense Hashtbl List Op Option Printf String Symaff
