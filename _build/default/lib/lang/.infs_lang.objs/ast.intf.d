lib/lang/ast.mli: Dtype Format Op Symaff
