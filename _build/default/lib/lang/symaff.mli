(** Symbolic affine expressions over named integers.

    Loop bounds, array extents and access indices in the mini-C frontend are
    affine in loop induction variables and runtime size parameters
    ([2*i + N - 1]). The tDFG keeps them symbolic so the compiled binary is
    input-size neutral (the paper's portability requirement); the JIT
    resolves them against the runtime parameter environment. *)

type t

val const : int -> t
val var : string -> t
(** A named integer (induction variable or runtime parameter) . *)

val term : int -> string -> t
(** [term c x] is [c*x]. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val add_const : t -> int -> t

val zero : t
val one : t

val is_const : t -> int option
val vars : t -> string list
(** Variables with non-zero coefficient, sorted. *)

val coeff : t -> string -> int
val const_part : t -> int

val subst : t -> string -> t -> t
(** [subst t x e] replaces variable [x] by expression [e]. *)

val eval : t -> (string -> int) -> int
(** [eval t env]; [env] raises on unknown names. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val leq : ?min_var:int -> t -> t -> bool
(** [leq ~min_var a b] conservatively decides [a <= b] assuming every
    variable is at least [min_var] (default 1). True only when provable:
    writing [d = b - a], all variable coefficients of [d] must be
    non-negative and [const d + min_var * sum_coeffs >= 0]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val hash : t -> int
