type t = {
  wname : string;
  prog : Ast.program;
  params : (string * int) list;
  inputs : (string * float array) list Lazy.t;
  check_arrays : string list;
}

let default_checks (prog : Ast.program) =
  List.concat_map
    (fun (k : Ast.kernel) ->
      List.map (fun (st : Ast.kernel_stmt) -> st.target) k.body)
    (Ast.kernels prog)
  |> List.sort_uniq String.compare

let make ?check_arrays ~name ~params ~inputs prog =
  {
    wname = name;
    prog;
    params;
    inputs;
    check_arrays =
      (match check_arrays with Some c -> c | None -> default_checks prog);
  }

let scaled t ~params ~inputs = { t with params; inputs }
