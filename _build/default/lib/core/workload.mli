(** A runnable workload: a mini-C program plus concrete parameters and
    (lazily generated) input data. All Table 3 benchmarks are values of
    this type (see [Infs_workloads]). *)

type t = {
  wname : string;  (** display name, e.g. ["mm/out"] *)
  prog : Ast.program;
  params : (string * int) list;
  inputs : (string * float array) list Lazy.t;
      (** forced only in functional mode *)
  check_arrays : string list;
      (** output arrays to compare against the golden model *)
}

val make :
  ?check_arrays:string list ->
  name:string ->
  params:(string * int) list ->
  inputs:(string * float array) list Lazy.t ->
  Ast.program ->
  t
(** [check_arrays] defaults to every array the program's kernels write. *)

val scaled : t -> params:(string * int) list -> inputs:(string * float array) list Lazy.t -> t
(** The same program at a different size (used by sweeps and tests). *)
