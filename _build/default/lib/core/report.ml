type where = On_core | Near_mem | In_mem

type timeline_entry = { kernel : string; where : where; cycles : float }

type jit_summary = {
  invocations : int;
  memo_hits : int;
  total_commands : int;
  total_jit_cycles : float;
  avg_us : float;
}

type t = {
  workload : string;
  paradigm : string;
  cycles : float;
  breakdown : Breakdown.t;
  noc_bytes : (string * float) list;
  noc_byte_hops : (string * float) list;
  local_bytes : (string * float) list;
  noc_utilization : float;
  energy : float;
  energy_breakdown : (string * float) list;
  jit : jit_summary;
  timeline : timeline_entry list;
  in_mem_op_fraction : float;
  correctness : [ `Checked of float | `Skipped ];
}

let speedup ~baseline t = if t.cycles <= 0.0 then 0.0 else baseline.cycles /. t.cycles

let energy_efficiency ~baseline t =
  if t.energy <= 0.0 then 0.0 else baseline.energy /. t.energy

let where_to_string = function
  | On_core -> "in-core"
  | Near_mem -> "near-L3"
  | In_mem -> "in-L3"

let pp ppf t =
  Format.fprintf ppf "@[<v>%s [%s]: %.3e cycles, %.3e energy@," t.workload
    t.paradigm t.cycles t.energy;
  Format.fprintf ppf "  %a@," Breakdown.pp t.breakdown;
  Format.fprintf ppf "  noc-util=%.4f in-mem-ops=%.1f%%@," t.noc_utilization
    (100.0 *. t.in_mem_op_fraction);
  (match t.correctness with
  | `Checked err -> Format.fprintf ppf "  checked: max-err=%.2e@," err
  | `Skipped -> ());
  Format.fprintf ppf "@]"
