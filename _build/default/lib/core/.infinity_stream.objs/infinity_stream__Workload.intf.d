lib/core/workload.mli: Ast Lazy
