lib/core/report.mli: Breakdown Format
