lib/core/engine.mli: Machine_config Report Workload
