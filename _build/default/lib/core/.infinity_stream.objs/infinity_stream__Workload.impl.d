lib/core/workload.ml: Ast Lazy List String
