lib/core/report.ml: Breakdown Format
