type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* stored reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let fmt_float x =
  let ax = Float.abs x in
  if x = 0.0 then "0"
  else if ax >= 1e7 || ax < 1e-3 then Printf.sprintf "%.3e" x
  else if Float.is_integer x && ax < 1e6 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.3f" x

let add_float_row t label xs =
  add_row t (label :: List.map fmt_float xs);
  t

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  let note_widths row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter note_widths all;
  let render_row row =
    let cells = List.mapi (fun i cell -> pad widths.(i) cell) row in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule =
    let dashes = Array.to_list (Array.map (fun w -> String.make w '-') widths) in
    "|-" ^ String.concat "-|-" dashes ^ "-|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("## " ^ t.title ^ "\n");
  Buffer.add_string buf (render_row t.columns ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
