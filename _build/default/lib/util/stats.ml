let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  let xs = List.filter (fun x -> x > 0.0) xs in
  match xs with
  | [] -> 0.0
  | _ ->
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (log_sum /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
    sqrt var

let median xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let nth i = List.nth sorted i in
    if n mod 2 = 1 then nth (n / 2) else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.0

let minimum = function [] -> 0.0 | x :: xs -> List.fold_left Float.min x xs
let maximum = function [] -> 0.0 | x :: xs -> List.fold_left Float.max x xs

let percent ~part ~whole = if whole = 0.0 then 0.0 else 100.0 *. part /. whole
let ratio a b = if b = 0.0 then 0.0 else a /. b
