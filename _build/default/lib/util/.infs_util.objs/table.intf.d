lib/util/table.mli:
