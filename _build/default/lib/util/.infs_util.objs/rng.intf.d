lib/util/rng.mli:
