lib/util/stats.mli:
