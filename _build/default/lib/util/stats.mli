(** Small numeric summaries used across benches and reports. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean; ignores non-positive entries; 0 if none remain. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val median : float list -> float
(** Median; 0 on the empty list. *)

val minimum : float list -> float
val maximum : float list -> float

val percent : part:float -> whole:float -> float
(** [percent ~part ~whole] is [100 * part / whole]; 0 when [whole = 0]. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b]; 0 when [b = 0]. *)
