(** ASCII table rendering for the benchmark harness output.

    Each figure/table of the paper is re-emitted as one of these tables so
    the bench binary's stdout is directly comparable with the paper. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption line and column headers. *)

val add_row : t -> string list -> unit
(** Rows may be shorter than the header; missing cells render empty. *)

val add_float_row : t -> string -> float list -> t
(** [add_float_row t label xs] adds [label] then each float with 3 digits.
    Returns [t] for chaining. *)

val render : t -> string
(** Render with column-aligned padding, caption, and rule lines. *)

val print : t -> unit
(** [render] then [print_string], followed by a blank line. *)

val fmt_float : float -> string
(** Canonical float cell formatting ("12.345", "0.001", "1.2e+09"). *)
