lib/tdfg/tdfg.ml: Array Dtype Format Hashtbl List Op Option Printf Set String Symaff Symrect
