lib/tdfg/tdfg_eval.mli: Dense Interp Tdfg
