lib/tdfg/tdfg.mli: Dtype Format Op Symaff Symrect
