lib/tdfg/tdfg_eval.ml: Array Dense Hashtbl Hyperrect Interp List Op Printf String Symaff Symrect Tdfg
