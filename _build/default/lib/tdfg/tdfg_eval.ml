type value = Dense of Dense.t | Scalar of float

let lattice_var i = "d" ^ string_of_int i

(* Lookup combining the interpreter environment with lattice coordinates
   (named d0..dN-1) of the current point. *)
let point_lookup env point v =
  let n = Array.length point in
  let is_lattice =
    String.length v >= 2 && v.[0] = 'd'
    && String.for_all (function '0' .. '9' -> true | _ -> false)
         (String.sub v 1 (String.length v - 1))
  in
  if is_lattice then begin
    let i = int_of_string (String.sub v 1 (String.length v - 1)) in
    if i < n then point.(i) else failwith (Printf.sprintf "lattice var %s out of rank" v)
  end
  else Interp.lookup_int env v

let eval_coord env point = function
  | Tdfg.Caff a -> Symaff.eval a (point_lookup env point)
  | Tdfg.Cgather { index; at } ->
    let at_v = List.map (fun a -> Symaff.eval a (point_lookup env point)) at in
    int_of_float (Interp.read_cell env index at_v)

let eval_values ?(min_var = 4) g env =
  let values : (Tdfg.id, value) Hashtbl.t = Hashtbl.create 32 in
  let value_of id = Hashtbl.find values id in
  let dense_of id =
    match value_of id with
    | Dense d -> d
    | Scalar _ -> failwith "Tdfg_eval: expected a finite tensor, got a constant"
  in
  let eval_node id =
    let v =
      match Tdfg.kind g id with
      | Tdfg.Tensor { array; view; axes } ->
        let rect = Symrect.resolve view (Interp.lookup_int env) in
        Dense
          (Dense.create rect ~f:(fun p ->
               Interp.read_cell env array (List.map (fun ax -> p.(ax)) axes)))
      | Tdfg.Const (Lit f) -> Scalar (Dense.fp32 f)
      | Tdfg.Const (Runtime s) -> Scalar (Dense.fp32 (Interp.get_scalar env s))
      | Tdfg.Cmp { op; inputs } -> begin
        let vs = List.map value_of inputs in
        let denses = List.filter_map (function Dense d -> Some d | Scalar _ -> None) vs in
        match denses with
        | [] ->
          let args = List.map (function Scalar f -> f | Dense _ -> 0.0) vs in
          Scalar (Dense.fp32 (Op.eval op args))
        | first :: rest ->
          let rect =
            List.fold_left
              (fun acc d ->
                match Hyperrect.intersect acc (Dense.domain d) with
                | Some r -> r
                | None -> failwith "Tdfg_eval: empty runtime intersection")
              (Dense.domain first) rest
          in
          Dense
            (Dense.create rect ~f:(fun p ->
                 Op.eval op
                   (List.map
                      (function Scalar f -> f | Dense d -> Dense.get d p)
                      vs)))
      end
      | Tdfg.Mv { input; dim; dist } -> begin
        match value_of input with
        | Scalar f -> Scalar f
        | Dense d ->
          let moved = Hyperrect.shift (Dense.domain d) ~dim ~dist in
          Dense (Dense.shift d ~dim ~dist ~bound:moved)
      end
      | Tdfg.Bc { input; dim; lo; hi } -> begin
        match value_of input with
        | Scalar f -> Scalar f
        | Dense d ->
          let lo_v = Symaff.eval lo (Interp.lookup_int env) in
          let hi_v = Symaff.eval hi (Interp.lookup_int env) in
          Dense (Dense.broadcast d ~dim ~lo:lo_v ~hi:hi_v)
      end
      | Tdfg.Shrink { input; rect } -> begin
        match value_of input with
        | Scalar f ->
          (* shrinking a constant materializes it over the target domain
             (how the compiler gives constants a finite domain for outputs) *)
          Dense (Dense.fill (Symrect.resolve rect (Interp.lookup_int env)) f)
        | Dense d -> Dense (Dense.shrink d (Symrect.resolve rect (Interp.lookup_int env)))
      end
      | Tdfg.Reduce { op; input; dim } ->
        let d = dense_of input in
        let init =
          match Op.identity op with
          | Some v -> v
          | None -> failwith "Tdfg_eval: reduce with a non-reducing op"
        in
        Dense (Dense.reduce d ~dim ~f:(fun a b -> Op.eval op [ a; b ]) ~init)
      | Tdfg.Stream_load { array; view; coords } ->
        let rect = Symrect.resolve view (Interp.lookup_int env) in
        Dense
          (Dense.create rect ~f:(fun p ->
               Interp.read_cell env array (List.map (eval_coord env p) coords)))
    in
    Hashtbl.replace values id v
  in
  List.iter eval_node (Tdfg.live_nodes g);
  ignore min_var;
  values

let apply_output ?(min_var = 4) env values o =
  let value_of id = Hashtbl.find values id in
  match o with
  | Tdfg.Out_tensor { src; array; axes } -> begin
    match value_of src with
    | Scalar _ -> failwith "Tdfg_eval: tensor output from a constant"
    | Dense d ->
      Hyperrect.iter_points (Dense.domain d) ~f:(fun p ->
          Interp.write_cell env array
            (List.map (fun ax -> p.(ax)) axes)
            (Dense.get d p))
  end
  | Tdfg.Out_stream { src; array; coords; accum } -> begin
    match value_of src with
    | Scalar _ -> failwith "Tdfg_eval: stream output from a constant"
    | Dense d ->
      (* Streams are sequential: iterate the domain in row-major order so
         scatter collisions accumulate deterministically. *)
      Hyperrect.iter_points (Dense.domain d) ~f:(fun p ->
          let target = List.map (eval_coord env p) coords in
          let v = Dense.get d p in
          match accum with
          | None -> Interp.write_cell env array target v
          | Some op ->
            let old = Interp.read_cell env array target in
            Interp.write_cell env array target (Op.eval op [ old; v ]))
  end;
  ignore min_var

let eval ?min_var g env =
  let values = eval_values ?min_var g env in
  List.iter (apply_output ?min_var env values) (Tdfg.outputs g)

let eval_nodes ?min_var g env =
  let values = eval_values ?min_var g env in
  List.map (fun id -> (id, Hashtbl.find values id)) (Tdfg.live_nodes g)
