type id = int

type const_value = Lit of float | Runtime of string

type coord =
  | Caff of Symaff.t
  | Cgather of { index : string; at : Symaff.t list }

type kind =
  | Tensor of { array : string; view : Symrect.t; axes : int list }
  | Const of const_value
  | Cmp of { op : Op.t; inputs : id list }
  | Mv of { input : id; dim : int; dist : int }
  | Bc of { input : id; dim : int; lo : Symaff.t; hi : Symaff.t }
  | Shrink of { input : id; rect : Symrect.t }
  | Reduce of { op : Op.t; input : id; dim : int }
  | Stream_load of { array : string; view : Symrect.t; coords : coord list }

type output =
  | Out_tensor of { src : id; array : string; axes : int list }
  | Out_stream of {
      src : id;
      array : string;
      coords : coord list;
      accum : Op.t option;
    }

type node = { id : id; kind : kind }

type dom = Finite of Symrect.t | Infinite

type t = {
  gname : string;
  dims : int;
  gdtype : Dtype.t;
  mutable node_list : node list; (* reversed *)
  mutable count : int;
  cons : (kind, id) Hashtbl.t;
  by_id : (id, kind) Hashtbl.t;
  mutable outs : output list; (* reversed *)
  dom_cache : (id, dom) Hashtbl.t;
}

let create ~name ~dims ~dtype =
  {
    gname = name;
    dims;
    gdtype = dtype;
    node_list = [];
    count = 0;
    cons = Hashtbl.create 64;
    by_id = Hashtbl.create 64;
    outs = [];
    dom_cache = Hashtbl.create 64;
  }

let name t = t.gname
let lattice_dims t = t.dims
let dtype t = t.gdtype

let inputs_of = function
  | Tensor _ | Const _ | Stream_load _ -> []
  | Cmp { inputs; _ } -> inputs
  | Mv { input; _ } | Bc { input; _ } | Shrink { input; _ } | Reduce { input; _ } ->
    [ input ]

let add t kind =
  match Hashtbl.find_opt t.cons kind with
  | Some id -> id
  | None ->
    List.iter
      (fun i ->
        if i < 0 || i >= t.count then
          invalid_arg (Printf.sprintf "Tdfg.add: dangling input %d" i))
      (inputs_of kind);
    let id = t.count in
    t.count <- id + 1;
    t.node_list <- { id; kind } :: t.node_list;
    Hashtbl.replace t.cons kind id;
    Hashtbl.replace t.by_id id kind;
    id

let add_output t o = t.outs <- o :: t.outs

let tensor t ~array ~view ~axes = add t (Tensor { array; view; axes })
let const_lit t f = add t (Const (Lit f))
let const_runtime t s = add t (Const (Runtime s))
let cmp t op inputs = add t (Cmp { op; inputs })
let mv t input ~dim ~dist = add t (Mv { input; dim; dist })
let bc t input ~dim ~lo ~hi = add t (Bc { input; dim; lo; hi })
let shrink t input ~rect = add t (Shrink { input; rect })
let reduce t op input ~dim = add t (Reduce { op; input; dim })

let nodes t = List.rev t.node_list

let kind t id =
  match Hashtbl.find_opt t.by_id id with
  | Some k -> k
  | None -> invalid_arg "Tdfg.kind: bad id"

let node t id = { id; kind = kind t id }
let outputs t = List.rev t.outs
let node_count t = t.count

let rec domain ?(min_var = 4) t id =
  match Hashtbl.find_opt t.dom_cache id with
  | Some d -> d
  | None ->
    let d = compute_domain ~min_var t id in
    Hashtbl.replace t.dom_cache id d;
    d

and compute_domain ~min_var t id =
  let dom_of i = domain ~min_var t i in
  match kind t id with
  | Tensor { view; _ } | Stream_load { view; _ } -> Finite view
  | Const _ -> Infinite
  | Cmp { inputs; _ } ->
    List.fold_left
      (fun acc i ->
        match (acc, dom_of i) with
        | Infinite, d | d, Infinite -> d
        | Finite a, Finite b -> (
          match Symrect.intersect ~min_var a b with
          | Some r -> Finite r
          | None ->
            failwith
              (Printf.sprintf
                 "Tdfg.domain: node %d: incomparable/empty intersection %s vs %s"
                 id (Symrect.to_string a) (Symrect.to_string b))))
      Infinite inputs
  | Mv { input; dim; dist } -> (
    match dom_of input with
    | Infinite -> Infinite
    | Finite r -> Finite (Symrect.shift r ~dim ~dist))
  | Bc { input; dim; lo; hi } -> (
    match dom_of input with
    | Infinite -> Infinite
    | Finite r -> Finite (Symrect.with_range r ~dim ~lo ~hi))
  | Shrink { rect; _ } -> Finite rect
  | Reduce { input; dim; _ } -> (
    match dom_of input with
    | Infinite -> failwith "Tdfg.domain: reduce over an infinite domain"
    | Finite r -> Finite (Symrect.collapse r ~dim))

let live_nodes t =
  let live = Array.make t.count false in
  let rec mark id =
    if not live.(id) then begin
      live.(id) <- true;
      List.iter mark (inputs_of (kind t id))
    end
  in
  List.iter
    (function Out_tensor { src; _ } | Out_stream { src; _ } -> mark src)
    t.outs;
  List.filter_map
    (fun (n : node) -> if live.(n.id) then Some n.id else None)
    (nodes t)

module Sset = Set.Make (String)

let coords_arrays coords =
  List.filter_map (function Caff _ -> None | Cgather { index; _ } -> Some index) coords

let input_arrays t =
  let live = live_nodes t in
  let s =
    List.fold_left
      (fun acc id ->
        match kind t id with
        | Tensor { array; _ } -> Sset.add array acc
        | Stream_load { array; coords; _ } ->
          List.fold_left (fun a x -> Sset.add x a) (Sset.add array acc)
            (coords_arrays coords)
        | Const _ | Cmp _ | Mv _ | Bc _ | Shrink _ | Reduce _ -> acc)
      Sset.empty live
  in
  let s =
    List.fold_left
      (fun acc o ->
        match o with
        | Out_stream { coords; _ } ->
          List.fold_left (fun a x -> Sset.add x a) acc (coords_arrays coords)
        | Out_tensor _ -> acc)
      s t.outs
  in
  Sset.elements s

let output_arrays t =
  List.sort_uniq String.compare
    (List.map
       (function Out_tensor { array; _ } | Out_stream { array; _ } -> array)
       t.outs)

let runtime_scalars t =
  let s =
    List.fold_left
      (fun acc id ->
        match kind t id with
        | Const (Runtime r) -> Sset.add r acc
        | _ -> acc)
      Sset.empty (live_nodes t)
  in
  Sset.elements s

let kind_name = function
  | Tensor _ -> "tensor"
  | Const _ -> "const"
  | Cmp _ -> "cmp"
  | Mv _ -> "mv"
  | Bc _ -> "bc"
  | Shrink _ -> "shrink"
  | Reduce _ -> "reduce"
  | Stream_load _ -> "stream_load"

let stats t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun id ->
      let k = kind_name (kind t id) in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    (live_nodes t);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let op_multiset t =
  let tbl = Hashtbl.create 8 in
  let bump op =
    Hashtbl.replace tbl op (1 + Option.value ~default:0 (Hashtbl.find_opt tbl op))
  in
  List.iter
    (fun id ->
      match kind t id with
      | Cmp { op; _ } | Reduce { op; _ } -> bump op
      | Tensor _ | Const _ | Mv _ | Bc _ | Shrink _ | Stream_load _ -> ())
    (live_nodes t);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let validate ?(min_var = 4) t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_node (n : node) =
    match n.kind with
    | Tensor { view; axes; array } ->
      if Symrect.dims view <> t.dims then
        err "node %d: tensor %s view rank %d, lattice %d" n.id array
          (Symrect.dims view) t.dims
      else if List.exists (fun a -> a < 0 || a >= t.dims) axes then
        err "node %d: axis out of range" n.id
      else if List.length (List.sort_uniq compare axes) <> List.length axes then
        err "node %d: duplicate axes" n.id
      else Ok ()
    | Cmp { op; inputs } ->
      if List.length inputs <> Op.arity op then
        err "node %d: op %s arity %d got %d" n.id (Op.to_string op) (Op.arity op)
          (List.length inputs)
      else Ok ()
    | Mv { dim; _ } | Reduce { dim; _ } ->
      if dim < 0 || dim >= t.dims then err "node %d: dim out of range" n.id else Ok ()
    | Bc { input; dim; _ } -> (
      if dim < 0 || dim >= t.dims then err "node %d: dim out of range" n.id
      else
        match domain ~min_var t input with
        | Infinite -> Ok ()
        | Finite r ->
          let l, h = (Symrect.lo r dim, Symrect.hi r dim) in
          if Symaff.equal (Symaff.add_const l 1) h then Ok ()
          else err "node %d: bc input extent along dim %d is not 1" n.id dim)
    | Shrink { rect; _ } ->
      if Symrect.dims rect <> t.dims then err "node %d: shrink rank mismatch" n.id
      else Ok ()
    | Stream_load { view; coords; _ } ->
      if Symrect.dims view <> t.dims then err "node %d: stream view rank" n.id
      else if coords = [] then err "node %d: stream with no coords" n.id
      else Ok ()
    | Const _ -> Ok ()
  in
  let check_output = function
    | Out_tensor { src; array; axes } -> (
      match domain ~min_var t src with
      | Infinite -> err "output to %s has infinite domain" array
      | Finite _ ->
        if List.exists (fun a -> a < 0 || a >= t.dims) axes then
          err "output to %s: axis out of range" array
        else Ok ())
    | Out_stream { src; array; coords; _ } -> (
      match domain ~min_var t src with
      | Infinite -> err "stream output to %s has infinite domain" array
      | Finite _ -> if coords = [] then err "stream output with no coords" else Ok ())
  in
  try
    let results = List.map check_node (nodes t) @ List.map check_output (outputs t) in
    List.fold_left
      (fun acc r -> match acc with Error _ -> acc | Ok () -> r)
      (Ok ()) results
  with Failure msg -> Error msg

let pp_const ppf = function
  | Lit f -> Format.fprintf ppf "%g" f
  | Runtime s -> Format.fprintf ppf "$%s" s

let pp_coord ppf = function
  | Caff a -> Format.fprintf ppf "%s" (Symaff.to_string a)
  | Cgather { index; at } ->
    Format.fprintf ppf "%s%s" index
      (String.concat ""
         (List.map (fun a -> Printf.sprintf "[%s]" (Symaff.to_string a)) at))

let pp_kind ppf = function
  | Tensor { array; view; axes } ->
    Format.fprintf ppf "tensor %s %s axes=[%s]" array (Symrect.to_string view)
      (String.concat ";" (List.map string_of_int axes))
  | Const c -> Format.fprintf ppf "const %a" pp_const c
  | Cmp { op; inputs } ->
    Format.fprintf ppf "cmp %s (%s)" (Op.to_string op)
      (String.concat ", " (List.map (Printf.sprintf "%%%d") inputs))
  | Mv { input; dim; dist } -> Format.fprintf ppf "mv %%%d dim=%d dist=%+d" input dim dist
  | Bc { input; dim; lo; hi } ->
    Format.fprintf ppf "bc %%%d dim=%d -> [%s,%s)" input dim (Symaff.to_string lo)
      (Symaff.to_string hi)
  | Shrink { input; rect } ->
    Format.fprintf ppf "shrink %%%d -> %s" input (Symrect.to_string rect)
  | Reduce { op; input; dim } ->
    Format.fprintf ppf "reduce %s %%%d dim=%d" (Op.to_string op) input dim
  | Stream_load { array; view; coords } ->
    Format.fprintf ppf "strm.ld %s %s coords=(%a)" array (Symrect.to_string view)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_coord)
      coords

let pp_output ppf = function
  | Out_tensor { src; array; axes } ->
    Format.fprintf ppf "out %s <- %%%d axes=[%s]" array src
      (String.concat ";" (List.map string_of_int axes))
  | Out_stream { src; array; coords; accum } ->
    Format.fprintf ppf "strm.st %s%s <- %%%d coords=(%a)" array
      (match accum with Some op -> Printf.sprintf " (%s=)" (Op.to_string op) | None -> "")
      src
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_coord)
      coords

let pp ppf t =
  Format.fprintf ppf "@[<v>tdfg %s (dims=%d, %s)@," t.gname t.dims
    (Dtype.to_string t.gdtype);
  List.iter
    (fun (n : node) -> Format.fprintf ppf "  %%%d = %a@," n.id pp_kind n.kind)
    (nodes t);
  List.iter (fun o -> Format.fprintf ppf "  %a@," pp_output o) (outputs t);
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
