(** Functional (golden-model) evaluation of a tDFG against an interpreter
    environment.

    Resolves symbolic domains with the environment's current parameter and
    host-loop values, materializes every live node as a dense tensor
    following Fig. 5's semantics, and applies the outputs (in-memory
    write-backs and near-memory store streams) to the environment's arrays.
    Used by all simulated paradigms in functional mode and directly by unit
    tests. *)

type value =
  | Dense of Dense.t
  | Scalar of float
      (** constants are kept unmaterialized (their domain is infinite) *)

val lattice_var : int -> string
(** Conventional name of lattice coordinate [i] in stream [coords]
    expressions: ["d0"], ["d1"], ... *)

val eval : ?min_var:int -> Tdfg.t -> Interp.env -> unit
(** Evaluate the graph and write outputs into the environment's arrays.
    [Failure] on semantic errors (unbound scalars, gather out of range). *)

val eval_nodes : ?min_var:int -> Tdfg.t -> Interp.env -> (Tdfg.id * value) list
(** Evaluate and additionally return every live node's value (no outputs
    applied); intended for tests and debugging. *)
