(** The tensor dataflow graph (tDFG) — the paper's IR (§3.2, Fig. 5).

    A tDFG describes one offloadable kernel region as SSA dataflow over
    tensors positioned in a global lattice space. Domains are symbolic
    ({!Symrect.t}) so one graph serves every input size; the JIT resolves
    them at configuration time.

    Node set (paper Fig. 5): input tensor views ([Tensor]), constants
    ([Const], broadcast to all lattice cells), element-wise compute ([Cmp],
    domain = intersection of inputs), explicit alignment ([Mv]/[Bc]), the
    bookkeeping [Shrink] node from the appendix (lowered to a no-op), the
    dimension reduction node, and embedded near-memory streams
    ([Stream_load], §3.3) for strided/indirect accesses that in-memory
    computing cannot lay out itself. *)

type id = int

type const_value =
  | Lit of float
  | Runtime of string
      (** named runtime scalar passed through [inf_cfg] (Fig. 7's [akk]) *)

(** How one array coordinate of a stream access is produced. Variables
    [d0..dN-1] denote lattice coordinates. *)
type coord =
  | Caff of Symaff.t  (** affine in lattice coordinates and parameters *)
  | Cgather of { index : string; at : Symaff.t list }
      (** [index\[at0\]..\[atn\]] — one-level indirection through an
          index array (multi-dimensional index arrays allowed) *)

type kind =
  | Tensor of { array : string; view : Symrect.t; axes : int list }
      (** Unit-stride view of [array]; [axes.(j)] is the lattice dimension
          carrying array dimension [j]. Non-axis dimensions of [view] must
          have extent 1. *)
  | Const of const_value
  | Cmp of { op : Op.t; inputs : id list }
  | Mv of { input : id; dim : int; dist : int }
  | Bc of { input : id; dim : int; lo : Symaff.t; hi : Symaff.t }
      (** Input must have extent 1 along [dim]; result covers [\[lo,hi)]. *)
  | Shrink of { input : id; rect : Symrect.t }
  | Reduce of { op : Op.t; input : id; dim : int }
      (** Fully reduce [dim] (extent collapses to 1). Lowering splits this
          into in-memory rounds and, when the tile does not cover the
          reduced extent, a near-memory final-reduce stream. *)
  | Stream_load of { array : string; view : Symrect.t; coords : coord list }
      (** Near-memory load stream depositing data as a tensor over [view];
          [coords.(j)] gives array coordinate [j] for each lattice point. *)

type output =
  | Out_tensor of { src : id; array : string; axes : int list }
      (** In-memory write-back of [src]'s domain into [array]. *)
  | Out_stream of {
      src : id;
      array : string;
      coords : coord list;
      accum : Op.t option;
    }
      (** Near-memory store stream (strided or indirect scatter); [accum]
          makes it a read-modify-write (sequential stream semantics). *)

type node = { id : id; kind : kind }

type t

(** Domains: [Const] nodes live at every lattice cell. *)
type dom = Finite of Symrect.t | Infinite

(** {1 Building} *)

val create : name:string -> dims:int -> dtype:Dtype.t -> t
(** [dims] is the lattice dimensionality of the region. *)

val name : t -> string
val lattice_dims : t -> int
val dtype : t -> Dtype.t

val add : t -> kind -> id
(** Append a node (inputs must already exist); returns its id. Structurally
    identical nodes are hash-consed to the same id. *)

val add_output : t -> output -> unit

val tensor : t -> array:string -> view:Symrect.t -> axes:int list -> id
val const_lit : t -> float -> id
val const_runtime : t -> string -> id
val cmp : t -> Op.t -> id list -> id
val mv : t -> id -> dim:int -> dist:int -> id
val bc : t -> id -> dim:int -> lo:Symaff.t -> hi:Symaff.t -> id
val shrink : t -> id -> rect:Symrect.t -> id
val reduce : t -> Op.t -> id -> dim:int -> id

(** {1 Inspection} *)

val node : t -> id -> node
val kind : t -> id -> kind
val nodes : t -> node list
(** In id order, which is a topological order. *)

val outputs : t -> output list
val node_count : t -> int

val inputs_of : kind -> id list
(** Dataflow predecessors. *)

val domain : ?min_var:int -> t -> id -> dom
(** Symbolic domain per Fig. 5's semantics. [Failure] when an intersection
    is incomparable (the compiler must align tensors first). Memoized. *)

val live_nodes : t -> id list
(** Nodes reachable from outputs, in topological (id) order. *)

val input_arrays : t -> string list
(** Arrays read (tensor views, stream loads, gather indices), sorted. *)

val output_arrays : t -> string list

val runtime_scalars : t -> string list

val stats : t -> (string * int) list
(** Per-kind live-node counts, for Eq. 2's offload decision hints. *)

val op_multiset : t -> (Op.t * int) list
(** Live compute/reduce operators with multiplicity. *)

val validate : ?min_var:int -> t -> (unit, string) result
(** Check arities, axis maps, bc extent-1 inputs, domain computability and
    output domain finiteness. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
