type t = { lo : int array; hi : int array }

let make ~lo ~hi =
  if Array.length lo <> Array.length hi then
    invalid_arg "Hyperrect.make: dimension mismatch";
  Array.iteri
    (fun i l -> if l > hi.(i) then invalid_arg "Hyperrect.make: lo > hi")
    lo;
  { lo = Array.copy lo; hi = Array.copy hi }

let of_ranges ranges =
  let lo = Array.of_list (List.map fst ranges) in
  let hi = Array.of_list (List.map snd ranges) in
  make ~lo ~hi

let of_shape s = make ~lo:(Array.map (fun _ -> 0) s) ~hi:s

let scalar = { lo = [||]; hi = [||] }

let dims t = Array.length t.lo
let lo t i = t.lo.(i)
let hi t i = t.hi.(i)
let extent t i = t.hi.(i) - t.lo.(i)
let shape t = Array.init (dims t) (fun i -> extent t i)

let volume t =
  let v = ref 1 in
  for i = 0 to dims t - 1 do
    v := !v * extent t i
  done;
  !v

let is_empty t =
  let rec loop i = i < dims t && (extent t i = 0 || loop (i + 1)) in
  loop 0

let equal a b = a.lo = b.lo && a.hi = b.hi

let compare a b =
  match Stdlib.compare a.lo b.lo with 0 -> Stdlib.compare a.hi b.hi | c -> c

let hash t = Hashtbl.hash (t.lo, t.hi)

let mem t point =
  assert (Array.length point = dims t);
  let rec loop i =
    i >= dims t || (point.(i) >= t.lo.(i) && point.(i) < t.hi.(i) && loop (i + 1))
  in
  loop 0

let intersect a b =
  if dims a <> dims b then invalid_arg "Hyperrect.intersect: dimension mismatch";
  let lo = Array.init (dims a) (fun i -> max a.lo.(i) b.lo.(i)) in
  let hi = Array.init (dims a) (fun i -> min a.hi.(i) b.hi.(i)) in
  let rec empty i = i < dims a && (lo.(i) >= hi.(i) || empty (i + 1)) in
  if empty 0 then None else Some { lo; hi }

let bounding a b =
  if dims a <> dims b then invalid_arg "Hyperrect.bounding: dimension mismatch";
  {
    lo = Array.init (dims a) (fun i -> min a.lo.(i) b.lo.(i));
    hi = Array.init (dims a) (fun i -> max a.hi.(i) b.hi.(i));
  }

let contains ~outer ~inner =
  let rec loop i =
    i >= dims outer
    || (inner.lo.(i) >= outer.lo.(i) && inner.hi.(i) <= outer.hi.(i) && loop (i + 1))
  in
  dims outer = dims inner && loop 0

let shift t ~dim ~dist =
  let lo = Array.copy t.lo and hi = Array.copy t.hi in
  lo.(dim) <- lo.(dim) + dist;
  hi.(dim) <- hi.(dim) + dist;
  { lo; hi }

let clip t ~within = intersect t within

let with_range t ~dim ~lo:l ~hi:h =
  if l > h then invalid_arg "Hyperrect.with_range: lo > hi";
  let lo = Array.copy t.lo and hi = Array.copy t.hi in
  lo.(dim) <- l;
  hi.(dim) <- h;
  { lo; hi }

let broadcast_extent = with_range

let fold_points t ~init ~f =
  if is_empty t then init
  else begin
    let n = dims t in
    if n = 0 then f init [||]
    else begin
      let point = Array.copy t.lo in
      let acc = ref init in
      let continue = ref true in
      while !continue do
        acc := f !acc point;
        (* advance odometer, innermost dimension last *)
        let rec bump i =
          if i < 0 then continue := false
          else begin
            point.(i) <- point.(i) + 1;
            if point.(i) >= t.hi.(i) then begin
              point.(i) <- t.lo.(i);
              bump (i - 1)
            end
          end
        in
        bump (n - 1)
      done;
      !acc
    end
  end

let iter_points t ~f = fold_points t ~init:() ~f:(fun () p -> f p)

let linear_index t point =
  let n = dims t in
  let idx = ref 0 in
  for i = 0 to n - 1 do
    idx := (!idx * extent t i) + (point.(i) - t.lo.(i))
  done;
  !idx

let point_of_linear t idx =
  let n = dims t in
  let point = Array.make n 0 in
  let rem = ref idx in
  for i = n - 1 downto 0 do
    let e = extent t i in
    point.(i) <- t.lo.(i) + (!rem mod e);
    rem := !rem / e
  done;
  point

let to_string t =
  if dims t = 0 then "[scalar]"
  else
    String.concat "x"
      (List.init (dims t) (fun i -> Printf.sprintf "[%d,%d)" t.lo.(i) t.hi.(i)))

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Paper Algorithm 1, one dimension. [a;b] bracket p down/up to the tile
   boundary and [c] brackets q down; aligned middle runs are kept whole
   (possibly spanning several full tiles, cf. Fig 9), while unaligned head
   and tail intervals are split off. *)
let decompose_dim ~p ~q ~tile =
  assert (tile >= 1 && p < q);
  let fdiv x y = if x >= 0 then x / y else -(((-x) + y - 1) / y) in
  let a = fdiv p tile * tile in
  let b = fdiv (p + tile - 1) tile * tile in
  let c = fdiv q tile * tile in
  if b <= c then begin
    let segs =
      if a < p then (p, b) :: (if b < c then [ (b, c) ] else [])
      else if a < c then [ (a, c) ]
      else []
    in
    if c < q then segs @ [ (c, q) ] else segs
  end
  else [ (p, q) ]

let decompose t ~tile =
  if Array.length tile <> dims t then
    invalid_arg "Hyperrect.decompose: tile dimension mismatch";
  Array.iter (fun ts -> if ts < 1 then invalid_arg "Hyperrect.decompose: tile < 1") tile;
  if is_empty t then []
  else begin
    let n = dims t in
    let rec go i =
      if i = n then [ [] ]
      else
        let rest = go (i + 1) in
        let segs = decompose_dim ~p:t.lo.(i) ~q:t.hi.(i) ~tile:tile.(i) in
        List.concat_map (fun seg -> List.map (fun tl -> seg :: tl) rest) segs
    in
    List.map of_ranges (go 0)
  end

let tile_origin point ~tile =
  Array.init (Array.length point) (fun i ->
      let p = point.(i) and ts = tile.(i) in
      let d = if p >= 0 then p / ts else -(((-p) + ts - 1) / ts) in
      d * ts)

let tile_index _t ~point ~tile =
  Array.init (Array.length point) (fun i ->
      let p = point.(i) and ts = tile.(i) in
      if p >= 0 then p / ts else -(((-p) + ts - 1) / ts))
