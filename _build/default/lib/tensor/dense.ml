type t = { rect : Hyperrect.t; data : float array }

let fp32 x = Int32.float_of_bits (Int32.bits_of_float x)

let create rect ~f =
  let data = Array.make (Hyperrect.volume rect) 0.0 in
  Hyperrect.iter_points rect ~f:(fun p ->
      data.(Hyperrect.linear_index rect p) <- fp32 (f p));
  { rect; data }

let fill rect v = { rect; data = Array.make (Hyperrect.volume rect) (fp32 v) }

let domain t = t.rect

let get t p =
  if not (Hyperrect.mem t.rect p) then
    invalid_arg
      (Printf.sprintf "Dense.get: point outside %s" (Hyperrect.to_string t.rect));
  t.data.(Hyperrect.linear_index t.rect p)

let set t p v =
  if not (Hyperrect.mem t.rect p) then invalid_arg "Dense.set: point outside domain";
  t.data.(Hyperrect.linear_index t.rect p) <- fp32 v

let copy t = { rect = t.rect; data = Array.copy t.data }

let map t ~f = { rect = t.rect; data = Array.map (fun x -> fp32 (f x)) t.data }

let map2 a b ~f =
  match Hyperrect.intersect a.rect b.rect with
  | None -> invalid_arg "Dense.map2: empty intersection"
  | Some rect -> create rect ~f:(fun p -> f (get a p) (get b p))

let mapn ts ~f =
  match ts with
  | [] -> invalid_arg "Dense.mapn: no inputs"
  | first :: rest ->
    let rect =
      List.fold_left
        (fun acc t ->
          match Hyperrect.intersect acc t.rect with
          | Some r -> r
          | None -> invalid_arg "Dense.mapn: empty intersection")
        first.rect rest
    in
    create rect ~f:(fun p -> f (List.map (fun t -> get t p) ts))

let shift t ~dim ~dist ~bound =
  let moved = Hyperrect.shift t.rect ~dim ~dist in
  match Hyperrect.clip moved ~within:bound with
  | None -> invalid_arg "Dense.shift: tensor moved entirely out of bounds"
  | Some rect ->
    create rect ~f:(fun p ->
        let src = Array.copy p in
        src.(dim) <- src.(dim) - dist;
        get t src)

let broadcast t ~dim ~lo ~hi =
  if Hyperrect.extent t.rect dim <> 1 then
    invalid_arg "Dense.broadcast: source extent along dim must be 1";
  let rect = Hyperrect.with_range t.rect ~dim ~lo ~hi in
  let src_coord = Hyperrect.lo t.rect dim in
  create rect ~f:(fun p ->
      let src = Array.copy p in
      src.(dim) <- src_coord;
      get t src)

let shrink t rect =
  if not (Hyperrect.contains ~outer:t.rect ~inner:rect) then
    invalid_arg "Dense.shrink: target domain not contained";
  create rect ~f:(fun p -> get t p)

let reduce t ~dim ~f ~init =
  let d_lo = Hyperrect.lo t.rect dim and d_hi = Hyperrect.hi t.rect dim in
  let rect = Hyperrect.with_range t.rect ~dim ~lo:d_lo ~hi:(d_lo + 1) in
  create rect ~f:(fun p ->
      let src = Array.copy p in
      let acc = ref init in
      for c = d_lo to d_hi - 1 do
        src.(dim) <- c;
        acc := fp32 (f !acc (get t src))
      done;
      !acc)

let reduce_all t ~f ~init = Array.fold_left (fun acc x -> fp32 (f acc x)) init t.data

let to_array t = Array.copy t.data

let of_array rect data =
  if Array.length data <> Hyperrect.volume rect then
    invalid_arg "Dense.of_array: length mismatch";
  { rect; data = Array.map fp32 data }

let close ~eps a b =
  let d = Float.abs (a -. b) in
  d <= eps || d <= eps *. Float.max (Float.abs a) (Float.abs b)

let equal_within ~eps a b =
  Hyperrect.equal a.rect b.rect
  && Array.for_all2 (fun x y -> close ~eps x y) a.data b.data

let max_abs_diff a b =
  if not (Hyperrect.equal a.rect b.rect) then infinity
  else begin
    let m = ref 0.0 in
    Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.data.(i)))) a.data;
    !m
  end

let pp ppf t =
  Format.fprintf ppf "@[<hov 2>Dense %s:" (Hyperrect.to_string t.rect);
  let n = Array.length t.data in
  let shown = min n 16 in
  for i = 0 to shown - 1 do
    Format.fprintf ppf "@ %g" t.data.(i)
  done;
  if n > shown then Format.fprintf ppf "@ ...(%d)" n;
  Format.fprintf ppf "@]"
