lib/tensor/hyperrect.mli: Format
