lib/tensor/dense.mli: Format Hyperrect
