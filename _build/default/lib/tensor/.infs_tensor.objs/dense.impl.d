lib/tensor/dense.ml: Array Float Format Hyperrect Int32 List Printf
