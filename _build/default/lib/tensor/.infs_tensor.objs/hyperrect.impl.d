lib/tensor/hyperrect.ml: Array Format Hashtbl List Printf Stdlib String
