(** Dense tensors over the lattice space: the functional (golden) model of
    tDFG execution.

    Every simulated paradigm in this repository also evaluates its kernel
    functionally through these tensors, so tests can assert that in-memory,
    near-memory and in-core executions all produce the same values. Values
    are stored as floats but rounded to fp32 after every operation, matching
    the paper's fp32 workloads. *)

type t

val create : Hyperrect.t -> f:(int array -> float) -> t
(** [create rect ~f] fills each lattice point from [f]. *)

val fill : Hyperrect.t -> float -> t

val domain : t -> Hyperrect.t

val get : t -> int array -> float
(** [Invalid_argument] outside the domain. *)

val set : t -> int array -> float -> unit

val copy : t -> t

val fp32 : float -> float
(** Round to single precision (the library-wide value semantics). *)

val map : t -> f:(float -> float) -> t
(** Element-wise unary op over the whole domain; result domain unchanged. *)

val map2 : t -> t -> f:(float -> float -> float) -> t
(** Element-wise binary op over the {e intersection} of the two domains
    (paper: compute applies to the intersecting hyperrectangle).
    [Invalid_argument] when the intersection is empty. *)

val mapn : t list -> f:(float list -> float) -> t
(** N-ary element-wise op over the intersection of all domains. *)

val shift : t -> dim:int -> dist:int -> bound:Hyperrect.t -> t
(** [mv] node semantics: translate the tensor; data shifted outside the
    global bounding hyperrectangle [bound] is discarded. *)

val broadcast : t -> dim:int -> lo:int -> hi:int -> t
(** [bc] node semantics: replicate the tensor along [dim] so the result
    covers [\[lo,hi)] in that dimension. The source must have extent 1 in
    [dim] (the paper broadcasts a row/column/plane along its reuse
    dimension). *)

val shrink : t -> Hyperrect.t -> t
(** Restrict to a sub-domain (shrink node). [Invalid_argument] if the
    requested domain is not contained in the tensor's. *)

val reduce : t -> dim:int -> f:(float -> float -> float) -> init:float -> t
(** Fold along one dimension; the result has extent 1 in [dim] (anchored at
    the dimension's low coordinate). Reduction order is lowest-to-highest
    coordinate. *)

val reduce_all : t -> f:(float -> float -> float) -> init:float -> float

val to_array : t -> float array
(** Row-major copy of the values. *)

val of_array : Hyperrect.t -> float array -> t
(** [Invalid_argument] on length mismatch. *)

val equal_within : eps:float -> t -> t -> bool
(** Same domain and all values within absolute-or-relative [eps]. *)

val max_abs_diff : t -> t -> float
(** Largest absolute element difference; [infinity] on domain mismatch. *)

val pp : Format.formatter -> t -> unit
