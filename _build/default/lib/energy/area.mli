(** Area model (paper §8): in-memory compute enhancements (extra sense
    amps, write drivers, dual-wordline decoder, bit-serial PEs) plus
    near-memory support logic, relative to the McPAT whole-chip area. *)

type t = {
  base_chip_mm2 : float;
  imc_overhead_mm2 : float;  (** 66.75 mm2 in the paper *)
  near_mem_overhead_mm2 : float;  (** 28.16 mm2 *)
}

val default : t

val overhead_fraction : t -> float
(** Whole-chip overhead; 6.52% with the paper's numbers. *)

val table : t -> (string * float) list
