type events = {
  mutable sram_array_cycles : float;
  mutable htree_bytes : float;
  mutable intra_tile_bytes : float;
  mutable noc_byte_hops : float;
  mutable dram_bytes : float;
  mutable core_flops : float;
  mutable sel3_flops : float;
  mutable l3_bytes : float;
}

let fresh () =
  {
    sram_array_cycles = 0.0;
    htree_bytes = 0.0;
    intra_tile_bytes = 0.0;
    noc_byte_hops = 0.0;
    dram_bytes = 0.0;
    core_flops = 0.0;
    sel3_flops = 0.0;
    l3_bytes = 0.0;
  }

let accumulate ~dst e =
  dst.sram_array_cycles <- dst.sram_array_cycles +. e.sram_array_cycles;
  dst.htree_bytes <- dst.htree_bytes +. e.htree_bytes;
  dst.intra_tile_bytes <- dst.intra_tile_bytes +. e.intra_tile_bytes;
  dst.noc_byte_hops <- dst.noc_byte_hops +. e.noc_byte_hops;
  dst.dram_bytes <- dst.dram_bytes +. e.dram_bytes;
  dst.core_flops <- dst.core_flops +. e.core_flops;
  dst.sel3_flops <- dst.sel3_flops +. e.sel3_flops;
  dst.l3_bytes <- dst.l3_bytes +. e.l3_bytes

type costs = {
  per_sram_array_cycle : float;
  per_htree_byte : float;
  per_intra_tile_byte : float;
  per_noc_byte_hop : float;
  per_dram_byte : float;
  per_core_flop : float;
  per_sel3_flop : float;
  per_l3_byte : float;
}

(* A bit-serial array activation touches one wordline across 256 bitlines
   (≈2pJ at 22nm); moving a byte across one NoC hop costs roughly the same
   as several array cycles; a DRAM byte is an order of magnitude above
   that; a full SIMD-lane core op carries fetch/decode/register overheads. *)
let default_costs =
  {
    per_sram_array_cycle = 12.0;
    per_htree_byte = 5.0;
    per_intra_tile_byte = 2.0;
    per_noc_byte_hop = 4.0;
    per_dram_byte = 60.0;
    per_core_flop = 300.0;
    per_sel3_flop = 150.0;
    per_l3_byte = 4.0;
  }

let breakdown ?(costs = default_costs) e =
  [
    ("sram-compute", e.sram_array_cycles *. costs.per_sram_array_cycle);
    ("htree", e.htree_bytes *. costs.per_htree_byte);
    ("intra-tile", e.intra_tile_bytes *. costs.per_intra_tile_byte);
    ("noc", e.noc_byte_hops *. costs.per_noc_byte_hop);
    ("dram", e.dram_bytes *. costs.per_dram_byte);
    ("core", e.core_flops *. costs.per_core_flop);
    ("near-mem", e.sel3_flops *. costs.per_sel3_flop);
    ("l3", e.l3_bytes *. costs.per_l3_byte);
  ]

let total ?costs e = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 (breakdown ?costs e)

let of_traffic e traffic =
  e.noc_byte_hops <- e.noc_byte_hops +. Traffic.total_byte_hops traffic;
  e.htree_bytes <- e.htree_bytes +. Traffic.local_bytes traffic `Htree;
  e.intra_tile_bytes <- e.intra_tile_bytes +. Traffic.local_bytes traffic `Intra_tile
