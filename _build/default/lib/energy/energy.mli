(** Energy model (paper §8 "Energy and Area", Fig. 18).

    The paper derives SRAM-array and H-tree energy from CACTI (22nm) and
    core energy from McPAT. We charge per-event constants of the same
    classes; the absolute scale is arbitrary (picojoule-flavoured units) —
    Fig. 18 is a relative energy-efficiency plot, and the constants are
    chosen so that in-memory ops are far cheaper than moving operands to a
    core, which is the physical premise of the paper. *)

type events = {
  mutable sram_array_cycles : float;
      (** active compute-array cycles (array x cycle) *)
  mutable htree_bytes : float;
  mutable intra_tile_bytes : float;
  mutable noc_byte_hops : float;
  mutable dram_bytes : float;
  mutable core_flops : float;  (** SIMD lanes' useful ops in a core *)
  mutable sel3_flops : float;  (** near-memory ops at the bank *)
  mutable l3_bytes : float;  (** conventional L3 array read/write traffic *)
}

val fresh : unit -> events
val accumulate : dst:events -> events -> unit

(** Per-event costs in energy units. *)
type costs = {
  per_sram_array_cycle : float;
  per_htree_byte : float;
  per_intra_tile_byte : float;
  per_noc_byte_hop : float;
  per_dram_byte : float;
  per_core_flop : float;
  per_sel3_flop : float;
  per_l3_byte : float;
}

val default_costs : costs

val total : ?costs:costs -> events -> float

val breakdown : ?costs:costs -> events -> (string * float) list

val of_traffic : events -> Traffic.t -> unit
(** Fold a traffic accumulator's NoC/H-tree/intra-tile counters into the
    event record. *)
