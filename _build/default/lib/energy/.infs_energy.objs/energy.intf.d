lib/energy/energy.mli: Traffic
