lib/energy/area.ml:
