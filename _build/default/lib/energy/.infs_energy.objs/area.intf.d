lib/energy/area.mli:
