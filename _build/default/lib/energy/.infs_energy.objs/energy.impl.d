lib/energy/energy.ml: List Traffic
