type t = {
  base_chip_mm2 : float;
  imc_overhead_mm2 : float;
  near_mem_overhead_mm2 : float;
}

(* The paper reports 66.75 mm2 of in-memory compute logic, 28.16 mm2 of
   near-memory support, and a 6.52% whole-chip overhead, which pins the
   McPAT baseline chip at (66.75+28.16)/0.0652 mm2. *)
let default =
  {
    base_chip_mm2 = (66.75 +. 28.16) /. 0.0652;
    imc_overhead_mm2 = 66.75;
    near_mem_overhead_mm2 = 28.16;
  }

let overhead_fraction t =
  (t.imc_overhead_mm2 +. t.near_mem_overhead_mm2) /. t.base_chip_mm2

let table t =
  [
    ("base chip (McPAT, 22nm) mm^2", t.base_chip_mm2);
    ("in-memory compute overhead mm^2", t.imc_overhead_mm2);
    ("near-memory support mm^2", t.near_mem_overhead_mm2);
    ("whole-chip overhead fraction", overhead_fraction t);
  ]
