(** The stream dataflow graph (paper §3.1, Fig. 4's left column).

    The sDFG is the near-memory program representation the tDFG builds on:
    memory accesses decouple into {e streams} (long-term access patterns,
    up to 3-D affine plus one-level indirection — Fig. 5's [strm] node)
    with the associated computation attached to the consuming store/reduce
    stream. Both the sDFG and tDFG of a region are encoded in the fat
    binary so the runtime can choose near-memory or in-memory execution
    (§3.4); near-memory simulation consumes the quantitative summary in
    {!Kernel_info}, while this module keeps the explicit graph for
    inspection, dependence queries and the CLI's [compile] view. *)

type direction = Load | Store | Reduce_s
    (** [Reduce_s]: a store stream that accumulates (paper: reduction
        streams produce normal values consumed by the core). *)

type access =
  | Affine of Symaff.t list
      (** one index expression per array dimension, affine in the kernel's
          induction variables *)
  | Indexed of { index : string; via : Symaff.t list; rest : Symaff.t list }
      (** one-level indirect: the first array coordinate reads
          [index\[via\]], remaining coordinates are affine *)

type stream = {
  sname : string;  (** unique within the graph, e.g. ["A.ld0"] *)
  array : string;
  direction : direction;
  access : access;
  depends_on : string list;
      (** streams whose values flow into this one (loads feeding the store
          through the near-stream computation) *)
}

type t = {
  region : string;
  domain : (string * Symaff.t * Symaff.t) list;  (** (ivar, lo, hi) *)
  streams : stream list;
  ops : Op.t list;  (** near-stream computation, in evaluation order *)
}

val of_kernel : Ast.program -> Ast.kernel -> t
(** Decouple a kernel's accesses into streams. Never fails: every kernel
    has an sDFG (that is the point — near-memory handles what in-memory
    cannot). *)

val loads : t -> stream list
val stores : t -> stream list

val is_irregular : stream -> bool
(** Indirect access — inefficient for pure in-memory computing (§3.1). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
