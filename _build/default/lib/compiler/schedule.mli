(** Backend compilation of a tDFG: instruction scheduling and wordline
    register allocation (paper §3.4).

    Each SRAM array stores transposed elements vertically, so a
    256-wordline array holds 8 fp32 "registers" per bitline. Input/output
    arrays get persistent slots for the whole region; intermediate tensors
    are allocated by liveness (a local linear scan, cf. the paper's local
    register allocation). The schedule is computed once per SRAM geometry
    when building the fat binary, leaving only layout-dependent lowering to
    the JIT. *)

type instr = {
  node : Tdfg.id;
  dst_slot : int option;  (** [None] for no-op nodes (shrink) *)
}

type t = {
  order : instr list;  (** topological execution order of live nodes *)
  array_slots : (string * int) list;  (** persistent slot of each array *)
  slot_of_node : (Tdfg.id * int) list;
  slots_used : int;
  wordlines : int;
  capacity : int;  (** wordlines / element bits *)
  spilled : Tdfg.id list;
      (** nodes whose values live in conventional ways and move through
          spill streams (paper §6's limitation 3, relaxed here: "register
          spilling can be implemented by a stream writing back and loading
          from the DRAM") *)
}

val compile : ?allow_spill:bool -> wordlines:int -> Tdfg.t -> (t, string) result
(** [Error] on register spill unless [allow_spill] (default false), in
    which case overflow temporaries are assigned to spill streams. *)

val slot_of : t -> Tdfg.id -> int option
(** Slot holding a node's value (shrink nodes forward their input's);
    [None] also for spilled nodes. *)

val is_spilled : t -> Tdfg.id -> bool
