type instr = { node : Tdfg.id; dst_slot : int option }

type t = {
  order : instr list;
  array_slots : (string * int) list;
  slot_of_node : (Tdfg.id * int) list;
  slots_used : int;
  wordlines : int;
  capacity : int;
  spilled : Tdfg.id list;
}

let compile ?(allow_spill = false) ~wordlines g =
  let capacity = wordlines / Dtype.bits (Tdfg.dtype g) in
  let live = Tdfg.live_nodes g in
  (* Persistent slots only for arrays resident in transposed form: tensor
     views and tensor outputs. Stream-accessed arrays (strided/indirect
     sources, gather indices, scatter targets) stay in the conventional
     ways and are read/written by the stream engines. *)
  let resident =
    List.filter_map
      (fun id ->
        match Tdfg.kind g id with
        | Tdfg.Tensor { array; _ } -> Some array
        | _ -> None)
      live
    @ List.filter_map
        (function
          | Tdfg.Out_tensor { array; _ } -> Some array
          | Tdfg.Out_stream _ -> None)
        (Tdfg.outputs g)
    |> List.sort_uniq String.compare
  in
  let array_slots = List.mapi (fun i a -> (a, i)) resident in
  let base = List.length array_slots in
  (* Liveness: last use of each node among live consumers and outputs. *)
  let last_use = Hashtbl.create 32 in
  List.iter
    (fun id ->
      List.iter
        (fun input -> Hashtbl.replace last_use input id)
        (Tdfg.inputs_of (Tdfg.kind g id)))
    live;
  let out_sentinel = Tdfg.node_count g in
  List.iter
    (function
      | Tdfg.Out_tensor { src; _ } | Tdfg.Out_stream { src; _ } ->
        Hashtbl.replace last_use src out_sentinel)
    (Tdfg.outputs g);
  (* Linear scan over topological order. *)
  let free = ref [] in
  let next = ref base in
  let spilled = ref [] in
  let alloc id =
    match !free with
    | s :: rest ->
      free := rest;
      Some s
    | [] ->
      if allow_spill && !next >= capacity then begin
        (* no register left: this temporary lives in the conventional ways
           and moves through spill streams instead *)
        spilled := id :: !spilled;
        None
      end
      else begin
        let s = !next in
        incr next;
        Some s
      end
  in
  let slot_tbl : (Tdfg.id, int) Hashtbl.t = Hashtbl.create 32 in
  let release_if_dead current id =
    match Hashtbl.find_opt last_use id with
    | Some l when l = current -> (
      (* only temporaries are recycled; array-backed tensors stay put *)
      match Hashtbl.find_opt slot_tbl id with
      | Some s when s >= base -> free := s :: !free
      | _ -> ())
    | _ -> ()
  in
  let order = ref [] in
  List.iter
    (fun id ->
      let dst =
        match Tdfg.kind g id with
        | Tdfg.Tensor { array; _ } -> List.assoc_opt array array_slots
        | Tdfg.Const _ -> None
        | Tdfg.Shrink { input; _ } -> Hashtbl.find_opt slot_tbl input
        | Tdfg.Cmp _ | Tdfg.Mv _ | Tdfg.Bc _ | Tdfg.Reduce _ -> alloc id
        | Tdfg.Stream_load _ -> alloc id
      in
      (match dst with Some s -> Hashtbl.replace slot_tbl id s | None -> ());
      order := { node = id; dst_slot = dst } :: !order;
      (* inputs may die here *)
      List.iter (release_if_dead id) (Tdfg.inputs_of (Tdfg.kind g id)))
    live;
  let slots_used = !next in
  if slots_used > capacity && not allow_spill then
    Error
      (Printf.sprintf "register spill: %d slots needed, %d available (%d wordlines)"
         slots_used capacity wordlines)
  else
    Ok
      {
        order = List.rev !order;
        array_slots;
        slot_of_node = Hashtbl.fold (fun k v acc -> (k, v) :: acc) slot_tbl [];
        slots_used = min slots_used capacity;
        wordlines;
        capacity;
        spilled = List.rev !spilled;
      }

let slot_of t id = List.assoc_opt id t.slot_of_node
let is_spilled t id = List.mem id t.spilled
