type direction = Read | Write | Read_write

type stream = {
  array : string;
  direction : direction;
  indirect : bool;
  elem_bytes : int;
  accesses_per_iter : int;
  distinct : Symaff.t list option;
}

type t = {
  kname : string;
  loops : (Symaff.t * Symaff.t) list;
  flops_per_iter : int;
  streams : stream list;
  has_indirect : bool;
}

(* Distinct extent contributed by one index expression along one array
   dimension: Carried covers the loop range (plus offset spread handled by
   merging), Fixed covers one cell, a strided index covers stride * range. *)
let index_extent ~ivars (ranges : (string * (Symaff.t * Symaff.t)) list) = function
  | Ast.Indirect _ -> None
  | Ast.Aff a -> (
    let used = List.filter (fun v -> List.mem_assoc v ivars) (Symaff.vars a) in
    match used with
    | [] -> Some Symaff.one
    | [ v ] ->
      let lo, hi = List.assoc v ranges in
      let c = abs (Symaff.coeff a v) in
      Some (Symaff.scale c (Symaff.sub hi lo))
    | _ ->
      (* multiple ivars: conservatively the product of ranges *)
      Some
        (List.fold_left
           (fun acc v ->
             let lo, hi = List.assoc v ranges in
             ignore acc;
             Symaff.sub hi lo)
           Symaff.one used))

let merge_direction a b =
  match (a, b) with
  | Read, Read -> Read
  | Write, Write -> Write
  | _, _ -> Read_write

let analyze (p : Ast.program) (k : Ast.kernel) =
  let ivars = List.map (fun (l : Ast.loop) -> (l.ivar, ())) k.loops in
  let ivars = List.map fst ivars |> List.map (fun v -> (v, ())) in
  let ranges = List.map (fun (l : Ast.loop) -> (l.ivar, (l.lo, l.hi))) k.loops in
  let dtype_of array =
    match List.find_opt (fun (a : Ast.array_decl) -> a.aname = array) p.arrays with
    | Some a -> a.dtype
    | None -> Dtype.Fp32
  in
  (* accumulate accesses: (array, direction, indirect, distinct extents) *)
  let acc : (string, direction * bool * int * Symaff.t list option) Hashtbl.t =
    Hashtbl.create 8
  in
  let record array direction indirect extents =
    match Hashtbl.find_opt acc array with
    | None -> Hashtbl.replace acc array (direction, indirect, 1, extents)
    | Some (d0, i0, n0, e0) ->
      let merged_extents =
        match (e0, extents) with
        | None, _ | _, None -> None
        | Some a, Some b ->
          if List.length a = List.length b then
            Some (List.map2 (fun x y -> if Symaff.leq x y then y else x) a b)
          else None
      in
      Hashtbl.replace acc array
        (merge_direction d0 direction, i0 || indirect, n0 + 1, merged_extents)
  in
  let note array direction indices =
    let indirect =
      List.exists (function Ast.Indirect _ -> true | Ast.Aff _ -> false) indices
    in
    let extents =
      if indirect then None
      else begin
        let per_dim = List.map (index_extent ~ivars ranges) indices in
        if List.exists Option.is_none per_dim then None
        else Some (List.map Option.get per_dim)
      end
    in
    (* a gather's index array is itself streamed (read once per iteration) *)
    List.iter
      (function
        | Ast.Indirect { indices = iidx; array = idx } ->
          let idx_extents =
            let per_dim =
              List.map (fun a -> index_extent ~ivars ranges (Ast.Aff a)) iidx
            in
            if List.exists Option.is_none per_dim then None
            else Some (List.map Option.get per_dim)
          in
          record idx Read false idx_extents
        | Ast.Aff _ -> ())
      indices;
    record array direction indirect extents
  in
  List.iter
    (fun (st : Ast.kernel_stmt) ->
      let dir = match st.accum with Some _ -> Read_write | None -> Write in
      note st.target dir st.target_indices;
      List.iter (fun (a, ixs) -> note a Read ixs) (Ast.expr_loads st.rhs))
    k.body;
  let streams =
    Hashtbl.fold
      (fun array (direction, indirect, n, extents) out ->
        {
          array;
          direction;
          indirect;
          elem_bytes = Dtype.bytes (dtype_of array);
          accesses_per_iter = n;
          distinct = extents;
        }
        :: out)
      acc []
    |> List.sort compare
  in
  {
    kname = k.kname;
    loops = List.map (fun (l : Ast.loop) -> (l.lo, l.hi)) k.loops;
    flops_per_iter = Ast.kernel_flops_per_iter k;
    streams;
    has_indirect = Ast.kernel_has_indirect k;
  }

let iterations t env =
  List.fold_left
    (fun acc (lo, hi) -> acc * max 0 (Symaff.eval hi env - Symaff.eval lo env))
    1 t.loops

let stream_distinct_elems s env ~arrays =
  match s.distinct with
  | Some extents ->
    List.fold_left (fun acc e -> acc * max 1 (Symaff.eval e env)) 1 extents
  | None -> (
    match List.assoc_opt s.array arrays with
    | Some dims -> List.fold_left ( * ) 1 dims
    | None -> 1)
