(** Static compiler frontend: extract a tDFG from a mini-C kernel
    (paper §3.1–§3.3).

    Each kernel loop becomes one lattice dimension (outermost first).
    Unit-stride affine accesses unroll into tensor views aligned with
    explicit [mv]/[bc] nodes; accumulation across a loop absent from the
    target's indices becomes a [Reduce]; strided, rank-overflowing or
    indirect accesses fall back to embedded near-memory streams
    ([Stream_load] / [Out_stream]) exactly as §3.3 prescribes. *)

type error =
  | Unsupported of string
      (** the kernel cannot be represented as a tDFG at all *)
  | Invalid of string  (** malformed kernel (caught earlier by validation) *)

val extract :
  Ast.program -> Ast.kernel -> (Tdfg.t, error) result
(** Build the initial (unoptimized) tDFG for one kernel of the program.
    Host-loop variables and parameters appearing in bounds stay symbolic. *)

val array_extents : Ast.program -> (string * Symaff.t list) list
(** Symbolic extents of every declared array (context for the
    tensor-expansion rewrite and the layout engine). *)

val error_to_string : error -> string
