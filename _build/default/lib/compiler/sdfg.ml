type direction = Load | Store | Reduce_s

type access =
  | Affine of Symaff.t list
  | Indexed of { index : string; via : Symaff.t list; rest : Symaff.t list }

type stream = {
  sname : string;
  array : string;
  direction : direction;
  access : access;
  depends_on : string list;
}

type t = {
  region : string;
  domain : (string * Symaff.t * Symaff.t) list;
  streams : stream list;
  ops : Op.t list;
}

let access_of_indices indices =
  let rec split = function
    | [] -> Affine []
    | Ast.Indirect { array; indices = via } :: rest ->
      let rest_aff =
        List.map
          (function
            | Ast.Aff a -> a
            | Ast.Indirect _ -> Symaff.zero (* nested indirection: flattened *))
          rest
      in
      Indexed { index = array; via; rest = rest_aff }
    | Ast.Aff a :: rest -> (
      match split rest with
      | Affine xs -> Affine (a :: xs)
      | Indexed _ as ix -> ix (* indirection later: keep the indexed view *))
  in
  split indices

let of_kernel (_p : Ast.program) (k : Ast.kernel) =
  let counter = Hashtbl.create 8 in
  let fresh array suffix =
    let n = Option.value ~default:0 (Hashtbl.find_opt counter (array, suffix)) in
    Hashtbl.replace counter (array, suffix) (n + 1);
    Printf.sprintf "%s.%s%d" array suffix n
  in
  let streams = ref [] and ops = ref [] in
  List.iter
    (fun (st : Ast.kernel_stmt) ->
      let load_names =
        List.map
          (fun (array, indices) ->
            let sname = fresh array "ld" in
            streams :=
              {
                sname;
                array;
                direction = Load;
                access = access_of_indices indices;
                depends_on = [];
              }
              :: !streams;
            sname)
          (Ast.expr_loads st.rhs)
      in
      ops := !ops @ Ast.expr_ops st.rhs;
      (match st.accum with Some op -> ops := !ops @ [ op ] | None -> ());
      let sname = fresh st.target "st" in
      streams :=
        {
          sname;
          array = st.target;
          direction = (match st.accum with Some _ -> Reduce_s | None -> Store);
          access = access_of_indices st.target_indices;
          depends_on = load_names;
        }
        :: !streams)
    k.body;
  {
    region = k.kname;
    domain = List.map (fun (l : Ast.loop) -> (l.ivar, l.lo, l.hi)) k.loops;
    streams = List.rev !streams;
    ops = !ops;
  }

let loads t = List.filter (fun s -> s.direction = Load) t.streams
let stores t = List.filter (fun s -> s.direction <> Load) t.streams

let is_irregular s = match s.access with Indexed _ -> true | Affine _ -> false

let pp_access ppf = function
  | Affine xs ->
    List.iter (fun a -> Format.fprintf ppf "[%s]" (Symaff.to_string a)) xs
  | Indexed { index; via; rest } ->
    Format.fprintf ppf "[%s%s]" index
      (String.concat ""
         (List.map (fun a -> Printf.sprintf "[%s]" (Symaff.to_string a)) via));
    List.iter (fun a -> Format.fprintf ppf "[%s]" (Symaff.to_string a)) rest

let pp ppf t =
  Format.fprintf ppf "@[<v>sdfg %s over %s@," t.region
    (String.concat ", "
       (List.map
          (fun (v, lo, hi) ->
            Printf.sprintf "%s in [%s,%s)" v (Symaff.to_string lo)
              (Symaff.to_string hi))
          t.domain));
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-12s %s %s%a%s@," s.sname
        (match s.direction with
        | Load -> "load "
        | Store -> "store"
        | Reduce_s -> "red. ")
        s.array pp_access s.access
        (if s.depends_on = [] then ""
         else " <- " ^ String.concat ", " s.depends_on))
    t.streams;
  Format.fprintf ppf "  near-stream ops: %s@,"
    (String.concat " " (List.map Op.to_string t.ops));
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
