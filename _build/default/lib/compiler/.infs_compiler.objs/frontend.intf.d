lib/compiler/frontend.mli: Ast Symaff Tdfg
