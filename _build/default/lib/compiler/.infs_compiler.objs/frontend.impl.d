lib/compiler/frontend.ml: Array Ast Dtype Fun List Op Option Printf Symaff Symrect Tdfg Tdfg_eval
