lib/compiler/fat_binary.mli: Ast Extract Kernel_info Schedule Sdfg Symaff Tdfg
