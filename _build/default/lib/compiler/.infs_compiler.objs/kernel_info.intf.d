lib/compiler/kernel_info.mli: Ast Symaff
