lib/compiler/kernel_info.ml: Ast Dtype Hashtbl List Option Symaff
