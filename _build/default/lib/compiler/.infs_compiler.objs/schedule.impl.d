lib/compiler/schedule.ml: Dtype Hashtbl List Printf String Tdfg
