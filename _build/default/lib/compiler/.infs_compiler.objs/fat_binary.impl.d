lib/compiler/fat_binary.ml: Ast Dtype Extract Frontend Kernel_info List Printf Schedule Sdfg String Symaff Tdfg
