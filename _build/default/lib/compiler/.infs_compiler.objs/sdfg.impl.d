lib/compiler/sdfg.ml: Ast Format Hashtbl List Op Option Printf String Symaff
