lib/compiler/schedule.mli: Tdfg
