lib/compiler/sdfg.mli: Ast Format Op Symaff
