(** The infinity stream fat binary (paper Fig. 3, §3.4).

    The static compiler packages, for every kernel region: the initial and
    optimized tDFGs, the sDFG-level stream summary, wordline schedules for
    the common SRAM geometries (256x256 and 512x512 — "a small handful over
    many generations of hardware"), and layout hints for the runtime's
    tiling heuristics. Everything stays symbolic in the input sizes. *)

type hints = {
  shift_dims : int list;  (** lattice dims some tensor is shifted along *)
  bc_dims : int list;  (** lattice dims some tensor is broadcast along *)
  reduce_dims : int list;
  primary_array : string option;
      (** the output (or reduced) array whose tile size others follow *)
  aligned_arrays : string list;
      (** arrays that must share a tile size / be bitline-aligned *)
}

type region = {
  kernel : Ast.kernel;
  sdfg : Sdfg.t;
      (** the near-memory representation — both DFGs ship in the binary so
          the runtime can choose the offload target (§3.4) *)
  initial : Tdfg.t;
  optimized : Tdfg.t;
  info : Kernel_info.t;
  schedules : (int * Schedule.t) list;  (** per supported wordline count *)
  hints : hints;
  opt_stats : Extract.opt_stats;
  fallback : string option;
      (** populated when the kernel cannot be expressed as a tDFG; the
          region then only supports in-core / near-memory execution *)
}

type t = {
  prog : Ast.program;
  regions : region list;  (** in syntactic order, one per kernel *)
  extents : (string * Symaff.t list) list;
}

val sram_geometries : int list
(** Wordline counts the fat binary is scheduled for (256 and 512). *)

val compile : ?optimize:bool -> Ast.program -> (t, string) result
(** Run the full static pipeline: validate, extract each kernel, optimize
    via equality saturation (unless [optimize:false]), schedule, derive
    hints. Kernels that cannot be tensorized become fallback regions rather
    than failing the build. *)

val region_of : t -> string -> region option
(** Find a region by kernel name. *)

val derive_hints : Tdfg.t -> hints
