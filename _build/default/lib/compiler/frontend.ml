type error = Unsupported of string | Invalid of string

let error_to_string = function
  | Unsupported s -> "unsupported: " ^ s
  | Invalid s -> "invalid: " ^ s

let array_extents (p : Ast.program) =
  List.map (fun (a : Ast.array_decl) -> (a.aname, a.dims)) p.arrays

(* How one affine index relates to the kernel's lattice. *)
type index_class =
  | Carried of int * int  (** (lattice dim, constant offset): index = ivar + c *)
  | Fixed of Symaff.t  (** no induction variable involved *)
  | Strided  (** needs a stream *)

let classify_index ~ivars a =
  let used = List.filter (fun v -> List.mem_assoc v ivars) (Symaff.vars a) in
  match used with
  | [] -> Fixed a
  | [ v ] when Symaff.coeff a v = 1 ->
    let rest = Symaff.subst a v Symaff.zero in
    (match Symaff.is_const rest with
    | Some off -> Carried (List.assoc v ivars, off)
    | None -> Strided)
  | _ -> Strided

(* Rename kernel induction variables to lattice coordinate names d0..dN-1
   for stream coordinate expressions. *)
let to_lattice_coords ~ivars a =
  List.fold_left
    (fun acc (v, d) -> Symaff.subst acc v (Symaff.var (Tdfg_eval.lattice_var d)))
    a ivars

exception Fail of error

let fail fmt = Printf.ksprintf (fun s -> raise (Fail (Unsupported s))) fmt

type ctx = {
  g : Tdfg.t;
  ivars : (string * int) list;  (** kernel ivar -> lattice dim *)
  ranges : (Symaff.t * Symaff.t) array;  (** iteration range per lattice dim *)
  decls : (string * Ast.array_decl) list;
}

let iteration_rect ctx = Symrect.make (Array.to_list ctx.ranges)

let rank_of ctx array =
  match List.assoc_opt array ctx.decls with
  | Some d -> List.length d.Ast.dims
  | None -> fail "undeclared array %s" array

(* Build a near-memory load stream for an access that cannot be unrolled
   into an aligned tensor view. *)
let stream_load ctx array indices =
  let coords =
    List.map
      (fun ix ->
        match ix with
        | Ast.Aff a -> Tdfg.Caff (to_lattice_coords ~ivars:ctx.ivars a)
        | Ast.Indirect { array = index; indices = at } ->
          Tdfg.Cgather
            { index; at = List.map (to_lattice_coords ~ivars:ctx.ivars) at })
      indices
  in
  Tdfg.add ctx.g (Tdfg.Stream_load { array; view = iteration_rect ctx; coords })

(* Try to unroll an affine access into tensor + mv + bc. *)
let tensorize_load ctx array indices =
  let n = Array.length ctx.ranges in
  let classes =
    List.map
      (function
        | Ast.Aff a -> classify_index ~ivars:ctx.ivars a
        | Ast.Indirect _ -> Strided)
      indices
  in
  if List.exists (fun c -> c = Strided) classes then None
  else begin
    (* Assign lattice dimensions: carried dims are fixed by their ivar;
       Fixed dims take free lattice dimensions greedily. *)
    let taken = Array.make n false in
    let carried_ok =
      List.for_all
        (function
          | Carried (d, _) ->
            if taken.(d) then false
            else begin
              taken.(d) <- true;
              true
            end
          | Fixed _ | Strided -> true)
        classes
    in
    if not carried_ok then None
    else begin
      let next_free () =
        let rec go d =
          if d >= n then None
          else if taken.(d) then go (d + 1)
          else begin
            taken.(d) <- true;
            Some d
          end
        in
        go 0
      in
      let assigned =
        List.map
          (function
            | Carried (d, off) -> Some (`Carried (d, off))
            | Fixed e -> (
              match next_free () with
              | Some d -> Some (`Fixed (d, e))
              | None -> None)
            | Strided -> None)
          classes
      in
      if List.exists Option.is_none assigned then None
      else begin
        let assigned = List.map Option.get assigned in
        (* View in array coordinates; bc/mv bring it to iteration space. *)
        let view = Array.make n (Symaff.zero, Symaff.one) in
        Array.iteri
          (fun d (lo, _) -> view.(d) <- (lo, Symaff.add_const lo 1))
          ctx.ranges;
        List.iter
          (fun a ->
            match a with
            | `Carried (d, off) ->
              let lo, hi = ctx.ranges.(d) in
              view.(d) <- (Symaff.add_const lo off, Symaff.add_const hi off)
            | `Fixed (d, e) -> view.(d) <- (e, Symaff.add_const e 1))
          assigned;
        let axes =
          List.map (function `Carried (d, _) | `Fixed (d, _) -> d) assigned
        in
        let view = Symrect.make (Array.to_list view) in
        let id = ref (Tdfg.tensor ctx.g ~array ~view ~axes) in
        (* Align carried offsets with mv nodes. *)
        List.iter
          (function
            | `Carried (d, off) when off <> 0 ->
              id := Tdfg.mv ctx.g !id ~dim:d ~dist:(-off)
            | `Carried _ | `Fixed _ -> ())
          assigned;
        (* Broadcast fixed and unused dimensions over the iteration range
           (skip when the range is already a single cell). *)
        let covered = Array.make n false in
        List.iter
          (function `Carried (d, _) -> covered.(d) <- true | `Fixed _ -> ())
          assigned;
        for d = 0 to n - 1 do
          if not covered.(d) then begin
            let lo, hi = ctx.ranges.(d) in
            if not (Symaff.equal (Symaff.add_const lo 1) hi) then
              id := Tdfg.bc ctx.g !id ~dim:d ~lo ~hi
          end
        done;
        Some !id
      end
    end
  end

let load_node ctx array indices =
  if rank_of ctx array <> List.length indices then
    raise (Fail (Invalid (Printf.sprintf "rank mismatch on %s" array)));
  match tensorize_load ctx array indices with
  | Some id -> id
  | None -> stream_load ctx array indices

let rec expr_node ctx = function
  | Ast.Load { array; indices } -> load_node ctx array indices
  | Ast.Float_const f -> Tdfg.const_lit ctx.g f
  | Ast.Scalar s -> Tdfg.const_runtime ctx.g s
  | Ast.Binop (op, a, b) ->
    (* evaluate left-to-right so node creation order (= schedule order)
       interleaves subexpressions, keeping register pressure low *)
    let ia = expr_node ctx a in
    let ib = expr_node ctx b in
    Tdfg.cmp ctx.g op [ ia; ib ]
  | Ast.Unop (op, a) -> Tdfg.cmp ctx.g op [ expr_node ctx a ]

(* Materialize an infinite-domain (constant) node over the iteration
   domain so it can feed an output. *)
let materialize ctx id =
  match Tdfg.domain ctx.g id with
  | Tdfg.Finite _ -> id
  | Tdfg.Infinite -> Tdfg.shrink ctx.g id ~rect:(iteration_rect ctx)

let process_stmt ctx (st : Ast.kernel_stmt) =
  let rhs = expr_node ctx st.rhs in
  let has_indirect =
    List.exists (function Ast.Indirect _ -> true | Ast.Aff _ -> false)
      st.target_indices
  in
  let target_classes =
    List.map
      (function
        | Ast.Aff a -> Some (classify_index ~ivars:ctx.ivars a)
        | Ast.Indirect _ -> None)
      st.target_indices
  in
  let strided_target =
    List.exists (function Some Strided -> true | _ -> false) target_classes
  in
  if has_indirect || strided_target then begin
    (* Near-memory store stream (scatter / strided store). *)
    let coords =
      List.map
        (function
          | Ast.Aff a -> Tdfg.Caff (to_lattice_coords ~ivars:ctx.ivars a)
          | Ast.Indirect { array = index; indices = at } ->
            Tdfg.Cgather
              { index; at = List.map (to_lattice_coords ~ivars:ctx.ivars) at })
        st.target_indices
    in
    let src = materialize ctx rhs in
    Tdfg.add_output ctx.g
      (Tdfg.Out_stream { src; array = st.target; coords; accum = st.accum })
  end
  else begin
    let n = Array.length ctx.ranges in
    let assigns =
      List.map
        (function
          | Some (Carried (d, off)) -> `Carried (d, off)
          | Some (Fixed e) -> `Fixed e
          | Some Strided | None -> fail "unreachable target class")
        target_classes
    in
    let covered = Array.make n false in
    List.iter
      (function `Carried (d, _) -> covered.(d) <- true | `Fixed _ -> ())
      assigns;
    (* Loops absent from the target: reduction dimensions. *)
    let missing = List.filter (fun d -> not covered.(d)) (List.init n Fun.id) in
    let reduced, reduce_op =
      match (missing, st.accum) with
      | [], _ -> (materialize ctx rhs, None)
      | _ :: _, Some op when Op.is_associative op ->
        let id =
          List.fold_left
            (fun id d -> Tdfg.reduce ctx.g op (materialize ctx id) ~dim:d)
            rhs missing
        in
        (id, Some op)
      | _ :: _, Some op ->
        fail "reduction with non-associative op %s" (Op.to_string op)
      | _ :: _, None -> fail "target %s ignores a loop without accumulation" st.target
    in
    (* Offsets on stored indices move the result into array position. *)
    let positioned =
      List.fold_left
        (fun id a ->
          match a with
          | `Carried (d, off) when off <> 0 -> Tdfg.mv ctx.g id ~dim:d ~dist:off
          | `Carried _ | `Fixed _ -> id)
        reduced assigns
    in
    (* Lattice dims carrying the target's array dims, in array-dim order.
       A fixed target coordinate (e.g. the reduction cell [S\[0\]]) is
       assigned to a reduced (missing) lattice dimension, whose anchored
       position must provably equal the fixed coordinate. *)
    let free_missing = ref missing in
    let axes =
      List.map
        (function
          | `Carried (d, _) -> d
          | `Fixed e -> (
            match !free_missing with
            | d :: rest ->
              let lo, _ = ctx.ranges.(d) in
              if Symaff.equal e lo then begin
                free_missing := rest;
                d
              end
              else
                fail "fixed store coordinate %s of %s differs from anchor %s"
                  (Symaff.to_string e) st.target (Symaff.to_string lo)
            | [] -> fail "store to a fixed coordinate of %s" st.target))
        assigns
    in
    let final =
      match (st.accum, reduce_op) with
      | None, _ -> positioned
      | Some op, _ ->
        (* target op= rhs : read the old tensor and combine. Old value must
           align with the (possibly reduced) rhs domain: carried dims span
           their iteration range, reduced dims sit at their low bound. *)
        let view = Array.make n (Symaff.zero, Symaff.one) in
        Array.iteri
          (fun d (lo, hi) ->
            if covered.(d) then view.(d) <- (lo, hi)
            else view.(d) <- (lo, Symaff.add_const lo 1))
          ctx.ranges;
        let old_view =
          (* offsets on accumulating targets must be zero for alignment *)
          List.iter
            (function
              | `Carried (_, off) when off <> 0 ->
                fail "accumulating store with a shifted index"
              | `Carried _ | `Fixed _ -> ())
            assigns;
          Symrect.make (Array.to_list view)
        in
        let old_id = Tdfg.tensor ctx.g ~array:st.target ~view:old_view ~axes in
        Tdfg.cmp ctx.g op [ old_id; positioned ]
    in
    Tdfg.add_output ctx.g (Tdfg.Out_tensor { src = final; array = st.target; axes })
  end

let extract (p : Ast.program) (k : Ast.kernel) =
  let n = List.length k.loops in
  if n = 0 then Error (Invalid "kernel with no loops")
  else if n > 3 then Error (Unsupported "kernels beyond 3 dimensions")
  else begin
    let ivars = List.mapi (fun d (l : Ast.loop) -> (l.ivar, d)) k.loops in
    (* Loop bounds must not depend on sibling kernel ivars (the iteration
       domain must be a hyperrectangle). *)
    let bound_ok (l : Ast.loop) =
      List.for_all
        (fun v -> not (List.mem_assoc v ivars))
        (Symaff.vars l.lo @ Symaff.vars l.hi)
    in
    if not (List.for_all bound_ok k.loops) then
      Error (Unsupported "non-hyperrectangular iteration domain")
    else begin
      let ranges =
        Array.of_list (List.map (fun (l : Ast.loop) -> (l.lo, l.hi)) k.loops)
      in
      let g =
        Tdfg.create ~name:k.kname ~dims:n
          ~dtype:
            (match p.arrays with
            | a :: _ -> a.Ast.dtype
            | [] -> Dtype.Fp32)
      in
      let ctx =
        { g; ivars; ranges; decls = List.map (fun (a : Ast.array_decl) -> (a.aname, a)) p.arrays }
      in
      try
        List.iter (process_stmt ctx) k.body;
        match Tdfg.validate g with
        | Ok () -> Ok g
        | Error e -> Error (Invalid e)
      with
      | Fail e -> Error e
      | Failure msg -> Error (Unsupported msg)
    end
  end
