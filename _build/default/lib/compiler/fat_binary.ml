type hints = {
  shift_dims : int list;
  bc_dims : int list;
  reduce_dims : int list;
  primary_array : string option;
  aligned_arrays : string list;
}

type region = {
  kernel : Ast.kernel;
  sdfg : Sdfg.t;
  initial : Tdfg.t;
  optimized : Tdfg.t;
  info : Kernel_info.t;
  schedules : (int * Schedule.t) list;
  hints : hints;
  opt_stats : Extract.opt_stats;
  fallback : string option;
}

type t = {
  prog : Ast.program;
  regions : region list;
  extents : (string * Symaff.t list) list;
}

let sram_geometries = [ 256; 512 ]

let derive_hints g =
  let live = Tdfg.live_nodes g in
  let shift = ref [] and bcast = ref [] and red = ref [] in
  List.iter
    (fun id ->
      match Tdfg.kind g id with
      | Tdfg.Mv { dim; dist; _ } when dist <> 0 -> shift := dim :: !shift
      | Tdfg.Bc { dim; _ } -> bcast := dim :: !bcast
      | Tdfg.Reduce { dim; _ } -> red := dim :: !red
      | _ -> ())
    live;
  let primary =
    (* the reduced array when there is a reduction, otherwise the output *)
    match Tdfg.outputs g with
    | Tdfg.Out_tensor { array; _ } :: _ -> Some array
    | Tdfg.Out_stream { array; _ } :: _ -> Some array
    | [] -> None
  in
  {
    shift_dims = List.sort_uniq compare !shift;
    bc_dims = List.sort_uniq compare !bcast;
    reduce_dims = List.sort_uniq compare !red;
    primary_array = primary;
    aligned_arrays =
      List.sort_uniq String.compare (Tdfg.input_arrays g @ Tdfg.output_arrays g);
  }

let empty_hints =
  {
    shift_dims = [];
    bc_dims = [];
    reduce_dims = [];
    primary_array = None;
    aligned_arrays = [];
  }

let compile_region ~optimize ~extents prog (k : Ast.kernel) =
  let info = Kernel_info.analyze prog k in
  let sdfg = Sdfg.of_kernel prog k in
  match Frontend.extract prog k with
  | Error e ->
    let g = Tdfg.create ~name:k.kname ~dims:1 ~dtype:Dtype.Fp32 in
    {
      kernel = k;
      sdfg;
      initial = g;
      optimized = g;
      info;
      schedules = [];
      hints = empty_hints;
      opt_stats = { Extract.rounds = 0; cost_before = 0.0; cost_after = 0.0 };
      fallback = Some (Frontend.error_to_string e);
    }
  | Ok initial ->
    let optimized, opt_stats =
      if optimize then Extract.optimize ~arrays:extents initial
      else (initial, { Extract.rounds = 0; cost_before = 0.0; cost_after = 0.0 })
    in
    let schedules =
      List.filter_map
        (fun wl ->
          match Schedule.compile ~wordlines:wl optimized with
          | Ok s -> Some (wl, s)
          | Error _ -> None)
        sram_geometries
    in
    (* If the optimized graph spills everywhere, fall back to the initial
       tDFG (which allocates fewer temporaries), then to spilling schedules
       (the §6 limitation-3 extension). *)
    let optimized, schedules =
      if schedules = [] then
        ( initial,
          List.filter_map
            (fun wl ->
              match Schedule.compile ~wordlines:wl initial with
              | Ok s -> Some (wl, s)
              | Error _ -> None)
            sram_geometries )
      else (optimized, schedules)
    in
    let optimized, schedules =
      if schedules = [] then
        ( optimized,
          List.filter_map
            (fun wl ->
              match Schedule.compile ~allow_spill:true ~wordlines:wl optimized with
              | Ok s -> Some (wl, s)
              | Error _ -> None)
            sram_geometries )
      else (optimized, schedules)
    in
    let fallback =
      if schedules = [] then Some "register spill on all SRAM geometries"
      else None
    in
    {
      kernel = k;
      sdfg;
      initial;
      optimized;
      info;
      schedules;
      hints = derive_hints optimized;
      opt_stats;
      fallback;
    }

let compile ?(optimize = true) prog =
  match Ast.validate prog with
  | Error e -> Error (Printf.sprintf "program %s: %s" prog.Ast.name e)
  | Ok () ->
    let extents = Frontend.array_extents prog in
    let regions =
      List.map (compile_region ~optimize ~extents prog) (Ast.kernels prog)
    in
    Ok { prog; regions; extents }

let region_of t name =
  List.find_opt (fun r -> r.kernel.Ast.kname = name) t.regions
