(** Stream-level analysis of a kernel (the sDFG view, paper §3.1).

    This summary drives the in-core ([Base]) and near-memory ([Near-L3])
    performance models and the runtime's in-/near-memory decision: which
    arrays stream in/out, how much reuse each stream has (distinct elements
    vs accesses), whether accesses are indirect, and the arithmetic
    intensity of one iteration. *)

type direction = Read | Write | Read_write

type stream = {
  array : string;
  direction : direction;
  indirect : bool;
  elem_bytes : int;
  accesses_per_iter : int;  (** how many accesses per kernel iteration *)
  distinct : Symaff.t list option;
      (** symbolic extents of the distinct region touched (per array dim);
          [None] when it cannot be bounded (indirect) and the whole array
          must be assumed *)
}

type t = {
  kname : string;
  loops : (Symaff.t * Symaff.t) list;  (** iteration ranges, outermost first *)
  flops_per_iter : int;
  streams : stream list;
  has_indirect : bool;
}

val analyze : Ast.program -> Ast.kernel -> t

val iterations : t -> (string -> int) -> int
(** Concrete iteration count of the kernel under an environment. *)

val stream_distinct_elems : stream -> (string -> int) -> arrays:(string * int list) list -> int
(** Concrete distinct element count of one stream ([arrays] gives concrete
    array extents for the [None] fallback). *)
