(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§8) on the simulated machine, plus Bechamel micro-benchmarks
   of the framework's own hot paths (JIT lowering, e-graph saturation,
   tensor decomposition).

   Absolute cycle counts come from this repository's architectural
   simulator, not gem5 — EXPERIMENTS.md records the paper-vs-measured
   comparison; the shapes (who wins, by roughly what factor, where the
   crossovers fall) are the reproduction target. *)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report
module WL = Infinity_stream.Workload
module Cat = Infs_workloads.Catalog

let cfg = Machine_config.default

(* ---- report cache: each (workload, paradigm, options-tag) simulated once

   Mutex-guarded: the prewarm phase fills it from the worker pool's
   domains, the figure code then reads it sequentially. Two domains racing
   on the same key both simulate — the engine is deterministic, so either
   result is the result. *)

let cache : (string, R.t) Hashtbl.t = Hashtbl.create 64
let cache_mu = Mutex.create ()

(* The suite runs warm: the paper assumes working sets are resident in the
   L3 ("input data already tiled to fit", §6); in-memory configurations
   still pay layout transposition. Compiled fat binaries are shared across
   runs through the engine's process-wide compile cache. *)
let suite_options = { E.default_options with warm_data = true; share_compile = true }

let run ?(tag = "") ?(options = suite_options) p (w : WL.t) =
  let key = Printf.sprintf "%s|%s|%s" w.wname (E.paradigm_to_string p) tag in
  match Mutex.protect cache_mu (fun () -> Hashtbl.find_opt cache key) with
  | Some r -> r
  | None ->
    let r = E.run_exn ~options p w in
    Mutex.protect cache_mu (fun () -> Hashtbl.replace cache key r);
    r

let paradigms_fig11 = [ E.Base; E.Near_l3; E.In_l3; E.Inf_s; E.Inf_s_nojit ]

(* ---- multicore prewarm (--jobs N): simulate the suite's (workload,
   paradigm) grid on the pool before the figure code reads it back out of
   the cache; results are identical to sequential runs (the engine is
   deterministic and per-run isolated), only the wall-clock changes. *)

let bench_jobs = ref 1

let prewarm ?(fig2 = false) entries =
  let grid =
    List.concat_map
      (fun (_, w) ->
        List.map (fun p -> ("", suite_options, p, w)) paradigms_fig11)
      (Cat.all_variants entries)
  in
  let fig2_grid =
    if not fig2 then []
    else
      let options =
        {
          E.default_options with
          warm_data = true;
          pre_transposed = true;
          charge_jit = false;
          share_compile = true;
        }
      in
      List.concat_map
        (fun mk ->
          List.concat_map
            (fun size ->
              List.map
                (fun p -> ("warm", options, p, mk size))
                [ E.Base_1; E.Base; E.Near_l3; E.In_l3 ])
            Infs_workloads.Micro.fig2_sizes)
        [
          (fun n -> Infs_workloads.Micro.vec_add ~n);
          (fun n -> Infs_workloads.Micro.array_sum ~n);
        ]
  in
  let specs = grid @ fig2_grid in
  let t0 = Unix.gettimeofday () in
  let outcomes =
    Pool.run_list ~jobs:!bench_jobs
      (List.map (fun (tag, options, p, w) -> fun () -> ignore (run ~tag ~options p w)) specs)
  in
  List.iter
    (function Ok () -> () | Error e -> failwith ("prewarm: " ^ Pool.error_to_string e))
    outcomes;
  let hits, misses, _ = E.compile_cache_stats () in
  Printf.printf
    "prewarm: %d runs on %d domain%s in %.2f s (compile cache: %d hits / %d misses)\n\n"
    (List.length specs) !bench_jobs
    (if !bench_jobs = 1 then "" else "s")
    (Unix.gettimeofday () -. t0)
    hits misses

(* best dataflow variant per paradigm, as the paper does for Fig. 11/12 *)
let best_variant p (e : Cat.entry) =
  List.fold_left
    (fun (bw, bc) (_, w) ->
      let c = (run p w).R.cycles in
      match bw with
      | Some _ when c >= bc -> (bw, bc)
      | _ -> (Some w, c))
    (None, infinity) e.variants
  |> fun (w, _) -> Option.get w

(* ---------- header: Table 2 + Eq. 1 ---------- *)

let print_header () =
  let t = Table.create ~title:"Table 2 - system parameters (simulated)" ~columns:[ "parameter"; "value" ] in
  Table.add_row t [ "cores / mesh"; Printf.sprintf "%d (%dx%d)" cfg.cores cfg.mesh_x cfg.mesh_y ];
  Table.add_row t [ "L3 banks x ways x arrays"; Printf.sprintf "%dx%dx%d" cfg.l3_banks cfg.l3_ways cfg.arrays_per_way ];
  Table.add_row t [ "SRAM array"; Printf.sprintf "%dx%d (8kB)" cfg.sram_wordlines cfg.sram_bitlines ];
  Table.add_row t
    [ "total L3"; Printf.sprintf "%d MB"
        (cfg.l3_banks * cfg.l3_ways * cfg.arrays_per_way * 8192 / 1024 / 1024) ];
  Table.add_row t [ "compute bitlines"; string_of_int (Machine_config.total_bitlines cfg) ];
  Table.add_row t [ "DRAM"; Printf.sprintf "%.1f GB/s" cfg.dram_gbps ];
  Table.print t;
  let t = Table.create ~title:"Eq. 1 - peak in-memory throughput" ~columns:[ "metric"; "value" ] in
  let peak = Machine_config.peak_imc_ops_per_cycle cfg ~dtype:Dtype.Int32 ~op:Op.Add in
  Table.add_row t [ "int32 add ops/cycle"; Table.fmt_float peak ];
  Table.add_row t [ "SIMD baseline ops/cycle"; Table.fmt_float (Machine_config.peak_simd_flops_per_cycle cfg) ];
  Table.add_row t [ "peak ratio"; Table.fmt_float (peak /. Machine_config.peak_simd_flops_per_cycle cfg) ];
  Table.print t

(* ---------- Fig. 2: paradigm speedups on microbenchmarks ---------- *)

let fig2 () =
  (* data resident in L3 and pre-transposed, JIT precompiled (Fig. 2's
     stated assumptions) *)
  let options =
    {
      E.default_options with
      warm_data = true;
      pre_transposed = true;
      charge_jit = false;
      share_compile = true;
    }
  in
  let t =
    Table.create ~title:"Fig 2 - paradigm speedup over Base-Thread-1 (fp32, warm)"
      ~columns:[ "benchmark"; "Base-Thread-1"; "Base-Thread-64"; "Near-L3"; "In-L3" ]
  in
  List.iter
    (fun (mk, name) ->
      List.iter
        (fun size ->
          let w = mk size in
          let base1 = run ~tag:"warm" ~options E.Base_1 w in
          let s p = R.speedup ~baseline:base1 (run ~tag:"warm" ~options p w) in
          let row = [ s E.Base_1; s E.Base; s E.Near_l3; s E.In_l3 ] in
          ignore
            (Table.add_float_row t
               (Printf.sprintf "%s/%dk" name (size / 1024))
               row))
        Infs_workloads.Micro.fig2_sizes)
    [ ((fun n -> Infs_workloads.Micro.vec_add ~n), "vec_add");
      ((fun n -> Infs_workloads.Micro.array_sum ~n), "array_sum") ];
  Table.print t

(* ---------- Fig. 11 / 12 / 13 / 14 / 18: the main suite ---------- *)

let fig11 entries =
  let t =
    Table.create ~title:"Fig 11 - overall speedup over Base (best dataflow per config)"
      ~columns:("workload" :: List.map E.paradigm_to_string paradigms_fig11)
  in
  let per_paradigm = Hashtbl.create 8 in
  List.iter
    (fun (e : Cat.entry) ->
      let base_w = best_variant E.Base e in
      let base = run E.Base base_w in
      let row =
        List.map
          (fun p ->
            let w = best_variant p e in
            let s = R.speedup ~baseline:base (run p w) in
            Hashtbl.replace per_paradigm p
              (s :: Option.value ~default:[] (Hashtbl.find_opt per_paradigm p));
            s)
          paradigms_fig11
      in
      ignore (Table.add_float_row t e.label row))
    entries;
  let geo =
    List.map
      (fun p -> Stats.geomean (Option.value ~default:[] (Hashtbl.find_opt per_paradigm p)))
      paradigms_fig11
  in
  ignore (Table.add_float_row t "geomean" geo);
  Table.print t

let fig12 entries =
  let t =
    Table.create
      ~title:"Fig 12 - NoC byte-hops (normalized to Base) and utilization"
      ~columns:[ "workload"; "config"; "control"; "data"; "offload"; "total"; "util" ]
  in
  List.iter
    (fun (e : Cat.entry) ->
      let base = run E.Base (best_variant E.Base e) in
      let base_total = List.fold_left (fun a (_, v) -> a +. v) 0.0 base.R.noc_byte_hops in
      List.iter
        (fun p ->
          let r = run p (best_variant p e) in
          let g k = List.assoc k r.R.noc_byte_hops /. Float.max 1.0 base_total in
          Table.add_row t
            [
              e.label;
              r.paradigm;
              Table.fmt_float (g "control");
              Table.fmt_float (g "data" +. g "inter-tile");
              Table.fmt_float (g "offload");
              Table.fmt_float (g "control" +. g "data" +. g "inter-tile" +. g "offload");
              Table.fmt_float r.noc_utilization;
            ])
        [ E.Base; E.Near_l3; E.Inf_s ])
    entries;
  Table.print t

let fig13 entries =
  let t =
    Table.create ~title:"Fig 13 - Inf-S data movement breakdown (byte fractions)"
      ~columns:
        [ "workload"; "intra-tile"; "htree"; "noc-inter-tile"; "noc-data"; "noc-offload"; "noc-control" ]
  in
  List.iter
    (fun (label, w) ->
      let r = run E.Inf_s w in
      let local k = List.assoc k r.R.local_bytes in
      let noc k = List.assoc k r.R.noc_bytes in
      let total =
        local "intra-tile" +. local "htree" +. noc "inter-tile" +. noc "data"
        +. noc "offload" +. noc "control"
      in
      let f x = x /. Float.max 1.0 total in
      ignore
        (Table.add_float_row t label
           [
             f (local "intra-tile"); f (local "htree"); f (noc "inter-tile");
             f (noc "data"); f (noc "offload"); f (noc "control");
           ]))
    (Cat.all_variants entries);
  Table.print t

let fig14 entries =
  let t =
    Table.create ~title:"Fig 14 - Inf-S cycle breakdown (fractions) + in-mem op %"
      ~columns:
        [ "workload"; "DRAM"; "JIT"; "Move"; "Compute"; "FinalRed"; "Mix"; "NearMem"; "Core"; "inmem%" ]
  in
  let sums = Array.make 8 0.0 and count = ref 0 in
  List.iter
    (fun (label, w) ->
      let r = run E.Inf_s w in
      let total = Float.max 1.0 r.R.cycles in
      let fracs =
        List.map (fun (_, v) -> v /. total) (Breakdown.to_assoc r.R.breakdown)
      in
      List.iteri (fun i v -> sums.(i) <- sums.(i) +. v) fracs;
      incr count;
      ignore
        (Table.add_float_row t label (fracs @ [ 100.0 *. r.in_mem_op_fraction ])))
    (Cat.all_variants entries);
  ignore
    (Table.add_float_row t "avg"
       (Array.to_list (Array.map (fun s -> s /. float_of_int (max 1 !count)) sums)));
  Table.print t

let fig18 entries =
  let t =
    Table.create ~title:"Fig 18 - energy efficiency over Base (higher is better)"
      ~columns:[ "workload"; "Base"; "Near-L3"; "In-L3"; "Inf-S"; "Inf-S-noJIT" ]
  in
  let per = Hashtbl.create 8 in
  List.iter
    (fun (e : Cat.entry) ->
      let base = run E.Base (best_variant E.Base e) in
      let row =
        List.map
          (fun p ->
            let r = run p (best_variant p e) in
            let eff = R.energy_efficiency ~baseline:base r in
            Hashtbl.replace per p (eff :: Option.value ~default:[] (Hashtbl.find_opt per p));
            eff)
          paradigms_fig11
      in
      ignore (Table.add_float_row t e.label row))
    entries;
  ignore
    (Table.add_float_row t "geomean"
       (List.map
          (fun p -> Stats.geomean (Option.value ~default:[] (Hashtbl.find_opt per p)))
          paradigms_fig11));
  Table.print t

(* ---------- Fig. 15: dataflow choices ---------- *)

let fig15 () =
  let t =
    Table.create ~title:"Fig 15 - inner vs outer product (speedup over Base w/ inner)"
      ~columns:[ "workload"; "Base-In"; "Base-Out"; "Near-In"; "Near-Out"; "InfS-In"; "InfS-Out" ]
  in
  List.iter
    (fun (e : Cat.entry) ->
      match (List.assoc_opt "in" e.variants, List.assoc_opt "out" e.variants) with
      | Some w_in, Some w_out ->
        let base = run E.Base w_in in
        let s p w = R.speedup ~baseline:base (run p w) in
        ignore
          (Table.add_float_row t e.label
             [
               s E.Base w_in; s E.Base w_out;
               s E.Near_l3 w_in; s E.Near_l3 w_out;
               s E.Inf_s w_in; s E.Inf_s w_out;
             ])
      | _ -> ())
    (List.filter (fun (e : Cat.entry) -> List.length e.variants = 2) (Cat.table3 ()));
  Table.print t

(* ---------- Fig. 16 / 17: tile-size sweeps ---------- *)

let sweep_2d () =
  let tiles =
    [ [| 1; 256 |]; [| 2; 128 |]; [| 4; 64 |]; [| 8; 32 |]; [| 16; 16 |];
      [| 32; 8 |]; [| 64; 4 |]; [| 128; 2 |]; [| 256; 1 |] ]
  in
  let t =
    Table.create
      ~title:"Fig 16 - Inf-S cycles vs 2D tile size (normalized to heuristic pick)"
      ~columns:
        (("workload"
         :: List.map (fun tl -> Printf.sprintf "%dx%d" tl.(0) tl.(1)) tiles)
        @ [ "best"; "heur/oracle" ])
  in
  let ratios = ref [] in
  List.iter
    (fun (label, w) ->
      let heuristic = (run E.Inf_s w).R.cycles in
      let cells =
        List.map
          (fun tile ->
            let options = { suite_options with E.tile_override = Some tile } in
            (run ~tag:(Printf.sprintf "t%dx%d" tile.(0) tile.(1)) ~options E.Inf_s w)
              .R.cycles)
          tiles
      in
      let best = List.fold_left Float.min heuristic cells in
      let best_name =
        let rec find ts cs =
          match (ts, cs) with
          | tl :: _, c :: _ when c = best -> Printf.sprintf "%dx%d" tl.(0) tl.(1)
          | _ :: ts, _ :: cs -> find ts cs
          | _ -> "heuristic"
        in
        find tiles cells
      in
      ratios := (heuristic /. best) :: !ratios;
      Table.add_row t
        ((label :: List.map (fun c -> Table.fmt_float (c /. heuristic)) cells)
        @ [ best_name; Table.fmt_float (heuristic /. best) ]))
    [
      ("stencil2d", Infs_workloads.Stencil.stencil2d ~iters:10 ~n:2048);
      ("dwt2d", Infs_workloads.Dwt2d.dwt2d ~n:2048);
      ("gauss_elim", Infs_workloads.Gauss.gauss_elim ~n:2048);
      ("conv2d", Infs_workloads.Conv.conv2d ~n:2048);
      ("mm/out", Infs_workloads.Mm.mm_outer ~n:2048);
    ];
  Table.print t;
  Printf.printf
    "worst-case heuristic gap vs tile-size oracle: %.1f%% (paper: within 2%%)\n\n"
    (100.0 *. (List.fold_left Float.max 1.0 !ratios -. 1.0))

let sweep_3d () =
  let tiles =
    [ [| 1; 16; 16 |]; [| 4; 8; 8 |]; [| 16; 4; 4 |]; [| 1; 2; 128 |];
      [| 2; 2; 64 |]; [| 1; 1; 256 |]; [| 64; 2; 2 |]; [| 16; 16; 1 |] ]
  in
  let t =
    Table.create ~title:"Fig 17 - Inf-S speedup vs 3D tile size (over heuristic pick)"
      ~columns:
        ("workload"
        :: List.map (fun tl -> Printf.sprintf "%dx%dx%d" tl.(0) tl.(1) tl.(2)) tiles)
  in
  List.iter
    (fun (label, w) ->
      let heuristic = (run E.Inf_s w).R.cycles in
      let row =
        List.map
          (fun tile ->
            let options = { suite_options with E.tile_override = Some tile } in
            let c =
              (run
                 ~tag:(Printf.sprintf "t%dx%dx%d" tile.(0) tile.(1) tile.(2))
                 ~options E.Inf_s w)
                .R.cycles
            in
            heuristic /. c)
          tiles
      in
      ignore (Table.add_float_row t label row))
    [
      ("stencil3d", Infs_workloads.Stencil.stencil3d ~iters:10 ~nx:512 ~ny:512 ~nz:16);
      ("conv3d", Infs_workloads.Conv.conv3d ~hw:256 ~channels:64);
      ("kmeans/in", Infs_workloads.Kmeans.kmeans_inner ~points:32768 ~dim:128 ~centers:128);
    ];
  Table.print t

(* ---------- Fig. 19: PointNet++ ---------- *)

let fig19 () =
  List.iter
    (fun (label, w) ->
      let t =
        Table.create
          ~title:(Printf.sprintf "Fig 19 - PointNet++ %s stage timeline (fraction of runtime)" label)
          ~columns:[ "config"; "FurthestSample"; "BallQuery"; "Gather"; "MLP"; "Aggregate"; "other"; "speedup" ]
      in
      let base_cycles = (run E.Base w).R.cycles in
      List.iter
        (fun p ->
          let r = run p w in
          let stage_sum = Hashtbl.create 8 in
          List.iter
            (fun (tl : R.timeline_entry) ->
              let s = Infs_workloads.Pointnet.stage_of_kernel tl.kernel in
              Hashtbl.replace stage_sum s
                (tl.cycles +. Option.value ~default:0.0 (Hashtbl.find_opt stage_sum s)))
            r.R.timeline;
          let total = Float.max 1.0 r.cycles in
          let frac s = Option.value ~default:0.0 (Hashtbl.find_opt stage_sum s) /. total in
          let known =
            frac "Furthest Sample" +. frac "Ball Query" +. frac "Gather"
            +. frac "MLP Layer" +. frac "Aggregate"
          in
          ignore
            (Table.add_float_row t (E.paradigm_to_string p)
               [
                 frac "Furthest Sample"; frac "Ball Query"; frac "Gather";
                 frac "MLP Layer"; frac "Aggregate";
                 Float.max 0.0 (1.0 -. known);
                 base_cycles /. r.cycles;
               ]))
        [ E.Base; E.Near_l3; E.In_l3; E.Inf_s ];
      Table.print t)
    [ ("SSG", Infs_workloads.Pointnet.ssg ()); ("MSG", Infs_workloads.Pointnet.msg ()) ]

(* ---------- JIT overheads (§8) ---------- *)

let jit_overheads entries =
  let t =
    Table.create ~title:"JIT overheads (Inf-S)"
      ~columns:[ "workload"; "jit % of runtime"; "avg us per lowering"; "memo hits"; "lowerings" ]
  in
  let times = ref [] in
  List.iter
    (fun (label, w) ->
      let r = run E.Inf_s w in
      let j = r.R.jit in
      if j.invocations > 0 then begin
        times := j.avg_us :: !times;
        Table.add_row t
          [
            label;
            Table.fmt_float (100.0 *. j.total_jit_cycles /. Float.max 1.0 r.cycles);
            Table.fmt_float j.avg_us;
            string_of_int j.memo_hits;
            string_of_int (j.invocations - j.memo_hits);
          ]
      end)
    (Cat.all_variants entries);
  Table.print t;
  Printf.printf "average JIT lowering time: %s us (paper: 220 us)\n\n"
    (Table.fmt_float (Stats.mean !times))

let area () =
  let t = Table.create ~title:"Area model (paper Section 8)" ~columns:[ "component"; "value" ] in
  List.iter
    (fun (k, v) -> Table.add_row t [ k; Table.fmt_float v ])
    (Area.table Area.default);
  Table.print t

(* ---------- ablations: the design choices DESIGN.md calls out ---------- *)

let ablations () =
  let t =
    Table.create ~title:"Ablations (Inf-S cycles, ratio vs full design; >1 = slower)"
      ~columns:[ "workload"; "no e-graph optimizer"; "no tiling (flat layout)"; "no JIT charge" ]
  in
  List.iter
    (fun (label, w, flat_tile) ->
      let full = (run E.Inf_s w).R.cycles in
      let no_opt =
        (run ~tag:"noopt" ~options:{ suite_options with E.optimize = false } E.Inf_s w)
          .R.cycles
      in
      let no_tiling =
        (run ~tag:"flat" ~options:{ suite_options with E.tile_override = Some flat_tile }
           E.Inf_s w)
          .R.cycles
      in
      let nojit = (run E.Inf_s_nojit w).R.cycles in
      ignore
        (Table.add_float_row t label
           [ no_opt /. full; no_tiling /. full; nojit /. full ]))
    [
      ("stencil2d", Infs_workloads.Stencil.stencil2d ~iters:10 ~n:2048, [| 1; 256 |]);
      ("conv2d", Infs_workloads.Conv.conv2d ~n:2048, [| 1; 256 |]);
      ("gauss_elim", Infs_workloads.Gauss.gauss_elim ~n:2048, [| 1; 256 |]);
      ("mm/out", Infs_workloads.Mm.mm_outer ~n:2048, [| 1; 256 |]);
      ( "stencil3d",
        Infs_workloads.Stencil.stencil3d ~iters:10 ~nx:512 ~ny:512 ~nz:16,
        [| 1; 1; 256 |] );
      ( "kmeans/in",
        Infs_workloads.Kmeans.kmeans_inner ~points:32768 ~dim:128 ~centers:128,
        [| 1; 1; 256 |] );
    ];
  Table.print t;
  (* SRAM geometry: the fat binary also carries 512-wordline schedules *)
  let t2 =
    Table.create ~title:"Fat binary geometries (wordline registers available/used)"
      ~columns:[ "workload"; "geometry"; "slots used"; "capacity" ]
  in
  List.iter
    (fun (label, w) ->
      match Fat_binary.compile w.WL.prog with
      | Error _ -> ()
      | Ok fb ->
        List.iter
          (fun (r : Fat_binary.region) ->
            List.iter
              (fun (wl, (s : Schedule.t)) ->
                Table.add_row t2
                  [
                    label ^ ":" ^ r.kernel.Ast.kname;
                    Printf.sprintf "%dx%d" wl wl;
                    string_of_int s.slots_used;
                    string_of_int s.capacity;
                  ])
              r.schedules)
          fb.regions)
    [
      ("conv2d", Infs_workloads.Conv.conv2d ~n:2048);
      ("conv3d", Infs_workloads.Conv.conv3d ~hw:256 ~channels:64);
    ];
  Table.print t2;
  (* element width: bit-serial latency is O(n) for add, so narrower types
     multiply in-memory throughput (the premise behind Eq. 1) *)
  let t3 =
    Table.create ~title:"Dtype ablation - vec_add 4M In-L3 cycles vs element type"
      ~columns:[ "dtype"; "cycles"; "vs fp32" ]
  in
  let opts =
    {
      E.default_options with
      warm_data = true;
      pre_transposed = true;
      charge_jit = false;
      share_compile = true;
    }
  in
  let cyc d =
    (run ~tag:"dtype" ~options:opts E.In_l3
       (Infs_workloads.Micro.vec_add_dtype ~dtype:d ~n:4_194_304))
      .R.cycles
  in
  let fp = cyc Dtype.Fp32 in
  List.iter
    (fun d ->
      let c = cyc d in
      Table.add_row t3
        [ Dtype.to_string d; Table.fmt_float c; Table.fmt_float (fp /. c) ])
    [ Dtype.Fp32; Dtype.Int32; Dtype.Int16; Dtype.Int8 ];
  Table.print t3

(* ---------- portability: one binary, two microarchitectures ---------- *)

let portability () =
  (* The same programs (and the same fat binaries, which carry schedules
     for both SRAM geometries) run unmodified on a future machine with
     512x512 arrays — the paper's portability requirement. *)
  let t =
    Table.create
      ~title:"Portability - Inf-S speedup over each machine's own Base (256x256 vs 512x512 arrays)"
      ~columns:[ "workload"; "256x256 machine"; "512x512 machine" ]
  in
  let big = Machine_config.big_arrays in
  List.iter
    (fun (label, w) ->
      let s cfg tag =
        let options = { suite_options with E.cfg } in
        let base = run ~tag ~options E.Base w in
        R.speedup ~baseline:base (run ~tag ~options E.Inf_s w)
      in
      ignore
        (Table.add_float_row t label
           [ s Machine_config.default "m256"; s big "m512" ]))
    [
      ("stencil2d", Infs_workloads.Stencil.stencil2d ~iters:10 ~n:2048);
      ("conv2d", Infs_workloads.Conv.conv2d ~n:2048);
      ("mm/out", Infs_workloads.Mm.mm_outer ~n:2048);
      ("gauss_elim", Infs_workloads.Gauss.gauss_elim ~n:2048);
    ];
  Table.print t

(* ---------- substrate sketch: the same stack on in-DRAM arrays ---------- *)

let substrate () =
  (* §9: the tDFG/JIT stack is hardware-neutral; swap the compute SRAM for
     DRAM subarrays (slower bit-serial steps, far more bitlines) and the
     same binaries run. *)
  let t =
    Table.create
      ~title:"Substrate sketch - In-L3 vs in-DRAM (cycles, warm+pre-transposed)"
      ~columns:[ "workload"; "compute-SRAM"; "in-DRAM"; "dram/sram" ]
  in
  List.iter
    (fun (label, w) ->
      let cyc cfg tag =
        let options =
          {
            E.default_options with
            cfg;
            warm_data = true;
            pre_transposed = true;
            charge_jit = false;
          }
        in
        (run ~tag ~options E.In_l3 w).R.cycles
      in
      let sram = cyc Machine_config.default "ssub" in
      let dram = cyc Machine_config.in_dram "dsub" in
      ignore (Table.add_float_row t label [ sram; dram; dram /. sram ]))
    [
      ("vec_add 4M", Infs_workloads.Micro.vec_add ~n:4_194_304);
      ("vec_add 32M", Infs_workloads.Micro.vec_add ~n:33_554_432);
      ("stencil2d", Infs_workloads.Stencil.stencil2d ~iters:10 ~n:2048);
    ];
  Table.print t

(* ---------- Bechamel micro-benchmarks of the framework itself ---------- *)

let bechamel_section () =
  let open Bechamel in
  let open Toolkit in
  let decompose_test =
    Test.make ~name:"alg1-decompose-2k"
      (Staged.stage (fun () ->
           ignore
             (Hyperrect.decompose
                (Hyperrect.of_ranges [ (1, 2047); (1, 2047) ])
                ~tile:[| 16; 16 |])))
  in
  let w = Infs_workloads.Stencil.stencil2d ~iters:1 ~n:2048 in
  let fb =
    match Fat_binary.compile w.WL.prog with Ok fb -> fb | Error e -> failwith e
  in
  let region = List.hd fb.Fat_binary.regions in
  let g = region.Fat_binary.optimized in
  let schedule = List.assoc 256 region.Fat_binary.schedules in
  let layout =
    match Layout.of_tile cfg ~shape:[| 2048; 2048 |] ~tile:[| 16; 16 |] with
    | Ok l -> l
    | Error e -> failwith e
  in
  let env = function "N" -> 2048 | "T" -> 1 | _ -> 0 in
  let jit_test =
    Test.make ~name:"jit-lower-stencil2d"
      (Staged.stage (fun () -> ignore (Jit.lower cfg g ~schedule ~layout ~env)))
  in
  let conv = Infs_workloads.Conv.conv2d ~n:2048 in
  let ck = List.hd (Ast.kernels conv.WL.prog) in
  let initial =
    match Frontend.extract conv.WL.prog ck with Ok g -> g | Error _ -> failwith "?"
  in
  let egraph_test =
    Test.make ~name:"egraph-optimize-conv2d"
      (Staged.stage (fun () ->
           ignore
             (Extract.optimize ~arrays:(Frontend.array_extents conv.WL.prog) initial)))
  in
  let t =
    Table.create ~title:"Bechamel - framework hot paths"
      ~columns:[ "test"; "ns/run (monotonic clock, OLS)" ]
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw =
        Benchmark.all
          (Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) ())
          Instance.[ monotonic_clock ]
          test
      in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name r ->
          let est =
            match Analyze.OLS.estimates r with
            | Some (x :: _) -> x
            | _ -> nan
          in
          Table.add_row t [ name; Table.fmt_float est ])
        results)
    [ decompose_test; jit_test; egraph_test ];
  Table.print t

(* ---------- metrics: JSON result dump + disabled-overhead bound ---------- *)

(* Dump every cached (workload, paradigm, tag) cycle count as
   schema infs-bench-1, the input format of `infs_run bench-diff` — the
   CI regression gate diffs this against a committed baseline. Sorted by
   key, so the file is deterministic for a given suite.

   [meta] is provenance the caller supplies (--meta-commit / --meta-time);
   the dump never reads the clock itself, so the bytes stay reproducible
   and `infs_run trend` can order snapshots without trusting filenames. *)
let dump_json ~suite ~meta file =
  let entries =
    Mutex.protect cache_mu (fun () ->
        Hashtbl.fold (fun k r acc -> (k, r) :: acc) cache [])
  in
  let entries =
    List.sort (fun (a, _) (b, _) -> String.compare a b) entries
  in
  let results =
    List.map
      (fun (key, (r : R.t)) ->
        let w, p, tag =
          match String.split_on_char '|' key with
          | [ w; p; t ] -> (w, p, t)
          | w :: p :: rest -> (w, p, String.concat "|" rest)
          | _ -> (key, "", "")
        in
        Json.Obj
          [
            ("workload", Json.Str w);
            ("paradigm", Json.Str p);
            ("tag", Json.Str tag);
            ("cycles", Json.Num r.R.cycles);
          ])
      entries
  in
  let j =
    Json.Obj
      ([
         ("schema", Json.Str "infs-bench-1");
         ("suite", Json.Str suite);
         ("results", Json.Arr results);
       ]
      @
      match meta with
      | [] -> []
      | kvs ->
        [ ("meta", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) kvs)) ])
  in
  let oc = open_out file in
  output_string oc (Json.to_string j);
  output_char oc '\n';
  close_out oc;
  Printf.printf "bench results: %d entries -> %s\n\n" (List.length results) file

(* The metrics design contract: a disabled registry must cost one bool test
   per instrumentation site. Measure that guard's cost directly, count the
   sites a real run executes (Metrics.calls of an enabled run), and bound
   the disabled-run overhead as guards x cost / wall-time — fail the bench
   if the estimate crosses 2%. *)
let metrics_overhead_check () =
  let guard_ns =
    let n = 20_000_000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      if Metrics.enabled (Sys.opaque_identity Metrics.null) then
        ignore (Sys.opaque_identity n)
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n
  in
  let w = Infs_workloads.Stencil.stencil2d ~iters:2 ~n:256 in
  let m = Metrics.create () in
  ignore (E.run_exn ~options:{ suite_options with E.metrics = m } E.Inf_s w);
  let calls = Metrics.calls m in
  (* time the disabled run after a warmup (compile cache, allocator) *)
  ignore (E.run_exn ~options:suite_options E.Inf_s w);
  let t0 = Unix.gettimeofday () in
  ignore (E.run_exn ~options:suite_options E.Inf_s w);
  let wall = Unix.gettimeofday () -. t0 in
  let overhead = float_of_int calls *. guard_ns *. 1e-9 /. Float.max 1e-9 wall in
  Printf.printf
    "metrics overhead: %d disabled guards x %.2f ns = %.4f%% of a %.1f ms \
     run (budget 2%%)\n\n"
    calls guard_ns (100.0 *. overhead) (1e3 *. wall);
  if overhead >= 0.02 then begin
    Printf.eprintf
      "FAIL: disabled-metrics overhead %.2f%% exceeds the 2%% budget\n"
      (100.0 *. overhead);
    exit 1
  end

(* Same contract for the profiler: Prof.null must cost one bool test per
   span site. Bound the disabled-run overhead as sites x guard cost /
   wall-time; fail the bench if the estimate crosses 2%. *)
let prof_overhead_check () =
  let guard_ns =
    let n = 20_000_000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      if Prof.enabled (Sys.opaque_identity Prof.null) then
        ignore (Sys.opaque_identity n)
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n
  in
  let w = Infs_workloads.Stencil.stencil2d ~iters:2 ~n:256 in
  let prof = Prof.create () in
  ignore (E.run_exn ~options:{ suite_options with E.prof } E.Inf_s w);
  let calls = Prof.calls prof in
  (* time the disabled run after a warmup (compile cache, allocator) *)
  ignore (E.run_exn ~options:suite_options E.Inf_s w);
  let t0 = Unix.gettimeofday () in
  ignore (E.run_exn ~options:suite_options E.Inf_s w);
  let wall = Unix.gettimeofday () -. t0 in
  let overhead = float_of_int calls *. guard_ns *. 1e-9 /. Float.max 1e-9 wall in
  Printf.printf
    "prof overhead: %d disabled guards x %.2f ns = %.4f%% of a %.1f ms run \
     (budget 2%%)\n\n"
    calls guard_ns (100.0 *. overhead) (1e3 *. wall);
  if overhead >= 0.02 then begin
    Printf.eprintf
      "FAIL: disabled-prof overhead %.2f%% exceeds the 2%% budget\n"
      (100.0 *. overhead);
    exit 1
  end

(* The fault-model contract mirrors the metrics one: with faults disabled
   (the default) every instrumentation site costs one option test. Arm a
   zero-rate spec (seed only, every probability 0.0) to count the draw
   sites a real run passes through — the armed-but-never-firing run is
   cycle-identical to a disabled one — then bound the disabled-run
   overhead as sites x guard cost / wall-time; fail the bench if the
   estimate crosses 2%. *)
let fault_overhead_check () =
  let guard_ns =
    let n = 20_000_000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      match Sys.opaque_identity (None : int option) with
      | Some _ -> ignore (Sys.opaque_identity n)
      | None -> ()
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n
  in
  let w = Infs_workloads.Stencil.stencil2d ~iters:2 ~n:256 in
  let armed =
    match Fault.parse "seed=42" with Ok s -> s | Error e -> failwith e
  in
  let r =
    E.run_exn ~options:{ suite_options with E.faults = armed } E.Inf_s w
  in
  let draws =
    match r.R.faults with Some f -> f.R.draws | None -> failwith "no fault summary"
  in
  (* time the disabled run after a warmup (compile cache, allocator) *)
  ignore (E.run_exn ~options:suite_options E.Inf_s w);
  let t0 = Unix.gettimeofday () in
  ignore (E.run_exn ~options:suite_options E.Inf_s w);
  let wall = Unix.gettimeofday () -. t0 in
  let overhead = float_of_int draws *. guard_ns *. 1e-9 /. Float.max 1e-9 wall in
  Printf.printf
    "fault-hook overhead: %d disabled guards x %.2f ns = %.4f%% of a %.1f ms \
     run (budget 2%%)\n\n"
    draws guard_ns (100.0 *. overhead) (1e3 *. wall);
  if overhead >= 0.02 then begin
    Printf.eprintf
      "FAIL: disabled-fault-hook overhead %.2f%% exceeds the 2%% budget\n"
      (100.0 *. overhead);
    exit 1
  end

(* ---------- attention sweep: sequence-length x paradigm crossover ----------

   A Fig. 2-style study at sizes the paper never measured: scaled-dot-
   product attention (batch 1, head dim 64) with the sequence length
   swept across the in-/near-memory crossover. A standalone suite
   (--attn-sweep): the report cache then holds exactly these entries, so
   --json dumps a sweep-only file for the CI bench-diff gate. *)

let attn_sweep_paradigms = [ E.Base_1; E.Base; E.Near_l3; E.In_l3; E.Inf_s ]
let attn_sweep_seqs = [ 64; 128; 256; 512; 1024 ]

let attn_sweep () =
  let wl seq = Infs_workloads.Transformer.attention ~batch:1 ~seq ~dh:64 () in
  (* fill the cache from the pool first (identical results, less wall) *)
  let specs =
    List.concat_map
      (fun seq -> List.map (fun p -> (p, wl seq)) attn_sweep_paradigms)
      attn_sweep_seqs
  in
  let outcomes =
    Pool.run_list ~jobs:!bench_jobs
      (List.map (fun (p, w) () -> ignore (run p w)) specs)
  in
  List.iter
    (function
      | Ok () -> ()
      | Error e -> failwith ("attn-sweep: " ^ Pool.error_to_string e))
    outcomes;
  let t =
    Table.create
      ~title:
        "Attention crossover - cycles by sequence length (batch 1, head dim 64)"
      ~columns:
        (("seq len" :: List.map E.paradigm_to_string attn_sweep_paradigms)
        @ [ "winner" ])
  in
  List.iter
    (fun seq ->
      let cycles =
        List.map (fun p -> (run p (wl seq)).R.cycles) attn_sweep_paradigms
      in
      let best = List.fold_left Float.min infinity cycles in
      let winner =
        List.fold_left2
          (fun acc p c -> if c = best then E.paradigm_to_string p else acc)
          "?" attn_sweep_paradigms cycles
      in
      Table.add_row t
        ((string_of_int seq :: List.map Table.fmt_float cycles) @ [ winner ]))
    attn_sweep_seqs;
  Table.print t

(* ---------- tuned mode (--tuned): search vs the Eq. 2 heuristic ----------

   Tune each entry (infs_tune's candidate search on the worker pool), print
   tuned-vs-heuristic cycles side by side, then run every winner through the
   report cache under tag "tuned" — so a --json dump carries the tuned cycle
   counts and the existing bench-diff gate pins them like any other entry. *)

let tuned_section pairs =
  let t =
    Table.create ~title:"Autotuned vs Eq. 2 heuristic (Inf-S baseline)"
      ~columns:[ "workload"; "heuristic"; "tuned"; "gap"; "explored"; "winner" ]
  in
  let gaps = ref [] in
  List.iter
    (fun (label, (w : WL.t)) ->
      match
        Infs_tune.Tune.tune ~options:suite_options ~jobs:!bench_jobs (fun () -> w)
      with
      | Error e -> failwith (Printf.sprintf "tune %s: %s" label e)
      | Ok res ->
        let p, options = Infs_tune.Tune.apply res suite_options in
        ignore (run ~tag:"tuned" ~options p w);
        gaps := res.gap :: !gaps;
        Table.add_row t
          [
            label;
            Table.fmt_float res.Infs_tune.Tune.baseline.cycles;
            Table.fmt_float res.winner.cycles;
            Table.fmt_float res.gap;
            string_of_int (List.length res.explored);
            Json.to_string (Infs_tune.Tune.config_to_json res.winner.config);
          ])
    pairs;
  Table.print t;
  Printf.printf "tuned geomean gap over Eq. 2 heuristic: %.3fx\n\n"
    (Stats.geomean !gaps)

(* ---------- seeded degraded-mode section (--faults SPEC) ---------- *)

(* Runs outside the report cache on purpose: fault-afflicted cycle counts
   must never leak into the --json dump the regression gate diffs. *)
let fault_section spec =
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Degraded mode - Inf-S under faults [%s]"
           (Fault.to_string spec))
      ~columns:
        [ "workload"; "cycles"; "vs clean"; "injected"; "retries"; "fallbacks"; "wasted%" ]
  in
  List.iter
    (fun (label, w) ->
      let clean = E.run_exn ~options:suite_options E.Inf_s w in
      let r =
        E.run_exn ~options:{ suite_options with E.faults = spec } E.Inf_s w
      in
      match r.R.faults with
      | None -> ()
      | Some f ->
        Table.add_row t
          [
            label;
            Table.fmt_float r.R.cycles;
            Table.fmt_float (r.R.cycles /. Float.max 1.0 clean.R.cycles);
            string_of_int
              (List.fold_left (fun a (_, n) -> a + n) 0 f.R.injected);
            string_of_int f.R.retries;
            string_of_int f.R.fallbacks;
            Table.fmt_float
              (100.0 *. f.R.wasted_cycles /. Float.max 1.0 r.R.cycles);
          ])
    (Cat.all_variants (Cat.test_scale ()));
  Table.print t

(* ---------- trace hook ---------- *)

let trace_demo file =
  (* structured-trace hook: run one representative workload with the JSONL
     sink so the bench can be inspected in a trace viewer / diffed *)
  let oc = open_out file in
  let trace = Trace.to_channel Trace.Jsonl oc in
  let options = { suite_options with E.trace } in
  let w = Infs_workloads.Stencil.stencil2d ~iters:2 ~n:48 in
  let r = E.run_exn ~options E.Inf_s w in
  Trace.close trace;
  close_out oc;
  Printf.printf "trace: %s [Inf-S] %d events -> %s\n\n" w.WL.wname
    (Trace.events_seen trace) file;
  ignore r

(* ---------- profile hook ---------- *)

let prof_demo file =
  (* profiler hook: run one representative workload instrumented and write
     the span report (format by extension) plus folded stacks alongside *)
  let prof = Prof.create () in
  let options = { suite_options with E.prof } in
  let w = Infs_workloads.Stencil.stencil2d ~iters:2 ~n:48 in
  let r = E.run_exn ~options E.Inf_s w in
  Prof.write_file prof file;
  let folded = file ^ ".folded" in
  let oc = open_out folded in
  output_string oc (Prof.to_folded prof);
  close_out oc;
  Printf.printf "profile: %s [Inf-S] %d span paths, %d calls -> %s (+ %s)\n\n"
    w.WL.wname
    (List.length (Prof.rows prof))
    (Prof.calls prof) file folded;
  ignore r

(* ---------- main ---------- *)

let full () =
  print_header ();
  let entries = Cat.table3 () in
  prewarm ~fig2:true entries;
  fig2 ();
  fig11 entries;
  fig12 entries;
  fig13 entries;
  fig14 entries;
  fig15 ();
  sweep_2d ();
  sweep_3d ();
  fig18 entries;
  fig19 ();
  jit_overheads entries;
  ablations ();
  portability ();
  substrate ();
  area ();
  bechamel_section ()

(* ---------- sim-rate: hot-path throughput + cost-memo effectiveness ----------

   Simulated cycles per wall-clock second over the test-scale catalog on
   the four main paradigms — warm data, shared compiles, single domain:
   the exact hot path the identity tier pins byte-for-byte. [baseline]
   is this loop's rate measured at the PR 8 head (commit adb2913), before
   the flat-core rewrite; the printed speedup tracks the rewrite. The
   hard assertion is on the cost-memo hit rate (wall-clock depends on the
   host; memo behavior does not). *)
let sim_rate_baseline = 1.02e8

let sim_rate_section () =
  let combos =
    List.concat_map
      (fun (e : Cat.entry) ->
        match e.variants with
        | (_, w) :: _ ->
          List.map (fun p -> (p, w)) [ E.Base; E.Near_l3; E.In_l3; E.Inf_s ]
        | [] -> [])
      (Cat.test_scale ())
  in
  (* bypass the report cache: this section times simulation, not lookup *)
  List.iter (fun (p, w) -> ignore (E.run_exn ~options:suite_options p w)) combos;
  Costmemo.reset ();
  let reps = 20 in
  let simulated = ref 0.0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    List.iter
      (fun (p, w) ->
        simulated :=
          !simulated +. (E.run_exn ~options:suite_options p w).R.cycles)
      combos
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let rate = !simulated /. wall in
  Printf.printf
    "sim rate: %.3e simulated cycles/sec (%d combos x %d reps, %.1f ms wall)\n"
    rate (List.length combos) reps (wall *. 1e3);
  Printf.printf "sim speedup: %.1fx the pre-rewrite baseline %.2e cycles/sec\n"
    (rate /. sim_rate_baseline)
    sim_rate_baseline;
  let hr = Costmemo.hit_rate () in
  Printf.printf
    "cost memo: sim.costmemo.hit=%d sim.costmemo.miss=%d -> %.2f%% hit rate \
     (floor 90%%)\n\n"
    (Costmemo.hits ()) (Costmemo.misses ()) (100.0 *. hr);
  if hr <= 0.90 then begin
    Printf.printf "FAIL: cost-memo hit rate %.2f%% <= 90%%\n" (100.0 *. hr);
    exit 1
  end

(* CI target: the full pipeline (compile, simulate, aggregate) on the
   test-scale suite in a few seconds instead of minutes *)
let smoke () =
  print_header ();
  let entries = Cat.test_scale () in
  prewarm entries;
  fig11 entries;
  fig14 entries;
  jit_overheads entries;
  sim_rate_section ();
  metrics_overhead_check ();
  prof_overhead_check ();
  fault_overhead_check ()

let () =
  print_endline "infinity stream - benchmark harness (ASPLOS'23 evaluation)";
  print_newline ();
  let argv = Array.to_list Sys.argv in
  let trace_file =
    let rec find = function
      | "--trace" :: f :: _ -> Some f
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  let json_file =
    let rec find = function
      | "--json" :: f :: _ -> Some f
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  let prof_file =
    let rec find = function
      | "--prof" :: f :: _ -> Some f
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  let meta =
    let rec find flag = function
      | f :: v :: _ when f = flag -> Some v
      | _ :: rest -> find flag rest
      | [] -> None
    in
    List.filter_map
      (fun (k, flag) ->
        Option.map (fun v -> (k, v)) (find flag argv))
      [ ("commit", "--meta-commit"); ("timestamp", "--meta-time") ]
  in
  let jobs =
    let rec find = function
      | "--jobs" :: n :: _ -> int_of_string_opt n
      | _ :: rest -> find rest
      | [] -> None
    in
    match find argv with
    | Some n -> max 1 n
    | None -> Pool.recommended_jobs ()
  in
  let fault_spec =
    let rec find = function
      | "--faults" :: s :: _ -> (
        match Fault.parse s with
        | Ok sp -> Some sp
        | Error e ->
          prerr_endline ("error: --faults: " ^ e);
          exit 2)
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  bench_jobs := jobs;
  let t0 = Unix.gettimeofday () in
  Option.iter trace_demo trace_file;
  Option.iter prof_demo prof_file;
  let suite =
    if List.mem "--attn-sweep" argv then "attn-sweep"
    else if List.mem "--smoke" argv then "smoke"
    else "full"
  in
  (match suite with
  | "attn-sweep" -> attn_sweep ()
  | "smoke" -> smoke ()
  | _ -> full ());
  if List.mem "--tuned" argv then begin
    let micro n =
      [
        ("vec_add", Infs_workloads.Micro.vec_add ~n);
        ("array_sum", Infs_workloads.Micro.array_sum ~n);
      ]
    in
    let pairs =
      match suite with
      | "attn-sweep" ->
        List.map
          (fun seq ->
            ( Printf.sprintf "attention/seq%d" seq,
              Infs_workloads.Transformer.attention ~batch:1 ~seq ~dh:64 () ))
          attn_sweep_seqs
      | "smoke" -> Cat.all_variants (Cat.test_scale ()) @ micro 16_384
      | _ -> Cat.all_variants (Cat.table3 ()) @ micro 4_194_304
    in
    tuned_section pairs
  end;
  Option.iter fault_section fault_spec;
  Option.iter (dump_json ~suite ~meta) json_file;
  let hits, misses, entries = E.compile_cache_stats () in
  Printf.printf
    "total: %.2f s wall-clock on %d domain%s; compile cache: %d hits / %d \
     misses (%d entries, %.0f%% hit rate)\n"
    (Unix.gettimeofday () -. t0)
    jobs
    (if jobs = 1 then "" else "s")
    hits misses entries
    (100.0 *. float_of_int hits /. float_of_int (max 1 (hits + misses)));
  print_endline "done."
