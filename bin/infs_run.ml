(* Command-line driver: run any workload of the suite under any paradigm
   and print the full report (cycles, breakdown, traffic, energy, JIT
   statistics, per-kernel timeline).

     infs_run list
     infs_run run --workload stencil2d --paradigm inf-s
     infs_run run -w mm/out -p base --functional --scale test
     infs_run compile -w conv2d          # show the optimized tDFG
*)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report
module WL = Infinity_stream.Workload
module Cat = Infs_workloads.Catalog

let all_workloads scale =
  let entries =
    match scale with `Paper -> Cat.table3 () | `Test -> Cat.test_scale ()
  in
  Cat.all_variants entries
  @ [
      ("vec_add", Infs_workloads.Micro.vec_add
         ~n:(match scale with `Paper -> 4_194_304 | `Test -> 16_384));
      ("array_sum", Infs_workloads.Micro.array_sum
         ~n:(match scale with `Paper -> 4_194_304 | `Test -> 16_384));
      ("pointnet/ssg",
        (match scale with
        | `Paper -> Infs_workloads.Pointnet.ssg ()
        | `Test -> Infs_workloads.Pointnet.tiny ()));
      ("pointnet/msg",
        (match scale with
        | `Paper -> Infs_workloads.Pointnet.msg ()
        | `Test -> Infs_workloads.Pointnet.tiny ()));
    ]

let find_workload scale name =
  let wl = all_workloads scale in
  match List.assoc_opt name wl with
  | Some w -> Ok w
  | None ->
    Error
      (Printf.sprintf "unknown workload %s; available: %s" name
         (String.concat ", " (List.map fst wl)))

let paradigm_of_string = function
  | "base1" | "base-1" -> Ok E.Base_1
  | "base" -> Ok E.Base
  | "near" | "near-l3" -> Ok E.Near_l3
  | "in-l3" | "inl3" -> Ok E.In_l3
  | "inf-s" | "infs" -> Ok E.Inf_s
  | "inf-s-nojit" | "nojit" -> Ok E.Inf_s_nojit
  | s -> Error (Printf.sprintf "unknown paradigm %s" s)

let print_report (r : R.t) =
  Format.printf "%a@." R.pp r;
  Format.printf "@[<v>breakdown:@,";
  List.iter
    (fun (k, v) ->
      if v > 0.0 then
        Format.printf "  %-14s %12.3e cycles (%5.1f%%)@," k v
          (100.0 *. v /. Float.max 1.0 r.cycles))
    (Breakdown.to_assoc r.breakdown);
  Format.printf "@]@.";
  Format.printf "@[<v>NoC byte-hops:@,";
  List.iter
    (fun (k, v) -> if v > 0.0 then Format.printf "  %-12s %12.3e@," k v)
    r.noc_byte_hops;
  List.iter
    (fun (k, v) -> if v > 0.0 then Format.printf "  %-12s %12.3e bytes (local)@," k v)
    r.local_bytes;
  Format.printf "@]@.";
  if r.jit.invocations > 0 then
    Format.printf
      "JIT: %d lowerings (%d memoized), %.1f us avg, %.2f%% of runtime@."
      r.jit.invocations r.jit.memo_hits r.jit.avg_us
      (100.0 *. r.jit.total_jit_cycles /. Float.max 1.0 r.cycles);
  if List.length r.timeline > 1 then begin
    Format.printf "@[<v>timeline:@,";
    List.iter
      (fun (t : R.timeline_entry) ->
        Format.printf "  %-20s %-8s %12.3e cycles@," t.kernel
          (R.where_to_string t.where)
          t.cycles)
      r.timeline;
    Format.printf "@]@."
  end

open Cmdliner

let scale_conv = Arg.enum [ ("paper", `Paper); ("test", `Test) ]

let scale_arg =
  Arg.(value & opt scale_conv `Paper & info [ "scale" ] ~doc:"paper or test sizes")

let workload_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "w"; "workload" ] ~doc:"workload name (see `infs_run list`)")

let paradigm_arg =
  Arg.(
    value & opt string "inf-s"
    & info [ "p"; "paradigm" ] ~doc:"base1|base|near-l3|in-l3|inf-s|inf-s-nojit")

let functional_arg =
  Arg.(
    value & flag
    & info [ "functional" ]
        ~doc:"also compute values and check against the golden model (use --scale test)")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"write a structured event trace of the run to $(docv)")

let trace_format_conv = Arg.enum [ ("jsonl", Trace.Jsonl); ("chrome", Trace.Chrome) ]

let trace_format_arg =
  Arg.(
    value & opt trace_format_conv Trace.Jsonl
    & info [ "trace-format" ]
        ~doc:"trace format: jsonl (one event per line, golden-testable) or \
              chrome (chrome://tracing / Perfetto timeline)")

let list_cmd =
  let run scale =
    List.iter (fun (name, _) -> print_endline name) (all_workloads scale)
  in
  Cmd.v (Cmd.info "list" ~doc:"list available workloads")
    Term.(const run $ scale_arg)

let run_cmd =
  let run scale wname pname functional trace_file trace_format =
    match (find_workload scale wname, paradigm_of_string pname) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      exit 1
    | Ok w, Ok p -> (
      let open_trace f =
        try open_out f
        with Sys_error e ->
          prerr_endline ("error: cannot open trace file: " ^ e);
          exit 1
      in
      let oc = Option.map open_trace trace_file in
      let trace =
        match oc with
        | Some oc -> Trace.to_channel trace_format oc
        | None -> Trace.null
      in
      let options = { E.default_options with functional; trace } in
      let result = E.run ~options p w in
      Trace.close trace;
      Option.iter close_out oc;
      match result with
      | Error e ->
        prerr_endline ("error: " ^ e);
        exit 1
      | Ok r ->
        print_report r;
        Option.iter
          (fun f ->
            Format.printf "trace: %d events -> %s@." (Trace.events_seen trace) f)
          trace_file)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"simulate one workload under one paradigm")
    Term.(
      const run $ scale_arg $ workload_arg $ paradigm_arg $ functional_arg
      $ trace_arg $ trace_format_arg)

let compile_cmd =
  let run scale wname =
    match find_workload scale wname with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok w -> (
      match Fat_binary.compile w.WL.prog with
      | Error e ->
        prerr_endline ("compile error: " ^ e);
        exit 1
      | Ok fb ->
        Format.printf "%a@." Ast.pp_program fb.Fat_binary.prog;
        List.iter
          (fun (r : Fat_binary.region) ->
            Format.printf "@.--- region %s ---@." r.kernel.Ast.kname;
            Format.printf "%s@." (Sdfg.to_string r.sdfg);
            (match r.fallback with
            | Some reason -> Format.printf "fallback (near-memory only): %s@." reason
            | None ->
              Format.printf "%s@." (Tdfg.to_string r.optimized);
              Format.printf "e-graph: %d rounds, cost %.3g -> %.3g@."
                r.opt_stats.Extract.rounds r.opt_stats.cost_before
                r.opt_stats.cost_after;
              List.iter
                (fun (wl, (s : Schedule.t)) ->
                  Format.printf "schedule %d wordlines: %d/%d slots@." wl
                    s.slots_used s.capacity)
                r.schedules);
            let h = r.hints in
            Format.printf "hints: shift=%s bc=%s reduce=%s primary=%s@."
              (String.concat "," (List.map string_of_int h.Fat_binary.shift_dims))
              (String.concat "," (List.map string_of_int h.bc_dims))
              (String.concat "," (List.map string_of_int h.reduce_dims))
              (Option.value ~default:"-" h.primary_array))
          fb.regions)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"show the compiled fat binary (tDFGs, schedules, hints)")
    Term.(const run $ scale_arg $ workload_arg)

let lower_cmd =
  let run scale wname kname =
    match find_workload scale wname with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok w -> (
      match Fat_binary.compile w.WL.prog with
      | Error e ->
        prerr_endline ("compile error: " ^ e);
        exit 1
      | Ok fb -> (
        let region =
          match kname with
          | Some k -> Fat_binary.region_of fb k
          | None -> (
            match fb.Fat_binary.regions with r :: _ -> Some r | [] -> None)
        in
        match region with
        | None ->
          prerr_endline "no such region";
          exit 1
        | Some r -> (
          match (r.fallback, List.assoc_opt 256 r.schedules) with
          | Some f, _ ->
            prerr_endline ("region is near-memory only: " ^ f);
            exit 1
          | None, None ->
            prerr_endline "no 256-wordline schedule";
            exit 1
          | None, Some schedule -> (
            match Interp.create w.WL.prog ~params:w.WL.params with
            | Error e ->
              prerr_endline e;
              exit 1
            | Ok env ->
              (* resolve host-loop variables at their lower bounds for the
                 first invocation's view of the region *)
              let rec lows acc = function
                | Ast.Host_loop (l, body) :: rest ->
                  let v = Symaff.eval l.lo (fun x -> List.assoc x acc) in
                  lows (lows ((l.ivar, v) :: acc) body) rest
                | _ :: rest -> lows acc rest
                | [] -> acc
              in
              let host_lows =
                try lows [] w.WL.prog.Ast.body with Not_found -> []
              in
              let envf v =
                match List.assoc_opt v host_lows with
                | Some x -> x
                | None -> Interp.lookup_int env v
              in
              let g = r.optimized in
              let shape =
                Array.init (Tdfg.lattice_dims g) (fun d ->
                    List.fold_left
                      (fun acc id ->
                        match Tdfg.domain g id with
                        | Tdfg.Finite rect ->
                          max acc (Hyperrect.hi (Symrect.resolve rect envf) d)
                        | Tdfg.Infinite -> acc)
                      1 (Tdfg.live_nodes g))
              in
              let layout =
                match
                  Layout.choose Machine_config.default ~hints:r.hints ~shape
                    ~elems_per_line:16
                with
                | Ok l -> l
                | Error e ->
                  prerr_endline e;
                  exit 1
              in
              Format.printf "layout: %s@." (Layout.to_string layout);
              let cmds, stats =
                Jit.lower Machine_config.default g ~schedule ~layout ~env:envf
              in
              List.iter (fun c -> print_endline ("  " ^ Command.to_string c)) cmds;
              Format.printf
                "%d commands; jit %.1f us; %g in-memory element-ops; %g stream elems@."
                stats.Jit.commands
                (Machine_config.cycles_to_us Machine_config.default stats.jit_cycles)
                stats.compute_elems
                (stats.stream_load_elems +. stats.stream_store_elems)))))
  in
  let kernel_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "k"; "kernel" ] ~doc:"region (kernel) name; default: first")
  in
  Cmd.v
    (Cmd.info "lower"
       ~doc:"JIT-lower one region and dump the bit-serial command stream")
    Term.(const run $ scale_arg $ workload_arg $ kernel_arg)

let () =
  let doc = "infinity stream - in-/near-memory fusion simulator" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "infs_run" ~doc)
          [ list_cmd; run_cmd; compile_cmd; lower_cmd ]))
