(* Command-line driver: run any workload of the suite under any paradigm
   and print the full report (cycles, breakdown, traffic, energy, JIT
   statistics, per-kernel timeline).

     infs_run list
     infs_run run --workload stencil2d --paradigm inf-s
     infs_run run -w mm/out -p base --functional --scale test
     infs_run compile -w conv2d          # show the optimized tDFG
     infs_run batch --matrix --scale test --jobs 4
     echo '{"workload":"mm/out","paradigm":"inf-s"}' | infs_run batch
*)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report
module WL = Infinity_stream.Workload
module Cat = Infs_workloads.Catalog

let all_workloads scale =
  let entries =
    match scale with `Paper -> Cat.table3 () | `Test -> Cat.test_scale ()
  in
  Cat.all_variants entries
  @ [
      ("vec_add", Infs_workloads.Micro.vec_add
         ~n:(match scale with `Paper -> 4_194_304 | `Test -> 16_384));
      ("array_sum", Infs_workloads.Micro.array_sum
         ~n:(match scale with `Paper -> 4_194_304 | `Test -> 16_384));
      ("pointnet/ssg",
        (match scale with
        | `Paper -> Infs_workloads.Pointnet.ssg ()
        | `Test -> Infs_workloads.Pointnet.tiny ()));
      ("pointnet/msg",
        (match scale with
        | `Paper -> Infs_workloads.Pointnet.msg ()
        | `Test -> Infs_workloads.Pointnet.tiny ()));
    ]

(* sorted, so batch scripts can diff the list across versions *)
let workload_names scale =
  List.sort String.compare (List.map fst (all_workloads scale))

let find_workload scale name =
  let wl = all_workloads scale in
  match List.assoc_opt name wl with
  | Some w -> Ok w
  | None ->
    Error
      (Printf.sprintf "unknown workload %s; available: %s" name
         (String.concat ", " (workload_names scale)))

(* same bar as the engine test suite's end-to-end correctness checks *)
let functional_tolerance = 1e-3

let paradigm_of_string = function
  | "base1" | "base-1" -> Ok E.Base_1
  | "base" -> Ok E.Base
  | "near" | "near-l3" -> Ok E.Near_l3
  | "in-l3" | "inl3" -> Ok E.In_l3
  | "inf-s" | "infs" -> Ok E.Inf_s
  | "inf-s-nojit" | "nojit" -> Ok E.Inf_s_nojit
  | s -> Error (Printf.sprintf "unknown paradigm %s" s)

let print_report (r : R.t) =
  Format.printf "%a@." R.pp r;
  Format.printf "@[<v>breakdown:@,";
  List.iter
    (fun (k, v) ->
      if v > 0.0 then
        Format.printf "  %-14s %12.3e cycles (%5.1f%%)@," k v
          (100.0 *. v /. Float.max 1.0 r.cycles))
    (Breakdown.to_assoc r.breakdown);
  Format.printf "@]@.";
  Format.printf "@[<v>NoC byte-hops:@,";
  List.iter
    (fun (k, v) -> if v > 0.0 then Format.printf "  %-12s %12.3e@," k v)
    r.noc_byte_hops;
  List.iter
    (fun (k, v) -> if v > 0.0 then Format.printf "  %-12s %12.3e bytes (local)@," k v)
    r.local_bytes;
  Format.printf "@]@.";
  if r.jit.invocations > 0 then
    Format.printf
      "JIT: %d lowerings (%d memoized), %.1f us avg, %.2f%% of runtime@."
      r.jit.invocations r.jit.memo_hits r.jit.avg_us
      (100.0 *. r.jit.total_jit_cycles /. Float.max 1.0 r.cycles);
  if List.length r.timeline > 1 then begin
    Format.printf "@[<v>timeline:@,";
    List.iter
      (fun (t : R.timeline_entry) ->
        Format.printf "  %-20s %-8s %12.3e cycles@," t.kernel
          (R.where_to_string t.where)
          t.cycles)
      r.timeline;
    Format.printf "@]@."
  end

open Cmdliner

let scale_conv = Arg.enum [ ("paper", `Paper); ("test", `Test) ]

let scale_arg =
  Arg.(value & opt scale_conv `Paper & info [ "scale" ] ~doc:"paper or test sizes")

let workload_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "w"; "workload" ] ~doc:"workload name (see `infs_run list`)")

let paradigm_arg =
  Arg.(
    value & opt string "inf-s"
    & info [ "p"; "paradigm" ] ~doc:"base1|base|near-l3|in-l3|inf-s|inf-s-nojit")

let functional_arg =
  Arg.(
    value & flag
    & info [ "functional" ]
        ~doc:"also compute values and check against the golden model (use --scale test)")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"write a structured event trace of the run to $(docv)")

let trace_format_conv = Arg.enum [ ("jsonl", Trace.Jsonl); ("chrome", Trace.Chrome) ]

let trace_format_arg =
  Arg.(
    value & opt trace_format_conv Trace.Jsonl
    & info [ "trace-format" ]
        ~doc:"trace format: jsonl (one event per line, golden-testable) or \
              chrome (chrome://tracing / Perfetto timeline)")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"write a metrics snapshot (utilization counters, occupancy \
              gauges, latency histograms) to $(docv); .prom selects \
              Prometheus text exposition, anything else JSON")

let faults_conv =
  let parse s =
    match Fault.parse s with Ok sp -> Ok sp | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun ppf sp -> Format.pp_print_string ppf (Fault.to_string sp))

let prof_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "prof" ] ~docv:"FILE"
        ~doc:
          "profile the run with host-time spans and write the report to \
           $(docv): .json selects infs-prof-1 JSON, .folded flamegraph \
           folded stacks, anything else a text table. Span counts are \
           deterministic; times are wall-clock.")

let write_prof prof file =
  try
    Prof.write_file prof file;
    Format.printf "profile: %d span paths, %d calls -> %s@."
      (List.length (Prof.rows prof))
      (Prof.calls prof) file
  with Sys_error e ->
    prerr_endline ("error: cannot write profile file: " ^ e);
    exit 1

let faults_arg =
  Arg.(
    value & opt faults_conv Fault.none
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "arm the seeded hardware-fault model, e.g. \
           $(b,seed=42,sram=1e-4,noc=0.01,dram=0.001,watchdog=0.01). Keys: \
           seed, sram (bit-flip rate/cycle), noc (degrade probability), \
           jitter (slowdown factor), dram (stall probability), stall \
           (stall cycles), watchdog (hang probability), retries (bounded \
           retry budget before paradigm fallback). Identical specs give \
           byte-identical reports at any --jobs count.")

let list_cmd =
  let run scale = List.iter print_endline (workload_names scale) in
  Cmd.v (Cmd.info "list" ~doc:"list available workloads (sorted)")
    Term.(const run $ scale_arg)

(* a tune report is JSON lines (one infs-tune-1 object per tuned
   workload); pick the entry for [wname] *)
let tuned_of_file file wname =
  match
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | l -> go (if String.trim l = "" then acc else l :: acc)
        in
        go [])
  with
  | exception Sys_error e -> Error ("cannot open tune report: " ^ e)
  | lines -> (
    let results =
      List.filter_map
        (fun l ->
          match Json.parse l with
          | Error _ -> None
          | Ok j -> Result.to_option (Infs_tune.Tune.result_of_json j))
        lines
    in
    match
      List.find_opt
        (fun (r : Infs_tune.Tune.result) -> r.Infs_tune.Tune.workload = wname)
        results
    with
    | Some r -> Ok r
    | None ->
      Error
        (Printf.sprintf "tune report %s has no entry for workload %s" file
           wname))

let run_cmd =
  let run scale wname pname functional trace_file trace_format metrics_file
      prof_file faults explain tuned_file =
    match (find_workload scale wname, paradigm_of_string pname) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      exit 1
    | Ok w, Ok p -> (
      let open_trace f =
        try open_out f
        with Sys_error e ->
          prerr_endline ("error: cannot open trace file: " ^ e);
          exit 1
      in
      let oc = Option.map open_trace trace_file in
      let trace =
        match oc with
        | Some oc -> Trace.to_channel trace_format oc
        | None -> Trace.null
      in
      let metrics =
        if metrics_file = None then Metrics.null else Metrics.create ()
      in
      let prof = if prof_file = None then Prof.null else Prof.create () in
      let options =
        { E.default_options with functional; trace; metrics; prof; faults }
      in
      (* a tuned decision vector replaces both the paradigm choice and the
         layout/Eq. 2 heuristics (-p is overridden; documented) *)
      let p, options =
        match tuned_file with
        | None -> (p, options)
        | Some f -> (
          match tuned_of_file f w.WL.wname with
          | Error e ->
            prerr_endline ("error: " ^ e);
            exit 1
          | Ok r -> Infs_tune.Tune.apply r options)
      in
      let result = E.run ~options p w in
      Trace.close trace;
      Option.iter close_out oc;
      match result with
      | Error e ->
        prerr_endline ("error: " ^ e);
        exit 1
      | Ok r ->
        print_report r;
        if explain then Format.printf "%a" R.pp_decisions r;
        Option.iter
          (fun f ->
            Format.printf "trace: %d events -> %s@." (Trace.events_seen trace) f)
          trace_file;
        Option.iter
          (fun f ->
            (try Metrics.write_file metrics f
             with Sys_error e ->
               prerr_endline ("error: cannot write metrics file: " ^ e);
               exit 1);
            Format.printf "metrics: %d series -> %s@."
              (List.length (Metrics.snapshot metrics))
              f)
          metrics_file;
        Option.iter (write_prof prof) prof_file;
        (* batch scripts rely on the exit status: a functional mismatch
           against the golden model is a failure, not a report footnote *)
        (match r.R.correctness with
        | `Checked err when err > functional_tolerance ->
          Printf.eprintf
            "error: functional mismatch: max error %.3e exceeds tolerance %.0e\n"
            err functional_tolerance;
          exit 1
        | _ -> ()))
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain-decisions" ]
          ~doc:
            "print each kernel's \u{a7}4.3 offload verdict (Eq. 2 core vs. \
             in-memory cycles, chosen target, reason) as a compact table \
             after the report \u{2014} no --trace round-trip needed")
  in
  let tuned_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tuned" ] ~docv:"FILE"
          ~doc:
            "consume a tuned decision vector from an `infs_run tune --out` \
             report: the winner's paradigm (overriding -p), tile override \
             and Eq. 2 policy are applied to this run")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"simulate one workload under one paradigm")
    Term.(
      const run $ scale_arg $ workload_arg $ paradigm_arg $ functional_arg
      $ trace_arg $ trace_format_arg $ metrics_arg $ prof_arg $ faults_arg
      $ explain_arg $ tuned_arg)

let compile_cmd =
  let run scale wname =
    match find_workload scale wname with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok w -> (
      match Fat_binary.compile w.WL.prog with
      | Error e ->
        prerr_endline ("compile error: " ^ e);
        exit 1
      | Ok fb ->
        Format.printf "%a@." Ast.pp_program fb.Fat_binary.prog;
        List.iter
          (fun (r : Fat_binary.region) ->
            Format.printf "@.--- region %s ---@." r.kernel.Ast.kname;
            Format.printf "%s@." (Sdfg.to_string r.sdfg);
            (match r.fallback with
            | Some reason -> Format.printf "fallback (near-memory only): %s@." reason
            | None ->
              Format.printf "%s@." (Tdfg.to_string r.optimized);
              Format.printf "e-graph: %d rounds, cost %.3g -> %.3g@."
                r.opt_stats.Extract.rounds r.opt_stats.cost_before
                r.opt_stats.cost_after;
              List.iter
                (fun (wl, (s : Schedule.t)) ->
                  Format.printf "schedule %d wordlines: %d/%d slots@." wl
                    s.slots_used s.capacity)
                r.schedules);
            let h = r.hints in
            Format.printf "hints: shift=%s bc=%s reduce=%s primary=%s@."
              (String.concat "," (List.map string_of_int h.Fat_binary.shift_dims))
              (String.concat "," (List.map string_of_int h.bc_dims))
              (String.concat "," (List.map string_of_int h.reduce_dims))
              (Option.value ~default:"-" h.primary_array))
          fb.regions)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"show the compiled fat binary (tDFGs, schedules, hints)")
    Term.(const run $ scale_arg $ workload_arg)

let lower_cmd =
  let run scale wname kname =
    match find_workload scale wname with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok w -> (
      match Fat_binary.compile w.WL.prog with
      | Error e ->
        prerr_endline ("compile error: " ^ e);
        exit 1
      | Ok fb -> (
        let region =
          match kname with
          | Some k -> Fat_binary.region_of fb k
          | None -> (
            match fb.Fat_binary.regions with r :: _ -> Some r | [] -> None)
        in
        match region with
        | None ->
          prerr_endline "no such region";
          exit 1
        | Some r -> (
          match (r.fallback, List.assoc_opt 256 r.schedules) with
          | Some f, _ ->
            prerr_endline ("region is near-memory only: " ^ f);
            exit 1
          | None, None ->
            prerr_endline "no 256-wordline schedule";
            exit 1
          | None, Some schedule -> (
            match Interp.create w.WL.prog ~params:w.WL.params with
            | Error e ->
              prerr_endline e;
              exit 1
            | Ok env ->
              (* resolve host-loop variables at their lower bounds for the
                 first invocation's view of the region *)
              let rec lows acc = function
                | Ast.Host_loop (l, body) :: rest ->
                  let v = Symaff.eval l.lo (fun x -> List.assoc x acc) in
                  lows (lows ((l.ivar, v) :: acc) body) rest
                | _ :: rest -> lows acc rest
                | [] -> acc
              in
              let host_lows =
                try lows [] w.WL.prog.Ast.body with Not_found -> []
              in
              let envf v =
                match List.assoc_opt v host_lows with
                | Some x -> x
                | None -> Interp.lookup_int env v
              in
              let g = r.optimized in
              let shape =
                Array.init (Tdfg.lattice_dims g) (fun d ->
                    List.fold_left
                      (fun acc id ->
                        match Tdfg.domain g id with
                        | Tdfg.Finite rect ->
                          max acc (Hyperrect.hi (Symrect.resolve rect envf) d)
                        | Tdfg.Infinite -> acc)
                      1 (Tdfg.live_nodes g))
              in
              let layout =
                match
                  Layout.choose Machine_config.default ~hints:r.hints ~shape
                    ~elems_per_line:16
                with
                | Ok l -> l
                | Error e ->
                  prerr_endline e;
                  exit 1
              in
              Format.printf "layout: %s@." (Layout.to_string layout);
              let cmds, stats =
                Jit.lower Machine_config.default g ~schedule ~layout ~env:envf
              in
              Array.iter (fun c -> print_endline ("  " ^ Command.to_string c)) cmds;
              Format.printf
                "%d commands; jit %.1f us; %g in-memory element-ops; %g stream elems@."
                stats.Jit.commands
                (Machine_config.cycles_to_us Machine_config.default stats.jit_cycles)
                stats.compute_elems
                (stats.stream_load_elems +. stats.stream_store_elems)))))
  in
  let kernel_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "k"; "kernel" ] ~doc:"region (kernel) name; default: first")
  in
  Cmd.v
    (Cmd.info "lower"
       ~doc:"JIT-lower one region and dump the bit-serial command stream")
    Term.(const run $ scale_arg $ workload_arg $ kernel_arg)

(* ---------- batch: the JSON-lines job server ----------

   Reads one JSON job spec per line ({"workload": ..., "paradigm": ...,
   "functional": true, "tile": [4,64], "timeout_s": 5.0, ...}), executes
   the jobs on the multicore pool, and streams exactly one JSON report line
   per job, in submission order. Report lines carry only simulated
   quantities, so `--jobs N` output is byte-identical to `--jobs 1`;
   wall-clock and compile-cache statistics go to stderr. *)

type batch_spec = {
  sp_workload : string;
  sp_paradigm : string;
  sp_functional : bool;
  sp_optimize : bool;
  sp_warm : bool;
  sp_pre_transposed : bool;
  sp_charge_jit : bool;
  sp_tile : int array option;
  sp_policy : Decision.policy;
  sp_timeout : float option;
  sp_faults : Fault.spec option;  (* None: use the batch-wide --faults *)
}

let spec_of_json j =
  let bool_field name default =
    match Json.member name j with
    | None -> Ok default
    | Some v -> (
      match Json.to_bool v with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "field %s must be a boolean" name))
  in
  match Option.bind (Json.member "workload" j) Json.to_str with
  | None -> Error "spec needs a \"workload\" string field"
  | Some sp_workload -> (
    let sp_paradigm =
      Option.value ~default:"inf-s"
        (Option.bind (Json.member "paradigm" j) Json.to_str)
    in
    let tile =
      match Json.member "tile" j with
      | None -> Ok None
      | Some v -> (
        match Option.map (List.map Json.to_int) (Json.to_list v) with
        | Some ints when List.for_all Option.is_some ints ->
          Ok (Some (Array.of_list (List.map Option.get ints)))
        | _ -> Error "field tile must be an array of integers")
    in
    let timeout =
      match Json.member "timeout_s" j with
      | None -> Ok None
      | Some v -> (
        match Json.to_num v with
        | Some f when f > 0.0 -> Ok (Some f)
        | _ -> Error "field timeout_s must be a positive number")
    in
    (* "eq2": either a single override string applied to every kernel, or
       an object of per-kernel overrides with "*" as the default — the
       spec-level encoding of a tuned decision table *)
    let policy =
      match Json.member "eq2" j with
      | None -> Ok Decision.Heuristic
      | Some (Json.Str s) -> (
        match Decision.override_of_string s with
        | Ok Decision.Auto -> Ok Decision.Heuristic
        | Ok ov -> Ok (Decision.Tuned { default = ov; per_kernel = [] })
        | Error e -> Error ("field eq2: " ^ e))
      | Some (Json.Obj kvs) ->
        List.fold_left
          (fun acc (k, v) ->
            Result.bind acc (fun (default, per_kernel) ->
                match Option.map Decision.override_of_string (Json.to_str v) with
                | Some (Ok ov) ->
                  if k = "*" then Ok (ov, per_kernel)
                  else Ok (default, (k, ov) :: per_kernel)
                | Some (Error e) -> Error ("field eq2: " ^ e)
                | None -> Error "field eq2: overrides must be strings"))
          (Ok (Decision.Auto, []))
          kvs
        |> Result.map (fun (default, per_kernel) ->
               Decision.Tuned
                 { default; per_kernel = List.sort compare per_kernel })
      | Some _ -> Error "field eq2 must be a string or an object"
    in
    let faults =
      match Json.member "faults" j with
      | None -> Ok None
      | Some v -> (
        match Json.to_str v with
        | None -> Error "field faults must be a spec string"
        | Some s -> (
          match Fault.parse s with
          | Ok sp -> Ok (Some sp)
          | Error e -> Error ("field faults: " ^ e)))
    in
    match
      ( bool_field "functional" false,
        bool_field "optimize" true,
        bool_field "warm" false,
        bool_field "pre_transposed" false,
        bool_field "charge_jit" true,
        tile,
        policy,
        timeout,
        faults )
    with
    | ( Ok sp_functional,
        Ok sp_optimize,
        Ok sp_warm,
        Ok sp_pre_transposed,
        Ok sp_charge_jit,
        Ok sp_tile,
        Ok sp_policy,
        Ok sp_timeout,
        Ok sp_faults ) ->
      Ok
        {
          sp_workload;
          sp_paradigm;
          sp_functional;
          sp_optimize;
          sp_warm;
          sp_pre_transposed;
          sp_charge_jit;
          sp_tile;
          sp_policy;
          sp_timeout;
          sp_faults;
        }
    | (Error _ as e), _, _, _, _, _, _, _, _
    | _, (Error _ as e), _, _, _, _, _, _, _
    | _, _, (Error _ as e), _, _, _, _, _, _
    | _, _, _, (Error _ as e), _, _, _, _, _
    | _, _, _, _, (Error _ as e), _, _, _, _
    | _, _, _, _, _, (Error _ as e), _, _, _
    | _, _, _, _, _, _, (Error _ as e), _, _
    | _, _, _, _, _, _, _, (Error _ as e), _
    | _, _, _, _, _, _, _, _, (Error _ as e) -> e)

(* Each job re-resolves its workload from the catalog, so jobs never share
   mutable workload state (notably the lazy input arrays) across domains;
   compiled fat binaries are shared through the engine's compile cache.
   With [with_metrics] each job owns a fresh registry (registries are
   single-domain) and returns its snapshot as JSON; the snapshot holds only
   simulated quantities, so report lines stay byte-identical across
   [--jobs] settings. [with_prof] likewise gives the job a private span
   profiler (returned for the caller to merge in submission order). *)
let exec_spec scale ~with_metrics ?(with_prof = false) ~faults
    (spec : batch_spec) =
  match
    (find_workload scale spec.sp_workload, paradigm_of_string spec.sp_paradigm)
  with
  | Error e, _ | _, Error e -> Error e
  | Ok w, Ok p -> (
    let metrics = if with_metrics then Metrics.create () else Metrics.null in
    let prof = if with_prof then Prof.create () else Prof.null in
    let options =
      {
        E.default_options with
        functional = spec.sp_functional;
        optimize = spec.sp_optimize;
        warm_data = spec.sp_warm;
        pre_transposed = spec.sp_pre_transposed;
        charge_jit = spec.sp_charge_jit;
        tile_override = spec.sp_tile;
        decision_policy = spec.sp_policy;
        share_compile = true;
        metrics;
        prof;
        faults = (match spec.sp_faults with Some f -> f | None -> faults);
      }
    in
    match E.run ~options p w with
    | Error e -> Error e
    | Ok r ->
      (* Fault mitigation guarantees a correct functional result; a
         mismatch under an armed fault model means mitigation fell short —
         surface it as the pool's structured Degraded outcome (never
         retried: the seeded model would re-derive it) rather than a
         crash or a silent wrong answer. *)
      (match (r.R.faults, r.R.correctness) with
      | Some _, `Checked err when err > functional_tolerance ->
        raise
          (Pool.Degradation
             (Printf.sprintf
                "functional mismatch under faults: max error %.3e exceeds %.0e"
                err functional_tolerance))
      | _ -> ());
      let mj =
        if with_metrics then
          (* whether THIS job hit the process-wide compile cache depends
             on pool scheduling, not on the job — keep those series out
             of the line or --jobs would change the bytes *)
          Some
            (Metrics.to_json
               (List.filter
                  (fun (s : Metrics.series) ->
                    s.Metrics.name <> "compile_cache.hits"
                    && s.Metrics.name <> "compile_cache.misses")
                  (Metrics.snapshot metrics)))
        else None
      in
      Ok (r, mj, prof))

let batch_paradigm_names = [ "base1"; "base"; "near-l3"; "in-l3"; "inf-s"; "inf-s-nojit" ]

let matrix_specs scale =
  List.concat_map
    (fun wname ->
      List.map
        (fun pname -> Ok (Printf.sprintf "%s x %s" wname pname,
          {
            sp_workload = wname;
            sp_paradigm = pname;
            sp_functional = false;
            sp_optimize = true;
            sp_warm = false;
            sp_pre_transposed = false;
            sp_charge_jit = true;
            sp_tile = None;
            sp_policy = Decision.Heuristic;
            sp_timeout = None;
            sp_faults = None;
          }))
        batch_paradigm_names)
    (workload_names scale)

let read_spec_lines ic =
  let rec go acc lineno =
    match input_line ic with
    | exception End_of_file -> List.rev acc
    | line ->
      let lineno = lineno + 1 in
      let t = String.trim line in
      if t = "" then go acc lineno
      else
        let spec =
          match Json.parse t with
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
          | Ok j -> (
            match spec_of_json j with
            | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
            | Ok s -> Ok (Printf.sprintf "line %d" lineno, s))
        in
        go (spec :: acc) lineno
  in
  go [] 0

let batch_cmd =
  let run scale jobs spec_file matrix timeout_s out_file metrics_file
      prof_file meta_commit faults job_retries =
    let specs =
      if matrix then matrix_specs scale
      else
        match spec_file with
        | None | Some "-" -> read_spec_lines stdin
        | Some f ->
          let ic =
            try open_in f
            with Sys_error e ->
              prerr_endline ("error: cannot open spec file: " ^ e);
              exit 1
          in
          Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_spec_lines ic)
    in
    let oc =
      match out_file with
      | None -> stdout
      | Some f -> (
        try open_out f
        with Sys_error e ->
          prerr_endline ("error: cannot open output file: " ^ e);
          exit 1)
    in
    let jobs = match jobs with Some j -> max 1 j | None -> Pool.recommended_jobs () in
    let t0 = Unix.gettimeofday () in
    let pool = Pool.create ~jobs () in
    let failures = ref 0 in
    let degraded = ref 0 in
    let meta = match meta_commit with None -> [] | Some c -> [ ("commit", c) ] in
    (* each job profiles into its own registry (single-domain); merging in
       submission order here keeps the aggregate's counts deterministic *)
    let batch_prof = if prof_file = None then Prof.null else Prof.create () in
    let emit id json_fields =
      output_string oc (Json.to_string (Json.Obj (("id", Json.Num (float_of_int id)) :: json_fields)));
      output_char oc '\n';
      flush oc
    in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        let tickets =
          List.map
            (fun spec ->
              match spec with
              | Error e -> `Bad e
              | Ok (_, sp) ->
                let timeout_s =
                  match sp.sp_timeout with Some t -> Some t | None -> timeout_s
                in
                `Job
                  (Pool.submit pool ~retries:job_retries ~backoff_s:0.01
                     ?timeout_s (fun () ->
                       exec_spec scale
                         ~with_metrics:(metrics_file <> None)
                         ~with_prof:(prof_file <> None) ~faults sp)))
            specs
        in
        List.iteri
          (fun id t ->
            let error e =
              incr failures;
              emit id [ ("ok", Json.Bool false); ("error", Json.Str e) ]
            in
            match t with
            | `Bad e -> error e
            | `Job tk -> (
              match Pool.await tk with
              | Error (Pool.Degraded msg) ->
                (* structured degraded outcome: reported on its own line,
                   counted separately from failures (the job terminated
                   with a diagnosis, not a crash) *)
                incr degraded;
                emit id
                  [
                    ("ok", Json.Bool false);
                    ("degraded", Json.Bool true);
                    ("error", Json.Str msg);
                  ]
              | Error pe -> error (Pool.error_to_string pe)
              | Ok (Error e) -> error e
              | Ok (Ok (r, mj, jprof)) ->
                Prof.merge_into ~dst:batch_prof jprof;
                emit id
                  (("ok", Json.Bool true) :: ("report", R.to_json ~meta r)
                  :: (match mj with
                     | Some j -> [ ("metrics", j) ]
                     | None -> []))))
          tickets);
    if oc != stdout then close_out oc;
    (* pool utilization goes to the side file, never into report lines:
       wall-clock quantities would break the byte-identical-across---jobs
       guarantee. Pool.stats is exact here — shutdown joined the workers. *)
    Option.iter
      (fun f ->
        let m = Metrics.create () in
        let st = Pool.stats pool in
        Metrics.gauge_add m "pool.wall_s" st.Pool.wall_s;
        Array.iteri
          (fun i (jobs_run, busy_s) ->
            let labels = [ ("worker", string_of_int i) ] in
            Metrics.incr m ~labels "pool.worker.jobs"
              (float_of_int jobs_run);
            Metrics.gauge_add m ~labels "pool.worker.busy_s" busy_s;
            Metrics.gauge_add m ~labels "pool.worker.busy_frac"
              (busy_s /. Float.max 1e-9 st.Pool.wall_s))
          st.Pool.workers;
        try Metrics.write_file m f
        with Sys_error e ->
          prerr_endline ("error: cannot write metrics file: " ^ e);
          exit 1)
      metrics_file;
    (* the pool is shut down here, so its per-worker rows are exact *)
    Option.iter
      (fun f ->
        Pool.profile_into pool batch_prof;
        write_prof batch_prof f)
      prof_file;
    let elapsed = Unix.gettimeofday () -. t0 in
    let hits, misses, entries = E.compile_cache_stats () in
    let total = List.length specs in
    Printf.eprintf
      "batch: %d job%s on %d domain%s in %.2f s; compile cache: %d hits / %d \
       misses (%d entries, %.0f%% hit rate)\n"
      total
      (if total = 1 then "" else "s")
      jobs
      (if jobs = 1 then "" else "s")
      elapsed hits misses entries
      (100.0 *. float_of_int hits /. float_of_int (max 1 (hits + misses)));
    if !degraded > 0 then
      Printf.eprintf "batch: %d job%s degraded (structured, not counted as failures)\n"
        !degraded
        (if !degraded = 1 then "" else "s");
    if !failures > 0 then begin
      Printf.eprintf "batch: %d job%s failed\n" !failures
        (if !failures = 1 then "" else "s");
      exit 1
    end
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ]
          ~doc:"worker domains (default: the machine's recommended domain count)")
  in
  let spec_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:"JSON-lines job spec file; \"-\" or omitted reads stdin")
  in
  let matrix_arg =
    Arg.(
      value & flag
      & info [ "matrix" ]
          ~doc:"ignore --spec and run the full catalog x paradigm matrix")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-s" ]
          ~doc:"default per-job wall-clock timeout (seconds); a job's \
                timeout_s field overrides it")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"write report lines to $(docv) instead of stdout")
  in
  let batch_metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "embed a per-job metrics snapshot in every report line \
             (simulated quantities only, so lines stay byte-identical \
             across --jobs) and write pool worker-utilization metrics to \
             $(docv) after shutdown")
  in
  let job_retries_arg =
    Arg.(
      value & opt int 0
      & info [ "job-retries" ] ~docv:"N"
          ~doc:
            "re-run a job that raised an ordinary exception up to $(docv) \
             extra times with exponential backoff; structured degraded \
             outcomes are never retried")
  in
  let meta_commit_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "meta-commit" ] ~docv:"HASH"
          ~doc:
            "append a provenance meta block with this commit hash to every \
             report line (supplied by the caller — the tool never reads \
             the clock or the repository itself, so output stays \
             deterministic)")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "execute JSON-lines job specs on a multicore worker pool, \
          streaming one JSON report line per job in submission order")
    Term.(
      const run $ scale_arg $ jobs_arg $ spec_arg $ matrix_arg $ timeout_arg
      $ out_arg $ batch_metrics_arg $ prof_arg $ meta_commit_arg $ faults_arg
      $ job_retries_arg)

(* ---------- tune: autotuning decision search ----------

   Enumerates paradigm x tile x Eq. 2-override candidates per workload,
   scores each with a fast sim run fanned out on the pool, refines
   per-kernel overrides greedily, and emits one deterministic JSON report
   line (schema infs-tune-1) per workload. Winners are memoized in a
   content-addressed cache; --cache persists it across processes. *)

let tune_cmd =
  let run scale wnames all budget jobs out_file cache_file =
    let names =
      if all then workload_names scale
      else
        match wnames with
        | [] ->
          prerr_endline "error: tune needs -w WORKLOAD (repeatable) or --all";
          exit 1
        | ns -> ns
    in
    (match cache_file with
    | Some f when Sys.file_exists f -> (
      match Infs_tune.Tune.load_cache f with
      | Ok n ->
        Printf.eprintf "tune: loaded %d cached decision%s from %s\n" n
          (if n = 1 then "" else "s")
          f
      | Error e ->
        prerr_endline ("error: cannot load tune cache: " ^ e);
        exit 1)
    | _ -> ());
    let oc =
      match out_file with
      | None -> stdout
      | Some f -> (
        try open_out f
        with Sys_error e ->
          prerr_endline ("error: cannot open output file: " ^ e);
          exit 1)
    in
    let jobs =
      match jobs with Some j -> max 1 j | None -> Pool.recommended_jobs ()
    in
    let failures = ref 0 in
    List.iter
      (fun name ->
        match find_workload scale name with
        | Error e ->
          incr failures;
          prerr_endline ("error: " ^ e)
        | Ok _ -> (
          (* each scoring job re-resolves the workload from the catalog so
             jobs never share lazy input state across domains *)
          let resolve () =
            match find_workload scale name with
            | Ok w -> w
            | Error e -> failwith e
          in
          match Infs_tune.Tune.tune ~budget ~jobs resolve with
          | Error e ->
            incr failures;
            prerr_endline (Printf.sprintf "error: tune %s: %s" name e)
          | Ok r ->
            output_string oc (Json.to_string (Infs_tune.Tune.result_to_json r));
            output_char oc '\n';
            flush oc;
            let w = r.Infs_tune.Tune.winner in
            Printf.eprintf "tune: %-20s %3d explored  gap %.3fx  winner %s%s\n"
              name
              (List.length r.Infs_tune.Tune.explored)
              r.Infs_tune.Tune.gap
              (Json.to_string
                 (Infs_tune.Tune.config_to_json w.Infs_tune.Tune.config))
              (if r.Infs_tune.Tune.from_cache then "  [cached]" else "")))
      names;
    if oc != stdout then close_out oc;
    Option.iter (fun f -> Infs_tune.Tune.save_cache f) cache_file;
    if !failures > 0 then exit 1
  in
  let workloads_arg =
    Arg.(
      value & opt_all string []
      & info [ "w"; "workload" ]
          ~doc:"workload to tune (repeatable; see `infs_run list`)")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"tune every catalog workload (sorted order)")
  in
  let budget_arg =
    Arg.(
      value & opt int Infs_tune.Tune.default_budget
      & info [ "budget" ] ~docv:"N"
          ~doc:"max scoring runs per workload (candidate enumeration plus \
                per-kernel refinement share the budget)")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ]
          ~doc:"worker domains for the scoring fan-out (default: the \
                machine's recommended domain count); the report is \
                byte-identical at any value")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"write the JSON tuning report (one infs-tune-1 line per \
                workload) to $(docv) instead of stdout")
  in
  let cache_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"FILE"
          ~doc:"load the memoized decision cache from $(docv) before tuning \
                (if it exists) and save it back after \u{2014} repeat \
                invocations then explore 0 new candidates")
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "search layout x tiling x paradigm x Eq. 2-override configurations \
          per workload on the worker pool, memoize the winning decision \
          vector, and emit a deterministic JSON tuning report consumable by \
          `run --tuned`")
    Term.(
      const run $ scale_arg $ workloads_arg $ all_arg $ budget_arg $ jobs_arg
      $ out_arg $ cache_arg)

(* ---------- serve: persistent request server over the pool ----------

   Same JSON-lines job format as `batch`, but long-lived: clients connect
   to a Unix-domain socket, write one spec per line and read one response
   line per request. The process-wide compile cache stays warm across
   requests. `--client` turns the binary into the load generator. *)

let serve_cmd =
  let run scale socket client jobs queue_depth timeout_s metrics_file
      trace_file prof_file faults rps duration connections wname pname shards
      tcp_port tenant_quota redispatch_max heartbeat_s target tenant priority
      check =
    if client then begin
      let tgt =
        match (target, socket) with
        | Some tg, _ -> tg
        | None, Some s -> s
        | None, None ->
          prerr_endline "error: client needs --target (or --socket)";
          exit 1
      in
      (* comma-separated workloads cycle round-robin across requests, so
         a shard soak exercises several distinct compile-cache keys *)
      let wnames =
        List.filter (fun s -> s <> "") (String.split_on_char ',' wname)
      in
      let wnames = if wnames = [] then [ "vec_add" ] else wnames in
      let mk w =
        Json.to_string
          (Json.Obj
             ([ ("workload", Json.Str w); ("paradigm", Json.Str pname) ]
             @ (match timeout_s with
               | Some ts -> [ ("timeout_s", Json.Num ts) ]
               | None -> [])
             @ (match tenant with
               | Some tn -> [ ("tenant", Json.Str tn) ]
               | None -> [])
             @
             match priority with
             | Some p -> [ ("priority", Json.Str p) ]
             | None -> []))
      in
      let lines = Array.of_list (List.map mk wnames) in
      let body i = lines.(i mod Array.length lines) in
      match
        Serve_client.run ~socket:tgt ~rps ~duration_s:duration ~connections
          ~collect_reports:(if check then Array.length lines else 0)
          ~body ()
      with
      | Error e ->
        prerr_endline ("error: " ^ e);
        exit 1
      | Ok r ->
        let answered = Serve_client.answered r in
        Printf.printf
          "sent %d  answered %d  ok %d  overloaded %d  timeout %d  error %d  \
           degraded %d  cancelled %d  unanswered %d\n"
          r.Serve_client.sent answered r.ok r.overloaded r.timeout r.error
          r.degraded r.cancelled r.unanswered;
        Printf.printf "throughput: %.1f answered/s over %.2f s wall\n"
          (float_of_int answered /. Float.max 1e-9 r.wall_s)
          r.wall_s;
        if r.ok_latency_us <> [] then begin
          let q p = Stats.quantile p r.ok_latency_us /. 1e3 in
          Printf.printf
            "ok latency: p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms\n"
            (q 0.5) (q 0.95) (q 0.99) (q 1.0)
        end;
        (* --check: every served report must be byte-identical to a
           direct (in-process) run of the same spec *)
        if check then begin
          let failed = ref false in
          if List.length r.ok_reports < Array.length lines then begin
            Printf.eprintf
              "check: only %d of %d distinct specs got an ok response\n"
              (List.length r.ok_reports) (Array.length lines);
            failed := true
          end;
          List.iter
            (fun (body_line, served) ->
              let direct =
                match Json.parse body_line with
                | Error e -> Error ("parse: " ^ e)
                | Ok j -> (
                  match spec_of_json j with
                  | Error e -> Error e
                  | Ok sp -> (
                    match exec_spec scale ~with_metrics:false ~faults sp with
                    | Error e -> Error e
                    | Ok (rep, _, _) -> Ok (Json.to_string (R.to_json rep))))
              in
              match direct with
              | Error e ->
                Printf.eprintf "check: direct run failed for %s: %s\n"
                  body_line e;
                failed := true
              | Ok want ->
                if want <> served then begin
                  Printf.eprintf
                    "check: served report differs from direct run for %s\n"
                    body_line;
                  failed := true
                end)
            r.ok_reports;
          let digest =
            Digest.to_hex
              (Digest.string
                 (String.concat "\n"
                    (List.sort compare (List.map snd r.ok_reports))))
          in
          Printf.printf "check: %s (%d distinct specs, %s)\n" digest
            (List.length r.ok_reports)
            (if !failed then "MISMATCH" else "byte-identical to direct runs");
          if !failed then exit 1
        end;
        if r.error > 0 || r.cancelled > 0 || answered < r.sent then exit 1
    end
    else begin
      let socket =
        match socket with
        | Some s -> s
        | None ->
          prerr_endline "error: serve needs --socket";
          exit 1
      in
      let toc =
        Option.map
          (fun f ->
            try open_out f
            with Sys_error e ->
              prerr_endline ("error: cannot open trace file: " ^ e);
              exit 1)
          trace_file
      in
      let trace =
        match toc with
        | Some oc -> Trace.to_channel Trace.Jsonl oc
        | None -> Trace.null
      in
      if shards > 0 then begin
        (* sharded front tier: N child serve processes, each with its own
           pool and warm compile cache, behind a consistent-hash router *)
        let scale_s = match scale with `Paper -> "paper" | `Test -> "test" in
        let argv_of i sock =
          Array.of_list
            ([
               Sys.executable_name; "serve"; "--socket"; sock; "--queue-depth";
               string_of_int queue_depth; "--scale"; scale_s;
             ]
            @ (match jobs with
              | Some j -> [ "--jobs"; string_of_int j ]
              | None -> [])
            @ (match timeout_s with
              | Some ts -> [ "--timeout-s"; Printf.sprintf "%g" ts ]
              | None -> [])
            @ (if Fault.is_none faults then []
               else [ "--faults"; Fault.to_string faults ])
            @ (match metrics_file with
              | Some f -> [ "--metrics"; Printf.sprintf "%s.shard%d" f i ]
              | None -> [])
            @
            match prof_file with
            | Some f -> [ "--prof"; Printf.sprintf "%s.shard%d" f i ]
            | None -> [])
        in
        let cfg =
          {
            (Shard.default_config ~socket_path:socket ~shards
               ~backend:(Shard.Proc argv_of))
            with
            tcp_port;
            queue_depth;
            tenant_quota;
            redispatch_max;
            heartbeat_s;
            default_timeout_s = timeout_s;
            metrics_path = metrics_file;
            trace;
            prof = (if prof_file = None then Prof.null else Prof.create ());
            prof_path = Option.map (fun f -> f ^ ".front") prof_file;
          }
        in
        match Shard.start cfg with
        | Error e ->
          prerr_endline ("error: " ^ e);
          exit 1
        | Ok t ->
          List.iter
            (fun s ->
              Sys.set_signal s
                (Sys.Signal_handle (fun _ -> Shard.request_stop t)))
            [ Sys.sigterm; Sys.sigint ];
          (* pid lines let a soak harness kill a specific shard mid-run *)
          List.iteri
            (fun i pid ->
              match pid with
              | Some pid -> Printf.eprintf "serve: shard %d pid %d\n%!" i pid
              | None -> ())
            (Shard.shard_pids t);
          Printf.eprintf
            "serve: front listening on %s%s (%d shards, queue depth %d)\n%!"
            socket
            (match tcp_port with
            | Some p -> Printf.sprintf " and tcp:127.0.0.1:%d" p
            | None -> "")
            shards queue_depth;
          let st = Shard.wait t in
          Trace.close trace;
          Option.iter close_out toc;
          Printf.eprintf
            "serve: front drained: %d connection%s, %d received, %d admitted, \
             %d answered, %d shed (%d depth, %d quota, %d priority), %d bad, \
             routes %d hot / %d cold / %d moved, %d redispatched, %d lost, %d \
             crash%s, %d respawn%s, %d drained\n%!"
            st.Shard.connections
            (if st.Shard.connections = 1 then "" else "s")
            st.Shard.received st.Shard.admitted st.Shard.answered
            (Shard.shed_total st) st.Shard.shed st.Shard.shed_quota
            st.Shard.shed_priority st.Shard.bad st.Shard.route_hot
            st.Shard.route_cold st.Shard.route_moved st.Shard.redispatched
            st.Shard.lost st.Shard.crashes
            (if st.Shard.crashes = 1 then "" else "es")
            st.Shard.respawns
            (if st.Shard.respawns = 1 then "" else "s")
            st.Shard.drained;
          (* a clean drain answers every admitted request, none of them
             via the re-dispatch-exhausted error path *)
          if st.Shard.lost > 0 || st.Shard.answered <> st.Shard.admitted
          then begin
            prerr_endline
              "serve: error: front drain lost or left admitted requests \
               unanswered";
            exit 1
          end
      end
      else begin
      let jobs =
        match jobs with Some j -> max 1 j | None -> Pool.recommended_jobs ()
      in
      let cfg =
        {
          (Serve.default_config ~socket_path:socket) with
          jobs;
          queue_depth;
          default_timeout_s = timeout_s;
          metrics_path = metrics_file;
          trace;
          prof = (if prof_file = None then Prof.null else Prof.create ());
          prof_path = prof_file;
        }
      in
      let handler j =
        match spec_of_json j with
        | Error e -> Error e
        | Ok sp -> (
          match exec_spec scale ~with_metrics:false ~faults sp with
          | Error e -> Error e
          | Ok (r, _, _) -> Ok (R.to_json r))
      in
      match Serve.start cfg ~handler with
      | Error e ->
        prerr_endline ("error: " ^ e);
        exit 1
      | Ok t ->
        (* graceful drain on SIGTERM/SIGINT: request_stop only sets a
           flag, so it is safe inside the handler *)
        List.iter
          (fun s ->
            Sys.set_signal s (Sys.Signal_handle (fun _ -> Serve.request_stop t)))
          [ Sys.sigterm; Sys.sigint ];
        Printf.eprintf "serve: listening on %s (%d worker%s, queue depth %d)\n%!"
          socket jobs
          (if jobs = 1 then "" else "s")
          cfg.Serve.queue_depth;
        let st = Serve.wait t in
        Trace.close trace;
        Option.iter close_out toc;
        Printf.eprintf
          "serve: drained: %d connection%s, %d received, %d admitted (%d ok, \
           %d failed, %d timeout, %d degraded, %d cancelled), %d shed, %d \
           bad, %d answered during drain\n%!"
          st.Serve.connections
          (if st.Serve.connections = 1 then "" else "s")
          st.received st.admitted st.ok st.failed st.deadline_exceeded
          st.degraded st.cancelled st.shed st.bad st.drained;
        (* a graceful drain answers every admitted request and cancels none *)
        if st.cancelled > 0 || Serve.answered st <> st.admitted then begin
          prerr_endline "serve: error: drain left admitted requests unanswered";
          exit 1
        end
      end
    end
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Unix-domain socket path (server: required; client: used when \
             --target is absent)")
  in
  let shards_arg =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "server: run a sharded front tier over $(docv) child serve \
             processes (consistent-hash routing by compile-cache key, \
             crash re-dispatch, respawn); 0 serves directly in-process")
  in
  let tcp_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:
            "server with --shards: additionally listen on loopback TCP \
             port $(docv)")
  in
  let tenant_quota_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tenant-quota" ] ~docv:"N"
          ~doc:
            "front tier: max concurrent in-flight requests per distinct \
             tenant field; beyond it requests are shed as overloaded")
  in
  let redispatch_arg =
    Arg.(
      value & opt int 2
      & info [ "redispatch-max" ] ~docv:"N"
          ~doc:
            "front tier: re-dispatch budget per request when its shard \
             crashes; exhaustion answers a structured error")
  in
  let heartbeat_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "heartbeat-s" ] ~docv:"S"
          ~doc:
            "front tier: ping each shard every $(docv) seconds and declare \
             it dead after 3 missed pongs (crashes are detected by EOF \
             even without heartbeats)")
  in
  let target_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "target" ] ~docv:"TARGET"
          ~doc:
            "client: unix:PATH, tcp:HOST:PORT, or a bare socket path; \
             overrides --socket")
  in
  let tenant_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tenant" ] ~docv:"NAME"
          ~doc:"client: tenant field to stamp on every request")
  in
  let priority_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "priority" ] ~docv:"CLASS"
          ~doc:
            "client: priority field to stamp on every request (low is shed \
             first under load)")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "client: verify every served report is byte-identical to a \
             direct in-process run of the same spec and print a digest of \
             the distinct reports")
  in
  let client_arg =
    Arg.(
      value & flag
      & info [ "client" ]
          ~doc:"run the load generator against --socket instead of serving")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ]
          ~doc:"worker domains (default: the machine's recommended domain count)")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "admission bound: requests beyond $(docv) outstanding are shed \
             with a structured overloaded response")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-s" ]
          ~doc:
            "server: default per-request deadline (a request's timeout_s \
             field overrides it); client: timeout_s field to send")
  in
  let serve_metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "flush a final metrics snapshot (request counters, queue-depth \
             gauge, latency histogram, pool utilization) to $(docv) on drain")
  in
  let rps_arg =
    Arg.(
      value & opt float 20.0
      & info [ "rps" ] ~docv:"N" ~doc:"client: requests per second to pace")
  in
  let duration_arg =
    Arg.(
      value & opt float 5.0
      & info [ "duration" ] ~docv:"S" ~doc:"client: seconds to send for")
  in
  let connections_arg =
    Arg.(
      value & opt int 1
      & info [ "connections" ] ~docv:"N"
          ~doc:"client: concurrent connections to spread the load over")
  in
  let serve_workload_arg =
    Arg.(
      value & opt string "vec_add"
      & info [ "w"; "workload" ]
          ~doc:
            "client: workload(s) to request; a comma-separated list cycles \
             round-robin across requests")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "serve the JSON-lines job format persistently over a Unix-domain \
          socket (bounded admission, per-request deadlines, graceful drain \
          on SIGTERM), optionally as a sharded front tier (--shards N) with \
          cache-affine consistent-hash routing, per-tenant quotas, priority \
          shedding, crash re-dispatch and TCP ingress; --client runs a \
          pacing load generator and reports p50/p95/p99 latency")
    Term.(
      const run $ scale_arg $ socket_arg $ client_arg $ jobs_arg $ queue_arg
      $ timeout_arg $ serve_metrics_arg $ trace_arg $ prof_arg $ faults_arg
      $ rps_arg $ duration_arg $ connections_arg $ serve_workload_arg
      $ paradigm_arg $ shards_arg $ tcp_arg $ tenant_quota_arg
      $ redispatch_arg $ heartbeat_arg $ target_arg $ tenant_arg
      $ priority_arg $ check_arg)

(* ---------- analyze: offline trace -> bottleneck report ---------- *)

let analyze_cmd =
  let run file top out_file =
    let ic =
      if file = "-" then stdin
      else
        try open_in file
        with Sys_error e ->
          prerr_endline ("error: cannot open trace file: " ^ e);
          exit 1
    in
    let cfg = Machine_config.default in
    let t =
      Trace_replay.create ~mesh_x:cfg.Machine_config.mesh_x ~mesh_y:cfg.mesh_y
        ~banks:cfg.l3_banks ~channels:cfg.mem_ctrls ()
    in
    let fed = Trace_replay.feed_channel t ic in
    if ic != stdin then close_in ic;
    match fed with
    | Error e ->
      prerr_endline ("error: " ^ file ^ ": " ^ e);
      exit 1
    | Ok _ -> (
      let report = Trace_replay.report ~top t in
      match out_file with
      | None -> print_string report
      | Some f -> (
        try
          let oc = open_out f in
          output_string oc report;
          close_out oc
        with Sys_error e ->
          prerr_endline ("error: cannot open output file: " ^ e);
          exit 1))
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:"JSONL trace produced by `infs_run run --trace`; \"-\" reads \
                stdin")
  in
  let top_arg =
    Arg.(
      value & opt int 8
      & info [ "top" ] ~docv:"N"
          ~doc:"entries per hottest-links / busiest-banks section")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"write the report to $(docv) instead of stdout")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "replay a JSONL trace into the metrics registry and print a \
          deterministic bottleneck report (cycle breakdown, NoC link \
          heatmap, SRAM bank occupancy, DRAM/JIT summaries, per-region \
          critical categories)")
    Term.(const run $ file_arg $ top_arg $ out_arg)

(* ---------- bench-diff: the regression gate ---------- *)

let read_whole_file f =
  match
    let ic = open_in f in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error ("cannot open " ^ f ^ ": " ^ e)
  | s -> Ok s

let load_bench_file f =
  Result.bind (read_whole_file f) (fun s ->
      match Bench_file.of_string s with
      | Error e -> Error (f ^ ": " ^ e)
      | Ok b -> Ok b)

let load_bench f = Result.map Bench_file.to_alist (load_bench_file f)

let bench_diff_cmd =
  let pct_conv =
    let parse s =
      let s = String.trim s in
      let n = String.length s in
      let s = if n > 0 && s.[n - 1] = '%' then String.sub s 0 (n - 1) else s in
      match float_of_string_opt s with
      | Some f when f >= 0.0 -> Ok f
      | _ -> Error (`Msg "expected a percentage, e.g. 5 or 5%")
    in
    Arg.conv (parse, fun ppf f -> Format.fprintf ppf "%g%%" f)
  in
  let run old_f new_f warn max_regress json_file =
    match (load_bench old_f, load_bench new_f) with
    | Error e, _ | _, Error e ->
      prerr_endline ("error: " ^ e);
      exit 1
    | Ok old_r, Ok new_r ->
      let compared = ref 0
      and regressed = ref 0
      and warned = ref 0
      and improved = ref 0
      and worst = ref neg_infinity in
      (* one JSON entry per printed line, new-file order then removals —
         the machine-readable twin of the text output for CI archival *)
      let jentries = ref [] in
      let jentry key status fields =
        jentries :=
          Json.Obj (("key", Json.Str key) :: ("status", Json.Str status) :: fields)
          :: !jentries
      in
      List.iter
        (fun (key, nc) ->
          match List.assoc_opt key old_r with
          | None ->
            Printf.printf "new entry   %-44s %12.4e cycles\n" key nc;
            jentry key "new" [ ("new_cycles", Json.Num nc) ]
          | Some oc ->
            incr compared;
            let delta = 100.0 *. (nc -. oc) /. Float.max 1e-9 oc in
            if delta > !worst then worst := delta;
            let fields =
              [
                ("old_cycles", Json.Num oc);
                ("new_cycles", Json.Num nc);
                ("delta_pct", Json.Num delta);
              ]
            in
            if delta > max_regress then begin
              incr regressed;
              Printf.printf "REGRESSION  %-44s %+8.2f%%  (%.4e -> %.4e cycles)\n"
                key delta oc nc;
              jentry key "regression" fields
            end
            else if delta > warn then begin
              incr warned;
              Printf.printf "warn        %-44s %+8.2f%%\n" key delta;
              jentry key "warn" fields
            end
            else if delta < -.warn then begin
              incr improved;
              Printf.printf "improved    %-44s %+8.2f%%\n" key delta;
              jentry key "improved" fields
            end
            else jentry key "ok" fields)
        new_r;
      List.iter
        (fun (key, oc) ->
          if not (List.mem_assoc key new_r) then begin
            Printf.printf "removed     %s\n" key;
            jentry key "removed" [ ("old_cycles", Json.Num oc) ]
          end)
        old_r;
      Printf.printf
        "bench-diff: %d compared; %d regressed (> %g%%), %d warned (> %g%%), \
         %d improved; worst %s\n"
        !compared !regressed max_regress !warned warn !improved
        (if !compared = 0 then "n/a" else Printf.sprintf "%+.2f%%" !worst);
      Option.iter
        (fun f ->
          let j =
            Json.Obj
              [
                ("schema", Json.Str "infs-bench-diff-1");
                ("warn_pct", Json.Num warn);
                ("max_regress_pct", Json.Num max_regress);
                ("compared", Json.Num (float_of_int !compared));
                ("regressed", Json.Num (float_of_int !regressed));
                ("warned", Json.Num (float_of_int !warned));
                ("improved", Json.Num (float_of_int !improved));
                ( "worst_pct",
                  if !compared = 0 then Json.Null else Json.Num !worst );
                ("entries", Json.Arr (List.rev !jentries));
              ]
          in
          try
            let oc = open_out f in
            output_string oc (Json.to_string j);
            output_char oc '\n';
            close_out oc
          with Sys_error e ->
            prerr_endline ("error: cannot write json diff: " ^ e);
            exit 1)
        json_file;
      if !regressed > 0 then exit 1
  in
  let old_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OLD" ~doc:"baseline infs-bench-1 JSON (bench --json)")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"candidate infs-bench-1 JSON")
  in
  let warn_arg =
    Arg.(
      value & opt pct_conv 5.0
      & info [ "warn" ] ~docv:"PCT"
          ~doc:"print a warning for any entry slower by more than $(docv)")
  in
  let max_arg =
    Arg.(
      value & opt pct_conv 25.0
      & info [ "max-regress" ] ~docv:"PCT"
          ~doc:"exit non-zero if any entry is slower by more than $(docv)")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "also write the diff as machine-readable JSON (schema \
             infs-bench-diff-1: per-entry status/old/new/delta plus the \
             summary counts) to $(docv) — what the CI gate archives")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "compare two bench --json result files per (workload, paradigm) \
          and fail on cycle-count regressions above the threshold")
    Term.(const run $ old_arg $ new_arg $ warn_arg $ max_arg $ json_arg)

(* ---------- trend: per-commit snapshots -> sparkline page ---------- *)

let trend_cmd =
  let run dir out_md out_html threshold =
    let files =
      match Sys.readdir dir with
      | exception Sys_error e ->
        prerr_endline ("error: cannot read snapshot directory: " ^ e);
        exit 1
      | fs ->
        Array.to_list fs
        |> List.filter (fun f -> Filename.check_suffix f ".json")
        |> List.sort String.compare
    in
    if files = [] then begin
      prerr_endline ("error: no .json snapshots in " ^ dir);
      exit 1
    end;
    let snaps =
      List.map
        (fun f ->
          match load_bench_file (Filename.concat dir f) with
          | Error e ->
            prerr_endline ("error: " ^ e);
            exit 1
          | Ok b -> (f, b))
        files
    in
    (* chronological order: meta.timestamp when every snapshot carries one
       (lexicographic — timestamps are ISO-8601), else filename *)
    let snaps =
      if List.for_all (fun (_, b) -> Bench_file.timestamp b <> None) snaps then
        List.stable_sort
          (fun (_, a) (_, b) ->
            compare (Bench_file.timestamp a) (Bench_file.timestamp b))
          snaps
      else snaps
    in
    let labeled =
      List.map
        (fun (f, b) ->
          ( (match Bench_file.commit b with
            | Some c -> (if String.length c > 12 then String.sub c 0 12 else c)
            | None -> Filename.remove_extension f),
            b ))
        snaps
    in
    let t = Trend.build ~threshold labeled in
    let write f s =
      try
        let oc = open_out f in
        output_string oc s;
        close_out oc
      with Sys_error e ->
        prerr_endline ("error: cannot write trend page: " ^ e);
        exit 1
    in
    (match out_md with None -> print_string (Trend.to_markdown t) | Some f -> write f (Trend.to_markdown t));
    Option.iter (fun f -> write f (Trend.to_html t)) out_html;
    let regs = Trend.regressions t in
    List.iter
      (fun (key, d) ->
        Printf.eprintf "trend: REGRESSION %s %+.2f%% (last vs previous)\n" key d)
      regs
  in
  let dir_arg =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR"
          ~doc:
            "directory of per-commit infs-bench-1 snapshots (*.json, e.g. \
             archived bench --json dumps); ordered by meta.timestamp when \
             every file has one, else by filename")
  in
  let md_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"write the markdown trend page to $(docv) instead of stdout")
  in
  let html_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "html" ] ~docv:"FILE"
          ~doc:"also write a standalone HTML trend page to $(docv)")
  in
  let threshold_arg =
    Arg.(
      value & opt float 5.0
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:"flag a key whose last snapshot moved beyond $(docv)% \
                against the previous one")
  in
  Cmd.v
    (Cmd.info "trend"
       ~doc:
         "render a directory of per-commit bench --json snapshots as a \
          markdown (and optionally HTML) trend page: per-workload \
          sparkline tables of cycles per paradigm, with last-vs-previous \
          regression flags")
    Term.(const run $ dir_arg $ md_arg $ html_arg $ threshold_arg)

(* ---------- bench-bisect: minimize a bench regression ---------- *)

let bench_bisect_cmd =
  let run old_f new_f threshold json =
    match (load_bench_file old_f, load_bench_file new_f) with
    | Error e, _ | _, Error e ->
      prerr_endline ("error: " ^ e);
      exit 1
    | Ok old_, Ok new_ ->
      let r = Bisect.minimize ~threshold ~old_ ~new_ () in
      if json then
        print_endline (Json.to_string (Bisect.to_json ~threshold r))
      else print_string (Bisect.to_text ~threshold r)
  in
  let old_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OLD" ~doc:"baseline infs-bench-1 JSON (bench --json)")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"candidate infs-bench-1 JSON")
  in
  let threshold_arg =
    Arg.(
      value & opt float 2.0
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:"only cells whose cycle count moved by more than $(docv)% \
                count as moved")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"emit the infs-bisect-1 JSON summary instead of text")
  in
  Cmd.v
    (Cmd.info "bench-bisect"
       ~doc:
         "minimize the difference between two bench --json files to the \
          smallest set of (workload, paradigm) groups that moved beyond \
          the threshold, ranked by cycle impact — a whole-matrix shift \
          collapses to one root entry, a whole-workload or whole-paradigm \
          shift to one row each")
    Term.(const run $ old_arg $ new_arg $ threshold_arg $ json_arg)

(* ---------- identity-golden: regenerate the byte-identity tier ---------- *)

let identity_golden_cmd =
  let run dir =
    (try
       if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
     with Unix.Unix_error (e, _, _) ->
       prerr_endline ("error: cannot create " ^ dir ^ ": " ^ Unix.error_message e);
       exit 1);
    let paths = Infs_workloads.Identity.write_dir dir in
    List.iter (fun p -> Printf.printf "wrote %s\n" p) paths;
    Printf.printf "%d identity golden files\n" (List.length paths)
  in
  let dir_arg =
    Arg.(
      value
      & opt string "test/golden/identity"
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"directory to write <entry>.json files into")
  in
  Cmd.v
    (Cmd.info "identity-golden"
       ~doc:
         "regenerate the byte-identity golden tier: the full test-scale \
          catalog x all paradigms rendered as report JSON + metrics \
          snapshot + normalized profile, one file per catalog entry \
          (test/test_identity.ml byte-compares against these; only \
          regenerate for an intentional cost-model change)")
    Term.(const run $ dir_arg)

let () =
  let doc = "infinity stream - in-/near-memory fusion simulator" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "infs_run" ~doc)
          [
            list_cmd; run_cmd; compile_cmd; lower_cmd; batch_cmd; tune_cmd;
            serve_cmd; analyze_cmd; bench_diff_cmd; trend_cmd;
            bench_bisect_cmd; identity_golden_cmd;
          ]))
