#!/usr/bin/env bash
# Soak harness for the sharded serving front tier (infs_run serve --shards).
#
# Brings up a front over N shard processes, sustains the pacing client
# against it over UDS and (optionally) TCP, hard-kills one shard
# mid-soak, then SIGTERMs the front — and asserts the whole story:
#
#   - every client phase ends with error 0 / unanswered 0 and
#     byte-identical reports vs direct runs (--check digest),
#   - the digest is identical across UDS, TCP and the mid-kill phase,
#   - the drain answers everything admitted (front exits 0; the drained
#     summary shows 0 lost),
#   - repeat-key routing is proven by the route counters (hot > 0),
#   - the killed shard was detected and respawned (crash/respawn >= 1).
#
# Tunables (env):
#   SHARDS    shard count                      (default 2)
#   RPS       client request rate              (default 60)
#   DURATION  seconds per client phase         (default 4)
#   CONNS     client connections per phase     (default 2)
#   KILL      1 = hard-kill a shard mid-soak   (default 1)
#   KILL_AFTER  seconds into the phase to kill (default 1)
#   TCP_PORT  loopback TCP port, 0 = UDS only  (default 19473)
#   SCALE     workload scale                   (default test)
#   WORKLOADS comma list for the client        (default vec_add,array_sum)
#   BIN       infs_run invocation             (default: dune exec)

set -euo pipefail

SHARDS=${SHARDS:-2}
RPS=${RPS:-60}
DURATION=${DURATION:-4}
CONNS=${CONNS:-2}
KILL=${KILL:-1}
KILL_AFTER=${KILL_AFTER:-1}
TCP_PORT=${TCP_PORT:-19473}
SCALE=${SCALE:-test}
WORKLOADS=${WORKLOADS:-vec_add,array_sum}
BIN=${BIN:-dune exec bin/infs_run.exe --}

SOCK=${SOCK:-/tmp/infs-soak.$$.sock}
LOG=${LOG:-/tmp/infs-soak.$$}

fail() { echo "soak: FAIL: $*" >&2; exit 1; }
note() { echo "soak: $*" >&2; }

cleanup() {
  [ -n "${SERVE_PID:-}" ] && kill -KILL "$SERVE_PID" 2>/dev/null || true
  rm -f "$SOCK" "$SOCK".shard* 2>/dev/null || true
}
trap cleanup EXIT

# ---- bring the front up ----

SERVE_ARGS=(serve --socket "$SOCK" --shards "$SHARDS" --scale "$SCALE"
  --heartbeat-s 0.25 --metrics "$LOG.metrics.prom")
[ "$TCP_PORT" != 0 ] && SERVE_ARGS+=(--tcp "$TCP_PORT")

$BIN "${SERVE_ARGS[@]}" 2>"$LOG.serve.log" &
SERVE_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$LOG.serve.log" >&2; fail "front died during startup"; }
  sleep 0.1
done
[ -S "$SOCK" ] || fail "front socket $SOCK never appeared"
note "front up (pid $SERVE_PID, $SHARDS shards)"

# ---- client phases ----

# run one pacing-client phase and assert it was clean end to end
client() { # $1 = target, $2 = tag
  local target=$1 tag=$2
  $BIN serve --client --target "$target" -w "$WORKLOADS" --scale "$SCALE" \
    --rps "$RPS" --duration "$DURATION" --connections "$CONNS" --check \
    >"$LOG.client-$tag.log" 2>&1 \
    || { cat "$LOG.client-$tag.log" >&2; fail "$tag client exited non-zero"; }
  grep -q " error 0 " "$LOG.client-$tag.log" || fail "$tag phase saw errors"
  grep -q " unanswered 0" "$LOG.client-$tag.log" || fail "$tag phase left requests unanswered"
  grep -q "byte-identical to direct runs" "$LOG.client-$tag.log" \
    || fail "$tag reports are not byte-identical to direct runs"
  note "$tag phase: $(grep '^sent' "$LOG.client-$tag.log")"
}

digest() { sed -n 's/^check: \([0-9a-f]*\) .*/\1/p' "$LOG.client-$1.log"; }

client "unix:$SOCK" uds

if [ "$TCP_PORT" != 0 ]; then
  client "tcp:127.0.0.1:$TCP_PORT" tcp
  [ "$(digest uds)" = "$(digest tcp)" ] \
    || fail "TCP report digest differs from UDS ($(digest tcp) vs $(digest uds))"
fi

if [ "$KILL" = 1 ]; then
  VICTIM=$(sed -n 's/^serve: shard 0 pid \([0-9]*\)$/\1/p' "$LOG.serve.log" | head -1)
  [ -n "$VICTIM" ] || fail "could not parse shard 0 pid from $LOG.serve.log"
  client "unix:$SOCK" kill &
  CLIENT_PID=$!
  sleep "$KILL_AFTER"
  kill -KILL "$VICTIM" 2>/dev/null || fail "shard 0 (pid $VICTIM) already gone"
  note "killed shard 0 (pid $VICTIM) mid-soak"
  wait "$CLIENT_PID" || fail "mid-kill client phase failed"
  [ "$(digest uds)" = "$(digest kill)" ] \
    || fail "mid-kill report digest differs ($(digest kill) vs $(digest uds))"
fi

# ---- drain ----

kill -TERM "$SERVE_PID"
if wait "$SERVE_PID"; then
  SERVE_PID=
else
  cat "$LOG.serve.log" >&2
  fail "front exited non-zero on drain (lost or unanswered admitted requests)"
fi

DRAINED=$(grep "front drained:" "$LOG.serve.log") || fail "no drained summary"
note "$DRAINED"

num() { echo "$DRAINED" | sed -n "s/.*[ (]\([0-9][0-9]*\) $1.*/\1/p" | head -1; }

[ "$(num lost)" = 0 ] || fail "drain lost admitted requests: $DRAINED"
HOT=$(num hot)
[ -n "$HOT" ] && [ "$HOT" -gt 0 ] || fail "no hot routes: repeat keys never hit a warm shard"
if [ "$KILL" = 1 ]; then
  [ -n "$(num crash)" ] && [ "$(num crash)" -ge 1 ] || fail "kill not detected as a crash"
  [ -n "$(num respawn)" ] && [ "$(num respawn)" -ge 1 ] || fail "killed shard never respawned"
fi
[ -s "$LOG.metrics.prom" ] || fail "metrics snapshot missing"

note "PASS (logs under $LOG.*)"
