(* The persistent request-serving layer (infs_serve):
   - a malformed request line is answered with a structured error and the
     connection survives,
   - admission control sheds beyond the queue bound with [overloaded],
   - per-request deadlines answer [timeout] via the pool machinery,
   - graceful drain answers every admitted request (cancelled = 0) and
     the final stats reconcile with the responses the client saw,
   - a qcheck property: engine reports served over the socket are
     byte-identical to direct in-process runs of the same specs. *)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report

let sock_counter = ref 0

let sock_path tag =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "infs-test-%d-%d-%s.sock" (Unix.getpid ()) !sock_counter tag)

(* start a server, run [f], always drain; returns f's result, the final
   stats and the server's metrics registry (valid after the drain) *)
let with_server ?(jobs = 2) ?(queue_depth = 64) ?default_timeout_s ~tag ~handler
    f =
  let path = sock_path tag in
  let cfg =
    {
      (Serve.default_config ~socket_path:path) with
      jobs;
      queue_depth;
      default_timeout_s;
    }
  in
  match Serve.start cfg ~handler with
  | Error e -> Alcotest.fail e
  | Ok t ->
    let final = ref (Serve.stats t) in
    let r =
      Fun.protect
        ~finally:(fun () ->
          Serve.request_stop t;
          final := Serve.wait t;
          try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
        (fun () -> f t path)
    in
    (r, !final, Serve.metrics t)

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let response line =
  match Json.parse line with
  | Error e -> Alcotest.fail ("unparseable response line: " ^ e)
  | Ok j -> j

let status j =
  match Option.bind (Json.member "status" j) Json.to_str with
  | Some s -> s
  | None -> Alcotest.fail "response without status field"

(* ---- protocol ---- *)

let test_malformed_line_keeps_connection () =
  let handler j = Ok j in
  let (), st, m =
    with_server ~tag:"malformed" ~handler (fun _t path ->
        let fd, ic, oc = connect path in
        send oc "this is { not json";
        let r0 = response (input_line ic) in
        Alcotest.(check string) "malformed answered with error" "error"
          (status r0);
        (match Option.bind (Json.member "error" r0) Json.to_str with
        | Some e ->
          Alcotest.(check bool) "error names the parse failure" true
            (String.length e >= 11 && String.sub e 0 11 = "parse error")
        | None -> Alcotest.fail "error response without error field");
        Alcotest.(check bool) "id echoes the line sequence" true
          (Json.member "id" r0 = Some (Json.Num 0.0));
        (* the connection survives: the next request is served normally *)
        send oc {|{"id": 7, "x": 1}|};
        let r1 = response (input_line ic) in
        Alcotest.(check string) "valid request after malformed is ok" "ok"
          (status r1);
        Alcotest.(check bool) "id of a valid request is echoed" true
          (Json.member "id" r1 = Some (Json.Num 7.0));
        Unix.close fd)
  in
  Alcotest.(check int) "one bad request counted" 1 st.Serve.bad;
  Alcotest.(check int) "one admitted" 1 st.Serve.admitted;
  Alcotest.(check int) "nothing cancelled" 0 st.Serve.cancelled;
  Alcotest.(check (float 0.0)) "metrics mirror the stats record" 1.0
    (Metrics.value m "serve.bad_requests")

let test_shed_beyond_bound () =
  let release = Atomic.make false in
  let handler j =
    while not (Atomic.get release) do
      Unix.sleepf 0.001
    done;
    Ok j
  in
  let (), st, m =
    with_server ~tag:"shed" ~jobs:1 ~queue_depth:1 ~handler (fun t path ->
        let fd, ic, oc = connect path in
        (* first request occupies the whole queue; the rest must shed *)
        for i = 0 to 3 do
          send oc (Printf.sprintf {|{"id": %d}|} i)
        done;
        (* only release the worker once the server has admission-checked
           all four lines — releasing earlier lets the queue drain and a
           late-read request get admitted instead of shed *)
        while (Serve.stats t).Serve.received < 4 do
          Unix.sleepf 0.001
        done;
        Atomic.set release true;
        let statuses = List.init 4 (fun _ -> status (response (input_line ic))) in
        Alcotest.(check (list string))
          "first admitted, rest shed with structured overloaded"
          [ "ok"; "overloaded"; "overloaded"; "overloaded" ]
          statuses;
        Unix.close fd)
  in
  Alcotest.(check int) "stats: 1 admitted" 1 st.Serve.admitted;
  Alcotest.(check int) "stats: 3 shed" 3 st.Serve.shed;
  Alcotest.(check int) "stats: 4 received" 4 st.Serve.received;
  Alcotest.(check (float 0.0)) "metrics: serve.shed agrees" 3.0
    (Metrics.value m "serve.shed");
  Alcotest.(check (float 0.0)) "metrics: queue depth gauge drained to 0" 0.0
    (Metrics.value m "serve.queue_depth")

let test_deadline_answers_timeout () =
  let handler _ =
    Unix.sleepf 5.0;
    Ok Json.Null
  in
  let (), st, _ =
    with_server ~tag:"deadline" ~jobs:1 ~handler (fun _t path ->
        let fd, ic, oc = connect path in
        let t0 = Unix.gettimeofday () in
        send oc {|{"id": 0, "timeout_s": 0.05}|};
        let r = response (input_line ic) in
        Alcotest.(check string) "deadline exceeded answers timeout" "timeout"
          (status r);
        Alcotest.(check bool) "answered at the deadline, not at completion"
          true
          (Unix.gettimeofday () -. t0 < 2.0);
        (* an invalid deadline is a bad request, not a crash *)
        send oc {|{"id": 1, "timeout_s": -3}|};
        Alcotest.(check string) "invalid timeout_s is a structured error"
          "error"
          (status (response (input_line ic)));
        Unix.close fd)
  in
  Alcotest.(check int) "stats: 1 deadline exceeded" 1 st.Serve.deadline_exceeded;
  Alcotest.(check int) "stats: 1 bad request" 1 st.Serve.bad

let test_drain_answers_admitted () =
  (* requests in flight when the stop arrives are still answered *)
  let handler j =
    Unix.sleepf 0.1;
    Ok j
  in
  let sent = 6 in
  let responses, st, m =
    with_server ~tag:"drain" ~jobs:2 ~queue_depth:16 ~handler (fun _t path ->
        let fd, ic, oc = connect path in
        for i = 0 to sent - 1 do
          send oc (Printf.sprintf {|{"id": %d}|} i)
        done;
        (* reading all responses before returning means the drain begins
           with zero in flight only after every answer is flushed *)
        let rs = List.init sent (fun _ -> response (input_line ic)) in
        Unix.close fd;
        rs)
  in
  List.iteri
    (fun i r ->
      Alcotest.(check string)
        (Printf.sprintf "request %d answered ok" i)
        "ok" (status r))
    responses;
  Alcotest.(check int) "every admitted request answered" st.Serve.admitted
    (Serve.answered st);
  Alcotest.(check int) "graceful drain cancels nothing" 0 st.Serve.cancelled;
  (* the metrics registry reconciles exactly with the stats record *)
  Alcotest.(check (float 0.0)) "metrics: serve.ok agrees"
    (float_of_int st.Serve.ok)
    (Metrics.value m "serve.ok");
  Alcotest.(check (float 0.0)) "metrics: serve.admitted agrees"
    (float_of_int st.Serve.admitted)
    (Metrics.value m "serve.admitted")

(* ---- byte-identity: served reports = direct runs ---- *)

let test_workloads =
  [
    ("vec_add", fun () -> Infs_workloads.Micro.vec_add ~n:4096);
    ("array_sum", fun () -> Infs_workloads.Micro.array_sum ~n:4096);
    ( "attention",
      fun () -> Infs_workloads.Transformer.attention ~batch:2 ~seq:8 ~dh:4 () );
  ]

let test_paradigms = [ ("base", E.Base); ("near-l3", E.Near_l3); ("inf-s", E.Inf_s) ]

(* mirrors the CLI handler: resolve the workload fresh per request (no
   shared mutable workload state across domains), shared compile cache *)
let engine_handler j =
  match
    ( Option.bind (Json.member "workload" j) Json.to_str,
      Option.bind (Json.member "paradigm" j) Json.to_str )
  with
  | Some w, Some p -> (
    match (List.assoc_opt w test_workloads, List.assoc_opt p test_paradigms) with
    | Some mk, Some paradigm -> (
      let options = { E.default_options with share_compile = true } in
      match E.run ~options paradigm (mk ()) with
      | Ok r -> Ok (R.to_json r)
      | Error e -> Error e)
    | _ -> Error "unknown workload or paradigm")
  | _ -> Error "spec needs workload and paradigm"

let spec_line id (wi, pi) =
  Printf.sprintf {|{"id": %d, "workload": %S, "paradigm": %S}|} id
    (fst (List.nth test_workloads (wi mod List.length test_workloads)))
    (fst (List.nth test_paradigms (pi mod List.length test_paradigms)))

let prop_served_equals_direct =
  QCheck.Test.make ~count:8 ~name:"serve: reports byte-identical to direct runs"
    QCheck.(list_of_size Gen.(1 -- 10) (pair small_nat small_nat))
    (fun picks ->
      QCheck.assume (picks <> []);
      let reports, st, _ =
        with_server ~tag:"prop" ~jobs:4 ~handler:engine_handler (fun _t path ->
            (* spread the requests over up to 3 concurrent connections;
               responses arrive in request order per connection *)
            let nconn = min 3 (List.length picks) in
            let conns = Array.init nconn (fun _ -> connect path) in
            let per_conn = Array.make nconn [] in
            List.iteri
              (fun i pick ->
                let c = i mod nconn in
                let _, _, oc = conns.(c) in
                send oc (spec_line i pick);
                per_conn.(c) <- i :: per_conn.(c))
              picks;
            let got = Array.make (List.length picks) Json.Null in
            Array.iteri
              (fun c (fd, ic, _) ->
                List.iter
                  (fun i -> got.(i) <- response (input_line ic))
                  (List.rev per_conn.(c));
                Unix.close fd)
              conns;
            got)
      in
      if st.Serve.cancelled > 0 then
        QCheck.Test.fail_report "drain cancelled admitted requests";
      List.iteri
        (fun i pick ->
          let direct =
            match
              engine_handler
                (Result.get_ok (Json.parse (spec_line i pick)))
            with
            | Ok payload -> Json.to_string payload
            | Error e -> QCheck.Test.fail_reportf "direct run failed: %s" e
          in
          let served = reports.(i) in
          (match Option.bind (Json.member "id" served) Json.to_num with
          | Some id when int_of_float id = i -> ()
          | _ -> QCheck.Test.fail_reportf "response %d carries the wrong id" i);
          if status served <> "ok" then
            QCheck.Test.fail_reportf "request %d not ok: %s" i
              (Json.to_string served);
          match Json.member "report" served with
          | None -> QCheck.Test.fail_reportf "response %d without report" i
          | Some r ->
            if Json.to_string r <> direct then
              QCheck.Test.fail_reportf
                "request %d: served report differs from direct run" i)
        picks;
      true)

let suite =
  [
    Alcotest.test_case "malformed line: error + connection survives" `Quick
      test_malformed_line_keeps_connection;
    Alcotest.test_case "admission: shed beyond queue depth" `Quick
      test_shed_beyond_bound;
    Alcotest.test_case "deadline: structured timeout" `Quick
      test_deadline_answers_timeout;
    Alcotest.test_case "drain answers every admitted request" `Quick
      test_drain_answers_admitted;
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ())
      prop_served_equals_direct;
  ]
