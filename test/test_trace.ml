(* The structured tracing subsystem (infs_trace):
   - sink behaviour (null / ring / JSONL / Chrome) and the canonical JSON
     serialization,
   - golden traces: small fixed (workload, paradigm) pairs must reproduce
     the committed JSONL byte-for-byte, so any silent change to an
     instrumented cost model fails loudly,
   - reconciliation: trace-derived per-category aggregates equal the
     engine's Report / Breakdown / Traffic numbers with 0.0 tolerance on
     every catalog workload,
   - a qcheck property: replaying the same (workload, paradigm) yields
     byte-identical JSONL and exactly reconciled cycle sums. *)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report
module Cat = Infs_workloads.Catalog

let run_traced ?(options = E.default_options) p w =
  let buf = Buffer.create 4096 in
  let trace = Trace.to_buffer Trace.Jsonl buf in
  let r = E.run_exn ~options:{ options with E.trace } p w in
  Trace.close trace;
  (r, trace, Buffer.contents buf)

(* ---- serialization ---- *)

let test_json_float () =
  List.iter
    (fun (f, s) -> Alcotest.(check string) (string_of_float f) s (Trace.json_float f))
    [
      (0.0, "0"); (1.0, "1"); (-3.0, "-3"); (1310719.375, "1310719.375");
      (0.1, "0.1"); (infinity, "\"inf\""); (neg_infinity, "\"-inf\"");
    ];
  (* canonical form must round-trip exactly for any finite float *)
  List.iter
    (fun f ->
      Alcotest.(check (float 0.0)) "round-trip" f (float_of_string (Trace.json_float f)))
    [ 1.0 /. 3.0; 2.0 ** 0.5; 1e-300; 33.9921875; 5036.0625; 1.192e-07 ]

let test_event_json () =
  Alcotest.(check string) "noc event"
    "{\"seq\":7,\"ev\":\"noc\",\"dir\":\"send\",\"cat\":\"data\",\"bytes\":64,\"hops\":5.25,\"packets\":1}"
    (Trace.event_to_json ~seq:7
       (Trace.Noc_packet
          { dir = Trace.Send; category = "data"; bytes = 64.0; hops = 5.25; packets = 1.0 }));
  Alcotest.(check string) "memo event with escaping"
    "{\"seq\":1,\"ev\":\"memo\",\"key\":\"a\\\"b\\\\c\",\"hit\":true}"
    (Trace.event_to_json ~seq:1 (Trace.Memo { key = "a\"b\\c"; hit = true }))

(* ---- sinks ---- *)

let test_null_sink () =
  Alcotest.(check bool) "null disabled" false (Trace.enabled Trace.null);
  Trace.emit Trace.null (Trace.Sync_barrier { cycles = 1.0 });
  Trace.add_cycles Trace.null "core" 5.0;
  Alcotest.(check int) "no events recorded" 0 (Trace.events_seen Trace.null);
  Alcotest.(check (float 0.0)) "no counters" 0.0 (Trace.counter Trace.null "cycles.core")

let test_ring_sink () =
  let t = Trace.ring ~capacity:4 () in
  for i = 1 to 10 do
    Trace.emit t (Trace.Sync_barrier { cycles = float_of_int i })
  done;
  Alcotest.(check int) "all events counted" 10 (Trace.events_seen t);
  let kept =
    List.map
      (function Trace.Sync_barrier { cycles } -> cycles | _ -> nan)
      (Trace.ring_events t)
  in
  Alcotest.(check (list (float 0.0))) "last 4 kept, oldest first"
    [ 7.0; 8.0; 9.0; 10.0 ] kept;
  Alcotest.(check (float 0.0)) "metrics still aggregate all" 10.0
    (Trace.counter t "sync.barriers")

let test_jsonl_sink_summary () =
  let buf = Buffer.create 256 in
  let t = Trace.to_buffer Trace.Jsonl buf in
  Trace.emit t (Trace.Dram_burst { bytes = 8.0; cycles = 2.0 });
  Trace.close t;
  Trace.close t (* idempotent *);
  let lines = String.split_on_char '\n' (String.trim (Buffer.contents buf)) in
  Alcotest.(check int) "two lines" 2 (List.length lines);
  Alcotest.(check string) "summary line"
    "{\"ev\":\"summary\",\"counters\":{\"dram.bytes\":8}}"
    (List.nth lines 1)

let test_chrome_sink () =
  let buf = Buffer.create 256 in
  let t = Trace.to_buffer Trace.Chrome buf in
  Trace.emit t (Trace.Dram_burst { bytes = 8.0; cycles = 2.0 });
  Trace.emit t (Trace.Ttu_transpose { bytes = 8.0; cycles = 3.0 });
  Trace.add_cycles t "dram" 5.0;
  Trace.close t;
  let s = Buffer.contents buf in
  Alcotest.(check bool) "document shape" true
    (String.length s > 2
    && String.sub s 0 15 = "{\"traceEvents\":"
    && String.sub s (String.length s - 3) 3 = "]}\n");
  (* the second slice starts where the first ended: sequential clock *)
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "first slice at ts 0" true (contains "\"ts\":0,\"dur\":2");
  Alcotest.(check bool) "second slice at ts 2" true (contains "\"ts\":2,\"dur\":3");
  Alcotest.(check bool) "counter track carries cumulative value" true
    (contains "{\"cycles.dram\":5}")

(* ---- tiny JSONL field scanner (the emitter uses a fixed field order and
   no nested objects except the summary, so this stays trivial) ---- *)

let field line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let n = String.length line and pn = String.length pat in
  let rec find i =
    if i + pn > n then None
    else if String.sub line i pn = pat then Some (i + pn)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    if line.[start] = '"' then begin
      incr stop;
      while line.[!stop] <> '"' || line.[!stop - 1] = '\\' do
        incr stop
      done;
      Some (String.sub line (start + 1) (!stop - start - 1))
    end
    else begin
      while !stop < n && line.[!stop] <> ',' && line.[!stop] <> '}' do
        incr stop
      done;
      Some (String.sub line start (!stop - start))
    end

let lines_of s = List.filter (fun l -> l <> "") (String.split_on_char '\n' s)

let known_events =
  [ "noc"; "local"; "sram"; "dram"; "ttu"; "jit"; "memo"; "decision"; "sync";
    "region"; "ctr"; "summary" ]

let check_schema jsonl =
  List.iteri
    (fun i line ->
      let ev =
        match field line "ev" with
        | Some e -> e
        | None -> Alcotest.failf "line %d: no ev field: %s" (i + 1) line
      in
      if not (List.mem ev known_events) then
        Alcotest.failf "line %d: unknown event %s" (i + 1) ev;
      if line.[0] <> '{' || line.[String.length line - 1] <> '}' then
        Alcotest.failf "line %d: not an object" (i + 1);
      if ev <> "summary" then begin
        match field line "seq" with
        | Some s when int_of_string s = i + 1 -> ()
        | Some s -> Alcotest.failf "line %d: seq %s out of order" (i + 1) s
        | None -> Alcotest.failf "line %d: no seq" (i + 1)
      end)
    (lines_of jsonl)

(* sum the ctr events of one category, in stream order — must equal the
   Breakdown field exactly (same floats, same accumulation order) *)
let ctr_sum jsonl name =
  List.fold_left
    (fun acc line ->
      match (field line "ev", field line "k") with
      | Some "ctr", Some k when k = name ->
        acc +. float_of_string (Option.get (field line "v"))
      | _ -> acc)
    0.0 (lines_of jsonl)

(* ---- golden traces ---- *)

let breakdown_pairs (r : R.t) =
  let b = r.R.breakdown in
  [
    ("dram", b.Breakdown.dram); ("jit", b.jit); ("move", b.move);
    ("compute", b.compute); ("final_reduce", b.final_reduce); ("mix", b.mix);
    ("near_mem", b.near_mem); ("core", b.core);
  ]

let check_reconciles ?(jsonl = "") (r : R.t) trace =
  List.iter
    (fun (name, want) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "cycles.%s reconciles" name)
        want
        (Trace.counter trace ("cycles." ^ name));
      if jsonl <> "" then
        Alcotest.(check (float 0.0))
          (Printf.sprintf "cycles.%s from jsonl" name)
          want
          (ctr_sum jsonl ("cycles." ^ name)))
    (breakdown_pairs r);
  List.iter
    (fun (cat, want) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "noc.bytes.%s reconciles" cat)
        want
        (Trace.counter trace ("noc.bytes." ^ cat)))
    r.R.noc_bytes;
  List.iter
    (fun (cat, want) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "noc.byte_hops.%s reconciles" cat)
        want
        (Trace.counter trace ("noc.byte_hops." ^ cat)))
    r.R.noc_byte_hops;
  List.iter
    (fun (ch, want) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "local.bytes.%s reconciles" ch)
        want
        (Trace.counter trace ("local.bytes." ^ ch)))
    r.R.local_bytes;
  Alcotest.(check (float 0.0)) "memo hits reconcile"
    (float_of_int r.R.jit.memo_hits)
    (Trace.counter trace "jit.memo_hits")

(* dune copies the golden deps next to the test executable; when run via
   `dune exec` from the repo root, fall back to the source tree *)
let golden path =
  let candidates =
    [
      Filename.concat (Filename.dirname Sys.executable_name) path;
      path;
      Filename.concat "test" path;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_golden name w p golden_path =
  let r, trace, jsonl = run_traced p w in
  check_schema jsonl;
  check_reconciles ~jsonl r trace;
  let want = read_file golden_path in
  if jsonl <> want then begin
    let got_lines = lines_of jsonl and want_lines = lines_of want in
    let rec first_diff i = function
      | g :: gs, w :: ws -> if g = w then first_diff (i + 1) (gs, ws) else (i, g, w)
      | g :: _, [] -> (i, g, "<end of golden>")
      | [], w :: _ -> (i, "<end of trace>", w)
      | [], [] -> (i, "<equal?>", "<equal?>")
    in
    let i, g, wl = first_diff 1 (got_lines, want_lines) in
    Alcotest.failf
      "%s: trace diverges from golden %s at line %d\n  got:    %s\n  golden: %s\n\
       If a cost-model change is intentional, regenerate with:\n\
      \  dune exec bin/infs_run.exe -- run -w <workload> -p <paradigm> --trace %s"
      name golden_path i g wl golden_path
  end

let test_golden_vec_add () =
  check_golden "vec_add@In-L3"
    (Infs_workloads.Micro.vec_add ~n:4_194_304)
    E.In_l3 (golden "golden/vec_add_in_l3.jsonl")

let test_golden_stencil1d () =
  check_golden "stencil1d@Inf-S"
    (Infs_workloads.Stencil.stencil1d ~iters:10 ~n:4_194_304)
    E.Inf_s (golden "golden/stencil1d_inf_s.jsonl")

(* ---- reconciliation across the whole catalog ---- *)

let reconcile_tests =
  List.concat_map
    (fun (name, w) ->
      List.map
        (fun p ->
          ( Printf.sprintf "reconcile: %s [%s]" name (E.paradigm_to_string p),
            `Quick,
            fun () ->
              let r, trace, jsonl = run_traced p w in
              check_schema jsonl;
              check_reconciles ~jsonl r trace ))
        E.all_paradigms)
    (Cat.all_variants (Cat.test_scale ()))

(* ---- determinism property ---- *)

let case_gen =
  QCheck.Gen.(
    let* kind = int_range 0 3 in
    let* p = oneofl E.all_paradigms in
    match kind with
    | 0 ->
      let+ n = oneofl [ 256; 1024; 4096; 16384 ] in
      (Printf.sprintf "vec_add/%d" n, `Vec_add n, p)
    | 1 ->
      let+ n = oneofl [ 256; 1024; 4096 ] in
      (Printf.sprintf "array_sum/%d" n, `Array_sum n, p)
    | 2 ->
      let* iters = int_range 1 3 in
      let+ n = oneofl [ 128; 512; 2048 ] in
      (Printf.sprintf "stencil1d/%d/%d" iters n, `Stencil1d (iters, n), p)
    | _ ->
      let+ n = oneofl [ 8; 16; 24 ] in
      (Printf.sprintf "mm_out/%d" n, `Mm_out n, p))

let build = function
  | `Vec_add n -> Infs_workloads.Micro.vec_add ~n
  | `Array_sum n -> Infs_workloads.Micro.array_sum ~n
  | `Stencil1d (iters, n) -> Infs_workloads.Stencil.stencil1d ~iters ~n
  | `Mm_out n -> Infs_workloads.Mm.mm_outer ~n

let prop_replay_deterministic =
  QCheck.Test.make ~count:30 ~name:"replaying (workload, paradigm) is byte-identical"
    (QCheck.make case_gen ~print:(fun (name, _, p) ->
         Printf.sprintf "%s [%s]" name (E.paradigm_to_string p)))
    (fun (_name, spec, p) ->
      let r1, trace1, jsonl1 = run_traced p (build spec) in
      let r2, _trace2, jsonl2 = run_traced p (build spec) in
      check_schema jsonl1;
      if jsonl1 <> jsonl2 then QCheck.Test.fail_report "replay differs";
      if r1.R.cycles <> r2.R.cycles then QCheck.Test.fail_report "cycles differ";
      (* per-category cycle sums from the trace equal Report.breakdown
         within 0.0 *)
      List.iter
        (fun (name, want) ->
          if ctr_sum jsonl1 ("cycles." ^ name) <> want then
            QCheck.Test.fail_reportf "cycles.%s does not reconcile" name)
        (breakdown_pairs r1);
      ignore trace1;
      true)

let suite =
  [
    ("json float canonical form", `Quick, test_json_float);
    ("event serialization", `Quick, test_event_json);
    ("null sink", `Quick, test_null_sink);
    ("ring sink", `Quick, test_ring_sink);
    ("jsonl summary line", `Quick, test_jsonl_sink_summary);
    ("chrome trace_event export", `Quick, test_chrome_sink);
    ("golden trace: vec_add @ In-L3", `Quick, test_golden_vec_add);
    ("golden trace: stencil1d @ Inf-S", `Quick, test_golden_stencil1d);
  ]
  @ reconcile_tests
  @ [ QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) prop_replay_deterministic ]
