(* The sharded serving front tier (Shard, over the Inproc backend):
   - basic fan-out over two shards answers everything, ids preserved,
   - repeat keys land on the same shard (route_hot / route_cold prove
     the cache-affine consistent-hash routing),
   - the front answers probe pings itself; in-band shard heartbeats flow
     without perturbing the FIFO response matching,
   - per-tenant quotas and the low-priority watermark shed on top of the
     queue-depth bound, each with its own counter,
   - a hard shard kill mid-flight re-dispatches every parked request to
     a healthy sibling (bounded), the backend respawns, and zero
     admitted requests are lost,
   - a graceful drain answers everything already admitted,
   - replaying the front's JSONL trace reproduces its shard.* counters
     exactly (live = replay reconciliation),
   - engine reports served through the front (pacing client, UDS and
     TCP targets) are byte-identical to direct in-process runs. *)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report

let sock_counter = ref 0

let sock_path tag =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "infs-shard-%d-%d-%s.sock" (Unix.getpid ()) !sock_counter
       tag)

(* start a 2-shard (by default) front over an in-process backend, run
   [f], always drain; returns f's result, the final stats and the
   front's metrics registry (valid after the drain) *)
let with_front ?(shards = 2) ?tcp_port ?(queue_depth = 64) ?tenant_quota
    ?(low_watermark = 0.5) ?heartbeat_s ?(redispatch_max = 2) ?trace ~tag
    ~handler f =
  let path = sock_path tag in
  let cfg =
    {
      (Shard.default_config ~socket_path:path ~shards
         ~backend:(Shard.Inproc handler))
      with
      tcp_port;
      queue_depth;
      tenant_quota;
      low_watermark;
      heartbeat_s;
      redispatch_max;
      connect_timeout_s = 5.0;
    }
  in
  let cfg = match trace with None -> cfg | Some tr -> { cfg with trace = tr } in
  match Shard.start cfg with
  | Error e -> Alcotest.fail e
  | Ok t ->
    let final = ref (Shard.stats t) in
    let r =
      Fun.protect
        ~finally:(fun () ->
          Shard.request_stop t;
          final := Shard.wait t;
          try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
        (fun () -> f t path)
    in
    (r, !final, Shard.metrics t)

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let response line =
  match Json.parse line with
  | Error e -> Alcotest.fail ("unparseable response line: " ^ e)
  | Ok j -> j

let status j =
  match Option.bind (Json.member "status" j) Json.to_str with
  | Some s -> s
  | None -> Alcotest.fail "response without status field"

let id_num j =
  match Option.bind (Json.member "id" j) Json.to_num with
  | Some n -> int_of_float n
  | None -> Alcotest.fail "response without numeric id"

(* poll until [pred] holds; fail the test on timeout *)
let eventually ?(timeout_s = 5.0) what pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.005;
      go ()
    end
  in
  go ()

let echo j = Ok j

(* ---- basic fan-out ---- *)

let test_two_shards_basic () =
  let n = 6 in
  let rs, st, m =
    with_front ~tag:"basic" ~handler:echo (fun _t path ->
        let fd, ic, oc = connect path in
        for i = 0 to n - 1 do
          send oc (Printf.sprintf {|{"id": %d, "x": %d}|} i i)
        done;
        let rs = List.init n (fun _ -> response (input_line ic)) in
        Unix.close fd;
        rs)
  in
  List.iteri
    (fun i r ->
      Alcotest.(check string) (Printf.sprintf "request %d ok" i) "ok" (status r);
      Alcotest.(check int)
        (Printf.sprintf "request %d id preserved" i)
        i (id_num r))
    rs;
  Alcotest.(check int) "one client connection" 1 st.Shard.connections;
  Alcotest.(check int) "all received" n st.Shard.received;
  Alcotest.(check int) "all admitted" n st.Shard.admitted;
  Alcotest.(check int) "all answered" n st.Shard.answered;
  Alcotest.(check int) "nothing lost" 0 st.Shard.lost;
  Alcotest.(check int) "no crashes" 0 st.Shard.crashes;
  Alcotest.(check int) "nothing shed" 0 (Shard.shed_total st);
  Alcotest.(check (float 0.0)) "metrics mirror the stats record"
    (float_of_int st.Shard.answered)
    (Metrics.value m "shard.answered")

(* ---- cache-affine routing ---- *)

let test_repeat_key_routing () =
  (* 3 distinct specs, 4 submissions each: the id varies (it is an
     envelope field, excluded from the route key), the spec does not *)
  let distinct = 3 and repeats = 4 in
  let (), st, _ =
    with_front ~tag:"routing" ~handler:echo (fun _t path ->
        let fd, ic, oc = connect path in
        for i = 0 to (distinct * repeats) - 1 do
          send oc (Printf.sprintf {|{"id": %d, "w": "spec-%d"}|} i (i mod distinct))
        done;
        for i = 0 to (distinct * repeats) - 1 do
          Alcotest.(check string)
            (Printf.sprintf "request %d ok" i)
            "ok"
            (status (response (input_line ic)))
        done;
        Unix.close fd)
  in
  Alcotest.(check int) "each distinct key routed cold once" distinct
    st.Shard.route_cold;
  Alcotest.(check int) "every repeat lands on the warm shard"
    (distinct * (repeats - 1))
    st.Shard.route_hot;
  Alcotest.(check int) "no key moved (no crash)" 0 st.Shard.route_moved

(* ---- probes and heartbeats ---- *)

let test_front_ping () =
  let (), st, _ =
    with_front ~tag:"ping" ~handler:echo (fun _t path ->
        let fd, ic, oc = connect path in
        send oc {|{"ping": 1, "id": 42}|};
        let r = response (input_line ic) in
        Alcotest.(check string) "probe answered with pong" "pong" (status r);
        Alcotest.(check int) "probe id echoed" 42 (id_num r);
        send oc {|{"id": 7, "x": 1}|};
        Alcotest.(check string) "normal request after probe is ok" "ok"
          (status (response (input_line ic)));
        Unix.close fd)
  in
  Alcotest.(check int) "one ping counted" 1 st.Shard.pings;
  Alcotest.(check int) "probe not admitted" 1 st.Shard.admitted

let test_heartbeat_liveness () =
  let (), st, _ =
    with_front ~tag:"hb" ~heartbeat_s:0.05 ~handler:echo (fun t path ->
        let fd, ic, oc = connect path in
        send oc {|{"id": 0, "x": 0}|};
        Alcotest.(check string) "request before heartbeats ok" "ok"
          (status (response (input_line ic)));
        (* let several heartbeat periods elapse with the line idle *)
        eventually "heartbeat pongs" (fun () -> (Shard.stats t).Shard.hb_pong >= 2);
        (* in-band heartbeats must not perturb the FIFO matching *)
        send oc {|{"id": 1, "x": 1}|};
        let r = response (input_line ic) in
        Alcotest.(check string) "request after heartbeats ok" "ok" (status r);
        Alcotest.(check int) "response matched to the right request" 1 (id_num r);
        Unix.close fd)
  in
  Alcotest.(check bool) "heartbeats sent" true (st.Shard.hb_sent >= 2);
  Alcotest.(check bool) "pongs received" true (st.Shard.hb_pong >= 2);
  Alcotest.(check int) "healthy shards never declared dead" 0 st.Shard.crashes;
  Alcotest.(check int) "every admitted request answered" st.Shard.admitted
    st.Shard.answered

(* ---- admission: tenant quota and priority watermark ---- *)

let test_tenant_quota_shed () =
  let release = Atomic.make false in
  let handler j =
    while not (Atomic.get release) do
      Unix.sleepf 0.002
    done;
    Ok j
  in
  let (), st, _ =
    with_front ~tag:"quota" ~tenant_quota:1 ~handler (fun t path ->
        let fd1, ic1, oc1 = connect path in
        send oc1 {|{"id": 0, "tenant": "acme", "w": "a"}|};
        eventually "first acme request admitted" (fun () ->
            (Shard.stats t).Shard.admitted = 1);
        let fd2, ic2, oc2 = connect path in
        (* same tenant over quota: shed; another tenant: admitted *)
        send oc2 {|{"id": 1, "tenant": "acme", "w": "b"}|};
        let r1 = response (input_line ic2) in
        Alcotest.(check string) "over-quota tenant shed" "overloaded" (status r1);
        Alcotest.(check int) "shed response carries the request id" 1 (id_num r1);
        send oc2 {|{"id": 2, "tenant": "other", "w": "c"}|};
        eventually "other tenant admitted" (fun () ->
            (Shard.stats t).Shard.admitted = 2);
        Atomic.set release true;
        Alcotest.(check string) "held request completes" "ok"
          (status (response (input_line ic1)));
        Alcotest.(check string) "other tenant served" "ok"
          (status (response (input_line ic2)));
        Unix.close fd1;
        Unix.close fd2)
  in
  Alcotest.(check int) "one quota shed" 1 st.Shard.shed_quota;
  Alcotest.(check int) "no depth shed" 0 st.Shard.shed;
  Alcotest.(check int) "two admitted" 2 st.Shard.admitted;
  Alcotest.(check int) "both answered" 2 st.Shard.answered

let test_low_priority_watermark () =
  let release = Atomic.make false in
  let handler j =
    while not (Atomic.get release) do
      Unix.sleepf 0.002
    done;
    Ok j
  in
  (* queue_depth 4, watermark 0.5: low-priority sheds once 2 in flight *)
  let (), st, _ =
    with_front ~tag:"watermark" ~queue_depth:4 ~handler (fun t path ->
        let fd1, ic1, oc1 = connect path in
        send oc1 {|{"id": 0, "priority": "low", "w": "a"}|};
        eventually "low-priority under watermark admitted" (fun () ->
            (Shard.stats t).Shard.admitted = 1);
        send oc1 {|{"id": 1, "w": "b"}|};
        eventually "normal request admitted" (fun () ->
            (Shard.stats t).Shard.admitted = 2);
        let fd2, ic2, oc2 = connect path in
        send oc2 {|{"id": 2, "priority": "low", "w": "c"}|};
        let r = response (input_line ic2) in
        Alcotest.(check string) "low-priority above watermark shed" "overloaded"
          (status r);
        Atomic.set release true;
        Alcotest.(check string) "held low-priority request ok" "ok"
          (status (response (input_line ic1)));
        Alcotest.(check string) "held normal request ok" "ok"
          (status (response (input_line ic1)));
        Unix.close fd1;
        Unix.close fd2)
  in
  Alcotest.(check int) "one priority shed" 1 st.Shard.shed_priority;
  Alcotest.(check int) "no quota shed" 0 st.Shard.shed_quota;
  Alcotest.(check int) "two admitted" 2 st.Shard.admitted;
  Alcotest.(check int) "both answered" 2 st.Shard.answered

(* ---- crash resilience: hard kill mid-flight ---- *)

let test_kill_shard_redispatch () =
  let release = Atomic.make false in
  let handler j =
    while not (Atomic.get release) do
      Unix.sleepf 0.002
    done;
    Ok j
  in
  let n = 6 in
  let rs, st, _ =
    with_front ~tag:"kill" ~handler (fun t path ->
        let fd, ic, oc = connect path in
        for i = 0 to n - 1 do
          send oc (Printf.sprintf {|{"id": %d, "w": "k%d"}|} i i)
        done;
        eventually "all requests admitted" (fun () ->
            (Shard.stats t).Shard.admitted = n);
        (* kill the shard holding the most parked requests *)
        let victim =
          if Shard.shard_pending t 0 >= Shard.shard_pending t 1 then 0 else 1
        in
        Alcotest.(check bool) "victim has requests in flight" true
          (Shard.shard_pending t victim > 0);
        Shard.kill_shard t victim;
        eventually "crash detected" (fun () ->
            (Shard.stats t).Shard.crashes >= 1);
        eventually "victim respawned" (fun () -> Shard.shard_alive t victim);
        Atomic.set release true;
        let rs = List.init n (fun _ -> response (input_line ic)) in
        Unix.close fd;
        rs)
  in
  List.iteri
    (fun i r ->
      Alcotest.(check string)
        (Printf.sprintf "request %d answered ok despite the kill" i)
        "ok" (status r);
      (* responses stay in per-connection request order across re-dispatch *)
      Alcotest.(check int) (Printf.sprintf "response %d in order" i) i (id_num r))
    rs;
  Alcotest.(check int) "zero admitted requests lost" 0 st.Shard.lost;
  Alcotest.(check int) "every admitted request answered" st.Shard.admitted
    st.Shard.answered;
  Alcotest.(check bool) "the kill was counted as a crash" true
    (st.Shard.crashes >= 1);
  Alcotest.(check bool) "parked requests re-dispatched" true
    (st.Shard.redispatched >= 1);
  Alcotest.(check bool) "re-dispatch stayed within budget" true
    (st.Shard.redispatched <= n * 2);
  Alcotest.(check bool) "the backend respawned" true (st.Shard.respawns >= 1);
  Alcotest.(check bool) "moved keys counted" true (st.Shard.route_moved >= 1)

(* ---- graceful drain ---- *)

let test_drain_answers_admitted () =
  let handler j =
    Unix.sleepf 0.05;
    Ok j
  in
  let n = 5 in
  let rs, st, _ =
    with_front ~tag:"drain" ~handler (fun t path ->
        let fd, ic, oc = connect path in
        for i = 0 to n - 1 do
          send oc (Printf.sprintf {|{"id": %d, "w": "d%d"}|} i i)
        done;
        eventually "all admitted" (fun () -> (Shard.stats t).Shard.admitted = n);
        (* the drain begins with every request still in flight *)
        Shard.request_stop t;
        let rs = List.init n (fun _ -> response (input_line ic)) in
        Unix.close fd;
        rs)
  in
  List.iteri
    (fun i r ->
      Alcotest.(check string)
        (Printf.sprintf "request %d answered through the drain" i)
        "ok" (status r))
    rs;
  Alcotest.(check int) "every admitted request answered" st.Shard.admitted
    st.Shard.answered;
  Alcotest.(check int) "nothing lost" 0 st.Shard.lost

(* ---- live = replay reconciliation ---- *)

let counter_names =
  [
    "shard.connections";
    "shard.received";
    "shard.admitted";
    "shard.answered";
    "shard.pings";
    "shard.bad_requests";
    "shard.route_hot";
    "shard.route_cold";
    "shard.route_moved";
    "shard.redispatched";
    "shard.lost";
    "shard.crashes";
    "shard.respawns";
    "shard.shed";
    "shard.shed_quota";
    "shard.shed_priority";
    "shard.drained";
    "shard.hb_sent";
    "shard.hb_pong";
  ]

let test_live_replay_agreement () =
  let tmp = Filename.temp_file "infs-shard-trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let oc = open_out tmp in
      let tr = Trace.to_channel Trace.Jsonl oc in
      let (), _, m =
        with_front ~tag:"replay" ~trace:tr ~handler:echo (fun _t path ->
            let fd, ic, sock_oc = connect path in
            (* mixed traffic: repeats, a probe, a malformed line *)
            for i = 0 to 5 do
              send sock_oc
                (Printf.sprintf {|{"id": %d, "w": "r%d"}|} i (i mod 3))
            done;
            send sock_oc {|{"ping": 1, "id": 99}|};
            send sock_oc "this is { not json";
            for _ = 0 to 7 do
              ignore (response (input_line ic))
            done;
            Unix.close fd)
      in
      Trace.close tr;
      close_out oc;
      let rp = Trace_replay.create () in
      let ic = open_in tmp in
      (match Trace_replay.feed_channel rp ic with
      | Ok applied ->
        close_in ic;
        Alcotest.(check bool) "trace carries events" true (applied > 0)
      | Error e ->
        close_in ic;
        Alcotest.failf "replay failed: %s" e);
      let rm = Trace_replay.metrics rp in
      Alcotest.(check (float 0.0)) "live counted the traffic" 6.0
        (Metrics.value m "shard.admitted");
      List.iter
        (fun name ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "replayed %s agrees with live" name)
            (Metrics.value m name) (Metrics.value rm name))
        counter_names)

(* ---- byte identity under the pacing client, UDS and TCP ---- *)

let test_workloads =
  [
    ("vec_add", fun () -> Infs_workloads.Micro.vec_add ~n:1024);
    ("array_sum", fun () -> Infs_workloads.Micro.array_sum ~n:1024);
  ]

let test_paradigms = [ ("base", E.Base); ("inf-s", E.Inf_s) ]

(* mirrors the CLI handler: resolve the workload fresh per request, warm
   per-shard compile cache (the thing cache-affine routing protects) *)
let engine_handler j =
  match
    ( Option.bind (Json.member "workload" j) Json.to_str,
      Option.bind (Json.member "paradigm" j) Json.to_str )
  with
  | Some w, Some p -> (
    match (List.assoc_opt w test_workloads, List.assoc_opt p test_paradigms) with
    | Some mk, Some paradigm -> (
      let options = { E.default_options with share_compile = true } in
      match E.run ~options paradigm (mk ()) with
      | Ok r -> Ok (R.to_json r)
      | Error e -> Error e)
    | _ -> Error "unknown workload or paradigm")
  | _ -> Error "spec needs workload and paradigm"

let spec_bodies =
  List.concat_map
    (fun (w, _) ->
      List.map
        (fun (p, _) ->
          Printf.sprintf {|{"workload": %S, "paradigm": %S}|} w p)
        test_paradigms)
    test_workloads

let check_reports_byte_identical r =
  let distinct = List.length spec_bodies in
  Alcotest.(check bool) "client sent traffic" true (r.Serve_client.sent > 0);
  Alcotest.(check int) "no server errors" 0 r.Serve_client.error;
  Alcotest.(check int) "no unanswered requests" 0 r.Serve_client.unanswered;
  Alcotest.(check int) "every request served ok" r.Serve_client.sent
    r.Serve_client.ok;
  Alcotest.(check int) "one exemplar report per distinct spec" distinct
    (List.length r.Serve_client.ok_reports);
  List.iter
    (fun (body, served) ->
      let direct =
        match engine_handler (Result.get_ok (Json.parse body)) with
        | Ok payload -> Json.to_string payload
        | Error e -> Alcotest.failf "direct run failed: %s" e
      in
      Alcotest.(check string)
        (Printf.sprintf "report for %s byte-identical to a direct run" body)
        direct served)
    r.Serve_client.ok_reports

let run_client target =
  let bodies = Array.of_list spec_bodies in
  match
    Serve_client.run ~socket:target ~rps:50.0 ~duration_s:0.4 ~connections:2
      ~collect_reports:(Array.length bodies)
      ~body:(fun i -> bodies.(i mod Array.length bodies))
      ()
  with
  | Error e -> Alcotest.failf "client failed: %s" e
  | Ok r -> r

let test_client_uds_byte_identity () =
  let r, st, _ =
    with_front ~tag:"uds-client" ~handler:engine_handler (fun _t path ->
        run_client ("unix:" ^ path))
  in
  check_reports_byte_identical r;
  Alcotest.(check int) "every admitted request answered" st.Shard.admitted
    st.Shard.answered;
  (* repeat submissions of the same spec land on the warm shard *)
  Alcotest.(check bool) "repeat keys routed hot" true (st.Shard.route_hot > 0);
  Alcotest.(check bool) "at most one cold route per distinct spec" true
    (st.Shard.route_cold <= List.length spec_bodies)

let free_port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "no port"
  in
  Unix.close fd;
  port

let test_client_tcp_byte_identity () =
  let port = free_port () in
  let r, st, _ =
    with_front ~tag:"tcp-client" ~tcp_port:port ~handler:engine_handler
      (fun _t _path -> run_client (Printf.sprintf "tcp:127.0.0.1:%d" port))
  in
  check_reports_byte_identical r;
  Alcotest.(check int) "every admitted request answered" st.Shard.admitted
    st.Shard.answered;
  Alcotest.(check int) "both client connections accepted" 2
    st.Shard.connections

let suite =
  [
    Alcotest.test_case "two shards answer everything" `Quick
      test_two_shards_basic;
    Alcotest.test_case "routing: repeat keys land hot" `Quick
      test_repeat_key_routing;
    Alcotest.test_case "front answers probe pings" `Quick test_front_ping;
    Alcotest.test_case "heartbeats flow without perturbing FIFO" `Quick
      test_heartbeat_liveness;
    Alcotest.test_case "admission: tenant quota shed" `Quick
      test_tenant_quota_shed;
    Alcotest.test_case "admission: low-priority watermark shed" `Quick
      test_low_priority_watermark;
    Alcotest.test_case "kill mid-flight: re-dispatch, zero lost" `Quick
      test_kill_shard_redispatch;
    Alcotest.test_case "drain answers every admitted request" `Quick
      test_drain_answers_admitted;
    Alcotest.test_case "live = replay counter agreement" `Quick
      test_live_replay_agreement;
    Alcotest.test_case "pacing client over UDS: byte-identical reports" `Quick
      test_client_uds_byte_identity;
    Alcotest.test_case "pacing client over TCP: byte-identical reports" `Quick
      test_client_tcp_byte_identity;
  ]
