(* Symbolic affine expressions, symbolic rectangles, AST validation and the
   golden interpreter. *)

let saff = Alcotest.testable (fun ppf a -> Symaff.pp ppf a) Symaff.equal

let test_symaff_basics () =
  let open Symaff in
  let e = add (term 2 "n") (const 3) in
  Alcotest.(check int) "eval" 13 (eval e (fun _ -> 5));
  Alcotest.check saff "x - x = 0" zero (sub (var "x") (var "x"));
  Alcotest.check saff "subst" (const 7) (subst (add (var "x") (const 2)) "x" (const 5));
  Alcotest.(check (list string)) "vars sorted" [ "a"; "b" ]
    (vars (add (var "b") (var "a")));
  Alcotest.(check int) "coeff" 2 (coeff e "n");
  Alcotest.(check (option int)) "is_const" None (is_const e);
  Alcotest.(check string) "to_string" "2n+3" (to_string e)

let symaff_gen =
  QCheck.Gen.(
    let term_g = pair (oneofl [ "x"; "y"; "z" ]) (int_range (-5) 5) in
    map
      (fun (c, terms) ->
        List.fold_left
          (fun acc (v, k) -> Symaff.add acc (Symaff.term k v))
          (Symaff.const c) terms)
      (pair (int_range (-10) 10) (list_size (int_range 0 4) term_g)))

let symaff_arb = QCheck.make ~print:Symaff.to_string symaff_gen

let env_of_seed seed v =
  (* deterministic positive env *)
  1 + ((Hashtbl.hash (seed, v) land 0xff) + 1)

let prop_symaff_ring =
  QCheck.Test.make ~name:"symaff add/sub agree with evaluation" ~count:300
    QCheck.(pair (pair symaff_arb symaff_arb) small_int)
    (fun ((a, b), seed) ->
      let env = env_of_seed seed in
      Symaff.eval (Symaff.add a b) env = Symaff.eval a env + Symaff.eval b env
      && Symaff.eval (Symaff.sub a b) env = Symaff.eval a env - Symaff.eval b env
      && Symaff.eval (Symaff.scale 3 a) env = 3 * Symaff.eval a env)

let prop_symaff_canonical =
  QCheck.Test.make ~name:"symaff equality is canonical" ~count:300
    QCheck.(pair symaff_arb symaff_arb)
    (fun (a, b) ->
      (* a + b - b = a structurally, not just semantically *)
      Symaff.equal a (Symaff.sub (Symaff.add a b) b)
      && Symaff.add a b = Symaff.add b a)

let test_symaff_leq () =
  let open Symaff in
  Alcotest.(check bool) "n <= n+1" true (leq (var "n") (add_const (var "n") 1));
  Alcotest.(check bool) "0 <= n under min_var" true (leq ~min_var:1 zero (var "n"));
  Alcotest.(check bool) "n <= n-1 false" false (leq (var "n") (add_const (var "n") (-1)));
  Alcotest.(check bool) "k <= n unprovable" false (leq (var "k") (var "n"));
  Alcotest.(check bool) "2 <= n with min_var 4" true (leq ~min_var:4 (const 2) (var "n"))

let test_symrect () =
  let open Symaff in
  let r = Symrect.make [ (const 1, var "n"); (zero, var "m") ] in
  Alcotest.(check int) "dims" 2 (Symrect.dims r);
  Alcotest.(check string) "to_string" "[1,n)x[0,m)" (Symrect.to_string r);
  let h = Symrect.resolve r (function "n" -> 5 | _ -> 3) in
  Alcotest.(check string) "resolve" "[1,5)x[0,3)" (Hyperrect.to_string h);
  let shifted = Symrect.shift r ~dim:0 ~dist:2 in
  Alcotest.(check string) "shift" "[3,n+2)x[0,m)" (Symrect.to_string shifted);
  let collapsed = Symrect.collapse r ~dim:1 in
  Alcotest.(check string) "collapse" "[1,n)x[0,1)" (Symrect.to_string collapsed)

let test_symrect_intersect () =
  let open Symaff in
  let a = Symrect.make [ (const 0, var "n") ] in
  let b = Symrect.make [ (const 2, var "n") ] in
  (match Symrect.intersect ~min_var:4 a b with
  | Some r -> Alcotest.(check string) "max of lows" "[2,n)" (Symrect.to_string r)
  | None -> Alcotest.fail "expected intersection");
  (* identical host-var-dependent ranges intersect without a proof *)
  let c = Symrect.make [ (add_const (var "k") 1, var "n") ] in
  (match Symrect.intersect ~min_var:4 c c with
  | Some r -> Alcotest.(check string) "identical" "[k+1,n)" (Symrect.to_string r)
  | None -> Alcotest.fail "identical ranges must intersect")

let test_ast_validate_catches () =
  let open Ast in
  let n = Symaff.var "N" in
  let bad_arrays =
    program ~name:"p" ~params:[ "N" ]
      ~arrays:[ array "A" Dtype.Fp32 [ n ] ]
      [ Kernel (kernel "k" [ loop "i" (c 0) n ] [ store "B" [ i "i" ] (fconst 1.0) ]) ]
  in
  Alcotest.(check bool) "undeclared array" true (Result.is_error (validate bad_arrays));
  let bad_rank =
    program ~name:"p" ~params:[ "N" ]
      ~arrays:[ array "A" Dtype.Fp32 [ n; n ] ]
      [ Kernel (kernel "k" [ loop "i" (c 0) n ] [ store "A" [ i "i" ] (fconst 1.0) ]) ]
  in
  Alcotest.(check bool) "rank mismatch" true (Result.is_error (validate bad_rank));
  let bad_scalar =
    program ~name:"p" ~params:[ "N" ]
      ~arrays:[ array "A" Dtype.Fp32 [ n ] ]
      [ Kernel (kernel "k" [ loop "i" (c 0) n ] [ store "A" [ i "i" ] (scalar "s") ]) ]
  in
  Alcotest.(check bool) "unbound scalar" true (Result.is_error (validate bad_scalar));
  let bad_var =
    program ~name:"p" ~params:[ "N" ]
      ~arrays:[ array "A" Dtype.Fp32 [ n ] ]
      [ Kernel (kernel "k" [ loop "i" (c 0) n ] [ store "A" [ i "j" ] (fconst 1.0) ]) ]
  in
  Alcotest.(check bool) "unbound ivar" true (Result.is_error (validate bad_var))

let test_ast_queries () =
  let open Ast in
  let n = Symaff.var "N" in
  let k =
    kernel "k"
      [ loop "i" (c 0) n ]
      [ store "B" [ i "i" ] (load "A" [ i "i" ] * load "A" [ i "i" +% 1 ] + fconst 1.0) ]
  in
  Alcotest.(check int) "flops/iter" 2 (kernel_flops_per_iter k);
  Alcotest.(check int) "loads" 2 (List.length (expr_loads (List.hd k.body).rhs));
  Alcotest.(check bool) "no indirect" false (kernel_has_indirect k)

let feq = Alcotest.float 1e-5

(* golden interpreter against hand computation *)
let test_interp_saxpy () =
  let open Ast in
  let n = Symaff.var "N" in
  let prog =
    program ~name:"saxpy" ~params:[ "N" ]
      ~arrays:[ array "X" Dtype.Fp32 [ n ]; array "Y" Dtype.Fp32 [ n ] ]
      [
        Kernel
          (kernel "saxpy"
             [ loop "i" (c 0) n ]
             [ store "Y" [ i "i" ] ((fconst 2.0 * load "X" [ i "i" ]) + load "Y" [ i "i" ]) ]);
      ]
  in
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 10.0; 20.0; 30.0 |] in
  match Interp.run_program prog ~params:[ ("N", 3) ] ~inputs:[ ("X", x); ("Y", y) ] with
  | Error e -> Alcotest.fail e
  | Ok arrays ->
    let got = List.assoc "Y" arrays in
    Alcotest.check feq "y0" 12.0 got.(0);
    Alcotest.check feq "y2" 36.0 got.(2)

let test_interp_host_loop_and_scalars () =
  let open Ast in
  let n = Symaff.var "N" in
  (* prefix sums via host loop: S[k+1] = S[k] + A[k] *)
  let prog =
    program ~name:"scan" ~params:[ "N" ]
      ~arrays:[ array "A" Dtype.Fp32 [ n ]; array "S" Dtype.Fp32 [ n +% 1 ] ]
      [
        Host_loop
          ( loop "k" (c 0) n,
            [
              Let_scalar ("acc", load "S" [ i "k" ] + load "A" [ i "k" ]);
              Kernel
                (kernel "store"
                   [ loop "j" (i "k" +% 1) (i "k" +% 2) ]
                   [ store "S" [ i "j" ] (scalar "acc") ]);
            ] );
      ]
  in
  match
    Interp.run_program prog ~params:[ ("N", 4) ]
      ~inputs:[ ("A", [| 1.0; 2.0; 3.0; 4.0 |]) ]
  with
  | Error e -> Alcotest.fail e
  | Ok arrays ->
    let s = List.assoc "S" arrays in
    Alcotest.check feq "prefix sum" 10.0 s.(4)

let test_interp_indirect () =
  let open Ast in
  let n = Symaff.var "N" in
  let prog =
    program ~name:"gather" ~params:[ "N" ]
      ~arrays:
        [
          array "A" Dtype.Fp32 [ n ];
          array "IX" Dtype.Fp32 [ n ];
          array "G" Dtype.Fp32 [ n ];
        ]
      [
        Kernel
          (kernel "gather"
             [ loop "i" (c 0) n ]
             [
               store "G" [ i "i" ]
                 (load_ix "A" [ Indirect { array = "IX"; indices = [ i "i" ] } ]);
             ]);
      ]
  in
  match
    Interp.run_program prog ~params:[ ("N", 3) ]
      ~inputs:[ ("A", [| 10.0; 20.0; 30.0 |]); ("IX", [| 2.0; 0.0; 1.0 |]) ]
  with
  | Error e -> Alcotest.fail e
  | Ok arrays ->
    Alcotest.check feq "gathered" 30.0 (List.assoc "G" arrays).(0)

let test_interp_out_of_range_indirect () =
  let open Ast in
  let n = Symaff.var "N" in
  let prog =
    program ~name:"bad" ~params:[ "N" ]
      ~arrays:[ array "A" Dtype.Fp32 [ n ]; array "IX" Dtype.Fp32 [ n ] ]
      [
        Kernel
          (kernel "g"
             [ loop "i" (c 0) n ]
             [
               store "A" [ i "i" ]
                 (load_ix "A" [ Indirect { array = "IX"; indices = [ i "i" ] } ]);
             ]);
      ]
  in
  match
    Interp.run_program prog ~params:[ ("N", 2) ] ~inputs:[ ("IX", [| 5.0; 0.0 |]) ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an out-of-range failure"

let test_interp_op_count () =
  let open Ast in
  let n = Symaff.var "N" in
  let prog =
    program ~name:"p" ~params:[ "N" ]
      ~arrays:[ array "A" Dtype.Fp32 [ n ] ]
      [
        Kernel
          (kernel "k"
             [ loop "i" (c 0) n ]
             [ accum Op.Add "A" [ i "i" ] (load "A" [ i "i" ] * fconst 2.0) ]);
      ]
  in
  match Interp.create prog ~params:[ ("N", 8) ] with
  | Error e -> Alcotest.fail e
  | Ok env ->
    Interp.run env;
    Alcotest.(check int) "2 ops x 8 iters" 16 (Interp.op_count env);
    Alcotest.(check (list (pair string int))) "iterations" [ ("k", 8) ]
      (Interp.kernel_iterations env)

let suite =
  [
    ("symaff basics", `Quick, test_symaff_basics);
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) prop_symaff_ring;
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) prop_symaff_canonical;
    ("symaff leq", `Quick, test_symaff_leq);
    ("symrect ops", `Quick, test_symrect);
    ("symrect intersect", `Quick, test_symrect_intersect);
    ("ast validate catches errors", `Quick, test_ast_validate_catches);
    ("ast queries", `Quick, test_ast_queries);
    ("interp saxpy", `Quick, test_interp_saxpy);
    ("interp host loop + scalars", `Quick, test_interp_host_loop_and_scalars);
    ("interp indirect gather", `Quick, test_interp_indirect);
    ("interp out-of-range", `Quick, test_interp_out_of_range_indirect);
    ("interp op count", `Quick, test_interp_op_count);
  ]
