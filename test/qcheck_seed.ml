(* One process-wide qcheck seed, resolved before any property test is
   built: QCHECK_SEED from the environment when set, a random draw
   otherwise — printed either way, so any failure reproduces with

     QCHECK_SEED=<printed seed> dune runtest

   Every test module passes [~rand:(Qcheck_seed.rand ())] to
   [QCheck_alcotest.to_alcotest]; each property then starts from a fresh
   [Random.State] seeded with the same value, so reproduction does not
   depend on how many properties ran before the failing one. The putenv
   keeps qcheck-alcotest's own lazy env lookup (the default [?rand]) in
   agreement, should a call site ever omit [~rand]. *)

let seed =
  match int_of_string_opt (try Sys.getenv "QCHECK_SEED" with Not_found -> "") with
  | Some s -> s
  | None ->
    Random.self_init ();
    Random.int 1_000_000_000

let () =
  Unix.putenv "QCHECK_SEED" (string_of_int seed);
  Printf.printf "qcheck random seed: %d (QCHECK_SEED=%d to replay)\n%!" seed seed

let rand () = Random.State.make [| seed |]
