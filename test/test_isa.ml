(* Data types, operators, bit-serial latencies, patterns, commands. *)

let test_dtype () =
  Alcotest.(check int) "fp32 bits" 32 (Dtype.bits Dtype.Fp32);
  Alcotest.(check int) "int8 bytes" 1 (Dtype.bytes Dtype.Int8);
  Alcotest.(check bool) "float" true (Dtype.is_float Dtype.Fp32);
  List.iter
    (fun d ->
      Alcotest.(check (option string))
        "roundtrip"
        (Some (Dtype.to_string d))
        (Option.map Dtype.to_string (Dtype.of_string (Dtype.to_string d))))
    Dtype.all

let feq = Alcotest.float 1e-9

let test_op_eval () =
  Alcotest.check feq "add" 3.0 (Op.eval Op.Add [ 1.0; 2.0 ]);
  Alcotest.check feq "sub order" (-1.0) (Op.eval Op.Sub [ 1.0; 2.0 ]);
  Alcotest.check feq "lt true" 1.0 (Op.eval Op.Lt [ 1.0; 2.0 ]);
  Alcotest.check feq "lt false" 0.0 (Op.eval Op.Lt [ 2.0; 1.0 ]);
  Alcotest.check feq "select" 5.0 (Op.eval Op.Select [ 1.0; 5.0; 7.0 ]);
  Alcotest.check feq "relu" 0.0 (Op.eval Op.Relu [ -3.0 ]);
  Alcotest.check feq "min" 1.0 (Op.eval Op.Min [ 1.0; 2.0 ])

let test_op_arity_enforced () =
  Alcotest.(check bool) "wrong arity raises" true
    (try
       ignore (Op.eval Op.Add [ 1.0 ]);
       false
     with Invalid_argument _ -> true)

let test_op_algebra () =
  Alcotest.(check bool) "add assoc" true (Op.is_associative Op.Add);
  Alcotest.(check bool) "sub not assoc" false (Op.is_associative Op.Sub);
  Alcotest.(check bool) "mul distributes over add" true
    (Op.distributes_over Op.Mul Op.Add);
  Alcotest.(check (option (float 0.0))) "add identity" (Some 0.0) (Op.identity Op.Add);
  List.iter
    (fun op ->
      Alcotest.(check (option string))
        "roundtrip"
        (Some (Op.to_string op))
        (Option.map Op.to_string (Op.of_string (Op.to_string op))))
    Op.all

(* The paper's stated latencies: O(n) integer add, n^2+5n integer multiply. *)
let test_bitserial_paper_latencies () =
  Alcotest.(check int) "int32 mul = n^2+5n" (1024 + 160)
    (Bitserial.op_cycles Op.Mul Dtype.Int32);
  Alcotest.(check bool) "int32 add is O(n)" true
    (Bitserial.op_cycles Op.Add Dtype.Int32 <= 40);
  Alcotest.(check bool) "fp add costs more than fp cmp" true
    (Bitserial.op_cycles Op.Add Dtype.Fp32 > Bitserial.op_cycles Op.Max Dtype.Fp32)

let test_bitserial_reduction_rounds () =
  Alcotest.(check int) "256 lanes" 8 (Bitserial.reduction_rounds ~width:256);
  Alcotest.(check int) "1 lane" 0 (Bitserial.reduction_rounds ~width:1);
  Alcotest.(check int) "3 lanes" 2 (Bitserial.reduction_rounds ~width:3)

(* Equation 1: 64 banks x 256 arrays/bank x 256 bitlines / 32-cycle add =
   about 131072 int32 adds per cycle (we charge n+1, the paper n). *)
let test_eq1_peak_throughput () =
  let cfg = Machine_config.default in
  let t = Machine_config.peak_imc_ops_per_cycle cfg ~dtype:Dtype.Int32 ~op:Op.Add in
  Alcotest.(check bool) "within 5% of 131072" true
    (Float.abs ((t /. 131072.0) -. 1.0) < 0.05)

let test_pattern_roundtrip () =
  let p = Pattern.make ~start:1 ~stride:2 ~count:3 in
  Alcotest.(check string) "syntax" "1:2:3" (Pattern.to_string p);
  Alcotest.(check (option string))
    "roundtrip" (Some "1:2:3")
    (Option.map Pattern.to_string (Pattern.of_string "1:2:3"));
  Alcotest.(check (list int)) "indices" [ 1; 3; 5 ] (Pattern.indices p);
  Alcotest.(check bool) "mem" true (Pattern.mem p 3);
  Alcotest.(check bool) "not mem" false (Pattern.mem p 4)

let prop_pattern_intersect =
  QCheck.Test.make ~name:"pattern intersect_range = filtered indices" ~count:300
    QCheck.(
      quad (int_range 0 10) (int_range 1 5) (int_range 0 10)
        (pair (int_range 0 15) (int_range 0 15)))
    (fun (start, stride, count, (a, b)) ->
      let lo = min a b and hi = max a b in
      let p = Pattern.make ~start ~stride ~count in
      let expect = List.filter (fun i -> i >= lo && i < hi) (Pattern.indices p) in
      match Pattern.intersect_range p ~lo ~hi with
      | None -> expect = []
      | Some q -> Pattern.indices q = expect)

let test_command_accounting () =
  let box = Hyperrect.of_ranges [ (0, 4); (0, 2) ] in
  let c =
    Command.make
      (Command.Compute { op = Op.Add; const_operands = 1 })
      ~dtype:Dtype.Fp32 ~tile_box:box ~lanes_per_tile:64
  in
  Alcotest.(check int) "tiles" 8 (Command.tiles_touched c);
  Alcotest.(check int) "elements" 512 (Command.elements_touched c);
  Alcotest.(check bool) "not sync" false (Command.is_sync c);
  Alcotest.(check bool) "compute does not move" false (Command.moves_data c);
  Alcotest.(check bool) "sync is sync" true (Command.is_sync Command.sync)

let test_command_cycles_monotonic () =
  let box = Hyperrect.of_ranges [ (0, 1) ] in
  let mk distance =
    Command.make (Command.Intra_shift { dim = 0; distance }) ~dtype:Dtype.Fp32
      ~tile_box:box ~lanes_per_tile:1
  in
  Alcotest.(check bool) "longer shifts cost more" true
    (Command.array_cycles (mk 8) > Command.array_cycles (mk 1));
  let red w =
    Command.make (Command.Reduce { op = Op.Add; width = w }) ~dtype:Dtype.Fp32
      ~tile_box:box ~lanes_per_tile:256
  in
  Alcotest.(check bool) "wider reduce costs more" true
    (Command.array_cycles (red 256) > Command.array_cycles (red 16))

let suite =
  [
    ("dtype", `Quick, test_dtype);
    ("op eval", `Quick, test_op_eval);
    ("op arity", `Quick, test_op_arity_enforced);
    ("op algebra", `Quick, test_op_algebra);
    ("bit-serial paper latencies", `Quick, test_bitserial_paper_latencies);
    ("reduction rounds", `Quick, test_bitserial_reduction_rounds);
    ("Eq.1 peak throughput", `Quick, test_eq1_peak_throughput);
    ("pattern roundtrip", `Quick, test_pattern_roundtrip);
    QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) prop_pattern_intersect;
    ("command accounting", `Quick, test_command_accounting);
    ("command cycles monotonic", `Quick, test_command_cycles_monotonic);
  ]
