(* Catalog coverage meta-test: a workload added to [Catalog.test_scale]
   must be fully wired, or these tests name the missing suite. Coverage
   checked:
   - the paradigm-agreement matrix (test_engine),
   - the fault differential oracle (test_fault),
   - the batch byte-identity suite (defined here: jobs:4 and jobs:1
     pool runs of every catalog variant must serialize to identical
     report bytes, mirroring `infs_run batch --matrix`). *)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report
module Cat = Infs_workloads.Catalog

let catalog_names = List.map fst (Cat.all_variants (Cat.test_scale ()))

let check_covers ~suite have =
  List.iter
    (fun n ->
      if not (List.mem n have) then
        Alcotest.failf
          "catalog entry %s is missing from the %s — new workloads must be \
           wired into every differential suite"
          n suite)
    catalog_names

let test_agreement_matrix_covers () =
  check_covers ~suite:"paradigm-agreement matrix (test_engine)"
    (List.map fst Test_engine.agreement_matrix)

let test_fault_oracle_covers () =
  check_covers ~suite:"fault differential oracle (test_fault)"
    (List.map fst Test_fault.oracle_workloads)

(* ---- batch byte-identity over the whole catalog ----

   Covers the catalog by construction (it enumerates test_scale), so the
   two subset checks above plus this suite close the loop. Workloads are
   resolved fresh inside each job — never shared across domains — just
   like the CLI batch runner. *)

let batch_paradigms = [ E.Base; E.Inf_s ]

let batch_reports ~jobs =
  Pool.run_list ~jobs
    (List.concat_map
       (fun (name, _) ->
         List.map
           (fun p () ->
             let w = List.assoc name (Cat.all_variants (Cat.test_scale ())) in
             let options = { E.default_options with E.share_compile = true } in
             match E.run ~options p w with
             | Ok r -> Json.to_string (R.to_json r)
             | Error e -> failwith e)
           batch_paradigms)
       (Cat.all_variants (Cat.test_scale ())))

let test_batch_byte_identity () =
  let serial = batch_reports ~jobs:1 in
  let parallel = batch_reports ~jobs:4 in
  Alcotest.(check int) "same job count" (List.length serial)
    (List.length parallel);
  List.iteri
    (fun idx (s, p) ->
      let name =
        fst
          (List.nth
             (Cat.all_variants (Cat.test_scale ()))
             (idx / List.length batch_paradigms))
      in
      match (s, p) with
      | Ok s, Ok p ->
        if s <> p then
          Alcotest.failf "%s: jobs:4 report differs from jobs:1 bytes" name
      | Error e, _ | _, Error e ->
        Alcotest.failf "%s: batch job failed: %s" name (Pool.error_to_string e))
    (List.combine serial parallel)

(* ---- tuner smoke over the whole catalog ----

   Every test-scale entry goes through the autotuner (small budget: the
   macro candidates — paradigm x Eq. 2 override — come first in the
   enumeration, so even budget 8 covers the decision space that matters).
   The tuned winner must never be worse than the Eq. 2 / layout-heuristic
   baseline, and the search must strictly beat the heuristic somewhere —
   otherwise the subsystem would be dead weight (EXPERIMENTS.md records
   the entries where it wins). [vec_add] rides along: its cold-run Eq. 2
   pick is the documented strictly-better case. *)

let test_tuner_covers_catalog () =
  Infs_tune.Tune.cache_clear ();
  let pairs =
    Cat.all_variants (Cat.test_scale ())
    @ [ ("vec_add", Infs_workloads.Micro.vec_add ~n:16_384) ]
  in
  let strictly_better = ref 0 in
  List.iter
    (fun (name, w) ->
      match Infs_tune.Tune.tune ~budget:8 ~jobs:4 (fun () -> w) with
      | Error e -> Alcotest.failf "%s: tune failed: %s" name e
      | Ok r ->
        if r.Infs_tune.Tune.winner.cycles > r.Infs_tune.Tune.baseline.cycles
        then
          Alcotest.failf "%s: tuned winner (%g cycles) worse than heuristic (%g)"
            name r.Infs_tune.Tune.winner.cycles
            r.Infs_tune.Tune.baseline.cycles;
        if r.Infs_tune.Tune.winner.cycles < r.Infs_tune.Tune.baseline.cycles
        then incr strictly_better)
    pairs;
  Alcotest.(check bool) "search strictly beats Eq. 2 on >= 1 entry" true
    (!strictly_better >= 1)

let suite =
  [
    ("agreement matrix covers catalog", `Quick, test_agreement_matrix_covers);
    ("fault oracle covers catalog", `Quick, test_fault_oracle_covers);
    ("batch byte-identity covers catalog", `Quick, test_batch_byte_identity);
    ("tuner smoke covers catalog", `Quick, test_tuner_covers_catalog);
  ]
