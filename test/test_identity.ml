(* Byte-identity tier: the safety net under the simulator hot-path
   rewrite (DESIGN.md §16).

   Every test-scale catalog entry is rendered through
   [Infs_workloads.Identity.render] — all variants x all 6 paradigms,
   functional checking on, metrics + profiler enabled — and the
   resulting JSON document (Report.to_json + metrics snapshot +
   normalized prof report per combination) must be byte-equal to the
   committed golden under test/golden/identity/. Each entry renders
   twice: the two renders must agree with each other (no leaked process
   state between runs) and with the golden (no drift from the
   pre-rewrite reference). *)

module Cat = Infs_workloads.Catalog
module Identity = Infs_workloads.Identity

let golden path =
  let candidates =
    [
      Filename.concat (Filename.dirname Sys.executable_name) path;
      path;
      Filename.concat "test" path;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* First differing position rendered with context: the documents are one
   long JSON line, so a line-based diff would be useless. *)
let show_diff got want =
  let n = min (String.length got) (String.length want) in
  let rec first i = if i < n && got.[i] = want.[i] then first (i + 1) else i in
  let i = first 0 in
  let ctx s =
    let lo = max 0 (i - 60) in
    let hi = min (String.length s) (i + 60) in
    String.sub s lo (hi - lo)
  in
  Printf.sprintf "first divergence at byte %d\n  got:    ...%s...\n  golden: ...%s..."
    i (ctx got) (ctx want)

let check_entry (e : Cat.entry) () =
  let path = golden (Filename.concat "golden/identity" (e.label ^ ".json")) in
  if not (Sys.file_exists path) then
    Alcotest.failf "missing golden %s; generate with:\n  dune exec bin/infs_run.exe -- identity-golden" path;
  let want = read_file path in
  let got1 = Identity.render e in
  let got2 = Identity.render e in
  if got1 <> got2 then
    Alcotest.failf "%s: two renders of the same entry differ (leaked state)\n%s"
      e.label (show_diff got2 got1);
  if got1 <> want then
    Alcotest.failf
      "%s: identity surface diverges from golden %s\n%s\n\
       The rewrite contract is byte-identity; only regenerate \
       (dune exec bin/infs_run.exe -- identity-golden) for an \
       intentional cost-model change."
      e.label path (show_diff got1 want)

let suite =
  List.map
    (fun (e : Cat.entry) ->
      (Printf.sprintf "identity: %s" e.label, `Quick, check_entry e))
    (Cat.test_scale ())

(* ---- qcheck differential tier ----

   Random (workload, paradigm, machine-config perturbation) triples: the
   performance-only run — the rewritten hot path, which never touches
   array contents — must produce exactly the cycle total and Breakdown of
   the functional run, whose scalar interpreter executes the program and
   checks the numeric outputs against the reference. Catches a rewrite
   shortcut that keys cost on functional state (or skips charging when
   data is absent), across config points the goldens never visit. *)

module E = Infinity_stream.Engine
module R = Infinity_stream.Report
module W = Infinity_stream.Workload

let paradigms =
  [ E.Base_1; E.Base; E.Near_l3; E.In_l3; E.Inf_s; E.Inf_s_nojit ]

type triple = { dw : W.t; dp : E.paradigm; dcfg : Machine_config.t }

(* cost-scalar knobs only: structural parameters (mesh, banks, wordlines)
   would invalidate the fat binary's schedules rather than stress the
   charging paths *)
let gen_triple =
  let open QCheck.Gen in
  let entries = Cat.test_scale () in
  let* e = oneofl entries in
  let* _, dw = oneofl e.Cat.variants in
  let* dp = oneofl paradigms in
  let* noc_router_cycles = int_range 1 8 in
  let* cmd_dispatch_cycles = int_range 1 8 in
  let* lot_regions = int_range 1 32 in
  let* imc_cycle_multiplier = float_range 1.0 4.0 in
  let* dram_gbps = float_range 8.0 64.0 in
  let dcfg =
    {
      Machine_config.default with
      noc_router_cycles;
      cmd_dispatch_cycles;
      lot_regions;
      imc_cycle_multiplier;
      dram_gbps;
    }
  in
  return { dw; dp; dcfg }

let print_triple t =
  Printf.sprintf
    "%s @ %s (router=%d dispatch=%d lot=%d mult=%.3f dram=%.3f)" t.dw.W.wname
    (E.paradigm_to_string t.dp) t.dcfg.Machine_config.noc_router_cycles
    t.dcfg.Machine_config.cmd_dispatch_cycles t.dcfg.Machine_config.lot_regions
    t.dcfg.Machine_config.imc_cycle_multiplier t.dcfg.Machine_config.dram_gbps

let run_one ~functional t =
  let options =
    {
      E.default_options with
      E.cfg = t.dcfg;
      functional;
      warm_data = true;
      share_compile = true;
    }
  in
  E.run_exn ~options t.dp t.dw

let breakdown_equal (a : Breakdown.t) (b : Breakdown.t) =
  a.Breakdown.dram = b.Breakdown.dram
  && a.jit = b.jit && a.move = b.move && a.compute = b.compute
  && a.final_reduce = b.final_reduce && a.mix = b.mix
  && a.near_mem = b.near_mem && a.core = b.core

let prop_differential =
  QCheck.Test.make
    ~name:"differential: perf-only run == functional run (cycles, breakdown)"
    ~count:40
    (QCheck.make ~print:print_triple gen_triple)
    (fun t ->
      let perf = run_one ~functional:false t in
      let full = run_one ~functional:true t in
      (match full.R.correctness with
      | `Checked err ->
        if err > 1e-3 then
          QCheck.Test.fail_reportf "%s: functional max error %.2e"
            (print_triple t) err
      | `Skipped ->
        QCheck.Test.fail_reportf "%s: functional run skipped its check"
          (print_triple t));
      if perf.R.cycles <> full.R.cycles then
        QCheck.Test.fail_reportf "%s: cycles diverge: perf %.17g vs full %.17g"
          (print_triple t) perf.R.cycles full.R.cycles;
      if not (breakdown_equal perf.R.breakdown full.R.breakdown) then
        QCheck.Test.fail_reportf "%s: breakdown diverges" (print_triple t);
      true)

let suite =
  suite
  @ [ QCheck_alcotest.to_alcotest ~rand:(Qcheck_seed.rand ()) prop_differential ]
